//===- time_dataflow.cpp - Section 6.2 timing comparison ----------------------------===//
//
// Section 6.2 ablation: whole-CFG iterative dataflow versus the PST
// elimination solver versus the sparse QPG solve, on single-instance
// availability problems (where the QPG shines because most of the graph
// is transparent) and on the multi-bit problems (where elimination
// amortizes region summaries).
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/dataflow/Problems.h"
#include "pst/dataflow/Qpg.h"
#include "pst/dataflow/Seg.h"
#include "pst/workload/ProgramGenerator.h"

#include <benchmark/benchmark.h>

using namespace pst;

namespace {

LoweredFunction generated(uint64_t Seed, uint32_t Stmts) {
  Rng R(Seed);
  ProgramGenOptions Opts;
  Opts.TargetStatements = Stmts;
  Opts.NumVars = 16;
  Function Fn = generateFunction(R, Opts, "bench");
  auto L = lowerFunction(Fn);
  return std::move(*L);
}

void BM_IterativeSingleExpr(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  auto Keys = expressionKeys(F);
  BitVectorProblem P = makeSingleExprAvailability(F, Keys.front());
  for (auto _ : State) {
    DataflowSolution S = solveIterative(F.Graph, P);
    benchmark::DoNotOptimize(S.Out.size());
  }
}

void BM_QpgSingleExpr(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  auto Keys = expressionKeys(F);
  BitVectorProblem P = makeSingleExprAvailability(F, Keys.front());
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  for (auto _ : State) {
    EdgeSolution S = solveOnQpg(F.Graph, T, P);
    benchmark::DoNotOptimize(S.EdgeValue.size());
  }
}

void BM_QpgBuildOnly(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  auto Keys = expressionKeys(F);
  BitVectorProblem P = makeSingleExprAvailability(F, Keys.front());
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  for (auto _ : State) {
    Qpg Q = buildQpg(F.Graph, T, P);
    benchmark::DoNotOptimize(Q.numNodes());
  }
}

// The paper's [CCF91] comparison: SEGs end up smaller but need dominance
// frontiers, making them costlier per instance than the PST-backed QPG.
void BM_SegBuildOnly(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  auto Keys = expressionKeys(F);
  BitVectorProblem P = makeSingleExprAvailability(F, Keys.front());
  DomTree DT = DomTree::buildIterative(F.Graph);
  DominanceFrontiers DF(F.Graph, DT);
  for (auto _ : State) {
    Seg S = buildSeg(F.Graph, DT, DF, P);
    benchmark::DoNotOptimize(S.numNodes());
  }
}

void BM_SegBuildWithFrontiers(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  auto Keys = expressionKeys(F);
  BitVectorProblem P = makeSingleExprAvailability(F, Keys.front());
  for (auto _ : State) {
    DomTree DT = DomTree::buildIterative(F.Graph);
    DominanceFrontiers DF(F.Graph, DT);
    Seg S = buildSeg(F.Graph, DT, DF, P);
    benchmark::DoNotOptimize(S.numNodes());
  }
}

void BM_IterativeReachingDefs(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  BitVectorProblem P = makeReachingDefs(F);
  for (auto _ : State) {
    DataflowSolution S = solveIterative(F.Graph, P);
    benchmark::DoNotOptimize(S.Out.size());
  }
}

void BM_EliminationReachingDefs(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  BitVectorProblem P = makeReachingDefs(F);
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  for (auto _ : State) {
    DataflowSolution S = solveElimination(F.Graph, T, P);
    benchmark::DoNotOptimize(S.Out.size());
  }
}

void BM_PstBuildGenerated(benchmark::State &State) {
  LoweredFunction F = generated(5, static_cast<uint32_t>(State.range(0)));
  for (auto _ : State) {
    ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
    benchmark::DoNotOptimize(T.numRegions());
  }
}

} // namespace

BENCHMARK(BM_IterativeSingleExpr)->Arg(1000)->Arg(10000);
BENCHMARK(BM_QpgSingleExpr)->Arg(1000)->Arg(10000);
BENCHMARK(BM_QpgBuildOnly)->Arg(1000)->Arg(10000);
BENCHMARK(BM_SegBuildOnly)->Arg(1000)->Arg(10000);
BENCHMARK(BM_SegBuildWithFrontiers)->Arg(1000)->Arg(10000);
BENCHMARK(BM_IterativeReachingDefs)->Arg(1000)->Arg(5000);
BENCHMARK(BM_EliminationReachingDefs)->Arg(1000)->Arg(5000);
BENCHMARK(BM_PstBuildGenerated)->Arg(1000)->Arg(10000);

BENCHMARK_MAIN();
