//===- time_control_regions.cpp - Section 5 timing claim ---------------------------===//
//
// The paper's control-regions claim: the O(E) cycle-equivalence algorithm
// beats previous approaches — it is even "faster than dominator
// computation, the first step in all previous algorithms". We time:
//
//  * the linear algorithm (node expansion + cycle equivalence),
//  * just a postdominator tree (the first step of FOW/CFS/Ball),
//  * the FOW-style baseline (materialize CD sets, hash),
//  * the CFS90-style refinement baseline (O(EN) worst case),
//
// on branch-heavy graphs and on an adversarial family (deep diamond
// nesting) where the CD relation is large.
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlRegions.h"
#include "pst/dom/Dominators.h"
#include "pst/workload/CfgGenerators.h"

#include <benchmark/benchmark.h>

using namespace pst;

namespace {

Cfg makeBranchy(uint32_t Nodes, uint64_t Seed) {
  Rng R(Seed);
  RandomCfgOptions Opts;
  Opts.NumNodes = Nodes;
  Opts.NumExtraEdges = Nodes; // Branch-heavy: ~2 edges per node.
  Opts.SelfLoopProb = 0.01;
  Opts.ParallelProb = 0.01;
  return randomBackboneCfg(R, Opts);
}

/// Nested repeat-until loops: every body node is control dependent on all
/// enclosing until-branches, so the materialized CD relation is
/// Theta(N^2) — the case that separates O(E) from O(EN).
Cfg makeAdversarial(uint32_t Depth) { return nestedRepeatUntilCfg(Depth); }

void BM_ControlRegionsLinear(benchmark::State &State) {
  Cfg G = makeBranchy(static_cast<uint32_t>(State.range(0)), 11);
  for (auto _ : State) {
    ControlRegionsResult R = computeControlRegionsLinear(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
}

void BM_ControlRegionsImplicit(benchmark::State &State) {
  Cfg G = makeBranchy(static_cast<uint32_t>(State.range(0)), 11);
  for (auto _ : State) {
    ControlRegionsResult R = computeControlRegionsLinearImplicit(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
}

void BM_PostDomOnly(benchmark::State &State) {
  Cfg G = makeBranchy(static_cast<uint32_t>(State.range(0)), 11);
  for (auto _ : State) {
    DomTree T = DomTree::buildPostDom(G);
    benchmark::DoNotOptimize(T.numNodes());
  }
}

void BM_ControlRegionsFOW(benchmark::State &State) {
  Cfg G = makeBranchy(static_cast<uint32_t>(State.range(0)), 11);
  for (auto _ : State) {
    ControlRegionsResult R = computeControlRegionsFOW(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
}

void BM_ControlRegionsRefinement(benchmark::State &State) {
  Cfg G = makeBranchy(static_cast<uint32_t>(State.range(0)), 11);
  for (auto _ : State) {
    ControlRegionsResult R = computeControlRegionsRefinement(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
}

void BM_LinearAdversarial(benchmark::State &State) {
  Cfg G = makeAdversarial(static_cast<uint32_t>(State.range(0)));
  for (auto _ : State) {
    ControlRegionsResult R = computeControlRegionsLinear(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
}

void BM_FOWAdversarial(benchmark::State &State) {
  Cfg G = makeAdversarial(static_cast<uint32_t>(State.range(0)));
  for (auto _ : State) {
    ControlRegionsResult R = computeControlRegionsFOW(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
}

} // namespace

BENCHMARK(BM_ControlRegionsLinear)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_ControlRegionsImplicit)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_PostDomOnly)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_ControlRegionsFOW)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_ControlRegionsRefinement)->Arg(1000)->Arg(10000)->Arg(50000);
BENCHMARK(BM_LinearAdversarial)->Arg(500)->Arg(2000);
BENCHMARK(BM_FOWAdversarial)->Arg(500)->Arg(2000);

BENCHMARK_MAIN();
