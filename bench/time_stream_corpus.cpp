//===- time_stream_corpus.cpp - Bounded-memory million-function pipeline ------===//
//
// Measures what the streaming pipeline exists for: building, verifying,
// and analyzing corpus images far larger than RAM should ever have to
// hold. For each corpus size (default 10k / 100k / 1M functions) it
//
//   build   — streams the generated corpus through
//             BatchAnalyzer::buildImageStream in bounded chunks into an
//             out-of-core image file (two generator passes, pwrite into a
//             pre-sized file, never more than one chunk resident);
//   verify  — verifyImageFile's windowed checksum pass over the file;
//   analyze — analyzeCorpusStream over the mapped image: windowed
//             parallel analysis draining through a sink, with the mapped
//             pages dropped between windows.
//
// The memory claim is enforced, not just reported: getrusage peak RSS is
// sampled after every size, and because ru_maxrss is a monotone
// high-water mark, the whole pipeline must stay bounded for the gate to
// pass — peak RSS after the largest size must be at most 2x peak RSS
// after the 100k size, else the bench exits 1. A pipeline that held the
// corpus (or the image) in memory would blow this by an order of
// magnitude.
//
// Usage: time_stream_corpus [--threads t1,t2,...] [--sizes n1,n2,...]
//                           [--chunk n] [--keep]
//
// Emits a human-readable table on stdout and machine-readable
// BENCH_stream.json ("pst-bench-v1" schema) in the working directory.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "pst/runtime/BatchAnalyzer.h"
#include "pst/workload/CorpusStream.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace pst;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

struct ThreadRun {
  unsigned Threads = 0; ///< Requested (0 = hardware); workers reported.
  unsigned Workers = 0;
  double BuildSec = 0;
  double BuildFnsPerSec = 0;
  double BuildBytesPerSec = 0;
};

struct SizeReport {
  uint64_t Functions = 0;
  uint64_t ImageBytes = 0;
  std::vector<ThreadRun> Runs;
  double VerifySec = 0;
  double AnalyzeSec = 0;
  double AnalyzeFnsPerSec = 0;
  uint64_t PeakRssAfter = 0; ///< Process high-water mark after this size.
};

std::vector<uint64_t> parseList(const char *Arg, const char *Flag) {
  std::vector<uint64_t> Out;
  const char *P = Arg;
  while (*P) {
    char *End = nullptr;
    uint64_t V = std::strtoull(P, &End, 0);
    if (End == P) {
      std::cerr << "error: " << Flag << " expects a comma-separated list "
                << "of numbers, got '" << Arg << "'\n";
      std::exit(1);
    }
    Out.push_back(V);
    P = (*End == ',') ? End + 1 : End;
  }
  if (Out.empty()) {
    std::cerr << "error: " << Flag << " got an empty list\n";
    std::exit(1);
  }
  return Out;
}

SizeReport benchSize(uint64_t Count, const std::vector<uint64_t> &Threads,
                     uint64_t Chunk, const std::string &Path, bool Keep) {
  SizeReport R;
  R.Functions = Count;

  StreamCorpusOptions SO;
  SO.Count = Count;
  auto Produce = [&SO](uint64_t Begin, uint64_t N, std::vector<Cfg> &G,
                       std::vector<std::string> &Names) {
    G.resize(N);
    Names.resize(N);
    for (uint64_t I = 0; I < N; ++I)
      generateStreamFunction(SO, Begin + I, G[I], Names[I]);
  };

  for (uint64_t T : Threads) {
    BatchOptions BO;
    BO.NumThreads = unsigned(T);
    BatchAnalyzer Engine(BO);
    ThreadRun Run;
    Run.Threads = unsigned(T);
    Run.Workers = Engine.numWorkers();

    std::string Error;
    Clock::time_point Start = Clock::now();
    if (!Engine.buildImageStream(Count, Produce, size_t(Chunk), Path,
                                 &Error)) {
      std::cerr << "FATAL: " << Error << "\n";
      std::exit(1);
    }
    Run.BuildSec = secondsSince(Start);

    {
      std::ifstream In(Path, std::ios::binary | std::ios::ate);
      R.ImageBytes = uint64_t(In.tellg());
    }
    Run.BuildFnsPerSec = Run.BuildSec > 0 ? double(Count) / Run.BuildSec : 0;
    Run.BuildBytesPerSec =
        Run.BuildSec > 0 ? double(R.ImageBytes) / Run.BuildSec : 0;
    R.Runs.push_back(Run);
    std::printf("  %8llu fns  %2u worker(s)  build %8.2f s  "
                "%9.0f fns/s  %7.1f MB/s\n",
                static_cast<unsigned long long>(Count), Run.Workers,
                Run.BuildSec, Run.BuildFnsPerSec,
                Run.BuildBytesPerSec / 1e6);
  }

  // Windowed checksum verification: the integrity pass that never maps
  // (and therefore never faults in) the whole image.
  std::string Error;
  Clock::time_point Start = Clock::now();
  if (!verifyImageFile(Path, &Error)) {
    std::cerr << "FATAL: " << Error << "\n";
    std::exit(1);
  }
  R.VerifySec = secondsSince(Start);

  // Streamed mapped analysis: windows of parallel work draining through a
  // sink, pages dropped between windows.
  {
    CorpusImage Img = CorpusImage::map(Path, &Error);
    if (!Img.valid()) {
      std::cerr << "FATAL: " << Error << "\n";
      std::exit(1);
    }
    BatchAnalyzer Engine; // Hardware threads for the analysis pass.
    uint64_t Seen = 0, Regions = 0;
    Start = Clock::now();
    Engine.analyzeCorpusStream(
        Img,
        [&](uint64_t, const FunctionAnalysis &A) {
          ++Seen;
          Regions += A.Pst.numRegions();
        });
    R.AnalyzeSec = secondsSince(Start);
    if (Seen != Count || Regions == 0) {
      std::cerr << "FATAL: streamed analysis visited " << Seen << " of "
                << Count << " functions\n";
      std::exit(1);
    }
    R.AnalyzeFnsPerSec = R.AnalyzeSec > 0 ? double(Count) / R.AnalyzeSec : 0;
  }

  if (!Keep)
    std::remove(Path.c_str());
  R.PeakRssAfter = pstbench::peakRssBytes();
  std::printf("  %8s      verify %6.2f s   analyze %6.2f s (%9.0f fns/s)  "
              "peak RSS %6.1f MB\n",
              "", R.VerifySec, R.AnalyzeSec, R.AnalyzeFnsPerSec,
              double(R.PeakRssAfter) / 1e6);
  return R;
}

void writeJson(const std::string &Path, const std::vector<SizeReport> &Sizes,
               uint64_t Chunk, bool GatePass, uint64_t RssSmall,
               uint64_t RssLarge) {
  const SizeReport &Largest = Sizes.back();
  std::ofstream OS(Path);
  OS << "{\n";
  pstbench::writeSchemaPreamble(
      OS, "stream_corpus", "stream-generated",
      Largest.Runs.empty() ? 0 : Largest.Runs.back().BuildFnsPerSec);
  OS << "  \"chunk_functions\": " << Chunk << ",\n";
  OS << "  \"sizes\": [\n";
  for (size_t I = 0; I < Sizes.size(); ++I) {
    const SizeReport &S = Sizes[I];
    OS << "    {\n";
    OS << "      \"functions\": " << S.Functions << ",\n";
    OS << "      \"image_bytes\": " << S.ImageBytes << ",\n";
    OS << "      \"runs\": [\n";
    for (size_t J = 0; J < S.Runs.size(); ++J) {
      const ThreadRun &R = S.Runs[J];
      OS << "        {\"threads\": " << R.Threads
         << ", \"workers\": " << R.Workers
         << ", \"build_sec\": " << R.BuildSec
         << ", \"fns_per_sec\": " << R.BuildFnsPerSec
         << ", \"bytes_per_sec\": " << R.BuildBytesPerSec << "}"
         << (J + 1 < S.Runs.size() ? "," : "") << "\n";
    }
    OS << "      ],\n";
    OS << "      \"verify_sec\": " << S.VerifySec << ",\n";
    OS << "      \"analyze_sec\": " << S.AnalyzeSec << ",\n";
    OS << "      \"analyze_fns_per_sec\": " << S.AnalyzeFnsPerSec << ",\n";
    OS << "      \"peak_rss_bytes_after\": " << S.PeakRssAfter << "\n";
    OS << "    }" << (I + 1 < Sizes.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"rss_gate\": {\n";
  OS << "    \"rss_after_small\": " << RssSmall << ",\n";
  OS << "    \"rss_after_large\": " << RssLarge << ",\n";
  OS << "    \"ratio\": "
     << (RssSmall > 0 ? double(RssLarge) / double(RssSmall) : 0) << ",\n";
  OS << "    \"max_ratio\": 2.0,\n";
  OS << "    \"pass\": " << (GatePass ? "true" : "false") << "\n";
  OS << "  }\n";
  OS << "}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<uint64_t> Threads = {0}; // 0 = hardware concurrency.
  std::vector<uint64_t> Sizes = {10000, 100000, 1000000};
  uint64_t Chunk = 4096;
  bool Keep = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NeedArg = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << A << " needs an argument\n";
        std::exit(1);
      }
      return Argv[++I];
    };
    if (A == "--threads")
      Threads = parseList(NeedArg(), "--threads");
    else if (A == "--sizes")
      Sizes = parseList(NeedArg(), "--sizes");
    else if (A == "--chunk")
      Chunk = std::max<uint64_t>(1, parseList(NeedArg(), "--chunk")[0]);
    else if (A == "--keep")
      Keep = true;
    else {
      std::cerr << "error: unknown option '" << A << "'\n";
      return 1;
    }
  }
  std::sort(Sizes.begin(), Sizes.end());

  std::cout << "=== Streaming corpus pipeline (chunk " << Chunk
            << " functions) ===\n\n";
  std::vector<SizeReport> Reports;
  for (uint64_t N : Sizes)
    Reports.push_back(benchSize(N, Threads, Chunk,
                                "bench_stream_" + std::to_string(N) + ".img",
                                Keep));

  // The bounded-memory gate: peak RSS is a process-monotone high-water
  // mark, so if the largest corpus (10x the functions) at most doubles it
  // over the 100k point, no stage held the corpus or the image in memory.
  // The reference point is the second-largest size when 100k isn't run.
  bool GatePass = true;
  uint64_t RssSmall = 0, RssLarge = 0;
  if (Reports.size() >= 2) {
    const SizeReport *Ref = &Reports[Reports.size() - 2];
    for (const SizeReport &S : Reports)
      if (S.Functions == 100000)
        Ref = &S;
    RssSmall = Ref->PeakRssAfter;
    RssLarge = Reports.back().PeakRssAfter;
    GatePass = RssSmall == 0 || RssLarge <= 2 * RssSmall;
    std::printf("\nRSS gate: %.1f MB after %llu fns vs %.1f MB after %llu "
                "fns (ratio %.2f, limit 2.00) -> %s\n",
                double(RssSmall) / 1e6,
                static_cast<unsigned long long>(Ref->Functions),
                double(RssLarge) / 1e6,
                static_cast<unsigned long long>(Reports.back().Functions),
                RssSmall ? double(RssLarge) / double(RssSmall) : 0.0,
                GatePass ? "pass" : "FAIL");
  }

  writeJson("BENCH_stream.json", Reports, Chunk, GatePass, RssSmall,
            RssLarge);
  std::cout << "\nwrote BENCH_stream.json\n";
  if (!GatePass) {
    std::cerr << "FATAL: peak RSS grew more than 2x between the reference "
                 "and the largest corpus — the pipeline is not bounded\n";
    return 1;
  }
  return 0;
}
