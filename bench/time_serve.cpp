//===- time_serve.cpp - Serving-layer latency and throughput ------------------===//
//
// Measures the serving layer's read path under write pressure: reader
// threads issue a deterministic query mix against a PstServer while
// 0 / 1 / 8 writers journal edits and commit epochs as fast as they can.
// Per phase it reports query latency (p50/p99), throughput two ways —
// wall-clock and *in-query* (queries divided by the summed per-query
// latencies, which is the number that stays meaningful when the host has
// fewer cores than threads) — and the mean/max epoch lag readers actually
// observed (from the serve.epoch_lag telemetry probe).
//
// Acceptance gates, all exit 1 on violation:
//
//   * snapshot integrity — after every phase, each shard's published
//     overlay must be byte-identical to a from-scratch freeze of its
//     writer's committed graph (Shard::verifyPublished);
//   * read isolation — with one writer committing continuously, pinned
//     readers must sustain at least MIN_RATIO (80%) of the zero-writer
//     in-query throughput: publication must never block the read path;
//   * derived-cache payoff — warm dom/cdep/phi queries (bundle already
//     built) must be at least WARM_SPEEDUP_GATE (5x) faster than the
//     cache-disabled path, and the cache must build each touched
//     function's bundle exactly once;
//   * cached/uncached equivalence — a scripted session's transcript must
//     be byte-identical with the cache on and off, at every --threads and
//     --batch setting crossed here.
//
// A read-scaling sweep (--threads list) additionally reports wall/in-query
// throughput per reader-thread count, so multicore read-path numbers land
// in BENCH_serve.json on hosts that have the cores.
//
// Each phase runs against a fresh server over the same in-memory image,
// so edit histories never leak across phases. Emits a human-readable
// table on stdout and machine-readable BENCH_serve.json.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "pst/obs/Telemetry.h"
#include "pst/serve/Protocol.h"
#include "pst/serve/PstServer.h"
#include "pst/workload/CfgGenerators.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace pst;
using namespace pst::serve;

namespace {

using Clock = std::chrono::steady_clock;

constexpr double MIN_RATIO = 0.80;
constexpr double WARM_SPEEDUP_GATE = 5.0;

/// Same generator mix as time_batch_throughput / time_corpus_image.
std::vector<Cfg> generatedCorpus(size_t Count) {
  std::vector<Cfg> Out;
  Out.reserve(Count);
  Rng R(0xba7c4);
  while (Out.size() < Count) {
    switch (Out.size() % 8) {
    case 0:
      Out.push_back(diamondLadderCfg(2 + static_cast<uint32_t>(R.nextBelow(12))));
      break;
    case 1:
      Out.push_back(nestedWhileCfg(1 + static_cast<uint32_t>(R.nextBelow(5)),
                                   1 + static_cast<uint32_t>(R.nextBelow(3))));
      break;
    case 2:
      Out.push_back(
          nestedRepeatUntilCfg(2 + static_cast<uint32_t>(R.nextBelow(10))));
      break;
    case 3:
      Out.push_back(irreducibleCfg(1 + static_cast<uint32_t>(R.nextBelow(4))));
      break;
    default: {
      RandomCfgOptions O;
      O.NumNodes = 8 + static_cast<uint32_t>(R.nextBelow(56));
      O.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(O.NumNodes));
      Out.push_back(randomBackboneCfg(R, O));
      break;
    }
    }
  }
  return Out;
}

struct PhaseResult {
  unsigned Writers = 0;
  uint64_t Queries = 0;
  double WallSec = 0;
  double InQuerySec = 0; ///< Sum of per-query latencies across readers.
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  double MeanEpochLag = 0;
  uint64_t MaxEpochLag = 0;
  uint64_t Commits = 0;
  uint64_t Published = 0;
  uint64_t Reclaimed = 0;

  double qpsWall() const { return Queries / WallSec; }
  double qpsInQuery() const { return Queries / InQuerySec; }
};

/// Deterministic per-reader request stream: every reader walks its own
/// xorshift sequence over the query kinds and functions, with node
/// arguments drawn from the *base* image (edits only ever add nodes, so
/// base node ids stay valid in every epoch).
Request nextRequest(const CorpusImage &Img, uint64_t &Rng) {
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  Request R;
  uint64_t Fn = Next() % Img.numFunctions();
  uint32_t Nodes = Img.cfg(Fn).numNodes();
  R.Fn = Fn;
  switch (Next() % 6) {
  case 0:
    R.Kind = RequestKind::Region;
    R.A = static_cast<NodeId>(Next() % Nodes);
    R.B = static_cast<NodeId>(Next() % Nodes);
    break;
  case 1:
    R.Kind = RequestKind::Regions;
    break;
  case 2:
    R.Kind = RequestKind::Cdep;
    R.A = static_cast<NodeId>(Next() % Nodes);
    break;
  case 3:
    R.Kind = RequestKind::Dom;
    R.A = static_cast<NodeId>(Next() % Nodes);
    break;
  case 4:
    R.Kind = RequestKind::Phi;
    R.Defs.push_back(static_cast<NodeId>(Next() % Nodes));
    R.Defs.push_back(static_cast<NodeId>(Next() % Nodes));
    break;
  default:
    R.Kind = RequestKind::Name;
    break;
  }
  return R;
}

PhaseResult runPhase(std::vector<uint8_t> ImageBytes, unsigned NumWriters,
                     unsigned NumReaders, uint64_t QueriesPerReader,
                     uint32_t NumShards) {
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(std::move(ImageBytes), &Error);
  if (!Img.valid()) {
    std::cerr << "error: " << Error << "\n";
    std::exit(1);
  }
  ServeOptions Opts;
  Opts.NumShards = NumShards;
  Opts.NumThreads = 1; // Readers are external threads; no pool fan-out.
  PstServer Server(std::move(Img), Opts);

  TelemetryRegistry::global().reset();

  std::atomic<bool> StopWriters{false};
  std::atomic<unsigned> ReadersDone{0};

  // Writers: each owns one shard (single-writer contract) and loops
  // edit-batch -> commit, so a stopped writer never leaves journaled
  // edits behind (verifyPublished requires commit-point state).
  std::vector<std::thread> Writers;
  for (unsigned W = 0; W < NumWriters; ++W) {
    Writers.emplace_back([&, W] {
      Shard &Sh = Server.shard(W % NumShards);
      uint64_t Iter = 0;
      while (!StopWriters.load(std::memory_order_relaxed)) {
        // Rotate over a few of the shard's functions.
        uint64_t Fn = (W % NumShards) + NumShards * (Iter % 8);
        if (Fn < Server.numFunctions()) {
          Sh.addBlock(Fn, 0, 1);
          Sh.commit();
        }
        ++Iter;
        std::this_thread::yield();
      }
    });
  }

  // Readers: deterministic streams, per-query latency sampled.
  std::vector<std::vector<uint64_t>> Latencies(NumReaders);
  std::vector<std::thread> Readers;
  auto WallStart = Clock::now();
  for (unsigned R = 0; R < NumReaders; ++R) {
    Readers.emplace_back([&, R] {
      std::vector<uint64_t> &Lat = Latencies[R];
      Lat.reserve(QueriesPerReader);
      QueryScratch Scratch;
      uint64_t Rng = 0x9e3779b97f4a7c15ull ^ (uint64_t(R + 1) << 32);
      for (uint64_t Q = 0; Q < QueriesPerReader; ++Q) {
        Request Req = nextRequest(Server.image(), Rng);
        auto T0 = Clock::now();
        std::string Resp = Server.execute(Req, Scratch);
        auto T1 = Clock::now();
        if (Resp.rfind("ok ", 0) != 0 && Resp.rfind("err node", 0) != 0) {
          std::cerr << "error: unexpected response: " << Resp << "\n";
          std::exit(1);
        }
        Lat.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count()));
      }
      ReadersDone.fetch_add(1);
    });
  }
  for (std::thread &T : Readers)
    T.join();
  double WallSec =
      std::chrono::duration<double>(Clock::now() - WallStart).count();
  StopWriters.store(true);
  for (std::thread &T : Writers)
    T.join();

  // Quiescent: gate 1 — byte identity of every published snapshot.
  for (uint32_t S = 0; S < Server.numShards(); ++S) {
    std::string Why;
    if (!Server.shard(S).verifyPublished(&Why)) {
      std::cerr << "FAIL: snapshot byte-identity violated on shard " << S
                << ": " << Why << "\n";
      std::exit(1);
    }
  }

  PhaseResult Res;
  Res.Writers = NumWriters;
  Res.WallSec = WallSec;
  std::vector<uint64_t> All;
  for (const auto &Lat : Latencies)
    All.insert(All.end(), Lat.begin(), Lat.end());
  Res.Queries = All.size();
  uint64_t SumNs = 0;
  for (uint64_t L : All)
    SumNs += L;
  Res.InQuerySec = double(SumNs) / 1e9;
  std::sort(All.begin(), All.end());
  Res.P50Ns = All[All.size() / 2];
  Res.P99Ns = All[All.size() * 99 / 100];

  TelemetrySnapshot Snap = TelemetryRegistry::global().snapshot();
  const ValueStats &Lag = Snap.Values["serve.epoch_lag"];
  Res.MeanEpochLag = Lag.mean();
  Res.MaxEpochLag = Lag.Count ? Lag.Max : 0;

  for (uint32_t S = 0; S < Server.numShards(); ++S) {
    ShardStats St = Server.shard(S).stats();
    Res.Commits += St.Commits;
    Res.Published += St.Published;
    Res.Reclaimed += St.Reclaimed;
  }
  return Res;
}

// -- Cold-vs-warm derived-cache phase ---------------------------------------

struct KindTiming {
  const char *Name;
  RequestKind Kind;
  uint64_t Count = 0;
  uint64_t UncachedNs = 0; ///< Best-of-passes total ns, cache disabled.
  uint64_t ColdNs = 0;     ///< Total ns, first cached pass (builds bundles).
  uint64_t WarmNs = 0;     ///< Best-of-passes total ns, warm cached passes.
  bool Gated = false;      ///< Participates in the >=5x warm gate.

  double uncachedMeanNs() const { return double(UncachedNs) / Count; }
  double coldMeanNs() const { return double(ColdNs) / Count; }
  double warmMeanNs() const { return double(WarmNs) / Count; }
  double warmSpeedup() const { return double(UncachedNs) / double(WarmNs); }
};

/// One deterministic request per function for \p Kind, with node args
/// derived from the base image (always valid: functions have >= 2 nodes).
std::vector<Request> kindRequests(const CorpusImage &Img, RequestKind Kind) {
  std::vector<Request> Out;
  Out.reserve(Img.numFunctions());
  for (uint64_t Fn = 0; Fn < Img.numFunctions(); ++Fn) {
    uint32_t Nodes = Img.cfg(Fn).numNodes();
    Request R;
    R.Kind = Kind;
    R.Fn = Fn;
    switch (Kind) {
    case RequestKind::Region:
      R.A = Nodes - 1;
      R.B = Nodes / 2;
      break;
    case RequestKind::Cdep:
    case RequestKind::Dom:
      R.A = Nodes / 2;
      break;
    case RequestKind::Phi:
      R.Defs = {1u % Nodes, Nodes - 1};
      break;
    default:
      break;
    }
    Out.push_back(std::move(R));
  }
  return Out;
}

uint64_t timeRequests(const PstServer &S, const std::vector<Request> &Reqs,
                      std::vector<std::string> *Responses) {
  QueryScratch Sc;
  auto T0 = Clock::now();
  for (const Request &R : Reqs) {
    std::string Resp = S.execute(R, Sc);
    if (Responses)
      Responses->push_back(std::move(Resp));
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - T0)
          .count());
}

PstServer makeServer(std::vector<uint8_t> ImageBytes, uint32_t NumShards,
                     bool DerivedCache, unsigned NumThreads = 1) {
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(std::move(ImageBytes), &Error);
  if (!Img.valid()) {
    std::cerr << "error: " << Error << "\n";
    std::exit(1);
  }
  ServeOptions Opts;
  Opts.NumShards = NumShards;
  Opts.NumThreads = NumThreads;
  Opts.DerivedCache = DerivedCache;
  return PstServer(std::move(Img), Opts);
}

/// Runs every query kind over every function three ways — cache disabled,
/// cache cold (first touch builds), cache warm — and checks the response
/// strings agree across all three. Gates: warm dom/cdep/phi means must
/// beat the uncached means by WARM_SPEEDUP_GATE, and the cached server
/// must have built exactly one bundle per function.
std::vector<KindTiming> runColdWarm(const std::vector<uint8_t> &Bytes,
                                    uint32_t NumShards) {
  std::vector<KindTiming> Kinds = {
      {"region", RequestKind::Region, 0, 0, 0, 0, false},
      {"regions", RequestKind::Regions, 0, 0, 0, 0, false},
      {"dom", RequestKind::Dom, 0, 0, 0, 0, true},
      {"cdep", RequestKind::Cdep, 0, 0, 0, 0, true},
      {"phi", RequestKind::Phi, 0, 0, 0, 0, true},
  };

  PstServer Uncached = makeServer(Bytes, NumShards, /*DerivedCache=*/false);
  PstServer Cached = makeServer(Bytes, NumShards, /*DerivedCache=*/true);

  for (KindTiming &K : Kinds) {
    std::vector<Request> Reqs = kindRequests(Cached.image(), K.Kind);
    K.Count = Reqs.size();
    std::vector<std::string> UncachedResp, ColdResp, WarmResp;
    UncachedResp.reserve(Reqs.size());
    ColdResp.reserve(Reqs.size());
    WarmResp.reserve(Reqs.size());
    K.UncachedNs = timeRequests(Uncached, Reqs, &UncachedResp);
    K.ColdNs = timeRequests(Cached, Reqs, &ColdResp);
    K.WarmNs = timeRequests(Cached, Reqs, &WarmResp);
    // The cold pass is definitionally one-shot (first touch builds), but
    // the uncached and warm passes are steady-state: take the best of a
    // few so scheduler noise on a shared single-core container cannot
    // flip the ratio gate on sub-microsecond per-request times.
    for (int Pass = 1; Pass < 3; ++Pass) {
      K.UncachedNs =
          std::min(K.UncachedNs, timeRequests(Uncached, Reqs, nullptr));
      K.WarmNs = std::min(K.WarmNs, timeRequests(Cached, Reqs, nullptr));
    }
    if (UncachedResp != ColdResp || ColdResp != WarmResp) {
      std::cerr << "FAIL: cached responses diverge from uncached for "
                << K.Name << "\n";
      std::exit(1);
    }
  }

  // Every function's bundle was needed by all five kind passes but must
  // have been built exactly once (the once-init contract at bench scale).
  DerivedCacheStats CS = Cached.derivedCacheStats();
  if (CS.Builds != Cached.numFunctions()) {
    std::cerr << "FAIL: expected exactly one bundle build per function ("
              << Cached.numFunctions() << "), saw " << CS.Builds << "\n";
    std::exit(1);
  }
  std::printf("derived cache: %llu builds, %llu hits, %.1f MB built, "
              "%.2f ms total build time\n",
              static_cast<unsigned long long>(CS.Builds),
              static_cast<unsigned long long>(CS.Hits),
              double(CS.BytesBuilt) / 1e6, double(CS.BuildNs) / 1e6);

  bool GateOk = true;
  for (const KindTiming &K : Kinds) {
    std::printf("%-8s uncached=%.0fns  cold=%.0fns  warm=%.0fns  "
                "speedup=%.1fx%s\n",
                K.Name, K.uncachedMeanNs(), K.coldMeanNs(), K.warmMeanNs(),
                K.warmSpeedup(), K.Gated ? "  (gated)" : "");
    if (K.Gated && K.warmSpeedup() < WARM_SPEEDUP_GATE)
      GateOk = false;
  }
  if (!GateOk) {
    std::cerr << "FAIL: warm cached latency did not beat the uncached path "
              << "by at least " << WARM_SPEEDUP_GATE
              << "x for every gated kind\n";
    std::exit(1);
  }
  return Kinds;
}

// -- Cached-vs-uncached transcript identity ---------------------------------

/// A deterministic scripted session: a query mix over the whole corpus
/// with edits, commits, and verify barriers interleaved, ending in quit.
std::string transcriptScript(const CorpusImage &Img, size_t NumLines) {
  std::string S;
  uint64_t Rng = 0xfeedface5eed1234ull;
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  for (size_t I = 0; I < NumLines; ++I) {
    uint64_t Fn = Next() % Img.numFunctions();
    uint32_t Nodes = Img.cfg(Fn).numNodes();
    std::string F = std::to_string(Fn);
    switch (Next() % 8) {
    case 0:
      S += "region " + F + " " + std::to_string(Next() % Nodes) + " " +
           std::to_string(Next() % Nodes) + "\n";
      break;
    case 1:
      S += "regions " + F + "\n";
      break;
    case 2:
      S += "cdep " + F + " " + std::to_string(Next() % Nodes) + "\n";
      break;
    case 3:
      S += "dom " + F + " " + std::to_string(Next() % Nodes) + "\n";
      break;
    case 4:
      S += "phi " + F + " " + std::to_string(Next() % Nodes) + "," +
           std::to_string(Next() % Nodes) + "\n";
      break;
    case 5:
      S += "name " + F + "\n";
      break;
    case 6:
      S += "edit " + F + " addblock 0 1\n";
      break;
    default:
      S += "commit\n";
      break;
    }
    if (I % 40 == 39)
      S += "verify\n";
  }
  S += "commit\nverify\nquit\n";
  return S;
}

/// Runs \p Script against fresh servers across the full cache x threads x
/// batch cross product; every transcript must be byte-identical.
void checkTranscriptIdentity(const std::vector<uint8_t> &Bytes,
                             uint32_t NumShards, const std::string &Script) {
  std::string Reference;
  bool First = true;
  for (bool Cache : {true, false}) {
    for (unsigned Threads : {1u, 4u}) {
      for (size_t Batch : {size_t(1), size_t(7), size_t(256)}) {
        PstServer Server = makeServer(Bytes, NumShards, Cache, Threads);
        ServerSession Session(Server, Batch);
        std::istringstream In(Script);
        std::ostringstream Out;
        Session.run(In, Out);
        if (First) {
          Reference = Out.str();
          First = false;
        } else if (Out.str() != Reference) {
          std::cerr << "FAIL: transcript diverged at cache="
                    << (Cache ? "on" : "off") << " threads=" << Threads
                    << " batch=" << Batch << "\n";
          std::exit(1);
        }
      }
    }
  }
  std::printf("transcripts byte-identical across cache on/off x threads "
              "{1,4} x batch {1,7,256}\n");
}

void writeJson(const std::string &Path, size_t NumFns, uint32_t NumShards,
               unsigned NumReaders, uint64_t QueriesPerReader,
               const std::vector<PhaseResult> &Phases, double Ratio,
               const std::vector<KindTiming> &Kinds,
               const std::vector<std::pair<unsigned, PhaseResult>> &Scaling) {
  std::ofstream OS(Path, std::ios::binary);
  OS << "{\n";
  std::string Corpus = "gen" + std::to_string(NumFns);
  pstbench::writeSchemaPreamble(OS, "serve", Corpus.c_str(),
                                Phases.front().qpsInQuery());
  OS << "  \"shards\": " << NumShards << ",\n";
  OS << "  \"readers\": " << NumReaders << ",\n";
  OS << "  \"queries_per_reader\": " << QueriesPerReader << ",\n";
  OS << "  \"phases\": [\n";
  for (size_t I = 0; I < Phases.size(); ++I) {
    const PhaseResult &P = Phases[I];
    OS << "    {\"writers\": " << P.Writers << ", \"queries\": " << P.Queries
       << ", \"qps_wall\": " << P.qpsWall()
       << ", \"qps_inquery\": " << P.qpsInQuery()
       << ", \"p50_ns\": " << P.P50Ns << ", \"p99_ns\": " << P.P99Ns
       << ", \"mean_epoch_lag\": " << P.MeanEpochLag
       << ", \"max_epoch_lag\": " << P.MaxEpochLag
       << ", \"commits\": " << P.Commits
       << ", \"published\": " << P.Published
       << ", \"reclaimed\": " << P.Reclaimed << "}"
       << (I + 1 < Phases.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"derived_cache\": {\n";
  for (size_t I = 0; I < Kinds.size(); ++I) {
    const KindTiming &K = Kinds[I];
    OS << "    \"" << K.Name << "\": {\"uncached_ns\": " << K.uncachedMeanNs()
       << ", \"cold_ns\": " << K.coldMeanNs()
       << ", \"warm_ns\": " << K.warmMeanNs()
       << ", \"warm_speedup\": " << K.warmSpeedup()
       << ", \"gated\": " << (K.Gated ? "true" : "false") << "}"
       << (I + 1 < Kinds.size() ? "," : "") << "\n";
  }
  OS << "  },\n";
  OS << "  \"warm_speedup_gate\": " << WARM_SPEEDUP_GATE << ",\n";
  OS << "  \"read_scaling\": [\n";
  for (size_t I = 0; I < Scaling.size(); ++I) {
    const PhaseResult &P = Scaling[I].second;
    OS << "    {\"reader_threads\": " << Scaling[I].first
       << ", \"queries\": " << P.Queries << ", \"qps_wall\": " << P.qpsWall()
       << ", \"qps_inquery\": " << P.qpsInQuery()
       << ", \"p50_ns\": " << P.P50Ns << ", \"p99_ns\": " << P.P99Ns << "}"
       << (I + 1 < Scaling.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"one_writer_throughput_ratio\": " << Ratio << ",\n";
  OS << "  \"min_ratio_gate\": " << MIN_RATIO << ",\n";
  OS << "  \"transcript_identity\": \"ok\",\n";
  OS << "  \"byte_identity\": \"ok\"\n";
  OS << "}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  size_t NumFns = 2000;
  uint64_t QueriesPerReader = 4000;
  unsigned NumReaders = 2;
  uint32_t NumShards = 8;
  std::string ThreadList = "1,2,4";
  std::string OutPath = "BENCH_serve.json";
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << Flag << " needs an argument\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    if (A == "--fns")
      NumFns = std::strtoull(Next("--fns"), nullptr, 0);
    else if (A == "--queries")
      QueriesPerReader = std::strtoull(Next("--queries"), nullptr, 0);
    else if (A == "--readers")
      NumReaders = static_cast<unsigned>(std::strtoul(Next("--readers"),
                                                      nullptr, 0));
    else if (A == "--shards")
      NumShards = static_cast<uint32_t>(std::strtoul(Next("--shards"),
                                                     nullptr, 0));
    else if (A == "--threads")
      ThreadList = Next("--threads");
    else if (A == "--out")
      OutPath = Next("--out");
    else {
      std::cerr << "usage: time_serve [--fns n] [--queries n] [--readers n]"
                   " [--shards n] [--threads list] [--out f]\n";
      return 2;
    }
  }

  // Parse the read-scaling sweep's reader-thread counts.
  std::vector<unsigned> SweepThreads;
  for (size_t Pos = 0; Pos < ThreadList.size();) {
    size_t Comma = ThreadList.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = ThreadList.size();
    unsigned T = static_cast<unsigned>(
        std::strtoul(ThreadList.substr(Pos, Comma - Pos).c_str(), nullptr, 0));
    if (T)
      SweepThreads.push_back(T);
    Pos = Comma + 1;
  }

  // The epoch-lag probe is the only telemetry consumer here; enabling it
  // costs one relaxed load per probe on the query path for every phase
  // equally, so the ratio gate is unaffected.
  Telemetry::setEnabled(true);

  std::cout << "Building " << NumFns << "-function corpus image...\n";
  std::vector<Cfg> Corpus = generatedCorpus(NumFns);
  std::vector<const Cfg *> Ptrs;
  Ptrs.reserve(Corpus.size());
  for (const Cfg &G : Corpus)
    Ptrs.push_back(&G);
  std::vector<uint8_t> Bytes = buildCorpusImage(Ptrs);
  std::cout << "Image: " << Bytes.size() << " bytes, " << NumShards
            << " shards, " << NumReaders << " readers x " << QueriesPerReader
            << " queries\n\n";

  std::vector<PhaseResult> Phases;
  for (unsigned W : {0u, 1u, 8u}) {
    Phases.push_back(runPhase(Bytes, W, NumReaders, QueriesPerReader,
                              NumShards));
    const PhaseResult &P = Phases.back();
    std::printf("writers=%u  queries=%llu  qps(wall)=%.0f  qps(in-query)=%.0f"
                "  p50=%lluns  p99=%lluns  lag(mean)=%.2f  commits=%llu\n",
                P.Writers, static_cast<unsigned long long>(P.Queries),
                P.qpsWall(), P.qpsInQuery(),
                static_cast<unsigned long long>(P.P50Ns),
                static_cast<unsigned long long>(P.P99Ns), P.MeanEpochLag,
                static_cast<unsigned long long>(P.Commits));
  }

  // Gate 2: one continuously committing writer must not cost pinned
  // readers more than (1 - MIN_RATIO) of their in-query throughput.
  double Ratio = Phases[1].qpsInQuery() / Phases[0].qpsInQuery();
  std::printf("\n1-writer/0-writer in-query throughput ratio: %.3f"
              " (gate: >= %.2f)\n\n",
              Ratio, MIN_RATIO);

  // Cold-vs-warm derived-cache phase (gates >=5x warm speedup on
  // dom/cdep/phi and exactly-once bundle builds; exits 1 itself).
  std::vector<KindTiming> Kinds = runColdWarm(Bytes, NumShards);
  std::cout << "\n";

  // Cached-vs-uncached transcript identity at every threads/batch setting
  // (exits 1 on divergence).
  {
    std::string Error;
    CorpusImage ScriptImg = CorpusImage::fromBytes(Bytes, &Error);
    if (!ScriptImg.valid()) {
      std::cerr << "error: " << Error << "\n";
      return 1;
    }
    checkTranscriptIdentity(Bytes, NumShards,
                            transcriptScript(ScriptImg, /*NumLines=*/600));
  }
  std::cout << "\n";

  // Read-scaling sweep: zero-writer phases at each reader-thread count.
  std::vector<std::pair<unsigned, PhaseResult>> Scaling;
  for (unsigned T : SweepThreads) {
    Scaling.emplace_back(T,
                         runPhase(Bytes, 0, T, QueriesPerReader, NumShards));
    const PhaseResult &P = Scaling.back().second;
    std::printf("readers=%u  queries=%llu  qps(wall)=%.0f  "
                "qps(in-query)=%.0f  p50=%lluns  p99=%lluns\n",
                T, static_cast<unsigned long long>(P.Queries), P.qpsWall(),
                P.qpsInQuery(), static_cast<unsigned long long>(P.P50Ns),
                static_cast<unsigned long long>(P.P99Ns));
  }

  writeJson(OutPath, NumFns, NumShards, NumReaders, QueriesPerReader, Phases,
            Ratio, Kinds, Scaling);
  std::cout << "Wrote " << OutPath << "\n";

  if (Ratio < MIN_RATIO) {
    std::cerr << "FAIL: reader throughput under one writer dropped below "
              << MIN_RATIO << " of the zero-writer baseline\n";
    return 1;
  }
  return 0;
}
