//===- time_serve.cpp - Serving-layer latency and throughput ------------------===//
//
// Measures the serving layer's read path under write pressure: reader
// threads issue a deterministic query mix against a PstServer while
// 0 / 1 / 8 writers journal edits and commit epochs as fast as they can.
// Per phase it reports query latency (p50/p99), throughput two ways —
// wall-clock and *in-query* (queries divided by the summed per-query
// latencies, which is the number that stays meaningful when the host has
// fewer cores than threads) — and the mean/max epoch lag readers actually
// observed (from the serve.epoch_lag telemetry probe).
//
// Two acceptance gates, both exit 1 on violation:
//
//   * snapshot integrity — after every phase, each shard's published
//     overlay must be byte-identical to a from-scratch freeze of its
//     writer's committed graph (Shard::verifyPublished);
//   * read isolation — with one writer committing continuously, pinned
//     readers must sustain at least MIN_RATIO (80%) of the zero-writer
//     in-query throughput: publication must never block the read path.
//
// Each phase runs against a fresh server over the same in-memory image,
// so edit histories never leak across phases. Emits a human-readable
// table on stdout and machine-readable BENCH_serve.json.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "pst/obs/Telemetry.h"
#include "pst/serve/PstServer.h"
#include "pst/workload/CfgGenerators.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace pst;
using namespace pst::serve;

namespace {

using Clock = std::chrono::steady_clock;

constexpr double MIN_RATIO = 0.80;

/// Same generator mix as time_batch_throughput / time_corpus_image.
std::vector<Cfg> generatedCorpus(size_t Count) {
  std::vector<Cfg> Out;
  Out.reserve(Count);
  Rng R(0xba7c4);
  while (Out.size() < Count) {
    switch (Out.size() % 8) {
    case 0:
      Out.push_back(diamondLadderCfg(2 + static_cast<uint32_t>(R.nextBelow(12))));
      break;
    case 1:
      Out.push_back(nestedWhileCfg(1 + static_cast<uint32_t>(R.nextBelow(5)),
                                   1 + static_cast<uint32_t>(R.nextBelow(3))));
      break;
    case 2:
      Out.push_back(
          nestedRepeatUntilCfg(2 + static_cast<uint32_t>(R.nextBelow(10))));
      break;
    case 3:
      Out.push_back(irreducibleCfg(1 + static_cast<uint32_t>(R.nextBelow(4))));
      break;
    default: {
      RandomCfgOptions O;
      O.NumNodes = 8 + static_cast<uint32_t>(R.nextBelow(56));
      O.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(O.NumNodes));
      Out.push_back(randomBackboneCfg(R, O));
      break;
    }
    }
  }
  return Out;
}

struct PhaseResult {
  unsigned Writers = 0;
  uint64_t Queries = 0;
  double WallSec = 0;
  double InQuerySec = 0; ///< Sum of per-query latencies across readers.
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  double MeanEpochLag = 0;
  uint64_t MaxEpochLag = 0;
  uint64_t Commits = 0;
  uint64_t Published = 0;
  uint64_t Reclaimed = 0;

  double qpsWall() const { return Queries / WallSec; }
  double qpsInQuery() const { return Queries / InQuerySec; }
};

/// Deterministic per-reader request stream: every reader walks its own
/// xorshift sequence over the query kinds and functions, with node
/// arguments drawn from the *base* image (edits only ever add nodes, so
/// base node ids stay valid in every epoch).
Request nextRequest(const CorpusImage &Img, uint64_t &Rng) {
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };
  Request R;
  uint64_t Fn = Next() % Img.numFunctions();
  uint32_t Nodes = Img.cfg(Fn).numNodes();
  R.Fn = Fn;
  switch (Next() % 6) {
  case 0:
    R.Kind = RequestKind::Region;
    R.A = static_cast<NodeId>(Next() % Nodes);
    R.B = static_cast<NodeId>(Next() % Nodes);
    break;
  case 1:
    R.Kind = RequestKind::Regions;
    break;
  case 2:
    R.Kind = RequestKind::Cdep;
    R.A = static_cast<NodeId>(Next() % Nodes);
    break;
  case 3:
    R.Kind = RequestKind::Dom;
    R.A = static_cast<NodeId>(Next() % Nodes);
    break;
  case 4:
    R.Kind = RequestKind::Phi;
    R.Defs.push_back(static_cast<NodeId>(Next() % Nodes));
    R.Defs.push_back(static_cast<NodeId>(Next() % Nodes));
    break;
  default:
    R.Kind = RequestKind::Name;
    break;
  }
  return R;
}

PhaseResult runPhase(std::vector<uint8_t> ImageBytes, unsigned NumWriters,
                     unsigned NumReaders, uint64_t QueriesPerReader,
                     uint32_t NumShards) {
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(std::move(ImageBytes), &Error);
  if (!Img.valid()) {
    std::cerr << "error: " << Error << "\n";
    std::exit(1);
  }
  ServeOptions Opts;
  Opts.NumShards = NumShards;
  Opts.NumThreads = 1; // Readers are external threads; no pool fan-out.
  PstServer Server(std::move(Img), Opts);

  TelemetryRegistry::global().reset();

  std::atomic<bool> StopWriters{false};
  std::atomic<unsigned> ReadersDone{0};

  // Writers: each owns one shard (single-writer contract) and loops
  // edit-batch -> commit, so a stopped writer never leaves journaled
  // edits behind (verifyPublished requires commit-point state).
  std::vector<std::thread> Writers;
  for (unsigned W = 0; W < NumWriters; ++W) {
    Writers.emplace_back([&, W] {
      Shard &Sh = Server.shard(W % NumShards);
      uint64_t Iter = 0;
      while (!StopWriters.load(std::memory_order_relaxed)) {
        // Rotate over a few of the shard's functions.
        uint64_t Fn = (W % NumShards) + NumShards * (Iter % 8);
        if (Fn < Server.numFunctions()) {
          Sh.addBlock(Fn, 0, 1);
          Sh.commit();
        }
        ++Iter;
        std::this_thread::yield();
      }
    });
  }

  // Readers: deterministic streams, per-query latency sampled.
  std::vector<std::vector<uint64_t>> Latencies(NumReaders);
  std::vector<std::thread> Readers;
  auto WallStart = Clock::now();
  for (unsigned R = 0; R < NumReaders; ++R) {
    Readers.emplace_back([&, R] {
      std::vector<uint64_t> &Lat = Latencies[R];
      Lat.reserve(QueriesPerReader);
      QueryScratch Scratch;
      uint64_t Rng = 0x9e3779b97f4a7c15ull ^ (uint64_t(R + 1) << 32);
      for (uint64_t Q = 0; Q < QueriesPerReader; ++Q) {
        Request Req = nextRequest(Server.image(), Rng);
        auto T0 = Clock::now();
        std::string Resp = Server.execute(Req, Scratch);
        auto T1 = Clock::now();
        if (Resp.rfind("ok ", 0) != 0 && Resp.rfind("err node", 0) != 0) {
          std::cerr << "error: unexpected response: " << Resp << "\n";
          std::exit(1);
        }
        Lat.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
                .count()));
      }
      ReadersDone.fetch_add(1);
    });
  }
  for (std::thread &T : Readers)
    T.join();
  double WallSec =
      std::chrono::duration<double>(Clock::now() - WallStart).count();
  StopWriters.store(true);
  for (std::thread &T : Writers)
    T.join();

  // Quiescent: gate 1 — byte identity of every published snapshot.
  for (uint32_t S = 0; S < Server.numShards(); ++S) {
    std::string Why;
    if (!Server.shard(S).verifyPublished(&Why)) {
      std::cerr << "FAIL: snapshot byte-identity violated on shard " << S
                << ": " << Why << "\n";
      std::exit(1);
    }
  }

  PhaseResult Res;
  Res.Writers = NumWriters;
  Res.WallSec = WallSec;
  std::vector<uint64_t> All;
  for (const auto &Lat : Latencies)
    All.insert(All.end(), Lat.begin(), Lat.end());
  Res.Queries = All.size();
  uint64_t SumNs = 0;
  for (uint64_t L : All)
    SumNs += L;
  Res.InQuerySec = double(SumNs) / 1e9;
  std::sort(All.begin(), All.end());
  Res.P50Ns = All[All.size() / 2];
  Res.P99Ns = All[All.size() * 99 / 100];

  TelemetrySnapshot Snap = TelemetryRegistry::global().snapshot();
  const ValueStats &Lag = Snap.Values["serve.epoch_lag"];
  Res.MeanEpochLag = Lag.mean();
  Res.MaxEpochLag = Lag.Count ? Lag.Max : 0;

  for (uint32_t S = 0; S < Server.numShards(); ++S) {
    ShardStats St = Server.shard(S).stats();
    Res.Commits += St.Commits;
    Res.Published += St.Published;
    Res.Reclaimed += St.Reclaimed;
  }
  return Res;
}

void writeJson(const std::string &Path, size_t NumFns, uint32_t NumShards,
               unsigned NumReaders, uint64_t QueriesPerReader,
               const std::vector<PhaseResult> &Phases, double Ratio) {
  std::ofstream OS(Path, std::ios::binary);
  OS << "{\n";
  std::string Corpus = "gen" + std::to_string(NumFns);
  pstbench::writeSchemaPreamble(OS, "serve", Corpus.c_str(),
                                Phases.front().qpsInQuery());
  OS << "  \"shards\": " << NumShards << ",\n";
  OS << "  \"readers\": " << NumReaders << ",\n";
  OS << "  \"queries_per_reader\": " << QueriesPerReader << ",\n";
  OS << "  \"phases\": [\n";
  for (size_t I = 0; I < Phases.size(); ++I) {
    const PhaseResult &P = Phases[I];
    OS << "    {\"writers\": " << P.Writers << ", \"queries\": " << P.Queries
       << ", \"qps_wall\": " << P.qpsWall()
       << ", \"qps_inquery\": " << P.qpsInQuery()
       << ", \"p50_ns\": " << P.P50Ns << ", \"p99_ns\": " << P.P99Ns
       << ", \"mean_epoch_lag\": " << P.MeanEpochLag
       << ", \"max_epoch_lag\": " << P.MaxEpochLag
       << ", \"commits\": " << P.Commits
       << ", \"published\": " << P.Published
       << ", \"reclaimed\": " << P.Reclaimed << "}"
       << (I + 1 < Phases.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"one_writer_throughput_ratio\": " << Ratio << ",\n";
  OS << "  \"min_ratio_gate\": " << MIN_RATIO << ",\n";
  OS << "  \"byte_identity\": \"ok\"\n";
  OS << "}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  size_t NumFns = 2000;
  uint64_t QueriesPerReader = 4000;
  unsigned NumReaders = 2;
  uint32_t NumShards = 8;
  std::string OutPath = "BENCH_serve.json";
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::cerr << "error: " << Flag << " needs an argument\n";
        std::exit(2);
      }
      return Argv[++I];
    };
    if (A == "--fns")
      NumFns = std::strtoull(Next("--fns"), nullptr, 0);
    else if (A == "--queries")
      QueriesPerReader = std::strtoull(Next("--queries"), nullptr, 0);
    else if (A == "--readers")
      NumReaders = static_cast<unsigned>(std::strtoul(Next("--readers"),
                                                      nullptr, 0));
    else if (A == "--shards")
      NumShards = static_cast<uint32_t>(std::strtoul(Next("--shards"),
                                                     nullptr, 0));
    else if (A == "--out")
      OutPath = Next("--out");
    else {
      std::cerr << "usage: time_serve [--fns n] [--queries n] [--readers n]"
                   " [--shards n] [--out f]\n";
      return 2;
    }
  }

  // The epoch-lag probe is the only telemetry consumer here; enabling it
  // costs one relaxed load per probe on the query path for every phase
  // equally, so the ratio gate is unaffected.
  Telemetry::setEnabled(true);

  std::cout << "Building " << NumFns << "-function corpus image...\n";
  std::vector<Cfg> Corpus = generatedCorpus(NumFns);
  std::vector<const Cfg *> Ptrs;
  Ptrs.reserve(Corpus.size());
  for (const Cfg &G : Corpus)
    Ptrs.push_back(&G);
  std::vector<uint8_t> Bytes = buildCorpusImage(Ptrs);
  std::cout << "Image: " << Bytes.size() << " bytes, " << NumShards
            << " shards, " << NumReaders << " readers x " << QueriesPerReader
            << " queries\n\n";

  std::vector<PhaseResult> Phases;
  for (unsigned W : {0u, 1u, 8u}) {
    Phases.push_back(runPhase(Bytes, W, NumReaders, QueriesPerReader,
                              NumShards));
    const PhaseResult &P = Phases.back();
    std::printf("writers=%u  queries=%llu  qps(wall)=%.0f  qps(in-query)=%.0f"
                "  p50=%lluns  p99=%lluns  lag(mean)=%.2f  commits=%llu\n",
                P.Writers, static_cast<unsigned long long>(P.Queries),
                P.qpsWall(), P.qpsInQuery(),
                static_cast<unsigned long long>(P.P50Ns),
                static_cast<unsigned long long>(P.P99Ns), P.MeanEpochLag,
                static_cast<unsigned long long>(P.Commits));
  }

  // Gate 2: one continuously committing writer must not cost pinned
  // readers more than (1 - MIN_RATIO) of their in-query throughput.
  double Ratio = Phases[1].qpsInQuery() / Phases[0].qpsInQuery();
  std::printf("\n1-writer/0-writer in-query throughput ratio: %.3f"
              " (gate: >= %.2f)\n",
              Ratio, MIN_RATIO);

  writeJson(OutPath, NumFns, NumShards, NumReaders, QueriesPerReader, Phases,
            Ratio);
  std::cout << "Wrote " << OutPath << "\n";

  if (Ratio < MIN_RATIO) {
    std::cerr << "FAIL: reader throughput under one writer dropped below "
              << MIN_RATIO << " of the zero-writer baseline\n";
    return 1;
  }
  return 0;
}
