//===- fig7_region_kinds.cpp - Figure 7 reproduction -----------------------------===//
//
// Figure 7: weighted proportion of regions by kind, where a region's
// weight is its number of nested maximal regions (blocks weigh 1). The
// paper's pie reports 23.2% blocks and 2.0% "other" with the rest split
// among conditionals, case, loops and dags; 182/254 procedures are fully
// structured.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/StructureMetrics.h"
#include "pst/support/TableWriter.h"
#include "pst/workload/Corpus.h"

#include <array>
#include <iostream>

using namespace pst;

int main() {
  std::cout << "=== Figure 7: weighted proportion of regions by kind ===\n\n";
  auto Corpus = generatePaperCorpus(/*Seed=*/1994);

  std::array<uint64_t, NumRegionKinds> Weighted = {};
  uint32_t Structured = 0;
  for (const auto &C : Corpus) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    PstStats S = computePstStats(C.Fn.Graph, T);
    for (size_t K = 0; K < NumRegionKinds; ++K)
      Weighted[K] += S.WeightedKind[K];
    Structured += S.FullyStructured;
  }

  uint64_t Total = 0;
  for (uint64_t W : Weighted)
    Total += W;

  TableWriter T;
  T.setHeader({"kind", "weighted count", "share %"});
  for (size_t K = 0; K < NumRegionKinds; ++K) {
    double Pct =
        100.0 * static_cast<double>(Weighted[K]) / static_cast<double>(Total);
    T.addRow({regionKindName(static_cast<RegionKind>(K)),
              std::to_string(Weighted[K]), TableWriter::fmt(Pct, 1)});
  }
  T.print(std::cout);

  std::cout << "\nfully structured procedures: " << Structured << " / "
            << Corpus.size() << " (paper: 182 / 254)\n";
  std::cout << "paper: blocks 23.2%, other/unstructured 2.0%, remainder "
               "conditionals, case, loops and dags\n";
  return 0;
}
