//===- time_cycleequiv_vs_domtree.cpp - Section 3 timing claim --------------------===//
//
// The paper: "our empirical results show that it runs faster than
// Lengauer and Tarjan's algorithm for finding dominators". This bench
// times, on the same graphs, the full cycle equivalence pass (which also
// pays for the artificial return edge and undirected bookkeeping) against
// both dominator builders.
//
//===----------------------------------------------------------------------===//

#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/dom/Dominators.h"
#include "pst/workload/CfgGenerators.h"

#include <benchmark/benchmark.h>

using namespace pst;

namespace {

/// A mixed-shape graph: structured skeleton plus random extra edges —
/// roughly the edge/node ratio of real block-level CFGs (~1.5 edges per
/// node).
Cfg makeGraph(uint32_t Nodes, uint64_t Seed) {
  Rng R(Seed);
  RandomCfgOptions Opts;
  Opts.NumNodes = Nodes;
  Opts.NumExtraEdges = Nodes / 2;
  Opts.SelfLoopProb = 0.02;
  Opts.ParallelProb = 0.02;
  return randomBackboneCfg(R, Opts);
}

void BM_CycleEquiv(benchmark::State &State) {
  Cfg G = makeGraph(static_cast<uint32_t>(State.range(0)), 7);
  for (auto _ : State) {
    CycleEquivResult R = computeCycleEquivalence(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
  State.SetItemsProcessed(State.iterations() * G.numEdges());
}

void BM_DomLengauerTarjan(benchmark::State &State) {
  Cfg G = makeGraph(static_cast<uint32_t>(State.range(0)), 7);
  for (auto _ : State) {
    DomTree T = DomTree::buildLengauerTarjan(G);
    benchmark::DoNotOptimize(T.numNodes());
  }
  State.SetItemsProcessed(State.iterations() * G.numEdges());
}

void BM_DomIterative(benchmark::State &State) {
  Cfg G = makeGraph(static_cast<uint32_t>(State.range(0)), 7);
  for (auto _ : State) {
    DomTree T = DomTree::buildIterative(G);
    benchmark::DoNotOptimize(T.numNodes());
  }
  State.SetItemsProcessed(State.iterations() * G.numEdges());
}

void BM_CycleEquivNestedLoops(benchmark::State &State) {
  Cfg G = nestedWhileCfg(static_cast<uint32_t>(State.range(0)), 4);
  for (auto _ : State) {
    CycleEquivResult R = computeCycleEquivalence(G);
    benchmark::DoNotOptimize(R.NumClasses);
  }
}

void BM_DomLTNestedLoops(benchmark::State &State) {
  Cfg G = nestedWhileCfg(static_cast<uint32_t>(State.range(0)), 4);
  for (auto _ : State) {
    DomTree T = DomTree::buildLengauerTarjan(G);
    benchmark::DoNotOptimize(T.numNodes());
  }
}

} // namespace

BENCHMARK(BM_CycleEquiv)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_DomLengauerTarjan)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_DomIterative)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_CycleEquivNestedLoops)->Arg(2000)->Arg(20000);
BENCHMARK(BM_DomLTNestedLoops)->Arg(2000)->Arg(20000);

BENCHMARK_MAIN();
