//===- time_batch_throughput.cpp - Batch engine throughput --------------------===//
//
// Measures the parallel batch analysis engine: corpus throughput
// (functions/sec) at 1, 2, 4 and hardware-concurrency threads, on the
// paper corpus and on a 10k-function generated corpus, plus the
// steady-state heap-allocation count per analysis for the legacy
// (allocate-per-call) path vs the scratch-reusing path, plus a
// single-thread comparison of the warm Cfg pipeline against the shared
// frozen-CSR CfgView pipeline (throughput and allocations per build).
//
// Emits a human-readable table on stdout and machine-readable
// BENCH_batch.json + BENCH_pipeline.json in the working directory.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "pst/runtime/BatchAnalyzer.h"

#include "pst/obs/Telemetry.h"
#include "pst/obs/TraceWriter.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/Corpus.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace pst;

//===----------------------------------------------------------------------===//
// Global allocation counter. Replacing the global operator new/delete pair
// counts every heap allocation in the process; measurement windows
// snapshot the counter before and after.
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GAllocs{0};
std::atomic<uint64_t> GAllocBytes{0};
} // namespace

void *operator new(size_t Size) {
  GAllocs.fetch_add(1, std::memory_order_relaxed);
  GAllocBytes.fetch_add(Size, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](size_t Size) { return ::operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// A 10k-function corpus from the fast structural generators: mostly
/// small random graphs (the realistic size profile), salted with the
/// structured families at varied sizes.
std::vector<Cfg> generatedCorpus(size_t Count) {
  std::vector<Cfg> Out;
  Out.reserve(Count);
  Rng R(0xba7c4);
  while (Out.size() < Count) {
    switch (Out.size() % 8) {
    case 0:
      Out.push_back(diamondLadderCfg(2 + static_cast<uint32_t>(R.nextBelow(12))));
      break;
    case 1:
      Out.push_back(nestedWhileCfg(1 + static_cast<uint32_t>(R.nextBelow(5)),
                                   1 + static_cast<uint32_t>(R.nextBelow(3))));
      break;
    case 2:
      Out.push_back(
          nestedRepeatUntilCfg(2 + static_cast<uint32_t>(R.nextBelow(10))));
      break;
    case 3:
      Out.push_back(irreducibleCfg(1 + static_cast<uint32_t>(R.nextBelow(4))));
      break;
    default: {
      RandomCfgOptions O;
      O.NumNodes = 8 + static_cast<uint32_t>(R.nextBelow(56));
      O.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(O.NumNodes));
      Out.push_back(randomBackboneCfg(R, O));
      break;
    }
    }
  }
  return Out;
}

/// Order-independent checksum of a corpus analysis, for the determinism
/// cross-check between thread counts.
uint64_t checksum(const std::vector<FunctionAnalysis> &As) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (const FunctionAnalysis &A : As) {
    auto Mix = [&H](uint64_t V) {
      H ^= V;
      H *= 0x100000001b3ULL;
    };
    Mix(A.Pst.numRegions());
    for (size_t N = 0; N < A.ControlRegions.NodeClass.size(); ++N) {
      Mix(A.ControlRegions.NodeClass[N]);
      Mix(A.Pst.regionOfNode(static_cast<NodeId>(N)));
    }
  }
  return H;
}

struct ThreadResult {
  unsigned Threads;
  double Seconds;
  double FnsPerSec;
};

struct CorpusReport {
  std::string Name;
  size_t Functions = 0;
  std::vector<ThreadResult> Results;
};

/// Times analyzeCorpus at each thread count, repeating the corpus until
/// the timed region is long enough to trust.
CorpusReport sweepThreads(const std::string &Name,
                          std::span<const Cfg *const> Fns,
                          const std::vector<unsigned> &ThreadCounts) {
  CorpusReport Report;
  Report.Name = Name;
  Report.Functions = Fns.size();

  uint64_t Reference = 0;
  for (unsigned Threads : ThreadCounts) {
    BatchOptions Opts;
    Opts.NumThreads = Threads;
    BatchAnalyzer Engine(Opts);

    // Warm-up: grows every worker scratch to steady state.
    uint64_t Sum = checksum(Engine.analyzeCorpus(Fns));
    if (Reference == 0)
      Reference = Sum;
    if (Sum != Reference) {
      std::cerr << "FATAL: thread count " << Threads
                << " changed the analysis result\n";
      std::exit(1);
    }

    const double MinSeconds = 0.5;
    size_t Rounds = 0;
    Clock::time_point Start = Clock::now();
    double Elapsed = 0;
    do {
      std::vector<FunctionAnalysis> Out = Engine.analyzeCorpus(Fns);
      ++Rounds;
      Elapsed = secondsSince(Start);
    } while (Elapsed < MinSeconds);

    double FnsPerSec = static_cast<double>(Fns.size()) * Rounds / Elapsed;
    Report.Results.push_back(ThreadResult{Threads, Elapsed / Rounds, FnsPerSec});
    std::printf("  %-10s %2u threads  %10.0f fns/sec  (%.3fs/corpus, %zu rounds)\n",
                Name.c_str(), Threads, FnsPerSec, Elapsed / Rounds, Rounds);
  }
  return Report;
}

struct AllocReport {
  double LegacyPerBuild = 0;
  double ScratchPerBuild = 0;
};

/// Allocations per full analysis (PST + control regions) of one function,
/// legacy path vs warm-scratch path, averaged over the corpus.
AllocReport measureAllocations(std::span<const Cfg *const> Fns) {
  AllocReport Report;
  const size_t Repeats = 5;

  // Legacy: every call builds its working memory from scratch.
  uint64_t Before = GAllocs.load();
  for (size_t Round = 0; Round < Repeats; ++Round)
    for (const Cfg *G : Fns) {
      ProgramStructureTree T = ProgramStructureTree::build(*G);
      ControlRegionsResult C = computeControlRegionsLinearImplicit(*G);
      (void)T;
      (void)C;
    }
  Report.LegacyPerBuild = static_cast<double>(GAllocs.load() - Before) /
                          (Repeats * Fns.size());

  // Scratch path: one warm-up pass, then count steady-state rounds.
  PstScratch Scratch;
  for (const Cfg *G : Fns)
    (void)analyzeFunction(*G, Scratch);
  Before = GAllocs.load();
  for (size_t Round = 0; Round < Repeats; ++Round)
    for (const Cfg *G : Fns)
      (void)analyzeFunction(*G, Scratch);
  Report.ScratchPerBuild = static_cast<double>(GAllocs.load() - Before) /
                           (Repeats * Fns.size());
  return Report;
}

//===----------------------------------------------------------------------===//
// Single-thread pipeline comparison: the warm per-stage Cfg path vs the
// shared frozen-CSR CfgView path (what analyzeFunction runs). Both reuse
// caller-owned scratch; the difference is the adjacency representation
// every stage consumes.
//===----------------------------------------------------------------------===//

struct PathMetrics {
  double FnsPerSec = 0;
  double AllocsPerBuild = 0;
};

struct PipelineReport {
  size_t Functions = 0;
  bool Identical = false;
  PathMetrics CfgPath;
  PathMetrics ViewPath;
};

/// Times one warm pipeline variant over the corpus, counting allocations
/// over the same window the throughput is measured in.
template <class RunOne>
PathMetrics timePath(std::span<const Cfg *const> Fns, RunOne &&Run) {
  const double MinSeconds = 0.5;
  size_t Rounds = 0;
  uint64_t AllocsBefore = GAllocs.load();
  Clock::time_point Start = Clock::now();
  double Elapsed = 0;
  do {
    for (const Cfg *G : Fns)
      Run(*G);
    ++Rounds;
    Elapsed = secondsSince(Start);
  } while (Elapsed < MinSeconds);
  PathMetrics M;
  M.FnsPerSec = static_cast<double>(Fns.size()) * Rounds / Elapsed;
  M.AllocsPerBuild = static_cast<double>(GAllocs.load() - AllocsBefore) /
                     (Rounds * Fns.size());
  return M;
}

PipelineReport measurePipeline(std::span<const Cfg *const> Fns) {
  PipelineReport R;
  R.Functions = Fns.size();

  PstBuildScratch PB;
  ControlRegionsScratch CR;
  PstScratch VS;

  // Warm-up doubles as the byte-identity cross-check: both paths must
  // produce the same PST and the same control-region numbering.
  std::vector<FunctionAnalysis> CfgOut, ViewOut;
  CfgOut.reserve(Fns.size());
  ViewOut.reserve(Fns.size());
  for (const Cfg *G : Fns) {
    FunctionAnalysis A;
    A.Pst = ProgramStructureTree::build(*G, PB);
    A.ControlRegions = computeControlRegionsLinearImplicit(*G, CR);
    CfgOut.push_back(std::move(A));
    ViewOut.push_back(analyzeFunction(*G, VS));
  }
  R.Identical = checksum(CfgOut) == checksum(ViewOut);
  if (!R.Identical) {
    std::cerr << "FATAL: CfgView pipeline diverged from the Cfg pipeline\n";
    std::exit(1);
  }

  R.CfgPath = timePath(Fns, [&](const Cfg &G) {
    ProgramStructureTree T = ProgramStructureTree::build(G, PB);
    ControlRegionsResult C = computeControlRegionsLinearImplicit(G, CR);
    (void)T;
    (void)C;
  });
  R.ViewPath =
      timePath(Fns, [&](const Cfg &G) { (void)analyzeFunction(G, VS); });
  return R;
}

/// Pre-CfgView (PR 4) numbers on the same paper corpus, pinned from that
/// PR's BENCH_batch.json on this machine: the trajectory target is
/// >= 1.25x single-thread throughput and <= 24 allocations/build against
/// these, so the report carries them for machine-readable comparison.
constexpr double Pr4BaselineFnsPerSec = 54971.1;
constexpr double Pr4BaselineScratchAllocs = 64.65;

void writePipelineJson(const std::string &Path, const PipelineReport &R) {
  std::ofstream OS(Path);
  OS << "{\n";
  pstbench::writeSchemaPreamble(OS, "pipeline", "paper",
                                R.ViewPath.FnsPerSec);
  OS << "  \"functions\": " << R.Functions << ",\n";
  OS << "  \"identical_results\": " << (R.Identical ? "true" : "false")
     << ",\n";
  OS << "  \"single_thread\": {\n";
  OS << "    \"cfg_path\": {\"functions_per_sec\": " << R.CfgPath.FnsPerSec
     << ", \"allocations_per_build\": " << R.CfgPath.AllocsPerBuild << "},\n";
  OS << "    \"cfgview_path\": {\"functions_per_sec\": " << R.ViewPath.FnsPerSec
     << ", \"allocations_per_build\": " << R.ViewPath.AllocsPerBuild << "},\n";
  OS << "    \"speedup\": "
     << (R.CfgPath.FnsPerSec > 0 ? R.ViewPath.FnsPerSec / R.CfgPath.FnsPerSec
                                 : 0)
     << "\n";
  OS << "  },\n";
  OS << "  \"pre_cfgview_baseline\": {\n";
  OS << "    \"functions_per_sec\": " << Pr4BaselineFnsPerSec << ",\n";
  OS << "    \"allocations_per_build\": " << Pr4BaselineScratchAllocs << ",\n";
  OS << "    \"speedup_vs_baseline\": "
     << R.ViewPath.FnsPerSec / Pr4BaselineFnsPerSec << "\n";
  OS << "  }\n";
  OS << "}\n";
}

void writeJson(const std::string &Path, unsigned HwThreads,
               const std::vector<CorpusReport> &Corpora,
               const AllocReport &Allocs) {
  (void)HwThreads; // Part of the shared schema preamble now.
  // Headline throughput: the paper corpus's best sweep result.
  double BestFnsPerSec = 0;
  for (const ThreadResult &R : Corpora.front().Results)
    BestFnsPerSec = std::max(BestFnsPerSec, R.FnsPerSec);
  std::ofstream OS(Path);
  OS << "{\n";
  pstbench::writeSchemaPreamble(OS, "batch_throughput",
                                Corpora.front().Name.c_str(), BestFnsPerSec);
  OS << "  \"corpora\": [\n";
  for (size_t I = 0; I < Corpora.size(); ++I) {
    const CorpusReport &C = Corpora[I];
    OS << "    {\n";
    OS << "      \"name\": \"" << C.Name << "\",\n";
    OS << "      \"functions\": " << C.Functions << ",\n";
    OS << "      \"results\": [\n";
    for (size_t J = 0; J < C.Results.size(); ++J) {
      const ThreadResult &R = C.Results[J];
      OS << "        {\"threads\": " << R.Threads
         << ", \"seconds_per_corpus\": " << R.Seconds
         << ", \"functions_per_sec\": " << R.FnsPerSec << "}"
         << (J + 1 < C.Results.size() ? "," : "") << "\n";
    }
    OS << "      ]\n";
    OS << "    }" << (I + 1 < Corpora.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"allocations_per_build\": {\n";
  OS << "    \"legacy\": " << Allocs.LegacyPerBuild << ",\n";
  OS << "    \"scratch\": " << Allocs.ScratchPerBuild << ",\n";
  OS << "    \"reduction\": "
     << (Allocs.ScratchPerBuild > 0
             ? Allocs.LegacyPerBuild / Allocs.ScratchPerBuild
             : 0)
     << "\n";
  OS << "  }\n";
  OS << "}\n";
}

} // namespace

int main(int argc, char **argv) {
  bool WantTelemetry = false;
  std::string TraceFile;
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "--telemetry") {
      WantTelemetry = true;
    } else if (Arg == "--trace-out") {
      if (I + 1 >= argc) {
        std::cerr << "error: --trace-out needs a file argument\n";
        return 1;
      }
      TraceFile = argv[++I];
    } else {
      std::cerr << "unknown option: " << Arg
                << "\nusage: time_batch_throughput [--telemetry] "
                   "[--trace-out <file>]\n";
      return 1;
    }
  }
  if (WantTelemetry || !TraceFile.empty())
    Telemetry::setEnabled(true);
  if (!TraceFile.empty())
    Telemetry::setTraceEnabled(true);

  const unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> ThreadCounts = {1, 2, 4};
  if (Hw != 1 && Hw != 2 && Hw != 4)
    ThreadCounts.push_back(Hw);

  std::cout << "=== Batch analysis throughput (hardware_concurrency=" << Hw
            << ") ===\n\n";

  // The paper corpus: 254 realistic lowered procedures.
  std::vector<CorpusFunction> Paper = generatePaperCorpus(/*Seed=*/1994);
  std::vector<const Cfg *> PaperPtrs;
  PaperPtrs.reserve(Paper.size());
  for (const CorpusFunction &F : Paper)
    PaperPtrs.push_back(&F.Fn.Graph);

  // A 10k-function generated corpus: enough items that scheduling and
  // scratch reuse, not generation noise, dominate.
  std::vector<Cfg> Generated = generatedCorpus(10000);
  std::vector<const Cfg *> GenPtrs;
  GenPtrs.reserve(Generated.size());
  for (const Cfg &G : Generated)
    GenPtrs.push_back(&G);

  std::vector<CorpusReport> Corpora;
  Corpora.push_back(sweepThreads(
      "paper", std::span<const Cfg *const>(PaperPtrs), ThreadCounts));
  Corpora.push_back(sweepThreads(
      "gen10k", std::span<const Cfg *const>(GenPtrs), ThreadCounts));

  std::cout << "\n=== Steady-state heap allocations per analysis ===\n";
  AllocReport Allocs =
      measureAllocations(std::span<const Cfg *const>(PaperPtrs));
  std::printf("  legacy path : %8.1f allocations/build\n", Allocs.LegacyPerBuild);
  std::printf("  scratch path: %8.1f allocations/build (%.1fx fewer)\n",
              Allocs.ScratchPerBuild,
              Allocs.ScratchPerBuild > 0
                  ? Allocs.LegacyPerBuild / Allocs.ScratchPerBuild
                  : 0.0);

  std::cout << "\n=== Single-thread pipeline: Cfg path vs shared CfgView ===\n";
  PipelineReport Pipeline =
      measurePipeline(std::span<const Cfg *const>(PaperPtrs));
  std::printf("  cfg path    : %10.0f fns/sec  %8.1f allocations/build\n",
              Pipeline.CfgPath.FnsPerSec, Pipeline.CfgPath.AllocsPerBuild);
  std::printf("  cfgview path: %10.0f fns/sec  %8.1f allocations/build "
              "(%.2fx faster, results identical)\n",
              Pipeline.ViewPath.FnsPerSec, Pipeline.ViewPath.AllocsPerBuild,
              Pipeline.CfgPath.FnsPerSec > 0
                  ? Pipeline.ViewPath.FnsPerSec / Pipeline.CfgPath.FnsPerSec
                  : 0.0);

  writeJson("BENCH_batch.json", Hw, Corpora, Allocs);
  writePipelineJson("BENCH_pipeline.json", Pipeline);
  std::cout << "\nwrote BENCH_batch.json and BENCH_pipeline.json\n";

  if (!TraceFile.empty()) {
    TraceWriter Writer;
    if (!Writer.writeFile(TraceFile)) {
      std::cerr << "error: cannot write trace to '" << TraceFile << "'\n";
      return 1;
    }
    std::cout << "wrote chrome trace to " << TraceFile << "\n";
  }
  if (WantTelemetry)
    std::cout << "\n-- telemetry --\n"
              << TelemetryRegistry::global().toJson();
  return 0;
}
