//===- fig_qpg_sparsity.cpp - Section 6.2 QPG size claim --------------------------===//
//
// Section 6.2: "Preliminary studies show that the QPG is usually quite
// small compared to the original CFG, averaging less than 10% the size of
// the (statement-level) CFG." We expand every corpus procedure to a
// statement-level CFG (one instruction per node, the paper's granularity),
// sweep single-expression availability instances, and report QPG/CFG node
// ratios. We also build Choi-Cytron-Ferrante sparse evaluation graphs for
// the same instances — the paper's related-work comparison: SEGs are
// "in general smaller than our quick propagation graphs. However, they are
// more costly to build" (they need dominance frontiers; the QPG reuses the
// PST).
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/dataflow/Problems.h"
#include "pst/dataflow/Qpg.h"
#include "pst/dataflow/Seg.h"
#include "pst/support/TableWriter.h"
#include "pst/workload/Corpus.h"

#include <iostream>

using namespace pst;

int main() {
  std::cout << "=== QPG sparsity (statement-level CFGs): quick propagation "
               "graph vs CFG vs SEG ===\n\n";
  auto Corpus = generatePaperCorpus(/*Seed=*/1994);

  uint64_t Instances = 0;
  double QpgRatioSum = 0, SegRatioSum = 0;
  uint64_t Under10 = 0;
  uint64_t TotalQpg = 0, TotalSeg = 0, TotalCfg = 0;

  for (const auto &C : Corpus) {
    LoweredFunction F = expandToStatementLevel(C.Fn);
    ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
    DomTree DT = DomTree::buildIterative(F.Graph);
    DominanceFrontiers DF(F.Graph, DT);

    // The paper-style "x + y" instances: simple binary expressions over
    // variables, a handful per procedure to bound runtime.
    std::vector<std::string> Keys;
    for (std::string &K : expressionKeys(F)) {
      bool Simple = !K.empty() && K.front() == '(' &&
                    K.find('(', 1) == std::string::npos;
      bool HasVar = K.find_first_of(
                        "abcdefghijklmnopqrstuvwxyz") != std::string::npos;
      if (Simple && HasVar)
        Keys.push_back(std::move(K));
    }
    size_t Step = std::max<size_t>(1, Keys.size() / 6);
    for (size_t I = 0; I < Keys.size(); I += Step) {
      BitVectorProblem P = makeSingleExprAvailability(F, Keys[I]);
      Qpg Q = buildQpg(F.Graph, T, P);
      Seg S = buildSeg(F.Graph, DT, DF, P);
      double QpgRatio = static_cast<double>(Q.numNodes()) /
                        static_cast<double>(F.Graph.numNodes());
      double SegRatio = static_cast<double>(S.numNodes()) /
                        static_cast<double>(F.Graph.numNodes());
      QpgRatioSum += QpgRatio;
      SegRatioSum += SegRatio;
      TotalQpg += Q.numNodes();
      TotalSeg += S.numNodes();
      TotalCfg += F.Graph.numNodes();
      Under10 += QpgRatio < 0.10;
      ++Instances;
    }
  }

  TableWriter T;
  T.setHeader({"metric", "value"});
  T.addRow({"single-expression instances", std::to_string(Instances)});
  T.addRow({"mean QPG / stmt-level CFG %",
            TableWriter::fmt(100.0 * QpgRatioSum /
                                 static_cast<double>(Instances), 1)});
  T.addRow({"aggregate QPG / stmt-level CFG %",
            TableWriter::fmt(100.0 * static_cast<double>(TotalQpg) /
                                 static_cast<double>(TotalCfg), 1)});
  T.addRow({"instances under 10% %",
            TableWriter::fmt(100.0 * static_cast<double>(Under10) /
                                 static_cast<double>(Instances), 1)});
  T.addRow({"mean SEG / stmt-level CFG % [CCF91]",
            TableWriter::fmt(100.0 * SegRatioSum /
                                 static_cast<double>(Instances), 1)});
  T.addRow({"aggregate SEG / stmt-level CFG %",
            TableWriter::fmt(100.0 * static_cast<double>(TotalSeg) /
                                 static_cast<double>(TotalCfg), 1)});
  T.print(std::cout);

  std::cout << "\npaper: QPG averages under 10% of the statement-level "
               "CFG; SEGs are smaller still but costlier to build\n";
  return 0;
}
