//===- bench_common.h - Shared helpers for the plain benches ----*- C++ -*-===//
//
// Part of the PST library (see include/pst/image/CorpusImage.h for the
// project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bits every plain (non-google-benchmark) bench shares: the process
/// peak-RSS probe and the common BENCH_*.json preamble.
///
/// Every BENCH_*.json file opens with the same schema ("pst-bench-v1")
/// fields, so cross-bench tooling can read any of them without per-bench
/// cases (see EXPERIMENTS.md for the field reference):
///
///   schema                "pst-bench-v1"
///   bench                 which bench produced the file
///   corpus                the headline corpus measured
///   fns_per_sec           the bench's headline throughput (0 if N/A)
///   peak_rss_bytes        getrusage high-water mark at emit time
///   hardware_concurrency  std::thread::hardware_concurrency()
///
/// Bench-specific payload follows the preamble in the same JSON object.
///
//===----------------------------------------------------------------------===//

#ifndef PST_BENCH_COMMON_H
#define PST_BENCH_COMMON_H

#include <cstdint>
#include <ostream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pstbench {

/// The process's peak resident set in bytes (getrusage high-water mark —
/// monotone over the process lifetime, which is what makes it usable as a
/// bounded-memory gate: nothing that ran earlier can be hidden). Returns 0
/// where getrusage is unavailable.
inline uint64_t peakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Ru;
  if (getrusage(RUSAGE_SELF, &Ru) != 0)
    return 0;
#if defined(__APPLE__)
  return uint64_t(Ru.ru_maxrss); // Bytes on macOS.
#else
  return uint64_t(Ru.ru_maxrss) * 1024; // KiB on Linux.
#endif
#else
  return 0;
#endif
}

/// Writes the shared "pst-bench-v1" preamble fields (with a trailing
/// comma): the caller opens the object with "{\n", calls this, then emits
/// its bench-specific payload.
inline void writeSchemaPreamble(std::ostream &OS, const char *Bench,
                                const char *Corpus, double FnsPerSec) {
  OS << "  \"schema\": \"pst-bench-v1\",\n";
  OS << "  \"bench\": \"" << Bench << "\",\n";
  OS << "  \"corpus\": \"" << Corpus << "\",\n";
  OS << "  \"fns_per_sec\": " << FnsPerSec << ",\n";
  OS << "  \"peak_rss_bytes\": " << peakRssBytes() << ",\n";
  OS << "  \"hardware_concurrency\": "
     << std::thread::hardware_concurrency() << ",\n";
}

} // namespace pstbench

#endif // PST_BENCH_COMMON_H
