# Benchmark binaries: one per table/figure/claim of the paper. Included
# from the top-level CMakeLists so that ${CMAKE_BINARY_DIR}/bench contains
# exactly the bench executables.

function(pst_add_bench name)
  add_executable(${name} ${PROJECT_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    pst_workload pst_dataflow pst_ssa pst_cdg pst_incremental pst_lang
    pst_core pst_cycleequiv pst_dom pst_graph pst_support)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(pst_add_timing_bench name)
  pst_add_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

# Structural reproductions (print the paper's rows/series).
pst_add_bench(table1_corpus)
pst_add_bench(fig5_depth_histogram)
pst_add_bench(fig6_size_vs_procsize)
pst_add_bench(fig7_region_kinds)
pst_add_bench(fig9_max_region_size)
pst_add_bench(fig10_phi_sparsity)
pst_add_bench(fig_qpg_sparsity)

# Batch engine throughput (plain bench: custom JSON + allocation counter,
# which google-benchmark's own allocations would pollute).
pst_add_bench(time_batch_throughput)
target_link_libraries(time_batch_throughput PRIVATE pst_runtime)

# Region profiler pipeline (plain bench: custom JSON + a hard determinism
# cross-check on the report bytes).
pst_add_bench(time_region_profile)
target_link_libraries(time_region_profile PRIVATE pst_prof)

# Frozen corpus image cold start (plain bench: custom JSON + a byte-identity
# cross-check between mapped and freshly built PSTs).
pst_add_bench(time_corpus_image)
target_link_libraries(time_corpus_image PRIVATE pst_runtime pst_image)

# Streaming million-function pipeline (plain bench: custom JSON + an
# enforced peak-RSS bound across corpus sizes).
pst_add_bench(time_stream_corpus)
target_link_libraries(time_stream_corpus PRIVATE pst_runtime pst_image)

# Serving layer under write pressure (plain bench: custom JSON + two hard
# gates — published-snapshot byte identity and the >=80% pinned-reader
# throughput floor with one writer committing).
pst_add_bench(time_serve)
target_link_libraries(time_serve PRIVATE pst_serve pst_image pst_obs)

# Timing comparisons (google-benchmark).
pst_add_timing_bench(time_cycleequiv_vs_domtree)
pst_add_timing_bench(time_control_regions)
pst_add_timing_bench(time_ssa_placement)
pst_add_timing_bench(time_dataflow)
pst_add_timing_bench(time_incremental_pst)
