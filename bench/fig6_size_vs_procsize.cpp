//===- fig6_size_vs_procsize.cpp - Figure 6 reproduction -------------------------===//
//
// Figure 6(a): PST size (number of regions) versus procedure size — the
// number of regions grows with procedure size. Figure 6(b): average PST
// depth versus procedure size — depth stays flat. We bin procedures by
// statement count and report per-bin means (the paper shows scatter
// plots; the binned trend captures the same shape).
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/StructureMetrics.h"
#include "pst/support/TableWriter.h"
#include "pst/workload/Corpus.h"

#include <algorithm>
#include <iostream>
#include <vector>

using namespace pst;

int main() {
  std::cout << "=== Figure 6: PST size and depth versus procedure size "
               "===\n\n";
  auto Corpus = generatePaperCorpus(/*Seed=*/1994);

  struct Row {
    uint32_t Stmts;
    uint32_t Regions;
    double AvgDepth;
  };
  std::vector<Row> Rows;
  for (const auto &C : Corpus) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    PstStats S = computePstStats(C.Fn.Graph, T);
    Rows.push_back(Row{C.Fn.NumStatements, S.NumRegions, S.AvgDepth});
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.Stmts < B.Stmts; });

  // Bin by procedure size.
  const uint32_t Bins[] = {25, 50, 100, 200, 400, 800, 100000};
  TableWriter T;
  T.setHeader({"proc size (stmts)", "procedures", "mean regions",
               "mean avg-depth"});
  uint32_t Lo = 0;
  size_t I = 0;
  for (uint32_t Hi : Bins) {
    uint64_t N = 0, RegionSum = 0;
    double DepthSum = 0;
    while (I < Rows.size() && Rows[I].Stmts < Hi) {
      ++N;
      RegionSum += Rows[I].Regions;
      DepthSum += Rows[I].AvgDepth;
      ++I;
    }
    if (N > 0) {
      std::string Label = std::to_string(Lo) + "-" +
                          (Hi == 100000 ? "+" : std::to_string(Hi));
      T.addRow({Label, std::to_string(N),
                TableWriter::fmt(static_cast<double>(RegionSum) /
                                     static_cast<double>(N), 1),
                TableWriter::fmt(DepthSum / static_cast<double>(N), 2)});
    }
    Lo = Hi;
  }
  T.print(std::cout);

  std::cout << "\npaper: number of regions grows with procedure size; "
               "average nesting depth is flat (independent of size)\n";
  return 0;
}
