//===- fig9_max_region_size.cpp - Figure 9 reproduction --------------------------===//
//
// Figure 9: maximum region size versus procedure size. Region size is the
// collapsed-body size (immediate nodes plus nested regions counted as
// single statements) — the quantity that makes per-region SSA placement
// cheap. The paper's point: maximum region size stays roughly flat as
// procedures grow.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/StructureMetrics.h"
#include "pst/support/TableWriter.h"
#include "pst/workload/Corpus.h"

#include <algorithm>
#include <iostream>
#include <vector>

using namespace pst;

int main() {
  std::cout << "=== Figure 9: maximum collapsed region size versus "
               "procedure size ===\n\n";
  auto Corpus = generatePaperCorpus(/*Seed=*/1994);

  struct Row {
    uint32_t Stmts;
    uint32_t MaxRegion;
  };
  std::vector<Row> Rows;
  for (const auto &C : Corpus) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    PstStats S = computePstStats(C.Fn.Graph, T);
    Rows.push_back(Row{C.Fn.NumStatements, S.MaxRegionSize});
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const Row &A, const Row &B) { return A.Stmts < B.Stmts; });

  const uint32_t Bins[] = {25, 50, 100, 200, 400, 800, 100000};
  TableWriter T;
  T.setHeader({"proc size (stmts)", "procedures", "mean max-region",
               "largest max-region"});
  uint32_t Lo = 0;
  size_t I = 0;
  for (uint32_t Hi : Bins) {
    uint64_t N = 0, Sum = 0, Peak = 0;
    while (I < Rows.size() && Rows[I].Stmts < Hi) {
      ++N;
      Sum += Rows[I].MaxRegion;
      Peak = std::max<uint64_t>(Peak, Rows[I].MaxRegion);
      ++I;
    }
    if (N > 0) {
      std::string Label = std::to_string(Lo) + "-" +
                          (Hi == 100000 ? "+" : std::to_string(Hi));
      T.addRow({Label, std::to_string(N),
                TableWriter::fmt(static_cast<double>(Sum) /
                                     static_cast<double>(N), 1),
                std::to_string(Peak)});
    }
    Lo = Hi;
  }
  T.print(std::cout);

  std::cout << "\npaper: maximum region size is roughly independent of "
               "procedure size\n";
  return 0;
}
