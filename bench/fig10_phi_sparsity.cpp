//===- fig10_phi_sparsity.cpp - Figure 10 reproduction ---------------------------===//
//
// Figure 10: percentage of SESE regions examined while placing
// phi-functions, per variable, using the PST-based placement. Paper
// headline: 5072 variables, and for ~70% of them fewer than one fifth of
// the regions are examined.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/ssa/PhiPlacement.h"
#include "pst/support/Histogram.h"
#include "pst/support/TableWriter.h"
#include "pst/workload/Corpus.h"

#include <iostream>

using namespace pst;

int main() {
  std::cout << "=== Figure 10: fraction of regions examined during "
               "phi placement ===\n\n";
  auto Corpus = generatePaperCorpus(/*Seed=*/1994);

  Histogram Buckets; // 10% buckets: 0 => [0,10), 1 => [10,20), ...
  uint64_t Vars = 0, Under20 = 0;
  for (const auto &C : Corpus) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    PhiPlacement P = placePhisPst(C.Fn, T);
    for (VarId V = 0; V < C.Fn.numVars(); ++V) {
      double Frac = P.RegionsTotal
                        ? static_cast<double>(P.RegionsExamined[V]) /
                              static_cast<double>(P.RegionsTotal)
                        : 0.0;
      size_t Bucket = std::min<size_t>(9, static_cast<size_t>(Frac * 10));
      Buckets.add(Bucket);
      ++Vars;
      Under20 += Frac < 0.2;
    }
  }

  TableWriter T;
  T.setHeader({"% regions examined", "variables", "share %"});
  for (size_t B = 0; B < 10; ++B) {
    double Pct = 100.0 * static_cast<double>(Buckets.count(B)) /
                 static_cast<double>(Buckets.total());
    T.addRow({std::to_string(B * 10) + "-" + std::to_string(B * 10 + 10),
              std::to_string(Buckets.count(B)), TableWriter::fmt(Pct, 1)});
  }
  T.print(std::cout);

  double Under20Pct =
      100.0 * static_cast<double>(Under20) / static_cast<double>(Vars);
  std::cout << "\nN = " << Vars << " variables; "
            << TableWriter::fmt(Under20Pct, 1)
            << "% needed less than one fifth of the regions\n";
  std::cout << "paper: N = 5072 variables; ~70% needed less than one "
               "fifth of the regions\n";
  return 0;
}
