//===- time_region_profile.cpp - Region profiler throughput -------------------===//
//
// Measures the dynamic region profiler (pst/prof):
//
//  * interpreter overhead of per-edge traversal counting (runLowered with
//    CountEdges off vs on) on a loop-heavy kernel;
//  * end-to-end profiling throughput (attribute a workload of runs onto
//    the PST, finalize, plan) over a generated MiniLang corpus;
//  * byte-determinism of the JSON report: two independently built
//    profiles of the same workload must serialize identically (the bench
//    exits 1 otherwise).
//
// Emits a human-readable table on stdout and machine-readable
// BENCH_profile.json in the working directory.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "pst/core/ProgramStructureTree.h"
#include "pst/lang/Interp.h"
#include "pst/lang/Lower.h"
#include "pst/prof/ParallelismPlanner.h"
#include "pst/prof/ProfileReport.h"
#include "pst/prof/RegionProfile.h"
#include "pst/support/Rng.h"
#include "pst/workload/ProgramGenerator.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace pst;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

const char *HotLoopSource = R"(
func hotloop(n, m) {
  var i = 0;
  var j = 0;
  var acc = 0;
  if (n < 0) { n = 0; }
  if (m < 0) { m = 0; }
  while (i < n) {
    j = 0;
    while (j < m) {
      acc = acc + (i * m + j) % 7;
      j = j + 1;
    }
    i = i + 1;
  }
  if (acc % 2 == 1) { acc = acc + 1; }
  return acc;
}
)";

/// Steps per second of repeated hotloop(64, 64) runs.
double interpStepsPerSec(const LoweredFunction &F, bool CountEdges,
                         uint64_t *StepsOut) {
  const std::vector<int64_t> Args{64, 64};
  const double MinSeconds = 0.4;
  uint64_t Steps = 0;
  size_t Rounds = 0;
  Clock::time_point Start = Clock::now();
  double Elapsed = 0;
  do {
    CfgExecResult R = runLowered(F, Args, 1 << 24, CountEdges);
    Steps += R.Steps;
    ++Rounds;
    Elapsed = secondsSince(Start);
  } while (Elapsed < MinSeconds);
  if (StepsOut)
    *StepsOut = Steps / Rounds;
  return static_cast<double>(Steps) / Elapsed;
}

/// One profiled corpus function with its ready-to-run workload.
struct CorpusItem {
  LoweredFunction F;
  ProgramStructureTree T;
  std::vector<std::vector<int64_t>> Workload;
};

std::vector<CorpusItem> buildCorpus(size_t Count) {
  std::vector<CorpusItem> Out;
  Rng R(0x9f0f11e);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 60;
  Opts.WhileProb = 0.14;
  Opts.ForProb = 0.12;
  while (Out.size() < Count) {
    Function Fn = generateFunction(R, Opts, "gen" + std::to_string(Out.size()));
    auto Lowered = lowerFunction(Fn);
    if (!Lowered)
      continue;
    ProgramStructureTree T = ProgramStructureTree::build(Lowered->Graph);
    CorpusItem Item{std::move(*Lowered), std::move(T), {}};
    for (uint64_t Run = 0; Run < 8; ++Run) {
      std::vector<int64_t> Args(Opts.NumParams);
      for (uint32_t K = 0; K < Opts.NumParams; ++K)
        Args[K] = static_cast<int64_t>((7 * Run + 3 * K + 5) % 23);
      Item.Workload.push_back(std::move(Args));
    }
    Out.push_back(std::move(Item));
  }
  return Out;
}

struct ProfileMetrics {
  double ProfilesPerSec = 0;
  double RunsPerSec = 0;
};

/// Full pipeline per corpus item: construct the profile (region shapes),
/// attribute the 8-run workload, finalize, plan.
ProfileMetrics profileThroughput(const std::vector<CorpusItem> &Corpus) {
  const double MinSeconds = 0.5;
  size_t Rounds = 0;
  uint64_t Runs = 0;
  Clock::time_point Start = Clock::now();
  double Elapsed = 0;
  do {
    for (const CorpusItem &Item : Corpus) {
      RegionProfile P(Item.F, Item.T);
      for (const std::vector<int64_t> &Args : Item.Workload)
        if (P.runAndAdd(Args, 200000).Finished)
          ++Runs;
      P.finalize();
      ParallelismPlan Plan = planParallelism(P);
      (void)Plan;
    }
    ++Rounds;
    Elapsed = secondsSince(Start);
  } while (Elapsed < MinSeconds);
  ProfileMetrics M;
  M.ProfilesPerSec = static_cast<double>(Corpus.size()) * Rounds / Elapsed;
  M.RunsPerSec = static_cast<double>(Runs) / Elapsed;
  return M;
}

/// Builds one hotloop profile over the canonical 8-run workload and
/// returns its JSON report.
std::string hotloopJson(const LoweredFunction &F,
                        const ProgramStructureTree &T) {
  RegionProfile P(F, T);
  for (uint64_t Run = 0; Run < 8; ++Run)
    P.runAndAdd({static_cast<int64_t>((7 * Run + 5) % 23),
                 static_cast<int64_t>((7 * Run + 8) % 23)},
                1 << 22);
  P.finalize();
  ParallelismPlan Plan = planParallelism(P);
  return profileToJson(P, Plan);
}

} // namespace

int main() {
  auto Fns = compile(HotLoopSource);
  if (!Fns || Fns->size() != 1) {
    std::cerr << "FATAL: demo kernel failed to compile\n";
    return 1;
  }
  const LoweredFunction &Hot = (*Fns)[0];
  ProgramStructureTree HotT = ProgramStructureTree::build(Hot.Graph);

  std::cout << "=== Interpreter edge-counting overhead (hotloop 64x64) ===\n";
  uint64_t StepsPerRun = 0;
  double PlainSps = interpStepsPerSec(Hot, /*CountEdges=*/false, &StepsPerRun);
  double CountSps = interpStepsPerSec(Hot, /*CountEdges=*/true, nullptr);
  double Overhead = PlainSps > 0 ? PlainSps / CountSps - 1.0 : 0.0;
  std::printf("  edges off: %12.0f steps/sec (%llu steps/run)\n", PlainSps,
              static_cast<unsigned long long>(StepsPerRun));
  std::printf("  edges on : %12.0f steps/sec (%+.1f%% overhead)\n", CountSps,
              Overhead * 100.0);

  std::cout << "\n=== Profile + plan throughput (generated corpus) ===\n";
  std::vector<CorpusItem> Corpus = buildCorpus(64);
  ProfileMetrics M = profileThroughput(Corpus);
  std::printf("  %zu functions, 8-run workloads: %8.1f profiles/sec "
              "(%8.1f runs/sec)\n",
              Corpus.size(), M.ProfilesPerSec, M.RunsPerSec);

  std::cout << "\n=== JSON determinism cross-check ===\n";
  std::string A = hotloopJson(Hot, HotT);
  std::string B = hotloopJson(Hot, HotT);
  if (A != B) {
    std::cerr << "FATAL: two profiles of the same workload serialized "
                 "differently\n";
    return 1;
  }
  std::printf("  two independent profiles serialize identically (%zu bytes)\n",
              A.size());

  std::ofstream OS("BENCH_profile.json");
  OS << "{\n";
  pstbench::writeSchemaPreamble(OS, "region_profile", "generated",
                                M.ProfilesPerSec);
  OS << "  \"interp\": {\n";
  OS << "    \"steps_per_run\": " << StepsPerRun << ",\n";
  OS << "    \"steps_per_sec_edges_off\": " << PlainSps << ",\n";
  OS << "    \"steps_per_sec_edges_on\": " << CountSps << ",\n";
  OS << "    \"edge_counting_overhead\": " << Overhead << "\n";
  OS << "  },\n";
  OS << "  \"pipeline\": {\n";
  OS << "    \"functions\": " << Corpus.size() << ",\n";
  OS << "    \"runs_per_workload\": 8,\n";
  OS << "    \"profiles_per_sec\": " << M.ProfilesPerSec << ",\n";
  OS << "    \"runs_per_sec\": " << M.RunsPerSec << "\n";
  OS << "  },\n";
  OS << "  \"json_deterministic\": true,\n";
  OS << "  \"report_bytes\": " << A.size() << "\n";
  OS << "}\n";
  std::cout << "\nwrote BENCH_profile.json\n";
  return 0;
}
