//===- fig5_depth_histogram.cpp - Figure 5 reproduction -------------------------===//
//
// Figure 5(a): number of regions at each PST depth; Figure 5(b): the
// cumulative fraction at or below each depth. Paper headline numbers:
// N = 8609 regions, average depth 2.68, max depth 13, ~97% of regions at
// depth <= 6.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/StructureMetrics.h"
#include "pst/support/Histogram.h"
#include "pst/support/TableWriter.h"
#include "pst/workload/Corpus.h"

#include <iostream>

using namespace pst;

int main() {
  std::cout << "=== Figure 5: region depth distribution over the corpus "
               "===\n\n";
  auto Corpus = generatePaperCorpus(/*Seed=*/1994);

  Histogram Depths;
  for (const auto &C : Corpus) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    for (RegionId R = 1; R < T.numRegions(); ++R)
      Depths.add(T.region(R).Depth);
  }

  TableWriter T;
  T.setHeader({"depth", "regions", "cumulative", "cumulative %"});
  for (size_t D = 1; D <= Depths.maxValue(); ++D) {
    double CumPct = 100.0 * static_cast<double>(Depths.cumulative(D)) /
                    static_cast<double>(Depths.total());
    T.addRow({std::to_string(D), std::to_string(Depths.count(D)),
              std::to_string(Depths.cumulative(D)),
              TableWriter::fmt(CumPct, 1)});
  }
  T.print(std::cout);

  std::cout << "\nN = " << Depths.total()
            << " regions, average depth = " << TableWriter::fmt(Depths.mean(), 2)
            << ", max depth = " << Depths.maxValue() << "\n";
  std::cout << "paper: N = 8609, average depth = 2.68, max depth = 13, "
               "~97% at depth <= 6\n";
  double AtSix = 100.0 * static_cast<double>(Depths.cumulative(6)) /
                 static_cast<double>(Depths.total());
  std::cout << "here : " << TableWriter::fmt(AtSix, 1)
            << "% of regions at depth <= 6\n";
  return 0;
}
