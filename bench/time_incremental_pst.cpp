//===- time_incremental_pst.cpp - incremental vs from-scratch PST ------------===//
//
// The incremental-maintenance claim: for an edit confined to a small
// canonical region of a large CFG, IncrementalPst rebuilds only that
// region's subtree, so a commit costs O(dirty region) instead of the
// O(N + E) a from-scratch ProgramStructureTree::build pays. We time a
// steady-state single-edit loop (insert a parallel edge deep in the
// structure, commit, delete it, commit) on >= 1000-block structured CFGs
// and a goto-heavy random CFG, against the from-scratch baseline doing the
// same edits, plus a batch-size sweep showing commit coalescing. Each
// incremental benchmark reports stats()-derived counters; reprocess_ratio
// is NodesReprocessed / FullRecomputeNodes and must stay well below 1.
//
//===----------------------------------------------------------------------===//

#include "pst/incremental/IncrementalPst.h"
#include "pst/obs/Telemetry.h"
#include "pst/obs/TraceWriter.h"
#include "pst/workload/CfgGenerators.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <string_view>

using namespace pst;

namespace {

// All families sized >= 1000 blocks.
Cfg makeDiamonds() { return diamondLadderCfg(250); }     // 1002 nodes
Cfg makeLoopNest() { return nestedWhileCfg(499, 4); }    // 1004 nodes
Cfg makeGotoHeavy() {
  Rng R(7);
  RandomCfgOptions Opts;
  Opts.NumNodes = 1000;
  Opts.NumExtraEdges = 400;
  return randomBackboneCfg(R, Opts);
}

/// A steady-state edit site: both endpoints of an existing edge deep in
/// the tree, so inserting a parallel copy dirties a small region.
struct EditSite {
  NodeId Src, Dst;
};

EditSite deepestEditSite(const DynamicCfg &DG, const IncrementalPst &IP) {
  RegionId Best = IP.root();
  for (RegionId R : IP.liveRegions())
    if (!IP.immediateNodes(R).empty() && IP.depth(R) > IP.depth(Best))
      Best = R;
  NodeId V = Best == IP.root() ? DG.graph().target(
                                     DG.graph().succEdges(DG.entry())[0])
                               : IP.immediateNodes(Best).front();
  for (EdgeId E : DG.graph().succEdges(V))
    if (DG.edgeLive(E))
      return {V, DG.graph().target(E)};
  return {V, V};
}

void reportStats(benchmark::State &State, const IncrementalPst &IP) {
  const IncrementalPstStats &S = IP.stats();
  State.counters["reprocess_ratio"] = S.reprocessRatio();
  State.counters["nodes_per_commit"] =
      S.Commits ? static_cast<double>(S.NodesReprocessed) / S.Commits : 0.0;
  State.counters["full_rebuilds"] = static_cast<double>(S.FullRebuilds);
  State.counters["subtree_rebuilds"] = static_cast<double>(S.SubtreesRebuilt);
}

/// insert parallel edge -> commit -> delete it -> commit. Two commits per
/// iteration; the graph returns to its starting shape each time (modulo
/// tombstones).
void singleEditLoop(benchmark::State &State, Cfg G) {
  DynamicCfg DG(std::move(G));
  IncrementalPst IP(DG);
  EditSite Site = deepestEditSite(DG, IP);
  for (auto _ : State) {
    EdgeId E = IP.insertEdge(Site.Src, Site.Dst);
    IP.commit();
    IP.deleteEdge(E);
    IP.commit();
    benchmark::DoNotOptimize(IP.numCanonicalRegions());
  }
  reportStats(State, IP);
}

/// The same edits, paying a from-scratch build per commit point.
void fromScratchLoop(benchmark::State &State, Cfg G) {
  DynamicCfg DG(std::move(G));
  IncrementalPst Probe(DG); // Only used to pick the same edit site.
  EditSite Site = deepestEditSite(DG, Probe);
  uint64_t Regions = 0;
  for (auto _ : State) {
    EdgeId E = DG.insertEdge(Site.Src, Site.Dst);
    ProgramStructureTree T1 = ProgramStructureTree::build(DG.materialize());
    DG.deleteEdgeUnchecked(E);
    ProgramStructureTree T2 = ProgramStructureTree::build(DG.materialize());
    Regions += T1.numRegions() + T2.numRegions();
  }
  benchmark::DoNotOptimize(Regions);
}

void BM_IncrementalDiamonds(benchmark::State &State) {
  singleEditLoop(State, makeDiamonds());
}
void BM_FromScratchDiamonds(benchmark::State &State) {
  fromScratchLoop(State, makeDiamonds());
}
void BM_IncrementalLoopNest(benchmark::State &State) {
  singleEditLoop(State, makeLoopNest());
}
void BM_FromScratchLoopNest(benchmark::State &State) {
  fromScratchLoop(State, makeLoopNest());
}
void BM_IncrementalGotoHeavy(benchmark::State &State) {
  singleEditLoop(State, makeGotoHeavy());
}
void BM_FromScratchGotoHeavy(benchmark::State &State) {
  fromScratchLoop(State, makeGotoHeavy());
}

/// Batch coalescing sweep: B parallel-arm edits spread over B distinct
/// diamonds, one commit; then the B deletes, one commit. Per-edit commit
/// cost should fall as B grows (shared traversals), while reprocess_ratio
/// stays proportional to the number of distinct dirty subtrees.
void BM_IncrementalBatch(benchmark::State &State) {
  uint32_t B = static_cast<uint32_t>(State.range(0));
  DynamicCfg DG(makeDiamonds());
  IncrementalPst IP(DG);

  // One edit site per diamond: every node with two successors is a cond.
  std::vector<EditSite> Sites;
  for (NodeId N = 0; N < DG.numNodes() && Sites.size() < B; ++N)
    if (DG.graph().succEdges(N).size() == 2)
      Sites.push_back({N, DG.graph().target(DG.graph().succEdges(N)[0])});

  std::vector<EdgeId> Inserted;
  for (auto _ : State) {
    Inserted.clear();
    for (const EditSite &S : Sites)
      Inserted.push_back(IP.insertEdge(S.Src, S.Dst));
    IP.commit();
    for (EdgeId E : Inserted)
      IP.deleteEdge(E);
    IP.commit();
    benchmark::DoNotOptimize(IP.numCanonicalRegions());
  }
  reportStats(State, IP);
  State.counters["batch"] = B;
}

} // namespace

BENCHMARK(BM_IncrementalDiamonds);
BENCHMARK(BM_FromScratchDiamonds);
BENCHMARK(BM_IncrementalLoopNest);
BENCHMARK(BM_FromScratchLoopNest);
BENCHMARK(BM_IncrementalGotoHeavy);
BENCHMARK(BM_FromScratchGotoHeavy);
BENCHMARK(BM_IncrementalBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// BENCHMARK_MAIN plus two pst/obs flags (both stripped before
// google-benchmark sees the arguments):
//   --telemetry        enable the probes; print the counter/timer dump
//                      afterwards, so a bench run shows *where* commit time
//                      goes (subtree rebuild vs cycleequiv vs splice).
//   --trace-out <f>    additionally retain spans and write a chrome-trace
//                      file; the incremental spans carry a "batch" arg (the
//                      commit sequence number), so individual edit batches
//                      can be picked out on the timeline.
int main(int argc, char **argv) {
  bool WantTelemetry = false;
  std::string TraceFile;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    if (A == "--telemetry") {
      WantTelemetry = true;
    } else if (A == "--trace-out") {
      if (I + 1 >= argc) {
        std::cerr << "error: --trace-out needs a file argument\n";
        return 1;
      }
      TraceFile = argv[++I];
    } else {
      argv[Kept++] = argv[I];
    }
  }
  argc = Kept;
  if (WantTelemetry || !TraceFile.empty())
    Telemetry::setEnabled(true);
  if (!TraceFile.empty())
    Telemetry::setTraceEnabled(true);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!TraceFile.empty()) {
    TraceWriter Writer;
    if (!Writer.writeFile(TraceFile)) {
      std::cerr << "error: cannot write trace to '" << TraceFile << "'\n";
      return 1;
    }
    std::cout << "wrote chrome trace to " << TraceFile << "\n";
  }
  if (WantTelemetry)
    std::cout << "\n-- telemetry --\n"
              << TelemetryRegistry::global().toJson();
  return 0;
}
