//===- time_corpus_image.cpp - Frozen corpus image cold start -----------------===//
//
// Measures what the corpus image exists for: cold-start cost. For the
// paper corpus (254 procedures) and a 10k-function generated corpus it
// times
//
//   build  — the no-image cold start: CfgView + PST construction for
//            every function, warm per-thread scratch (the cheapest the
//            in-memory pipeline can do once the CFGs exist);
//   map    — CorpusImage::map over the saved file plus a per-function
//            touch of the mapped views (cfg(i)/pst(i) accessors), i.e.
//            the whole image-based cold start;
//   verify — the optional full checksum pass, reported separately so the
//            map number reflects the default (structural-validation-only)
//            path;
//
// plus the one-time image build cost (serial and thread-pool parallel)
// and the image size. Every run cross-checks byte identity: the FNV
// fingerprint of each mapped PST's flat arrays must equal the freshly
// built tree's — a wrong-but-fast map is a failure, not a result.
//
// Emits a human-readable table on stdout and machine-readable
// BENCH_image.json in the working directory.
//
//===----------------------------------------------------------------------===//

#include "bench_common.h"

#include "pst/image/CorpusImage.h"
#include "pst/runtime/BatchAnalyzer.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/Corpus.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

using namespace pst;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

/// Same generator mix as time_batch_throughput's 10k corpus.
std::vector<Cfg> generatedCorpus(size_t Count) {
  std::vector<Cfg> Out;
  Out.reserve(Count);
  Rng R(0xba7c4);
  while (Out.size() < Count) {
    switch (Out.size() % 8) {
    case 0:
      Out.push_back(diamondLadderCfg(2 + static_cast<uint32_t>(R.nextBelow(12))));
      break;
    case 1:
      Out.push_back(nestedWhileCfg(1 + static_cast<uint32_t>(R.nextBelow(5)),
                                   1 + static_cast<uint32_t>(R.nextBelow(3))));
      break;
    case 2:
      Out.push_back(
          nestedRepeatUntilCfg(2 + static_cast<uint32_t>(R.nextBelow(10))));
      break;
    case 3:
      Out.push_back(irreducibleCfg(1 + static_cast<uint32_t>(R.nextBelow(4))));
      break;
    default: {
      RandomCfgOptions O;
      O.NumNodes = 8 + static_cast<uint32_t>(R.nextBelow(56));
      O.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(O.NumNodes));
      Out.push_back(randomBackboneCfg(R, O));
      break;
    }
    }
  }
  return Out;
}

/// FNV fingerprint of one PST's flat arrays — the identity cross-check
/// currency between the mapped and freshly built trees.
uint64_t fingerprint(const ProgramStructureTree &T) {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto MixBytes = [&H](const void *P, size_t Bytes) {
    const uint8_t *B = static_cast<const uint8_t *>(P);
    for (size_t I = 0; I < Bytes; ++I) {
      H ^= B[I];
      H *= 0x100000001b3ULL;
    }
  };
  MixBytes(T.regionTable().data(), T.regionTable().size_bytes());
  MixBytes(T.nodeRegionTable().data(), T.nodeRegionTable().size_bytes());
  MixBytes(T.edgeRegionTable().data(), T.edgeRegionTable().size_bytes());
  MixBytes(T.childOffTable().data(), T.childOffTable().size_bytes());
  MixBytes(T.childValTable().data(), T.childValTable().size_bytes());
  MixBytes(T.immOffTable().data(), T.immOffTable().size_bytes());
  MixBytes(T.immValTable().data(), T.immValTable().size_bytes());
  return H;
}

struct ParallelBuildRun {
  unsigned Threads = 0; ///< Requested (0 = hardware).
  unsigned Workers = 0;
  double Seconds = 0;
};

struct CorpusReport {
  std::string Name;
  size_t Functions = 0;
  uint64_t ImageBytes = 0;
  double BuildSerialSec = 0;   ///< One-time serial image build.
  double BuildParallelSec = 0; ///< One-time pool-parallel image build
                               ///< (first sweep entry).
  std::vector<ParallelBuildRun> ParallelSweep; ///< One per --threads entry.
  double ColdBuildSec = 0;     ///< No-image cold start (view+PST per fn).
  double ColdMapSec = 0;       ///< Image cold start (map + touch every fn).
  double VerifySec = 0;        ///< Optional full checksum pass.
  double Speedup = 0;          ///< ColdBuildSec / ColdMapSec.
  bool Identical = false;      ///< Mapped PSTs == built PSTs, byte for byte.
};

/// Repeats \p Body until the window is long enough to trust; returns
/// seconds per round.
template <class F> double timeRounds(double MinSeconds, F &&Body) {
  size_t Rounds = 0;
  Clock::time_point Start = Clock::now();
  double Elapsed = 0;
  do {
    Body();
    ++Rounds;
    Elapsed = secondsSince(Start);
  } while (Elapsed < MinSeconds);
  return Elapsed / static_cast<double>(Rounds);
}

CorpusReport benchCorpus(const std::string &Name,
                         std::span<const Cfg *const> Fns,
                         const std::string &Path,
                         const std::vector<unsigned> &ThreadSweep) {
  CorpusReport R;
  R.Name = Name;
  R.Functions = Fns.size();

  // One-time build cost, serial and one parallel run per --threads entry.
  std::vector<uint8_t> Bytes;
  R.BuildSerialSec = timeRounds(0.3, [&] { Bytes = buildCorpusImage(Fns); });
  {
    std::vector<Cfg> Owned;
    Owned.reserve(Fns.size());
    for (const Cfg *G : Fns)
      Owned.push_back(*G);
    for (unsigned T : ThreadSweep) {
      BatchOptions BO;
      BO.NumThreads = T;
      BatchAnalyzer Engine(BO);
      std::vector<uint8_t> Parallel;
      ParallelBuildRun Run;
      Run.Threads = T;
      Run.Workers = Engine.numWorkers();
      Run.Seconds =
          timeRounds(0.3, [&] { Parallel = Engine.buildImage(Owned); });
      if (Parallel != Bytes) {
        std::cerr << "FATAL: parallel image build diverged from serial\n";
        std::exit(1);
      }
      R.ParallelSweep.push_back(Run);
    }
    R.BuildParallelSec = R.ParallelSweep.front().Seconds;
  }
  R.ImageBytes = Bytes.size();
  std::string Error;
  if (!writeImageFile(Path, Bytes, &Error)) {
    std::cerr << "FATAL: " << Error << "\n";
    std::exit(1);
  }

  // The no-image cold start: freeze adjacency and build the PST for every
  // function, warm scratch (steady-state floor of the in-memory path).
  PstScratch S;
  R.ColdBuildSec = timeRounds(0.3, [&] {
    for (const Cfg *G : Fns) {
      CfgView V = CfgView::build(*G, S.View);
      ProgramStructureTree T = ProgramStructureTree::build(V, S.PstBuild);
      (void)T;
    }
  });

  // The image cold start: map the file and touch every function's views.
  // Each round re-maps, so page-cache state is the only warmth carried
  // across rounds — exactly what a process restart on a warm machine sees.
  uint64_t Touched = 0;
  R.ColdMapSec = timeRounds(0.3, [&] {
    CorpusImage Img = CorpusImage::map(Path, &Error);
    if (!Img.valid()) {
      std::cerr << "FATAL: " << Error << "\n";
      std::exit(1);
    }
    for (uint64_t I = 0; I < Img.numFunctions(); ++I) {
      CfgView V = Img.cfg(I);
      ProgramStructureTree T = Img.pst(I);
      Touched += V.numEdges() + T.numRegions();
    }
  });
  if (Touched == 0)
    std::cerr << "(empty corpus?)\n";

  {
    CorpusImage Img = CorpusImage::map(Path, &Error);
    R.VerifySec = timeRounds(0.3, [&] {
      if (!Img.verify(&Error)) {
        std::cerr << "FATAL: " << Error << "\n";
        std::exit(1);
      }
    });

    // In-run byte-identity cross-check: a wrong-but-fast map would
    // invalidate every number above.
    R.Identical = true;
    for (uint64_t I = 0; I < Img.numFunctions(); ++I) {
      ProgramStructureTree Fresh = ProgramStructureTree::build(*Fns[I]);
      if (fingerprint(Fresh) != fingerprint(Img.pst(I))) {
        R.Identical = false;
        break;
      }
    }
    if (!R.Identical) {
      std::cerr << "FATAL: mapped PSTs diverged from freshly built PSTs\n";
      std::exit(1);
    }
  }

  R.Speedup = R.ColdMapSec > 0 ? R.ColdBuildSec / R.ColdMapSec : 0;
  std::printf("  %-7s %6zu fns  image %9llu B  build %8.2f ms  "
              "map %8.3f ms  verify %7.3f ms  speedup %7.1fx\n",
              Name.c_str(), Fns.size(),
              static_cast<unsigned long long>(R.ImageBytes),
              R.ColdBuildSec * 1e3, R.ColdMapSec * 1e3, R.VerifySec * 1e3,
              R.Speedup);
  std::remove(Path.c_str());
  return R;
}

void writeJson(const std::string &Path, unsigned HwThreads,
               const std::vector<CorpusReport> &Corpora) {
  (void)HwThreads; // Part of the shared schema preamble now.
  // Headline throughput: the largest corpus's image cold-start rate.
  const CorpusReport &Head = Corpora.back();
  std::ofstream OS(Path);
  OS << "{\n";
  pstbench::writeSchemaPreamble(OS, "corpus_image", Head.Name.c_str(),
                                Head.ColdMapSec > 0
                                    ? double(Head.Functions) / Head.ColdMapSec
                                    : 0);
  OS << "  \"corpora\": [\n";
  for (size_t I = 0; I < Corpora.size(); ++I) {
    const CorpusReport &C = Corpora[I];
    OS << "    {\n";
    OS << "      \"name\": \"" << C.Name << "\",\n";
    OS << "      \"functions\": " << C.Functions << ",\n";
    OS << "      \"image_bytes\": " << C.ImageBytes << ",\n";
    OS << "      \"image_build_serial_sec\": " << C.BuildSerialSec << ",\n";
    OS << "      \"image_build_parallel_sec\": " << C.BuildParallelSec
       << ",\n";
    OS << "      \"image_build_parallel_sweep\": [";
    for (size_t J = 0; J < C.ParallelSweep.size(); ++J) {
      const ParallelBuildRun &R = C.ParallelSweep[J];
      OS << (J ? ", " : "") << "{\"threads\": " << R.Threads
         << ", \"workers\": " << R.Workers << ", \"build_sec\": " << R.Seconds
         << "}";
    }
    OS << "],\n";
    OS << "      \"cold_start_build_sec\": " << C.ColdBuildSec << ",\n";
    OS << "      \"cold_start_map_sec\": " << C.ColdMapSec << ",\n";
    OS << "      \"verify_sec\": " << C.VerifySec << ",\n";
    OS << "      \"map_speedup\": " << C.Speedup << ",\n";
    OS << "      \"identical_results\": " << (C.Identical ? "true" : "false")
       << "\n";
    OS << "    }" << (I + 1 < Corpora.size() ? "," : "") << "\n";
  }
  OS << "  ]\n";
  OS << "}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<unsigned> ThreadSweep = {0}; // 0 = hardware concurrency.
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--threads" && I + 1 < Argc) {
      ThreadSweep.clear();
      const char *P = Argv[++I];
      while (*P) {
        char *End = nullptr;
        unsigned long V = std::strtoul(P, &End, 0);
        if (End == P) {
          std::cerr << "error: --threads expects a comma-separated list\n";
          return 1;
        }
        ThreadSweep.push_back(unsigned(V));
        P = (*End == ',') ? End + 1 : End;
      }
      if (ThreadSweep.empty())
        ThreadSweep.push_back(0);
    } else {
      std::cerr << "error: unknown option '" << A << "'\n";
      return 1;
    }
  }

  const unsigned Hw = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "=== Corpus image cold start (hardware_concurrency=" << Hw
            << ") ===\n\n";

  std::vector<CorpusFunction> Paper = generatePaperCorpus(/*Seed=*/1994);
  std::vector<const Cfg *> PaperPtrs;
  PaperPtrs.reserve(Paper.size());
  for (const CorpusFunction &F : Paper)
    PaperPtrs.push_back(&F.Fn.Graph);

  std::vector<Cfg> Generated = generatedCorpus(10000);
  std::vector<const Cfg *> GenPtrs;
  GenPtrs.reserve(Generated.size());
  for (const Cfg &G : Generated)
    GenPtrs.push_back(&G);

  std::vector<CorpusReport> Corpora;
  Corpora.push_back(benchCorpus("paper",
                                std::span<const Cfg *const>(PaperPtrs),
                                "bench_corpus_paper.img", ThreadSweep));
  Corpora.push_back(benchCorpus("gen10k",
                                std::span<const Cfg *const>(GenPtrs),
                                "bench_corpus_gen10k.img", ThreadSweep));

  writeJson("BENCH_image.json", Hw, Corpora);
  std::cout << "\nwrote BENCH_image.json\n";

  for (const CorpusReport &C : Corpora)
    if (C.Speedup < 10.0) {
      std::cerr << "WARNING: " << C.Name << " map speedup " << C.Speedup
                << "x is below the 10x target\n";
      return 1;
    }
  return 0;
}
