//===- time_ssa_placement.cpp - Section 6.1 timing claim ----------------------------===//
//
// Section 6.1: PST-based phi placement avoids the quadratic dominance-
// frontier blowup on nested repeat-until loops and skips regions without
// definitions. We time classic iterated-DF placement against the
// PST-based divide-and-conquer on:
//
//  * the nested repeat-until family (the worst case cited from [CFR+91]),
//  * generated mostly-structured procedures (the corpus shape).
//
// The PST build itself is timed separately so the comparison is honest
// about setup costs.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/lang/Lower.h"
#include "pst/ssa/PhiPlacement.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/ProgramGenerator.h"

#include <benchmark/benchmark.h>

using namespace pst;

namespace {

/// Wraps a bare CFG family in a LoweredFunction with one variable defined
/// in every block (the all-blocks-define worst case for placement).
LoweredFunction syntheticFunction(Cfg G) {
  LoweredFunction F;
  F.Name = "synthetic";
  F.VarNames = {"x"};
  F.Code.resize(G.numNodes());
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    Instruction I;
    I.K = Instruction::Kind::Assign;
    I.Def = 0;
    I.Uses = {0};
    I.Text = "x = x";
    F.Code[N].push_back(std::move(I));
  }
  F.Graph = std::move(G);
  return F;
}

LoweredFunction generated(uint64_t Seed, uint32_t Stmts) {
  Rng R(Seed);
  ProgramGenOptions Opts;
  Opts.TargetStatements = Stmts;
  Opts.NumVars = 12;
  Function Fn = generateFunction(R, Opts, "bench");
  auto L = lowerFunction(Fn);
  return std::move(*L);
}

void BM_ClassicNestedRepeatUntil(benchmark::State &State) {
  LoweredFunction F = syntheticFunction(
      nestedRepeatUntilCfg(static_cast<uint32_t>(State.range(0))));
  for (auto _ : State) {
    PhiPlacement P = placePhisClassic(F);
    benchmark::DoNotOptimize(P.PhiBlocks.size());
  }
}

void BM_PstNestedRepeatUntil(benchmark::State &State) {
  LoweredFunction F = syntheticFunction(
      nestedRepeatUntilCfg(static_cast<uint32_t>(State.range(0))));
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  for (auto _ : State) {
    PhiPlacement P = placePhisPst(F, T);
    benchmark::DoNotOptimize(P.PhiBlocks.size());
  }
}

void BM_PstBuildNestedRepeatUntil(benchmark::State &State) {
  Cfg G = nestedRepeatUntilCfg(static_cast<uint32_t>(State.range(0)));
  for (auto _ : State) {
    ProgramStructureTree T = ProgramStructureTree::build(G);
    benchmark::DoNotOptimize(T.numRegions());
  }
}

void BM_ClassicGenerated(benchmark::State &State) {
  LoweredFunction F = generated(3, static_cast<uint32_t>(State.range(0)));
  for (auto _ : State) {
    PhiPlacement P = placePhisClassic(F);
    benchmark::DoNotOptimize(P.PhiBlocks.size());
  }
}

void BM_PstGenerated(benchmark::State &State) {
  LoweredFunction F = generated(3, static_cast<uint32_t>(State.range(0)));
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  for (auto _ : State) {
    PhiPlacement P = placePhisPst(F, T);
    benchmark::DoNotOptimize(P.PhiBlocks.size());
  }
}

} // namespace

BENCHMARK(BM_ClassicNestedRepeatUntil)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_PstNestedRepeatUntil)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_PstBuildNestedRepeatUntil)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_ClassicGenerated)->Arg(500)->Arg(5000);
BENCHMARK(BM_PstGenerated)->Arg(500)->Arg(5000);

BENCHMARK_MAIN();
