//===- table1_corpus.cpp - The paper's corpus table ---------------------------===//
//
// Reproduces the Section-4 corpus table: suite / program / lines /
// procedures, on the synthetic MiniLang corpus calibrated to the paper,
// plus the structured-procedure count the paper quotes (182 of 254).
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/StructureMetrics.h"
#include "pst/support/TableWriter.h"
#include "pst/workload/Corpus.h"

#include <iostream>
#include <map>

using namespace pst;

int main() {
  std::cout << "=== Table 1: benchmark corpus (synthetic MiniLang mirror of "
               "the paper's programs) ===\n\n";
  auto Corpus = generatePaperCorpus(/*Seed=*/1994);

  // Aggregate generated statement counts per program.
  std::map<std::string, uint64_t> GenStmts;
  std::map<std::string, uint32_t> StructuredPerProgram;
  uint32_t TotalStructured = 0;
  uint64_t TotalRegions = 0;
  for (const auto &C : Corpus) {
    GenStmts[C.Program] += C.Fn.NumStatements;
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    PstStats S = computePstStats(C.Fn.Graph, T);
    TotalRegions += S.NumRegions;
    if (S.FullyStructured) {
      ++StructuredPerProgram[C.Program];
      ++TotalStructured;
    }
  }

  TableWriter T;
  T.setHeader({"suite", "program", "lines(paper)", "stmts(gen)",
               "procedures", "structured"});
  uint32_t Lines = 0, Procs = 0;
  for (const auto &P : paperCorpusSpec()) {
    T.addRow({P.Suite, P.Name, std::to_string(P.Lines),
              std::to_string(GenStmts[P.Name]),
              std::to_string(P.Procedures),
              std::to_string(StructuredPerProgram[P.Name])});
    Lines += P.Lines;
    Procs += P.Procedures;
  }
  T.addRow({"total", "", std::to_string(Lines), "",
            std::to_string(Procs), std::to_string(TotalStructured)});
  T.print(std::cout);

  std::cout << "\npaper: 21549 lines, 254 procedures, 182 fully structured, "
               "8609 SESE regions\n";
  std::cout << "here : " << Lines << " lines, " << Procs
            << " procedures, " << TotalStructured
            << " fully structured, " << TotalRegions << " SESE regions\n";
  return 0;
}
