//===- pst/support/ThreadPool.h - Chunked data-parallel pool ----*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent thread pool for data-parallel index ranges.
///
/// The batch analysis workload (pst/runtime) is embarrassingly parallel —
/// one independent PST pipeline per function — but the items are wildly
/// uneven (the paper's corpus mixes four-line procedures with
/// hundred-statement ones), so static striping leaves workers idle. The
/// pool therefore hands out *chunks* of the index range from a shared
/// atomic cursor: whichever worker finishes early claims the next chunk,
/// which is the useful half of work stealing at none of the deque cost.
///
/// Workers persist across \c run calls (spawning threads per batch would
/// dwarf the analyses themselves on small corpora). Worker 0 is always the
/// calling thread, so a single-worker pool runs the body inline with no
/// synchronization surprises, and per-worker scratch slot 0 stays on the
/// caller's thread.
///
/// Thread-safety contract:
///
///  * \c run is not reentrant and must not be called from two threads
///    concurrently (asserted). The pool object itself may only be
///    destroyed once no \c run is in flight.
///  * The body runs concurrently on disjoint chunks; it may freely write
///    to output slots indexed by item and to per-worker state indexed by
///    the \c Worker argument, but anything else it touches needs its own
///    synchronization.
///  * \c run returning establishes a happens-before edge from every chunk
///    body to the caller: all writes made by chunks — including to
///    thread-local state such as pst/obs telemetry sinks — are visible
///    after \c run returns. This is the quiescence guarantee that makes
///    reporting via \c TelemetryRegistry::snapshot safe right after a
///    batch completes.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SUPPORT_THREADPOOL_H
#define PST_SUPPORT_THREADPOOL_H

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pst {

/// A persistent pool executing chunked parallel-for jobs.
class ThreadPool {
public:
  /// The job body: process items [Begin, End) as worker \p Worker (a
  /// stable index in [0, numWorkers()), usable to pick per-worker state).
  using Body = std::function<void(size_t Begin, size_t End, unsigned Worker)>;

  /// Creates a pool with \p Requested workers (0 = hardware concurrency).
  /// One worker is the calling thread; Requested - 1 threads are spawned.
  explicit ThreadPool(unsigned Requested = 0) {
    NumWorkers = Requested != 0 ? Requested : defaultWorkers();
    Helpers.reserve(NumWorkers - 1);
    for (unsigned W = 1; W < NumWorkers; ++W)
      Helpers.emplace_back([this, W] { helperMain(W); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stop = true;
    }
    WorkCv.notify_all();
    for (std::thread &T : Helpers)
      T.join();
  }

  unsigned numWorkers() const { return NumWorkers; }

  /// Runs \p Fn over [0, NumItems) in chunks of \p ChunkSize, blocking
  /// until every item is processed. The calling thread participates as
  /// worker 0. If any chunk throws, the first exception is rethrown here
  /// after all workers quiesce; chunks not yet claimed are abandoned.
  void run(size_t NumItems, size_t ChunkSize, const Body &Fn) {
    assert(ChunkSize > 0 && "chunk size must be positive");
    if (NumItems == 0)
      return;
    if (NumWorkers == 1) {
      // Inline fast path: same chunk walk, no synchronization at all.
      for (size_t B = 0; B < NumItems; B += ChunkSize)
        Fn(B, std::min(B + ChunkSize, NumItems), 0);
      return;
    }

    {
      std::lock_guard<std::mutex> Lock(M);
      assert(!JobBody && "ThreadPool::run is not reentrant");
      JobItems = NumItems;
      JobChunk = ChunkSize;
      JobBody = &Fn;
      NextChunk.store(0, std::memory_order_relaxed);
      Abort.store(false, std::memory_order_relaxed);
      FirstError = nullptr;
      PendingHelpers = NumWorkers - 1;
      ++Generation;
    }
    WorkCv.notify_all();

    workLoop(0);

    std::unique_lock<std::mutex> Lock(M);
    DoneCv.wait(Lock, [this] { return PendingHelpers == 0; });
    JobBody = nullptr;
    if (FirstError) {
      std::exception_ptr E = FirstError;
      FirstError = nullptr;
      std::rethrow_exception(E);
    }
  }

private:
  static unsigned defaultWorkers() {
    unsigned H = std::thread::hardware_concurrency();
    return H != 0 ? H : 1;
  }

  void workLoop(unsigned Worker) {
    const size_t Items = JobItems, Chunk = JobChunk;
    const Body &Fn = *JobBody;
    while (!Abort.load(std::memory_order_relaxed)) {
      size_t C = NextChunk.fetch_add(1, std::memory_order_relaxed);
      size_t Begin = C * Chunk;
      if (Begin >= Items)
        break;
      try {
        Fn(Begin, std::min(Begin + Chunk, Items), Worker);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(M);
        if (!FirstError)
          FirstError = std::current_exception();
        Abort.store(true, std::memory_order_relaxed);
      }
    }
  }

  void helperMain(unsigned Worker) {
    uint64_t SeenGeneration = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> Lock(M);
        WorkCv.wait(Lock, [&] {
          return Stop || Generation != SeenGeneration;
        });
        if (Stop)
          return;
        SeenGeneration = Generation;
      }
      workLoop(Worker);
      {
        std::lock_guard<std::mutex> Lock(M);
        --PendingHelpers;
      }
      DoneCv.notify_one();
    }
  }

  unsigned NumWorkers = 1;
  std::vector<std::thread> Helpers;

  std::mutex M;
  std::condition_variable WorkCv, DoneCv;
  uint64_t Generation = 0;
  unsigned PendingHelpers = 0;
  bool Stop = false;
  std::exception_ptr FirstError;

  // Current job (valid while a run is in flight).
  size_t JobItems = 0;
  size_t JobChunk = 1;
  const Body *JobBody = nullptr;
  std::atomic<size_t> NextChunk{0};
  std::atomic<bool> Abort{false};
};

} // namespace pst

#endif // PST_SUPPORT_THREADPOOL_H
