//===- pst/support/TableWriter.h - Aligned text tables ----------*- C++ -*-===//
//
// Part of the PST library (see BitVector.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table printing. The figure/table benches use
/// this to emit the same rows the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SUPPORT_TABLEWRITER_H
#define PST_SUPPORT_TABLEWRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace pst {

/// Accumulates rows of strings and prints them with aligned columns.
class TableWriter {
public:
  /// Sets the header row (printed first, followed by a separator line).
  void setHeader(std::vector<std::string> Columns);

  /// Appends a data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table to \p OS. Numeric-looking cells are right-aligned.
  void print(std::ostream &OS) const;

  /// Formats a double with \p Digits fractional digits.
  static std::string fmt(double Value, int Digits = 2);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace pst

#endif // PST_SUPPORT_TABLEWRITER_H
