//===- pst/support/UnionFind.h - Disjoint set forest ------------*- C++ -*-===//
//
// Part of the PST library (see BitVector.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find with path halving and union by rank. Used by the reducibility
/// test (T1/T2 interval collapsing) and by tests that compare equivalence
/// partitions produced by different control-region algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SUPPORT_UNIONFIND_H
#define PST_SUPPORT_UNIONFIND_H

#include <cassert>
#include <cstdint>
#include <numeric>
#include <vector>

namespace pst {

/// Disjoint-set forest over dense indices [0, size).
class UnionFind {
public:
  explicit UnionFind(size_t Size) : Parent(Size), Rank(Size, 0) {
    std::iota(Parent.begin(), Parent.end(), 0);
  }

  size_t size() const { return Parent.size(); }

  /// Returns the representative of \p X's set.
  uint32_t find(uint32_t X) {
    assert(X < Parent.size() && "element out of range");
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]]; // Path halving.
      X = Parent[X];
    }
    return X;
  }

  /// Merges the sets of \p A and \p B. Returns true if they were distinct.
  bool merge(uint32_t A, uint32_t B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return false;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
    return true;
  }

  /// Returns true if \p A and \p B are in the same set.
  bool connected(uint32_t A, uint32_t B) { return find(A) == find(B); }

private:
  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace pst

#endif // PST_SUPPORT_UNIONFIND_H
