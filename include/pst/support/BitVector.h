//===- pst/support/BitVector.h - Dense bit vector ---------------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, fixed-universe bit vector with the set operations needed by the
/// iterative dataflow solvers and the brute-force dominance oracle.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SUPPORT_BITVECTOR_H
#define PST_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pst {

/// A dense bit vector over a fixed universe [0, size).
///
/// Words are 64-bit; all binary operations require equal-sized operands
/// (asserted). The class is intentionally small: the dataflow framework
/// composes everything else out of these primitives.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all initialized to \p Value.
  explicit BitVector(size_t NumBits, bool Value = false)
      : NumBits(NumBits),
        Words((NumBits + BitsPerWord - 1) / BitsPerWord,
              Value ? ~uint64_t(0) : 0) {
    clearUnusedBits();
  }

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  bool test(size_t Idx) const {
    assert(Idx < NumBits && "bit index out of range");
    return (Words[Idx / BitsPerWord] >> (Idx % BitsPerWord)) & 1;
  }

  void set(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / BitsPerWord] |= uint64_t(1) << (Idx % BitsPerWord);
  }

  void reset(size_t Idx) {
    assert(Idx < NumBits && "bit index out of range");
    Words[Idx / BitsPerWord] &= ~(uint64_t(1) << (Idx % BitsPerWord));
  }

  /// Sets every bit.
  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearUnusedBits();
  }

  /// Clears every bit.
  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Returns the number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Returns true if no bit is set.
  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  /// Returns true if any bit is set.
  bool any() const { return !none(); }

  /// In-place union. Returns true if this vector changed.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// In-place intersection. Returns true if this vector changed.
  bool intersectWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// In-place difference (this &= ~Other). Returns true if changed.
  bool subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitVector &Other) const { return !(*this == Other); }

  /// Returns the index of the first set bit at or after \p From, or
  /// size() if none exists.
  size_t findNext(size_t From) const {
    if (From >= NumBits)
      return NumBits;
    size_t WordIdx = From / BitsPerWord;
    uint64_t W = Words[WordIdx] & (~uint64_t(0) << (From % BitsPerWord));
    while (true) {
      if (W)
        return WordIdx * BitsPerWord +
               static_cast<size_t>(__builtin_ctzll(W));
      if (++WordIdx == Words.size())
        return NumBits;
      W = Words[WordIdx];
    }
  }

  /// Calls \p Fn for every set bit, in increasing index order.
  template <typename CallableT> void forEachSetBit(CallableT Fn) const {
    for (size_t I = findNext(0); I < NumBits; I = findNext(I + 1))
      Fn(I);
  }

private:
  static constexpr size_t BitsPerWord = 64;

  void clearUnusedBits() {
    size_t Tail = NumBits % BitsPerWord;
    if (Tail && !Words.empty())
      Words.back() &= (uint64_t(1) << Tail) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace pst

#endif // PST_SUPPORT_BITVECTOR_H
