//===- pst/support/Rng.h - Deterministic random numbers ---------*- C++ -*-===//
//
// Part of the PST library (see BitVector.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic 64-bit PRNG (SplitMix64). Every workload generator
/// and property test is seeded through this class so results reproduce
/// bit-for-bit across runs and platforms.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SUPPORT_RNG_H
#define PST_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace pst {

/// SplitMix64 pseudo-random generator with convenience samplers.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    // Rejection-free modulo is fine here: generators tolerate the tiny bias.
    return next() % Bound;
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p P (clamped to [0,1]).
  bool nextBool(double P) {
    if (P <= 0.0)
      return false;
    if (P >= 1.0)
      return true;
    return nextDouble() < P;
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State;
};

} // namespace pst

#endif // PST_SUPPORT_RNG_H
