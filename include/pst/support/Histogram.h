//===- pst/support/Histogram.h - Integer histogram --------------*- C++ -*-===//
//
// Part of the PST library (see BitVector.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny integer histogram used by the figure-reproduction benches
/// (region-depth distributions, phi-placement sparsity buckets).
///
//===----------------------------------------------------------------------===//

#ifndef PST_SUPPORT_HISTOGRAM_H
#define PST_SUPPORT_HISTOGRAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pst {

/// Counts occurrences of small non-negative integer values.
class Histogram {
public:
  /// Records one occurrence of \p Value, growing the bucket array on demand.
  void add(size_t Value) {
    if (Value >= Buckets.size())
      Buckets.resize(Value + 1, 0);
    ++Buckets[Value];
    ++Total;
  }

  /// Number of buckets (max recorded value + 1).
  size_t numBuckets() const { return Buckets.size(); }

  /// Count in bucket \p Value (0 if never recorded).
  uint64_t count(size_t Value) const {
    return Value < Buckets.size() ? Buckets[Value] : 0;
  }

  /// Total number of recorded samples.
  uint64_t total() const { return Total; }

  /// Count of samples with value <= \p Value.
  uint64_t cumulative(size_t Value) const {
    uint64_t Sum = 0;
    for (size_t I = 0; I < Buckets.size() && I <= Value; ++I)
      Sum += Buckets[I];
    return Sum;
  }

  /// Mean of the recorded values (0 if empty).
  double mean() const {
    if (Total == 0)
      return 0.0;
    double Sum = 0;
    for (size_t I = 0; I < Buckets.size(); ++I)
      Sum += static_cast<double>(I) * static_cast<double>(Buckets[I]);
    return Sum / static_cast<double>(Total);
  }

  /// Largest recorded value (0 if empty).
  size_t maxValue() const {
    for (size_t I = Buckets.size(); I > 0; --I)
      if (Buckets[I - 1])
        return I - 1;
    return 0;
  }

private:
  std::vector<uint64_t> Buckets;
  uint64_t Total = 0;
};

} // namespace pst

#endif // PST_SUPPORT_HISTOGRAM_H
