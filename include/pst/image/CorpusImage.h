//===- pst/image/CorpusImage.h - Frozen mmap-able corpus images -*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One contiguous, serializable arena holding the frozen CSR CFGs *and*
/// PSTs of a whole corpus, so cold start is an mmap instead of a
/// parse+lower+build pass over every function.
///
/// PR 5's \c CfgView proved that "build adjacency once, run everything on
/// flat arrays" wins; the corpus image takes the same idea process-wide,
/// following Kremlin's MemMapPool/MemMapAllocator idiom of pooled
/// mmap-backed allocation. Every per-function array of the pipeline's two
/// frozen products — the eight \c CfgView CSR arrays and the PST's
/// Regions/NodeRegion/EdgeRegion/EntryOf/ExitOf/ChildOff/ChildVal/ImmOff/
/// ImmVal — is concatenated into one shared global array, and a
/// per-function offset table records where each function's slices start.
/// Names and node labels ride along in a string table so mapped functions
/// print identically to freshly parsed ones.
///
/// On-disk format (version 1), all fields little-endian on little-endian
/// hosts (an endianness tag rejects foreign images):
///
///   ImageHeader                     magic, version, endian tag, sizes
///   SectionDesc[NumSections]        kind, 64-bit offset/size, checksum
///   section payloads                each 8-byte aligned in the file
///
/// Section offsets and sizes are 64-bit and every section starts 8-byte
/// aligned, so million-function corpora with >4 GiB arrays are
/// representable (the layout pass is pure arithmetic and unit-tested past
/// the 32-bit boundary without materializing data). Per-section FNV-1a
/// checksums make corruption detectable without re-deriving anything.
///
/// Mapping contract: \c CorpusImage::map validates structure (header,
/// section table, per-function bounds) but does not touch the array
/// payloads; \c verify() additionally checks every section checksum.
/// \c cfg(i) / \c pst(i) return non-owning views (\c CfgView /
/// \c ProgramStructureTree::adoptExternal) directly over the mapped bytes
/// — zero parse, zero copy, zero allocation — valid only while the image
/// is alive and unmoved. Every analysis overload that takes
/// \c const CfgView& or \c const ProgramStructureTree& runs on them
/// unmodified.
///
//===----------------------------------------------------------------------===//

#ifndef PST_IMAGE_CORPUSIMAGE_H
#define PST_IMAGE_CORPUSIMAGE_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/graph/Cfg.h"
#include "pst/graph/CfgView.h"

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pst {
namespace image {

/// First 8 bytes of every corpus image ("PSTIMG" + two format digits).
inline constexpr char Magic[8] = {'P', 'S', 'T', 'I', 'M', 'G', '0', '1'};
/// Bumped on any layout change; readers reject other versions.
inline constexpr uint32_t FormatVersion = 1;
/// Written as the native byte order; reads as 0x04030201 on a
/// different-endian host, which is rejected (images are a same-arch cold
/// start artifact, not an interchange format).
inline constexpr uint32_t EndianTag = 0x01020304;
/// Every section payload starts at a file offset that is a multiple of
/// this, so mapped u64 arrays are naturally aligned.
inline constexpr uint64_t SectionAlign = 8;

/// The sections of a version-1 image, in file order. Per-function slices
/// are element ranges inside these shared global arrays.
enum class SectionKind : uint32_t {
  FuncTable = 0, ///< FuncRecord per function (the offset table).
  SuccOff,       ///< u32; per function N+1 local CSR offsets.
  PredOff,       ///< u32; per function N+1 local CSR offsets.
  SuccEdge,      ///< u32 (EdgeId); per function E entries.
  SuccTo,        ///< u32 (NodeId); per function E entries.
  PredEdge,      ///< u32 (EdgeId); per function E entries.
  PredFrom,      ///< u32 (NodeId); per function E entries.
  EdgeSrc,       ///< u32 (NodeId); per function E entries.
  EdgeDst,       ///< u32 (NodeId); per function E entries.
  Regions,       ///< SeseRegion (16 bytes); per function R entries.
  NodeRegion,    ///< u32 (RegionId); per function N entries.
  EdgeRegion,    ///< u32 (RegionId); per function E entries.
  EntryOf,       ///< u32 (RegionId); per function E entries.
  ExitOf,        ///< u32 (RegionId); per function E entries.
  ChildOff,      ///< u32; per function R+1 local CSR offsets.
  ChildVal,      ///< u32 (RegionId); per function R-1 entries.
  ImmOff,        ///< u32; per function R+1 local CSR offsets.
  ImmVal,        ///< u32 (NodeId); per function N entries.
  NodeLabelOff,  ///< u64 byte offset into StrTab, per node.
  StrTab,        ///< NUL-terminated names and labels.
  NumKinds
};

inline constexpr uint32_t NumSections =
    static_cast<uint32_t>(SectionKind::NumKinds);

/// Human-readable section name ("SuccEdge", ...), for diagnostics and
/// `pstool --image-info`.
const char *sectionName(SectionKind K);

/// Fixed-size file header. Trivially copyable; written/read by memcpy.
struct ImageHeader {
  char MagicBytes[8];
  uint32_t Version = 0;
  uint32_t Endian = 0;
  uint64_t FileBytes = 0;    ///< Total file size; truncation check.
  uint64_t NumFunctions = 0;
  uint32_t SectionCount = 0;
  uint32_t FuncRecordBytes = 0; ///< sizeof(FuncRecord) layout guard.
  uint64_t Reserved = 0;
};
static_assert(sizeof(ImageHeader) == 48, "header layout is part of the format");

/// One section-table entry.
struct SectionDesc {
  uint32_t Kind = 0;
  uint32_t Reserved = 0;
  uint64_t Offset = 0;   ///< File byte offset; multiple of SectionAlign.
  uint64_t Bytes = 0;    ///< Payload byte size (unpadded).
  uint64_t Checksum = 0; ///< FNV-1a 64 over the payload bytes.
};
static_assert(sizeof(SectionDesc) == 32, "section table layout is fixed");

/// Per-function row of the offset table: element bases into the shared
/// global arrays plus the function's scalar facts. All bases are 64-bit so
/// corpora whose concatenated arrays pass 4 Gi elements stay representable.
struct FuncRecord {
  uint64_t NodeBase = 0;      ///< Into NodeRegion/ImmVal/NodeLabelOff.
  uint64_t EdgeBase = 0;      ///< Into the six CSR edge arrays and EdgeRegion/EntryOf/ExitOf.
  uint64_t CsrBase = 0;       ///< Into SuccOff/PredOff ((N+1)-sized rows).
  uint64_t RegionBase = 0;    ///< Into Regions.
  uint64_t RegionCsrBase = 0; ///< Into ChildOff/ImmOff ((R+1)-sized rows).
  uint64_t ChildBase = 0;     ///< Into ChildVal ((R-1)-sized rows).
  uint64_t NameOff = 0;       ///< Byte offset of the NUL-terminated name in StrTab.
  uint32_t NumNodes = 0;
  uint32_t NumEdges = 0;
  uint32_t NumRegions = 0;
  uint32_t Entry = 0;
  uint32_t Exit = 0;
  uint32_t Reserved = 0;
};
static_assert(sizeof(FuncRecord) == 80, "offset table layout is fixed");
static_assert(sizeof(SeseRegion) == 16 &&
                  std::is_trivially_copyable_v<SeseRegion>,
              "SeseRegion is serialized by memcpy");

/// FNV-1a 64-bit over \p Bytes bytes — the per-section checksum.
uint64_t fnv1a(const void *Data, uint64_t Bytes);

/// Incremental FNV-1a: folds \p Bytes more bytes into running state \p H.
/// Seed with \c Fnv1aBasis; chaining updates over consecutive windows
/// equals one fnv1a over the concatenation, which is what lets the
/// out-of-core builder and \c verifyImageFile checksum multi-gigabyte
/// sections through a bounded buffer.
inline constexpr uint64_t Fnv1aBasis = 0xcbf29ce484222325ull;
uint64_t fnv1aUpdate(uint64_t H, const void *Data, uint64_t Bytes);

/// What the layout pass needs to know about one function.
struct FunctionShape {
  uint32_t NumNodes = 0;
  uint32_t NumEdges = 0;
  uint32_t NumRegions = 0;
  uint32_t Entry = 0;
  uint32_t Exit = 0;
  /// Bytes this function contributes to StrTab: name + NUL plus one
  /// NUL-terminated label per node.
  uint64_t StrBytes = 0;
};

/// The computed file layout: the per-function offset table plus where each
/// section lands in the file. Pure arithmetic over \c FunctionShape — no
/// arrays are materialized, which is what makes >4 GiB layouts unit-testable.
struct ImageLayout {
  std::vector<FuncRecord> Funcs;
  /// Payload byte size per section, indexed by SectionKind.
  uint64_t SectionBytes[NumSections] = {};
  /// File byte offset per section, each a multiple of SectionAlign.
  uint64_t SectionOffset[NumSections] = {};
  uint64_t FileBytes = 0;
};

/// The one offset-table fixup pass: prefix sums over the shapes, then the
/// section table (header + section descriptors + aligned payloads).
ImageLayout computeCorpusLayout(std::span<const FunctionShape> Shapes);

/// Computes one function's layout facts. \p T must be the PST of \p G.
/// Both the in-memory builder's setShape and the streaming writer reduce
/// to this, so the two paths cannot disagree about a function's shape.
FunctionShape functionShape(const Cfg &G, const ProgramStructureTree &T,
                            std::string_view Name = {});

/// The running prefix sums of the layout pass. append() folds one shape
/// in and returns its finished FuncRecord; the final totals are the
/// global element counts every section's byte size derives from.
/// computeCorpusLayout consumes shapes through this cursor and the
/// out-of-core StreamImageWriter feeds it one shape at a time — same
/// arithmetic, so a streamed offset table is the materialized one byte
/// for byte at any chunk size.
struct LayoutCursor {
  uint64_t Nodes = 0;     ///< Elements of NodeRegion/ImmVal/NodeLabelOff.
  uint64_t Edges = 0;     ///< Elements of the six edge arrays + EdgeRegion/EntryOf/ExitOf.
  uint64_t Csr = 0;       ///< Elements of SuccOff/PredOff.
  uint64_t Regions = 0;   ///< Elements of Regions.
  uint64_t RegionCsr = 0; ///< Elements of ChildOff/ImmOff.
  uint64_t Children = 0;  ///< Elements of ChildVal.
  uint64_t Str = 0;       ///< Bytes of StrTab.

  FuncRecord append(const FunctionShape &S);
};

/// Fills \p L's SectionBytes/SectionOffset/FileBytes from the cursor's
/// final totals (L.Funcs is left alone — streamed layouts never hold the
/// offset table in memory). Second half of computeCorpusLayout.
void finalizeSectionLayout(uint64_t NumFunctions, const LayoutCursor &Cur,
                           ImageLayout &L);

} // namespace image

/// Builds a corpus image arena in three phases so a thread pool can fan
/// out the per-function work (BatchAnalyzer::buildImage does; the serial
/// \c buildCorpusImage below drives the same phases inline):
///
///   1. setShape(I, ...)  per function, any thread, distinct I
///   2. layout()          serial: the offset-table fixup pass
///   3. fill(I, ...)      per function, any thread, distinct I
///      finish()          serial: checksums + header; yields the bytes
///
/// Distinct functions write disjoint arena ranges, so phases 1 and 3 need
/// no synchronization beyond the caller's fork/join.
class CorpusImageBuilder {
public:
  explicit CorpusImageBuilder(size_t NumFunctions);

  /// Records function \p I's shape (counts, entry/exit, string bytes).
  /// \p T must be the PST of \p G.
  void setShape(size_t I, const Cfg &G, const ProgramStructureTree &T,
                std::string_view Name = {});

  /// Computes the global layout from the recorded shapes and allocates the
  /// arena. Must run after every setShape and before any fill.
  void layout();

  /// Copies function \p I's arrays into its arena slices. \p V must be a
  /// view of \p G and \p T its PST; \p Name must match setShape's.
  void fill(size_t I, const Cfg &G, const CfgView &V,
            const ProgramStructureTree &T, std::string_view Name = {});

  /// Computes section checksums, writes header and section table, and
  /// returns the complete image bytes. The builder is spent afterwards.
  std::vector<uint8_t> finish();

  const image::ImageLayout &imageLayout() const { return Layout; }

private:
  uint8_t *sectionData(image::SectionKind K);

  std::vector<image::FunctionShape> Shapes;
  image::ImageLayout Layout;
  std::vector<uint8_t> Arena;
  bool LaidOut = false;
};

namespace image {
/// Opaque platform file handle (POSIX fd, or a locked stdio stream where
/// positional I/O is unavailable). Defined in the .cpp.
struct ImageFile;
} // namespace image

/// Out-of-core twin of \c CorpusImageBuilder: builds a corpus image
/// directly into a pre-sized file instead of a heap arena, so peak RSS is
/// proportional to one chunk of functions, never to the corpus.
///
///   pass 1:  addShape() per function, strictly in index order. Each
///            shape's FuncRecord falls out of the running prefix sums
///            (\c image::LayoutCursor) and is written straight into the
///            file's FuncTable section — whose offset is known before any
///            layout, because FuncTable is the first section and header +
///            section table have fixed size. beginFill() then fixes the
///            section table arithmetically from the final totals and
///            pre-sizes the file (unwritten holes read back as zero,
///            which is exactly the in-memory arena's zeroed padding).
///   pass 2:  re-stream the corpus in chunks. beginChunk() reads the
///            chunk's FuncRecords back from the file and sizes zeroed
///            staging buffers — within any section, a run of consecutive
///            functions occupies one contiguous byte range. fill() copies
///            one function into the staging slices (distinct functions of
///            the same chunk may fill concurrently; their slices are
///            disjoint). endChunk() issues one positional write per
///            section. Distinct chunks with distinct scratch may also be
///            in flight concurrently.
///   finish(): re-reads the file through a bounded window to compute the
///            section checksums, then writes header + section table.
///
/// The output is byte-identical to \c CorpusImageBuilder over the same
/// functions in the same order, at every chunk size and thread count —
/// the layout arithmetic and the per-function slice copies are shared
/// code, and the chunk staging only changes *where* bytes are assembled.
class StreamImageWriter {
public:
  /// Staging state for one in-flight chunk: the chunk's FuncRecords (plus
  /// one end sentinel) and one zeroed buffer per section covering the
  /// chunk's contiguous element range. Reused across chunks; use one
  /// instance per concurrent chunk.
  struct ChunkScratch {
    uint64_t Begin = 0;
    uint64_t Count = 0;
    /// Count + 1 records: the chunk's own plus a sentinel whose bases are
    /// the chunk's end elements (the next function's record, or the
    /// corpus totals for the tail chunk).
    std::vector<image::FuncRecord> Recs;
    std::vector<uint8_t> Buf[image::NumSections];
  };

  /// Creates/truncates \p Path. On I/O failure the writer is !valid() and
  /// every operation fails with the constructor's diagnostic.
  StreamImageWriter(std::string Path, uint64_t NumFunctions);
  ~StreamImageWriter();
  StreamImageWriter(const StreamImageWriter &) = delete;
  StreamImageWriter &operator=(const StreamImageWriter &) = delete;

  bool valid() const { return File != nullptr; }

  /// Pass 1, serial, in index order: folds function \p I = (number of
  /// prior addShape calls)'s shape into the layout and streams its
  /// FuncRecord to the file.
  bool addShape(const image::FunctionShape &S, std::string *Error = nullptr);
  bool addShape(const Cfg &G, const ProgramStructureTree &T,
                std::string_view Name = {}, std::string *Error = nullptr);

  /// Serial barrier between the passes: requires exactly NumFunctions
  /// addShape calls, finalizes the section layout, pre-sizes the file.
  bool beginFill(std::string *Error = nullptr);

  /// Loads chunk [Begin, Begin+Count)'s records and sizes its staging
  /// buffers. Thread-safe against other chunks' begin/fill/end.
  bool beginChunk(ChunkScratch &CS, uint64_t Begin, uint64_t Count,
                  std::string *Error = nullptr) const;

  /// Copies function \p I (must lie in \p CS's range) into the staging
  /// buffers. \p V must be a view of \p G, \p T its PST, and \p Name the
  /// name addShape saw — shape drift between the passes asserts. Distinct
  /// functions may fill the same chunk concurrently.
  void fill(ChunkScratch &CS, uint64_t I, const Cfg &G, const CfgView &V,
            const ProgramStructureTree &T, std::string_view Name = {}) const;

  /// Writes the chunk's staged section slices to the file.
  bool endChunk(ChunkScratch &CS, std::string *Error = nullptr) const;

  /// Streams the file back through a bounded window to compute section
  /// checksums, writes header + section table, closes the file. The
  /// writer is spent afterwards.
  bool finish(std::string *Error = nullptr);

  uint64_t numFunctions() const { return NumFuncs; }
  /// Total file size; valid after beginFill().
  uint64_t fileBytes() const { return Layout.FileBytes; }
  const std::string &path() const { return Path; }

private:
  bool flushRecords(std::string *Error);

  std::string Path;
  uint64_t NumFuncs = 0;
  image::ImageFile *File = nullptr;
  image::LayoutCursor Cursor;
  /// Funcs stays empty — records live in the file, not in memory.
  image::ImageLayout Layout;
  uint64_t Added = 0;
  bool Filling = false;
  /// Pass-1 write-behind buffer for FuncRecords (bounded).
  std::vector<image::FuncRecord> RecBuf;
  uint64_t RecsFlushed = 0;
};

/// Streams \p Path through a bounded window and checks header sanity and
/// every section checksum — the integrity story of \c CorpusImage::verify
/// without paying its resident-set cost (mapping + checksumming a 2.5 GB
/// image would fault every page into RSS; this never holds more than the
/// window). Structural validation still happens at map time.
bool verifyImageFile(const std::string &Path, std::string *Error = nullptr);

/// A mapped (or memory-backed) corpus image. Move-only; unmaps on
/// destruction. All accessors require \c valid().
class CorpusImage {
public:
  CorpusImage() = default;
  CorpusImage(CorpusImage &&O) noexcept;
  CorpusImage &operator=(CorpusImage &&O) noexcept;
  CorpusImage(const CorpusImage &) = delete;
  CorpusImage &operator=(const CorpusImage &) = delete;
  ~CorpusImage();

  /// Maps \p Path read-only and validates its structure (header fields,
  /// section table, per-function offset bounds) without touching the array
  /// payloads. On failure returns an invalid image and, if \p Error is
  /// non-null, a diagnostic ("truncated...", "bad magic...", ...).
  static CorpusImage map(const std::string &Path,
                         std::string *Error = nullptr);

  /// As \c map over an in-memory byte buffer (takes ownership). The
  /// builder's output can be opened directly without a file round trip.
  static CorpusImage fromBytes(std::vector<uint8_t> Bytes,
                               std::string *Error = nullptr);

  bool valid() const { return Base != nullptr; }
  uint64_t numFunctions() const { return Hdr->NumFunctions; }
  uint64_t fileBytes() const { return Hdr->FileBytes; }
  const image::ImageHeader &header() const { return *Hdr; }
  uint32_t numSections() const { return Hdr->SectionCount; }
  const image::SectionDesc &section(uint32_t I) const { return Sections[I]; }

  /// Recomputes section \p I's checksum against its descriptor.
  bool verifySection(uint32_t I) const;

  /// Recomputes every section checksum (the full-integrity pass mapping
  /// deliberately skips). On mismatch returns false and names the first
  /// bad section in \p *Error.
  bool verify(std::string *Error = nullptr) const;

  const image::FuncRecord &func(uint64_t I) const { return Funcs[I]; }
  std::string_view functionName(uint64_t I) const;

  /// Zero-copy CSR view of function \p I over the mapped arrays; valid
  /// while the image lives.
  CfgView cfg(uint64_t I) const;

  /// Zero-copy frozen PST of function \p I (\c adoptExternal over the
  /// mapped arrays); valid while the image lives. Its cycleEquiv() is
  /// empty — the classes are construction input, not serialized state.
  ProgramStructureTree pst(uint64_t I) const;

  /// Drops the resident pages of an mmap-backed image (madvise
  /// MADV_DONTNEED on the read-only private mapping) so a streaming pass
  /// over a huge image keeps peak RSS at roughly one working window;
  /// later accesses refault from the page cache. No-op for memory-backed
  /// images and on platforms without madvise. Any CfgView/PST previously
  /// returned stays valid — the mapping itself is untouched.
  void release() const;

  /// Rebuilds a heap-owned \c Cfg (labels included) for function \p I —
  /// the slow path for printers and round-trip rebuilds, not for analysis.
  /// Adjacency-list order is reproduced exactly because edges are appended
  /// in edge-id order, the only order \c Cfg construction ever produces.
  Cfg materializeCfg(uint64_t I) const;

  /// The whole image as raw bytes (header, sections, checksums). The
  /// format is byte-deterministic for a given corpus, so equality of two
  /// images' rawBytes() is equality of the frozen analyses — the serving
  /// layer leans on this to check published snapshots against
  /// from-scratch rebuilds by memcmp.
  std::span<const uint8_t> rawBytes() const { return {Base, Bytes}; }

private:
  bool attach(std::string *Error);
  void reset();
  const uint8_t *sectionBase(image::SectionKind K) const;

  const uint8_t *Base = nullptr;
  uint64_t Bytes = 0;
  /// fromBytes storage (empty when mmap-backed).
  std::vector<uint8_t> OwnedBytes;
  /// mmap storage (null when memory-backed).
  void *MapAddr = nullptr;
  size_t MapLen = 0;

  const image::ImageHeader *Hdr = nullptr;
  const image::SectionDesc *Sections = nullptr;
  const image::FuncRecord *Funcs = nullptr;
};

/// Serial convenience: runs the full pipeline (CfgView + PST) per function
/// and returns the finished image bytes. \p Names, when non-empty, must
/// parallel \p Fns. The parallel twin is \c BatchAnalyzer::buildImage.
std::vector<uint8_t>
buildCorpusImage(std::span<const Cfg *const> Fns,
                 std::span<const std::string> Names = {});

/// Writes \p Bytes to \p Path atomically enough for tooling (truncate +
/// write + close). Returns false with a diagnostic on I/O failure.
bool writeImageFile(const std::string &Path, std::span<const uint8_t> Bytes,
                    std::string *Error = nullptr);

} // namespace pst

#endif // PST_IMAGE_CORPUSIMAGE_H
