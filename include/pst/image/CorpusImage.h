//===- pst/image/CorpusImage.h - Frozen mmap-able corpus images -*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One contiguous, serializable arena holding the frozen CSR CFGs *and*
/// PSTs of a whole corpus, so cold start is an mmap instead of a
/// parse+lower+build pass over every function.
///
/// PR 5's \c CfgView proved that "build adjacency once, run everything on
/// flat arrays" wins; the corpus image takes the same idea process-wide,
/// following Kremlin's MemMapPool/MemMapAllocator idiom of pooled
/// mmap-backed allocation. Every per-function array of the pipeline's two
/// frozen products — the eight \c CfgView CSR arrays and the PST's
/// Regions/NodeRegion/EdgeRegion/EntryOf/ExitOf/ChildOff/ChildVal/ImmOff/
/// ImmVal — is concatenated into one shared global array, and a
/// per-function offset table records where each function's slices start.
/// Names and node labels ride along in a string table so mapped functions
/// print identically to freshly parsed ones.
///
/// On-disk format (version 1), all fields little-endian on little-endian
/// hosts (an endianness tag rejects foreign images):
///
///   ImageHeader                     magic, version, endian tag, sizes
///   SectionDesc[NumSections]        kind, 64-bit offset/size, checksum
///   section payloads                each 8-byte aligned in the file
///
/// Section offsets and sizes are 64-bit and every section starts 8-byte
/// aligned, so million-function corpora with >4 GiB arrays are
/// representable (the layout pass is pure arithmetic and unit-tested past
/// the 32-bit boundary without materializing data). Per-section FNV-1a
/// checksums make corruption detectable without re-deriving anything.
///
/// Mapping contract: \c CorpusImage::map validates structure (header,
/// section table, per-function bounds) but does not touch the array
/// payloads; \c verify() additionally checks every section checksum.
/// \c cfg(i) / \c pst(i) return non-owning views (\c CfgView /
/// \c ProgramStructureTree::adoptExternal) directly over the mapped bytes
/// — zero parse, zero copy, zero allocation — valid only while the image
/// is alive and unmoved. Every analysis overload that takes
/// \c const CfgView& or \c const ProgramStructureTree& runs on them
/// unmodified.
///
//===----------------------------------------------------------------------===//

#ifndef PST_IMAGE_CORPUSIMAGE_H
#define PST_IMAGE_CORPUSIMAGE_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/graph/Cfg.h"
#include "pst/graph/CfgView.h"

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pst {
namespace image {

/// First 8 bytes of every corpus image ("PSTIMG" + two format digits).
inline constexpr char Magic[8] = {'P', 'S', 'T', 'I', 'M', 'G', '0', '1'};
/// Bumped on any layout change; readers reject other versions.
inline constexpr uint32_t FormatVersion = 1;
/// Written as the native byte order; reads as 0x04030201 on a
/// different-endian host, which is rejected (images are a same-arch cold
/// start artifact, not an interchange format).
inline constexpr uint32_t EndianTag = 0x01020304;
/// Every section payload starts at a file offset that is a multiple of
/// this, so mapped u64 arrays are naturally aligned.
inline constexpr uint64_t SectionAlign = 8;

/// The sections of a version-1 image, in file order. Per-function slices
/// are element ranges inside these shared global arrays.
enum class SectionKind : uint32_t {
  FuncTable = 0, ///< FuncRecord per function (the offset table).
  SuccOff,       ///< u32; per function N+1 local CSR offsets.
  PredOff,       ///< u32; per function N+1 local CSR offsets.
  SuccEdge,      ///< u32 (EdgeId); per function E entries.
  SuccTo,        ///< u32 (NodeId); per function E entries.
  PredEdge,      ///< u32 (EdgeId); per function E entries.
  PredFrom,      ///< u32 (NodeId); per function E entries.
  EdgeSrc,       ///< u32 (NodeId); per function E entries.
  EdgeDst,       ///< u32 (NodeId); per function E entries.
  Regions,       ///< SeseRegion (16 bytes); per function R entries.
  NodeRegion,    ///< u32 (RegionId); per function N entries.
  EdgeRegion,    ///< u32 (RegionId); per function E entries.
  EntryOf,       ///< u32 (RegionId); per function E entries.
  ExitOf,        ///< u32 (RegionId); per function E entries.
  ChildOff,      ///< u32; per function R+1 local CSR offsets.
  ChildVal,      ///< u32 (RegionId); per function R-1 entries.
  ImmOff,        ///< u32; per function R+1 local CSR offsets.
  ImmVal,        ///< u32 (NodeId); per function N entries.
  NodeLabelOff,  ///< u64 byte offset into StrTab, per node.
  StrTab,        ///< NUL-terminated names and labels.
  NumKinds
};

inline constexpr uint32_t NumSections =
    static_cast<uint32_t>(SectionKind::NumKinds);

/// Human-readable section name ("SuccEdge", ...), for diagnostics and
/// `pstool --image-info`.
const char *sectionName(SectionKind K);

/// Fixed-size file header. Trivially copyable; written/read by memcpy.
struct ImageHeader {
  char MagicBytes[8];
  uint32_t Version = 0;
  uint32_t Endian = 0;
  uint64_t FileBytes = 0;    ///< Total file size; truncation check.
  uint64_t NumFunctions = 0;
  uint32_t SectionCount = 0;
  uint32_t FuncRecordBytes = 0; ///< sizeof(FuncRecord) layout guard.
  uint64_t Reserved = 0;
};
static_assert(sizeof(ImageHeader) == 48, "header layout is part of the format");

/// One section-table entry.
struct SectionDesc {
  uint32_t Kind = 0;
  uint32_t Reserved = 0;
  uint64_t Offset = 0;   ///< File byte offset; multiple of SectionAlign.
  uint64_t Bytes = 0;    ///< Payload byte size (unpadded).
  uint64_t Checksum = 0; ///< FNV-1a 64 over the payload bytes.
};
static_assert(sizeof(SectionDesc) == 32, "section table layout is fixed");

/// Per-function row of the offset table: element bases into the shared
/// global arrays plus the function's scalar facts. All bases are 64-bit so
/// corpora whose concatenated arrays pass 4 Gi elements stay representable.
struct FuncRecord {
  uint64_t NodeBase = 0;      ///< Into NodeRegion/ImmVal/NodeLabelOff.
  uint64_t EdgeBase = 0;      ///< Into the six CSR edge arrays and EdgeRegion/EntryOf/ExitOf.
  uint64_t CsrBase = 0;       ///< Into SuccOff/PredOff ((N+1)-sized rows).
  uint64_t RegionBase = 0;    ///< Into Regions.
  uint64_t RegionCsrBase = 0; ///< Into ChildOff/ImmOff ((R+1)-sized rows).
  uint64_t ChildBase = 0;     ///< Into ChildVal ((R-1)-sized rows).
  uint64_t NameOff = 0;       ///< Byte offset of the NUL-terminated name in StrTab.
  uint32_t NumNodes = 0;
  uint32_t NumEdges = 0;
  uint32_t NumRegions = 0;
  uint32_t Entry = 0;
  uint32_t Exit = 0;
  uint32_t Reserved = 0;
};
static_assert(sizeof(FuncRecord) == 80, "offset table layout is fixed");
static_assert(sizeof(SeseRegion) == 16 &&
                  std::is_trivially_copyable_v<SeseRegion>,
              "SeseRegion is serialized by memcpy");

/// FNV-1a 64-bit over \p Bytes bytes — the per-section checksum.
uint64_t fnv1a(const void *Data, uint64_t Bytes);

/// What the layout pass needs to know about one function.
struct FunctionShape {
  uint32_t NumNodes = 0;
  uint32_t NumEdges = 0;
  uint32_t NumRegions = 0;
  uint32_t Entry = 0;
  uint32_t Exit = 0;
  /// Bytes this function contributes to StrTab: name + NUL plus one
  /// NUL-terminated label per node.
  uint64_t StrBytes = 0;
};

/// The computed file layout: the per-function offset table plus where each
/// section lands in the file. Pure arithmetic over \c FunctionShape — no
/// arrays are materialized, which is what makes >4 GiB layouts unit-testable.
struct ImageLayout {
  std::vector<FuncRecord> Funcs;
  /// Payload byte size per section, indexed by SectionKind.
  uint64_t SectionBytes[NumSections] = {};
  /// File byte offset per section, each a multiple of SectionAlign.
  uint64_t SectionOffset[NumSections] = {};
  uint64_t FileBytes = 0;
};

/// The one offset-table fixup pass: prefix sums over the shapes, then the
/// section table (header + section descriptors + aligned payloads).
ImageLayout computeCorpusLayout(std::span<const FunctionShape> Shapes);

} // namespace image

/// Builds a corpus image arena in three phases so a thread pool can fan
/// out the per-function work (BatchAnalyzer::buildImage does; the serial
/// \c buildCorpusImage below drives the same phases inline):
///
///   1. setShape(I, ...)  per function, any thread, distinct I
///   2. layout()          serial: the offset-table fixup pass
///   3. fill(I, ...)      per function, any thread, distinct I
///      finish()          serial: checksums + header; yields the bytes
///
/// Distinct functions write disjoint arena ranges, so phases 1 and 3 need
/// no synchronization beyond the caller's fork/join.
class CorpusImageBuilder {
public:
  explicit CorpusImageBuilder(size_t NumFunctions);

  /// Records function \p I's shape (counts, entry/exit, string bytes).
  /// \p T must be the PST of \p G.
  void setShape(size_t I, const Cfg &G, const ProgramStructureTree &T,
                std::string_view Name = {});

  /// Computes the global layout from the recorded shapes and allocates the
  /// arena. Must run after every setShape and before any fill.
  void layout();

  /// Copies function \p I's arrays into its arena slices. \p V must be a
  /// view of \p G and \p T its PST; \p Name must match setShape's.
  void fill(size_t I, const Cfg &G, const CfgView &V,
            const ProgramStructureTree &T, std::string_view Name = {});

  /// Computes section checksums, writes header and section table, and
  /// returns the complete image bytes. The builder is spent afterwards.
  std::vector<uint8_t> finish();

  const image::ImageLayout &imageLayout() const { return Layout; }

private:
  uint8_t *sectionData(image::SectionKind K);

  std::vector<image::FunctionShape> Shapes;
  image::ImageLayout Layout;
  std::vector<uint8_t> Arena;
  bool LaidOut = false;
};

/// A mapped (or memory-backed) corpus image. Move-only; unmaps on
/// destruction. All accessors require \c valid().
class CorpusImage {
public:
  CorpusImage() = default;
  CorpusImage(CorpusImage &&O) noexcept;
  CorpusImage &operator=(CorpusImage &&O) noexcept;
  CorpusImage(const CorpusImage &) = delete;
  CorpusImage &operator=(const CorpusImage &) = delete;
  ~CorpusImage();

  /// Maps \p Path read-only and validates its structure (header fields,
  /// section table, per-function offset bounds) without touching the array
  /// payloads. On failure returns an invalid image and, if \p Error is
  /// non-null, a diagnostic ("truncated...", "bad magic...", ...).
  static CorpusImage map(const std::string &Path,
                         std::string *Error = nullptr);

  /// As \c map over an in-memory byte buffer (takes ownership). The
  /// builder's output can be opened directly without a file round trip.
  static CorpusImage fromBytes(std::vector<uint8_t> Bytes,
                               std::string *Error = nullptr);

  bool valid() const { return Base != nullptr; }
  uint64_t numFunctions() const { return Hdr->NumFunctions; }
  uint64_t fileBytes() const { return Hdr->FileBytes; }
  const image::ImageHeader &header() const { return *Hdr; }
  uint32_t numSections() const { return Hdr->SectionCount; }
  const image::SectionDesc &section(uint32_t I) const { return Sections[I]; }

  /// Recomputes section \p I's checksum against its descriptor.
  bool verifySection(uint32_t I) const;

  /// Recomputes every section checksum (the full-integrity pass mapping
  /// deliberately skips). On mismatch returns false and names the first
  /// bad section in \p *Error.
  bool verify(std::string *Error = nullptr) const;

  const image::FuncRecord &func(uint64_t I) const { return Funcs[I]; }
  std::string_view functionName(uint64_t I) const;

  /// Zero-copy CSR view of function \p I over the mapped arrays; valid
  /// while the image lives.
  CfgView cfg(uint64_t I) const;

  /// Zero-copy frozen PST of function \p I (\c adoptExternal over the
  /// mapped arrays); valid while the image lives. Its cycleEquiv() is
  /// empty — the classes are construction input, not serialized state.
  ProgramStructureTree pst(uint64_t I) const;

  /// Rebuilds a heap-owned \c Cfg (labels included) for function \p I —
  /// the slow path for printers and round-trip rebuilds, not for analysis.
  /// Adjacency-list order is reproduced exactly because edges are appended
  /// in edge-id order, the only order \c Cfg construction ever produces.
  Cfg materializeCfg(uint64_t I) const;

private:
  bool attach(std::string *Error);
  void reset();
  const uint8_t *sectionBase(image::SectionKind K) const;

  const uint8_t *Base = nullptr;
  uint64_t Bytes = 0;
  /// fromBytes storage (empty when mmap-backed).
  std::vector<uint8_t> OwnedBytes;
  /// mmap storage (null when memory-backed).
  void *MapAddr = nullptr;
  size_t MapLen = 0;

  const image::ImageHeader *Hdr = nullptr;
  const image::SectionDesc *Sections = nullptr;
  const image::FuncRecord *Funcs = nullptr;
};

/// Serial convenience: runs the full pipeline (CfgView + PST) per function
/// and returns the finished image bytes. \p Names, when non-empty, must
/// parallel \p Fns. The parallel twin is \c BatchAnalyzer::buildImage.
std::vector<uint8_t>
buildCorpusImage(std::span<const Cfg *const> Fns,
                 std::span<const std::string> Names = {});

/// Writes \p Bytes to \p Path atomically enough for tooling (truncate +
/// write + close). Returns false with a diagnostic on I/O failure.
bool writeImageFile(const std::string &Path, std::span<const uint8_t> Bytes,
                    std::string *Error = nullptr);

} // namespace pst

#endif // PST_IMAGE_CORPUSIMAGE_H
