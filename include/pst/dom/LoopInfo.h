//===- pst/dom/LoopInfo.h - Natural loop nesting forest ---------*- C++ -*-===//
//
// Part of the PST library (see Dominators.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops and the loop nesting forest. A backedge is an edge whose
/// target dominates its source; its natural loop is the target (header)
/// plus every node that reaches the source without passing the header.
/// Loops sharing a header are merged. Used by tests to cross-check the
/// PST's loop-region classification and by the structure examples.
///
//===----------------------------------------------------------------------===//

#ifndef PST_DOM_LOOPINFO_H
#define PST_DOM_LOOPINFO_H

#include "pst/dom/Dominators.h"
#include "pst/graph/Cfg.h"

#include <vector>

namespace pst {

/// Dense index of a natural loop.
using LoopId = uint32_t;
/// Sentinel for "no loop".
inline constexpr LoopId InvalidLoop = ~LoopId(0);

/// The natural loops of one CFG, organized into a nesting forest.
class LoopInfo {
public:
  struct Loop {
    NodeId Header = InvalidNode;
    /// Backedges (as CFG edge ids) whose target is this header.
    std::vector<EdgeId> Backedges;
    /// All member nodes, sorted (header included).
    std::vector<NodeId> Nodes;
    /// Enclosing loop, or InvalidLoop for top-level loops.
    LoopId Parent = InvalidLoop;
    /// Immediately nested loops.
    std::vector<LoopId> Children;
    /// Nesting depth; top-level loops have depth 1.
    uint32_t Depth = 1;
  };

  /// Computes natural loops of \p G using dominator tree \p DT. Only
  /// backedges in the dominance sense contribute; irreducible cycles
  /// (retreating edges whose target does not dominate the source) are not
  /// natural loops and are reported via \c irreducibleEdges.
  LoopInfo(const Cfg &G, const DomTree &DT);

  /// CfgView twin: walks the shared flat succ/pred segments. Identical
  /// loops (same ids, members, nesting) to the \c Cfg overload on a view
  /// of the same graph.
  LoopInfo(const CfgView &V, const DomTree &DT);

  uint32_t numLoops() const { return static_cast<uint32_t>(Loops.size()); }
  const Loop &loop(LoopId L) const { return Loops[L]; }

  /// Innermost loop containing node \p N, or InvalidLoop.
  LoopId loopOf(NodeId N) const { return NodeLoop[N]; }

  /// Loop nesting depth of node \p N (0 = not in any loop).
  uint32_t depthOf(NodeId N) const {
    return NodeLoop[N] == InvalidLoop ? 0 : Loops[NodeLoop[N]].Depth;
  }

  /// Retreating edges that are not natural backedges (evidence of
  /// irreducibility).
  const std::vector<EdgeId> &irreducibleEdges() const { return IrrEdges; }

private:
  // Shared construction kernel for the Cfg and CfgView overloads; defined
  // (and only instantiated) in LoopInfo.cpp.
  template <class GraphT> void init(const GraphT &G, const DomTree &DT);

  std::vector<Loop> Loops;
  std::vector<LoopId> NodeLoop;
  std::vector<EdgeId> IrrEdges;
};

} // namespace pst

#endif // PST_DOM_LOOPINFO_H
