//===- pst/dom/ControlDependenceCsr.h - cdep as a CSR relation --*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full Ferrante/Ottenstein/Warren control-dependence relation of one
/// CFG, materialized as a CSR (node -> controlling edges slice).
///
/// N is control dependent on edge (C, M) iff N postdominates M and does
/// not strictly postdominate C. For a fixed edge, that set is exactly the
/// postdominator-tree ancestors of M up to — exclusive — ipdom(C)
/// (inclusive of the pdt root when C is the root or unreachable in the
/// reverse graph; empty when M is unreachable), which is how the two-pass
/// construction here walks it: one counting pass, one fill pass, no
/// per-node containers. Edges are visited in ascending id order, so each
/// node's slice comes out sorted ascending — the same order a direct
/// all-edges scan (`dominates(N, M) && !(N != C && dominates(N, C))`)
/// produces, which the serving layer's cached-vs-uncached byte-identity
/// gate relies on.
///
/// Construction is O(size of the relation) after the postdominator tree,
/// and a per-node query is a slice lookup — the precomputed-relation
/// treatment of control dependence (cf. Chalupa et al., arXiv 2011.01564)
/// that turns the server's per-query O(E) scans into slice copies.
///
//===----------------------------------------------------------------------===//

#ifndef PST_DOM_CONTROLDEPENDENCECSR_H
#define PST_DOM_CONTROLDEPENDENCECSR_H

#include "pst/dom/Dominators.h"

#include <span>
#include <vector>

namespace pst {

/// The control-dependence relation of one CFG as node-indexed CSR edge
/// slices. Self-contained after construction.
class ControlDependenceCsr {
public:
  ControlDependenceCsr() = default;

  /// Builds the relation for \p G using \p Pdt, which must be
  /// \c DomTree::buildPostDom of the same graph.
  ControlDependenceCsr(const Cfg &G, const DomTree &Pdt);

  /// CfgView twin; identical relation to the \c Cfg overload on a view of
  /// the same graph.
  ControlDependenceCsr(const CfgView &V, const DomTree &Pdt);

  /// The edges node \p N is control dependent on, ascending by edge id.
  std::span<const EdgeId> controllingEdges(NodeId N) const {
    return std::span<const EdgeId>(Edges).subspan(Off[N], Off[N + 1] - Off[N]);
  }

  uint32_t numNodes() const {
    return Off.empty() ? 0 : static_cast<uint32_t>(Off.size() - 1);
  }

  /// Total (node, edge) pairs in the relation.
  uint64_t relationSize() const { return Edges.size(); }

  /// Approximate heap footprint in bytes (for cache accounting).
  size_t bytes() const {
    return Off.capacity() * sizeof(uint32_t) +
           Edges.capacity() * sizeof(EdgeId);
  }

private:
  template <class GraphT> void init(const GraphT &G, const DomTree &Pdt);

  std::vector<uint32_t> Off;
  std::vector<EdgeId> Edges;
};

} // namespace pst

#endif // PST_DOM_CONTROLDEPENDENCECSR_H
