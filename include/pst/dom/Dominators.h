//===- pst/dom/Dominators.h - (Post)dominator trees -------------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and postdominator trees.
///
/// Two construction algorithms are provided and cross-checked in tests:
///  * \c buildIterative - the Cooper/Harvey/Kennedy two-finger intersection
///    over reverse postorder (simple, near-linear in practice).
///  * \c buildLengauerTarjan - the classic LT79 algorithm with path
///    compression, which is the baseline the paper benchmarks its cycle
///    equivalence algorithm against ("runs faster than Lengauer and
///    Tarjan's algorithm for finding dominators").
///
/// Postdominators are dominators of the reversed graph (node ids are
/// preserved by \c reverseCfg, so the tree indexes the original nodes).
///
//===----------------------------------------------------------------------===//

#ifndef PST_DOM_DOMINATORS_H
#define PST_DOM_DOMINATORS_H

#include "pst/graph/Cfg.h"
#include "pst/graph/CfgView.h"

#include <vector>

namespace pst {

/// An immediate-dominator tree over the nodes of a Cfg.
class DomTree {
public:
  /// Builds the dominator tree of \p G rooted at its entry, using the
  /// Cooper-Harvey-Kennedy iterative algorithm.
  static DomTree buildIterative(const Cfg &G);

  /// As \c buildIterative, over a frozen CSR view: RPO and the idom
  /// fixpoint iterate the shared flat pred segments directly. Bit-identical
  /// trees to the \c Cfg overload on a view of the same graph.
  static DomTree buildIterative(const CfgView &V);

  /// Builds the dominator tree of \p G rooted at its entry, using the
  /// Lengauer-Tarjan algorithm (the "simple" eval/link variant).
  static DomTree buildLengauerTarjan(const Cfg &G);

  /// As \c buildLengauerTarjan, over a frozen CSR view: the DFS and the
  /// semidominator passes walk the shared flat succ/pred segments directly.
  /// Bit-identical trees to the \c Cfg overload on a view of the same
  /// graph.
  static DomTree buildLengauerTarjan(const CfgView &V);

  /// Builds the postdominator tree of \p G (dominators of the reverse graph,
  /// rooted at exit), using the iterative algorithm.
  static DomTree buildPostDom(const Cfg &G);

  /// As \c buildPostDom, over a frozen CSR view. No reversed graph is
  /// materialized: the iterative algorithm runs on a \c ReversedCfgView
  /// adapter, whose succ segments are the view's pred segments (same
  /// ascending edge-id order \c reverseCfg produces), so the tree is
  /// bit-identical to the \c Cfg overload.
  static DomTree buildPostDom(const CfgView &V);

  /// Wraps an externally computed immediate-dominator array (e.g. from the
  /// PST divide-and-conquer builder); \p Idom[Root] must be InvalidNode.
  static DomTree fromIdom(NodeId Root, std::vector<NodeId> Idom);

  NodeId root() const { return Root; }

  /// Immediate dominator of \p N; InvalidNode for the root and for nodes
  /// unreachable from the root.
  NodeId idom(NodeId N) const { return Idom[N]; }

  /// Children of \p N in the dominator tree.
  const std::vector<NodeId> &children(NodeId N) const { return Kids[N]; }

  /// True if \p N is reachable from the root (the root itself included).
  bool isReachable(NodeId N) const { return N == Root || Idom[N] != InvalidNode; }

  /// Reflexive dominance query in O(1) (via tree intervals).
  bool dominates(NodeId A, NodeId B) const {
    if (!isReachable(A) || !isReachable(B))
      return false;
    return In[A] <= In[B] && Out[B] <= Out[A];
  }

  /// Irreflexive dominance query.
  bool strictlyDominates(NodeId A, NodeId B) const {
    return A != B && dominates(A, B);
  }

  /// Depth of \p N in the tree (root is 0). Unreachable nodes report 0.
  uint32_t depth(NodeId N) const { return Depth[N]; }

  uint32_t numNodes() const { return static_cast<uint32_t>(Idom.size()); }

  /// Approximate heap footprint in bytes (for cache accounting).
  size_t bytes() const {
    size_t B = Idom.capacity() * sizeof(NodeId) +
               Kids.capacity() * sizeof(std::vector<NodeId>) +
               (In.capacity() + Out.capacity() + Depth.capacity()) *
                   sizeof(uint32_t);
    for (const std::vector<NodeId> &K : Kids)
      B += K.capacity() * sizeof(NodeId);
    return B;
  }

private:
  void finalize(); // Builds Kids/In/Out/Depth from Idom.

  // Shared iterative kernel for the Cfg, CfgView and ReversedCfgView
  // overloads; defined (and only instantiated) in Dominators.cpp.
  template <class GraphT> static DomTree buildIterativeImpl(const GraphT &G);
  // Shared Lengauer-Tarjan kernel for the Cfg and CfgView overloads.
  template <class GraphT>
  static DomTree buildLengauerTarjanImpl(const GraphT &G);

  NodeId Root = InvalidNode;
  std::vector<NodeId> Idom;
  std::vector<std::vector<NodeId>> Kids;
  std::vector<uint32_t> In, Out, Depth;
};

/// Per-node dominance frontiers (Cytron et al.), computed from a dominator
/// tree. DF(n) = merges m such that n dominates a predecessor of m but does
/// not strictly dominate m.
class DominanceFrontiers {
public:
  /// Computes frontiers for \p G using dominator tree \p DT (which must have
  /// been built for \p G).
  DominanceFrontiers(const Cfg &G, const DomTree &DT);

  /// CfgView twin: walks the shared flat pred segments. Identical
  /// frontiers to the \c Cfg overload on a view of the same graph.
  DominanceFrontiers(const CfgView &V, const DomTree &DT);

  /// The frontier of \p N, sorted ascending, without duplicates.
  const std::vector<NodeId> &frontier(NodeId N) const { return DF[N]; }

  /// Iterated dominance frontier of the node set \p Defs (sorted, deduped).
  std::vector<NodeId> iterated(const std::vector<NodeId> &Defs) const;

  /// Approximate heap footprint in bytes (for cache accounting).
  size_t bytes() const {
    size_t B = DF.capacity() * sizeof(std::vector<NodeId>);
    for (const std::vector<NodeId> &F : DF)
      B += F.capacity() * sizeof(NodeId);
    return B;
  }

private:
  template <class GraphT> void init(const GraphT &G, const DomTree &DT);

  std::vector<std::vector<NodeId>> DF;
};

} // namespace pst

#endif // PST_DOM_DOMINATORS_H
