//===- pst/cdg/ControlRegions.h - Control regions in O(E) -------*- C++ -*-===//
//
// Part of the PST library (see ControlDependence.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control regions: the partition of CFG nodes by equal control dependence
/// sets (Section 5). Three algorithms:
///
///  * \c computeControlRegionsLinear - the paper's O(E) contribution.
///    Theorem 7 reduces control-dependence equivalence to *node* cycle
///    equivalence in S = G + (end -> start); Theorem 8 reduces that to
///    *edge* cycle equivalence of the representative edges in the
///    node-expanded graph T(S) (Definition 9), solved by the Figure-4
///    algorithm.
///  * \c computeControlRegionsFOW - the FOW87-style baseline: materialize
///    each node's control dependence set and group equal sets (hashing).
///  * \c computeControlRegionsRefinement - the CFS90-style baseline: start
///    from one class and refine by the dependent set of every branch edge
///    (O(EN) worst case).
///
/// Reproduction note (an erratum in Theorem 7 as literally stated): the
/// cycle-equivalence partition is *strictly finer* than Definition-8
/// control-dependence-set equality. Counterexample: in
/// `entry -> h; h -> b; b -> h; h -> a; a -> exit` (a plain while loop),
/// the header h and its unconditional body b both have CD set
/// {h -> b}, yet the cycle entry -> h -> a -> exit -> entry (through the
/// return edge) contains h but not b, so they are not cycle equivalent.
/// Cycle equivalence is the "strong region" notion (nodes that execute the
/// same number of times in every run — h runs once more than b), which is
/// what instruction scheduling needs; CD-set equality is CFS90's "weak"
/// notion. The tests assert the refinement relationship and that the two
/// notions agree everywhere except such loop-carried pairs.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CDG_CONTROLREGIONS_H
#define PST_CDG_CONTROLREGIONS_H

#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/graph/Cfg.h"

#include <vector>

namespace pst {

/// A partition of the CFG nodes into control regions.
struct ControlRegionsResult {
  /// Class id per node; nodes with equal ids have identical control
  /// dependence sets.
  std::vector<uint32_t> NodeClass;
  uint32_t NumClasses = 0;
};

/// Definition 9: the node-expanding transformation T. Node n becomes
/// n_i (id 2n) and n_o (id 2n+1) joined by the representative edge
/// n_i -> n_o, which receives EdgeId n; every edge (u, v) of \p G becomes
/// u_o -> v_i (appended after the representative edges). Entry/exit map to
/// entry_i / exit_o.
Cfg nodeExpand(const Cfg &G);

/// The paper's linear-time algorithm (Theorems 7 + 8). O(N + E).
/// Materializes T(S) explicitly as a Cfg.
ControlRegionsResult computeControlRegionsLinear(const Cfg &G);

/// Same algorithm and result, but T(S) is never materialized: the cycle
/// equivalence solver runs directly over synthesized edge endpoints. This
/// is the paper's implementation note ("we avoid explicitly expanding
/// nodes and undirecting edges... the savings in space and time ... are
/// significant"); bench/time_control_regions compares both.
ControlRegionsResult computeControlRegionsLinearImplicit(const Cfg &G);

/// Reusable working memory for \c computeControlRegionsLinearImplicit:
/// the synthesized T(S) endpoint buffer, the Figure-4 solver scratch, and
/// the pre-densification class array. Same reuse contract as
/// \c CycleEquivScratch (unspecified contents between runs, deterministic
/// results, single-thread use).
struct ControlRegionsScratch {
  UndirectedGraphView View;
  CycleEquivScratch Solver;
  std::vector<uint32_t> Remap;
};

/// As \c computeControlRegionsLinearImplicit, with caller-owned working
/// memory; with the scratch warm only the returned partition allocates.
ControlRegionsResult computeControlRegionsLinearImplicit(
    const Cfg &G, ControlRegionsScratch &Scratch);

/// CfgView twin of the scratch-backed implicit path: T(S) endpoints are
/// synthesized arithmetically from the view and the solver's undirected
/// adjacency is written straight from the shared CSR segments (see
/// \c computeCycleEquivalenceTs) — no endpoint buffer, no counting pass.
/// Byte-identical partitions to the \c Cfg overloads on a view of the same
/// graph.
ControlRegionsResult computeControlRegionsLinearImplicit(
    const CfgView &V, ControlRegionsScratch &Scratch);

/// FOW87-style baseline: group nodes by materialized control dependence
/// sets. O(N * E) time and space in the worst case.
ControlRegionsResult computeControlRegionsFOW(const Cfg &G);

/// CFS90-style baseline: iterative partition refinement, one pass per
/// control dependence "direction". O(N * E) worst case, O(N + E) space.
ControlRegionsResult computeControlRegionsRefinement(const Cfg &G);

/// Brute-force node cycle equivalence in S = G + (end -> start), straight
/// from Definition 4 (cycles through one node avoiding the other). Used by
/// tests to validate Theorem 7 itself. O(N^2 (N + E)).
ControlRegionsResult computeNodeCycleEquivalenceBrute(const Cfg &G);

} // namespace pst

#endif // PST_CDG_CONTROLREGIONS_H
