//===- pst/cdg/ControlDependence.h - Control dependence ---------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependence (Definition 8, after Ferrante/Ottenstein/Warren).
///
/// A node n is control dependent on node c with direction l (an edge
/// c -> m) iff n postdominates every node after c on some path starting
/// with l and, when distinct, n does not postdominate c. The standard
/// postdominator characterization is: n is control dependent on edge
/// (c, m) iff n postdominates m and n does not *strictly* postdominate c.
/// We materialize, per node, its set of controlling edges by walking the
/// postdominator tree from m up to (excluding) ipostdom(c) for each edge.
///
/// This is the substrate for the two baseline control-region algorithms
/// the paper improves on (FOW87 set hashing, CFS90 partition refinement).
/// The relation itself is Theta(N*E) in the worst case, which is exactly
/// why the paper's linear algorithm avoids materializing it.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CDG_CONTROLDEPENDENCE_H
#define PST_CDG_CONTROLDEPENDENCE_H

#include "pst/dom/Dominators.h"
#include "pst/graph/Cfg.h"

#include <vector>

namespace pst {

/// The materialized control dependence relation of one CFG.
class ControlDependence {
public:
  /// Computes the full relation. O(N * E) worst case.
  explicit ControlDependence(const Cfg &G);

  /// Edges node \p N is control dependent on, sorted ascending.
  const std::vector<EdgeId> &dependences(NodeId N) const {
    return Deps[N];
  }

  /// Nodes control dependent on edge \p E, sorted ascending.
  const std::vector<NodeId> &dependents(EdgeId E) const {
    return Dependents[E];
  }

  /// Total number of (node, edge) pairs in the relation.
  uint64_t relationSize() const { return Size; }

  /// The postdominator tree the relation was derived from.
  const DomTree &postDom() const { return PDT; }

private:
  DomTree PDT;
  std::vector<std::vector<EdgeId>> Deps;
  std::vector<std::vector<NodeId>> Dependents;
  uint64_t Size = 0;
};

} // namespace pst

#endif // PST_CDG_CONTROLDEPENDENCE_H
