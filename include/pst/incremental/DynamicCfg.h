//===- pst/incremental/DynamicCfg.h - Editable CFG with a journal -*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CFG that can be edited after construction.
///
/// \c Cfg is deliberately append-only (analyses index flat side tables by
/// dense ids), so DynamicCfg wraps one and layers on top of it:
///
///  * an edit API — \c insertEdge, \c deleteEdge, \c splitBlock,
///    \c addBlock — that preserves the Definition-1 CFG invariants after
///    every applied edit (edits that would break them are rejected),
///  * tombstones: deleted edges keep their ids but are marked dead, so all
///    existing id-indexed side tables stay addressable,
///  * an edit journal that consumers (\c IncrementalPst) replay to find out
///    what changed since they last looked.
///
/// Node ids are stable forever (nodes are never removed; \c splitBlock and
/// \c addBlock only add). Edge ids are stable for live edges and never
/// reused after deletion.
///
//===----------------------------------------------------------------------===//

#ifndef PST_INCREMENTAL_DYNAMICCFG_H
#define PST_INCREMENTAL_DYNAMICCFG_H

#include "pst/graph/Cfg.h"

#include <string>
#include <vector>

namespace pst {

/// One applied edit, in application order.
struct CfgEdit {
  enum class Kind : uint8_t {
    InsertEdge, ///< Edge E = Src -> Dst was added.
    DeleteEdge, ///< Edge E (Src -> Dst) was tombstoned.
    SplitBlock, ///< Edge E was tombstoned; NewNode with NewEdges[0] =
                ///< Src -> NewNode and NewEdges[1] = NewNode -> Dst added.
    AddBlock,   ///< NewNode with NewEdges[0] = Src -> NewNode and
                ///< NewEdges[1] = NewNode -> Dst added.
  };
  Kind K;
  /// The edge the edit targets (InsertEdge: the new edge; DeleteEdge /
  /// SplitBlock: the removed edge; AddBlock: InvalidEdge).
  EdgeId E = InvalidEdge;
  /// Endpoints of E at the time of the edit (for AddBlock: the nodes the
  /// new block was wired between).
  NodeId Src = InvalidNode, Dst = InvalidNode;
  /// New node created by SplitBlock / AddBlock.
  NodeId NewNode = InvalidNode;
  /// New edges created by SplitBlock / AddBlock.
  EdgeId NewEdges[2] = {InvalidEdge, InvalidEdge};
};

/// An editable CFG. See the file comment for the contract.
class DynamicCfg {
public:
  /// Takes over \p Initial, which must satisfy \c validateCfg.
  explicit DynamicCfg(Cfg Initial);

  /// The underlying graph. Contains tombstoned edges: consumers traversing
  /// adjacency lists must skip edges for which \c edgeDead holds.
  const Cfg &graph() const { return G; }

  bool edgeDead(EdgeId E) const { return Dead[E]; }
  bool edgeLive(EdgeId E) const { return !Dead[E]; }
  /// Dead flags indexed by EdgeId (the form \c extractRegionSubCfg takes).
  const std::vector<bool> &deadEdges() const { return Dead; }

  uint32_t numNodes() const { return G.numNodes(); }
  uint32_t numLiveEdges() const { return LiveEdges; }

  NodeId entry() const { return G.entry(); }
  NodeId exit() const { return G.exit(); }

  // -- Edit API ------------------------------------------------------------

  /// Adds an edge Src -> Dst. Rejected (returns InvalidEdge) when it would
  /// give the entry node a predecessor or the exit node a successor; any
  /// other insertion keeps the CFG valid.
  EdgeId insertEdge(NodeId Src, NodeId Dst);

  /// Tombstones edge \p E if every node remains reachable from entry and
  /// co-reachable from exit without it; returns false (and applies nothing)
  /// otherwise. The check costs one forward and one backward sweep —
  /// \c IncrementalPst::deleteEdge performs the same check restricted to
  /// the smallest enclosing SESE region instead.
  bool deleteEdge(EdgeId E);

  /// Tombstones edge \p E without the validity check. The caller asserts
  /// the CFG stays valid (IncrementalPst does, having run the check locally
  /// on the dirty region).
  void deleteEdgeUnchecked(EdgeId E);

  /// Splits edge \p E: tombstones it and routes Src -> M -> Dst through a
  /// new block M. Always keeps the CFG valid. Returns M.
  NodeId splitBlock(EdgeId E, std::string Label = "");

  /// Adds a new block M wired Src -> M -> Dst (both edges new; E stays
  /// untouched if one already runs Src -> Dst). Rejected (returns
  /// InvalidNode) under the same entry/exit constraints as \c insertEdge.
  NodeId addBlock(NodeId Src, NodeId Dst, std::string Label = "");

  // -- Journal -------------------------------------------------------------

  /// Every applied edit since construction, in order. Rejected edits are
  /// not journaled.
  const std::vector<CfgEdit> &journal() const { return Journal; }

  // -- Queries -------------------------------------------------------------

  /// True if the graph would still satisfy Definition 1 with \p Skip
  /// removed (pass InvalidEdge to check the current graph).
  bool validWithoutEdge(EdgeId Skip) const;

  /// Builds a compact \c Cfg with tombstones dropped. Node ids carry over
  /// unchanged; live edges are renumbered densely in id order. If non-null,
  /// \p GlobalOfCompact receives the compact-to-DynamicCfg edge id map and
  /// \p CompactOfGlobal the reverse map (InvalidEdge for dead edges).
  Cfg materialize(std::vector<EdgeId> *GlobalOfCompact = nullptr,
                  std::vector<EdgeId> *CompactOfGlobal = nullptr) const;

private:
  EdgeId addEdgeRaw(NodeId Src, NodeId Dst);

  Cfg G;
  std::vector<bool> Dead;
  uint32_t LiveEdges = 0;
  std::vector<CfgEdit> Journal;
};

} // namespace pst

#endif // PST_INCREMENTAL_DYNAMICCFG_H
