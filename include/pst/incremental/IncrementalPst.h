//===- pst/incremental/IncrementalPst.h - PST over CFG edits ----*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A program structure tree maintained across a stream of CFG edits.
///
/// Theorem 1 (canonical SESE regions nest and never partially overlap) is a
/// locality guarantee: the smallest canonical region D whose body contains
/// both endpoints of an edit is a boundary the edit cannot see across. The
/// exterior observes D only through its entry and exit edges, neither of
/// which the edit touches, so cycle equivalence — and hence the PST —
/// outside D's subtree is unchanged. IncrementalPst exploits this by
///
///  1. locating D as the PST least common ancestor of the innermost regions
///     of the edit's endpoints,
///  2. marking D's subtree dirty (a \c commit coalesces the dirty regions
///     of a whole batch into the maximal antichain under containment),
///  3. per dirty region, extracting the body sub-CFG (the region's entry
///     and exit edges become the sub-problem's start and end), rebuilding
///     its PST from scratch, and splicing the rebuilt subtree in place.
///
/// Splicing must handle the region itself dissolving: an edit inside D can
/// make interior edges cycle equivalent to D's boundary (delete one arm of
/// a diamond and the remaining chain joins the boundary class), in which
/// case D is replaced in its parent by the chain of regions the sub-build
/// found at top level. When an edit's endpoints only share the root region,
/// there is no confining boundary and the maintainer falls back to one full
/// rebuild. \c stats() reports nodes actually reprocessed next to what
/// from-scratch rebuilds would have cost, so the savings are observable.
///
//===----------------------------------------------------------------------===//

#ifndef PST_INCREMENTAL_INCREMENTALPST_H
#define PST_INCREMENTAL_INCREMENTALPST_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/incremental/DynamicCfg.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace pst {

/// Observable cost counters. All counts start at attach time (the initial
/// full build is not included).
struct IncrementalPstStats {
  uint64_t EditsApplied = 0;
  uint64_t EditsRejected = 0; ///< Edits refused to keep the CFG valid.
  uint64_t Commits = 0;
  uint64_t SubtreesRebuilt = 0; ///< Dirty-region rebuilds (excludes full).
  uint64_t FullRebuilds = 0;    ///< Root-dirty fallbacks.
  /// CFG nodes fed to rebuilds (sub-CFG bodies, plus whole graphs for full
  /// rebuilds).
  uint64_t NodesReprocessed = 0;
  uint64_t EdgesReprocessed = 0;
  /// What from-scratch recomputation would have processed: the full node
  /// count, accumulated once per commit.
  uint64_t FullRecomputeNodes = 0;

  /// NodesReprocessed / FullRecomputeNodes (1.0 when nothing committed).
  double reprocessRatio() const {
    return FullRecomputeNodes
               ? static_cast<double>(NodesReprocessed) / FullRecomputeNodes
               : 1.0;
  }
};

/// A PST kept valid across edits on a \c DynamicCfg.
///
/// Region ids are stable while a region survives commits, but — unlike
/// \c ProgramStructureTree — they are not dense or ordered: slots of
/// dissolved regions are recycled. Use \c liveRegions to enumerate.
///
/// Edits may be applied through this class (preferred: \c deleteEdge then
/// checks validity locally on the dirty region instead of sweeping the
/// whole graph) or directly on the DynamicCfg; either way \c commit folds
/// everything journaled since the last commit into the tree. Queries
/// reflect the tree as of the last commit.
class IncrementalPst {
public:
  /// Attaches to \p DG (which must outlive this object) and runs the
  /// initial full build.
  explicit IncrementalPst(DynamicCfg &DG);

  // -- Edits (forwarded to the DynamicCfg + eager dirty marking) -----------

  /// \c DynamicCfg::insertEdge + dirty marking.
  EdgeId insertEdge(NodeId Src, NodeId Dst);
  /// Deletes \p E if validity is preserved, checking reachability only
  /// inside the dirty region's body. Returns false if rejected.
  bool deleteEdge(EdgeId E);
  /// \c DynamicCfg::splitBlock + dirty marking.
  NodeId splitBlock(EdgeId E, std::string Label = "");
  /// \c DynamicCfg::addBlock + dirty marking (InvalidNode if rejected).
  NodeId addBlock(NodeId Src, NodeId Dst, std::string Label = "");

  /// Folds all journaled edits since the last commit into the tree:
  /// coalesces dirty regions to the maximal antichain, rebuilds each dirty
  /// subtree from its extracted sub-CFG, and splices the results in place.
  /// Returns the number of subtree rebuilds (0 also when a full-rebuild
  /// fallback ran; check \c stats().FullRebuilds).
  uint32_t commit();

  /// Edits journaled but not yet committed.
  uint32_t pendingEdits() const;

  // -- Tree queries (valid as of the last commit) --------------------------

  RegionId root() const { return 0; }
  /// Live region slots, root first. O(#slots).
  std::vector<RegionId> liveRegions() const;
  uint32_t numCanonicalRegions() const { return NumLive - 1; }

  EdgeId entryEdge(RegionId R) const { return Regions[R].EntryEdge; }
  EdgeId exitEdge(RegionId R) const { return Regions[R].ExitEdge; }
  RegionId parent(RegionId R) const { return Regions[R].Parent; }
  uint32_t depth(RegionId R) const { return Regions[R].Depth; }
  const std::vector<RegionId> &children(RegionId R) const {
    return Regions[R].Children;
  }
  /// Nodes whose innermost region is \p R.
  const std::vector<NodeId> &immediateNodes(RegionId R) const {
    return Regions[R].Nodes;
  }

  RegionId regionOfNode(NodeId N) const { return NodeRegion[N]; }
  RegionId regionOfEdge(EdgeId E) const { return EdgeRegion[E]; }
  RegionId regionEnteredBy(EdgeId E) const { return EntryOf[E]; }
  RegionId regionExitedBy(EdgeId E) const { return ExitOf[E]; }

  const IncrementalPstStats &stats() const { return Stats; }

  /// Indented outline of the tree (regions with boundary edges and
  /// immediate nodes), for demos and debugging.
  std::string format() const;

  /// Debug: full structural comparison against a from-scratch build on the
  /// materialized graph. Returns true on match; on mismatch returns false
  /// and, if \p Why is non-null, a description of the first difference.
  /// O(full rebuild) — test/diagnostic use only.
  bool equalsFromScratch(std::string *Why = nullptr) const;

private:
  struct Slot {
    EdgeId EntryEdge = InvalidEdge;
    EdgeId ExitEdge = InvalidEdge;
    RegionId Parent = InvalidRegion;
    std::vector<RegionId> Children;
    uint32_t Depth = 0;
    std::vector<NodeId> Nodes; ///< Immediate nodes.
    bool Live = false;
  };

  RegionId allocSlot();
  void freeSubtreeSlots(RegionId R);
  RegionId lca(RegionId A, RegionId B) const;
  bool liveContains(RegionId Outer, RegionId Inner) const;
  RegionId currentRegionOfNode(NodeId N) const;

  /// Processes journal entries [JournalPos, end): computes each edit's
  /// dirty region against the pre-batch tree and folds it into DirtySet.
  void absorbJournal();
  void markDirty(RegionId D);
  /// The topmost already-dirty ancestor of \p D (or D itself): the sound
  /// scope for local validity checks mid-batch.
  RegionId dirtyScope(RegionId D) const;

  /// Body nodes of \p D's subtree in the *current* graph: committed
  /// immediate nodes of the subtree plus batch-created nodes provisionally
  /// inside it.
  std::vector<NodeId> collectBodyNodes(RegionId D) const;

  /// Local reachability check: with \p Skip removed, every body node of
  /// scope \p S stays reachable from S's entry and co-reachable from S's
  /// exit. Falls back to the whole-graph check when S is the root.
  bool deletePreservesValidity(RegionId S, EdgeId Skip) const;

  /// Extracts \p Body as a sub-CFG, rebuilds its PST, and splices the
  /// result in at \p D (replacing D itself when it dissolved). Returns
  /// false on a boundary violation, in which case the caller must fall
  /// back to \c fullRebuild.
  bool rebuildSubtree(RegionId D, const std::vector<NodeId> &Body);
  void fullRebuild();
  void ensureTablesSized();

  DynamicCfg &DG;
  CycleEquivEngine CeEngine;

  std::vector<Slot> Regions;
  std::vector<RegionId> FreeSlots;
  uint32_t NumLive = 0;
  std::vector<RegionId> NodeRegion;
  std::vector<RegionId> EdgeRegion;
  std::vector<RegionId> EntryOf, ExitOf;

  // Batch state (valid between commits).
  size_t JournalPos = 0;
  std::vector<RegionId> DirtySet; ///< Maximal antichain, pre-batch ids.
  bool RootDirty = false;
  /// Provisional innermost region of nodes created this batch.
  std::unordered_map<NodeId, RegionId> PendingNodeRegion;

  IncrementalPstStats Stats;
};

} // namespace pst

#endif // PST_INCREMENTAL_INCREMENTALPST_H
