//===- pst/graph/CfgView.h - Frozen CSR adjacency snapshot ------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An immutable compressed-sparse-row snapshot of a \c Cfg, built once per
/// function and shared by every stage of the analysis pipeline.
///
/// \c Cfg stores adjacency as per-node \c std::vector succ/pred lists: good
/// for construction, bad for the traversal-heavy analyses, which each ended
/// up either rebuilding a private CSR (cycle equivalence) or pointer-chasing
/// through node objects (dominators, dataflow). \c CfgView freezes the graph
/// into six flat arrays:
///
///   SuccOff[N+1] / SuccEdge[E] / SuccTo[E]    outgoing CSR
///   PredOff[N+1] / PredEdge[E] / PredFrom[E]  incoming CSR
///   EdgeSrc[E]   / EdgeDst[E]                 edge endpoints (SoA)
///
/// Segment [SuccOff[V], SuccOff[V+1]) of SuccEdge holds V's outgoing edge
/// ids *in increasing id order* — identical to \c Cfg::succEdges order,
/// because \c Cfg only ever appends edges — and SuccTo holds the matching
/// targets so traversals touch one cache line stream instead of hopping
/// through the central edge table. Same for the incoming side. Analyses that
/// iterate a reversed graph read the Pred arrays directly instead of
/// materializing a reversed \c Cfg.
///
/// The view is non-owning: all storage lives in a caller-provided
/// \c CfgViewScratch, so a worker thread reuses one warm scratch across a
/// whole corpus and steady-state view construction performs no heap
/// allocations. The view is invalidated by touching the scratch or the
/// source graph.
///
/// \c CfgView deliberately mirrors the read API of \c Cfg (numNodes,
/// entry, source, succEdges, ...) so analysis implementations can be written
/// once as templates over the graph type.
///
//===----------------------------------------------------------------------===//

#ifndef PST_GRAPH_CFGVIEW_H
#define PST_GRAPH_CFGVIEW_H

#include "pst/graph/Cfg.h"

#include <span>
#include <vector>

namespace pst {

/// Caller-owned backing storage for a \c CfgView. Reusable: buffers grow to
/// the largest graph seen and stay warm. Holds no pointers into any graph.
struct CfgViewScratch {
  /// CSR offsets, sized numNodes+2: one leading slot is used as a scatter
  /// cursor during construction so no separate cursor array is needed. The
  /// view exposes the first numNodes+1 entries.
  std::vector<uint32_t> SuccOff;
  std::vector<uint32_t> PredOff;
  std::vector<EdgeId> SuccEdge; ///< Outgoing edge ids, per-node ascending.
  std::vector<NodeId> SuccTo;   ///< Target of SuccEdge[i].
  std::vector<EdgeId> PredEdge; ///< Incoming edge ids, per-node ascending.
  std::vector<NodeId> PredFrom; ///< Source of PredEdge[i].
  std::vector<NodeId> EdgeSrc;  ///< Edge id -> source node.
  std::vector<NodeId> EdgeDst;  ///< Edge id -> target node.
};

/// A frozen, non-owning CSR adjacency snapshot of one \c Cfg.
///
/// Cheap to copy (a handful of pointers). Valid only while the scratch it
/// was built into (and the entry/exit ids of the source graph) stay
/// untouched.
class CfgView {
public:
  CfgView() = default;

  /// Snapshots \p G into \p S and returns the view. Two passes over the
  /// edge table: a counting pass (degrees + prefix sums) and a scatter
  /// pass. Per-node edge order matches \c Cfg::succEdges/predEdges exactly.
  /// O(N + E); allocation-free once \p S is warm.
  static CfgView build(const Cfg &G, CfgViewScratch &S);

  /// Wraps eight externally-owned CSR arrays (e.g. slices of a mapped
  /// corpus image, see pst/image) as a view, with no copy or validation.
  /// The arrays must have exactly the layout \c build produces: offsets
  /// sized \p N + 1, edge arrays sized \p E, per-node segments in
  /// ascending edge-id order. Valid only while the backing storage lives.
  static CfgView adopt(uint32_t N, uint32_t E, NodeId Entry, NodeId Exit,
                       const uint32_t *SuccOff, const uint32_t *PredOff,
                       const EdgeId *SuccEdge, const NodeId *SuccTo,
                       const EdgeId *PredEdge, const NodeId *PredFrom,
                       const NodeId *EdgeSrc, const NodeId *EdgeDst);

  uint32_t numNodes() const { return N; }
  uint32_t numEdges() const { return E; }
  NodeId entry() const { return EntryNode; }
  NodeId exit() const { return ExitNode; }

  NodeId source(EdgeId Id) const { return EdgeSrcP[Id]; }
  NodeId target(EdgeId Id) const { return EdgeDstP[Id]; }

  uint32_t outDegree(NodeId V) const { return SuccOffP[V + 1] - SuccOffP[V]; }
  uint32_t inDegree(NodeId V) const { return PredOffP[V + 1] - PredOffP[V]; }

  /// Outgoing edge ids of \p V in insertion (ascending id) order.
  std::span<const EdgeId> succEdges(NodeId V) const {
    return {SuccEdgeP + SuccOffP[V], SuccEdgeP + SuccOffP[V + 1]};
  }
  /// Incoming edge ids of \p V in insertion (ascending id) order.
  std::span<const EdgeId> predEdges(NodeId V) const {
    return {PredEdgeP + PredOffP[V], PredEdgeP + PredOffP[V + 1]};
  }
  /// Successor nodes of \p V, parallel to \c succEdges.
  std::span<const NodeId> succNodes(NodeId V) const {
    return {SuccToP + SuccOffP[V], SuccToP + SuccOffP[V + 1]};
  }
  /// Predecessor nodes of \p V, parallel to \c predEdges.
  std::span<const NodeId> predNodes(NodeId V) const {
    return {PredFromP + PredOffP[V], PredFromP + PredOffP[V + 1]};
  }

  /// Raw arrays, for stages that want to index directly.
  const uint32_t *succOff() const { return SuccOffP; }
  const uint32_t *predOff() const { return PredOffP; }
  const EdgeId *succEdge() const { return SuccEdgeP; }
  const NodeId *succTo() const { return SuccToP; }
  const EdgeId *predEdge() const { return PredEdgeP; }
  const NodeId *predFrom() const { return PredFromP; }
  const NodeId *edgeSrc() const { return EdgeSrcP; }
  const NodeId *edgeDst() const { return EdgeDstP; }

private:
  uint32_t N = 0;
  uint32_t E = 0;
  NodeId EntryNode = InvalidNode;
  NodeId ExitNode = InvalidNode;
  const uint32_t *SuccOffP = nullptr;
  const uint32_t *PredOffP = nullptr;
  const EdgeId *SuccEdgeP = nullptr;
  const NodeId *SuccToP = nullptr;
  const EdgeId *PredEdgeP = nullptr;
  const NodeId *PredFromP = nullptr;
  const NodeId *EdgeSrcP = nullptr;
  const NodeId *EdgeDstP = nullptr;
};

/// \c CfgView with every edge reversed, entry/exit swapped — the flat-array
/// replacement for materializing \c reverseCfg(G). Edge ids are preserved.
/// Because both CSR sides keep per-node lists in ascending edge-id order,
/// iterating this adapter's succEdges visits exactly the edges (and order)
/// that \c reverseCfg's succ lists would hold, so DFS-derived structures
/// (postdominators in particular) are bit-identical to the legacy path.
class ReversedCfgView {
public:
  explicit ReversedCfgView(const CfgView &View) : V(View) {}

  uint32_t numNodes() const { return V.numNodes(); }
  uint32_t numEdges() const { return V.numEdges(); }
  NodeId entry() const { return V.exit(); }
  NodeId exit() const { return V.entry(); }
  NodeId source(EdgeId Id) const { return V.target(Id); }
  NodeId target(EdgeId Id) const { return V.source(Id); }
  std::span<const EdgeId> succEdges(NodeId N) const { return V.predEdges(N); }
  std::span<const EdgeId> predEdges(NodeId N) const { return V.succEdges(N); }
  std::span<const NodeId> succNodes(NodeId N) const { return V.predNodes(N); }
  std::span<const NodeId> predNodes(NodeId N) const { return V.succNodes(N); }

private:
  CfgView V; // By value: a view is a handful of pointers.
};

} // namespace pst

#endif // PST_GRAPH_CFGVIEW_H
