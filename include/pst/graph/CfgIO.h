//===- pst/graph/CfgIO.h - CFG (de)serialization ----------------*- C++ -*-===//
//
// Part of the PST library (see Cfg.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz dumping and a line-oriented textual format for CFGs.
///
/// The textual format:
/// \code
///   cfg <name>
///   node <label> [entry|exit]
///   ...
///   edge <srcLabel> <dstLabel>
///   ...
///   end
/// \endcode
/// Labels must be unique, whitespace-free and declared before use.
///
//===----------------------------------------------------------------------===//

#ifndef PST_GRAPH_CFGIO_H
#define PST_GRAPH_CFGIO_H

#include "pst/graph/Cfg.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace pst {

/// Writes \p G as a Graphviz digraph to \p OS. Entry is drawn as a house,
/// exit as an inverted house.
void printDot(const Cfg &G, std::ostream &OS, const std::string &Name = "cfg");

/// Writes \p G in the textual format to \p OS.
void printCfgText(const Cfg &G, std::ostream &OS,
                  const std::string &Name = "cfg");

/// Parses one CFG from \p IS.
/// \returns the graph, or std::nullopt on malformed input (with a
/// diagnostic in \p *Error if non-null).
std::optional<Cfg> parseCfgText(std::istream &IS,
                                std::string *Error = nullptr);

/// Parses one CFG from a string (convenience overload for tests).
std::optional<Cfg> parseCfgText(const std::string &Text,
                                std::string *Error = nullptr);

} // namespace pst

#endif // PST_GRAPH_CFGIO_H
