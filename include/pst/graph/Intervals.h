//===- pst/graph/Intervals.h - Allen-Cocke intervals ------------*- C++ -*-===//
//
// Part of the PST library (see Cfg.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allen-Cocke interval analysis [AC76] — the classic hierarchical
/// decomposition the paper's Section 6.2 positions the PST against ("The
/// classic approach to elimination algorithms uses an interval
/// decomposition"), and the tool Theorem 10 makes relevant: every SESE
/// region of a reducible graph is reducible, so regions that are not
/// simple constructs can still be solved with interval methods.
///
/// An interval I(h) is the maximal single-entry subgraph with header h:
/// grow by adding nodes all of whose predecessors are already inside.
/// Collapsing each interval yields the derived graph; iterating the
/// derivation reaches a single node exactly for reducible graphs.
///
//===----------------------------------------------------------------------===//

#ifndef PST_GRAPH_INTERVALS_H
#define PST_GRAPH_INTERVALS_H

#include "pst/graph/Cfg.h"
#include "pst/graph/CfgView.h"

#include <vector>

namespace pst {

/// One interval partition of a CFG.
struct IntervalPartition {
  struct Interval {
    NodeId Header = InvalidNode;
    /// Member nodes in the order the construction added them (header
    /// first) — also a valid processing order for interval-based solvers.
    std::vector<NodeId> Nodes;
  };
  std::vector<Interval> Intervals;
  /// Node -> index into Intervals.
  std::vector<uint32_t> IntervalOf;
};

/// Computes the interval partition with headers discovered from the entry.
IntervalPartition computeIntervals(const Cfg &G);

/// CfgView twin: grows intervals off the shared flat succ/pred segments.
/// Identical partition (same interval order and member order) to the \c Cfg
/// overload on a view of the same graph.
IntervalPartition computeIntervals(const CfgView &V);

/// Collapses each interval to one node (parallel edges deduplicated).
/// Entry/exit map to their intervals.
Cfg derivedGraph(const Cfg &G, const IntervalPartition &P);

/// Iterates derivation to the limit graph. Returns the number of
/// derivation steps taken in \p *Steps if non-null.
Cfg limitGraph(const Cfg &G, uint32_t *Steps = nullptr);

/// Reducibility via interval analysis: the limit graph has one node.
/// Agrees with the T1/T2 test \c isReducible (tested).
bool isReducibleByIntervals(const Cfg &G);

} // namespace pst

#endif // PST_GRAPH_INTERVALS_H
