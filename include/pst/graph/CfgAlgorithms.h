//===- pst/graph/CfgAlgorithms.h - CFG traversals & checks ------*- C++ -*-===//
//
// Part of the PST library (see Cfg.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph utilities shared by the analyses: DFS orders, reachability,
/// validation (Definition 1), reversal, straight-line simplification, and a
/// T1/T2 reducibility test (used to validate Theorem 10).
///
//===----------------------------------------------------------------------===//

#ifndef PST_GRAPH_CFGALGORITHMS_H
#define PST_GRAPH_CFGALGORITHMS_H

#include "pst/graph/Cfg.h"
#include "pst/graph/CfgView.h"

#include <string>
#include <vector>

namespace pst {

/// Result of a forward depth-first search from the entry node.
struct DfsResult {
  /// Nodes in preorder (discovery order). Unreached nodes are absent.
  std::vector<NodeId> Preorder;
  /// Nodes in postorder (finish order). Unreached nodes are absent.
  std::vector<NodeId> Postorder;
  /// Preorder number per node; UINT32_MAX for unreached nodes.
  std::vector<uint32_t> PreNum;
  /// For each reached non-root node, the tree edge that discovered it;
  /// InvalidEdge for the root and unreached nodes.
  std::vector<EdgeId> ParentEdge;
};

/// Runs an iterative DFS over the directed graph from \p Root, following
/// successor edges in order. Deterministic given the graph.
DfsResult depthFirstSearch(const Cfg &G, NodeId Root);
/// Same traversal over a frozen CSR view; identical output for a view of
/// the same graph.
DfsResult depthFirstSearch(const CfgView &G, NodeId Root);
/// Same traversal over a reversed view (follows pred CSR segments).
DfsResult depthFirstSearch(const ReversedCfgView &G, NodeId Root);

/// Returns the nodes reachable from \p Root following successor edges.
std::vector<bool> reachableFrom(const Cfg &G, NodeId Root);

/// Returns the nodes that reach \p Target following predecessor edges.
std::vector<bool> reachesTo(const Cfg &G, NodeId Target);

/// True if a (possibly empty) path leads from \p From to \p To.
bool existsPathBetween(const Cfg &G, NodeId From, NodeId To);

/// Nodes in reverse postorder of a forward DFS from entry (the canonical
/// iteration order for forward dataflow and dominators). Unreached nodes are
/// absent.
std::vector<NodeId> reversePostOrder(const Cfg &G);
/// CSR-view variants (identical orders for views of the same graph).
std::vector<NodeId> reversePostOrder(const CfgView &G);
std::vector<NodeId> reversePostOrder(const ReversedCfgView &G);

/// Checks the Definition-1 invariants:
///  * entry and exit are set and distinct,
///  * entry has no predecessors, exit has no successors,
///  * every node is reachable from entry and reaches exit.
/// Returns true if valid; otherwise false and (if \p Why is non-null) a
/// diagnostic in \p *Why, styled like a tool error ("node 7 unreachable...").
bool validateCfg(const Cfg &G, std::string *Why = nullptr);

/// Returns a graph with every edge reversed; entry/exit swapped.
/// Edge ids are preserved (edge E in the result is edge E reversed).
Cfg reverseCfg(const Cfg &G);

/// Merges straight-line chains: a node with a unique successor whose unique
/// predecessor it is gets fused with it (labels joined with '+'), producing
/// the block-level CFG the paper assumes ("straightline code sequences have
/// been coalesced into basic blocks"). Entry and exit survive as their own
/// blocks. Self loops and parallel edges are preserved.
Cfg simplifyCfg(const Cfg &G);

/// Tests reducibility via iterated T1 (self-loop removal) / T2 (merge a node
/// with a unique predecessor) transformations. A flow graph is reducible iff
/// these reduce it to a single node.
bool isReducible(const Cfg &G);
/// Same test over a frozen CSR view (identical verdict for a view of the
/// same graph; pinned over the full paper corpus in CfgViewTest).
bool isReducible(const CfgView &G);

/// A sub-CFG cut out around a SESE region boundary.
///
/// The extracted graph contains the region's body nodes plus two synthetic
/// nodes: \c Start (feeding the target of the region's entry edge) and
/// \c End (fed by the source of the exit edge). The synthetic boundary
/// edges stand in for the real entry/exit edges, so \c GlobalEdge maps them
/// back to those edge ids. The result is itself a valid CFG, which is what
/// lets \c ProgramStructureTree::build run on it unchanged.
struct SubCfg {
  Cfg Graph;
  /// Synthetic entry/exit node (== Graph.entry() / Graph.exit()).
  NodeId Start = InvalidNode, End = InvalidNode;
  /// Local node id -> id in the enclosing graph; InvalidNode for Start/End.
  std::vector<NodeId> GlobalNode;
  /// Local edge id -> id in the enclosing graph. The synthetic boundary
  /// edges map to the region's entry/exit edge ids.
  std::vector<EdgeId> GlobalEdge;
  /// Local ids of the synthetic boundary edges.
  EdgeId LocalEntryEdge = InvalidEdge, LocalExitEdge = InvalidEdge;
  /// Set when an edge other than EntryE/ExitE crossed the node-set
  /// boundary: the node set was not a SESE body. Callers should treat the
  /// extraction as failed (the incremental PST falls back to a full
  /// rebuild).
  bool BoundaryViolation = false;
};

/// Extracts the sub-CFG induced by \p BodyNodes with boundary edges
/// \p EntryE (whose target is in the body) and \p ExitE (whose source is in
/// the body). Edges for which \p EdgeDead reports true are skipped, which
/// lets tombstoning wrappers (DynamicCfg) reuse the extraction. Successor
/// order of body nodes is preserved, so DFS-derived structures on the
/// sub-CFG agree with the enclosing graph. O(body size).
SubCfg extractRegionSubCfg(const Cfg &G, const std::vector<NodeId> &BodyNodes,
                           EdgeId EntryE, EdgeId ExitE,
                           const std::vector<bool> *EdgeDead = nullptr);

} // namespace pst

#endif // PST_GRAPH_CFGALGORITHMS_H
