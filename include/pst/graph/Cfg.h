//===- pst/graph/Cfg.h - Block-level control flow graph ---------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control flow graph every analysis in this library consumes.
///
/// Following Definition 1 of the paper, a CFG has distinguished \c entry
/// ("start") and \c exit ("end") nodes such that every node occurs on some
/// path from start to end; start has no predecessors and end has no
/// successors. The graph is a *multigraph*: parallel edges and self loops
/// are allowed (both arise naturally from lowering, e.g. `if (c) ;` produces
/// parallel edges and a one-block loop produces a self loop), and the cycle
/// equivalence machinery is defined on edges, so edge identity matters.
///
//===----------------------------------------------------------------------===//

#ifndef PST_GRAPH_CFG_H
#define PST_GRAPH_CFG_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace pst {

/// Dense index of a CFG node.
using NodeId = uint32_t;
/// Dense index of a CFG edge.
using EdgeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId InvalidNode = ~NodeId(0);
/// Sentinel for "no edge".
inline constexpr EdgeId InvalidEdge = ~EdgeId(0);

/// A block-level control flow multigraph.
///
/// Nodes and edges are referred to by dense ids so analyses can use flat
/// arrays as side tables. Nodes are never removed; edges are never removed.
/// (Passes that shrink graphs, like \c simplifyCfg, build a new graph.)
class Cfg {
public:
  /// Per-node payload.
  struct Node {
    /// Optional human-readable label (used by dot dumps and the textual
    /// serialization; empty labels print as "n<id>").
    std::string Label;
    /// Outgoing edge ids, in insertion order.
    std::vector<EdgeId> Succs;
    /// Incoming edge ids, in insertion order.
    std::vector<EdgeId> Preds;
  };

  /// Per-edge payload.
  struct Edge {
    NodeId Src = InvalidNode;
    NodeId Dst = InvalidNode;
  };

  Cfg() = default;

  /// Pre-sizes the node table for \p N nodes. Purely an allocation hint
  /// (builders that know or can estimate their final size avoid the
  /// doubling-growth churn); never shrinks.
  void reserveNodes(size_t N) { Nodes.reserve(N); }

  /// Pre-sizes the edge table for \p N edges. Note the per-node Succs and
  /// Preds lists are not affected; only the central edge array is.
  void reserveEdges(size_t N) { Edges.reserve(N); }

  /// Adds a node and returns its id. The first two nodes added are, by
  /// convention, not special; call \c setEntry / \c setExit explicitly.
  NodeId addNode(std::string Label = "") {
    Nodes.push_back(Node{std::move(Label), {}, {}});
    return static_cast<NodeId>(Nodes.size() - 1);
  }

  /// Adds a directed edge Src -> Dst and returns its id.
  EdgeId addEdge(NodeId Src, NodeId Dst) {
    assert(Src < Nodes.size() && Dst < Nodes.size() && "node out of range");
    EdgeId Id = static_cast<EdgeId>(Edges.size());
    Edges.push_back(Edge{Src, Dst});
    Nodes[Src].Succs.push_back(Id);
    Nodes[Dst].Preds.push_back(Id);
    return Id;
  }

  void setEntry(NodeId N) {
    assert(N < Nodes.size() && "node out of range");
    EntryNode = N;
  }
  void setExit(NodeId N) {
    assert(N < Nodes.size() && "node out of range");
    ExitNode = N;
  }

  NodeId entry() const { return EntryNode; }
  NodeId exit() const { return ExitNode; }

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  uint32_t numEdges() const { return static_cast<uint32_t>(Edges.size()); }

  const Node &node(NodeId N) const {
    assert(N < Nodes.size() && "node out of range");
    return Nodes[N];
  }
  const Edge &edge(EdgeId E) const {
    assert(E < Edges.size() && "edge out of range");
    return Edges[E];
  }

  NodeId source(EdgeId E) const { return edge(E).Src; }
  NodeId target(EdgeId E) const { return edge(E).Dst; }

  /// Succ/pred edge id ranges for range-for.
  const std::vector<EdgeId> &succEdges(NodeId N) const {
    return node(N).Succs;
  }
  const std::vector<EdgeId> &predEdges(NodeId N) const {
    return node(N).Preds;
  }

  /// Returns successor node ids (materialized; convenience for callers that
  /// don't care about edge identity).
  std::vector<NodeId> successors(NodeId N) const {
    std::vector<NodeId> Out;
    Out.reserve(node(N).Succs.size());
    for (EdgeId E : node(N).Succs)
      Out.push_back(target(E));
    return Out;
  }

  /// Returns predecessor node ids (materialized).
  std::vector<NodeId> predecessors(NodeId N) const {
    std::vector<NodeId> Out;
    Out.reserve(node(N).Preds.size());
    for (EdgeId E : node(N).Preds)
      Out.push_back(source(E));
    return Out;
  }

  /// Human-readable name of node \p N ("n<id>" when the label is empty).
  std::string nodeName(NodeId N) const {
    const std::string &L = node(N).Label;
    return L.empty() ? "n" + std::to_string(N) : L;
  }

  void setNodeLabel(NodeId N, std::string Label) {
    assert(N < Nodes.size() && "node out of range");
    Nodes[N].Label = std::move(Label);
  }

private:
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
  NodeId EntryNode = InvalidNode;
  NodeId ExitNode = InvalidNode;
};

} // namespace pst

#endif // PST_GRAPH_CFG_H
