//===- pst/serve/Snapshot.h - Frozen per-function snapshots -----*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The immutable unit the serving layer publishes: one function's CFG and
/// PST frozen at a commit point.
///
/// A FunctionSnapshot *is* a single-function corpus image — `freeze` runs
/// the committed graph through `buildCorpusImage` and adopts the result
/// (`CfgView::adopt` / `ProgramStructureTree::adoptExternal`) exactly the
/// way `CorpusImage::map` does for on-disk images. That buys the serving
/// layer the byte-identity invariant for free: the image format is byte-
/// deterministic for a given CFG, so "this published snapshot equals a
/// from-scratch rebuild of the shard's current graph" is a memcmp of
/// image bytes (checked by \c snapshotMatchesFromScratch, and enforced by
/// the serve tests and `time_serve`'s exit-1 gate), not a structural walk
/// that could miss a field. It also means snapshots are self-contained —
/// dropping one epoch's overlay frees everything that epoch pinned, with
/// no aliasing into writer state.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SERVE_SNAPSHOT_H
#define PST_SERVE_SNAPSHOT_H

#include "pst/image/CorpusImage.h"
#include "pst/serve/DerivedCache.h"

#include <memory>

namespace pst {
namespace serve {

/// One function frozen at a commit point. Immutable after construction;
/// shared by every epoch overlay that includes it.
class FunctionSnapshot {
public:
  /// Freezes \p G (which must satisfy \c validateCfg) under \p Name.
  /// Builds the single-function image, so this is a full from-scratch
  /// analysis of \p G — the serving layer calls it once per dirtied
  /// function per commit, not per query.
  static std::shared_ptr<const FunctionSnapshot> freeze(const Cfg &G,
                                                        std::string_view Name);

  /// The frozen CSR adjacency, adopted from the image bytes.
  const CfgView &cfg() const { return View; }
  /// The frozen PST, adopted from the image bytes.
  const ProgramStructureTree &pst() const { return Tree; }
  std::string_view name() const { return Img.functionName(0); }
  /// The underlying single-function image bytes (the byte-identity
  /// currency; see the file comment).
  std::span<const uint8_t> imageBytes() const { return Img.rawBytes(); }

  /// This snapshot's derived-analysis slot (DerivedCache.h). Riding on
  /// the snapshot ties the bundle's lifetime to the epoch lifecycle: a
  /// refreeze at commit publishes a *new* snapshot with an empty slot,
  /// and the stale bundle dies when the EpochTable reclaims this one at
  /// quiescence. The slot's own synchronization makes this const-safe
  /// (the snapshot's frozen bytes stay immutable).
  DerivedSlot &derivedSlot() const { return Derived; }

  FunctionSnapshot(const FunctionSnapshot &) = delete;
  FunctionSnapshot &operator=(const FunctionSnapshot &) = delete;

private:
  FunctionSnapshot() = default;

  CorpusImage Img;
  CfgView View;
  ProgramStructureTree Tree;
  mutable DerivedSlot Derived;
};

/// Checks that \p S is byte-for-byte the freeze of \p Current: rebuilds
/// the single-function image from scratch and memcmps. On mismatch
/// returns false and, when \p Why is non-null, a short diagnostic.
bool snapshotMatchesFromScratch(const FunctionSnapshot &S, const Cfg &Current,
                                std::string *Why = nullptr);

} // namespace serve
} // namespace pst

#endif // PST_SERVE_SNAPSHOT_H
