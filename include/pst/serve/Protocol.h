//===- pst/serve/Protocol.h - Line-oriented serving protocol ----*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The text protocol `pstserve` speaks: one request per line, exactly one
/// response line per non-empty request line, `ok ...` or `err ...`.
///
/// Read queries (parallelizable):
///
///   region <fn> <a> <b>     innermost region containing nodes a and b
///   regions <fn>            region count / max depth summary
///   cdep <fn> <n>           control-dependence edge set of node n
///   dom <fn> <n>            immediate dominator of node n
///   phi <fn> <n1,n2,...>    iterated dominance frontier of the def set
///   name <fn>               function name
///
/// Barrier commands (serial, flush pending reads first):
///
///   edit <fn> insert <src> <dst>     journal an edge insertion
///   edit <fn> delete <src> <dst>     journal an edge deletion
///   edit <fn> split <src> <dst>      split the edge src->dst
///   edit <fn> addblock <src> <dst>   add a block between src and dst
///   commit                  commit + publish every shard's journal
///   verify                  byte-identity check of published snapshots
///   epoch                   per-shard published versions + pending counts
///   stats                   aggregated shard counters
///   quit                    end the session
///
/// Determinism contract: the session buffers consecutive read queries and
/// executes each batch on the server's pool, but responses are emitted in
/// input order, and batch boundaries depend only on the input text (a
/// barrier command or the batch-size cap flushes) — never on timing. So a
/// scripted session produces byte-identical transcripts at any worker
/// count, which is what the CI smoke test diffs against its golden file.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SERVE_PROTOCOL_H
#define PST_SERVE_PROTOCOL_H

#include "pst/serve/PstServer.h"

#include <iosfwd>

namespace pst {
namespace serve {

/// A parsed input line.
struct ParsedLine {
  enum class Type {
    Query,  ///< A read query; Q is filled (possibly RequestKind::Invalid).
    Edit,   ///< An edit barrier; the edit fields below are filled.
    Commit,
    Verify,
    Epoch,
    Stats,
    Quit,
    Empty, ///< Blank line (or comment); no response.
  };
  enum class EditOp { Insert, Delete, Split, AddBlock };

  Type Kind = Type::Empty;
  Request Q;

  EditOp Op = EditOp::Insert;
  uint64_t Fn = 0;
  NodeId Src = InvalidNode;
  NodeId Dst = InvalidNode;
};

/// Parses one line. Lines starting with '#' parse as Empty (comments, so
/// scripted sessions can annotate themselves). Malformed input parses as
/// a Query with RequestKind::Invalid carrying the diagnostic — it flows
/// through the normal response path as an `err` line.
ParsedLine parseLine(std::string_view Line);

/// One client session over a line stream. Drives a PstServer; sessions
/// must not run concurrently (the protocol's write commands use the
/// single-writer shard API).
class ServerSession {
public:
  /// \p MaxBatch caps how many consecutive read queries are buffered
  /// before a flush (content-determined, so transcripts stay stable).
  explicit ServerSession(PstServer &Server, size_t MaxBatch = 256)
      : Server(Server), MaxBatch(MaxBatch ? MaxBatch : 1) {}

  /// Reads requests from \p In until EOF or `quit`, writing one response
  /// line per request line to \p Out.
  void run(std::istream &In, std::ostream &Out);

private:
  void flush(std::ostream &Out);
  std::string runBarrier(const ParsedLine &L);

  PstServer &Server;
  size_t MaxBatch;
  std::vector<Request> Pending;
};

} // namespace serve
} // namespace pst

#endif // PST_SERVE_PROTOCOL_H
