//===- pst/serve/PstServer.h - Sharded snapshot analysis server -*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving engine: a mapped corpus image split into shards
/// (round-robin by function index), each with its own writer state and
/// epoch table, plus a ThreadPool that fans query batches out across
/// workers with per-worker scratch.
///
/// Queries are pure functions of one pinned epoch: each one pins its
/// target shard's current epoch, resolves the function to zero-copy
/// views (base image or overlay snapshot), computes, formats, and
/// unpins. Responses are deterministic — for a given image + edit
/// history, the response text is identical at any worker count and
/// regardless of concurrent commits on *other* functions, because a
/// query sees exactly one published snapshot, never intermediate writer
/// state. (Concurrent commits on the *same* function change which epoch
/// a query pins — that ordering is the client's to control, which the
/// line protocol does by committing synchronously.)
///
/// Division of labor with Protocol.h: this header owns the query
/// *semantics* (Request in, response line out); Protocol.h owns the text
/// protocol (request parsing and the session loop with its
/// deterministic batching of reads between write barriers).
///
//===----------------------------------------------------------------------===//

#ifndef PST_SERVE_PSTSERVER_H
#define PST_SERVE_PSTSERVER_H

#include "pst/serve/DerivedCache.h"
#include "pst/serve/Shard.h"
#include "pst/support/ThreadPool.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace pst {
namespace serve {

/// Read-only query kinds a worker can execute against a pinned epoch.
/// Edits, commits and introspection are session-level barrier commands
/// (Protocol.h) — they never enter a parallel batch.
enum class RequestKind {
  Region,  ///< Innermost region containing nodes A and B (their LCA).
  Regions, ///< Region count / max depth summary for a function.
  Cdep,    ///< Control-dependence edge set of node A.
  Dom,     ///< Immediate dominator of node A.
  Phi,     ///< Iterated dominance frontier of a def-block set.
  Name,    ///< Function name lookup.
  Invalid, ///< Parse error; Error carries the message.
};

/// One parsed query. Fn is a global function index.
struct Request {
  RequestKind Kind = RequestKind::Invalid;
  uint64_t Fn = 0;
  NodeId A = InvalidNode;
  NodeId B = InvalidNode;
  /// Phi def blocks.
  std::vector<NodeId> Defs;
  /// Parse diagnostic for Invalid requests.
  std::string Error;
};

/// Per-worker reusable query state.
struct QueryScratch {
  std::vector<NodeId> Defs;
  std::vector<EdgeId> Edges;
  std::string Out;
};

struct ServeOptions {
  /// Shards (single-writer domains). Edits to different shards may
  /// commit from different threads; within a shard, writes are serial.
  uint32_t NumShards = 4;
  /// Query-pool workers; 0 = hardware concurrency (ThreadPool default).
  unsigned NumThreads = 0;
  /// Epoch table capacity per shard (see EpochTable.h on sizing).
  uint32_t EpochCapacity = 64;
  /// Per-epoch derived-analysis cache (DerivedCache.h): first touch of a
  /// function builds its dom/postdom/frontier/cdep-CSR/LCA bundle once
  /// per epoch; later queries reuse it. Responses are byte-identical
  /// either way (gated by tests and `time_serve`); disable
  /// (`pstserve --no-derived-cache`) to force per-query recomputation.
  bool DerivedCache = true;
};

/// The server engine. Readers (`executeBatch`) and per-shard writers may
/// run concurrently; see Shard.h for the per-shard writer contract.
class PstServer {
public:
  /// Takes ownership of a mapped or memory-backed image.
  explicit PstServer(CorpusImage Image, ServeOptions Opts = {});

  /// Maps \p Path (CorpusImage::map zero-parse cold start) and serves it.
  static std::unique_ptr<PstServer>
  open(const std::string &Path, ServeOptions Opts = {},
       std::string *Error = nullptr);

  uint64_t numFunctions() const { return Img.numFunctions(); }
  uint32_t numShards() const { return static_cast<uint32_t>(Shards.size()); }
  unsigned numWorkers() const { return Pool.numWorkers(); }
  const CorpusImage &image() const { return Img; }

  Shard &shard(uint32_t I) { return *Shards[I]; }
  const Shard &shard(uint32_t I) const { return *Shards[I]; }
  Shard &shardOf(uint64_t Fn) { return *Shards[Fn % Shards.size()]; }
  const Shard &shardOf(uint64_t Fn) const { return *Shards[Fn % Shards.size()]; }

  /// Executes one query serially on the calling thread.
  std::string execute(const Request &R);

  /// As \c execute with caller-provided scratch: safe to call from any
  /// number of threads concurrently, each with its own \p Sc (this is the
  /// path external reader threads — e.g. the serve bench — use without
  /// going through the pool).
  std::string execute(const Request &R, QueryScratch &Sc) const;

  /// Executes a batch on the pool; \p Responses comes back in request
  /// order (responses are position-stable regardless of worker count).
  void executeBatch(std::span<const Request> Batch,
                    std::vector<std::string> &Responses);

  /// Null when the derived cache is disabled; otherwise one slot per
  /// base-image function (overlay slots live in their snapshots).
  const DerivedCache *derivedCache() const { return Cache.get(); }
  /// Aggregated cache counters across base-image and overlay slots.
  DerivedCacheCounters &cacheCounters() const { return CacheCounters; }
  DerivedCacheStats derivedCacheStats() const {
    DerivedCacheStats S;
    S.Hits = CacheCounters.hits();
    S.Waits = CacheCounters.waits();
    S.Builds = CacheCounters.builds();
    S.BuildNs = CacheCounters.buildNs();
    S.BytesBuilt = CacheCounters.bytesBuilt();
    return S;
  }

private:
  CorpusImage Img;
  ServeOptions Opts;
  std::vector<std::unique_ptr<Shard>> Shards;
  ThreadPool Pool;
  std::vector<QueryScratch> Scratches;
  /// Interned per-shard "serve.shardK.query_ns" probe names.
  std::vector<const char *> ShardQueryProbes;
  /// Base-image derived-analysis slots (null with Opts.DerivedCache off).
  std::unique_ptr<DerivedCache> Cache;
  mutable DerivedCacheCounters CacheCounters;
};

} // namespace serve
} // namespace pst

#endif // PST_SERVE_PSTSERVER_H
