//===- pst/serve/Shard.h - One shard's writer + epoch table -----*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shard of the analysis server: the single-writer edit/commit state
/// for its slice of the corpus, plus the EpochTable through which readers
/// see that slice.
///
/// Routing is by residue class: a server with S shards gives shard K
/// every function F with F % S == K (round-robin over function index, so
/// generated corpora — whose size correlates with index — spread evenly).
/// Function ids in this API are always *global* image indices.
///
/// A published \c ShardEpoch is an immutable overlay over the shared base
/// image: functions the shard has committed edits for resolve to their
/// latest \c FunctionSnapshot, everything else to the mapped base image's
/// zero-copy views. Readers pin an epoch, resolve functions against it,
/// and drop the pin; the writer journals edits into per-function
/// `DynamicCfg`/`IncrementalPst` pairs and, at \c commit, folds each
/// dirty function's journal (IncrementalPst's dirty-region rebuild keeps
/// edit-time validation and stats local), refreezes the dirtied functions
/// from their materialized graphs, and publishes a new epoch. Freezing
/// from the materialized graph — rather than serializing IncrementalPst's
/// live tree — is what makes the byte-identity invariant (published
/// snapshot == from-scratch freeze of the current graph) hold exactly:
/// the incremental tree recycles region ids and is *structurally*
/// validated against from-scratch builds (`equalsFromScratch`), but its
/// id assignment is not the dense from-scratch numbering an image
/// freezes. The refreeze cost is bounded by the dirty set, not the shard.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SERVE_SHARD_H
#define PST_SERVE_SHARD_H

#include "pst/incremental/IncrementalPst.h"
#include "pst/serve/EpochTable.h"
#include "pst/serve/Snapshot.h"

#include <map>
#include <string>
#include <vector>

namespace pst {
namespace serve {

/// An immutable published view of one shard: version + overlay of
/// refrozen functions (sorted by function id) over the base image.
struct ShardEpoch {
  uint64_t Version = 0;
  std::vector<std::pair<uint64_t, std::shared_ptr<const FunctionSnapshot>>>
      Overlay;

  /// The overlay snapshot for \p Fn, or null if \p Fn resolves to the
  /// base image in this epoch.
  const FunctionSnapshot *find(uint64_t Fn) const;
};

/// A function resolved under a pinned epoch: zero-copy views into either
/// the base image or an overlay snapshot. Valid while the pin (and the
/// server) lives.
struct ResolvedFunction {
  CfgView View;
  ProgramStructureTree Pst;
  std::string_view Name;
  /// True when this epoch's overlay (not the base image) supplied it.
  bool FromOverlay = false;
  /// The overlay snapshot behind the views, or null for base-image
  /// functions. Carries the snapshot's derived-analysis slot (see
  /// DerivedCache.h); valid while the pin lives, like the views.
  const FunctionSnapshot *Snap = nullptr;
};

struct ShardStats {
  uint64_t Edits = 0;         ///< Accepted edits journaled so far.
  uint64_t EditsRejected = 0; ///< Edits refused by CFG-validity checks.
  uint64_t Commits = 0;       ///< Commit batches published (excl. epoch 0).
  uint64_t Refrozen = 0;      ///< Function snapshots rebuilt across commits.
  uint64_t Published = 0;     ///< EpochTable publishes (incl. epoch 0).
  uint64_t Reclaimed = 0;     ///< Snapshots reclaimed at quiescence.
};

/// One shard. Readers: \c pin / \c resolve / \c currentVersion from any
/// thread. Writer: the edit API and \c commit from one thread at a time.
class Shard {
public:
  /// \p Base must outlive the shard. Publishes epoch 0 (empty overlay)
  /// immediately, so \c pin never blocks.
  Shard(const CorpusImage &Base, uint32_t Index, uint32_t NumShards,
        uint32_t EpochCapacity = 64);

  uint32_t index() const { return Index; }
  bool owns(uint64_t Fn) const { return Fn % NumShards == Index; }

  // -- Reader API ----------------------------------------------------------

  EpochTable<ShardEpoch>::Pin pin() const { return Epochs.pin(); }
  uint64_t currentVersion() const { return Epochs.currentVersion(); }
  /// Resolves global function \p Fn (which this shard must own) under
  /// \p E — overlay snapshot if the shard republished it, base image
  /// views otherwise.
  ResolvedFunction resolve(const ShardEpoch &E, uint64_t Fn) const;

  // -- Writer API (single-threaded) ----------------------------------------

  /// Journals an edit on \p Fn. Edge-addressed forms take (Src, Dst) and
  /// resolve to the first live edge with those endpoints in the writer's
  /// current graph. Rejected edits (validity, unknown edge) return the
  /// Invalid sentinel / false and journal nothing.
  EdgeId insertEdge(uint64_t Fn, NodeId Src, NodeId Dst);
  bool deleteEdge(uint64_t Fn, NodeId Src, NodeId Dst);
  NodeId splitBlock(uint64_t Fn, NodeId Src, NodeId Dst);
  NodeId addBlock(uint64_t Fn, NodeId Src, NodeId Dst);

  /// Functions with journaled-but-unpublished edits.
  uint32_t pendingFunctions() const;

  /// Commits every dirty function's journal, refreezes those functions,
  /// and publishes a new epoch. Returns the published version (the
  /// current version unchanged if nothing was dirty).
  uint64_t commit();

  /// Re-checks the byte-identity invariant for every overlaid function
  /// of the *current* epoch: published snapshot == from-scratch freeze
  /// of the writer's current committed graph. Writer thread (or
  /// quiescence) only — it reads writer state.
  bool verifyPublished(std::string *Why = nullptr) const;

  /// The writer's current committed graph for \p Fn (materialized,
  /// compact). Writer thread or quiescence only. Used by tests/bench as
  /// the from-scratch oracle input.
  Cfg writerGraph(uint64_t Fn) const;

  /// Incremental-maintenance stats for \p Fn, or null if the shard never
  /// edited it. Writer thread or quiescence only.
  const IncrementalPstStats *writerStats(uint64_t Fn) const;

  ShardStats stats() const;

private:
  struct FunctionWriter {
    std::unique_ptr<DynamicCfg> Graph;
    std::unique_ptr<IncrementalPst> Inc;
    std::string Name;
    bool Dirty = false;
  };

  /// Lazily materializes the writer state for \p Fn from the base image.
  FunctionWriter &writer(uint64_t Fn);
  /// First live edge Src -> Dst in \p W's graph, or InvalidEdge.
  EdgeId findLiveEdge(const FunctionWriter &W, NodeId Src, NodeId Dst) const;

  const CorpusImage &Base;
  uint32_t Index;
  uint32_t NumShards;
  // Ordered so commits refreeze in deterministic function order.
  std::map<uint64_t, FunctionWriter> Writers;
  /// The writer's working overlay; copied into each published epoch.
  std::vector<std::pair<uint64_t, std::shared_ptr<const FunctionSnapshot>>>
      WorkingOverlay;
  EpochTable<ShardEpoch> Epochs;
  uint64_t NextVersion = 0;
  uint64_t Edits = 0, EditsRejected = 0, Commits = 0, Refrozen = 0;

  // Per-shard telemetry probe names (leaked literals; see Shard.cpp).
  const char *ProbeCommitNs;
  const char *ProbeRefrozen;
};

} // namespace serve
} // namespace pst

#endif // PST_SERVE_SHARD_H
