//===- pst/serve/EpochTable.h - Refcounted snapshot publication -*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrency primitive under the serving layer: a single-writer /
/// many-reader epoch table that publishes immutable snapshots and
/// reclaims retired ones at quiescence, RCU-style, without ever making a
/// reader wait.
///
/// Model. A fixed array of slots, each holding (snapshot pointer,
/// version, pin count), plus a `Current` slot index. The writer publishes
/// a new snapshot by filling a free slot and swinging `Current` to it;
/// readers pin whatever `Current` points at. A retired slot (no longer
/// current) is reclaimed — its snapshot deleted, the slot freed for reuse
/// — only once its pin count is zero, and reclamation happens on the
/// writer's thread during the next publish (or an explicit
/// \c reclaimQuiescent), so readers never take a lock, never free memory,
/// and never observe a torn snapshot.
///
/// The pin protocol is the hazard-pointer handshake:
///
///   reader:  I = Current; Pins[I].fetch_add(1, seq_cst);
///            if (Current (seq_cst load) == I)  -> pinned, safe to read
///            else                              -> unpin, retry
///   writer:  fill slot J; Current.store(J, seq_cst);
///            for retired slots I: if (Pins[I].load(seq_cst) == 0) free I
///
/// Why this is safe (the memory-ordering contract DESIGN.md §14 spells
/// out in full): both the reader's {fetch_add; load} and the writer's
/// {store; load} are seq_cst, so in the single total order S one of two
/// interleavings holds. Either the writer's pin-count load observes the
/// reader's increment — then the slot is not reclaimed; or it reads zero
/// — then the increment is later in S than the writer's `Current` store,
/// so the reader's subsequent validation load (later still) must observe
/// the moved `Current` and the reader retries without ever dereferencing
/// the doomed pointer. Weaker orderings genuinely break this: with
/// acquire/release only, the reader's increment and validation load may
/// both "happen before" the writer's store in every per-location order
/// while the writer's pin load still misses the increment (the classic
/// store-buffering litmus), and the writer frees a snapshot a reader is
/// about to read.
///
/// Unpinning is a release fetch_sub; the writer's seq_cst pin load that
/// observes it synchronizes-with it, so every read the pinned reader made
/// through the snapshot happens-before the delete. Slot *reuse* after
/// reclaim is benign ABA: a reader that validates against a reused slot
/// sees the newly published pointer (publication writes the pointer with
/// release ordering before the seq_cst `Current` store it validated
/// against), which is a perfectly good — newer — snapshot.
///
/// Liveness: the writer needs a free slot per publish, so `Capacity` must
/// exceed the maximum number of *distinct epochs simultaneously pinned*
/// plus one for the incoming snapshot; short-lived query pins against a
/// 64-slot default never come close. If readers do exhaust the table the
/// writer spins in publish (reclaiming as pins drain) rather than
/// corrupting a pinned slot — publication stalls, readers are unaffected.
///
/// The table never frees slot structs, only snapshots, so a reader
/// parked between its `Current` read and its fetch_add for arbitrarily
/// long touches memory that is still a live slot when it wakes.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SERVE_EPOCHTABLE_H
#define PST_SERVE_EPOCHTABLE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <thread>

namespace pst {
namespace serve {

/// Single-writer / many-reader table of published snapshot epochs.
///
/// \tparam T the immutable snapshot type. The table owns published
/// snapshots and deletes them at quiescence; readers access them only
/// through a live \c Pin.
///
/// Thread-safety: \c pin / \c tryPin and the const observers are safe
/// from any thread, any number concurrently. \c publish and
/// \c reclaimQuiescent must be called by one thread at a time (the
/// shard's writer); they may run concurrently with any number of pins.
template <class T> class EpochTable {
  struct Slot {
    std::atomic<const T *> Ptr{nullptr};
    std::atomic<uint64_t> Version{0};
    std::atomic<uint32_t> Pins{0};
  };

public:
  /// RAII pin on one published epoch. While live, the snapshot is
  /// guaranteed not to be reclaimed; destruction (or \c release)
  /// decrements the slot's pin count and must happen before the owning
  /// table is destroyed.
  class Pin {
  public:
    Pin() = default;
    Pin(Pin &&O) noexcept
        : Table(O.Table), SlotIndex(O.SlotIndex), Snapshot(O.Snapshot),
          SnapshotVersion(O.SnapshotVersion) {
      O.Table = nullptr;
      O.Snapshot = nullptr;
    }
    Pin &operator=(Pin &&O) noexcept {
      if (this != &O) {
        release();
        Table = O.Table;
        SlotIndex = O.SlotIndex;
        Snapshot = O.Snapshot;
        SnapshotVersion = O.SnapshotVersion;
        O.Table = nullptr;
        O.Snapshot = nullptr;
      }
      return *this;
    }
    Pin(const Pin &) = delete;
    Pin &operator=(const Pin &) = delete;
    ~Pin() { release(); }

    explicit operator bool() const { return Snapshot != nullptr; }
    const T *get() const { return Snapshot; }
    const T &operator*() const { return *Snapshot; }
    const T *operator->() const { return Snapshot; }
    /// The published version of the pinned epoch.
    uint64_t version() const { return SnapshotVersion; }

    /// Drops the pin early (idempotent).
    void release() {
      if (Table) {
        // Release so every read this thread made through the snapshot
        // happens-before a writer that sees the count hit zero.
        Table->Slots[SlotIndex].Pins.fetch_sub(1, std::memory_order_release);
        Table = nullptr;
        Snapshot = nullptr;
      }
    }

  private:
    friend class EpochTable;
    const EpochTable *Table = nullptr;
    uint32_t SlotIndex = 0;
    const T *Snapshot = nullptr;
    uint64_t SnapshotVersion = 0;
  };

  /// \p Capacity slots; see the file comment for sizing (it bounds the
  /// number of distinct epochs readers may hold pinned at once).
  explicit EpochTable(uint32_t Capacity = 64)
      : Cap(Capacity < 2 ? 2 : Capacity), Slots(new Slot[Cap]) {}

  EpochTable(const EpochTable &) = delete;
  EpochTable &operator=(const EpochTable &) = delete;

  /// Requires quiescence: no pins outstanding, no publish in flight.
  ~EpochTable() {
    for (uint32_t I = 0; I < Cap; ++I) {
      assert(Slots[I].Pins.load(std::memory_order_relaxed) == 0 &&
             "EpochTable destroyed with a live pin");
      delete Slots[I].Ptr.load(std::memory_order_relaxed);
    }
  }

  /// Pins the current epoch. Wait-free against the writer in practice:
  /// the retry loop only iterates when a publish lands between the read
  /// of `Current` and the validation, and each retry chases a strictly
  /// newer epoch. Precondition: at least one snapshot has been published
  /// (the serving layer publishes epoch 0 at construction); spins
  /// otherwise.
  Pin pin() const {
    for (;;) {
      uint32_t I = Current.load(std::memory_order_acquire);
      Slots[I].Pins.fetch_add(1, std::memory_order_seq_cst);
      if (Current.load(std::memory_order_seq_cst) == I) {
        // Validated: the writer cannot have missed our pin and reclaimed
        // this slot (see the file comment), so Ptr is either the
        // snapshot that was current when we read `Current`, or a newer
        // one published into the same slot — both immutable and safe.
        const T *P = Slots[I].Ptr.load(std::memory_order_acquire);
        if (P) {
          Pin H;
          H.Table = this;
          H.SlotIndex = I;
          H.Snapshot = P;
          H.SnapshotVersion = Slots[I].Version.load(std::memory_order_acquire);
          return H;
        }
      }
      Slots[I].Pins.fetch_sub(1, std::memory_order_release);
    }
  }

  /// Publishes \p Snapshot as the new current epoch under \p Version
  /// (must be strictly increasing; the serving layer numbers commits).
  /// Takes ownership. Writer thread only. Reclaims retired quiescent
  /// slots on the way out.
  void publish(std::unique_ptr<const T> Snapshot, uint64_t Version) {
    const T *P = Snapshot.release();
    for (;;) {
      uint32_t Cur = Current.load(std::memory_order_relaxed);
      for (uint32_t I = 0; I < Cap; ++I) {
        if (I == Cur)
          continue;
        if (Slots[I].Ptr.load(std::memory_order_relaxed) != nullptr)
          continue;
        if (Slots[I].Pins.load(std::memory_order_acquire) != 0)
          continue; // A reader is mid-handshake on this free slot.
        // Fill, then swing Current. Release on the fills orders the
        // snapshot's construction before the seq_cst store readers
        // validate against.
        Slots[I].Version.store(Version, std::memory_order_release);
        Slots[I].Ptr.store(P, std::memory_order_release);
        Current.store(I, std::memory_order_seq_cst);
        PublishedVersion.store(Version, std::memory_order_release);
        PublishCount.fetch_add(1, std::memory_order_relaxed);
        reclaimQuiescent();
        return;
      }
      // Every non-current slot is pinned or occupied: reclaim what has
      // drained and retry. Publication stalls; readers never do.
      if (reclaimQuiescent() == 0)
        std::this_thread::yield();
    }
  }

  /// Frees the snapshot of every retired (non-current) slot whose pin
  /// count is zero. Writer thread only. Returns the number reclaimed.
  uint64_t reclaimQuiescent() {
    uint64_t Freed = 0;
    uint32_t Cur = Current.load(std::memory_order_relaxed);
    for (uint32_t I = 0; I < Cap; ++I) {
      if (I == Cur)
        continue;
      const T *P = Slots[I].Ptr.load(std::memory_order_relaxed);
      if (!P)
        continue;
      // seq_cst pairs with the reader handshake: reading zero here
      // proves any concurrent pin attempt will fail validation, and any
      // completed unpin's release synchronizes-with this load.
      if (Slots[I].Pins.load(std::memory_order_seq_cst) != 0)
        continue;
      delete P;
      Slots[I].Ptr.store(nullptr, std::memory_order_relaxed);
      ++Freed;
    }
    ReclaimCount.fetch_add(Freed, std::memory_order_relaxed);
    return Freed;
  }

  /// Version of the most recently published epoch (0 before the first
  /// publish). `currentVersion() - Pin::version()` is a reader's epoch
  /// lag.
  uint64_t currentVersion() const {
    return PublishedVersion.load(std::memory_order_acquire);
  }

  /// Snapshots currently owned by the table (current + retired-but-
  /// pinned + retired-awaiting-reclaim). Advisory; exact only at
  /// quiescence.
  uint32_t liveSnapshots() const {
    uint32_t N = 0;
    for (uint32_t I = 0; I < Cap; ++I)
      if (Slots[I].Ptr.load(std::memory_order_relaxed) != nullptr)
        ++N;
    return N;
  }

  uint32_t capacity() const { return Cap; }
  uint64_t publishCount() const {
    return PublishCount.load(std::memory_order_relaxed);
  }
  uint64_t reclaimCount() const {
    return ReclaimCount.load(std::memory_order_relaxed);
  }

private:
  uint32_t Cap;
  std::unique_ptr<Slot[]> Slots;
  std::atomic<uint32_t> Current{0};
  std::atomic<uint64_t> PublishedVersion{0};
  std::atomic<uint64_t> PublishCount{0};
  std::atomic<uint64_t> ReclaimCount{0};
};

} // namespace serve
} // namespace pst

#endif // PST_SERVE_EPOCHTABLE_H
