//===- pst/serve/DerivedCache.h - Per-epoch derived analyses ----*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-epoch derived-analysis cache: lazily materialized bundles of
/// everything a query needs beyond the frozen CFG/PST pair — dominator
/// tree, postdominator tree, dominance frontiers, the control-dependence
/// CSR, and the Euler-tour LCA index over the PST.
///
/// One \c DerivedSlot guards one function's bundle with a single atomic
/// pointer in three states: null (empty), a sentinel (a build is in
/// flight), or the bundle. First touch CASes null -> sentinel; the winner
/// builds and publishes with a release store, losers `wait` on the
/// sentinel — so a bundle is built at most once per slot lifetime, and a
/// reader only ever waits for *its own* function's build, never another
/// function's (slots are independent). See DESIGN.md §15 for the
/// memory-ordering contract.
///
/// Lifecycle is the epoch lifecycle, by construction rather than by an
/// eviction policy: base-image slots live in a \c DerivedCache owned by
/// the server (the base image never changes, so they are valid forever),
/// and overlay slots live *inside* \c FunctionSnapshot — a commit that
/// refreezes a function creates a new snapshot with an empty slot, and
/// the stale bundle is freed exactly when the EpochTable reclaims the old
/// snapshot at quiescence. No invalidation walk, no stale reads: a pinned
/// epoch resolves to the snapshot whose slot it populated.
///
/// Responses computed from a bundle are byte-identical to the uncached
/// per-query path (same algorithms, same orderings); `time_serve` and the
/// differential tests gate on that.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SERVE_DERIVEDCACHE_H
#define PST_SERVE_DERIVEDCACHE_H

#include "pst/core/PstLca.h"
#include "pst/dom/ControlDependenceCsr.h"
#include "pst/dom/Dominators.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace pst {
namespace serve {

/// Everything the query kinds derive from one frozen function:
/// dom/postdom trees, dominance frontiers, the cdep CSR, the PST LCA
/// index, and the memoized region summary. Immutable after construction;
/// self-contained (no references into the views it was built from).
struct DerivedBundle {
  DerivedBundle(const CfgView &V, const ProgramStructureTree &T)
      : Dom(DomTree::buildIterative(V)), PostDom(DomTree::buildPostDom(V)),
        Df(V, Dom), Cdep(V, PostDom), Lca(T), MaxDepth(Lca.maxDepth()),
        NumRegions(T.numRegions()),
        NumCanonicalRegions(T.numCanonicalRegions()) {
    Bytes = sizeof(DerivedBundle) + Dom.bytes() + PostDom.bytes() +
            Df.bytes() + Cdep.bytes() + Lca.bytes();
  }

  DomTree Dom;
  DomTree PostDom;
  DominanceFrontiers Df;
  ControlDependenceCsr Cdep;
  PstLca Lca;
  /// Memoized `regions` summary (satellite: no per-query region-table
  /// scan).
  uint32_t MaxDepth;
  uint32_t NumRegions;
  uint32_t NumCanonicalRegions;
  /// Approximate footprint, computed once at build.
  size_t Bytes = 0;
};

/// Monotonic cache counters, shared by every slot of one server.
/// Readable at any time (relaxed); exact once readers quiesce.
class DerivedCacheCounters {
public:
  void recordHit() { Hits.fetch_add(1, std::memory_order_relaxed); }
  void recordWait() { Waits.fetch_add(1, std::memory_order_relaxed); }
  void recordBuild(uint64_t Ns, uint64_t BundleBytes) {
    Builds.fetch_add(1, std::memory_order_relaxed);
    BuildNs.fetch_add(Ns, std::memory_order_relaxed);
    BytesBuilt.fetch_add(BundleBytes, std::memory_order_relaxed);
  }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t waits() const { return Waits.load(std::memory_order_relaxed); }
  uint64_t builds() const { return Builds.load(std::memory_order_relaxed); }
  uint64_t buildNs() const { return BuildNs.load(std::memory_order_relaxed); }
  uint64_t bytesBuilt() const {
    return BytesBuilt.load(std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Waits{0};
  std::atomic<uint64_t> Builds{0};
  std::atomic<uint64_t> BuildNs{0};
  std::atomic<uint64_t> BytesBuilt{0};
};

/// Point-in-time snapshot of a server's cache counters (`--stats`
/// surface).
struct DerivedCacheStats {
  uint64_t Hits = 0;       ///< Queries answered from a ready bundle.
  uint64_t Waits = 0;      ///< Queries that waited on an in-flight build.
  uint64_t Builds = 0;     ///< Bundles materialized.
  uint64_t BuildNs = 0;    ///< Total ns spent building bundles.
  uint64_t BytesBuilt = 0; ///< Total bytes of bundles materialized.
};

/// One function's once-init bundle guard. Default-constructed empty;
/// immovable (the atomic is the synchronization point).
class DerivedSlot {
public:
  DerivedSlot() = default;
  DerivedSlot(const DerivedSlot &) = delete;
  DerivedSlot &operator=(const DerivedSlot &) = delete;
  ~DerivedSlot();

  /// The bundle for (\p V, \p T), building it first-touch. Safe from any
  /// number of threads; exactly one caller builds, the rest reuse or wait
  /// (on this slot only). \p V and \p T must describe the same frozen
  /// function on every call for a given slot — true by construction here,
  /// since a slot is tied to one immutable snapshot or base-image entry.
  const DerivedBundle &get(const CfgView &V, const ProgramStructureTree &T,
                           DerivedCacheCounters &C) const;

  /// Non-blocking peek: the bundle if one is ready, else null.
  const DerivedBundle *ready() const;

private:
  static const DerivedBundle *buildingSentinel();

  /// null = empty, sentinel = build in flight, else = published bundle.
  mutable std::atomic<const DerivedBundle *> Ptr{nullptr};
};

/// The base-image side of the cache: one slot per corpus function, owned
/// by the server (base-image views never change, so these live for the
/// server's lifetime). Overlay slots live in FunctionSnapshot instead —
/// see the file comment.
class DerivedCache {
public:
  explicit DerivedCache(uint64_t NumFunctions)
      : Slots(std::make_unique<DerivedSlot[]>(NumFunctions)),
        NumSlots(NumFunctions) {}

  DerivedSlot &slot(uint64_t Fn) const { return Slots[Fn]; }
  uint64_t numSlots() const { return NumSlots; }

  /// Bytes currently held by ready base-image bundles (O(slots) scan).
  size_t bytesReady() const;

private:
  std::unique_ptr<DerivedSlot[]> Slots;
  uint64_t NumSlots;
};

} // namespace serve
} // namespace pst

#endif // PST_SERVE_DERIVEDCACHE_H
