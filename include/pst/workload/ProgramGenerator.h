//===- pst/workload/ProgramGenerator.h - Random MiniLang --------*- C++ -*-===//
//
// Part of the PST library (see CfgGenerators.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random MiniLang program generation. The corpus benches use this
/// in place of the paper's FORTRAN sources: procedures are sized and shaped
/// (loop/conditional/case mix, mostly-structured with a goto minority) to
/// match the distributional properties the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef PST_WORKLOAD_PROGRAMGENERATOR_H
#define PST_WORKLOAD_PROGRAMGENERATOR_H

#include "pst/lang/Ast.h"
#include "pst/support/Rng.h"

namespace pst {

/// Knobs for \c generateFunction.
struct ProgramGenOptions {
  /// Approximate number of statements to emit.
  uint32_t TargetStatements = 40;
  /// Maximum nesting depth of structured constructs.
  uint32_t MaxDepth = 6;
  /// Number of local variables (beyond parameters).
  uint32_t NumVars = 8;
  /// Number of parameters.
  uint32_t NumParams = 3;
  // Per-statement construct probabilities (the rest are assignments).
  // Calibrated so the corpus reproduces the paper's Figure-7 mix (blocks
  // ~23% by weight, a small dag/unstructured tail) and its 182-of-254
  // fully-structured procedure count. Mid-procedure returns are rare
  // because a guarded return punches an edge to the function exit and
  // dissolves every enclosing SESE region into one large dag.
  double IfProb = 0.20;
  double IfElseProb = 0.14;
  double WhileProb = 0.10;
  double DoWhileProb = 0.05;
  double ForProb = 0.10;
  double SwitchProb = 0.05;
  double BreakProb = 0.015;   ///< Only inside loops.
  double ContinueProb = 0.01; ///< Only inside loops.
  double ReturnProb = 0.002;
  double CallProb = 0.05;
  /// Probability a generated procedure uses gotos at all; within such a
  /// procedure, per-statement goto probability.
  double GotoProb = 0.0;
};

/// Generates one random function named \p Name. Deterministic in \p R.
/// The result always parses, lowers without diagnostics, and produces a
/// valid CFG.
Function generateFunction(Rng &R, const ProgramGenOptions &Opts,
                          std::string Name);

} // namespace pst

#endif // PST_WORKLOAD_PROGRAMGENERATOR_H
