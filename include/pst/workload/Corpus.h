//===- pst/workload/Corpus.h - The paper's benchmark corpus -----*- C++ -*-===//
//
// Part of the PST library (see CfgGenerators.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A synthetic stand-in for the paper's experimental corpus (Table in
/// Section 4): 254 procedures and 21,549 source lines drawn from Perfect
/// Club, SPEC89 and Linpack programs. Procedure counts and per-program line
/// totals match the paper exactly; procedure bodies are generated MiniLang
/// sized to the per-program average, with the goto-using minority tuned so
/// roughly 182 of 254 procedures are fully structured (the paper's count).
///
//===----------------------------------------------------------------------===//

#ifndef PST_WORKLOAD_CORPUS_H
#define PST_WORKLOAD_CORPUS_H

#include "pst/lang/Lower.h"

#include <string>
#include <string_view>
#include <vector>

namespace pst {

/// One program row of the paper's corpus table.
struct CorpusProgramSpec {
  const char *Suite;
  const char *Name;
  uint32_t Lines;
  uint32_t Procedures;
};

/// The ten programs of the paper's table (21,549 lines, 254 procedures).
const std::vector<CorpusProgramSpec> &paperCorpusSpec();

/// Derives an RNG seed from the corpus seed and a textual identity (FNV-1a
/// over the strings, SplitMix64-finalized). Seeding each procedure from
/// (Seed, Suite, Name) rather than from sequential draws off one generator
/// makes a procedure's content independent of generation order — the
/// property every streaming producer (pst/workload CorpusStream) relies on
/// to emit byte-identical corpora at any chunk size.
uint64_t deriveProcedureSeed(uint64_t Seed, std::string_view Suite,
                             std::string_view Name);

/// One generated procedure with its provenance.
struct CorpusFunction {
  std::string Suite;
  std::string Program;
  LoweredFunction Fn;
};

/// Generates the full 254-procedure corpus. Deterministic in \p Seed, and
/// each procedure's RNG stream is derived from (Seed, Suite, Name) rather
/// than drawn sequentially, so a procedure's content is independent of
/// generation order (stable under reordering, subsetting, or parallel
/// generation). Every returned function has a valid CFG.
std::vector<CorpusFunction> generatePaperCorpus(uint64_t Seed);

} // namespace pst

#endif // PST_WORKLOAD_CORPUS_H
