//===- pst/workload/CorpusStream.h - Streaming corpus producer --*- C++ -*-===//
//
// Part of the PST library (see CfgGenerators.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded-memory corpus producer: yields (name, Cfg) chunks from the
/// seeded structural generators instead of materializing the whole corpus.
///
/// Every function of the stream is a pure function of (Seed, Index): its
/// RNG stream is derived from the function's textual identity via the same
/// FNV-1a/SplitMix64 reseeding the paper corpus uses (\c
/// deriveProcedureSeed), never from sequential draws off a shared
/// generator. That makes the stream *re-entrant and chunk-oblivious*:
/// generating function I alone, in a chunk of 7, or in a chunk of 4096
/// produces the same graph byte for byte, and a second pass over the
/// stream (the out-of-core image builder needs two) replays the first
/// exactly. Peak memory is one chunk of functions, regardless of \c
/// Count — the property the million-function pipeline is built on.
///
/// The size/shape mix follows the benches' generated corpus: mostly small
/// random backbone graphs, salted with diamond ladders, loop nests,
/// repeat-until nests (the dominance-frontier worst case) and irreducible
/// meshes.
///
//===----------------------------------------------------------------------===//

#ifndef PST_WORKLOAD_CORPUSSTREAM_H
#define PST_WORKLOAD_CORPUSSTREAM_H

#include "pst/graph/Cfg.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pst {

/// Knobs for the streamed generated corpus.
struct StreamCorpusOptions {
  /// Corpus identity: same seed, same corpus, at any chunk size.
  uint64_t Seed = 0x57a3e;
  /// Number of functions the stream yields.
  uint64_t Count = 0;
};

/// Regenerates function \p Index of the stream corpus in isolation —
/// deterministic in (Opts.Seed, Index) only. \p G and \p Name are
/// overwritten (their capacity is reused). The chunked \c CorpusStream
/// below calls exactly this per function, which is what makes streamed
/// output independent of chunking.
void generateStreamFunction(const StreamCorpusOptions &Opts, uint64_t Index,
                            Cfg &G, std::string &Name);

/// One chunk of a streamed corpus. Graphs[K] is function Begin + K;
/// Names parallels Graphs. Storage is reused across next() calls.
struct CorpusChunk {
  uint64_t Begin = 0;
  std::vector<Cfg> Graphs;
  std::vector<std::string> Names;

  size_t size() const { return Graphs.size(); }
};

/// Pull-based chunked producer over the stream corpus: each next() fills
/// the caller's chunk with the next ChunkFunctions functions (fewer at the
/// tail) and advances. reset() rewinds to function 0 for a second pass.
class CorpusStream {
public:
  CorpusStream(StreamCorpusOptions Opts, size_t ChunkFunctions)
      : Opts(Opts), ChunkFns(ChunkFunctions ? ChunkFunctions : 1) {}

  /// Fills \p C with the next chunk; returns false (leaving \p C empty)
  /// once the stream is exhausted.
  bool next(CorpusChunk &C);

  /// Rewinds to the start of the stream. The replay is byte-identical to
  /// the first pass (each function is regenerated from its own seed).
  void reset() { Next = 0; }

  uint64_t count() const { return Opts.Count; }
  size_t chunkFunctions() const { return ChunkFns; }
  const StreamCorpusOptions &options() const { return Opts; }

private:
  StreamCorpusOptions Opts;
  size_t ChunkFns;
  uint64_t Next = 0;
};

} // namespace pst

#endif // PST_WORKLOAD_CORPUSSTREAM_H
