//===- pst/workload/CfgGenerators.h - Synthetic CFGs ------------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic CFG generators.
///
/// Property tests cross-check the linear-time algorithms against
/// brute-force oracles on thousands of \c randomBackboneCfg instances; the
/// benches use the structured generators (diamond ladders, loop nests,
/// nested repeat-until — the dominance-frontier worst case from Section
/// 6.1 — and irreducible meshes) to sweep sizes with controlled shape.
///
/// All generators produce graphs that satisfy \c validateCfg by
/// construction.
///
//===----------------------------------------------------------------------===//

#ifndef PST_WORKLOAD_CFGGENERATORS_H
#define PST_WORKLOAD_CFGGENERATORS_H

#include "pst/graph/Cfg.h"
#include "pst/support/Rng.h"

namespace pst {

/// Options for \c randomBackboneCfg.
struct RandomCfgOptions {
  uint32_t NumNodes = 10;       ///< Including entry and exit; must be >= 2.
  uint32_t NumExtraEdges = 6;   ///< Random edges beyond the backbone path.
  double SelfLoopProb = 0.05;   ///< Chance an extra edge is a self loop.
  double ParallelProb = 0.05;   ///< Chance an extra edge duplicates one.
  bool AllowBackEdges = true;   ///< Extra edges may point "backwards".
};

/// A random valid CFG: a permuted entry-to-exit backbone path guarantees
/// Definition 1, then extra edges add joins, branches, loops (possibly
/// irreducible), parallel edges and self loops.
Cfg randomBackboneCfg(Rng &R, const RandomCfgOptions &Opts);

/// A straight chain entry -> b1 -> ... -> bN -> exit.
Cfg chainCfg(uint32_t InnerNodes);

/// A ladder of \p Count sequential if-then-else diamonds.
Cfg diamondLadderCfg(uint32_t Count);

/// \p Depth perfectly nested while loops with \p BodyBlocks blocks in the
/// innermost body.
Cfg nestedWhileCfg(uint32_t Depth, uint32_t BodyBlocks = 1);

/// \p Depth nested repeat-until loops sharing one chain of body blocks:
/// node i has a backedge from the chain end for every nesting level. This
/// is the family for which dominance frontiers grow quadratically
/// (Section 6.1 cites [CFR+91]).
Cfg nestedRepeatUntilCfg(uint32_t Depth);

/// The classic irreducible triangle: entry branches to both a and b, which
/// form a two-node loop before reaching exit. \p Copies chains several such
/// triangles sequentially.
Cfg irreducibleCfg(uint32_t Copies = 1);

/// The control flow graph of the paper's Figure 1 (used as a golden test).
/// Node labels follow the figure: start, a..j style block names.
Cfg paperFigure1Cfg();

} // namespace pst

#endif // PST_WORKLOAD_CFGGENERATORS_H
