//===- pst/runtime/PstScratch.h - Per-thread analysis scratch ---*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregated per-thread working memory of the full analysis pipeline
/// (cycle equivalence -> PST -> control regions). One PstScratch per worker
/// thread is the whole concurrency story of the batch engine: analyses
/// share nothing else, so functions can be fanned out freely.
///
/// Lifecycle: default-construct once (empty), pass to any number of
/// \c analyzeFunction calls; buffers grow to the largest function seen and
/// stay warm, after which a call performs no transient heap allocations.
/// The scratch is never a cache — results are bit-deterministic in the
/// input no matter what was analyzed before (tests assert this by
/// interleaving runs of different shapes).
///
/// Thread-safety contract: a PstScratch is single-threaded state with no
/// internal synchronization. At most one \c analyzeFunction call may use
/// a given scratch at a time, and handing a scratch from one thread to
/// another requires an external happens-before edge (the batch engine
/// gets this from \c ThreadPool::run's join; a scratch is pinned to one
/// worker index for the whole batch and never migrates mid-run).
///
//===----------------------------------------------------------------------===//

#ifndef PST_RUNTIME_PSTSCRATCH_H
#define PST_RUNTIME_PSTSCRATCH_H

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/graph/CfgView.h"

namespace pst {

/// Working memory for one worker's serial analysis pipeline.
struct PstScratch {
  /// The per-function frozen CSR adjacency. \c analyzeFunction builds one
  /// \c CfgView here and every pipeline stage reads it; no stage rebuilds
  /// its own adjacency.
  CfgViewScratch View;
  /// PST construction (embeds the cycle-equivalence engine).
  PstBuildScratch PstBuild;
  /// Control regions over the implicitly node-expanded graph T(S); kept
  /// separate from PstBuild's solver scratch only so the two stages cannot
  /// develop accidental ordering coupling — they are sized for different
  /// node universes (N vs 2N) anyway.
  ControlRegionsScratch CtrlRegions;
};

} // namespace pst

#endif // PST_RUNTIME_PSTSCRATCH_H
