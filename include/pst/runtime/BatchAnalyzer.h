//===- pst/runtime/BatchAnalyzer.h - Parallel corpus analysis ---*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch analysis engine: runs the per-function pipeline (cycle
/// equivalence -> PST -> control regions, Theorems 3, 7 and 8) over a
/// whole corpus, fanned out across a thread pool.
///
/// Functions are independent, so corpus throughput is embarrassingly
/// parallel; what the engine adds over a bare loop is (a) one reusable
/// \c PstScratch per worker, making each steady-state analysis free of
/// transient allocations, (b) chunked dynamic scheduling over the
/// (size-skewed) corpus, and (c) a determinism contract: results are
/// written to slot I for input I, and every analysis is a pure function of
/// its input CFG, so the output is byte-identical regardless of thread
/// count, chunk size, or what the worker's scratch held before.
///
//===----------------------------------------------------------------------===//

#ifndef PST_RUNTIME_BATCHANALYZER_H
#define PST_RUNTIME_BATCHANALYZER_H

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/image/CorpusImage.h"
#include "pst/runtime/PstScratch.h"
#include "pst/support/ThreadPool.h"

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace pst {

/// Configuration for a BatchAnalyzer.
struct BatchOptions {
  /// Worker threads (including the calling thread); 0 = hardware
  /// concurrency.
  unsigned NumThreads = 0;
  /// Functions per scheduling chunk. Small enough to balance the paper
  /// corpus's size skew across workers, large enough that the atomic
  /// cursor is off the hot path.
  size_t ChunkSize = 16;
  /// Also compute the control-region partition (Theorems 7-8) per
  /// function.
  bool ComputeControlRegions = true;
};

/// Everything the pipeline derives from one function.
struct FunctionAnalysis {
  ProgramStructureTree Pst;
  /// Empty (NumClasses 0) when BatchOptions::ComputeControlRegions is off.
  ControlRegionsResult ControlRegions;
};

/// Runs one function through the full pipeline using \p Scratch. This is
/// exactly what the batch engine runs per item; exposed so callers with
/// their own loop (or their own pool) get the same allocation-free path.
FunctionAnalysis analyzeFunction(const Cfg &G, PstScratch &Scratch,
                                 bool ComputeControlRegions = true);

/// Produces chunk [Begin, Begin+Count) of a corpus into the caller's
/// (reused) vectors: Graphs[K] / Names[K] hold function Begin + K. The
/// streaming build calls the producer twice over the same ranges (shape
/// pass, then fill pass), so it must be replayable: the same range must
/// yield the same functions both times. \c CorpusStream::next is the
/// canonical implementation.
using ChunkProducer =
    std::function<void(uint64_t Begin, uint64_t Count, std::vector<Cfg> &Graphs,
                       std::vector<std::string> &Names)>;

/// Receives one finished analysis during a streamed corpus pass. Called on
/// the calling thread, strictly in function order (workers analyze a
/// window in parallel, then the window drains through the sink serially);
/// \p A is scratch owned by the engine and is recycled after the call —
/// copy out what you keep.
using AnalysisSink =
    std::function<void(uint64_t Index, const FunctionAnalysis &A)>;

/// The batch engine. Owns a thread pool and one PstScratch per worker;
/// reuse one analyzer across corpora to keep both warm.
class BatchAnalyzer {
public:
  explicit BatchAnalyzer(BatchOptions Opts = {});

  /// Analyzes every CFG, returning results in input order. Deterministic:
  /// output[I] depends only on Fns[I]. Throws whatever a per-function
  /// analysis threw first (remaining work is abandoned).
  std::vector<FunctionAnalysis> analyzeCorpus(std::span<const Cfg> Fns);

  /// As above for non-contiguous corpora (e.g. CFGs embedded in corpus
  /// records); null pointers are not allowed.
  std::vector<FunctionAnalysis>
  analyzeCorpus(std::span<const Cfg *const> Fns);

  /// Analyzes every function of a mapped corpus image. The PSTs come
  /// straight off the image (zero parse, zero build — each result's \c Pst
  /// adopts the mapped arrays, so results are valid only while \p Img
  /// lives); only the control-region partition, which the image does not
  /// store, is recomputed, over the image's zero-copy CSR views. Output is
  /// byte-identical to running \c analyzeCorpus on the CFGs the image was
  /// built from.
  std::vector<FunctionAnalysis> analyzeCorpus(const CorpusImage &Img);

  /// Builds a frozen corpus image of \p Fns in parallel: the per-function
  /// pipeline (CfgView + PST) fans out across the pool twice — once to
  /// record shapes, once to copy into the laid-out arena — around the one
  /// serial offset-table fixup pass in between. \p Names, when non-empty,
  /// must parallel \p Fns. Byte-identical output regardless of thread
  /// count (workers write disjoint arena slices at layout-fixed offsets);
  /// the serial twin is \c buildCorpusImage (pst/image).
  std::vector<uint8_t> buildImage(std::span<const Cfg> Fns,
                                  std::span<const std::string> Names = {});

  /// Out-of-core twin of \c buildImage: builds the image of a corpus that
  /// never exists in memory. \p Produce is invoked over consecutive
  /// [Begin, Begin+ChunkFunctions) ranges twice — once streaming shapes
  /// into the \c StreamImageWriter's layout pass, once re-producing each
  /// chunk for the parallel fill into the pre-sized file at \p Path. Peak
  /// RSS is proportional to \p ChunkFunctions, never to \p NumFunctions,
  /// and the file is byte-identical to \c buildImage over the same
  /// functions at every chunk size and thread count. Returns false with a
  /// diagnostic on I/O failure.
  bool buildImageStream(uint64_t NumFunctions, const ChunkProducer &Produce,
                        size_t ChunkFunctions, const std::string &Path,
                        std::string *Error = nullptr);

  /// Streaming twin of \c analyzeCorpus(const CorpusImage&): visits the
  /// image's functions in windows of \p WindowFunctions, analyzing each
  /// window in parallel into per-slot scratch results, then draining it
  /// through \p Sink in function order. Between windows the image's
  /// resident pages are dropped (\c CorpusImage::release), so a pass over
  /// a multi-gigabyte image holds roughly one window of pages plus one
  /// window of results — the sink replaces the giant result vector.
  /// Analysis results are identical to the materializing overload.
  void analyzeCorpusStream(const CorpusImage &Img, const AnalysisSink &Sink,
                           size_t WindowFunctions = 4096);

  unsigned numWorkers() const { return Pool.numWorkers(); }
  const BatchOptions &options() const { return Opts; }

private:
  BatchOptions Opts;
  ThreadPool Pool;
  std::vector<PstScratch> Scratches; // One per worker, indexed by worker id.
};

} // namespace pst

#endif // PST_RUNTIME_BATCHANALYZER_H
