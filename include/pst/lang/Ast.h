//===- pst/lang/Ast.h - MiniLang abstract syntax ----------------*- C++ -*-===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniLang AST: expressions with the usual binary/unary operators and
/// statements covering structured control flow plus goto/label (programs in
/// the paper's corpus are mostly structured with an unstructured minority,
/// and the generators mirror that mix).
///
/// Nodes carry a Kind discriminator in LLVM style; \c Expr and \c Stmt are
/// closed hierarchies navigated with switch-over-kind.
///
//===----------------------------------------------------------------------===//

#ifndef PST_LANG_AST_H
#define PST_LANG_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pst {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Expression node kinds.
enum class ExprKind : uint8_t {
  Number,
  VarRef,
  Unary,  // -x, !x
  Binary, // + - * / % == != < <= > >= && ||
  Call,
};

/// Binary/unary operator spellings reuse the token spellings.
enum class OpKind : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
  Neg,
  Not,
};

/// Printable operator spelling ("+", "&&", ...).
const char *opSpelling(OpKind K);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression node (tagged union in the LLVM closed-hierarchy style).
struct Expr {
  ExprKind Kind;
  uint32_t Line = 0;

  int64_t Value = 0;        // Number.
  std::string Name;         // VarRef / Call.
  OpKind Op = OpKind::Add;  // Unary / Binary.
  ExprPtr Lhs, Rhs;         // Binary (Lhs,Rhs) / Unary (Lhs).
  std::vector<ExprPtr> Args; // Call.

  explicit Expr(ExprKind K) : Kind(K) {}
};

ExprPtr makeNumber(int64_t V, uint32_t Line);
ExprPtr makeVarRef(std::string Name, uint32_t Line);
ExprPtr makeUnary(OpKind Op, ExprPtr Operand, uint32_t Line);
ExprPtr makeBinary(OpKind Op, ExprPtr L, ExprPtr R, uint32_t Line);
ExprPtr makeCall(std::string Callee, std::vector<ExprPtr> Args,
                 uint32_t Line);

/// Renders an expression as source text.
std::string formatExpr(const Expr &E);

/// Deep-copies an expression tree (instructions keep evaluable copies of
/// their right-hand sides for the interpreters).
ExprPtr cloneExpr(const Expr &E);

/// Appends the names of all variables read by \p E to \p Out.
void collectUses(const Expr &E, std::vector<std::string> &Out);

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Statement node kinds.
enum class StmtKind : uint8_t {
  Block,    // { ... }
  VarDecl,  // var x = e;
  Assign,   // x = e;
  ExprStmt, // e;  (calls for effect)
  If,       // if (c) then [else]
  While,    // while (c) body
  DoWhile,  // do body while (c);
  For,      // for (init; cond; step) body
  Switch,   // switch (e) { case k: ... default: ... }
  Break,
  Continue,
  Return,   // return [e];
  Goto,     // goto l;
  Label,    // l:
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One switch arm; a missing value (HasValue false) is the default arm.
struct SwitchArm {
  bool HasValue = false;
  int64_t Value = 0;
  std::vector<StmtPtr> Body;
};

/// One statement node.
struct Stmt {
  StmtKind Kind;
  uint32_t Line = 0;

  std::vector<StmtPtr> Body; // Block.
  std::string Name;          // VarDecl/Assign target, Goto/Label name.
  ExprPtr Value;             // Initializer / RHS / condition / returned.
  StmtPtr Then, Else;        // If arms; loop bodies live in Then.
  StmtPtr Init, Step;        // For clauses.
  std::vector<SwitchArm> Arms; // Switch.

  explicit Stmt(StmtKind K) : Kind(K) {}
};

/// One function: name, parameters, body block.
struct Function {
  std::string Name;
  std::vector<std::string> Params;
  StmtPtr Body;
  uint32_t Line = 0;
};

/// A parsed compilation unit.
struct Program {
  std::vector<Function> Functions;
};

/// Renders a statement (and children) as indented source text.
std::string formatStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a whole function as source text.
std::string formatFunction(const Function &F);

/// Counts source statements (every Stmt node except Block containers), the
/// "lines" measure used by the corpus table.
uint32_t countStatements(const Stmt &S);

} // namespace pst

#endif // PST_LANG_AST_H
