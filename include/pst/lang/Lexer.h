//===- pst/lang/Lexer.h - MiniLang tokens and lexer -------------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniLang lexer. MiniLang is the small imperative language this repo
/// uses in place of the paper's FORTRAN front-end: it has every control
/// construct the paper's empirical section cares about (conditionals, case,
/// structured loops, break/continue, and goto for the unstructured
/// minority) and compiles to the block-level CFG all analyses consume.
///
//===----------------------------------------------------------------------===//

#ifndef PST_LANG_LEXER_H
#define PST_LANG_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace pst {

/// Token kinds. Keywords are distinct kinds; punctuation/operators too.
enum class TokKind : uint8_t {
  Eof,
  Ident,
  Number,
  // Keywords.
  KwFunc,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwContinue,
  KwReturn,
  KwGoto,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Colon,
  // Operators.
  Assign,   // =
  Plus,     // +
  Minus,    // -
  Star,     // *
  Slash,    // /
  Percent,  // %
  EqEq,     // ==
  NotEq,    // !=
  Less,     // <
  LessEq,   // <=
  Greater,  // >
  GreaterEq,// >=
  AndAnd,   // &&
  OrOr,     // ||
  Not,      // !
  // Error recovery.
  Unknown,
};

/// Printable token kind name (for diagnostics).
const char *tokKindName(TokKind K);

/// One token with its source location (1-based line/column).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t Value = 0; // For Number.
  uint32_t Line = 0, Col = 0;
};

/// Lexes an entire buffer. '#' starts a line comment. Unknown characters
/// produce TokKind::Unknown tokens (the parser diagnoses them).
std::vector<Token> lex(const std::string &Source);

} // namespace pst

#endif // PST_LANG_LEXER_H
