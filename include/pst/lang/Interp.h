//===- pst/lang/Interp.h - MiniLang interpreters ----------------*- C++ -*-===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two interpreters with identical semantics:
///
///  * \c runAst executes a function directly off its AST (reference
///    semantics; goto is not supported at this level).
///  * \c runLowered executes a lowered CFG instruction by instruction,
///    recording how often every block runs.
///
/// Differential execution of the two validates the lowering end to end,
/// and the per-block execution counts give a *dynamic* check of the
/// control-region guarantee: nodes that are cycle equivalent in
/// G + (end -> start) execute the same number of times on every complete
/// run (a run's trace plus the return edge is a closed walk, closed walks
/// decompose into simple cycles, and a simple cycle contains two cycle-
/// equivalent nodes either once each or not at all).
///
/// Semantics shared by both interpreters (total, deterministic):
///  * 64-bit wrapping integers; x / 0 == 0 and x % 0 == 0;
///  * relational/logical operators yield 1/0; && and || evaluate both
///    sides (MiniLang expressions are effect-free, so this is
///    unobservable);
///  * uninitialized variables read 0;
///  * calls invoke a deterministic pure builtin (a hash of callee name and
///    argument values);
///  * falling off the end returns 0.
///
//===----------------------------------------------------------------------===//

#ifndef PST_LANG_INTERP_H
#define PST_LANG_INTERP_H

#include "pst/lang/Lower.h"

#include <cstdint>
#include <vector>

namespace pst {

/// Outcome of one bounded execution.
struct ExecResult {
  /// False when the step budget ran out (potentially non-terminating).
  bool Finished = false;
  int64_t ReturnValue = 0;
  uint64_t Steps = 0;
};

/// Outcome of one bounded CFG execution, with the block trace profile.
struct CfgExecResult : ExecResult {
  /// BlockCounts[n] = number of times block n was entered.
  std::vector<uint64_t> BlockCounts;
  /// EdgeCounts[e] = number of times edge e was traversed. Empty unless the
  /// run was made with CountEdges = true (the region profiler's
  /// branch-frequency attribution needs it; plain differential execution
  /// does not pay for it).
  std::vector<uint64_t> EdgeCounts;
};

/// The deterministic builtin backing MiniLang calls.
int64_t evalBuiltinCall(const std::string &Callee,
                        const std::vector<int64_t> &Args);

/// Executes \p F on \p Args off the AST. Missing arguments read 0; extras
/// are ignored. Returns Finished = false if \p MaxSteps statements were
/// executed without returning, or if the function uses goto/labels (which
/// this reference interpreter does not model).
ExecResult runAst(const Function &F, const std::vector<int64_t> &Args,
                  uint64_t MaxSteps = 1 << 20);

/// Executes lowered code on \p Args, recording per-block entry counts.
/// With \p CountEdges set, additionally records per-edge traversal counts
/// into \c CfgExecResult::EdgeCounts (one extra increment per block
/// transition; the default leaves the edge profile empty and costs only a
/// predictable untaken branch).
CfgExecResult runLowered(const LoweredFunction &F,
                         const std::vector<int64_t> &Args,
                         uint64_t MaxSteps = 1 << 20,
                         bool CountEdges = false);

} // namespace pst

#endif // PST_LANG_INTERP_H
