//===- pst/lang/Parser.h - MiniLang parser ----------------------*- C++ -*-===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniLang.
///
/// Grammar sketch:
/// \code
///   program  := function*
///   function := 'func' IDENT '(' [IDENT (',' IDENT)*] ')' block
///   block    := '{' stmt* '}'
///   stmt     := 'var' IDENT ['=' expr] ';' | IDENT '=' expr ';'
///             | IDENT ':' | 'goto' IDENT ';' | expr ';'
///             | 'if' '(' expr ')' stmt ['else' stmt]
///             | 'while' '(' expr ')' stmt
///             | 'do' stmt 'while' '(' expr ')' ';'
///             | 'for' '(' [assign] ';' [expr] ';' [assign] ')' stmt
///             | 'switch' '(' expr ')' '{' arm* '}'
///             | 'break' ';' | 'continue' ';' | 'return' [expr] ';'
///             | block
///   arm      := ('case' NUMBER | 'default') ':' stmt*
///   expr     := precedence climbing over || && == != < <= > >= + - * / %
///               with unary - !, calls and parentheses
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PST_LANG_PARSER_H
#define PST_LANG_PARSER_H

#include "pst/lang/Ast.h"

#include <optional>
#include <string>
#include <vector>

namespace pst {

/// One parse or lowering diagnostic, tool-style ("expected ';' after...").
struct Diagnostic {
  uint32_t Line = 0, Col = 0;
  std::string Message;

  std::string str() const {
    return "line " + std::to_string(Line) + ":" + std::to_string(Col) +
           ": error: " + Message;
  }
};

/// Parses a whole compilation unit. Returns std::nullopt and at least one
/// diagnostic on malformed input.
std::optional<Program> parseProgram(const std::string &Source,
                                    std::vector<Diagnostic> *Diags = nullptr);

} // namespace pst

#endif // PST_LANG_PARSER_H
