//===- pst/lang/Lower.h - AST to block-level CFG ----------------*- C++ -*-===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a MiniLang function to the block-level CFG all analyses consume,
/// with a per-block instruction list carrying def/use information (what the
/// SSA construction and dataflow problems need).
///
/// Lowering rules:
///  * A dedicated entry block defines the parameters; a dedicated exit
///    block ends the function; `return` jumps to it.
///  * if/while/do-while/for/switch lower in the standard structured way
///    (switch arms do not fall through; `break`/`continue` bind to the
///    innermost loop).
///  * `goto`/labels create arbitrary edges; unreachable code is pruned.
///  * A loop that cannot reach the exit (e.g. `while (1) {}`) gets one
///    synthetic edge to the exit block so the result satisfies
///    Definition 1; this mirrors the usual postdominator-friendly
///    "connect infinite loops" transformation.
///
//===----------------------------------------------------------------------===//

#ifndef PST_LANG_LOWER_H
#define PST_LANG_LOWER_H

#include "pst/graph/Cfg.h"
#include "pst/lang/Parser.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pst {

/// Dense index of a function-local variable.
using VarId = uint32_t;
/// Sentinel for "no variable".
inline constexpr VarId InvalidVar = ~VarId(0);

/// One switch arm of a SwitchTerm instruction, aligned with the block's
/// successor-edge order.
struct SwitchArmSpec {
  bool IsDefault = false;
  int64_t Value = 0;
};

/// One lowered instruction: an optional definition plus a use list.
///
/// Def/use structure is all the analyses need; \c Rhs keeps an evaluable
/// copy of the expression so the CFG interpreter (lang/Interp.h) can
/// execute lowered code, and \c Text the human-readable form for dumps.
struct Instruction {
  enum class Kind : uint8_t {
    Param,      ///< Parameter definition in the entry block.
    Assign,     ///< x = expr.
    CondBranch, ///< Terminator: successor 0 if Rhs is true, else 1.
    SwitchTerm, ///< Terminator: successor of the matching Arms entry.
    Return,     ///< Jump to exit, possibly using a value.
    Call,       ///< Expression statement evaluated for effect.
  };

  Kind K = Kind::Assign;
  VarId Def = InvalidVar;
  std::vector<VarId> Uses;
  std::string Text;
  /// Evaluable RHS / condition / selector / returned expression (shared:
  /// instructions are freely copied by CFG transformations).
  std::shared_ptr<const Expr> Rhs;
  /// SwitchTerm only: one entry per arm successor edge, in edge order; a
  /// trailing fall-past edge (no default) has no entry.
  std::vector<SwitchArmSpec> Arms;
};

/// A function lowered to CFG + code.
struct LoweredFunction {
  std::string Name;
  Cfg Graph;
  /// Code[n] is the instruction list of CFG node n.
  std::vector<std::vector<Instruction>> Code;
  /// VarNames[v] is the source name of variable v.
  std::vector<std::string> VarNames;
  /// Number of AST statements (the corpus "lines" measure).
  uint32_t NumStatements = 0;

  uint32_t numVars() const { return static_cast<uint32_t>(VarNames.size()); }

  /// Blocks containing at least one definition of \p V, sorted, deduped.
  std::vector<NodeId> defBlocks(VarId V) const;

  /// Blocks containing at least one use of \p V, sorted, deduped.
  std::vector<NodeId> useBlocks(VarId V) const;
};

/// Lowers one function. Returns std::nullopt and diagnostics on semantic
/// errors (undeclared variables, unknown labels, break outside a loop...).
std::optional<LoweredFunction>
lowerFunction(const Function &F, std::vector<Diagnostic> *Diags = nullptr);

/// Lowers every function of a program; stops at the first failing one.
std::optional<std::vector<LoweredFunction>>
lowerProgram(const Program &P, std::vector<Diagnostic> *Diags = nullptr);

/// Rewrites \p F into a *statement-level* CFG: every block with k > 1
/// instructions becomes a chain of k single-instruction blocks. This is
/// the granularity the paper's Section 6.2 measurements use ("averaging
/// less that 10% the size of the (statement-level) CFG"). Node ids change;
/// block-level node n maps to the returned function's nodes
/// [FirstOf[n], FirstOf[n] + k).
LoweredFunction expandToStatementLevel(const LoweredFunction &F,
                                       std::vector<NodeId> *FirstOf = nullptr);

/// Convenience: parse + lower in one step.
std::optional<std::vector<LoweredFunction>>
compile(const std::string &Source, std::vector<Diagnostic> *Diags = nullptr);

/// Renders a lowered function (blocks, instructions, successors).
std::string formatLowered(const LoweredFunction &F);

} // namespace pst

#endif // PST_LANG_LOWER_H
