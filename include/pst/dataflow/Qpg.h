//===- pst/dataflow/Qpg.h - Quick propagation graphs ------------*- C++ -*-===//
//
// Part of the PST library (see Dataflow.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's quick propagation graph (Section 6.2): a shrunken copy of
/// the CFG whose edges bypass maximal SESE regions with only identity
/// transfer functions. Inside such a *transparent* region every value
/// equals the value on its entry edge, so the region contributes nothing
/// to the fixed point and is skipped entirely; the solution is projected
/// back onto bypassed edges afterwards.
///
/// Each QPG edge is a pair (e1, e2) of CFG edges where e1 == e2 or
/// (e1, e2) encloses a SESE region; the QPG edge connects source(e1) to
/// target(e2). The paper reports QPGs averaging under 10% of the
/// (statement-level) CFG for single-instance problems, which
/// bench/fig_qpg_sparsity reproduces at block level.
///
//===----------------------------------------------------------------------===//

#ifndef PST_DATAFLOW_QPG_H
#define PST_DATAFLOW_QPG_H

#include "pst/dataflow/Dataflow.h"

#include <vector>

namespace pst {

/// A quick propagation graph over one CFG + problem instance.
struct Qpg {
  /// Kept CFG nodes, in discovery order; Nodes[0] is the CFG entry.
  std::vector<NodeId> Nodes;
  /// CFG node -> index into Nodes, or UINT32_MAX if bypassed.
  std::vector<uint32_t> NodeIndex;

  /// One QPG edge: the CFG edge pair it abbreviates.
  struct Edge {
    uint32_t Src = 0, Dst = 0; ///< Indices into Nodes.
    EdgeId First = InvalidEdge, Last = InvalidEdge;
  };
  std::vector<Edge> Edges;
  /// Successor/predecessor edge indices per kept node.
  std::vector<std::vector<uint32_t>> Succ, Pred;

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  uint32_t numEdges() const { return static_cast<uint32_t>(Edges.size()); }
};

/// Builds the QPG for \p P over \p G, bypassing maximal regions whose
/// every node has an identity transfer function.
Qpg buildQpg(const Cfg &G, const ProgramStructureTree &T,
             const BitVectorProblem &P);

/// CfgView twin of \c buildQpg: identical graphs (same node discovery and
/// edge order) on a view of the same graph.
Qpg buildQpg(const CfgView &V, const ProgramStructureTree &T,
             const BitVectorProblem &P);

/// A dataflow solution expressed per CFG edge (the natural granularity of
/// QPG projection: the value "flowing along" each edge).
struct EdgeSolution {
  std::vector<BitVector> EdgeValue;
};

/// Solves \p P on the QPG and projects the solution back to every CFG
/// edge. Identical to iterative OUT[source(e)] for every edge e (tested).
EdgeSolution solveOnQpg(const Cfg &G, const ProgramStructureTree &T,
                        const BitVectorProblem &P, Qpg *OutQpg = nullptr);

/// CfgView twin of \c solveOnQpg.
EdgeSolution solveOnQpg(const CfgView &V, const ProgramStructureTree &T,
                        const BitVectorProblem &P, Qpg *OutQpg = nullptr);

/// The per-edge view of a whole-CFG solution (for comparisons).
EdgeSolution edgeView(const Cfg &G, const DataflowSolution &S);

} // namespace pst

#endif // PST_DATAFLOW_QPG_H
