//===- pst/dataflow/Problems.h - Classic bitvector problems -----*- C++ -*-===//
//
// Part of the PST library (see Dataflow.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic dataflow problem instances built from lowered MiniLang:
/// reaching definitions, live variables and available expressions, plus
/// the single-instance variants the QPG sparsity experiment sweeps
/// ("availability of x + y" for one expression at a time, Section 6.2).
///
//===----------------------------------------------------------------------===//

#ifndef PST_DATAFLOW_PROBLEMS_H
#define PST_DATAFLOW_PROBLEMS_H

#include "pst/dataflow/Dataflow.h"
#include "pst/lang/Lower.h"

#include <string>
#include <vector>

namespace pst {

/// Reaching definitions: forward, union meet; one bit per defining
/// instruction (block-level gen/kill). Also returns, in \p DefVarOut if
/// non-null, the variable each bit defines.
BitVectorProblem makeReachingDefs(const LoweredFunction &F,
                                  std::vector<VarId> *DefVarOut = nullptr);

/// Live variables: backward, union meet; one bit per variable. The
/// returned problem is stated forward over \c reverseCfg(F.Graph) — solve
/// it there; In/Out of the reversed graph are the backward Out/In.
BitVectorProblem makeLiveVariables(const LoweredFunction &F);

/// Available expressions: forward, intersect meet; one bit per distinct
/// right-hand-side expression (keyed by printed form). Returns the key
/// table in \p KeysOut if non-null.
BitVectorProblem
makeAvailableExpressions(const LoweredFunction &F,
                         std::vector<std::string> *KeysOut = nullptr);

/// The distinct RHS expression keys of \p F (the sweep domain for the QPG
/// experiment).
std::vector<std::string> expressionKeys(const LoweredFunction &F);

/// Single-instance availability of the expression \p Key: a 1-bit forward
/// intersect problem (most blocks are transparent, which is what makes
/// the QPG small).
BitVectorProblem makeSingleExprAvailability(const LoweredFunction &F,
                                            const std::string &Key);

} // namespace pst

#endif // PST_DATAFLOW_PROBLEMS_H
