//===- pst/dataflow/Seg.h - Sparse evaluation graphs ------------*- C++ -*-===//
//
// Part of the PST library (see Dataflow.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse evaluation graphs after Choi, Cytron & Ferrante [CCF91] — the
/// related work the paper compares its quick propagation graphs against:
/// "these graphs also bypass uninteresting regions of the control flow
/// graph and in general will be smaller than our quick propagation graphs.
/// However, they are more costly to build" (they need dominance frontiers,
/// where the QPG only needs the PST). bench/fig_qpg_sparsity reports both
/// sizes so the trade-off is visible.
///
/// SEG nodes are the entry, every node with a non-identity transfer
/// function, and the iterated dominance frontier of those (the "meet"
/// nodes where distinct sparse values join). Every other node is governed
/// by the unique SEG node whose value reaches it.
///
//===----------------------------------------------------------------------===//

#ifndef PST_DATAFLOW_SEG_H
#define PST_DATAFLOW_SEG_H

#include "pst/dataflow/Dataflow.h"
#include "pst/dom/Dominators.h"

#include <vector>

namespace pst {

/// A sparse evaluation graph over one CFG + problem instance.
struct Seg {
  /// SEG nodes as CFG node ids; Nodes[0] is the CFG entry.
  std::vector<NodeId> Nodes;
  /// CFG node -> index into Nodes, or UINT32_MAX.
  std::vector<uint32_t> NodeIndex;
  /// Edges between SEG nodes (indices into Nodes), deduplicated.
  struct Edge {
    uint32_t Src = 0, Dst = 0;
  };
  std::vector<Edge> Edges;
  std::vector<std::vector<uint32_t>> Preds; // Incoming edge ids per node.
  /// For every CFG node, the SEG node whose OUT value is its IN value
  /// (for SEG members: themselves; their IN comes from SEG edges).
  std::vector<uint32_t> GovernedBy;

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
  uint32_t numEdges() const { return static_cast<uint32_t>(Edges.size()); }
};

/// Builds the SEG for \p P over \p G. Requires dominance frontiers (that
/// is the construction cost the paper contrasts with the QPG's).
Seg buildSeg(const Cfg &G, const DomTree &DT, const DominanceFrontiers &DF,
             const BitVectorProblem &P);

/// CfgView twin of \c buildSeg: identical graphs on a view of the same
/// graph (given the same dominator tree and frontiers).
Seg buildSeg(const CfgView &V, const DomTree &DT,
             const DominanceFrontiers &DF, const BitVectorProblem &P);

/// Solves \p P on its SEG and projects back to a full per-node solution.
/// Identical to \c solveIterative on every node (tested).
DataflowSolution solveOnSeg(const Cfg &G, const DomTree &DT,
                            const DominanceFrontiers &DF,
                            const BitVectorProblem &P, Seg *OutSeg = nullptr);

/// CfgView twin of \c solveOnSeg.
DataflowSolution solveOnSeg(const CfgView &V, const DomTree &DT,
                            const DominanceFrontiers &DF,
                            const BitVectorProblem &P, Seg *OutSeg = nullptr);

} // namespace pst

#endif // PST_DATAFLOW_SEG_H
