//===- pst/dataflow/Dataflow.h - Bitvector dataflow framework ---*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotone gen/kill bitvector dataflow framework with three solvers:
///
///  * \c solveIterative - the textbook worklist iteration (the baseline).
///  * \c solveElimination - the paper's Section 6.2 structural approach:
///    bottom-up over the PST, summarize every region by one gen/kill
///    transfer function (gen/kill functions are closed under composition
///    and meet, and each bit's region function is determined by probing
///    the region body with the empty and the full set); then top-down,
///    propagate concrete values from region entries inward.
///  * QPG solving (see Qpg.h) for sparse single-instance problems.
///
/// Problems are stated forward; backward problems (liveness) are flipped
/// onto the reversed CFG with \c reverseProblem.
///
//===----------------------------------------------------------------------===//

#ifndef PST_DATAFLOW_DATAFLOW_H
#define PST_DATAFLOW_DATAFLOW_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/graph/Cfg.h"
#include "pst/support/BitVector.h"

#include <vector>

namespace pst {

/// One node's gen/kill transfer function: out = Gen | (in & ~Kill).
struct GenKill {
  BitVector Gen, Kill;
};

/// A forward bitvector dataflow problem instance over one CFG.
struct BitVectorProblem {
  enum class MeetKind : uint8_t { Union, Intersect };

  uint32_t NumBits = 0;
  MeetKind Meet = MeetKind::Union;
  /// Transfer[n] for every CFG node n.
  std::vector<GenKill> Transfer;
  /// Value entering the entry node.
  BitVector Boundary;

  /// Applies node \p N's transfer function.
  BitVector apply(NodeId N, const BitVector &In) const {
    BitVector Out = In;
    Out.subtract(Transfer[N].Kill);
    Out.unionWith(Transfer[N].Gen);
    return Out;
  }

  /// The meet identity (empty set for union, full set for intersect).
  BitVector top() const {
    return BitVector(NumBits, Meet == MeetKind::Intersect);
  }

  /// True if node \p N's transfer function is the identity (the QPG's
  /// "transparent" test).
  bool isIdentity(NodeId N) const {
    return Transfer[N].Gen.none() && Transfer[N].Kill.none();
  }
};

/// IN/OUT per node.
struct DataflowSolution {
  std::vector<BitVector> In, Out;

  bool operator==(const DataflowSolution &O) const {
    return In == O.In && Out == O.Out;
  }
};

/// Worklist iteration to the (unique) greatest/least fixed point.
DataflowSolution solveIterative(const Cfg &G, const BitVectorProblem &P);

/// CfgView twin of \c solveIterative: the RPO sweep reads the shared flat
/// pred segments. Identical solutions on a view of the same graph.
DataflowSolution solveIterative(const CfgView &V, const BitVectorProblem &P);

/// PST elimination: bottom-up region summarization, top-down propagation.
/// Produces the same solution as \c solveIterative for every node on every
/// gen/kill problem (tested), touching each region body O(1) times.
DataflowSolution solveElimination(const Cfg &G,
                                  const ProgramStructureTree &T,
                                  const BitVectorProblem &P);

/// CfgView twin of \c solveElimination (region bodies collapse straight
/// off the shared CSR adjacency).
DataflowSolution solveElimination(const CfgView &V,
                                  const ProgramStructureTree &T,
                                  const BitVectorProblem &P);

/// Restates a backward problem over \p G as a forward problem over
/// \c reverseCfg(G) (edge/node ids are preserved by reversal, so the
/// returned solution's In/Out are the backward OUT/IN).
BitVectorProblem reverseProblem(const BitVectorProblem &P);

} // namespace pst

#endif // PST_DATAFLOW_DATAFLOW_H
