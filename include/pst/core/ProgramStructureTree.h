//===- pst/core/ProgramStructureTree.h - The PST ----------------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical SESE regions and the program structure tree (Section 2/3.6).
///
/// A SESE region is an ordered edge pair (a, b) with a dominating b, b
/// postdominating a, and a, b cycle equivalent (Definition 3). *Canonical*
/// regions are the smallest region each edge opens or closes (Definition
/// 5); by Theorem 1 they never partially overlap, so they form a tree under
/// containment — the PST.
///
/// Construction (Section 3.6): compute edge cycle equivalence classes on
/// G + (end -> start); within a class, edges are totally ordered by
/// dominance and a directed DFS from entry visits them in that order, so
/// consecutive pairs are the canonical regions. The same DFS discovers
/// nesting: entering a region's entry edge makes it the current region and
/// the previous current region its parent.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CORE_PROGRAMSTRUCTURETREE_H
#define PST_CORE_PROGRAMSTRUCTURETREE_H

#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/graph/Cfg.h"
#include "pst/graph/CfgView.h"

#include <span>
#include <vector>

namespace pst {

/// Dense index of a PST region.
using RegionId = uint32_t;
/// Sentinel for "no region".
inline constexpr RegionId InvalidRegion = ~RegionId(0);

/// Reusable working memory for PST construction.
///
/// Owns the cycle-equivalence engine (endpoint buffer + solver scratch)
/// and the builder's own transients: the edge-traversal clock, the two DFS
/// walks' visited/stack arrays, and the CSR class->edges grouping. With
/// the buffers warm, a build allocates only what the returned tree owns.
/// Same contract as \c CycleEquivScratch: contents between builds are
/// unspecified, results are independent of prior use, and one scratch must
/// not be shared by two threads at once.
struct PstBuildScratch {
  CycleEquivEngine CE;
  std::vector<uint32_t> EdgeTime;
  std::vector<uint8_t> Visited;
  std::vector<std::pair<NodeId, uint32_t>> Stack;
  // CSR grouping of real edges by cycle-equivalence class, each segment
  // sorted by traversal time.
  std::vector<uint32_t> ClassOff, ClassCursor;
  std::vector<EdgeId> ClassEdges;
  // Region-entry sequence of the replay DFS (feeds the children CSR) and
  // the shared scatter cursor for the tree's per-region CSR arrays.
  std::vector<RegionId> EntrySeq;
  std::vector<uint32_t> RegionCursor;
};

/// One canonical SESE region (or the synthetic root).
///
/// Deliberately flat (16 bytes, no owned containers): child lists and
/// immediate-node lists live in tree-level CSR arrays, reachable through
/// \c ProgramStructureTree::children / \c immediateNodes, so building a
/// tree costs a fixed number of allocations regardless of region count.
struct SeseRegion {
  /// Entry/exit edges; InvalidEdge for the synthetic root region.
  EdgeId EntryEdge = InvalidEdge;
  EdgeId ExitEdge = InvalidEdge;
  /// Parent region; InvalidRegion for the root.
  RegionId Parent = InvalidRegion;
  /// Nesting depth; the root has depth 0, top-level regions depth 1.
  uint32_t Depth = 0;
};

/// The program structure tree of one CFG.
///
/// Region 0 is always a synthetic root that represents the whole procedure
/// (it has no entry/exit edges); real canonical regions are 1..numRegions-1.
///
/// Storage comes in two flavors behind one read API. A *built* tree owns
/// its arrays (the vectors below) and every accessor reads them through
/// bound spans. An *adopted* tree (\c adoptExternal) points the same spans
/// at externally-owned flat arrays — in practice slices of a mapped corpus
/// image (pst/image) — so a mapped PST answers every query with zero copy
/// and zero allocation; it is valid only while that storage lives, and its
/// \c cycleEquiv() is empty (the classes are construction input, not a
/// query surface, and are not serialized).
class ProgramStructureTree {
public:
  ProgramStructureTree() = default;
  /// Copying rebinds the span table: an owning tree's copy owns fresh
  /// arrays; an adopted tree's copy aliases the same external storage.
  ProgramStructureTree(const ProgramStructureTree &O);
  ProgramStructureTree &operator=(const ProgramStructureTree &O);
  /// Moves transfer vector buffers, so bound spans stay valid as-is.
  ProgramStructureTree(ProgramStructureTree &&O) noexcept = default;
  ProgramStructureTree &operator=(ProgramStructureTree &&O) noexcept = default;

  /// Builds the PST of \p G (which must satisfy \c validateCfg) in O(N + E).
  static ProgramStructureTree build(const Cfg &G);

  /// As \c build, with caller-owned working memory. Produces bit-identical
  /// trees to the scratch-less overload; repeated builds through one warm
  /// scratch perform no transient heap allocations. This is the serial
  /// kernel the batch analyzer (pst/runtime) runs per worker thread.
  static ProgramStructureTree build(const Cfg &G, PstBuildScratch &Scratch);

  /// As \c build, over a frozen CSR view of the graph: cycle equivalence
  /// consumes the shared adjacency directly and both construction DFS
  /// walks iterate flat succ segments. Bit-identical trees to the \c Cfg
  /// overloads on a view of the same graph.
  static ProgramStructureTree build(const CfgView &V, PstBuildScratch &Scratch);

  /// As \c build, but with the cycle-equivalence classes already computed
  /// (\p CE must come from a return-edge run on \p G). This is the plumbing
  /// that lets callers owning a re-entrant \c CycleEquivEngine (the
  /// incremental PST rebuilds many sub-CFGs per commit) avoid the per-run
  /// buffer allocation inside \c computeCycleEquivalence.
  static ProgramStructureTree buildWithCycleEquiv(const Cfg &G,
                                                  CycleEquivResult CE);

  /// Scratch-backed twin of \c buildWithCycleEquiv.
  static ProgramStructureTree buildWithCycleEquiv(const Cfg &G,
                                                  CycleEquivResult CE,
                                                  PstBuildScratch &Scratch);

  /// CfgView twin of the scratch-backed \c buildWithCycleEquiv.
  static ProgramStructureTree buildWithCycleEquiv(const CfgView &V,
                                                  CycleEquivResult CE,
                                                  PstBuildScratch &Scratch);

  /// Wraps externally-owned arrays (with exactly the layout a built tree's
  /// arrays have) as a tree, with no copy or validation. The frozen-PST
  /// entry point of the corpus image: \c CorpusImage::pst returns one of
  /// these over its mapped sections, and every existing consumer that
  /// takes a \c const \c ProgramStructureTree& runs on it unmodified.
  static ProgramStructureTree
  adoptExternal(std::span<const SeseRegion> Regions,
                std::span<const RegionId> NodeRegion,
                std::span<const RegionId> EdgeRegion,
                std::span<const RegionId> EntryOf,
                std::span<const RegionId> ExitOf,
                std::span<const uint32_t> ChildOff,
                std::span<const RegionId> ChildVal,
                std::span<const uint32_t> ImmOff,
                std::span<const NodeId> ImmVal);

  RegionId root() const { return 0; }
  uint32_t numRegions() const { return static_cast<uint32_t>(RegionsA.size()); }
  /// Number of real canonical regions (excludes the synthetic root).
  uint32_t numCanonicalRegions() const { return numRegions() - 1; }

  const SeseRegion &region(RegionId R) const { return RegionsA[R]; }

  /// Innermost region containing node \p N (Definition 6); never invalid
  /// (the root contains everything).
  RegionId regionOfNode(NodeId N) const { return NodeRegionA[N]; }

  /// Innermost region whose body contains edge \p E. By convention an entry
  /// edge belongs to the region it opens and an exit edge to the region
  /// that encloses the boundary (its region's parent, or the sequentially
  /// following region when the edge also opens one).
  RegionId regionOfEdge(EdgeId E) const { return EdgeRegionA[E]; }

  /// Region whose entry edge is \p E, or InvalidRegion.
  RegionId regionEnteredBy(EdgeId E) const { return EntryOfA[E]; }
  /// Region whose exit edge is \p E, or InvalidRegion.
  RegionId regionExitedBy(EdgeId E) const { return ExitOfA[E]; }

  /// Immediately nested regions of \p R, in entry-edge traversal order.
  /// (A CSR segment of the tree-level child array; stable while the tree
  /// lives.)
  std::span<const RegionId> children(RegionId R) const {
    return ChildValA.subspan(ChildOffA[R], ChildOffA[R + 1] - ChildOffA[R]);
  }

  /// Nodes whose *innermost* region is \p R (i.e. excluding nodes hidden
  /// inside nested regions), in discovery order.
  std::span<const NodeId> immediateNodes(RegionId R) const {
    return ImmValA.subspan(ImmOffA[R], ImmOffA[R + 1] - ImmOffA[R]);
  }

  /// All nodes contained in \p R, including those of nested regions.
  std::vector<NodeId> allNodes(RegionId R) const;

  /// True if \p Inner is \p Outer or nested (transitively) inside it.
  bool contains(RegionId Outer, RegionId Inner) const;

  /// \name Flat array access
  /// The tree's whole arrays (the per-region accessors above read segments
  /// of these). For bulk consumers — the corpus image serializer memcpys
  /// them into its arena — and for whole-tree comparisons in tests.
  /// @{
  std::span<const SeseRegion> regionTable() const { return RegionsA; }
  std::span<const RegionId> nodeRegionTable() const { return NodeRegionA; }
  std::span<const RegionId> edgeRegionTable() const { return EdgeRegionA; }
  std::span<const RegionId> entryOfTable() const { return EntryOfA; }
  std::span<const RegionId> exitOfTable() const { return ExitOfA; }
  std::span<const uint32_t> childOffTable() const { return ChildOffA; }
  std::span<const RegionId> childValTable() const { return ChildValA; }
  std::span<const uint32_t> immOffTable() const { return ImmOffA; }
  std::span<const NodeId> immValTable() const { return ImmValA; }
  /// @}

  /// The edge cycle equivalence classes the construction was based on.
  /// Empty for adopted (mapped) trees: the classes are construction input,
  /// not part of the serialized query surface.
  const CycleEquivResult &cycleEquiv() const { return CE; }

  /// True if this tree aliases external storage (\c adoptExternal) rather
  /// than owning its arrays.
  bool isExternal() const { return External; }

private:
  // Shared construction kernel for the Cfg and CfgView overloads; defined
  // (and only instantiated) in ProgramStructureTree.cpp.
  template <class GraphT>
  static ProgramStructureTree buildImpl(const GraphT &G, CycleEquivResult CE,
                                        PstBuildScratch &S);

  /// Points every accessor span at the owned vectors. Called once when a
  /// build finishes and again whenever an owning tree is copied.
  void bindOwned();

  std::vector<SeseRegion> Regions;
  std::vector<RegionId> NodeRegion;
  std::vector<RegionId> EdgeRegion;
  std::vector<RegionId> EntryOf, ExitOf;
  // Children and immediate nodes as tree-level CSR arrays (region R's
  // segment is [Off[R], Off[R+1])): two allocations each instead of one
  // vector per region.
  std::vector<uint32_t> ChildOff;
  std::vector<RegionId> ChildVal;
  std::vector<uint32_t> ImmOff;
  std::vector<NodeId> ImmVal;
  CycleEquivResult CE;

  // The accessor table: spans over either the vectors above (owning trees)
  // or external storage (adopted trees). Construction fills the vectors
  // first and binds these once at the end.
  std::span<const SeseRegion> RegionsA;
  std::span<const RegionId> NodeRegionA;
  std::span<const RegionId> EdgeRegionA;
  std::span<const RegionId> EntryOfA, ExitOfA;
  std::span<const uint32_t> ChildOffA;
  std::span<const RegionId> ChildValA;
  std::span<const uint32_t> ImmOffA;
  std::span<const NodeId> ImmValA;
  bool External = false;
};

} // namespace pst

#endif // PST_CORE_PROGRAMSTRUCTURETREE_H
