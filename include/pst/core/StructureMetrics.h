//===- pst/core/StructureMetrics.h - Figure 5/6/7/9 metrics -----*- C++ -*-===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-procedure measurements behind the paper's empirical section
/// (Figures 5, 6, 7 and 9): region depth distribution, PST size and depth
/// versus procedure size, weighted region-kind proportions, and maximum
/// collapsed region size.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CORE_STRUCTUREMETRICS_H
#define PST_CORE_STRUCTUREMETRICS_H

#include "pst/core/RegionAnalysis.h"
#include "pst/support/Histogram.h"

#include <array>

namespace pst {

/// Number of RegionKind enumerators (for flat arrays keyed by kind).
inline constexpr size_t NumRegionKinds = 7;

/// Everything the figure benches need from one procedure's PST.
struct PstStats {
  /// Canonical regions (the paper's "SESE regions"; the synthetic root is
  /// not counted).
  uint32_t NumRegions = 0;
  /// Histogram of canonical region depths (depth 1 = top level, matching
  /// the paper's depth axis starting at 1).
  Histogram DepthHist;
  uint32_t MaxDepth = 0;
  double AvgDepth = 0.0;
  /// Maximum collapsed-body size over all regions (immediate nodes plus
  /// collapsed children), the paper's "maximum region size" (Figure 9).
  uint32_t MaxRegionSize = 0;
  /// Figure 7: sum of region weights per kind (weight = number of nested
  /// maximal regions; blocks weigh 1).
  std::array<uint64_t, NumRegionKinds> WeightedKind = {};
  /// True when no region is a dag or cyclic-unstructured (the paper found
  /// 182 of 254 procedures completely structured).
  bool FullyStructured = true;
};

/// Computes all Figure 5/6/7/9 measurements for one procedure.
PstStats computePstStats(const Cfg &G, const ProgramStructureTree &T);

} // namespace pst

#endif // PST_CORE_STRUCTUREMETRICS_H
