//===- pst/core/PstDominators.h - D&C dominators via the PST ----*- C++ -*-===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.3 of the paper sketches a divide-and-conquer dominator
/// algorithm: "first, build the dominator tree of each SESE region, and
/// then piece together the local trees using global structure (nesting)
/// information in the PST". This implements that sketch.
///
/// Why it works: a SESE region has a single entrance, so (a) the entry
/// node's immediate dominator is simply the source of the region's entry
/// edge, and (b) dominance between two nodes of a region body is decided
/// by the region-internal paths alone (every path from the procedure entry
/// ends with a segment that enters through the entry edge and stays
/// inside). A collapsed child acts as one step; when a node's local idom
/// is a collapsed child, the real idom is the source of that child's exit
/// edge (the last node every path through the child visits).
///
/// The practical payoff the paper anticipates is incrementality: editing
/// one region only invalidates that region's local tree.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CORE_PSTDOMINATORS_H
#define PST_CORE_PSTDOMINATORS_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/dom/Dominators.h"

namespace pst {

/// Builds the dominator tree of \p G by solving each PST region's
/// collapsed body independently and stitching the results. Produces
/// exactly the tree of \c DomTree::buildIterative (tested).
DomTree buildDominatorsViaPst(const Cfg &G, const ProgramStructureTree &T);

/// CfgView twin: region bodies are collapsed straight off the shared CSR
/// adjacency. Identical trees to the \c Cfg overload on a view of the same
/// graph.
DomTree buildDominatorsViaPst(const CfgView &V, const ProgramStructureTree &T);

} // namespace pst

#endif // PST_CORE_PSTDOMINATORS_H
