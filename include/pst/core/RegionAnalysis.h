//===- pst/core/RegionAnalysis.h - Collapse & classify regions --*- C++ -*-===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Region bodies with nested regions collapsed to single quotient nodes,
/// and the pattern classification behind the paper's Figure 7 ("a simple
/// pattern-matching pass" identifying each region as a basic block, a case
/// construct, a loop, a dag, or a cyclic unstructured region).
///
/// The collapsed body is the workhorse for every divide-and-conquer
/// application in Section 6: per-region SSA placement treats a collapsed
/// child as one statement, and the elimination dataflow solver summarizes a
/// child region by one transfer function.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CORE_REGIONANALYSIS_H
#define PST_CORE_REGIONANALYSIS_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/graph/Cfg.h"

#include <string>
#include <vector>

namespace pst {

/// A region body where each immediately nested region is one node.
struct CollapsedBody {
  /// One quotient node: either an immediate CFG node of the region or a
  /// collapsed child region.
  struct QNode {
    bool IsRegion = false;
    NodeId Node = InvalidNode;     // Valid when !IsRegion.
    RegionId Region = InvalidRegion; // Valid when IsRegion.
  };

  std::vector<QNode> Nodes;
  /// Quotient edges (parallel edges preserved), each tagged with the CFG
  /// edge it came from.
  struct QEdge {
    uint32_t Src = 0, Dst = 0;
    EdgeId CfgEdge = InvalidEdge;
  };
  std::vector<QEdge> Edges;
  /// Quotient index of the node the region's entry edge targets, and of
  /// the node its exit edge leaves. For the root region these are the CFG
  /// entry/exit.
  uint32_t EntryQ = 0, ExitQ = 0;

  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }
};

/// Builds the collapsed body of \p R. O(size of the body).
CollapsedBody collapseRegion(const Cfg &G, const ProgramStructureTree &T,
                             RegionId R);

/// CfgView twin: identical bodies (same quotient node and edge order) on a
/// view of the same graph.
CollapsedBody collapseRegion(const CfgView &V, const ProgramStructureTree &T,
                             RegionId R);

/// Region kinds for Figure 7. Kinds match the paper's buckets; IfThen and
/// IfThenElse are reported separately and can be merged into the paper's
/// implicit conditional bucket by callers.
enum class RegionKind {
  Block,              ///< Single quotient node, no edges.
  IfThen,             ///< cond -> then -> join, cond -> join.
  IfThenElse,         ///< cond -> {then, else} -> join.
  Case,               ///< cond with >= 3 arms converging on one join.
  Loop,               ///< Cyclic but reducible body.
  Dag,                ///< Acyclic, none of the shapes above.
  CyclicUnstructured, ///< Cyclic and irreducible.
};

/// Human-readable kind name ("block", "if-then", ...).
const char *regionKindName(RegionKind K);

/// Classifies the collapsed body of region \p R.
RegionKind classifyRegion(const Cfg &G, const ProgramStructureTree &T,
                          RegionId R);

/// Figure 7's weight: the number of nested maximal SESE regions, with
/// blocks weighing one ("an if-then-else has a weight of two").
uint32_t regionWeight(const ProgramStructureTree &T, RegionId R);

/// Renders the PST as an indented outline (for examples and debugging).
std::string formatPst(const Cfg &G, const ProgramStructureTree &T);

} // namespace pst

#endif // PST_CORE_REGIONANALYSIS_H
