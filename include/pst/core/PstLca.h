//===- pst/core/PstLca.h - O(1) region LCA over the PST ---------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant-time region least-common-ancestor queries over a
/// ProgramStructureTree.
///
/// The paper's promise is that region queries are O(1) once the PST is
/// built; the serving layer's `region a b` query is an LCA over the two
/// nodes' innermost regions, and a parent-chain walk makes it O(depth).
/// PstLca restores the constant bound with the classic Euler-tour +
/// sparse-table reduction: an Euler tour of the tree (length 2R-1 for R
/// regions) turns LCA into a range-minimum query over tour depths, and a
/// sparse table of power-of-two window minima answers any RMQ with two
/// overlapping lookups. Construction is O(R log R) time and space; queries
/// are two array reads and a comparison.
///
/// The structure is self-contained (it copies nothing but region depths
/// out of the tree it indexes), so it can outlive the tree spans it was
/// built from — the serving layer's DerivedCache relies on that.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CORE_PSTLCA_H
#define PST_CORE_PSTLCA_H

#include "pst/core/ProgramStructureTree.h"

#include <cstdint>
#include <vector>

namespace pst {

/// Euler-tour + sparse-table LCA index over one PST.
class PstLca {
public:
  PstLca() = default;

  /// Builds the index for \p T. O(R log R); \p T is only read during
  /// construction and need not outlive the index.
  explicit PstLca(const ProgramStructureTree &T);

  bool empty() const { return Euler.empty(); }

  /// Least common ancestor of regions \p A and \p B: the innermost region
  /// containing both. O(1). Equals the parent-chain walk exactly.
  RegionId lca(RegionId A, RegionId B) const;

  /// Maximum region depth in the indexed tree (root is depth 0). A
  /// byproduct of the tour; memoized here so `regions` summaries need not
  /// rescan the region table.
  uint32_t maxDepth() const { return MaxDepth; }

  /// Approximate heap footprint in bytes (for cache accounting).
  size_t bytes() const;

private:
  /// Tour of region ids: each region appears on entry and again after
  /// each child returns (length 2R-1).
  std::vector<RegionId> Euler;
  /// Depth of Euler[i] in the tree.
  std::vector<uint32_t> Depth;
  /// First tour position of each region.
  std::vector<uint32_t> First;
  /// floor(log2(len)) for len in [1, tour length].
  std::vector<uint8_t> Log2;
  /// Sparse table, level-major: Table[L * Width + i] is the tour index of
  /// the minimum-depth entry in [i, i + 2^L).
  std::vector<uint32_t> Table;
  uint32_t Width = 0;
  uint32_t MaxDepth = 0;
};

} // namespace pst

#endif // PST_CORE_PSTLCA_H
