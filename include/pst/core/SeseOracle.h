//===- pst/core/SeseOracle.h - Definition-level SESE oracle -----*- C++ -*-===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Brute-force implementations of Definitions 2/3/5/6 for cross-checking
/// the linear-time pipeline on small graphs. Every predicate is a direct
/// path-existence query; costs are polynomial and only suitable for graphs
/// with tens of edges (which is what the property tests use).
///
//===----------------------------------------------------------------------===//

#ifndef PST_CORE_SESEORACLE_H
#define PST_CORE_SESEORACLE_H

#include "pst/graph/Cfg.h"

#include <vector>

namespace pst {

/// True if some path from \p From to \p To avoids edge \p Avoid. The empty
/// path counts when From == To.
bool existsPathAvoidingEdge(const Cfg &G, NodeId From, NodeId To,
                            EdgeId Avoid);

/// Edge dominance (Definition 2 extended to edges): every path from entry
/// that traverses \p B traverses \p A first.
bool edgeDominatesBrute(const Cfg &G, EdgeId A, EdgeId B);

/// Edge postdominance: every path that traverses \p A later traverses \p B.
bool edgePostDominatesBrute(const Cfg &G, EdgeId B, EdgeId A);

/// Definition 3: (A, B) is a SESE region of \p G.
bool isSeseRegionBrute(const Cfg &G, EdgeId A, EdgeId B);

/// Definition 6: node \p N is contained in region (A, B), i.e. A dominates
/// N and B postdominates N.
bool nodeInRegionBrute(const Cfg &G, EdgeId A, EdgeId B, NodeId N);

/// All canonical SESE regions (Definition 5) as (entry, exit) pairs, sorted.
std::vector<std::pair<EdgeId, EdgeId>> canonicalRegionsBrute(const Cfg &G);

} // namespace pst

#endif // PST_CORE_SESEORACLE_H
