//===- pst/ssa/SsaBuilder.h - Full SSA construction -------------*- C++ -*-===//
//
// Part of the PST library (see PhiPlacement.h for the reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full SSA construction on lowered MiniLang: phi placement (either
/// strategy) followed by the standard dominator-tree renaming walk, plus a
/// structural verifier used by tests.
///
/// Version numbering: for every variable, version 0 is the implicit
/// "undefined" value live at function entry; real definitions and phis get
/// versions 1, 2, ... in renaming order.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SSA_SSABUILDER_H
#define PST_SSA_SSABUILDER_H

#include "pst/ssa/PhiPlacement.h"

#include <string>
#include <vector>

namespace pst {

/// One phi function in SSA form.
struct SsaPhi {
  VarId Var = InvalidVar;
  uint32_t DefVersion = 0;
  /// One incoming (cfg edge, version) pair per predecessor edge of the
  /// block, in predEdges order.
  std::vector<std::pair<EdgeId, uint32_t>> Incoming;
};

/// Version annotations for one original instruction.
struct SsaInstrVersions {
  uint32_t DefVersion = 0;             ///< Meaningful when the instr defines.
  std::vector<uint32_t> UseVersions;   ///< Parallel to Instruction::Uses.
};

/// A function in SSA form: the original LoweredFunction plus phis and
/// version annotations.
struct SsaForm {
  /// Phis[n] = phi functions at block n.
  std::vector<std::vector<SsaPhi>> Phis;
  /// Versions[n][i] annotates Code[n][i].
  std::vector<std::vector<SsaInstrVersions>> Versions;
  /// Number of versions per variable (>= 1; version 0 is the undef).
  std::vector<uint32_t> NumVersions;

  /// Total number of phi functions.
  uint64_t numPhis() const {
    uint64_t N = 0;
    for (const auto &B : Phis)
      N += B.size();
    return N;
  }
};

/// Builds SSA form using the given phi placement (callers pick classic or
/// PST-based; Theorem 9 makes them interchangeable).
SsaForm buildSsa(const LoweredFunction &F, const PhiPlacement &P);

/// Verifies SSA invariants: every version defined exactly once, every use
/// version dominated by its definition, phi incoming versions flowing from
/// the right predecessors. Returns true and leaves \p Why empty on
/// success.
bool verifySsa(const LoweredFunction &F, const SsaForm &S,
               std::string *Why = nullptr);

/// Renders SSA form as readable text ("x.2 = phi(x.1, x.3)", ...).
std::string formatSsa(const LoweredFunction &F, const SsaForm &S);

} // namespace pst

#endif // PST_SSA_SSABUILDER_H
