//===- pst/ssa/PhiPlacement.h - Phi placement (classic & PST) ---*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phi-function placement for SSA construction, two ways:
///
///  * \c placePhisClassic - Cytron et al.: iterated dominance frontiers of
///    the definition blocks, per variable, on the whole CFG.
///  * \c placePhisPst - the paper's Section 6.1 divide-and-conquer: mark
///    the PST regions containing definitions, collapse nested regions to
///    single statements (a marked child acts as a definition, an unmarked
///    one as a no-op), and run placement inside each marked region with
///    the region entry treated as a definition (Theorem 9 guarantees the
///    union over marked regions equals the classic result). Only marked
///    regions are ever touched, which is the sparsity Figure 10 measures.
///
//===----------------------------------------------------------------------===//

#ifndef PST_SSA_PHIPLACEMENT_H
#define PST_SSA_PHIPLACEMENT_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/lang/Lower.h"

#include <vector>

namespace pst {

/// Result of placing phis for every variable of one function.
struct PhiPlacement {
  /// PhiBlocks[v] = blocks needing a phi for variable v, sorted.
  std::vector<std::vector<NodeId>> PhiBlocks;
  /// Figure-10 instrumentation: per variable, the number of PST regions
  /// examined (marked), and the total number of regions. The classic
  /// algorithm reports Total for every variable (it looks at the whole
  /// graph). Index parallel to PhiBlocks.
  std::vector<uint32_t> RegionsExamined;
  uint32_t RegionsTotal = 0;
};

/// Cytron et al. iterated-dominance-frontier placement on the full CFG.
PhiPlacement placePhisClassic(const LoweredFunction &F);

/// As \c placePhisClassic, with dominators and frontiers computed over a
/// frozen CSR view of \c F.Graph (\p V must view that graph). Identical
/// placements.
PhiPlacement placePhisClassic(const LoweredFunction &F, const CfgView &V);

/// The paper's PST-based placement (Section 6.1, Theorem 9).
PhiPlacement placePhisPst(const LoweredFunction &F,
                          const ProgramStructureTree &T);

/// As \c placePhisPst, collapsing region bodies off a frozen CSR view of
/// \c F.Graph (\p V must view that graph). Identical placements.
PhiPlacement placePhisPst(const LoweredFunction &F, const CfgView &V,
                          const ProgramStructureTree &T);

} // namespace pst

#endif // PST_SSA_PHIPLACEMENT_H
