//===- pst/prof/ParallelismPlanner.h - Work/span region planner -*- C++ -*-===//
//
// Part of the PST library (see RegionProfile.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kremlin-style parallelism planning on top of a \c RegionProfile: score
/// every profiled region by its *self*-parallelism (work per entry over
/// estimated span per entry, children priced as serial black boxes) and
/// its *coverage* (share of total dynamic work), then emit a ranked plan
/// of non-overlapping regions.
///
/// The PST is what makes the plan well-formed: canonical SESE regions
/// nest, so "non-overlapping" is exactly "no planned region is an
/// ancestor or descendant of another", and coverage never double-counts —
/// the selected regions' inclusive costs are disjoint slices of the total
/// work.
///
//===----------------------------------------------------------------------===//

#ifndef PST_PROF_PARALLELISMPLANNER_H
#define PST_PROF_PARALLELISMPLANNER_H

#include "pst/prof/RegionProfile.h"

#include <vector>

namespace pst {

/// Thresholds for plan admission.
struct PlannerOptions {
  /// Minimum share of total work a region must cover to be considered.
  double MinCoverage = 0.005;
  /// Minimum self-parallelism (1 = perfectly serial).
  double MinSelfParallelism = 1.05;
  /// Plan size cap.
  uint32_t MaxPlanEntries = 16;
};

/// One planned region, with the measurements that ranked it.
struct PlanEntry {
  RegionId Region = InvalidRegion;
  RegionKind Kind = RegionKind::Block;
  /// Inclusive dynamic instruction count across the workload.
  uint64_t Work = 0;
  uint64_t Entries = 0;
  /// Work / total work of the workload, in [0, 1].
  double Coverage = 0;
  double SelfParallelism = 1;
  /// Mean iterations per entry (cyclic regions; 0 otherwise).
  double MeanIterations = 0;
  /// The ranking key: Coverage * (1 - 1/SelfParallelism) — the fraction of
  /// total work this region's own parallelism could ideally remove.
  double Benefit = 0;
};

/// A ranked, nesting-disjoint parallelization plan.
struct ParallelismPlan {
  uint64_t TotalWork = 0;
  /// Regions that passed the admission thresholds (before the disjointness
  /// filter).
  uint32_t CandidatesConsidered = 0;
  /// Selected regions, best first.
  std::vector<PlanEntry> Entries;
};

/// Plans over a finalized profile. Deterministic: candidates are ranked by
/// (Benefit descending, RegionId ascending) and admitted greedily, skipping
/// any region that nests inside — or around — an already planned one. The
/// root region is never a candidate (parallelizing "everything" is not a
/// plan).
ParallelismPlan planParallelism(const RegionProfile &P,
                                const PlannerOptions &Opts = {});

} // namespace pst

#endif // PST_PROF_PARALLELISMPLANNER_H
