//===- pst/prof/ProfileReport.h - Profile & plan reporting ------*- C++ -*-===//
//
// Part of the PST library (see RegionProfile.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering for region profiles and parallelism plans: an indented text
/// tree (profile), a ranked text list (plan), and one combined JSON
/// document. The JSON is byte-deterministic in the profile: counts are
/// integers, derived ratios are computed the same way every time and
/// printed with a fixed \c %.6f format, regions appear in ascending id
/// order and plan entries in rank order. Tools and the bench cross-check
/// this determinism by serializing twice.
///
//===----------------------------------------------------------------------===//

#ifndef PST_PROF_PROFILEREPORT_H
#define PST_PROF_PROFILEREPORT_H

#include "pst/prof/ParallelismPlanner.h"
#include "pst/prof/RegionProfile.h"

#include <string>

namespace pst {

/// The region tree with each region's dynamics (requires a finalized
/// profile).
std::string formatRegionProfile(const RegionProfile &P);

/// The ranked plan as a numbered list (one line per entry).
std::string formatParallelismPlan(const RegionProfile &P,
                                  const ParallelismPlan &Plan);

/// Profile + plan as one JSON object (see file comment for the
/// determinism contract).
std::string profileToJson(const RegionProfile &P, const ParallelismPlan &Plan);

} // namespace pst

#endif // PST_PROF_PROFILEREPORT_H
