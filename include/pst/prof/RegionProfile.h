//===- pst/prof/RegionProfile.h - Dynamic region cost profile ---*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the region story: fold interpreter execution
/// profiles (per-block entry counts and per-edge traversal counts from
/// \c runLowered) onto the PST, so every canonical SESE region carries its
/// observed dynamic cost.
///
/// The attribution rules are the natural ones the SESE discipline makes
/// exact:
///
///  * A region is *entered* once per traversal of its entry edge, and on a
///    complete run entered exactly as often as it is *exited* (the entry
///    and exit edge are cycle equivalent in G + (end -> start), and a
///    finished trace plus the return edge is a closed walk).
///  * A region's *self cost* is the dynamic instruction count of the blocks
///    whose innermost region it is: sum over immediate nodes of
///    entries(block) * |instructions(block)| — exactly the interpreter's
///    step counter restricted to those blocks.
///  * Its *inclusive cost* adds the inclusive cost of every child region;
///    the root's inclusive cost equals the workload's total step count.
///  * A cyclic region's *iterations* count entry-edge traversals plus
///    traversals of the back edges of its collapsed body (for a natural
///    while loop: header executions, i.e. trip count + 1 per entry).
///
/// Profiles aggregate any number of runs (a workload of input vectors);
/// everything is integer arithmetic over the traversal counts, so a
/// profile is bit-deterministic in the workload.
///
//===----------------------------------------------------------------------===//

#ifndef PST_PROF_REGIONPROFILE_H
#define PST_PROF_REGIONPROFILE_H

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/lang/Interp.h"
#include "pst/obs/Telemetry.h"

#include <vector>

namespace pst {

/// Aggregated dynamic behavior of one PST region across a workload.
struct RegionDynamics {
  /// Traversals of the region's entry edge (the root region: number of
  /// finished runs).
  uint64_t Entries = 0;
  /// Traversals of the exit edge. Equals \c Entries on complete runs — the
  /// SESE soundness invariant the tests pin.
  uint64_t Exits = 0;
  /// Dynamic instructions executed in the region's immediate blocks.
  uint64_t SelfCost = 0;
  /// SelfCost plus the inclusive cost of every child region.
  uint64_t InclusiveCost = 0;
  /// Cyclic regions: entries + back-edge traversals of the collapsed body
  /// (header executions for a natural while loop). 0 for acyclic regions.
  uint64_t Iterations = 0;
  /// True when the collapsed body is cyclic (kind loop or cyclic).
  bool Cyclic = false;
  /// Figure-7 shape of the collapsed body (static, cached here for
  /// reporting).
  RegionKind Kind = RegionKind::Block;
  /// Estimated critical path per entry, in dynamic instructions: the
  /// longest path through the collapsed body's acyclic skeleton, each
  /// quotient node weighted by its observed execution frequency, child
  /// regions priced at their mean inclusive cost per entry (serial —
  /// a child's own parallelism is credited to the child, Kremlin-style
  /// *self*-parallelism). For cyclic regions the depth is normalized per
  /// iteration instead of per entry: iterations are the parallelism axis.
  double SpanPerEntry = 0;
  /// Per-run iteration totals of cyclic regions (the loop trip-count
  /// statistics; one sample per run that entered the region).
  ValueStats RunIterations;

  /// Mean inclusive work per entry.
  double workPerEntry() const {
    return Entries ? static_cast<double>(InclusiveCost) /
                         static_cast<double>(Entries)
                   : 0.0;
  }

  /// Kremlin-style self-parallelism: work per entry over span per entry,
  /// clamped to >= 1. 1 for never-entered regions.
  double selfParallelism() const {
    if (!Entries || SpanPerEntry <= 0)
      return 1.0;
    double Sp = workPerEntry() / SpanPerEntry;
    return Sp < 1.0 ? 1.0 : Sp;
  }

  /// Mean iterations per entry (cyclic regions; 0 otherwise).
  double meanIterations() const {
    return Entries && Cyclic
               ? static_cast<double>(Iterations) / static_cast<double>(Entries)
               : 0.0;
  }
};

/// A dynamic cost profile of one lowered function over a workload of
/// interpreter runs, attributed to the canonical SESE regions of its PST.
///
/// Usage: construct from the function and its PST (both must outlive the
/// profile), feed runs via \c addRun / \c runAndAdd, then \c finalize()
/// once; the per-region dynamics are valid from then on.
class RegionProfile {
public:
  /// \p T must be the PST of \p F.Graph.
  RegionProfile(const LoweredFunction &F, const ProgramStructureTree &T);

  /// Folds one *finished* run into the aggregate. The run must carry edge
  /// counts (\c runLowered with CountEdges = true). Returns false — and
  /// accumulates nothing — for unfinished or edge-count-free runs.
  bool addRun(const CfgExecResult &Run);

  /// Convenience: executes the function on \p Args (edge counting on) and
  /// folds the run in if it finished. Returns the run either way.
  CfgExecResult runAndAdd(const std::vector<int64_t> &Args,
                          uint64_t MaxSteps = 1 << 20);

  /// Computes the per-region dynamics from the aggregated counts. Call
  /// once after the last run; accessors below require it.
  void finalize();

  const LoweredFunction &function() const { return *F; }
  const ProgramStructureTree &pst() const { return *T; }

  /// Number of finished runs folded in.
  uint64_t numRuns() const { return NumRuns; }
  /// Total dynamic instructions across all folded runs (== the root
  /// region's inclusive cost).
  uint64_t totalWork() const { return TotalSteps; }

  /// Aggregated per-block entry counts / per-edge traversal counts.
  const std::vector<uint64_t> &blockTotals() const { return BlockTotal; }
  const std::vector<uint64_t> &edgeTotals() const { return EdgeTotal; }

  bool finalized() const { return Finalized; }
  /// Dynamics of region \p R (requires \c finalize()).
  const RegionDynamics &dynamics(RegionId R) const;
  uint32_t numRegions() const { return T->numRegions(); }

private:
  /// Static shape of one region's collapsed body, computed once up front:
  /// the quotient nodes, the acyclic skeleton, and the back edges whose
  /// traversal counts define the iteration axis.
  struct RegionShape {
    CollapsedBody Body;
    RegionKind Kind = RegionKind::Block;
    bool Cyclic = false;
    /// CFG edge ids of the quotient back edges (DFS classification).
    std::vector<EdgeId> BackCfgEdges;
    /// Quotient edges that survive back-edge removal, as (src, dst).
    std::vector<std::pair<uint32_t, uint32_t>> DagEdges;
    /// Topological order of the quotient nodes in the acyclic skeleton.
    std::vector<uint32_t> Topo;
  };

  void computeShapes();

  const LoweredFunction *F;
  const ProgramStructureTree *T;
  /// BlockCost[n] = |instructions of block n| (the unit cost model: one
  /// interpreter step per instruction).
  std::vector<uint64_t> BlockCost;
  std::vector<RegionShape> Shapes;

  uint64_t NumRuns = 0;
  uint64_t TotalSteps = 0;
  std::vector<uint64_t> BlockTotal;
  std::vector<uint64_t> EdgeTotal;

  bool Finalized = false;
  std::vector<RegionDynamics> Dyn;
};

} // namespace pst

#endif // PST_PROF_REGIONPROFILE_H
