//===- pst/obs/ScopedTimer.h - RAII pipeline spans --------------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII timing spans. A \c ScopedTimer marks one dynamic extent of a
/// pipeline stage ("cycleequiv.run", "pst.build", ...): construction
/// pushes the name onto the calling thread's span stack, destruction pops
/// it, folds the duration into the registry's per-name timer statistics,
/// and — when \c Telemetry::traceEnabled() — retains a \c SpanEvent for
/// chrome-trace export. Nesting therefore falls out of scoping: a PST
/// build's span contains the cycle-equivalence span it runs.
///
/// Thread-safety contract: a ScopedTimer must be destroyed on the thread
/// that constructed it (automatic storage guarantees this); spans on
/// different threads are recorded into independent thread-local sinks with
/// no shared mutable state, so instrumented code needs no extra locking.
///
/// Cost: when telemetry is runtime-disabled, constructor and destructor
/// are one relaxed atomic load each; with PST_TELEMETRY=0 the PST_SPAN
/// macro compiles away entirely.
///
//===----------------------------------------------------------------------===//

#ifndef PST_OBS_SCOPEDTIMER_H
#define PST_OBS_SCOPEDTIMER_H

#include "pst/obs/Telemetry.h"

namespace pst {

namespace obs_detail {
/// Pushes a frame on the calling thread's span stack; returns the start
/// timestamp (ns since the registry epoch).
uint64_t spanBegin(const char *Name);
/// Pops the frame and records the completed span. A non-null \p ArgName
/// attaches (ArgName, ArgValue) to the retained SpanEvent.
void spanEnd(const char *Name, uint64_t StartNs,
             const char *ArgName = nullptr, uint64_t ArgValue = 0);
} // namespace obs_detail

/// One RAII span. \p Name must be a string literal (or outlive the
/// program); it doubles as the timer-statistics key and the trace label.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Name)
      : Name(Telemetry::enabled() ? Name : nullptr) {
    if (this->Name)
      StartNs = obs_detail::spanBegin(this->Name);
  }

  /// As above, attaching (\p ArgName, \p ArgValue) to the retained span
  /// (both must be string literals / outlive the program; the value is
  /// read at destruction). Used to correlate trace spans with logical
  /// work units, e.g. the incremental engine's commit batch ids.
  ScopedTimer(const char *Name, const char *ArgName, uint64_t ArgValue)
      : Name(Telemetry::enabled() ? Name : nullptr), ArgName(ArgName),
        ArgValue(ArgValue) {
    if (this->Name)
      StartNs = obs_detail::spanBegin(this->Name);
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() {
    if (Name)
      obs_detail::spanEnd(Name, StartNs, ArgName, ArgValue);
  }

private:
  /// Null when telemetry was disabled at construction (the span then stays
  /// inert even if telemetry is enabled mid-extent, keeping the stack
  /// balanced).
  const char *Name;
  const char *ArgName = nullptr;
  uint64_t ArgValue = 0;
  uint64_t StartNs = 0;
};

} // namespace pst

//===----------------------------------------------------------------------===//
// PST_SPAN(Name): time the rest of the enclosing scope as one span.
//===----------------------------------------------------------------------===//

#if PST_TELEMETRY
#define PST_OBS_CONCAT_IMPL(A, B) A##B
#define PST_OBS_CONCAT(A, B) PST_OBS_CONCAT_IMPL(A, B)
#define PST_SPAN(Name)                                                       \
  ::pst::ScopedTimer PST_OBS_CONCAT(PstObsSpan_, __LINE__) { Name }
/// PST_SPAN_ARG(Name, ArgName, ArgValue): as PST_SPAN, tagging the span
/// with one named integer argument in the exported trace.
#define PST_SPAN_ARG(Name, ArgName, ArgValue)                                \
  ::pst::ScopedTimer PST_OBS_CONCAT(PstObsSpan_, __LINE__) {                 \
    Name, ArgName, static_cast<uint64_t>(ArgValue)                           \
  }
#else
#define PST_SPAN(Name) static_cast<void>(0)
#define PST_SPAN_ARG(Name, ArgName, ArgValue) static_cast<void>(0)
#endif

#endif // PST_OBS_SCOPEDTIMER_H
