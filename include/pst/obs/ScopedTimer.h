//===- pst/obs/ScopedTimer.h - RAII pipeline spans --------------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII timing spans. A \c ScopedTimer marks one dynamic extent of a
/// pipeline stage ("cycleequiv.run", "pst.build", ...): construction
/// pushes the name onto the calling thread's span stack, destruction pops
/// it, folds the duration into the registry's per-name timer statistics,
/// and — when \c Telemetry::traceEnabled() — retains a \c SpanEvent for
/// chrome-trace export. Nesting therefore falls out of scoping: a PST
/// build's span contains the cycle-equivalence span it runs.
///
/// Thread-safety contract: a ScopedTimer must be destroyed on the thread
/// that constructed it (automatic storage guarantees this); spans on
/// different threads are recorded into independent thread-local sinks with
/// no shared mutable state, so instrumented code needs no extra locking.
///
/// Cost: when telemetry is runtime-disabled, constructor and destructor
/// are one relaxed atomic load each; with PST_TELEMETRY=0 the PST_SPAN
/// macro compiles away entirely.
///
//===----------------------------------------------------------------------===//

#ifndef PST_OBS_SCOPEDTIMER_H
#define PST_OBS_SCOPEDTIMER_H

#include "pst/obs/Telemetry.h"

namespace pst {

namespace obs_detail {
/// Pushes a frame on the calling thread's span stack; returns the start
/// timestamp (ns since the registry epoch).
uint64_t spanBegin(const char *Name);
/// Pops the frame and records the completed span.
void spanEnd(const char *Name, uint64_t StartNs);
} // namespace obs_detail

/// One RAII span. \p Name must be a string literal (or outlive the
/// program); it doubles as the timer-statistics key and the trace label.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Name)
      : Name(Telemetry::enabled() ? Name : nullptr) {
    if (this->Name)
      StartNs = obs_detail::spanBegin(this->Name);
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() {
    if (Name)
      obs_detail::spanEnd(Name, StartNs);
  }

private:
  /// Null when telemetry was disabled at construction (the span then stays
  /// inert even if telemetry is enabled mid-extent, keeping the stack
  /// balanced).
  const char *Name;
  uint64_t StartNs = 0;
};

} // namespace pst

//===----------------------------------------------------------------------===//
// PST_SPAN(Name): time the rest of the enclosing scope as one span.
//===----------------------------------------------------------------------===//

#if PST_TELEMETRY
#define PST_OBS_CONCAT_IMPL(A, B) A##B
#define PST_OBS_CONCAT(A, B) PST_OBS_CONCAT_IMPL(A, B)
#define PST_SPAN(Name)                                                       \
  ::pst::ScopedTimer PST_OBS_CONCAT(PstObsSpan_, __LINE__) { Name }
#else
#define PST_SPAN(Name) static_cast<void>(0)
#endif

#endif // PST_OBS_SCOPEDTIMER_H
