//===- pst/obs/Telemetry.h - Pipeline telemetry registry --------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate of the analysis pipeline: a process-wide
/// \c TelemetryRegistry of named monotonic counters and log2-bucketed value
/// histograms, fed through thread-local sinks so that concurrently running
/// pipeline stages (the batch engine's workers) never contend on a shared
/// line, and merged only at report time.
///
/// Instrumentation sites use the PST_COUNTER / PST_VALUE macros below (and
/// PST_SPAN from ScopedTimer.h). Two gates make them free when unwanted:
///
///  * Compile time: building with -DPST_TELEMETRY=0 (CMake option
///    `PST_TELEMETRY=OFF`) expands every macro to `(void)0` — no probe
///    exists in the binary and the pipeline is byte-for-byte the
///    uninstrumented code. The registry and exporters still compile (they
///    simply stay empty), so tools keep their flags in every
///    configuration.
///  * Run time: probes are compiled in but disabled by default; each one
///    starts with the \c Telemetry::enabled() fast path — a single relaxed
///    atomic load — and bails before touching any thread-local state.
///
/// Thread-safety contract: recording (counters, values, spans) is
/// lock-free per thread and safe from any number of threads concurrently.
/// Reporting (\c snapshot, \c toJson, \c reset) merges the live
/// thread-local sinks and therefore requires *quiescence*: no instrumented
/// work may be in flight on other threads while a report runs. Every
/// in-tree consumer reports after its pool jobs have joined, which
/// establishes the needed happens-before through the pool's own
/// synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef PST_OBS_TELEMETRY_H
#define PST_OBS_TELEMETRY_H

/// Compile-time probe gate. 1 (default): instrumentation macros expand to
/// real probes behind the runtime enable flag. 0: macros expand to nothing.
#ifndef PST_TELEMETRY
#define PST_TELEMETRY 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pst {

namespace obs_detail {
/// Runtime gates, read inline on every probe. Relaxed is enough: probes
/// carry no data dependencies across threads, and report-time merging has
/// its own quiescence contract.
extern std::atomic<bool> TelemetryOn;
extern std::atomic<bool> TraceOn;
extern std::atomic<uint64_t> SpanSampleEveryN;

void addCounterSlow(const char *Name, uint64_t Delta);
void recordValueSlow(const char *Name, uint64_t Value);
} // namespace obs_detail

/// Count / sum / min / max plus a log2 bucket histogram of recorded
/// values. Bucket I holds values V with floor(log2(max(V,1))) == I, i.e.
/// bucket 0 is {0, 1}, bucket 1 is [2, 4), bucket 10 is [1024, 2048)...
struct ValueStats {
  static constexpr unsigned NumBuckets = 64;

  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = ~uint64_t(0); // Meaningless until Count > 0.
  uint64_t Max = 0;
  uint64_t Buckets[NumBuckets] = {};

  void record(uint64_t V) {
    ++Count;
    Sum += V;
    if (V < Min)
      Min = V;
    if (V > Max)
      Max = V;
    ++Buckets[bucketOf(V)];
  }

  void merge(const ValueStats &O) {
    Count += O.Count;
    Sum += O.Sum;
    if (O.Count) {
      if (O.Min < Min)
        Min = O.Min;
      if (O.Max > Max)
        Max = O.Max;
    }
    for (unsigned I = 0; I < NumBuckets; ++I)
      Buckets[I] += O.Buckets[I];
  }

  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0;
  }

  static unsigned bucketOf(uint64_t V) {
    unsigned B = 0;
    while (V > 1) {
      V >>= 1;
      ++B;
    }
    return B;
  }
};

/// One completed ScopedTimer span, for the chrome-trace exporter.
struct SpanEvent {
  /// Span name (a string literal at the instrumentation site).
  const char *Name = nullptr;
  /// Small dense index of the recording thread (0 = first thread seen).
  uint32_t ThreadIndex = 0;
  /// Nesting depth within that thread's span stack (0 = outermost).
  uint32_t Depth = 0;
  /// Start offset from the registry epoch, and duration, in nanoseconds.
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
  /// Optional span argument (e.g. "batch" = commit sequence number on the
  /// incremental spans), exported into the trace event's args object. Null
  /// ArgName means no argument; the fields trail with defaults so existing
  /// aggregate initializers keep meaning what they meant.
  const char *ArgName = nullptr;
  uint64_t ArgValue = 0;
};

/// A merged, point-in-time view of everything recorded so far. Maps are
/// keyed by probe name, so iteration (and the JSON dumps) is
/// deterministically sorted.
struct TelemetrySnapshot {
  std::map<std::string, uint64_t> Counters;
  /// Per span name: duration statistics in nanoseconds.
  std::map<std::string, ValueStats> Timers;
  /// Per PST_VALUE name: recorded-value statistics.
  std::map<std::string, ValueStats> Values;
  /// Completed spans in no particular order (only collected while
  /// \c Telemetry::traceEnabled(); bounded per thread, see DroppedSpans).
  std::vector<SpanEvent> Spans;
  /// Spans discarded because a thread hit its retention cap.
  uint64_t DroppedSpans = 0;
  /// Spans deliberately skipped by 1-in-N sampling
  /// (\c Telemetry::setSpanSampleEvery). Distinct from DroppedSpans: these
  /// were decimated by policy, not lost to the cap.
  uint64_t SampledOutSpans = 0;
};

/// The process-wide sink registry. Access through \c global(); recording
/// goes through the \c Telemetry facade (or the macros), never directly.
class TelemetryRegistry {
public:
  /// The singleton (never destroyed, so probes on late-exiting threads
  /// stay safe).
  static TelemetryRegistry &global();

  /// Merges the retired state and every live thread sink. Requires
  /// quiescence (see the file comment).
  TelemetrySnapshot snapshot();

  /// The flat key/value stats dump: counters, span-duration stats and
  /// value histograms as one JSON object, keys sorted. Requires
  /// quiescence.
  std::string toJson();

  /// Zeroes every counter/timer/value and drops retained spans, in the
  /// retired state and every live sink; restarts the trace epoch.
  /// Requires quiescence.
  void reset();

private:
  TelemetryRegistry() = default;
  friend class Telemetry;
};

/// Static facade over the registry: the runtime gates plus the record
/// entry points the macros compile to.
class Telemetry {
public:
  /// Master runtime switch (default off). When off, every probe is one
  /// relaxed atomic load.
  static bool enabled() {
    return obs_detail::TelemetryOn.load(std::memory_order_relaxed);
  }
  static void setEnabled(bool On) {
    obs_detail::TelemetryOn.store(On, std::memory_order_relaxed);
  }

  /// Span *retention* switch (default off): when on (and enabled() is on),
  /// completed ScopedTimer spans are kept for TraceWriter export rather
  /// than only folded into duration stats. Off by default because a long
  /// batch run can complete millions of spans.
  static bool traceEnabled() {
    return obs_detail::TraceOn.load(std::memory_order_relaxed);
  }
  static void setTraceEnabled(bool On) {
    obs_detail::TraceOn.store(On, std::memory_order_relaxed);
  }

  /// Span retention sampling: keep every Nth completed span per thread
  /// (the 1st, N+1st, ... in each thread's completion order), count the
  /// rest as sampled-out. 0 and 1 both mean "keep every span" (the
  /// default). Sampling applies only to trace *retention* — duration
  /// statistics still see every span — and composes with the per-thread
  /// retention cap, which stays as a backstop. Deterministic decimation
  /// (rather than reservoir sampling) keeps repeated runs byte-comparable
  /// and lets dumps from sharded processes be merged meaningfully.
  static uint64_t spanSampleEvery() {
    return obs_detail::SpanSampleEveryN.load(std::memory_order_relaxed);
  }
  static void setSpanSampleEvery(uint64_t N) {
    obs_detail::SpanSampleEveryN.store(N, std::memory_order_relaxed);
  }

  /// Adds \p Delta to the named monotonic counter (no-op when disabled).
  /// \p Name must be a string literal or otherwise outlive the program.
  static void addCounter(const char *Name, uint64_t Delta = 1) {
    if (enabled())
      obs_detail::addCounterSlow(Name, Delta);
  }

  /// Records one sample into the named value histogram (no-op when
  /// disabled). Same lifetime requirement on \p Name.
  static void recordValue(const char *Name, uint64_t Value) {
    if (enabled())
      obs_detail::recordValueSlow(Name, Value);
  }
};

/// Interns \p Name into a deliberately leaked process-lifetime pool and
/// returns a stable C string suitable as a telemetry probe name (probe
/// names must outlive the program — see \c Telemetry::addCounter).
/// Keyed hash lookup under a mutex, so registering the Nth dynamic name
/// costs O(1) amortized rather than a scan of all prior names. Equal
/// content always returns the same pointer; safe from any thread.
const char *internTelemetryName(std::string Name);

} // namespace pst

//===----------------------------------------------------------------------===//
// Instrumentation macros. Arguments must be free of side effects: with
// PST_TELEMETRY=0 they are not evaluated at all.
//===----------------------------------------------------------------------===//

#if PST_TELEMETRY
#define PST_COUNTER(Name, Delta) ::pst::Telemetry::addCounter(Name, Delta)
#define PST_VALUE(Name, Value) ::pst::Telemetry::recordValue(Name, Value)
#else
#define PST_COUNTER(Name, Delta) static_cast<void>(0)
#define PST_VALUE(Name, Value) static_cast<void>(0)
#endif

#endif // PST_OBS_TELEMETRY_H
