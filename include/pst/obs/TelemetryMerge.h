//===- pst/obs/TelemetryMerge.h - Cross-process stats merging ---*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-level telemetry aggregation. A sharded deployment runs one
/// process per image shard, and each process dumps its own
/// `TelemetryRegistry::toJson()` report; this header provides the missing
/// half — parsing those dumps back into structured form and merging any
/// number of them into one report, so an operator sees the fleet's
/// counters and latency histograms as a single JSON object.
///
/// The merge is exact, not approximate: counters add, ValueStats merge
/// via count/sum/min/max/bucket addition (the same \c ValueStats::merge
/// the in-process thread sinks use), and means are recomputed from the
/// merged count and sum rather than averaged. `telemetryStatsToJson` is
/// the *same* serializer `TelemetryRegistry::toJson()` uses, which pins
/// two properties tests rely on: parse -> reserialize of a single dump is
/// byte-identical, and a merged report has exactly the per-process dump
/// format (one format to teach dashboards, one golden shape).
///
//===----------------------------------------------------------------------===//

#ifndef PST_OBS_TELEMETRYMERGE_H
#define PST_OBS_TELEMETRYMERGE_H

#include "pst/obs/Telemetry.h"

#include <span>
#include <string>
#include <string_view>

namespace pst {

/// The stats half of a telemetry dump — everything
/// `TelemetryRegistry::toJson()` writes (spans themselves are exported
/// separately via TraceWriter and are not part of the stats dump).
struct TelemetryStats {
  bool Compiled = true;
  bool Enabled = false;
  uint64_t SpansRetained = 0;
  uint64_t SpansDropped = 0;
  uint64_t SpansSampledOut = 0;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, ValueStats> Timers;
  std::map<std::string, ValueStats> Values;
};

/// Parses a `TelemetryRegistry::toJson()` dump (or a prior merge output —
/// same format) back into structured form. Tolerates arbitrary
/// whitespace; the "mean" field is ignored on input (it is derived state,
/// recomputed from count/sum on output). Returns false and sets \p Error
/// on malformed input.
bool parseTelemetryJson(std::string_view Json, TelemetryStats &Out,
                        std::string *Error = nullptr);

/// Merges per-process dumps into one fleet report: counters and span
/// accounting add, histograms merge bucket-wise, `telemetry_compiled`
/// ANDs (false if any process was built without probes) and
/// `telemetry_enabled` ORs (true if any process recorded).
TelemetryStats mergeTelemetryStats(std::span<const TelemetryStats> Parts);

/// Serializes stats in exactly the `TelemetryRegistry::toJson()` format.
std::string telemetryStatsToJson(const TelemetryStats &S);

} // namespace pst

#endif // PST_OBS_TELEMETRYMERGE_H
