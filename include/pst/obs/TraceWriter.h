//===- pst/obs/TraceWriter.h - chrome://tracing export ----------*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exports retained \c SpanEvent records as Trace Event Format JSON — the
/// format chrome://tracing and Perfetto (https://ui.perfetto.dev) load
/// directly. Each span becomes one complete ("ph":"X") event on its
/// recording thread's track, so nested pipeline stages render as stacked
/// slices; counters are appended as one summary metadata block.
///
/// Spans are only retained while both \c Telemetry::setEnabled(true) and
/// \c Telemetry::setTraceEnabled(true) are in effect — enable both before
/// the work of interest, then write the trace after it completes.
///
/// Thread-safety contract: a TraceWriter reads a \c TelemetrySnapshot it
/// was given (or takes one itself), so the quiescence requirement of
/// \c TelemetryRegistry::snapshot applies at construction/write time; the
/// writer object itself is single-threaded.
///
//===----------------------------------------------------------------------===//

#ifndef PST_OBS_TRACEWRITER_H
#define PST_OBS_TRACEWRITER_H

#include "pst/obs/Telemetry.h"

#include <iosfwd>
#include <string>

namespace pst {

/// Serializes one telemetry snapshot as chrome-trace JSON.
class TraceWriter {
public:
  /// Captures \c TelemetryRegistry::global().snapshot() (requires
  /// quiescence).
  TraceWriter();
  /// Uses a snapshot the caller already holds.
  explicit TraceWriter(TelemetrySnapshot Snapshot);

  /// Writes the trace JSON ({"traceEvents": [...], ...}).
  void write(std::ostream &OS) const;

  /// As \c write, to a file. Returns false if the file cannot be opened.
  bool writeFile(const std::string &Path) const;

  const TelemetrySnapshot &snapshot() const { return Snap; }

private:
  TelemetrySnapshot Snap;
};

} // namespace pst

#endif // PST_OBS_TRACEWRITER_H
