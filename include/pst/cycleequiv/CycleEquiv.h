//===- pst/cycleequiv/CycleEquiv.h - Linear cycle equivalence ---*- C++ -*-===//
//
// Part of the PST library: a reproduction of Johnson, Pearson & Pingali,
// "The Program Structure Tree: Computing Control Regions in Linear Time",
// PLDI 1994.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's linear-time cycle equivalence algorithm (its Figure 4).
///
/// Two edges of a strongly connected graph are *cycle equivalent* iff every
/// cycle contains both or neither (Definition 4). Theorem 2 shows that edges
/// a, b of a CFG enclose a SESE region iff they are cycle equivalent in
/// S = G + (end -> start); Theorem 3 shows cycle equivalence in S equals
/// cycle equivalence in the *undirected* multigraph of S.
///
/// The algorithm runs one undirected DFS, then processes nodes in reverse
/// preorder maintaining, per node, a *bracket list*: the backedges spanning
/// the tree edge into the node. Bracket sets are never compared wholesale;
/// each is compactly named by the pair <topmost bracket, set size>
/// (Theorem 6), with *capping backedges* inserted at branch nodes to keep
/// the name well-defined (Lemma 2). Every operation on the doubly-linked
/// bracket lists is O(1), giving O(E) total.
///
//===----------------------------------------------------------------------===//

#ifndef PST_CYCLEEQUIV_CYCLEEQUIV_H
#define PST_CYCLEEQUIV_CYCLEEQUIV_H

#include "pst/graph/Cfg.h"
#include "pst/graph/CfgView.h"

#include <cassert>
#include <utility>
#include <vector>

namespace pst {

/// Sentinel class id meaning "not yet assigned".
inline constexpr uint32_t UndefinedClass = ~uint32_t(0);

/// Edge partition produced by the cycle equivalence algorithm.
struct CycleEquivResult {
  /// Class of each edge. Indexed by EdgeId; if the algorithm added the
  /// artificial return edge, its class is the extra last entry.
  std::vector<uint32_t> EdgeClass;
  /// Number of distinct classes.
  uint32_t NumClasses = 0;
  /// True if EdgeClass has the extra return-edge entry.
  bool HasReturnEdge = false;

  uint32_t classOf(EdgeId E) const {
    assert(E < EdgeClass.size() && "edge out of range");
    return EdgeClass[E];
  }

  /// Class of the artificial end->start edge.
  uint32_t returnEdgeClass() const {
    assert(HasReturnEdge && "no return edge was added");
    return EdgeClass.back();
  }
};

/// Computes edge cycle equivalence classes.
///
/// If \p AddReturnEdge is true (the default), the artificial end -> start
/// edge is added internally, making the graph strongly connected as Theorem
/// 2 requires; \p G must then be a valid CFG. If false, \p G itself must
/// already be strongly connected (used for the node-expanded graph in the
/// control-region computation).
///
/// Runs in O(N + E) time and space.
CycleEquivResult computeCycleEquivalence(const Cfg &G,
                                         bool AddReturnEdge = true);

/// Advanced entry point: cycle equivalence over a bare endpoint list.
///
/// Since Theorem 3 lets the algorithm work on the undirected multigraph,
/// callers that derive a graph on the fly (e.g. the control-region
/// computation, which conceptually works on the node-expanded T(S) but
/// need not materialize it — the paper notes "the savings in space and
/// time over working with the explicitly transformed graph are
/// significant") can pass endpoints directly and skip building a Cfg.
struct UndirectedGraphView {
  uint32_t NumNodes = 0;
  /// DFS root (any node of the connected graph).
  NodeId Root = 0;
  /// Edge I connects Endpoints[I].first and Endpoints[I].second.
  std::vector<std::pair<NodeId, NodeId>> Endpoints;
};

/// Runs the Figure-4 algorithm on \p View. The input must be connected and
/// bridgeless (e.g. derived from a strongly connected digraph). The result
/// has one class entry per endpoint pair and HasReturnEdge = false.
CycleEquivResult computeCycleEquivalenceRaw(const UndirectedGraphView &View);

/// Reusable working memory for the Figure-4 solver.
///
/// Every transient array the solver needs — the CSR undirected adjacency,
/// the DFS worklists, the bracket arena (cells + edge records, stored
/// structure-of-arrays), the per-node bracket-list heads and the capping
/// backedge registrations — lives here instead of on the solver's own
/// stack. A run sizes each vector with assign/clear, which reuses the
/// capacity left by previous runs, so after warm-up a scratch-backed run
/// performs no heap allocations beyond the result vector it returns.
///
/// Contents between runs are unspecified; the only contract is that a
/// scratch may be reused for inputs of any size (larger inputs grow the
/// buffers, smaller ones leave the excess capacity in place) and that runs
/// are bit-deterministic in the input regardless of what the scratch held
/// before. One scratch must not be used by two threads at once.
struct CycleEquivScratch {
  // CSR undirected adjacency: node V's incident (edge, other endpoint)
  // pairs sit at [AdjOff[V], AdjOff[V+1]).
  std::vector<uint32_t> AdjOff;
  std::vector<uint32_t> AdjEdge;
  std::vector<NodeId> AdjOther;
  std::vector<uint32_t> SelfLoops;
  std::vector<uint32_t> Cursor; // Shared fill cursor for the CSR builds.

  // Undirected DFS.
  std::vector<uint32_t> DfsNum;
  std::vector<NodeId> Order;
  std::vector<uint32_t> ParentEdge;
  std::vector<uint8_t> EdgeUsed;
  std::vector<std::pair<NodeId, uint32_t>> Stack;

  // CSR tree children / backedge incidence (same offset+value layout).
  std::vector<uint32_t> ChildOff;
  std::vector<NodeId> ChildVal;
  std::vector<uint32_t> BackFromOff, BackFromVal;
  std::vector<uint32_t> BackToOff, BackToVal;

  // Capping backedges registered per ancestor node, as intrusive singly
  // linked lists (they are discovered during the reverse-preorder sweep,
  // so their counts cannot be precomputed for a CSR pass).
  std::vector<uint32_t> CapHead, CapNext;

  // Edge records (real + capping), structure-of-arrays.
  std::vector<uint32_t> RecClass, RecRecentSize, RecRecentClass, RecCell;
  // Bracket arena cells.
  std::vector<uint32_t> CellRec, CellPrev, CellNext;
  // Per-node bracket list heads.
  std::vector<uint32_t> ListHead, ListTail, ListSize;
  std::vector<uint32_t> Hi;
};

/// As \c computeCycleEquivalenceRaw, with caller-owned working memory; the
/// steady-state-allocation-free entry point batch pipelines build on.
CycleEquivResult computeCycleEquivalenceRaw(const UndirectedGraphView &View,
                                            CycleEquivScratch &Scratch);

/// Cycle equivalence over a frozen CSR view of the CFG — the shared-
/// adjacency fast path. No endpoint list is materialized and no counting
/// pass runs: the solver's undirected incidence lists are written directly
/// by merging each node's succ and pred CSR segments (plus the implicit
/// return edge when \p AddReturnEdge), and edge endpoints are read from
/// the view's flat arrays. Results are byte-identical to the \c Cfg
/// overloads on a view of the same graph.
CycleEquivResult computeCycleEquivalence(const CfgView &V, bool AddReturnEdge,
                                         CycleEquivScratch &Scratch);

/// Cycle equivalence over the *implicitly* node-expanded graph T(S) of the
/// paper's control-region construction: node V splits into V_in = 2V and
/// V_out = 2V+1 joined by representative edge id V; original edge E
/// becomes id numNodes+E from 2*src(E)+1 to 2*dst(E); the return edge
/// (id numNodes+numEdges) closes 2*exit+1 -> 2*entry. The expansion is
/// never materialized — endpoints are computed arithmetically and the
/// adjacency is written straight from the view's CSR segments. Returns one
/// class per T(S) edge id; consumed by computeControlRegionsLinearImplicit.
CycleEquivResult computeCycleEquivalenceTs(const CfgView &V,
                                           CycleEquivScratch &Scratch);

/// Re-entrant driver for repeated cycle-equivalence runs.
///
/// The algorithm is a pure function, so nothing stops callers from invoking
/// \c computeCycleEquivalence in a loop; but workloads that run it over many
/// small graphs (the incremental PST rebuilds one extracted sub-CFG per
/// dirty region per commit; the batch analyzer sweeps whole corpora of
/// mostly-tiny procedures) would pay the full set of solver allocations per
/// run. The engine keeps the endpoint buffer and a \c CycleEquivScratch
/// alive across runs; each \c run is otherwise identical to
/// \c computeCycleEquivalence.
class CycleEquivEngine {
public:
  CycleEquivResult run(const Cfg &G, bool AddReturnEdge = true);

  /// Scratch-backed twin of the CfgView overload of
  /// \c computeCycleEquivalence.
  CycleEquivResult run(const CfgView &V, bool AddReturnEdge = true);

  /// Scratch-backed twin of \c computeCycleEquivalenceRaw.
  CycleEquivResult runRaw(const UndirectedGraphView &View) {
    return computeCycleEquivalenceRaw(View, Solver);
  }

private:
  UndirectedGraphView View;
  CycleEquivScratch Solver;
};

} // namespace pst

#endif // PST_CYCLEEQUIV_CYCLEEQUIV_H
