//===- pst/cycleequiv/CycleEquivBrute.h - Definition oracle -----*- C++ -*-===//
//
// Part of the PST library (see CycleEquiv.h for the project reference).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A brute-force cycle equivalence oracle straight from Definition 4, plus
/// partition utilities. Used to cross-check the linear-time algorithm in
/// property tests and as the "slow algorithm" baseline (the paper's Section
/// 3.3 discusses why the naive approach is quadratic).
///
//===----------------------------------------------------------------------===//

#ifndef PST_CYCLEEQUIV_CYCLEEQUIVBRUTE_H
#define PST_CYCLEEQUIV_CYCLEEQUIVBRUTE_H

#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/graph/Cfg.h"

#include <vector>

namespace pst {

/// Returns a copy of \p G with the artificial end -> start edge appended
/// (it gets edge id \c G.numEdges()). The result is strongly connected when
/// \p G is a valid CFG.
Cfg withReturnEdge(const Cfg &G);

/// True if some directed cycle of \p S contains edge \p Through but not
/// edge \p Avoiding. O(N + E) per query.
bool existsCycleThroughAvoiding(const Cfg &S, EdgeId Through, EdgeId Avoiding);

/// Definition-4 check: edges \p A and \p B of (strongly connected) \p S are
/// cycle equivalent iff no cycle separates them.
bool cycleEquivalentBrute(const Cfg &S, EdgeId A, EdgeId B);

/// Computes the full edge partition by pairwise Definition-4 checks.
/// O(E^2 (N + E)); for small graphs and testing only.
CycleEquivResult computeCycleEquivalenceBrute(const Cfg &G,
                                              bool AddReturnEdge = true);

/// Renumbers \p Classes so equal partitions compare equal: each class is
/// renamed to the index of its first occurrence.
std::vector<uint32_t> canonicalizePartition(const std::vector<uint32_t> &Classes);

} // namespace pst

#endif // PST_CYCLEEQUIV_CYCLEEQUIVBRUTE_H
