//===- TraceWriter.cpp - chrome://tracing export -------------------------------===//
//
// Part of the PST library (see TraceWriter.h for the reference).
//
// Trace Event Format reference: the "JSON Array Format" / "JSON Object
// Format" accepted by chrome://tracing and Perfetto. We emit the object
// form: {"traceEvents": [...], "displayTimeUnit": "ms"}. Every retained
// span becomes a complete event ("ph":"X", timestamps in fractional
// microseconds); thread-name metadata events label each worker's track.
//
//===----------------------------------------------------------------------===//

#include "pst/obs/TraceWriter.h"

#include <algorithm>
#include <fstream>
#include <ostream>

using namespace pst;

TraceWriter::TraceWriter() : Snap(TelemetryRegistry::global().snapshot()) {}

TraceWriter::TraceWriter(TelemetrySnapshot Snapshot)
    : Snap(std::move(Snapshot)) {}

namespace {

void appendEscaped(std::ostream &OS, std::string_view S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (static_cast<unsigned char>(C) < 0x20)
      OS << ' ';
    else
      OS << C;
  }
}

/// Nanoseconds to the fractional-microsecond field the format wants,
/// without floating point (keeps output bit-stable across libcs).
void appendMicros(std::ostream &OS, uint64_t Ns) {
  OS << Ns / 1000 << '.' << char('0' + (Ns / 100) % 10)
     << char('0' + (Ns / 10) % 10) << char('0' + Ns % 10);
}

} // namespace

void TraceWriter::write(std::ostream &OS) const {
  OS << "{\"traceEvents\": [\n";
  bool First = true;
  auto Sep = [&] {
    OS << (First ? "" : ",\n");
    First = false;
  };

  // Label one track per recording thread.
  if (!Snap.Spans.empty()) {
    uint32_t MaxThread = 0;
    for (const SpanEvent &E : Snap.Spans)
      MaxThread = std::max(MaxThread, E.ThreadIndex);
    for (uint32_t T = 0; T <= MaxThread; ++T) {
      Sep();
      OS << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
            "\"tid\": "
         << T << ", \"args\": {\"name\": \"pst-worker-" << T << "\"}}";
    }
  }

  for (const SpanEvent &E : Snap.Spans) {
    Sep();
    OS << "  {\"name\": \"";
    appendEscaped(OS, E.Name);
    OS << "\", \"cat\": \"pst\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
       << E.ThreadIndex << ", \"ts\": ";
    appendMicros(OS, E.StartNs);
    OS << ", \"dur\": ";
    appendMicros(OS, E.DurNs);
    OS << ", \"args\": {\"depth\": " << E.Depth;
    if (E.ArgName) {
      OS << ", \"";
      appendEscaped(OS, E.ArgName);
      OS << "\": " << E.ArgValue;
    }
    OS << "}}";
  }

  // Counters as one summary instant event so they travel with the trace.
  if (!Snap.Counters.empty()) {
    Sep();
    OS << "  {\"name\": \"pst.counters\", \"cat\": \"pst\", \"ph\": \"i\", "
          "\"s\": \"g\", \"pid\": 1, \"tid\": 0, \"ts\": 0, \"args\": {";
    bool FirstArg = true;
    for (const auto &[N, V] : Snap.Counters) {
      OS << (FirstArg ? "\"" : ", \"");
      appendEscaped(OS, N);
      OS << "\": " << V;
      FirstArg = false;
    }
    OS << "}}";
  }

  OS << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

bool TraceWriter::writeFile(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  write(OS);
  return OS.good();
}
