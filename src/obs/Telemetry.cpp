//===- Telemetry.cpp - Pipeline telemetry registry ----------------------------===//
//
// Part of the PST library (see Telemetry.h for the reference).
//
// Recording path: each thread owns a ThreadSink (registered on first use,
// merged into the registry's retired state when the thread exits), so a
// probe touches only thread-local memory after the two relaxed gate
// loads. Report path: the registry walks the retired state plus every
// live sink under its mutex; callers guarantee quiescence (no probe may
// run concurrently with a report), which every in-tree consumer gets for
// free by reporting after its pool jobs joined.
//
//===----------------------------------------------------------------------===//

#include "pst/obs/Telemetry.h"
#include "pst/obs/ScopedTimer.h"
#include "pst/obs/TelemetryMerge.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <sstream>
#include <unordered_set>

using namespace pst;

std::atomic<bool> pst::obs_detail::TelemetryOn{false};
std::atomic<bool> pst::obs_detail::TraceOn{false};
std::atomic<uint64_t> pst::obs_detail::SpanSampleEveryN{0};

const char *pst::internTelemetryName(std::string Name) {
  // unordered_set is node-based, so element addresses — and the c_str()s
  // handed out — are stable across rehashes. Leaked: probe names must
  // outlive every sink that recorded under them.
  static std::mutex M;
  static auto *Pool = new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> Lock(M);
  return Pool->insert(std::move(Name)).first->c_str();
}

namespace {

using Clock = std::chrono::steady_clock;

/// Span retention cap per thread; beyond it spans are counted as dropped
/// rather than retained (a long batch run completes millions of spans).
constexpr size_t MaxSpansPerThread = size_t(1) << 20;

struct SpanFrame {
  const char *Name;
  uint64_t StartNs;
};

/// One thread's private recording state. Only the owning thread writes it;
/// the registry reads it under quiescence.
struct ThreadSink {
  // Probe names are string literals; identical-pointer fast path with a
  // content-equality fallback (the same literal may have distinct
  // addresses across translation units). Linear scan: a process has a few
  // dozen distinct probe names.
  std::vector<std::pair<const char *, uint64_t>> Counters;
  std::vector<std::pair<const char *, ValueStats>> Timers;
  std::vector<std::pair<const char *, ValueStats>> Values;
  std::vector<SpanFrame> Stack;
  std::vector<SpanEvent> Events;
  uint64_t DroppedSpans = 0;
  uint64_t SampledOutSpans = 0;
  /// Completed-while-tracing span count, driving the 1-in-N decimation
  /// phase (span I is retained iff I % N == 0).
  uint64_t CompletedSpans = 0;
  uint32_t ThreadIndex = 0;

  template <class T>
  static T &slot(std::vector<std::pair<const char *, T>> &Table,
                 const char *Name) {
    for (auto &[N, V] : Table)
      if (N == Name || std::string_view(N) == Name)
        return V;
    Table.emplace_back(Name, T{});
    return Table.back().second;
  }

  void clear() {
    Counters.clear();
    Timers.clear();
    Values.clear();
    Events.clear();
    DroppedSpans = 0;
    SampledOutSpans = 0;
    CompletedSpans = 0; // Restart the decimation phase with the epoch.
    // Deliberately keep Stack: open spans belong to in-flight scopes.
  }
};

/// The registry's private state. Kept out of the header (and leaked at
/// exit) so probes on threads that outlive main's statics stay safe.
struct RegistryImpl {
  std::mutex M;
  std::vector<ThreadSink *> Live;
  uint32_t NextThreadIndex = 0;
  Clock::time_point Epoch = Clock::now();

  // State of exited threads, merged at deregistration.
  std::map<std::string, uint64_t> RetiredCounters;
  std::map<std::string, ValueStats> RetiredTimers;
  std::map<std::string, ValueStats> RetiredValues;
  std::vector<SpanEvent> RetiredEvents;
  uint64_t RetiredDropped = 0;
  uint64_t RetiredSampledOut = 0;

  static RegistryImpl &get() {
    static RegistryImpl *I = new RegistryImpl(); // Leaked by design.
    return *I;
  }

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             Epoch)
            .count());
  }

  void mergeInto(const ThreadSink &S, TelemetrySnapshot &Out) {
    for (const auto &[N, V] : S.Counters)
      Out.Counters[N] += V;
    for (const auto &[N, V] : S.Timers)
      Out.Timers[N].merge(V);
    for (const auto &[N, V] : S.Values)
      Out.Values[N].merge(V);
    Out.Spans.insert(Out.Spans.end(), S.Events.begin(), S.Events.end());
    Out.DroppedSpans += S.DroppedSpans;
    Out.SampledOutSpans += S.SampledOutSpans;
  }

  void retire(ThreadSink *S) {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &[N, V] : S->Counters)
      RetiredCounters[N] += V;
    for (const auto &[N, V] : S->Timers)
      RetiredTimers[N].merge(V);
    for (const auto &[N, V] : S->Values)
      RetiredValues[N].merge(V);
    RetiredEvents.insert(RetiredEvents.end(), S->Events.begin(),
                         S->Events.end());
    RetiredDropped += S->DroppedSpans;
    RetiredSampledOut += S->SampledOutSpans;
    Live.erase(std::remove(Live.begin(), Live.end(), S), Live.end());
  }
};

/// Registers on construction, merges-and-deregisters on thread exit.
struct SinkHandle {
  ThreadSink Sink;

  SinkHandle() {
    RegistryImpl &R = RegistryImpl::get();
    std::lock_guard<std::mutex> Lock(R.M);
    Sink.ThreadIndex = R.NextThreadIndex++;
    R.Live.push_back(&Sink);
  }

  ~SinkHandle() { RegistryImpl::get().retire(&Sink); }
};

ThreadSink &localSink() {
  thread_local SinkHandle Handle;
  return Handle.Sink;
}

} // namespace

void pst::obs_detail::addCounterSlow(const char *Name, uint64_t Delta) {
  ThreadSink::slot(localSink().Counters, Name) += Delta;
}

void pst::obs_detail::recordValueSlow(const char *Name, uint64_t Value) {
  ThreadSink::slot(localSink().Values, Name).record(Value);
}

uint64_t pst::obs_detail::spanBegin(const char *Name) {
  uint64_t Now = RegistryImpl::get().nowNs();
  localSink().Stack.push_back(SpanFrame{Name, Now});
  return Now;
}

void pst::obs_detail::spanEnd(const char *Name, uint64_t StartNs,
                              const char *ArgName, uint64_t ArgValue) {
  ThreadSink &S = localSink();
  assert(!S.Stack.empty() && S.Stack.back().Name == Name &&
         "unbalanced span stack");
  S.Stack.pop_back();
  uint64_t Dur = RegistryImpl::get().nowNs() - StartNs;
  ThreadSink::slot(S.Timers, Name).record(Dur);
  if (!Telemetry::traceEnabled())
    return;
  // 1-in-N retention sampling (duration stats above already saw the
  // span). Deterministic per-thread decimation: span I is kept iff
  // I % N == 0, so a multi-minute trace keeps an unbiased, evenly spaced
  // subset instead of truncating at the cap.
  uint64_t Every = Telemetry::spanSampleEvery();
  uint64_t Seq = S.CompletedSpans++;
  if (Every > 1 && (Seq % Every) != 0) {
    ++S.SampledOutSpans;
    return;
  }
  if (S.Events.size() >= MaxSpansPerThread) {
    ++S.DroppedSpans;
    return;
  }
  SpanEvent E;
  E.Name = Name;
  E.ThreadIndex = S.ThreadIndex;
  E.Depth = static_cast<uint32_t>(S.Stack.size());
  E.StartNs = StartNs;
  E.DurNs = Dur;
  E.ArgName = ArgName;
  E.ArgValue = ArgValue;
  S.Events.push_back(E);
}

//===----------------------------------------------------------------------===//
// TelemetryRegistry
//===----------------------------------------------------------------------===//

TelemetryRegistry &TelemetryRegistry::global() {
  static TelemetryRegistry *R = new TelemetryRegistry(); // Leaked by design.
  (void)RegistryImpl::get(); // Ensure the impl outlives every consumer too.
  return *R;
}

TelemetrySnapshot TelemetryRegistry::snapshot() {
  RegistryImpl &R = RegistryImpl::get();
  std::lock_guard<std::mutex> Lock(R.M);
  TelemetrySnapshot Out;
  Out.Counters = R.RetiredCounters;
  Out.Timers = R.RetiredTimers;
  Out.Values = R.RetiredValues;
  Out.Spans = R.RetiredEvents;
  Out.DroppedSpans = R.RetiredDropped;
  Out.SampledOutSpans = R.RetiredSampledOut;
  for (const ThreadSink *S : R.Live)
    R.mergeInto(*S, Out);
  return Out;
}

void TelemetryRegistry::reset() {
  RegistryImpl &R = RegistryImpl::get();
  std::lock_guard<std::mutex> Lock(R.M);
  R.RetiredCounters.clear();
  R.RetiredTimers.clear();
  R.RetiredValues.clear();
  R.RetiredEvents.clear();
  R.RetiredDropped = 0;
  R.RetiredSampledOut = 0;
  for (ThreadSink *S : R.Live)
    S->clear();
  R.Epoch = Clock::now();
}

std::string TelemetryRegistry::toJson() {
  // Serialized through the same code path telemetry-merge uses
  // (telemetryStatsToJson), so a parse -> reserialize round trip and a
  // merged multi-process report are byte-compatible with this dump.
  TelemetrySnapshot S = snapshot();
  TelemetryStats Out;
  Out.Compiled = PST_TELEMETRY != 0;
  Out.Enabled = Telemetry::enabled();
  Out.SpansRetained = S.Spans.size();
  Out.SpansDropped = S.DroppedSpans;
  Out.SpansSampledOut = S.SampledOutSpans;
  Out.Counters = std::move(S.Counters);
  Out.Timers = std::move(S.Timers);
  Out.Values = std::move(S.Values);
  return telemetryStatsToJson(Out);
}
