//===- TelemetryMerge.cpp - Cross-process stats merging -----------------------===//
//
// Part of the PST library (see TelemetryMerge.h for the reference).
//
// The serializer here is *the* stats-dump serializer: Telemetry.cpp's
// TelemetryRegistry::toJson() delegates to telemetryStatsToJson so the
// per-process dump, a parse->reserialize round trip, and a merged fleet
// report all share one byte format. The parser is a small cursor-based
// reader for exactly that format (our own dump, not arbitrary JSON): it
// accepts the known keys in any order, tolerates whitespace, and treats
// anything else as malformed input rather than guessing.
//
//===----------------------------------------------------------------------===//

#include "pst/obs/TelemetryMerge.h"

#include <cctype>
#include <sstream>

using namespace pst;

//===----------------------------------------------------------------------===//
// Serialization (shared with TelemetryRegistry::toJson)
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::ostream &OS, std::string_view S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\' << C;
    else if (static_cast<unsigned char>(C) < 0x20)
      OS << ' ';
    else
      OS << C;
  }
}

void appendStats(std::ostream &OS, const ValueStats &V) {
  OS << "{\"count\": " << V.Count << ", \"sum\": " << V.Sum
     << ", \"min\": " << (V.Count ? V.Min : 0) << ", \"max\": " << V.Max
     << ", \"mean\": " << V.mean() << ", \"log2_buckets\": [";
  bool First = true;
  for (unsigned I = 0; I < ValueStats::NumBuckets; ++I) {
    if (!V.Buckets[I])
      continue;
    OS << (First ? "" : ", ") << "[" << I << ", " << V.Buckets[I] << "]";
    First = false;
  }
  OS << "]}";
}

template <class T, class Fn>
void appendMap(std::ostream &OS, const char *Key,
               const std::map<std::string, T> &M, Fn &&Value, bool Last) {
  OS << "  \"" << Key << "\": {";
  bool First = true;
  for (const auto &[N, V] : M) {
    OS << (First ? "\n    \"" : ",\n    \"");
    appendEscaped(OS, N);
    OS << "\": ";
    Value(V);
    First = false;
  }
  OS << (First ? "}" : "\n  }") << (Last ? "\n" : ",\n");
}

} // namespace

std::string pst::telemetryStatsToJson(const TelemetryStats &S) {
  std::ostringstream OS;
  OS << "{\n";
  OS << "  \"telemetry_compiled\": " << (S.Compiled ? "true" : "false")
     << ",\n";
  OS << "  \"telemetry_enabled\": " << (S.Enabled ? "true" : "false")
     << ",\n";
  OS << "  \"spans_retained\": " << S.SpansRetained << ",\n";
  OS << "  \"spans_dropped\": " << S.SpansDropped << ",\n";
  OS << "  \"spans_sampled_out\": " << S.SpansSampledOut << ",\n";
  appendMap(OS, "counters", S.Counters,
            [&OS](uint64_t V) { OS << V; }, /*Last=*/false);
  appendMap(OS, "timers_ns", S.Timers,
            [&OS](const ValueStats &V) { appendStats(OS, V); },
            /*Last=*/false);
  appendMap(OS, "values", S.Values,
            [&OS](const ValueStats &V) { appendStats(OS, V); },
            /*Last=*/true);
  OS << "}\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Cursor over the dump text. Every parse helper returns false after
/// recording the first error; subsequent calls bail immediately, so call
/// sites can chain without checking each step.
struct Reader {
  std::string_view In;
  size_t Pos = 0;
  std::string Error;

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  bool failed() const { return !Error.empty(); }

  void skipWs() {
    while (Pos < In.size() &&
           std::isspace(static_cast<unsigned char>(In[Pos])))
      ++Pos;
  }

  bool expect(char C) {
    if (failed())
      return false;
    skipWs();
    if (Pos >= In.size() || In[Pos] != C)
      return fail(std::string("expected '") + C + "'");
    ++Pos;
    return true;
  }

  /// Peeks past whitespace without consuming.
  char peek() {
    skipWs();
    return Pos < In.size() ? In[Pos] : '\0';
  }

  bool parseString(std::string &Out) {
    if (!expect('"'))
      return false;
    Out.clear();
    while (Pos < In.size() && In[Pos] != '"') {
      char C = In[Pos++];
      if (C == '\\') {
        if (Pos >= In.size())
          return fail("unterminated escape");
        C = In[Pos++];
      }
      Out.push_back(C);
    }
    if (Pos >= In.size())
      return fail("unterminated string");
    ++Pos; // Closing quote.
    return true;
  }

  bool parseUInt(uint64_t &Out) {
    if (failed())
      return false;
    skipWs();
    if (Pos >= In.size() || !std::isdigit(static_cast<unsigned char>(In[Pos])))
      return fail("expected integer");
    Out = 0;
    while (Pos < In.size() &&
           std::isdigit(static_cast<unsigned char>(In[Pos])))
      Out = Out * 10 + static_cast<uint64_t>(In[Pos++] - '0');
    return true;
  }

  bool parseBool(bool &Out) {
    if (failed())
      return false;
    skipWs();
    if (In.substr(Pos, 4) == "true") {
      Pos += 4;
      Out = true;
      return true;
    }
    if (In.substr(Pos, 5) == "false") {
      Pos += 5;
      Out = false;
      return true;
    }
    return fail("expected true/false");
  }

  /// Skips a numeric literal (the "mean" field may be fractional or in
  /// scientific notation; it is derived state and never read back).
  bool skipNumber() {
    if (failed())
      return false;
    skipWs();
    size_t Start = Pos;
    while (Pos < In.size() &&
           (std::isdigit(static_cast<unsigned char>(In[Pos])) ||
            In[Pos] == '.' || In[Pos] == 'e' || In[Pos] == 'E' ||
            In[Pos] == '+' || In[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected number");
    return true;
  }
};

bool parseStatsObject(Reader &R, ValueStats &V) {
  if (!R.expect('{'))
    return false;
  bool SawCount = false;
  if (R.peek() != '}') {
    for (;;) {
      std::string Key;
      if (!R.parseString(Key) || !R.expect(':'))
        return false;
      if (Key == "count") {
        if (!R.parseUInt(V.Count))
          return false;
        SawCount = true;
      } else if (Key == "sum") {
        if (!R.parseUInt(V.Sum))
          return false;
      } else if (Key == "min") {
        if (!R.parseUInt(V.Min))
          return false;
      } else if (Key == "max") {
        if (!R.parseUInt(V.Max))
          return false;
      } else if (Key == "mean") {
        if (!R.skipNumber())
          return false;
      } else if (Key == "log2_buckets") {
        if (!R.expect('['))
          return false;
        if (R.peek() != ']') {
          for (;;) {
            uint64_t Bucket = 0, N = 0;
            if (!R.expect('[') || !R.parseUInt(Bucket) || !R.expect(',') ||
                !R.parseUInt(N) || !R.expect(']'))
              return false;
            if (Bucket >= ValueStats::NumBuckets)
              return R.fail("bucket index out of range");
            V.Buckets[Bucket] = N;
            if (R.peek() != ',')
              break;
            R.expect(',');
          }
        }
        if (!R.expect(']'))
          return false;
      } else {
        return R.fail("unknown stats key \"" + Key + "\"");
      }
      if (R.peek() != ',')
        break;
      R.expect(',');
    }
  }
  if (!R.expect('}'))
    return false;
  // The serializer writes min as 0 for empty stats; restore the "no
  // samples yet" sentinel so a later merge doesn't clamp real minima.
  if (SawCount && V.Count == 0)
    V.Min = ~uint64_t(0);
  return true;
}

template <class T, class ParseValue>
bool parseStringMap(Reader &R, std::map<std::string, T> &Out,
                    ParseValue &&PV) {
  if (!R.expect('{'))
    return false;
  if (R.peek() != '}') {
    for (;;) {
      std::string Key;
      if (!R.parseString(Key) || !R.expect(':'))
        return false;
      if (!PV(Out[Key]))
        return false;
      if (R.peek() != ',')
        break;
      R.expect(',');
    }
  }
  return R.expect('}');
}

} // namespace

bool pst::parseTelemetryJson(std::string_view Json, TelemetryStats &Out,
                             std::string *Error) {
  Reader R{Json};
  Out = TelemetryStats{};
  bool Ok = R.expect('{');
  if (Ok && R.peek() != '}') {
    for (;;) {
      std::string Key;
      if (!R.parseString(Key) || !R.expect(':')) {
        Ok = false;
        break;
      }
      if (Key == "telemetry_compiled")
        Ok = R.parseBool(Out.Compiled);
      else if (Key == "telemetry_enabled")
        Ok = R.parseBool(Out.Enabled);
      else if (Key == "spans_retained")
        Ok = R.parseUInt(Out.SpansRetained);
      else if (Key == "spans_dropped")
        Ok = R.parseUInt(Out.SpansDropped);
      else if (Key == "spans_sampled_out")
        Ok = R.parseUInt(Out.SpansSampledOut);
      else if (Key == "counters")
        Ok = parseStringMap(R, Out.Counters,
                            [&R](uint64_t &V) { return R.parseUInt(V); });
      else if (Key == "timers_ns")
        Ok = parseStringMap(R, Out.Timers, [&R](ValueStats &V) {
          return parseStatsObject(R, V);
        });
      else if (Key == "values")
        Ok = parseStringMap(R, Out.Values, [&R](ValueStats &V) {
          return parseStatsObject(R, V);
        });
      else
        Ok = R.fail("unknown key \"" + Key + "\"");
      if (!Ok)
        break;
      if (R.peek() != ',')
        break;
      R.expect(',');
    }
  }
  if (Ok)
    Ok = R.expect('}');
  if (!Ok && Error)
    *Error = R.Error.empty() ? "malformed telemetry dump" : R.Error;
  return Ok;
}

TelemetryStats pst::mergeTelemetryStats(std::span<const TelemetryStats> Parts) {
  TelemetryStats Out;
  Out.Compiled = true;
  Out.Enabled = false;
  for (const TelemetryStats &P : Parts) {
    Out.Compiled = Out.Compiled && P.Compiled;
    Out.Enabled = Out.Enabled || P.Enabled;
    Out.SpansRetained += P.SpansRetained;
    Out.SpansDropped += P.SpansDropped;
    Out.SpansSampledOut += P.SpansSampledOut;
    for (const auto &[N, V] : P.Counters)
      Out.Counters[N] += V;
    for (const auto &[N, V] : P.Timers)
      Out.Timers[N].merge(V);
    for (const auto &[N, V] : P.Values)
      Out.Values[N].merge(V);
  }
  return Out;
}
