//===- BatchAnalyzer.cpp - Parallel corpus analysis ----------------------------===//
//
// Part of the PST library (see BatchAnalyzer.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/runtime/BatchAnalyzer.h"

#include "pst/obs/ScopedTimer.h"

using namespace pst;

FunctionAnalysis pst::analyzeFunction(const Cfg &G, PstScratch &Scratch,
                                      bool ComputeControlRegions) {
  // Freeze the adjacency once (two counting passes into the scratch CSR);
  // both pipeline stages run on the shared view and never consult G again.
  CfgView V = CfgView::build(G, Scratch.View);
  FunctionAnalysis Out;
  Out.Pst = ProgramStructureTree::build(V, Scratch.PstBuild);
  if (ComputeControlRegions)
    Out.ControlRegions =
        computeControlRegionsLinearImplicit(V, Scratch.CtrlRegions);
  return Out;
}

BatchAnalyzer::BatchAnalyzer(BatchOptions Opts)
    : Opts(Opts), Pool(Opts.NumThreads) {
  Scratches.resize(Pool.numWorkers());
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(std::span<const Cfg> Fns) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Fns.size());
  std::vector<FunctionAnalysis> Out(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             // One span per claimed chunk: in a trace, every worker's track
             // shows the chunks it won off the shared cursor.
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I)
               Out[I] = analyzeFunction(Fns[I], S,
                                        Opts.ComputeControlRegions);
           });
  return Out;
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(std::span<const Cfg *const> Fns) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Fns.size());
  std::vector<FunctionAnalysis> Out(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I)
               Out[I] = analyzeFunction(*Fns[I], S,
                                        Opts.ComputeControlRegions);
           });
  return Out;
}
