//===- BatchAnalyzer.cpp - Parallel corpus analysis ----------------------------===//
//
// Part of the PST library (see BatchAnalyzer.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/runtime/BatchAnalyzer.h"

#include "pst/obs/ScopedTimer.h"

using namespace pst;

FunctionAnalysis pst::analyzeFunction(const Cfg &G, PstScratch &Scratch,
                                      bool ComputeControlRegions) {
  // Freeze the adjacency once (two counting passes into the scratch CSR);
  // both pipeline stages run on the shared view and never consult G again.
  CfgView V = CfgView::build(G, Scratch.View);
  FunctionAnalysis Out;
  Out.Pst = ProgramStructureTree::build(V, Scratch.PstBuild);
  if (ComputeControlRegions)
    Out.ControlRegions =
        computeControlRegionsLinearImplicit(V, Scratch.CtrlRegions);
  return Out;
}

BatchAnalyzer::BatchAnalyzer(BatchOptions Opts)
    : Opts(Opts), Pool(Opts.NumThreads) {
  Scratches.resize(Pool.numWorkers());
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(std::span<const Cfg> Fns) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Fns.size());
  std::vector<FunctionAnalysis> Out(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             // One span per claimed chunk: in a trace, every worker's track
             // shows the chunks it won off the shared cursor.
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I)
               Out[I] = analyzeFunction(Fns[I], S,
                                        Opts.ComputeControlRegions);
           });
  return Out;
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(const CorpusImage &Img) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Img.numFunctions());
  std::vector<FunctionAnalysis> Out(Img.numFunctions());
  Pool.run(Out.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I) {
               Out[I].Pst = Img.pst(I);
               if (Opts.ComputeControlRegions)
                 Out[I].ControlRegions = computeControlRegionsLinearImplicit(
                     Img.cfg(I), S.CtrlRegions);
             }
           });
  return Out;
}

std::vector<uint8_t>
BatchAnalyzer::buildImage(std::span<const Cfg> Fns,
                          std::span<const std::string> Names) {
  PST_SPAN("image.build");
  assert((Names.empty() || Names.size() == Fns.size()) &&
         "names must parallel functions");
  CorpusImageBuilder B(Fns.size());
  // Parallel pass 1: per-function views + PSTs; shapes go to distinct
  // slots, the trees are kept for pass 2 (rebuilding a view into warm
  // scratch is cheap; rebuilding the PST is not).
  std::vector<ProgramStructureTree> Trees(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I) {
               CfgView V = CfgView::build(Fns[I], S.View);
               Trees[I] = ProgramStructureTree::build(V, S.PstBuild);
               B.setShape(I, Fns[I], Trees[I],
                          Names.empty() ? "" : Names[I]);
             }
           });
  // The one serial step: the offset-table fixup pass.
  B.layout();
  // Parallel pass 2: copy into disjoint arena slices.
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I) {
               CfgView V = CfgView::build(Fns[I], S.View);
               B.fill(I, Fns[I], V, Trees[I],
                      Names.empty() ? "" : Names[I]);
             }
           });
  return B.finish();
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(std::span<const Cfg *const> Fns) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Fns.size());
  std::vector<FunctionAnalysis> Out(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I)
               Out[I] = analyzeFunction(*Fns[I], S,
                                        Opts.ComputeControlRegions);
           });
  return Out;
}
