//===- BatchAnalyzer.cpp - Parallel corpus analysis ----------------------------===//
//
// Part of the PST library (see BatchAnalyzer.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/runtime/BatchAnalyzer.h"

#include "pst/obs/ScopedTimer.h"

using namespace pst;

FunctionAnalysis pst::analyzeFunction(const Cfg &G, PstScratch &Scratch,
                                      bool ComputeControlRegions) {
  // Freeze the adjacency once (two counting passes into the scratch CSR);
  // both pipeline stages run on the shared view and never consult G again.
  CfgView V = CfgView::build(G, Scratch.View);
  FunctionAnalysis Out;
  Out.Pst = ProgramStructureTree::build(V, Scratch.PstBuild);
  if (ComputeControlRegions)
    Out.ControlRegions =
        computeControlRegionsLinearImplicit(V, Scratch.CtrlRegions);
  return Out;
}

BatchAnalyzer::BatchAnalyzer(BatchOptions Opts)
    : Opts(Opts), Pool(Opts.NumThreads) {
  Scratches.resize(Pool.numWorkers());
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(std::span<const Cfg> Fns) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Fns.size());
  std::vector<FunctionAnalysis> Out(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             // One span per claimed chunk: in a trace, every worker's track
             // shows the chunks it won off the shared cursor.
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I)
               Out[I] = analyzeFunction(Fns[I], S,
                                        Opts.ComputeControlRegions);
           });
  return Out;
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(const CorpusImage &Img) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Img.numFunctions());
  std::vector<FunctionAnalysis> Out(Img.numFunctions());
  Pool.run(Out.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I) {
               Out[I].Pst = Img.pst(I);
               if (Opts.ComputeControlRegions)
                 Out[I].ControlRegions = computeControlRegionsLinearImplicit(
                     Img.cfg(I), S.CtrlRegions);
             }
           });
  return Out;
}

std::vector<uint8_t>
BatchAnalyzer::buildImage(std::span<const Cfg> Fns,
                          std::span<const std::string> Names) {
  PST_SPAN("image.build");
  assert((Names.empty() || Names.size() == Fns.size()) &&
         "names must parallel functions");
  CorpusImageBuilder B(Fns.size());
  // Parallel pass 1: per-function views + PSTs; shapes go to distinct
  // slots, the trees are kept for pass 2 (rebuilding a view into warm
  // scratch is cheap; rebuilding the PST is not).
  std::vector<ProgramStructureTree> Trees(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I) {
               CfgView V = CfgView::build(Fns[I], S.View);
               Trees[I] = ProgramStructureTree::build(V, S.PstBuild);
               B.setShape(I, Fns[I], Trees[I],
                          Names.empty() ? "" : Names[I]);
             }
           });
  // The one serial step: the offset-table fixup pass.
  B.layout();
  // Parallel pass 2: copy into disjoint arena slices.
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I) {
               CfgView V = CfgView::build(Fns[I], S.View);
               B.fill(I, Fns[I], V, Trees[I],
                      Names.empty() ? "" : Names[I]);
             }
           });
  return B.finish();
}

bool BatchAnalyzer::buildImageStream(uint64_t NumFunctions,
                                     const ChunkProducer &Produce,
                                     size_t ChunkFunctions,
                                     const std::string &Path,
                                     std::string *Error) {
  PST_SPAN("image.stream.build");
  if (ChunkFunctions == 0)
    ChunkFunctions = 1;
  StreamImageWriter W(Path, NumFunctions);
  if (!W.valid()) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }

  // Chunk storage is reused across the whole build: the high-water memory
  // mark is one chunk of graphs + names + its staging buffers.
  std::vector<Cfg> Graphs;
  std::vector<std::string> Names;

  // Pass 1: stream shapes in index order. The per-function pipeline (view
  // + PST) fans out across the pool into per-slot shapes; the writer's
  // layout cursor then consumes them serially.
  std::vector<image::FunctionShape> Shapes;
  for (uint64_t Begin = 0; Begin < NumFunctions; Begin += ChunkFunctions) {
    const uint64_t Count =
        std::min<uint64_t>(ChunkFunctions, NumFunctions - Begin);
    Produce(Begin, Count, Graphs, Names);
    assert(Graphs.size() == Count && Names.size() == Count &&
           "producer yielded the wrong chunk size");
    Shapes.resize(Count);
    Pool.run(Count, Opts.ChunkSize,
             [&](size_t CB, size_t CE, unsigned Worker) {
               PstScratch &S = Scratches[Worker];
               for (size_t I = CB; I < CE; ++I) {
                 CfgView V = CfgView::build(Graphs[I], S.View);
                 ProgramStructureTree T =
                     ProgramStructureTree::build(V, S.PstBuild);
                 Shapes[I] = image::functionShape(Graphs[I], T, Names[I]);
               }
             });
    for (const image::FunctionShape &S : Shapes)
      if (!W.addShape(S, Error))
        return false;
  }
  if (!W.beginFill(Error))
    return false;

  // Pass 2: re-produce every chunk and fill its disjoint file slices. The
  // PST is rebuilt per function (keeping 1M trees would defeat the bounded
  //-memory point); distinct functions of the chunk fill concurrently.
  StreamImageWriter::ChunkScratch CS;
  for (uint64_t Begin = 0; Begin < NumFunctions; Begin += ChunkFunctions) {
    const uint64_t Count =
        std::min<uint64_t>(ChunkFunctions, NumFunctions - Begin);
    Produce(Begin, Count, Graphs, Names);
    assert(Graphs.size() == Count && Names.size() == Count &&
           "producer replayed the wrong chunk size");
    if (!W.beginChunk(CS, Begin, Count, Error))
      return false;
    Pool.run(Count, Opts.ChunkSize,
             [&](size_t CB, size_t CE, unsigned Worker) {
               PstScratch &S = Scratches[Worker];
               for (size_t I = CB; I < CE; ++I) {
                 CfgView V = CfgView::build(Graphs[I], S.View);
                 ProgramStructureTree T =
                     ProgramStructureTree::build(V, S.PstBuild);
                 W.fill(CS, Begin + I, Graphs[I], V, T, Names[I]);
               }
             });
    if (!W.endChunk(CS, Error))
      return false;
  }
  return W.finish(Error);
}

void BatchAnalyzer::analyzeCorpusStream(const CorpusImage &Img,
                                        const AnalysisSink &Sink,
                                        size_t WindowFunctions) {
  PST_SPAN("batch.corpus.stream");
  PST_COUNTER("batch.stream.corpora", 1);
  PST_COUNTER("batch.stream.functions", Img.numFunctions());
  if (WindowFunctions == 0)
    WindowFunctions = 1;
  const uint64_t N = Img.numFunctions();
  // Window slots are reused: the high-water mark is one window of results,
  // not a corpus-sized vector.
  std::vector<FunctionAnalysis> Window(
      size_t(std::min<uint64_t>(WindowFunctions, N)));
  for (uint64_t Begin = 0; Begin < N; Begin += WindowFunctions) {
    const uint64_t Count = std::min<uint64_t>(WindowFunctions, N - Begin);
    Pool.run(Count, Opts.ChunkSize,
             [&](size_t CB, size_t CE, unsigned Worker) {
               PST_SPAN("batch.chunk");
               PST_COUNTER("batch.stream.chunks", 1);
               PstScratch &S = Scratches[Worker];
               for (size_t I = CB; I < CE; ++I) {
                 FunctionAnalysis &A = Window[I];
                 A.Pst = Img.pst(Begin + I);
                 if (Opts.ComputeControlRegions)
                   A.ControlRegions = computeControlRegionsLinearImplicit(
                       Img.cfg(Begin + I), S.CtrlRegions);
                 else
                   A.ControlRegions = ControlRegionsResult();
               }
             });
    for (uint64_t I = 0; I < Count; ++I)
      Sink(Begin + I, Window[I]);
    // Drop the window's mapped pages so a full pass stays at ~one window
    // of resident image bytes.
    Img.release();
  }
}

std::vector<FunctionAnalysis>
BatchAnalyzer::analyzeCorpus(std::span<const Cfg *const> Fns) {
  PST_SPAN("batch.corpus");
  PST_COUNTER("batch.corpora", 1);
  PST_COUNTER("batch.functions", Fns.size());
  std::vector<FunctionAnalysis> Out(Fns.size());
  Pool.run(Fns.size(), Opts.ChunkSize,
           [&](size_t Begin, size_t End, unsigned Worker) {
             PST_SPAN("batch.chunk");
             PST_COUNTER("batch.chunks", 1);
             PST_VALUE("batch.chunk_functions", End - Begin);
             PstScratch &S = Scratches[Worker];
             for (size_t I = Begin; I < End; ++I)
               Out[I] = analyzeFunction(*Fns[I], S,
                                        Opts.ComputeControlRegions);
           });
  return Out;
}
