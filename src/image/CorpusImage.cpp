//===- image/CorpusImage.cpp - Frozen mmap-able corpus images -------------===//
//
// Part of the PST library (see include/pst/image/CorpusImage.h).
//
//===----------------------------------------------------------------------===//

#include "pst/image/CorpusImage.h"

#include "pst/obs/ScopedTimer.h"
#include "pst/obs/Telemetry.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define PST_IMAGE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PST_IMAGE_HAVE_MMAP 0
#endif

using namespace pst;
using namespace pst::image;

//===----------------------------------------------------------------------===//
// Format helpers
//===----------------------------------------------------------------------===//

const char *pst::image::sectionName(SectionKind K) {
  switch (K) {
  case SectionKind::FuncTable:
    return "FuncTable";
  case SectionKind::SuccOff:
    return "SuccOff";
  case SectionKind::PredOff:
    return "PredOff";
  case SectionKind::SuccEdge:
    return "SuccEdge";
  case SectionKind::SuccTo:
    return "SuccTo";
  case SectionKind::PredEdge:
    return "PredEdge";
  case SectionKind::PredFrom:
    return "PredFrom";
  case SectionKind::EdgeSrc:
    return "EdgeSrc";
  case SectionKind::EdgeDst:
    return "EdgeDst";
  case SectionKind::Regions:
    return "Regions";
  case SectionKind::NodeRegion:
    return "NodeRegion";
  case SectionKind::EdgeRegion:
    return "EdgeRegion";
  case SectionKind::EntryOf:
    return "EntryOf";
  case SectionKind::ExitOf:
    return "ExitOf";
  case SectionKind::ChildOff:
    return "ChildOff";
  case SectionKind::ChildVal:
    return "ChildVal";
  case SectionKind::ImmOff:
    return "ImmOff";
  case SectionKind::ImmVal:
    return "ImmVal";
  case SectionKind::NodeLabelOff:
    return "NodeLabelOff";
  case SectionKind::StrTab:
    return "StrTab";
  case SectionKind::NumKinds:
    break;
  }
  return "<unknown>";
}

uint64_t pst::image::fnv1a(const void *Data, uint64_t Bytes) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 0xcbf29ce484222325ull;
  for (uint64_t I = 0; I < Bytes; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

uint64_t alignUp(uint64_t V) {
  return (V + (SectionAlign - 1)) & ~(SectionAlign - 1);
}

/// Element size of each section's global array.
uint64_t elemSize(SectionKind K) {
  switch (K) {
  case SectionKind::FuncTable:
    return sizeof(FuncRecord);
  case SectionKind::Regions:
    return sizeof(SeseRegion);
  case SectionKind::NodeLabelOff:
    return sizeof(uint64_t);
  case SectionKind::StrTab:
    return 1;
  default:
    return sizeof(uint32_t);
  }
}

/// Bytes of each function's NUL-terminated strings: name first, then one
/// label per node, in node-id order.
uint64_t strBytes(const Cfg &G, std::string_view Name) {
  uint64_t B = Name.size() + 1;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    B += G.node(N).Label.size() + 1;
  return B;
}

} // namespace

ImageLayout
pst::image::computeCorpusLayout(std::span<const FunctionShape> Shapes) {
  ImageLayout L;
  L.Funcs.resize(Shapes.size());

  // The offset-table fixup pass: running element totals become per-function
  // bases. All accumulators are 64-bit; per-function counts are 32-bit.
  uint64_t Nodes = 0, Edges = 0, Csr = 0, Regions = 0, RegionCsr = 0,
           Children = 0, Str = 0;
  for (size_t I = 0; I < Shapes.size(); ++I) {
    const FunctionShape &S = Shapes[I];
    assert(S.NumRegions >= 1 && "a PST always has its synthetic root");
    FuncRecord &F = L.Funcs[I];
    F.NodeBase = Nodes;
    F.EdgeBase = Edges;
    F.CsrBase = Csr;
    F.RegionBase = Regions;
    F.RegionCsrBase = RegionCsr;
    F.ChildBase = Children;
    F.NameOff = Str;
    F.NumNodes = S.NumNodes;
    F.NumEdges = S.NumEdges;
    F.NumRegions = S.NumRegions;
    F.Entry = S.Entry;
    F.Exit = S.Exit;
    Nodes += S.NumNodes;
    Edges += S.NumEdges;
    Csr += uint64_t(S.NumNodes) + 1;
    Regions += S.NumRegions;
    RegionCsr += uint64_t(S.NumRegions) + 1;
    Children += S.NumRegions - 1;
    Str += S.StrBytes;
  }

  uint64_t (&SB)[NumSections] = L.SectionBytes;
  SB[uint32_t(SectionKind::FuncTable)] = Shapes.size() * sizeof(FuncRecord);
  SB[uint32_t(SectionKind::SuccOff)] = Csr * 4;
  SB[uint32_t(SectionKind::PredOff)] = Csr * 4;
  for (SectionKind K : {SectionKind::SuccEdge, SectionKind::SuccTo,
                        SectionKind::PredEdge, SectionKind::PredFrom,
                        SectionKind::EdgeSrc, SectionKind::EdgeDst,
                        SectionKind::EdgeRegion, SectionKind::EntryOf,
                        SectionKind::ExitOf})
    SB[uint32_t(K)] = Edges * 4;
  SB[uint32_t(SectionKind::Regions)] = Regions * sizeof(SeseRegion);
  SB[uint32_t(SectionKind::NodeRegion)] = Nodes * 4;
  SB[uint32_t(SectionKind::ChildOff)] = RegionCsr * 4;
  SB[uint32_t(SectionKind::ChildVal)] = Children * 4;
  SB[uint32_t(SectionKind::ImmOff)] = RegionCsr * 4;
  SB[uint32_t(SectionKind::ImmVal)] = Nodes * 4;
  SB[uint32_t(SectionKind::NodeLabelOff)] = Nodes * 8;
  SB[uint32_t(SectionKind::StrTab)] = Str;

  uint64_t Off =
      alignUp(sizeof(ImageHeader) + uint64_t(NumSections) * sizeof(SectionDesc));
  for (uint32_t K = 0; K < NumSections; ++K) {
    L.SectionOffset[K] = Off;
    Off = alignUp(Off + L.SectionBytes[K]);
  }
  L.FileBytes = Off;
  return L;
}

//===----------------------------------------------------------------------===//
// CorpusImageBuilder
//===----------------------------------------------------------------------===//

CorpusImageBuilder::CorpusImageBuilder(size_t NumFunctions)
    : Shapes(NumFunctions) {}

void CorpusImageBuilder::setShape(size_t I, const Cfg &G,
                                  const ProgramStructureTree &T,
                                  std::string_view Name) {
  assert(I < Shapes.size() && !LaidOut && "setShape after layout");
  FunctionShape &S = Shapes[I];
  S.NumNodes = G.numNodes();
  S.NumEdges = G.numEdges();
  S.NumRegions = T.numRegions();
  S.Entry = G.entry();
  S.Exit = G.exit();
  S.StrBytes = strBytes(G, Name);
}

void CorpusImageBuilder::layout() {
  assert(!LaidOut && "layout runs once");
  Layout = computeCorpusLayout(Shapes);
  Arena.assign(Layout.FileBytes, 0); // Zeroed padding keeps output canonical.
  // The offset table is pure layout output; write it now so fill() only
  // touches per-function slices.
  std::memcpy(sectionData(SectionKind::FuncTable), Layout.Funcs.data(),
              Layout.Funcs.size() * sizeof(FuncRecord));
  LaidOut = true;
}

uint8_t *CorpusImageBuilder::sectionData(SectionKind K) {
  return Arena.data() + Layout.SectionOffset[uint32_t(K)];
}

void CorpusImageBuilder::fill(size_t I, const Cfg &G, const CfgView &V,
                              const ProgramStructureTree &T,
                              std::string_view Name) {
  assert(LaidOut && "fill before layout");
  const FuncRecord &F = Layout.Funcs[I];
  const uint64_t N = F.NumNodes, E = F.NumEdges, R = F.NumRegions;
  assert(V.numNodes() == N && V.numEdges() == E && T.numRegions() == R &&
         "fill disagrees with setShape");

  auto Copy32 = [&](SectionKind K, uint64_t Base, const uint32_t *Src,
                    uint64_t Count) {
    std::memcpy(sectionData(K) + Base * 4, Src, Count * 4);
  };
  Copy32(SectionKind::SuccOff, F.CsrBase, V.succOff(), N + 1);
  Copy32(SectionKind::PredOff, F.CsrBase, V.predOff(), N + 1);
  Copy32(SectionKind::SuccEdge, F.EdgeBase, V.succEdge(), E);
  Copy32(SectionKind::SuccTo, F.EdgeBase, V.succTo(), E);
  Copy32(SectionKind::PredEdge, F.EdgeBase, V.predEdge(), E);
  Copy32(SectionKind::PredFrom, F.EdgeBase, V.predFrom(), E);
  Copy32(SectionKind::EdgeSrc, F.EdgeBase, V.edgeSrc(), E);
  Copy32(SectionKind::EdgeDst, F.EdgeBase, V.edgeDst(), E);

  std::memcpy(sectionData(SectionKind::Regions) +
                  F.RegionBase * sizeof(SeseRegion),
              T.regionTable().data(), R * sizeof(SeseRegion));
  Copy32(SectionKind::NodeRegion, F.NodeBase, T.nodeRegionTable().data(), N);
  Copy32(SectionKind::EdgeRegion, F.EdgeBase, T.edgeRegionTable().data(), E);
  Copy32(SectionKind::EntryOf, F.EdgeBase, T.entryOfTable().data(), E);
  Copy32(SectionKind::ExitOf, F.EdgeBase, T.exitOfTable().data(), E);
  Copy32(SectionKind::ChildOff, F.RegionCsrBase, T.childOffTable().data(),
         R + 1);
  Copy32(SectionKind::ChildVal, F.ChildBase, T.childValTable().data(), R - 1);
  Copy32(SectionKind::ImmOff, F.RegionCsrBase, T.immOffTable().data(), R + 1);
  Copy32(SectionKind::ImmVal, F.NodeBase, T.immValTable().data(), N);

  char *Str = reinterpret_cast<char *>(sectionData(SectionKind::StrTab));
  uint64_t *LabelOff =
      reinterpret_cast<uint64_t *>(sectionData(SectionKind::NodeLabelOff));
  uint64_t At = F.NameOff;
  std::memcpy(Str + At, Name.data(), Name.size());
  At += Name.size() + 1; // Arena is zeroed, so the NUL is already there.
  for (NodeId Nd = 0; Nd < N; ++Nd) {
    const std::string &L = G.node(Nd).Label;
    LabelOff[F.NodeBase + Nd] = At;
    std::memcpy(Str + At, L.data(), L.size());
    At += L.size() + 1;
  }
  assert(At == F.NameOff + Shapes[I].StrBytes && "string bytes drifted");
}

std::vector<uint8_t> CorpusImageBuilder::finish() {
  assert(LaidOut && "finish before layout");
  SectionDesc *Sections =
      reinterpret_cast<SectionDesc *>(Arena.data() + sizeof(ImageHeader));
  for (uint32_t K = 0; K < NumSections; ++K) {
    SectionDesc &D = Sections[K];
    D.Kind = K;
    D.Offset = Layout.SectionOffset[K];
    D.Bytes = Layout.SectionBytes[K];
    D.Checksum = fnv1a(Arena.data() + D.Offset, D.Bytes);
  }

  ImageHeader H;
  std::memcpy(H.MagicBytes, Magic, sizeof(Magic));
  H.Version = FormatVersion;
  H.Endian = EndianTag;
  H.FileBytes = Layout.FileBytes;
  H.NumFunctions = Layout.Funcs.size();
  H.SectionCount = NumSections;
  H.FuncRecordBytes = sizeof(FuncRecord);
  std::memcpy(Arena.data(), &H, sizeof(H));

  PST_COUNTER("image.build.images", 1);
  PST_VALUE("image.build.bytes", double(Layout.FileBytes));
  PST_VALUE("image.build.functions", double(Layout.Funcs.size()));
  return std::move(Arena);
}

//===----------------------------------------------------------------------===//
// CorpusImage
//===----------------------------------------------------------------------===//

void CorpusImage::reset() {
#if PST_IMAGE_HAVE_MMAP
  if (MapAddr)
    ::munmap(MapAddr, MapLen);
#endif
  MapAddr = nullptr;
  MapLen = 0;
  OwnedBytes.clear();
  Base = nullptr;
  Bytes = 0;
  Hdr = nullptr;
  Sections = nullptr;
  Funcs = nullptr;
}

CorpusImage::~CorpusImage() { reset(); }

CorpusImage::CorpusImage(CorpusImage &&O) noexcept { *this = std::move(O); }

CorpusImage &CorpusImage::operator=(CorpusImage &&O) noexcept {
  if (this == &O)
    return *this;
  reset();
  OwnedBytes = std::move(O.OwnedBytes);
  Base = O.Base;
  Bytes = O.Bytes;
  MapAddr = O.MapAddr;
  MapLen = O.MapLen;
  Hdr = O.Hdr;
  Sections = O.Sections;
  Funcs = O.Funcs;
  O.MapAddr = nullptr;
  O.MapLen = 0;
  O.Base = nullptr;
  O.Bytes = 0;
  O.Hdr = nullptr;
  O.Sections = nullptr;
  O.Funcs = nullptr;
  return *this;
}

namespace {

bool fail(std::string *Error, std::string Msg) {
  if (Error)
    *Error = std::move(Msg);
  return false;
}

} // namespace

/// Structural validation over the mapped bytes: everything that can be
/// checked without reading the array payloads. Clears the image on failure.
bool CorpusImage::attach(std::string *Error) {
  if (Bytes < sizeof(ImageHeader))
    return fail(Error, "corpus image truncated: " + std::to_string(Bytes) +
                           " bytes is smaller than the " +
                           std::to_string(sizeof(ImageHeader)) +
                           "-byte header");
  Hdr = reinterpret_cast<const ImageHeader *>(Base);
  if (std::memcmp(Hdr->MagicBytes, Magic, sizeof(Magic)) != 0)
    return fail(Error, "not a corpus image: bad magic (expected \"PSTIMG01\")");
  if (Hdr->Endian != EndianTag) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "0x%08x", Hdr->Endian);
    return fail(Error,
                std::string("corpus image endianness mismatch: tag reads ") +
                    Buf + "; the image was written on a different-endian "
                          "host and cannot be mapped here");
  }
  if (Hdr->Version != FormatVersion)
    return fail(Error, "unsupported corpus image format version " +
                           std::to_string(Hdr->Version) +
                           " (this reader understands version " +
                           std::to_string(FormatVersion) + ")");
  if (Hdr->FuncRecordBytes != sizeof(FuncRecord))
    return fail(Error, "corpus image function records are " +
                           std::to_string(Hdr->FuncRecordBytes) +
                           " bytes; this reader expects " +
                           std::to_string(sizeof(FuncRecord)));
  if (Hdr->FileBytes != Bytes)
    return fail(Error, "corpus image truncated: file is " +
                           std::to_string(Bytes) +
                           " bytes but the header records " +
                           std::to_string(Hdr->FileBytes));
  if (Hdr->SectionCount != NumSections)
    return fail(Error, "corpus image has " +
                           std::to_string(Hdr->SectionCount) +
                           " sections; format version 1 defines " +
                           std::to_string(NumSections));
  uint64_t TableEnd =
      sizeof(ImageHeader) + uint64_t(NumSections) * sizeof(SectionDesc);
  if (TableEnd > Bytes)
    return fail(Error, "corpus image truncated inside the section table");
  Sections = reinterpret_cast<const SectionDesc *>(Base + sizeof(ImageHeader));

  for (uint32_t K = 0; K < NumSections; ++K) {
    const SectionDesc &D = Sections[K];
    std::string Name = std::string(sectionName(SectionKind(K))) +
                       " (section " + std::to_string(K) + ")";
    if (D.Kind != K)
      return fail(Error, "corpus image section table corrupt: slot " +
                             std::to_string(K) + " holds kind " +
                             std::to_string(D.Kind));
    if (D.Offset % SectionAlign != 0)
      return fail(Error, "corpus image section " + Name + " is misaligned");
    if (D.Offset < TableEnd || D.Offset > Bytes || D.Bytes > Bytes - D.Offset)
      return fail(Error, "corpus image truncated: section " + Name +
                             " extends past the end of the file");
    if (D.Bytes % elemSize(SectionKind(K)) != 0)
      return fail(Error, "corpus image section " + Name +
                             " has a size that is not a multiple of its "
                             "element size");
  }

  auto Elems = [&](SectionKind K) {
    return Sections[uint32_t(K)].Bytes / elemSize(K);
  };
  if (Elems(SectionKind::FuncTable) != Hdr->NumFunctions)
    return fail(Error,
                "corpus image function table holds " +
                    std::to_string(Elems(SectionKind::FuncTable)) +
                    " records but the header records " +
                    std::to_string(Hdr->NumFunctions) + " functions");
  Funcs = reinterpret_cast<const FuncRecord *>(
      Base + Sections[uint32_t(SectionKind::FuncTable)].Offset);

  // Cross-section shape: the per-node, per-edge, and per-region families
  // must agree in element count.
  const uint64_t NodeElems = Elems(SectionKind::NodeRegion);
  const uint64_t EdgeElems = Elems(SectionKind::SuccEdge);
  const uint64_t CsrElems = Elems(SectionKind::SuccOff);
  const uint64_t RegionElems = Elems(SectionKind::Regions);
  const uint64_t RegionCsrElems = Elems(SectionKind::ChildOff);
  const uint64_t ChildElems = Elems(SectionKind::ChildVal);
  const uint64_t StrTabBytes = Sections[uint32_t(SectionKind::StrTab)].Bytes;
  for (SectionKind K : {SectionKind::SuccTo, SectionKind::PredEdge,
                        SectionKind::PredFrom, SectionKind::EdgeSrc,
                        SectionKind::EdgeDst, SectionKind::EdgeRegion,
                        SectionKind::EntryOf, SectionKind::ExitOf})
    if (Elems(K) != EdgeElems)
      return fail(Error, std::string("corpus image per-edge sections "
                                     "disagree in size (") +
                             sectionName(K) + ")");
  if (Elems(SectionKind::PredOff) != CsrElems ||
      Elems(SectionKind::ImmOff) != RegionCsrElems ||
      Elems(SectionKind::ImmVal) != NodeElems ||
      Elems(SectionKind::NodeLabelOff) != NodeElems)
    return fail(Error, "corpus image section sizes are inconsistent");
  if (StrTabBytes > 0 && Base[Sections[uint32_t(SectionKind::StrTab)].Offset +
                              StrTabBytes - 1] != 0)
    return fail(Error, "corpus image string table is not NUL-terminated");

  // Per-function bounds: every slice must land inside its global array.
  for (uint64_t I = 0; I < Hdr->NumFunctions; ++I) {
    const FuncRecord &F = Funcs[I];
    auto Bad = [&](const char *What) {
      return fail(Error, "corpus image function " + std::to_string(I) +
                             " has an out-of-bounds " + What + " slice");
    };
    if (F.NumRegions < 1)
      return fail(Error, "corpus image function " + std::to_string(I) +
                             " has no PST root region");
    if (F.NodeBase > NodeElems || F.NumNodes > NodeElems - F.NodeBase)
      return Bad("node");
    if (F.EdgeBase > EdgeElems || F.NumEdges > EdgeElems - F.EdgeBase)
      return Bad("edge");
    if (F.CsrBase > CsrElems || uint64_t(F.NumNodes) + 1 > CsrElems - F.CsrBase)
      return Bad("CSR offset");
    if (F.RegionBase > RegionElems ||
        F.NumRegions > RegionElems - F.RegionBase)
      return Bad("region");
    if (F.RegionCsrBase > RegionCsrElems ||
        uint64_t(F.NumRegions) + 1 > RegionCsrElems - F.RegionCsrBase)
      return Bad("region CSR offset");
    if (F.ChildBase > ChildElems ||
        uint64_t(F.NumRegions) - 1 > ChildElems - F.ChildBase)
      return Bad("child");
    if (F.NameOff >= StrTabBytes)
      return Bad("name");
    if (F.Entry >= F.NumNodes || F.Exit >= F.NumNodes)
      return fail(Error, "corpus image function " + std::to_string(I) +
                             " has an out-of-range entry or exit node");
  }

  PST_COUNTER("image.map.functions", Hdr->NumFunctions);
  PST_VALUE("image.map.bytes", double(Bytes));
  return true;
}

CorpusImage CorpusImage::map(const std::string &Path, std::string *Error) {
  PST_SPAN("image.map");
  CorpusImage Img;
#if PST_IMAGE_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    fail(Error, "cannot open corpus image '" + Path +
                    "': " + std::strerror(errno));
    return Img;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    fail(Error, "cannot stat corpus image '" + Path +
                    "': " + std::strerror(errno));
    ::close(Fd);
    return Img;
  }
  size_t Len = size_t(St.st_size);
  void *Addr = Len ? ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd, 0)
                   : nullptr;
  ::close(Fd); // The mapping keeps its own reference.
  if (Len && Addr == MAP_FAILED) {
    fail(Error, "cannot map corpus image '" + Path +
                    "': " + std::strerror(errno));
    return Img;
  }
  Img.MapAddr = Addr;
  Img.MapLen = Len;
  Img.Base = static_cast<const uint8_t *>(Addr);
  Img.Bytes = Len;
#else
  // Portability fallback: read the file into owned memory. Same validation
  // and accessor surface, no zero-copy win.
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    fail(Error, "cannot open corpus image '" + Path + "'");
    return Img;
  }
  std::vector<uint8_t> Buf((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());
  Img.OwnedBytes = std::move(Buf);
  Img.Base = Img.OwnedBytes.data();
  Img.Bytes = Img.OwnedBytes.size();
#endif
  if (!Img.attach(Error))
    Img.reset();
  return Img;
}

CorpusImage CorpusImage::fromBytes(std::vector<uint8_t> Bytes,
                                   std::string *Error) {
  CorpusImage Img;
  Img.OwnedBytes = std::move(Bytes);
  Img.Base = Img.OwnedBytes.data();
  Img.Bytes = Img.OwnedBytes.size();
  if (!Img.attach(Error))
    Img.reset();
  return Img;
}

const uint8_t *CorpusImage::sectionBase(SectionKind K) const {
  return Base + Sections[uint32_t(K)].Offset;
}

bool CorpusImage::verifySection(uint32_t I) const {
  const SectionDesc &D = Sections[I];
  return fnv1a(Base + D.Offset, D.Bytes) == D.Checksum;
}

bool CorpusImage::verify(std::string *Error) const {
  PST_SPAN("image.verify");
  assert(valid() && "verify on an invalid image");
  for (uint32_t K = 0; K < Hdr->SectionCount; ++K)
    if (!verifySection(K))
      return fail(Error,
                  std::string("corpus image checksum mismatch in section ") +
                      sectionName(SectionKind(K)) + " (section " +
                      std::to_string(K) + "): the image is corrupted");
  return true;
}

std::string_view CorpusImage::functionName(uint64_t I) const {
  const char *Str =
      reinterpret_cast<const char *>(sectionBase(SectionKind::StrTab));
  return Str + Funcs[I].NameOff; // NUL-terminated; checked in attach().
}

CfgView CorpusImage::cfg(uint64_t I) const {
  const FuncRecord &F = Funcs[I];
  auto At32 = [&](SectionKind K, uint64_t Base) {
    return reinterpret_cast<const uint32_t *>(sectionBase(K)) + Base;
  };
  return CfgView::adopt(
      F.NumNodes, F.NumEdges, F.Entry, F.Exit,
      At32(SectionKind::SuccOff, F.CsrBase),
      At32(SectionKind::PredOff, F.CsrBase),
      At32(SectionKind::SuccEdge, F.EdgeBase),
      At32(SectionKind::SuccTo, F.EdgeBase),
      At32(SectionKind::PredEdge, F.EdgeBase),
      At32(SectionKind::PredFrom, F.EdgeBase),
      At32(SectionKind::EdgeSrc, F.EdgeBase),
      At32(SectionKind::EdgeDst, F.EdgeBase));
}

ProgramStructureTree CorpusImage::pst(uint64_t I) const {
  const FuncRecord &F = Funcs[I];
  auto At32 = [&](SectionKind K, uint64_t Base, uint64_t Count) {
    return std::span<const uint32_t>(
        reinterpret_cast<const uint32_t *>(sectionBase(K)) + Base, Count);
  };
  std::span<const SeseRegion> Regions(
      reinterpret_cast<const SeseRegion *>(sectionBase(SectionKind::Regions)) +
          F.RegionBase,
      F.NumRegions);
  return ProgramStructureTree::adoptExternal(
      Regions, At32(SectionKind::NodeRegion, F.NodeBase, F.NumNodes),
      At32(SectionKind::EdgeRegion, F.EdgeBase, F.NumEdges),
      At32(SectionKind::EntryOf, F.EdgeBase, F.NumEdges),
      At32(SectionKind::ExitOf, F.EdgeBase, F.NumEdges),
      At32(SectionKind::ChildOff, F.RegionCsrBase, uint64_t(F.NumRegions) + 1),
      At32(SectionKind::ChildVal, F.ChildBase, uint64_t(F.NumRegions) - 1),
      At32(SectionKind::ImmOff, F.RegionCsrBase, uint64_t(F.NumRegions) + 1),
      At32(SectionKind::ImmVal, F.NodeBase, F.NumNodes));
}

Cfg CorpusImage::materializeCfg(uint64_t I) const {
  const FuncRecord &F = Funcs[I];
  const char *Str =
      reinterpret_cast<const char *>(sectionBase(SectionKind::StrTab));
  const uint64_t *LabelOff = reinterpret_cast<const uint64_t *>(
                                 sectionBase(SectionKind::NodeLabelOff)) +
                             F.NodeBase;
  const uint32_t *Src = reinterpret_cast<const uint32_t *>(
                            sectionBase(SectionKind::EdgeSrc)) +
                        F.EdgeBase;
  const uint32_t *Dst = reinterpret_cast<const uint32_t *>(
                            sectionBase(SectionKind::EdgeDst)) +
                        F.EdgeBase;
  Cfg G;
  G.reserveNodes(F.NumNodes);
  G.reserveEdges(F.NumEdges);
  for (uint32_t N = 0; N < F.NumNodes; ++N)
    G.addNode(std::string(Str + LabelOff[N]));
  // Appending in edge-id order reproduces adjacency-list order exactly:
  // Cfg construction only ever appends.
  for (uint32_t E = 0; E < F.NumEdges; ++E)
    G.addEdge(Src[E], Dst[E]);
  G.setEntry(F.Entry);
  G.setExit(F.Exit);
  return G;
}

//===----------------------------------------------------------------------===//
// Free helpers
//===----------------------------------------------------------------------===//

std::vector<uint8_t> pst::buildCorpusImage(std::span<const Cfg *const> Fns,
                                           std::span<const std::string> Names) {
  PST_SPAN("image.build");
  assert((Names.empty() || Names.size() == Fns.size()) &&
         "names must parallel functions");
  CorpusImageBuilder B(Fns.size());
  CfgViewScratch VS;
  PstBuildScratch PS;
  std::vector<ProgramStructureTree> Trees(Fns.size());
  for (size_t I = 0; I < Fns.size(); ++I) {
    CfgView V = CfgView::build(*Fns[I], VS);
    Trees[I] = ProgramStructureTree::build(V, PS);
    B.setShape(I, *Fns[I], Trees[I], Names.empty() ? "" : Names[I]);
  }
  B.layout();
  for (size_t I = 0; I < Fns.size(); ++I) {
    CfgView V = CfgView::build(*Fns[I], VS);
    B.fill(I, *Fns[I], V, Trees[I], Names.empty() ? "" : Names[I]);
  }
  return B.finish();
}

bool pst::writeImageFile(const std::string &Path,
                         std::span<const uint8_t> Bytes, std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return fail(Error, "cannot open '" + Path + "' for writing");
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            std::streamsize(Bytes.size()));
  Out.close();
  if (!Out)
    return fail(Error, "write to '" + Path + "' failed");
  return true;
}
