//===- image/CorpusImage.cpp - Frozen mmap-able corpus images -------------===//
//
// Part of the PST library (see include/pst/image/CorpusImage.h).
//
//===----------------------------------------------------------------------===//

#include "pst/image/CorpusImage.h"

#include "pst/obs/ScopedTimer.h"
#include "pst/obs/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#define PST_IMAGE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PST_IMAGE_HAVE_MMAP 0
#endif

using namespace pst;
using namespace pst::image;

//===----------------------------------------------------------------------===//
// Format helpers
//===----------------------------------------------------------------------===//

const char *pst::image::sectionName(SectionKind K) {
  switch (K) {
  case SectionKind::FuncTable:
    return "FuncTable";
  case SectionKind::SuccOff:
    return "SuccOff";
  case SectionKind::PredOff:
    return "PredOff";
  case SectionKind::SuccEdge:
    return "SuccEdge";
  case SectionKind::SuccTo:
    return "SuccTo";
  case SectionKind::PredEdge:
    return "PredEdge";
  case SectionKind::PredFrom:
    return "PredFrom";
  case SectionKind::EdgeSrc:
    return "EdgeSrc";
  case SectionKind::EdgeDst:
    return "EdgeDst";
  case SectionKind::Regions:
    return "Regions";
  case SectionKind::NodeRegion:
    return "NodeRegion";
  case SectionKind::EdgeRegion:
    return "EdgeRegion";
  case SectionKind::EntryOf:
    return "EntryOf";
  case SectionKind::ExitOf:
    return "ExitOf";
  case SectionKind::ChildOff:
    return "ChildOff";
  case SectionKind::ChildVal:
    return "ChildVal";
  case SectionKind::ImmOff:
    return "ImmOff";
  case SectionKind::ImmVal:
    return "ImmVal";
  case SectionKind::NodeLabelOff:
    return "NodeLabelOff";
  case SectionKind::StrTab:
    return "StrTab";
  case SectionKind::NumKinds:
    break;
  }
  return "<unknown>";
}

uint64_t pst::image::fnv1aUpdate(uint64_t H, const void *Data,
                                 uint64_t Bytes) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  for (uint64_t I = 0; I < Bytes; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t pst::image::fnv1a(const void *Data, uint64_t Bytes) {
  return fnv1aUpdate(Fnv1aBasis, Data, Bytes);
}

namespace {

uint64_t alignUp(uint64_t V) {
  return (V + (SectionAlign - 1)) & ~(SectionAlign - 1);
}

/// Element size of each section's global array.
uint64_t elemSize(SectionKind K) {
  switch (K) {
  case SectionKind::FuncTable:
    return sizeof(FuncRecord);
  case SectionKind::Regions:
    return sizeof(SeseRegion);
  case SectionKind::NodeLabelOff:
    return sizeof(uint64_t);
  case SectionKind::StrTab:
    return 1;
  default:
    return sizeof(uint32_t);
  }
}

/// Bytes of each function's NUL-terminated strings: name first, then one
/// label per node, in node-id order.
uint64_t strBytes(const Cfg &G, std::string_view Name) {
  uint64_t B = Name.size() + 1;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    B += G.node(N).Label.size() + 1;
  return B;
}

/// Element base of section \p K for record \p F: the global element index
/// at which the function's slice starts. Consecutive functions occupy
/// consecutive element ranges in every section, so a chunk's slice of any
/// section is the contiguous range [recBase(first), recBase(one-past-last)).
uint64_t recBase(const FuncRecord &F, SectionKind K) {
  switch (K) {
  case SectionKind::FuncTable:
    return 0; // Not a per-function fill target (pass-1 output).
  case SectionKind::SuccOff:
  case SectionKind::PredOff:
    return F.CsrBase;
  case SectionKind::Regions:
    return F.RegionBase;
  case SectionKind::NodeRegion:
  case SectionKind::ImmVal:
  case SectionKind::NodeLabelOff:
    return F.NodeBase;
  case SectionKind::ChildOff:
  case SectionKind::ImmOff:
    return F.RegionCsrBase;
  case SectionKind::ChildVal:
    return F.ChildBase;
  case SectionKind::StrTab:
    return F.NameOff;
  default:
    return F.EdgeBase; // Six CSR edge arrays + EdgeRegion/EntryOf/ExitOf.
  }
}

/// Copies one function's arrays into per-section storage. \p Sec[K] points
/// at the byte of section K holding global element index \p Bias[K]: the
/// in-memory arena passes its section bases with zero bias, the chunk
/// writer its staging buffers with the chunk's first elements. Both
/// builders funnel through this one copy routine, so their bytes cannot
/// diverge. Destination storage must be pre-zeroed (string NULs and
/// padding are never written explicitly).
void fillFunctionSlices(uint8_t *const Sec[NumSections],
                        const uint64_t Bias[NumSections], const FuncRecord &F,
                        const Cfg &G, const CfgView &V,
                        const ProgramStructureTree &T, std::string_view Name,
                        uint64_t StrBytesExpected) {
  const uint64_t N = F.NumNodes, E = F.NumEdges, R = F.NumRegions;
  assert(V.numNodes() == N && V.numEdges() == E && T.numRegions() == R &&
         "fill disagrees with the recorded shape");
  (void)StrBytesExpected;

  auto Copy32 = [&](SectionKind K, uint64_t Base, const uint32_t *Src,
                    uint64_t Count) {
    std::memcpy(Sec[uint32_t(K)] + (Base - Bias[uint32_t(K)]) * 4, Src,
                Count * 4);
  };
  Copy32(SectionKind::SuccOff, F.CsrBase, V.succOff(), N + 1);
  Copy32(SectionKind::PredOff, F.CsrBase, V.predOff(), N + 1);
  Copy32(SectionKind::SuccEdge, F.EdgeBase, V.succEdge(), E);
  Copy32(SectionKind::SuccTo, F.EdgeBase, V.succTo(), E);
  Copy32(SectionKind::PredEdge, F.EdgeBase, V.predEdge(), E);
  Copy32(SectionKind::PredFrom, F.EdgeBase, V.predFrom(), E);
  Copy32(SectionKind::EdgeSrc, F.EdgeBase, V.edgeSrc(), E);
  Copy32(SectionKind::EdgeDst, F.EdgeBase, V.edgeDst(), E);

  std::memcpy(Sec[uint32_t(SectionKind::Regions)] +
                  (F.RegionBase - Bias[uint32_t(SectionKind::Regions)]) *
                      sizeof(SeseRegion),
              T.regionTable().data(), R * sizeof(SeseRegion));
  Copy32(SectionKind::NodeRegion, F.NodeBase, T.nodeRegionTable().data(), N);
  Copy32(SectionKind::EdgeRegion, F.EdgeBase, T.edgeRegionTable().data(), E);
  Copy32(SectionKind::EntryOf, F.EdgeBase, T.entryOfTable().data(), E);
  Copy32(SectionKind::ExitOf, F.EdgeBase, T.exitOfTable().data(), E);
  Copy32(SectionKind::ChildOff, F.RegionCsrBase, T.childOffTable().data(),
         R + 1);
  Copy32(SectionKind::ChildVal, F.ChildBase, T.childValTable().data(), R - 1);
  Copy32(SectionKind::ImmOff, F.RegionCsrBase, T.immOffTable().data(), R + 1);
  Copy32(SectionKind::ImmVal, F.NodeBase, T.immValTable().data(), N);

  const uint64_t StrBias = Bias[uint32_t(SectionKind::StrTab)];
  char *Str = reinterpret_cast<char *>(Sec[uint32_t(SectionKind::StrTab)]);
  uint64_t *LabelOff =
      reinterpret_cast<uint64_t *>(Sec[uint32_t(SectionKind::NodeLabelOff)]) +
      (F.NodeBase - Bias[uint32_t(SectionKind::NodeLabelOff)]);
  // `At` stays an absolute StrTab offset — the *stored* label offsets are
  // absolute regardless of where the bytes are being staged.
  uint64_t At = F.NameOff;
  std::memcpy(Str + (At - StrBias), Name.data(), Name.size());
  At += Name.size() + 1; // Storage is zeroed, so the NUL is already there.
  for (NodeId Nd = 0; Nd < N; ++Nd) {
    const std::string &L = G.node(Nd).Label;
    LabelOff[Nd] = At;
    std::memcpy(Str + (At - StrBias), L.data(), L.size());
    At += L.size() + 1;
  }
  assert(At == F.NameOff + StrBytesExpected && "string bytes drifted");
}

} // namespace

FunctionShape pst::image::functionShape(const Cfg &G,
                                        const ProgramStructureTree &T,
                                        std::string_view Name) {
  FunctionShape S;
  S.NumNodes = G.numNodes();
  S.NumEdges = G.numEdges();
  S.NumRegions = T.numRegions();
  S.Entry = G.entry();
  S.Exit = G.exit();
  S.StrBytes = strBytes(G, Name);
  return S;
}

FuncRecord pst::image::LayoutCursor::append(const FunctionShape &S) {
  assert(S.NumRegions >= 1 && "a PST always has its synthetic root");
  FuncRecord F;
  F.NodeBase = Nodes;
  F.EdgeBase = Edges;
  F.CsrBase = Csr;
  F.RegionBase = Regions;
  F.RegionCsrBase = RegionCsr;
  F.ChildBase = Children;
  F.NameOff = Str;
  F.NumNodes = S.NumNodes;
  F.NumEdges = S.NumEdges;
  F.NumRegions = S.NumRegions;
  F.Entry = S.Entry;
  F.Exit = S.Exit;
  Nodes += S.NumNodes;
  Edges += S.NumEdges;
  Csr += uint64_t(S.NumNodes) + 1;
  Regions += S.NumRegions;
  RegionCsr += uint64_t(S.NumRegions) + 1;
  Children += S.NumRegions - 1;
  Str += S.StrBytes;
  return F;
}

void pst::image::finalizeSectionLayout(uint64_t NumFunctions,
                                       const LayoutCursor &Cur,
                                       ImageLayout &L) {
  uint64_t (&SB)[NumSections] = L.SectionBytes;
  SB[uint32_t(SectionKind::FuncTable)] = NumFunctions * sizeof(FuncRecord);
  SB[uint32_t(SectionKind::SuccOff)] = Cur.Csr * 4;
  SB[uint32_t(SectionKind::PredOff)] = Cur.Csr * 4;
  for (SectionKind K : {SectionKind::SuccEdge, SectionKind::SuccTo,
                        SectionKind::PredEdge, SectionKind::PredFrom,
                        SectionKind::EdgeSrc, SectionKind::EdgeDst,
                        SectionKind::EdgeRegion, SectionKind::EntryOf,
                        SectionKind::ExitOf})
    SB[uint32_t(K)] = Cur.Edges * 4;
  SB[uint32_t(SectionKind::Regions)] = Cur.Regions * sizeof(SeseRegion);
  SB[uint32_t(SectionKind::NodeRegion)] = Cur.Nodes * 4;
  SB[uint32_t(SectionKind::ChildOff)] = Cur.RegionCsr * 4;
  SB[uint32_t(SectionKind::ChildVal)] = Cur.Children * 4;
  SB[uint32_t(SectionKind::ImmOff)] = Cur.RegionCsr * 4;
  SB[uint32_t(SectionKind::ImmVal)] = Cur.Nodes * 4;
  SB[uint32_t(SectionKind::NodeLabelOff)] = Cur.Nodes * 8;
  SB[uint32_t(SectionKind::StrTab)] = Cur.Str;

  uint64_t Off =
      alignUp(sizeof(ImageHeader) + uint64_t(NumSections) * sizeof(SectionDesc));
  for (uint32_t K = 0; K < NumSections; ++K) {
    L.SectionOffset[K] = Off;
    Off = alignUp(Off + L.SectionBytes[K]);
  }
  L.FileBytes = Off;
}

ImageLayout
pst::image::computeCorpusLayout(std::span<const FunctionShape> Shapes) {
  ImageLayout L;
  L.Funcs.resize(Shapes.size());
  // The offset-table fixup pass: running element totals become per-function
  // bases. All accumulators are 64-bit; per-function counts are 32-bit.
  LayoutCursor Cur;
  for (size_t I = 0; I < Shapes.size(); ++I)
    L.Funcs[I] = Cur.append(Shapes[I]);
  finalizeSectionLayout(Shapes.size(), Cur, L);
  return L;
}

//===----------------------------------------------------------------------===//
// CorpusImageBuilder
//===----------------------------------------------------------------------===//

CorpusImageBuilder::CorpusImageBuilder(size_t NumFunctions)
    : Shapes(NumFunctions) {}

void CorpusImageBuilder::setShape(size_t I, const Cfg &G,
                                  const ProgramStructureTree &T,
                                  std::string_view Name) {
  assert(I < Shapes.size() && !LaidOut && "setShape after layout");
  Shapes[I] = functionShape(G, T, Name);
}

void CorpusImageBuilder::layout() {
  assert(!LaidOut && "layout runs once");
  Layout = computeCorpusLayout(Shapes);
  Arena.assign(Layout.FileBytes, 0); // Zeroed padding keeps output canonical.
  // The offset table is pure layout output; write it now so fill() only
  // touches per-function slices.
  std::memcpy(sectionData(SectionKind::FuncTable), Layout.Funcs.data(),
              Layout.Funcs.size() * sizeof(FuncRecord));
  LaidOut = true;
}

uint8_t *CorpusImageBuilder::sectionData(SectionKind K) {
  return Arena.data() + Layout.SectionOffset[uint32_t(K)];
}

void CorpusImageBuilder::fill(size_t I, const Cfg &G, const CfgView &V,
                              const ProgramStructureTree &T,
                              std::string_view Name) {
  assert(LaidOut && "fill before layout");
  uint8_t *Sec[NumSections];
  for (uint32_t K = 0; K < NumSections; ++K)
    Sec[K] = sectionData(SectionKind(K));
  static constexpr uint64_t ZeroBias[NumSections] = {};
  fillFunctionSlices(Sec, ZeroBias, Layout.Funcs[I], G, V, T, Name,
                     Shapes[I].StrBytes);
}

std::vector<uint8_t> CorpusImageBuilder::finish() {
  assert(LaidOut && "finish before layout");
  SectionDesc *Sections =
      reinterpret_cast<SectionDesc *>(Arena.data() + sizeof(ImageHeader));
  for (uint32_t K = 0; K < NumSections; ++K) {
    SectionDesc &D = Sections[K];
    D.Kind = K;
    D.Offset = Layout.SectionOffset[K];
    D.Bytes = Layout.SectionBytes[K];
    D.Checksum = fnv1a(Arena.data() + D.Offset, D.Bytes);
  }

  ImageHeader H;
  std::memcpy(H.MagicBytes, Magic, sizeof(Magic));
  H.Version = FormatVersion;
  H.Endian = EndianTag;
  H.FileBytes = Layout.FileBytes;
  H.NumFunctions = Layout.Funcs.size();
  H.SectionCount = NumSections;
  H.FuncRecordBytes = sizeof(FuncRecord);
  std::memcpy(Arena.data(), &H, sizeof(H));

  PST_COUNTER("image.build.images", 1);
  PST_VALUE("image.build.bytes", double(Layout.FileBytes));
  PST_VALUE("image.build.functions", double(Layout.Funcs.size()));
  return std::move(Arena);
}

//===----------------------------------------------------------------------===//
// CorpusImage
//===----------------------------------------------------------------------===//

void CorpusImage::reset() {
#if PST_IMAGE_HAVE_MMAP
  if (MapAddr)
    ::munmap(MapAddr, MapLen);
#endif
  MapAddr = nullptr;
  MapLen = 0;
  OwnedBytes.clear();
  Base = nullptr;
  Bytes = 0;
  Hdr = nullptr;
  Sections = nullptr;
  Funcs = nullptr;
}

CorpusImage::~CorpusImage() { reset(); }

CorpusImage::CorpusImage(CorpusImage &&O) noexcept { *this = std::move(O); }

CorpusImage &CorpusImage::operator=(CorpusImage &&O) noexcept {
  if (this == &O)
    return *this;
  reset();
  OwnedBytes = std::move(O.OwnedBytes);
  Base = O.Base;
  Bytes = O.Bytes;
  MapAddr = O.MapAddr;
  MapLen = O.MapLen;
  Hdr = O.Hdr;
  Sections = O.Sections;
  Funcs = O.Funcs;
  O.MapAddr = nullptr;
  O.MapLen = 0;
  O.Base = nullptr;
  O.Bytes = 0;
  O.Hdr = nullptr;
  O.Sections = nullptr;
  O.Funcs = nullptr;
  return *this;
}

namespace {

bool fail(std::string *Error, std::string Msg) {
  if (Error)
    *Error = std::move(Msg);
  return false;
}

} // namespace

/// Structural validation over the mapped bytes: everything that can be
/// checked without reading the array payloads. Clears the image on failure.
bool CorpusImage::attach(std::string *Error) {
  if (Bytes < sizeof(ImageHeader))
    return fail(Error, "corpus image truncated: " + std::to_string(Bytes) +
                           " bytes is smaller than the " +
                           std::to_string(sizeof(ImageHeader)) +
                           "-byte header");
  Hdr = reinterpret_cast<const ImageHeader *>(Base);
  if (std::memcmp(Hdr->MagicBytes, Magic, sizeof(Magic)) != 0)
    return fail(Error, "not a corpus image: bad magic (expected \"PSTIMG01\")");
  if (Hdr->Endian != EndianTag) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "0x%08x", Hdr->Endian);
    return fail(Error,
                std::string("corpus image endianness mismatch: tag reads ") +
                    Buf + "; the image was written on a different-endian "
                          "host and cannot be mapped here");
  }
  if (Hdr->Version != FormatVersion)
    return fail(Error, "unsupported corpus image format version " +
                           std::to_string(Hdr->Version) +
                           " (this reader understands version " +
                           std::to_string(FormatVersion) + ")");
  if (Hdr->FuncRecordBytes != sizeof(FuncRecord))
    return fail(Error, "corpus image function records are " +
                           std::to_string(Hdr->FuncRecordBytes) +
                           " bytes; this reader expects " +
                           std::to_string(sizeof(FuncRecord)));
  if (Hdr->FileBytes != Bytes)
    return fail(Error, "corpus image truncated: file is " +
                           std::to_string(Bytes) +
                           " bytes but the header records " +
                           std::to_string(Hdr->FileBytes));
  if (Hdr->SectionCount != NumSections)
    return fail(Error, "corpus image has " +
                           std::to_string(Hdr->SectionCount) +
                           " sections; format version 1 defines " +
                           std::to_string(NumSections));
  uint64_t TableEnd =
      sizeof(ImageHeader) + uint64_t(NumSections) * sizeof(SectionDesc);
  if (TableEnd > Bytes)
    return fail(Error, "corpus image truncated inside the section table");
  Sections = reinterpret_cast<const SectionDesc *>(Base + sizeof(ImageHeader));

  for (uint32_t K = 0; K < NumSections; ++K) {
    const SectionDesc &D = Sections[K];
    std::string Name = std::string(sectionName(SectionKind(K))) +
                       " (section " + std::to_string(K) + ")";
    if (D.Kind != K)
      return fail(Error, "corpus image section table corrupt: slot " +
                             std::to_string(K) + " holds kind " +
                             std::to_string(D.Kind));
    if (D.Offset % SectionAlign != 0)
      return fail(Error, "corpus image section " + Name + " is misaligned");
    if (D.Offset < TableEnd || D.Offset > Bytes || D.Bytes > Bytes - D.Offset)
      return fail(Error, "corpus image truncated: section " + Name +
                             " extends past the end of the file");
    if (D.Bytes % elemSize(SectionKind(K)) != 0)
      return fail(Error, "corpus image section " + Name +
                             " has a size that is not a multiple of its "
                             "element size");
  }

  auto Elems = [&](SectionKind K) {
    return Sections[uint32_t(K)].Bytes / elemSize(K);
  };
  if (Elems(SectionKind::FuncTable) != Hdr->NumFunctions)
    return fail(Error,
                "corpus image function table holds " +
                    std::to_string(Elems(SectionKind::FuncTable)) +
                    " records but the header records " +
                    std::to_string(Hdr->NumFunctions) + " functions");
  Funcs = reinterpret_cast<const FuncRecord *>(
      Base + Sections[uint32_t(SectionKind::FuncTable)].Offset);

  // Cross-section shape: the per-node, per-edge, and per-region families
  // must agree in element count.
  const uint64_t NodeElems = Elems(SectionKind::NodeRegion);
  const uint64_t EdgeElems = Elems(SectionKind::SuccEdge);
  const uint64_t CsrElems = Elems(SectionKind::SuccOff);
  const uint64_t RegionElems = Elems(SectionKind::Regions);
  const uint64_t RegionCsrElems = Elems(SectionKind::ChildOff);
  const uint64_t ChildElems = Elems(SectionKind::ChildVal);
  const uint64_t StrTabBytes = Sections[uint32_t(SectionKind::StrTab)].Bytes;
  for (SectionKind K : {SectionKind::SuccTo, SectionKind::PredEdge,
                        SectionKind::PredFrom, SectionKind::EdgeSrc,
                        SectionKind::EdgeDst, SectionKind::EdgeRegion,
                        SectionKind::EntryOf, SectionKind::ExitOf})
    if (Elems(K) != EdgeElems)
      return fail(Error, std::string("corpus image per-edge sections "
                                     "disagree in size (") +
                             sectionName(K) + ")");
  if (Elems(SectionKind::PredOff) != CsrElems ||
      Elems(SectionKind::ImmOff) != RegionCsrElems ||
      Elems(SectionKind::ImmVal) != NodeElems ||
      Elems(SectionKind::NodeLabelOff) != NodeElems)
    return fail(Error, "corpus image section sizes are inconsistent");
  if (StrTabBytes > 0 && Base[Sections[uint32_t(SectionKind::StrTab)].Offset +
                              StrTabBytes - 1] != 0)
    return fail(Error, "corpus image string table is not NUL-terminated");

  // Per-function bounds: every slice must land inside its global array.
  // The walk reads every FuncRecord — 80 MB at a million functions — so on
  // a mapped image the validated record pages are dropped block by block
  // (they fault back in on demand); the walk's resident footprint stays
  // one block regardless of corpus size.
  const uint64_t BlockFns = uint64_t(1) << 16;
#if PST_IMAGE_HAVE_MMAP
  auto DropValidatedRecords = [&](uint64_t BeginFn, uint64_t EndFn) {
    if (!MapAddr)
      return;
    const uintptr_t Page = uintptr_t(::sysconf(_SC_PAGESIZE));
    const uintptr_t TabBase =
        uintptr_t(Base) + Sections[uint32_t(SectionKind::FuncTable)].Offset;
    uintptr_t Lo =
        (TabBase + BeginFn * sizeof(FuncRecord) + Page - 1) & ~(Page - 1);
    uintptr_t Hi = (TabBase + EndFn * sizeof(FuncRecord)) & ~(Page - 1);
    if (Hi > Lo)
      ::madvise(reinterpret_cast<void *>(Lo), Hi - Lo, MADV_DONTNEED);
  };
#endif
  for (uint64_t Block = 0; Block < Hdr->NumFunctions; Block += BlockFns) {
    const uint64_t BlockEnd = std::min(Hdr->NumFunctions, Block + BlockFns);
    for (uint64_t I = Block; I < BlockEnd; ++I) {
    const FuncRecord &F = Funcs[I];
    auto Bad = [&](const char *What) {
      return fail(Error, "corpus image function " + std::to_string(I) +
                             " has an out-of-bounds " + What + " slice");
    };
    if (F.NumRegions < 1)
      return fail(Error, "corpus image function " + std::to_string(I) +
                             " has no PST root region");
    if (F.NodeBase > NodeElems || F.NumNodes > NodeElems - F.NodeBase)
      return Bad("node");
    if (F.EdgeBase > EdgeElems || F.NumEdges > EdgeElems - F.EdgeBase)
      return Bad("edge");
    if (F.CsrBase > CsrElems || uint64_t(F.NumNodes) + 1 > CsrElems - F.CsrBase)
      return Bad("CSR offset");
    if (F.RegionBase > RegionElems ||
        F.NumRegions > RegionElems - F.RegionBase)
      return Bad("region");
    if (F.RegionCsrBase > RegionCsrElems ||
        uint64_t(F.NumRegions) + 1 > RegionCsrElems - F.RegionCsrBase)
      return Bad("region CSR offset");
    if (F.ChildBase > ChildElems ||
        uint64_t(F.NumRegions) - 1 > ChildElems - F.ChildBase)
      return Bad("child");
    if (F.NameOff >= StrTabBytes)
      return Bad("name");
    if (F.Entry >= F.NumNodes || F.Exit >= F.NumNodes)
      return fail(Error, "corpus image function " + std::to_string(I) +
                             " has an out-of-range entry or exit node");
    }
#if PST_IMAGE_HAVE_MMAP
    DropValidatedRecords(Block, BlockEnd);
#endif
  }

  PST_COUNTER("image.map.functions", Hdr->NumFunctions);
  PST_VALUE("image.map.bytes", double(Bytes));
  return true;
}

CorpusImage CorpusImage::map(const std::string &Path, std::string *Error) {
  PST_SPAN("image.map");
  CorpusImage Img;
#if PST_IMAGE_HAVE_MMAP
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    fail(Error, "cannot open corpus image '" + Path +
                    "': " + std::strerror(errno));
    return Img;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    fail(Error, "cannot stat corpus image '" + Path +
                    "': " + std::strerror(errno));
    ::close(Fd);
    return Img;
  }
  size_t Len = size_t(St.st_size);
  void *Addr = Len ? ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd, 0)
                   : nullptr;
  ::close(Fd); // The mapping keeps its own reference.
  if (Len && Addr == MAP_FAILED) {
    fail(Error, "cannot map corpus image '" + Path +
                    "': " + std::strerror(errno));
    return Img;
  }
  Img.MapAddr = Addr;
  Img.MapLen = Len;
  Img.Base = static_cast<const uint8_t *>(Addr);
  Img.Bytes = Len;
#else
  // Portability fallback: read the file into owned memory. Same validation
  // and accessor surface, no zero-copy win.
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    fail(Error, "cannot open corpus image '" + Path + "'");
    return Img;
  }
  std::vector<uint8_t> Buf((std::istreambuf_iterator<char>(In)),
                           std::istreambuf_iterator<char>());
  Img.OwnedBytes = std::move(Buf);
  Img.Base = Img.OwnedBytes.data();
  Img.Bytes = Img.OwnedBytes.size();
#endif
  if (!Img.attach(Error))
    Img.reset();
  return Img;
}

CorpusImage CorpusImage::fromBytes(std::vector<uint8_t> Bytes,
                                   std::string *Error) {
  CorpusImage Img;
  Img.OwnedBytes = std::move(Bytes);
  Img.Base = Img.OwnedBytes.data();
  Img.Bytes = Img.OwnedBytes.size();
  if (!Img.attach(Error))
    Img.reset();
  return Img;
}

const uint8_t *CorpusImage::sectionBase(SectionKind K) const {
  return Base + Sections[uint32_t(K)].Offset;
}

bool CorpusImage::verifySection(uint32_t I) const {
  const SectionDesc &D = Sections[I];
  return fnv1a(Base + D.Offset, D.Bytes) == D.Checksum;
}

bool CorpusImage::verify(std::string *Error) const {
  PST_SPAN("image.verify");
  assert(valid() && "verify on an invalid image");
  for (uint32_t K = 0; K < Hdr->SectionCount; ++K)
    if (!verifySection(K))
      return fail(Error,
                  std::string("corpus image checksum mismatch in section ") +
                      sectionName(SectionKind(K)) + " (section " +
                      std::to_string(K) + "): the image is corrupted");
  return true;
}

void CorpusImage::release() const {
#if PST_IMAGE_HAVE_MMAP
  // Read-only MAP_PRIVATE with no dirty pages: DONTNEED just drops the
  // resident pages; later accesses refault from the page cache.
  if (MapAddr)
    ::madvise(MapAddr, MapLen, MADV_DONTNEED);
#endif
}

std::string_view CorpusImage::functionName(uint64_t I) const {
  const char *Str =
      reinterpret_cast<const char *>(sectionBase(SectionKind::StrTab));
  return Str + Funcs[I].NameOff; // NUL-terminated; checked in attach().
}

CfgView CorpusImage::cfg(uint64_t I) const {
  const FuncRecord &F = Funcs[I];
  auto At32 = [&](SectionKind K, uint64_t Base) {
    return reinterpret_cast<const uint32_t *>(sectionBase(K)) + Base;
  };
  return CfgView::adopt(
      F.NumNodes, F.NumEdges, F.Entry, F.Exit,
      At32(SectionKind::SuccOff, F.CsrBase),
      At32(SectionKind::PredOff, F.CsrBase),
      At32(SectionKind::SuccEdge, F.EdgeBase),
      At32(SectionKind::SuccTo, F.EdgeBase),
      At32(SectionKind::PredEdge, F.EdgeBase),
      At32(SectionKind::PredFrom, F.EdgeBase),
      At32(SectionKind::EdgeSrc, F.EdgeBase),
      At32(SectionKind::EdgeDst, F.EdgeBase));
}

ProgramStructureTree CorpusImage::pst(uint64_t I) const {
  const FuncRecord &F = Funcs[I];
  auto At32 = [&](SectionKind K, uint64_t Base, uint64_t Count) {
    return std::span<const uint32_t>(
        reinterpret_cast<const uint32_t *>(sectionBase(K)) + Base, Count);
  };
  std::span<const SeseRegion> Regions(
      reinterpret_cast<const SeseRegion *>(sectionBase(SectionKind::Regions)) +
          F.RegionBase,
      F.NumRegions);
  return ProgramStructureTree::adoptExternal(
      Regions, At32(SectionKind::NodeRegion, F.NodeBase, F.NumNodes),
      At32(SectionKind::EdgeRegion, F.EdgeBase, F.NumEdges),
      At32(SectionKind::EntryOf, F.EdgeBase, F.NumEdges),
      At32(SectionKind::ExitOf, F.EdgeBase, F.NumEdges),
      At32(SectionKind::ChildOff, F.RegionCsrBase, uint64_t(F.NumRegions) + 1),
      At32(SectionKind::ChildVal, F.ChildBase, uint64_t(F.NumRegions) - 1),
      At32(SectionKind::ImmOff, F.RegionCsrBase, uint64_t(F.NumRegions) + 1),
      At32(SectionKind::ImmVal, F.NodeBase, F.NumNodes));
}

Cfg CorpusImage::materializeCfg(uint64_t I) const {
  const FuncRecord &F = Funcs[I];
  const char *Str =
      reinterpret_cast<const char *>(sectionBase(SectionKind::StrTab));
  const uint64_t *LabelOff = reinterpret_cast<const uint64_t *>(
                                 sectionBase(SectionKind::NodeLabelOff)) +
                             F.NodeBase;
  const uint32_t *Src = reinterpret_cast<const uint32_t *>(
                            sectionBase(SectionKind::EdgeSrc)) +
                        F.EdgeBase;
  const uint32_t *Dst = reinterpret_cast<const uint32_t *>(
                            sectionBase(SectionKind::EdgeDst)) +
                        F.EdgeBase;
  Cfg G;
  G.reserveNodes(F.NumNodes);
  G.reserveEdges(F.NumEdges);
  for (uint32_t N = 0; N < F.NumNodes; ++N)
    G.addNode(std::string(Str + LabelOff[N]));
  // Appending in edge-id order reproduces adjacency-list order exactly:
  // Cfg construction only ever appends.
  for (uint32_t E = 0; E < F.NumEdges; ++E)
    G.addEdge(Src[E], Dst[E]);
  G.setEntry(F.Entry);
  G.setExit(F.Exit);
  return G;
}

//===----------------------------------------------------------------------===//
// Free helpers
//===----------------------------------------------------------------------===//

std::vector<uint8_t> pst::buildCorpusImage(std::span<const Cfg *const> Fns,
                                           std::span<const std::string> Names) {
  PST_SPAN("image.build");
  assert((Names.empty() || Names.size() == Fns.size()) &&
         "names must parallel functions");
  CorpusImageBuilder B(Fns.size());
  CfgViewScratch VS;
  PstBuildScratch PS;
  std::vector<ProgramStructureTree> Trees(Fns.size());
  for (size_t I = 0; I < Fns.size(); ++I) {
    CfgView V = CfgView::build(*Fns[I], VS);
    Trees[I] = ProgramStructureTree::build(V, PS);
    B.setShape(I, *Fns[I], Trees[I], Names.empty() ? "" : Names[I]);
  }
  B.layout();
  for (size_t I = 0; I < Fns.size(); ++I) {
    CfgView V = CfgView::build(*Fns[I], VS);
    B.fill(I, *Fns[I], V, Trees[I], Names.empty() ? "" : Names[I]);
  }
  return B.finish();
}

bool pst::writeImageFile(const std::string &Path,
                         std::span<const uint8_t> Bytes, std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return fail(Error, "cannot open '" + Path + "' for writing");
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            std::streamsize(Bytes.size()));
  Out.close();
  if (!Out)
    return fail(Error, "write to '" + Path + "' failed");
  return true;
}

//===----------------------------------------------------------------------===//
// StreamImageWriter: the out-of-core builder
//===----------------------------------------------------------------------===//

namespace pst {
namespace image {

/// Thin positional-I/O file wrapper. On POSIX it is a plain fd — pread and
/// pwrite at distinct offsets are thread-safe, which is what lets chunks
/// stage and land concurrently, and writes go through the kernel page
/// cache, so dirty image bytes never count toward the process's resident
/// set. The portability fallback serializes seek+read/write on a stdio
/// stream behind a mutex.
struct ImageFile {
#if PST_IMAGE_HAVE_MMAP
  int Fd = -1;
#else
  std::FILE *Fp = nullptr;
  std::mutex M;
#endif

  static ImageFile *openWrite(const std::string &Path);
  static ImageFile *openRead(const std::string &Path);
  void close();
  bool pwriteAll(const void *Data, uint64_t Bytes, uint64_t Off);
  bool preadAll(void *Data, uint64_t Bytes, uint64_t Off);
  /// Pre-sizes the file to exactly \p Bytes; unwritten holes read as zero.
  bool presize(uint64_t Bytes);
  uint64_t size();
};

#if PST_IMAGE_HAVE_MMAP

ImageFile *ImageFile::openWrite(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return nullptr;
  auto *F = new ImageFile;
  F->Fd = Fd;
  return F;
}

ImageFile *ImageFile::openRead(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return nullptr;
  auto *F = new ImageFile;
  F->Fd = Fd;
  return F;
}

void ImageFile::close() {
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}

bool ImageFile::pwriteAll(const void *Data, uint64_t Bytes, uint64_t Off) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  while (Bytes) {
    ssize_t N = ::pwrite(Fd, P, size_t(Bytes), off_t(Off));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Off += uint64_t(N);
    Bytes -= uint64_t(N);
  }
  return true;
}

bool ImageFile::preadAll(void *Data, uint64_t Bytes, uint64_t Off) {
  uint8_t *P = static_cast<uint8_t *>(Data);
  while (Bytes) {
    ssize_t N = ::pread(Fd, P, size_t(Bytes), off_t(Off));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // Unexpected EOF.
    P += N;
    Off += uint64_t(N);
    Bytes -= uint64_t(N);
  }
  return true;
}

bool ImageFile::presize(uint64_t Bytes) {
  return ::ftruncate(Fd, off_t(Bytes)) == 0;
}

uint64_t ImageFile::size() {
  struct stat St;
  if (::fstat(Fd, &St) != 0)
    return 0;
  return uint64_t(St.st_size);
}

#else // !PST_IMAGE_HAVE_MMAP

ImageFile *ImageFile::openWrite(const std::string &Path) {
  std::FILE *Fp = std::fopen(Path.c_str(), "wb+");
  if (!Fp)
    return nullptr;
  auto *F = new ImageFile;
  F->Fp = Fp;
  return F;
}

ImageFile *ImageFile::openRead(const std::string &Path) {
  std::FILE *Fp = std::fopen(Path.c_str(), "rb");
  if (!Fp)
    return nullptr;
  auto *F = new ImageFile;
  F->Fp = Fp;
  return F;
}

void ImageFile::close() {
  if (Fp)
    std::fclose(Fp);
  Fp = nullptr;
}

bool ImageFile::pwriteAll(const void *Data, uint64_t Bytes, uint64_t Off) {
  std::lock_guard<std::mutex> Lock(M);
  if (std::fseek(Fp, long(Off), SEEK_SET) != 0)
    return false;
  return std::fwrite(Data, 1, size_t(Bytes), Fp) == Bytes;
}

bool ImageFile::preadAll(void *Data, uint64_t Bytes, uint64_t Off) {
  std::lock_guard<std::mutex> Lock(M);
  std::fflush(Fp); // Positioning between write and read is required.
  if (std::fseek(Fp, long(Off), SEEK_SET) != 0)
    return false;
  return std::fread(Data, 1, size_t(Bytes), Fp) == Bytes;
}

bool ImageFile::presize(uint64_t Bytes) {
  if (Bytes == 0)
    return true;
  std::lock_guard<std::mutex> Lock(M);
  // Writing the last byte extends the file; the gap reads back as zero.
  if (std::fseek(Fp, long(Bytes - 1), SEEK_SET) != 0)
    return false;
  return std::fputc(0, Fp) == 0;
}

uint64_t ImageFile::size() {
  std::lock_guard<std::mutex> Lock(M);
  if (std::fseek(Fp, 0, SEEK_END) != 0)
    return 0;
  long N = std::ftell(Fp);
  return N < 0 ? 0 : uint64_t(N);
}

#endif // PST_IMAGE_HAVE_MMAP

} // namespace image
} // namespace pst

namespace {

/// FuncTable is the first section, so its file offset is fixed by the
/// header + section-table size alone — which is what lets pass 1 stream
/// FuncRecords into the file before the rest of the layout exists.
uint64_t funcTableOffset() {
  return alignUp(sizeof(ImageHeader) +
                 uint64_t(NumSections) * sizeof(SectionDesc));
}

/// Pass-1 write-behind granularity: 4096 records = 320 KiB.
constexpr size_t RecBufCap = 4096;
/// Bounded buffer for finish()/verifyImageFile() streaming reads.
constexpr uint64_t IoWindow = 8ull << 20;

/// Closes and frees an ImageFile on scope exit.
struct FileCloser {
  ImageFile *F;
  ~FileCloser() {
    if (F) {
      F->close();
      delete F;
    }
  }
};

} // namespace

StreamImageWriter::StreamImageWriter(std::string P, uint64_t NumFunctions)
    : Path(std::move(P)), NumFuncs(NumFunctions) {
  File = ImageFile::openWrite(Path);
  RecBuf.reserve(size_t(std::min<uint64_t>(NumFuncs, RecBufCap)));
}

StreamImageWriter::~StreamImageWriter() {
  if (File) {
    File->close();
    delete File;
    File = nullptr;
  }
}

bool StreamImageWriter::flushRecords(std::string *Error) {
  if (RecBuf.empty())
    return true;
  const uint64_t Off = funcTableOffset() + RecsFlushed * sizeof(FuncRecord);
  if (!File->pwriteAll(RecBuf.data(), RecBuf.size() * sizeof(FuncRecord), Off))
    return fail(Error, "write to '" + Path + "' failed: " +
                           std::strerror(errno));
  RecsFlushed += RecBuf.size();
  RecBuf.clear();
  return true;
}

bool StreamImageWriter::addShape(const image::FunctionShape &S,
                                 std::string *Error) {
  if (!File)
    return fail(Error, "stream image writer for '" + Path + "' is not open");
  assert(!Filling && "addShape after beginFill");
  assert(Added < NumFuncs && "more shapes than declared functions");
  RecBuf.push_back(Cursor.append(S));
  ++Added;
  if (RecBuf.size() >= RecBufCap)
    return flushRecords(Error);
  return true;
}

bool StreamImageWriter::addShape(const Cfg &G, const ProgramStructureTree &T,
                                 std::string_view Name, std::string *Error) {
  return addShape(functionShape(G, T, Name), Error);
}

bool StreamImageWriter::beginFill(std::string *Error) {
  if (!File)
    return fail(Error, "stream image writer for '" + Path + "' is not open");
  assert(!Filling && "beginFill runs once");
  if (Added != NumFuncs)
    return fail(Error, "stream image shape pass saw " + std::to_string(Added) +
                           " functions but " + std::to_string(NumFuncs) +
                           " were declared");
  PST_SPAN("image.stream.layout");
  if (!flushRecords(Error))
    return false;
  finalizeSectionLayout(NumFuncs, Cursor, Layout);
  assert(Layout.SectionOffset[uint32_t(SectionKind::FuncTable)] ==
             funcTableOffset() &&
         "FuncTable moved; pass-1 records landed at the wrong offset");
  // Pre-size the whole file: unwritten holes read back as zero, which is
  // exactly the in-memory arena's zeroed padding.
  if (!File->presize(Layout.FileBytes))
    return fail(Error, "cannot pre-size '" + Path + "' to " +
                           std::to_string(Layout.FileBytes) +
                           " bytes: " + std::strerror(errno));
  PST_VALUE("image.stream.bytes", double(Layout.FileBytes));
  PST_VALUE("image.stream.functions", double(NumFuncs));
  Filling = true;
  return true;
}

bool StreamImageWriter::beginChunk(ChunkScratch &CS, uint64_t Begin,
                                   uint64_t Count, std::string *Error) const {
  assert(Filling && "beginChunk before beginFill");
  assert(Begin + Count <= NumFuncs && "chunk out of range");
  CS.Begin = Begin;
  CS.Count = Count;
  CS.Recs.resize(size_t(Count) + 1);
  // The chunk's records plus one lookahead: the sentinel's bases are the
  // chunk's end elements. The tail chunk synthesizes it from the totals.
  const uint64_t Lookahead = (Begin + Count < NumFuncs) ? Count + 1 : Count;
  if (Lookahead &&
      !File->preadAll(CS.Recs.data(), Lookahead * sizeof(FuncRecord),
                      funcTableOffset() + Begin * sizeof(FuncRecord)))
    return fail(Error,
                "read of '" + Path + "' function records failed");
  if (Lookahead == Count) {
    FuncRecord &End = CS.Recs[size_t(Count)];
    End = FuncRecord();
    End.NodeBase = Cursor.Nodes;
    End.EdgeBase = Cursor.Edges;
    End.CsrBase = Cursor.Csr;
    End.RegionBase = Cursor.Regions;
    End.RegionCsrBase = Cursor.RegionCsr;
    End.ChildBase = Cursor.Children;
    End.NameOff = Cursor.Str;
  }
  const FuncRecord &First = CS.Recs.front();
  const FuncRecord &End = CS.Recs[size_t(Count)];
  for (uint32_t K = 0; K < NumSections; ++K) {
    if (K == uint32_t(SectionKind::FuncTable)) {
      CS.Buf[K].clear(); // Records are pass-1 output, not chunk payload.
      continue;
    }
    const uint64_t Elems =
        recBase(End, SectionKind(K)) - recBase(First, SectionKind(K));
    // assign() zeroes: staged NULs/padding match the zeroed arena.
    CS.Buf[K].assign(size_t(Elems * elemSize(SectionKind(K))), 0);
  }
  return true;
}

void StreamImageWriter::fill(ChunkScratch &CS, uint64_t I, const Cfg &G,
                             const CfgView &V, const ProgramStructureTree &T,
                             std::string_view Name) const {
  assert(Filling && "fill before beginFill");
  assert(I >= CS.Begin && I < CS.Begin + CS.Count && "function outside chunk");
  const FuncRecord &F = CS.Recs[size_t(I - CS.Begin)];
  uint8_t *Sec[NumSections];
  uint64_t Bias[NumSections];
  for (uint32_t K = 0; K < NumSections; ++K) {
    Sec[K] = CS.Buf[K].data();
    Bias[K] = recBase(CS.Recs.front(), SectionKind(K));
  }
  fillFunctionSlices(Sec, Bias, F, G, V, T, Name,
                     CS.Recs[size_t(I - CS.Begin) + 1].NameOff - F.NameOff);
}

bool StreamImageWriter::endChunk(ChunkScratch &CS, std::string *Error) const {
  assert(Filling && "endChunk before beginFill");
  PST_SPAN("image.stream.fill");
  uint64_t Bytes = 0;
  const FuncRecord &First = CS.Recs.front();
  for (uint32_t K = 0; K < NumSections; ++K) {
    if (CS.Buf[K].empty())
      continue;
    const uint64_t Off =
        Layout.SectionOffset[K] +
        recBase(First, SectionKind(K)) * elemSize(SectionKind(K));
    if (!File->pwriteAll(CS.Buf[K].data(), CS.Buf[K].size(), Off))
      return fail(Error, "write to '" + Path + "' failed: " +
                             std::strerror(errno));
    Bytes += CS.Buf[K].size();
  }
  PST_COUNTER("image.stream.chunks", 1);
  PST_COUNTER("image.stream.chunk_functions", CS.Count);
  PST_COUNTER("image.stream.chunk_bytes", Bytes);
  return true;
}

bool StreamImageWriter::finish(std::string *Error) {
  if (!File)
    return fail(Error, "stream image writer for '" + Path + "' is not open");
  assert(Filling && "finish before beginFill");
  PST_SPAN("image.stream.finish");

  // One bounded-window read back over the file computes the section
  // checksums; FNV-1a is sequential, so windows chain exactly.
  std::vector<SectionDesc> Sections(NumSections);
  std::vector<uint8_t> Window(IoWindow);
  for (uint32_t K = 0; K < NumSections; ++K) {
    SectionDesc &D = Sections[K];
    D.Kind = K;
    D.Offset = Layout.SectionOffset[K];
    D.Bytes = Layout.SectionBytes[K];
    uint64_t Sum = Fnv1aBasis;
    for (uint64_t At = 0; At < D.Bytes;) {
      const uint64_t N = std::min<uint64_t>(IoWindow, D.Bytes - At);
      if (!File->preadAll(Window.data(), N, D.Offset + At))
        return fail(Error, "read back of '" + Path + "' failed");
      Sum = fnv1aUpdate(Sum, Window.data(), N);
      At += N;
    }
    D.Checksum = Sum;
  }

  ImageHeader H;
  std::memcpy(H.MagicBytes, Magic, sizeof(Magic));
  H.Version = FormatVersion;
  H.Endian = EndianTag;
  H.FileBytes = Layout.FileBytes;
  H.NumFunctions = NumFuncs;
  H.SectionCount = NumSections;
  H.FuncRecordBytes = sizeof(FuncRecord);
  if (!File->pwriteAll(&H, sizeof(H), 0) ||
      !File->pwriteAll(Sections.data(),
                       Sections.size() * sizeof(SectionDesc),
                       sizeof(ImageHeader)))
    return fail(Error, "write to '" + Path + "' failed: " +
                           std::strerror(errno));
  File->close();
  delete File;
  File = nullptr;
  PST_COUNTER("image.stream.images", 1);
  return true;
}

bool pst::verifyImageFile(const std::string &Path, std::string *Error) {
  PST_SPAN("image.stream.verify");
  ImageFile *File = ImageFile::openRead(Path);
  if (!File)
    return fail(Error, "cannot open corpus image '" + Path +
                           "': " + std::strerror(errno));
  FileCloser Guard{File};

  const uint64_t Actual = File->size();
  ImageHeader H;
  if (Actual < sizeof(H) || !File->preadAll(&H, sizeof(H), 0))
    return fail(Error, "corpus image truncated: " + std::to_string(Actual) +
                           " bytes is smaller than the " +
                           std::to_string(sizeof(H)) + "-byte header");
  if (std::memcmp(H.MagicBytes, Magic, sizeof(Magic)) != 0)
    return fail(Error, "not a corpus image: bad magic (expected \"PSTIMG01\")");
  if (H.Endian != EndianTag)
    return fail(Error, "corpus image endianness mismatch: the image was "
                       "written on a different-endian host");
  if (H.Version != FormatVersion)
    return fail(Error, "unsupported corpus image format version " +
                           std::to_string(H.Version) +
                           " (this reader understands version " +
                           std::to_string(FormatVersion) + ")");
  if (H.FuncRecordBytes != sizeof(FuncRecord))
    return fail(Error, "corpus image function records are " +
                           std::to_string(H.FuncRecordBytes) +
                           " bytes; this reader expects " +
                           std::to_string(sizeof(FuncRecord)));
  if (H.FileBytes != Actual)
    return fail(Error, "corpus image truncated: file is " +
                           std::to_string(Actual) +
                           " bytes but the header records " +
                           std::to_string(H.FileBytes));
  if (H.SectionCount != NumSections)
    return fail(Error, "corpus image has " + std::to_string(H.SectionCount) +
                           " sections; format version 1 defines " +
                           std::to_string(NumSections));

  const uint64_t TableEnd =
      sizeof(ImageHeader) + uint64_t(NumSections) * sizeof(SectionDesc);
  std::vector<SectionDesc> Sections(NumSections);
  if (TableEnd > Actual ||
      !File->preadAll(Sections.data(), NumSections * sizeof(SectionDesc),
                      sizeof(ImageHeader)))
    return fail(Error, "corpus image truncated inside the section table");

  std::vector<uint8_t> Window(IoWindow);
  for (uint32_t K = 0; K < NumSections; ++K) {
    const SectionDesc &D = Sections[K];
    std::string Name = std::string(sectionName(SectionKind(K))) +
                       " (section " + std::to_string(K) + ")";
    if (D.Kind != K)
      return fail(Error, "corpus image section table corrupt: slot " +
                             std::to_string(K) + " holds kind " +
                             std::to_string(D.Kind));
    if (D.Offset < TableEnd || D.Offset > Actual ||
        D.Bytes > Actual - D.Offset)
      return fail(Error, "corpus image truncated: section " + Name +
                             " extends past the end of the file");
    uint64_t Sum = Fnv1aBasis;
    for (uint64_t At = 0; At < D.Bytes;) {
      const uint64_t N = std::min<uint64_t>(IoWindow, D.Bytes - At);
      if (!File->preadAll(Window.data(), N, D.Offset + At))
        return fail(Error, "read of corpus image '" + Path + "' failed");
      Sum = fnv1aUpdate(Sum, Window.data(), N);
      At += N;
    }
    if (Sum != D.Checksum)
      return fail(Error, "corpus image checksum mismatch in section " + Name +
                             ": the image is corrupted");
  }
  return true;
}
