//===- CycleEquivBrute.cpp - Definition oracle ------------------------------===//
//
// Part of the PST library (see CycleEquiv.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/cycleequiv/CycleEquivBrute.h"

#include <unordered_map>

using namespace pst;

Cfg pst::withReturnEdge(const Cfg &G) {
  Cfg S = G;
  S.addEdge(G.exit(), G.entry());
  return S;
}

bool pst::existsCycleThroughAvoiding(const Cfg &S, EdgeId Through,
                                     EdgeId Avoiding) {
  if (Through == Avoiding)
    return false;
  // A cycle through edge (u,v) avoiding f exists iff v reaches u without
  // traversing f.
  NodeId From = S.target(Through), To = S.source(Through);
  std::vector<bool> Seen(S.numNodes(), false);
  std::vector<NodeId> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    if (N == To)
      return true;
    for (EdgeId E : S.succEdges(N)) {
      if (E == Avoiding)
        continue;
      NodeId W = S.target(E);
      if (!Seen[W]) {
        Seen[W] = true;
        Work.push_back(W);
      }
    }
  }
  return false;
}

bool pst::cycleEquivalentBrute(const Cfg &S, EdgeId A, EdgeId B) {
  if (A == B)
    return true;
  return !existsCycleThroughAvoiding(S, A, B) &&
         !existsCycleThroughAvoiding(S, B, A);
}

CycleEquivResult pst::computeCycleEquivalenceBrute(const Cfg &G,
                                                   bool AddReturnEdge) {
  Cfg S = AddReturnEdge ? withReturnEdge(G) : G;
  uint32_t E = S.numEdges();
  CycleEquivResult R;
  R.HasReturnEdge = AddReturnEdge;
  R.EdgeClass.assign(E, UndefinedClass);
  uint32_t Next = 0;
  for (EdgeId I = 0; I < E; ++I) {
    if (R.EdgeClass[I] != UndefinedClass)
      continue;
    uint32_t C = Next++;
    R.EdgeClass[I] = C;
    // Cycle equivalence is transitive on a strongly connected graph, so one
    // sweep against the representative suffices.
    for (EdgeId J = I + 1; J < E; ++J)
      if (R.EdgeClass[J] == UndefinedClass && cycleEquivalentBrute(S, I, J))
        R.EdgeClass[J] = C;
  }
  R.NumClasses = Next;
  return R;
}

std::vector<uint32_t>
pst::canonicalizePartition(const std::vector<uint32_t> &Classes) {
  std::unordered_map<uint32_t, uint32_t> Rename;
  std::vector<uint32_t> Out;
  Out.reserve(Classes.size());
  for (uint32_t C : Classes) {
    auto It = Rename.try_emplace(C, static_cast<uint32_t>(Rename.size())).first;
    Out.push_back(It->second);
  }
  return Out;
}
