//===- CycleEquiv.cpp - Linear cycle equivalence ---------------------------===//
//
// Part of the PST library (see CycleEquiv.h for the project reference).
//
// Implements the pseudocode of the paper's Figure 4 with these concrete
// choices:
//  * The DFS is iterative, so deep graphs cannot overflow the call stack.
//  * Bracket lists are intrusive doubly-linked cells in one arena; concat
//    is an O(1) splice; delete is O(1) via a back-pointer on each bracket.
//  * Self loops cannot bracket anything (the cycle they form contains only
//    themselves), so each gets a fresh singleton class and is excluded from
//    the undirected DFS.
//  * Nodes are processed in reverse DFS preorder, which visits every child
//    before its parent.
//  * Every per-node incidence structure (adjacency, tree children, backedge
//    push/delete sites) is a CSR offset/value array built in two counting
//    passes over the edges, and all working memory lives in a
//    CycleEquivScratch. The corpus this library targets is dominated by
//    tiny procedures (the paper's Table 1 median), where per-node
//    std::vector buckets cost more in allocator traffic than the algorithm
//    itself; with the scratch warm, a run allocates nothing but its result.
//  * The solver is a template over an *endpoint policy*, so the same
//    Figure-4 sweep serves three graph encodings with zero duplication:
//    materialized endpoint pairs (UndirectedGraphView), a frozen CfgView
//    CSR plus the implicit return edge, and the arithmetic node expansion
//    T(S) of the control-region construction. The CfgView encodings also
//    pre-build the undirected adjacency straight from the shared CSR
//    segments (each node's incident edges are the ascending-id merge of
//    its succ and pred segments), skipping the counting passes entirely.
//
//===----------------------------------------------------------------------===//

#include "pst/cycleequiv/CycleEquiv.h"

#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <limits>

using namespace pst;

namespace {

constexpr uint32_t None = ~uint32_t(0);

// -- Endpoint policies -----------------------------------------------------
// The solver only ever asks one question about the graph beyond its
// adjacency: "what are the two endpoints of undirected edge E". Each policy
// answers it for one encoding; all are a couple of loads (or pure
// arithmetic), so the template keeps the inner loops branch-predictable
// without virtual dispatch.

/// Materialized endpoint pairs (the legacy UndirectedGraphView path).
struct PairEndpoints {
  const std::pair<NodeId, NodeId> *P;
  NodeId a(uint32_t E) const { return P[E].first; }
  NodeId b(uint32_t E) const { return P[E].second; }
};

/// CFG edges from a CfgView's flat endpoint arrays, plus the implicit
/// trailing return edge (id == NumCfgEdges).
struct ViewEndpoints {
  const NodeId *Src;
  const NodeId *Dst;
  uint32_t NumCfgEdges;
  NodeId RetSrc, RetDst;
  NodeId a(uint32_t E) const { return E < NumCfgEdges ? Src[E] : RetSrc; }
  NodeId b(uint32_t E) const { return E < NumCfgEdges ? Dst[E] : RetDst; }
};

/// The implicitly node-expanded graph T(S) of the control-region
/// construction: node V splits into V_in = 2V / V_out = 2V+1 joined by
/// representative edge id V; original edge E becomes id N+E from
/// 2*src(E)+1 to 2*dst(E); the return edge id N+NumCfgEdges closes
/// 2*exit+1 -> 2*entry. Endpoints are pure arithmetic over the view.
struct TsEndpoints {
  const NodeId *Src;
  const NodeId *Dst;
  uint32_t N;
  uint32_t NumCfgEdges;
  NodeId Entry, Exit;
  NodeId a(uint32_t X) const {
    if (X < N)
      return 2 * X;
    if (X < N + NumCfgEdges)
      return 2 * Src[X - N] + 1;
    return 2 * Exit + 1;
  }
  NodeId b(uint32_t X) const {
    if (X < N)
      return 2 * X + 1;
    if (X < N + NumCfgEdges)
      return 2 * Dst[X - N];
    return 2 * Entry;
  }
};

/// The Figure-4 solver, operating entirely on arrays owned by a
/// CycleEquivScratch.
///
/// Edge records (scratch \c Rec* arrays, indexed by record id) describe one
/// undirected edge each: a real CFG edge (ids [0, NumRealEdges)), or a
/// capping backedge created by the algorithm (appended past NumRealEdges).
/// Per record: the assigned class, the bracket-list size/class from the
/// most recent time it was the topmost bracket (size 0 = never; real sizes
/// are >= 1), and the arena cell currently holding it in some bracket list.
/// Bracket lists are doubly-linked cells (\c Cell* arrays) with one
/// head/tail/size triple per node (\c List* arrays).
template <class EndpointsT> class CycleEquivSolver {
public:
  CycleEquivSolver(uint32_t NumNodes, NodeId Root, uint32_t NumRealEdges,
                   EndpointsT Ep, CycleEquivScratch &S)
      : Nodes(NumNodes), Root(Root), S(S), NumRealEdges(NumRealEdges),
        Ep(Ep) {}

  /// Runs the algorithm. When \p AdjacencyPrebuilt is set the caller has
  /// already written S.AdjOff/AdjEdge/AdjOther and S.SelfLoops (the
  /// CfgView paths do, straight from the shared CSR); otherwise the
  /// adjacency is built here from the endpoint policy via counting passes.
  CycleEquivResult run(bool AdjacencyPrebuilt);

private:
  // -- Bracket list primitives (all O(1)) --------------------------------
  uint32_t newCell(uint32_t RecId) {
    uint32_t C = static_cast<uint32_t>(S.CellRec.size());
    S.CellRec.push_back(RecId);
    S.CellPrev.push_back(None);
    S.CellNext.push_back(None);
    return C;
  }

  void push(NodeId L, uint32_t RecId) {
    uint32_t C = newCell(RecId);
    S.CellNext[C] = S.ListHead[L];
    if (S.ListHead[L] != None)
      S.CellPrev[S.ListHead[L]] = C;
    S.ListHead[L] = C;
    if (S.ListTail[L] == None)
      S.ListTail[L] = C;
    ++S.ListSize[L];
    S.RecCell[RecId] = C;
  }

  void erase(NodeId L, uint32_t RecId) {
    uint32_t C = S.RecCell[RecId];
    assert(C != None && "bracket not on any list");
    uint32_t P = S.CellPrev[C], N = S.CellNext[C];
    if (P != None)
      S.CellNext[P] = N;
    else
      S.ListHead[L] = N;
    if (N != None)
      S.CellPrev[N] = P;
    else
      S.ListTail[L] = P;
    --S.ListSize[L];
    S.RecCell[RecId] = None;
  }

  /// Splices \p Src's list in front of \p Dst's, emptying \p Src.
  void concatInto(NodeId Dst, NodeId Src) {
    if (S.ListHead[Src] == None)
      return;
    if (S.ListHead[Dst] == None) {
      S.ListHead[Dst] = S.ListHead[Src];
      S.ListTail[Dst] = S.ListTail[Src];
      S.ListSize[Dst] = S.ListSize[Src];
    } else {
      S.CellNext[S.ListTail[Src]] = S.ListHead[Dst];
      S.CellPrev[S.ListHead[Dst]] = S.ListTail[Src];
      S.ListHead[Dst] = S.ListHead[Src];
      S.ListSize[Dst] += S.ListSize[Src];
    }
    S.ListHead[Src] = None;
    S.ListTail[Src] = None;
    S.ListSize[Src] = 0;
  }

  uint32_t newClass() { return NextClass++; }

  /// Prefix sum over a CSR count array (Off[v+1] holds v's count on entry
  /// and the end of v's range on exit, with Off[0] = 0) and cursor
  /// initialization.
  void finishOffsets(std::vector<uint32_t> &Off) {
    for (size_t I = 1; I < Off.size(); ++I)
      Off[I] += Off[I - 1];
    S.Cursor.assign(Off.begin(), Off.end() - 1);
  }

  // -- Phases -------------------------------------------------------------
  void buildAdjacency();
  void undirectedDfs(NodeId DfsRoot);
  void classifyEdges();
  void processNodes();

  NodeId endpointA(uint32_t E) const { return Ep.a(E); }
  NodeId endpointB(uint32_t E) const { return Ep.b(E); }
  uint32_t numNodes() const { return Nodes; }

  uint32_t Nodes;
  NodeId Root;
  CycleEquivScratch &S;
  uint32_t NumRealEdges;
  EndpointsT Ep;
  uint32_t NextClass = 0;
};

template <class EndpointsT>
void CycleEquivSolver<EndpointsT>::buildAdjacency() {
  uint32_t N = numNodes();
  S.SelfLoops.clear();
  S.AdjOff.assign(N + 1, 0);
  for (uint32_t E = 0; E < NumRealEdges; ++E) {
    NodeId A = endpointA(E), B = endpointB(E);
    if (A == B) {
      S.SelfLoops.push_back(E);
      continue;
    }
    ++S.AdjOff[A + 1];
    ++S.AdjOff[B + 1];
  }
  finishOffsets(S.AdjOff);
  uint32_t Entries = S.AdjOff[N];
  S.AdjEdge.resize(Entries);
  S.AdjOther.resize(Entries);
  for (uint32_t E = 0; E < NumRealEdges; ++E) {
    NodeId A = endpointA(E), B = endpointB(E);
    if (A == B)
      continue;
    uint32_t IA = S.Cursor[A]++;
    S.AdjEdge[IA] = E;
    S.AdjOther[IA] = B;
    uint32_t IB = S.Cursor[B]++;
    S.AdjEdge[IB] = E;
    S.AdjOther[IB] = A;
  }
}

template <class EndpointsT>
void CycleEquivSolver<EndpointsT>::undirectedDfs(NodeId DfsRoot) {
  uint32_t N = numNodes();
  S.DfsNum.assign(N, None);
  S.ParentEdge.assign(N, None);
  S.EdgeUsed.assign(NumRealEdges, 0);
  S.Order.clear();
  S.Order.reserve(N);
  S.Stack.clear();

  S.DfsNum[DfsRoot] = 0;
  S.Order.push_back(DfsRoot);
  S.Stack.emplace_back(DfsRoot, S.AdjOff[DfsRoot]);
  while (!S.Stack.empty()) {
    auto &[V, Next] = S.Stack.back();
    if (Next == S.AdjOff[V + 1]) {
      S.Stack.pop_back();
      continue;
    }
    uint32_t I = Next++;
    uint32_t E = S.AdjEdge[I];
    NodeId W = S.AdjOther[I];
    if (S.EdgeUsed[E])
      continue;
    if (S.DfsNum[W] != None)
      continue; // Non-tree edge; classified later.
    S.EdgeUsed[E] = 1;
    S.DfsNum[W] = static_cast<uint32_t>(S.Order.size());
    S.Order.push_back(W);
    S.ParentEdge[W] = E;
    S.Stack.emplace_back(W, S.AdjOff[W]);
  }

  // Tree children as CSR: count per parent, then fill in preorder (the
  // same per-parent order the bucket version produced).
  S.ChildOff.assign(N + 1, 0);
  for (NodeId V : S.Order) {
    if (S.ParentEdge[V] == None)
      continue;
    uint32_t E = S.ParentEdge[V];
    NodeId P = endpointA(E) == V ? endpointB(E) : endpointA(E);
    ++S.ChildOff[P + 1];
  }
  finishOffsets(S.ChildOff);
  S.ChildVal.resize(S.ChildOff[N]);
  for (NodeId V : S.Order) {
    if (S.ParentEdge[V] == None)
      continue;
    uint32_t E = S.ParentEdge[V];
    NodeId P = endpointA(E) == V ? endpointB(E) : endpointA(E);
    S.ChildVal[S.Cursor[P]++] = V;
  }
}

template <class EndpointsT>
void CycleEquivSolver<EndpointsT>::classifyEdges() {
  uint32_t N = numNodes();
  // Backedge incidence as two CSR arrays: by descendant endpoint (push
  // site) and by ancestor endpoint (delete site). Two counting passes over
  // the edges; the skip conditions must match exactly.
  auto ForEachBackedge = [&](auto &&Fn) {
    for (uint32_t E = 0; E < NumRealEdges; ++E) {
      NodeId A = endpointA(E), B = endpointB(E);
      if (A == B)
        continue; // Self loop.
      if (S.DfsNum[A] == None || S.DfsNum[B] == None)
        continue; // Disconnected input (documented precondition violation).
      if (S.ParentEdge[A] == E || S.ParentEdge[B] == E)
        continue; // Tree edge.
      // In an undirected DFS every non-tree edge joins a node to an
      // ancestor.
      NodeId Desc = S.DfsNum[A] > S.DfsNum[B] ? A : B;
      NodeId Anc = Desc == A ? B : A;
      Fn(E, Desc, Anc);
    }
  };

  S.BackFromOff.assign(N + 1, 0);
  S.BackToOff.assign(N + 1, 0);
  ForEachBackedge([&](uint32_t, NodeId Desc, NodeId Anc) {
    ++S.BackFromOff[Desc + 1];
    ++S.BackToOff[Anc + 1];
  });
  finishOffsets(S.BackFromOff);
  S.BackFromVal.resize(S.BackFromOff[N]);
  ForEachBackedge([&](uint32_t E, NodeId Desc, NodeId) {
    S.BackFromVal[S.Cursor[Desc]++] = E;
  });
  finishOffsets(S.BackToOff);
  S.BackToVal.resize(S.BackToOff[N]);
  ForEachBackedge([&](uint32_t E, NodeId, NodeId Anc) {
    S.BackToVal[S.Cursor[Anc]++] = E;
  });
}

template <class EndpointsT>
void CycleEquivSolver<EndpointsT>::processNodes() {
  uint32_t N = numNodes();
  constexpr uint32_t Inf = std::numeric_limits<uint32_t>::max();
  S.Hi.assign(N, Inf);
  S.ListHead.assign(N, None);
  S.ListTail.assign(N, None);
  S.ListSize.assign(N, 0);
  S.CapHead.assign(N, None);
  S.CapNext.clear();

  // At most one capping backedge per node can be created, and one arena
  // cell per (real or capping) bracket push; reserving the worst case up
  // front keeps the push_backs below allocation-free.
  S.RecClass.assign(NumRealEdges, UndefinedClass);
  S.RecRecentSize.assign(NumRealEdges, 0);
  S.RecRecentClass.assign(NumRealEdges, UndefinedClass);
  S.RecCell.assign(NumRealEdges, None);
  S.RecClass.reserve(NumRealEdges + N);
  S.RecRecentSize.reserve(NumRealEdges + N);
  S.RecRecentClass.reserve(NumRealEdges + N);
  S.RecCell.reserve(NumRealEdges + N);
  S.CapNext.reserve(N);
  S.CellRec.clear();
  S.CellPrev.clear();
  S.CellNext.clear();
  S.CellRec.reserve(NumRealEdges + N);
  S.CellPrev.reserve(NumRealEdges + N);
  S.CellNext.reserve(NumRealEdges + N);

  // Reverse preorder visits children before parents.
  for (auto It = S.Order.rbegin(); It != S.Order.rend(); ++It) {
    NodeId V = *It;

    // hi0: highest (smallest dfsnum) destination of a backedge from V.
    uint32_t Hi0 = Inf;
    for (uint32_t I = S.BackFromOff[V]; I < S.BackFromOff[V + 1]; ++I) {
      uint32_t E = S.BackFromVal[I];
      NodeId Anc = S.DfsNum[endpointA(E)] < S.DfsNum[endpointB(E)]
                       ? endpointA(E)
                       : endpointB(E);
      Hi0 = std::min(Hi0, S.DfsNum[Anc]);
    }
    // hi1/hi2: highest and second-highest reach among the children.
    uint32_t Hi1 = Inf, Hi2 = Inf;
    for (uint32_t I = S.ChildOff[V]; I < S.ChildOff[V + 1]; ++I) {
      uint32_t H = S.Hi[S.ChildVal[I]];
      if (H < Hi1) {
        Hi2 = Hi1;
        Hi1 = H;
      } else if (H < Hi2) {
        Hi2 = H;
      }
    }
    S.Hi[V] = std::min(Hi0, Hi1);

    // Assemble V's bracket list from the children's lists.
    for (uint32_t I = S.ChildOff[V]; I < S.ChildOff[V + 1]; ++I)
      concatInto(V, S.ChildVal[I]);

    // Delete capping backedges ending here.
    for (uint32_t D = S.CapHead[V]; D != None;
         D = S.CapNext[D - NumRealEdges])
      erase(V, D);
    // Delete ordinary backedges ending here; a backedge that was never a
    // topmost bracket still needs a class of its own.
    for (uint32_t I = S.BackToOff[V]; I < S.BackToOff[V + 1]; ++I) {
      uint32_t B = S.BackToVal[I];
      erase(V, B);
      if (S.RecClass[B] == UndefinedClass)
        S.RecClass[B] = newClass();
    }
    // Push backedges leaving V toward ancestors.
    for (uint32_t I = S.BackFromOff[V]; I < S.BackFromOff[V + 1]; ++I)
      push(V, S.BackFromVal[I]);

    // Insert a capping backedge when brackets from two subtrees both out-
    // live V: it masks the mixed prefix up to the second-highest reach.
    // The guard Hi2 < DfsNum[V] is a necessary correction to the paper's
    // Figure 4 (which only tests hi2 < hi0): when the second-highest child
    // reach is V itself or deeper, those brackets die at or below V, no
    // masking is needed, and a capping edge could never be deleted.
    if (Hi2 < Hi0 && Hi2 < S.DfsNum[V]) {
      uint32_t D = static_cast<uint32_t>(S.RecClass.size());
      S.RecClass.push_back(UndefinedClass);
      S.RecRecentSize.push_back(0);
      S.RecRecentClass.push_back(UndefinedClass);
      S.RecCell.push_back(None);
      push(V, D);
      NodeId AncNode = S.Order[Hi2]; // A proper ancestor, by the guard.
      S.CapNext.push_back(S.CapHead[AncNode]);
      S.CapHead[AncNode] = D;
    }

    // Name the equivalence class of the tree edge into V.
    uint32_t PE = S.ParentEdge[V];
    if (PE == None)
      continue; // DFS root.
    if (S.ListSize[V] == 0) {
      // Bridge edge: only possible if the input was not strongly
      // connected. Give it a class so callers still get a partition.
      S.RecClass[PE] = newClass();
      continue;
    }
    uint32_t Top = S.CellRec[S.ListHead[V]];
    if (S.RecRecentSize[Top] != S.ListSize[V]) {
      S.RecRecentSize[Top] = S.ListSize[V];
      S.RecRecentClass[Top] = newClass();
    }
    S.RecClass[PE] = S.RecRecentClass[Top];
    // A tree edge with exactly one bracket is cycle equivalent to it
    // (Theorem 4).
    if (S.RecRecentSize[Top] == 1)
      S.RecClass[Top] = S.RecClass[PE];
  }
}

template <class EndpointsT>
CycleEquivResult CycleEquivSolver<EndpointsT>::run(bool AdjacencyPrebuilt) {
  PST_SPAN("cycleequiv.run");
  CycleEquivResult R;
  if (numNodes() == 0) {
    R.EdgeClass.assign(NumRealEdges, UndefinedClass);
    return R;
  }

  {
    // The undirected DFS phase: adjacency CSR, the DFS itself, and the
    // backedge push/delete-site classification it feeds.
    PST_SPAN("cycleequiv.dfs");
    if (!AdjacencyPrebuilt)
      buildAdjacency();
    undirectedDfs(Root < numNodes() ? Root : 0);
    classifyEdges();
  }
  {
    // The bracket-set phase (the Figure-4 reverse-preorder sweep).
    PST_SPAN("cycleequiv.brackets");
    processNodes();
  }
  PST_COUNTER("cycleequiv.runs", 1);
  PST_COUNTER("cycleequiv.nodes", numNodes());
  PST_COUNTER("cycleequiv.edges", NumRealEdges);
  PST_COUNTER("cycleequiv.capping_backedges",
              S.RecClass.size() - NumRealEdges);

  R.EdgeClass.assign(NumRealEdges, UndefinedClass);
  for (uint32_t E = 0; E < NumRealEdges; ++E)
    R.EdgeClass[E] = S.RecClass[E];
  for (uint32_t E : S.SelfLoops)
    R.EdgeClass[E] = NextClass++;
  // Defensive: edges of a disconnected component never got processed.
  for (uint32_t E = 0; E < NumRealEdges; ++E)
    if (R.EdgeClass[E] == UndefinedClass)
      R.EdgeClass[E] = NextClass++;
  R.NumClasses = NextClass;
  PST_COUNTER("cycleequiv.classes", R.NumClasses);
  return R;
}

/// Writes the undirected incidence CSR for G + (exit -> entry) straight
/// from the view's succ/pred CSR. Each node's incident real edges are the
/// ascending-edge-id merge of its succ and pred segments — exactly the
/// order the counting-pass builder produces — with self loops skipped
/// (collected in global edge order into S.SelfLoops) and the return edge,
/// whose id is the largest, appended at entry and exit. One pass over the
/// nodes, no counting pass, no cursor array.
void buildViewAdjacency(const CfgView &V, bool AddReturnEdge,
                        CycleEquivScratch &S) {
  const uint32_t N = V.numNodes();
  const uint32_t E = V.numEdges();
  const uint32_t RetId = E;
  const NodeId *Src = V.edgeSrc();
  const NodeId *Dst = V.edgeDst();

  S.SelfLoops.clear();
  for (uint32_t I = 0; I < E; ++I)
    if (Src[I] == Dst[I])
      S.SelfLoops.push_back(I);
  bool RetIsSelfLoop = AddReturnEdge && V.entry() == V.exit();
  if (RetIsSelfLoop)
    S.SelfLoops.push_back(RetId);

  S.AdjOff.resize(N + 1);
  uint32_t UpperBound = 2 * E + (AddReturnEdge ? 2 : 0);
  S.AdjEdge.resize(UpperBound);
  S.AdjOther.resize(UpperBound);
  uint32_t W = 0;
  for (NodeId Node = 0; Node < N; ++Node) {
    S.AdjOff[Node] = W;
    auto SuccE = V.succEdges(Node);
    auto SuccN = V.succNodes(Node);
    auto PredE = V.predEdges(Node);
    auto PredN = V.predNodes(Node);
    size_t I = 0, J = 0;
    while (I < SuccE.size() || J < PredE.size()) {
      bool TakeSucc =
          J == PredE.size() || (I < SuccE.size() && SuccE[I] < PredE[J]);
      if (TakeSucc) {
        if (SuccN[I] != Node) {
          S.AdjEdge[W] = SuccE[I];
          S.AdjOther[W] = SuccN[I];
          ++W;
        }
        ++I;
      } else {
        if (PredN[J] != Node) {
          S.AdjEdge[W] = PredE[J];
          S.AdjOther[W] = PredN[J];
          ++W;
        }
        ++J;
      }
    }
    if (AddReturnEdge && !RetIsSelfLoop) {
      if (Node == V.entry()) {
        S.AdjEdge[W] = RetId;
        S.AdjOther[W] = V.exit();
        ++W;
      } else if (Node == V.exit()) {
        S.AdjEdge[W] = RetId;
        S.AdjOther[W] = V.entry();
        ++W;
      }
    }
  }
  S.AdjOff[N] = W;
}

/// Writes the undirected incidence CSR for T(S) directly from the view.
/// T(S) has no self loops, and every per-node incidence list comes out in
/// ascending edge id by construction: representative edge V (< N), then
/// the node's original-edge segment shifted by N (pred edges at V_in, succ
/// edges at V_out; both segments are already ascending), then the return
/// edge (the largest id) at the entry's V_in / exit's V_out.
void buildTsAdjacency(const CfgView &V, CycleEquivScratch &S) {
  const uint32_t N = V.numNodes();
  const uint32_t E = V.numEdges();
  const uint32_t RetId = N + E;

  S.SelfLoops.clear();
  S.AdjOff.resize(2 * N + 1);
  uint32_t Total = 2 * (N + E + 1);
  S.AdjEdge.resize(Total);
  S.AdjOther.resize(Total);
  uint32_t W = 0;
  for (NodeId Node = 0; Node < N; ++Node) {
    // V_in = 2*Node.
    S.AdjOff[2 * Node] = W;
    S.AdjEdge[W] = Node;
    S.AdjOther[W] = 2 * Node + 1;
    ++W;
    auto PredE = V.predEdges(Node);
    auto PredN = V.predNodes(Node);
    for (size_t J = 0; J < PredE.size(); ++J) {
      S.AdjEdge[W] = N + PredE[J];
      S.AdjOther[W] = 2 * PredN[J] + 1;
      ++W;
    }
    if (Node == V.entry()) {
      S.AdjEdge[W] = RetId;
      S.AdjOther[W] = 2 * V.exit() + 1;
      ++W;
    }
    // V_out = 2*Node+1.
    S.AdjOff[2 * Node + 1] = W;
    S.AdjEdge[W] = Node;
    S.AdjOther[W] = 2 * Node;
    ++W;
    auto SuccE = V.succEdges(Node);
    auto SuccN = V.succNodes(Node);
    for (size_t I = 0; I < SuccE.size(); ++I) {
      S.AdjEdge[W] = N + SuccE[I];
      S.AdjOther[W] = 2 * SuccN[I];
      ++W;
    }
    if (Node == V.exit()) {
      S.AdjEdge[W] = RetId;
      S.AdjOther[W] = 2 * V.entry();
      ++W;
    }
  }
  S.AdjOff[2 * N] = W;
}

} // namespace

CycleEquivResult pst::computeCycleEquivalenceRaw(
    const UndirectedGraphView &View) {
  CycleEquivScratch Scratch;
  return computeCycleEquivalenceRaw(View, Scratch);
}

CycleEquivResult pst::computeCycleEquivalenceRaw(
    const UndirectedGraphView &View, CycleEquivScratch &Scratch) {
  PairEndpoints Ep{View.Endpoints.data()};
  CycleEquivSolver<PairEndpoints> Solver(
      View.NumNodes, View.Root,
      static_cast<uint32_t>(View.Endpoints.size()), Ep, Scratch);
  return Solver.run(/*AdjacencyPrebuilt=*/false);
}

CycleEquivResult pst::computeCycleEquivalence(const CfgView &V,
                                              bool AddReturnEdge,
                                              CycleEquivScratch &Scratch) {
  buildViewAdjacency(V, AddReturnEdge, Scratch);
  ViewEndpoints Ep{V.edgeSrc(), V.edgeDst(), V.numEdges(), V.exit(),
                   V.entry()};
  uint32_t NumReal = V.numEdges() + (AddReturnEdge ? 1 : 0);
  NodeId Root = V.entry() != InvalidNode ? V.entry() : 0;
  CycleEquivSolver<ViewEndpoints> Solver(V.numNodes(), Root, NumReal, Ep,
                                         Scratch);
  CycleEquivResult R = Solver.run(/*AdjacencyPrebuilt=*/true);
  R.HasReturnEdge = AddReturnEdge;
  return R;
}

CycleEquivResult pst::computeCycleEquivalenceTs(const CfgView &V,
                                                CycleEquivScratch &Scratch) {
  buildTsAdjacency(V, Scratch);
  TsEndpoints Ep{V.edgeSrc(), V.edgeDst(), V.numNodes(), V.numEdges(),
                 V.entry(), V.exit()};
  uint32_t NumReal = V.numNodes() + V.numEdges() + 1;
  CycleEquivSolver<TsEndpoints> Solver(2 * V.numNodes(), 2 * V.entry(),
                                       NumReal, Ep, Scratch);
  return Solver.run(/*AdjacencyPrebuilt=*/true);
}

namespace {

CycleEquivResult runOnView(const Cfg &G, bool AddReturnEdge,
                           UndirectedGraphView &View,
                           CycleEquivScratch *Scratch) {
  View.NumNodes = G.numNodes();
  View.Root = G.entry() != InvalidNode ? G.entry() : 0;
  View.Endpoints.clear();
  View.Endpoints.reserve(G.numEdges() + (AddReturnEdge ? 1 : 0));
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    View.Endpoints.emplace_back(G.source(E), G.target(E));
  if (AddReturnEdge)
    View.Endpoints.emplace_back(G.exit(), G.entry());
  CycleEquivResult R = Scratch ? computeCycleEquivalenceRaw(View, *Scratch)
                               : computeCycleEquivalenceRaw(View);
  R.HasReturnEdge = AddReturnEdge;
  return R;
}

} // namespace

CycleEquivResult pst::computeCycleEquivalence(const Cfg &G,
                                              bool AddReturnEdge) {
  UndirectedGraphView View;
  return runOnView(G, AddReturnEdge, View, nullptr);
}

CycleEquivResult CycleEquivEngine::run(const Cfg &G, bool AddReturnEdge) {
  return runOnView(G, AddReturnEdge, View, &Solver);
}

CycleEquivResult CycleEquivEngine::run(const CfgView &V, bool AddReturnEdge) {
  return computeCycleEquivalence(V, AddReturnEdge, Solver);
}
