//===- CycleEquiv.cpp - Linear cycle equivalence ---------------------------===//
//
// Part of the PST library (see CycleEquiv.h for the project reference).
//
// Implements the pseudocode of the paper's Figure 4 with these concrete
// choices:
//  * The DFS is iterative, so deep graphs cannot overflow the call stack.
//  * Bracket lists are intrusive doubly-linked cells in one arena; concat
//    is an O(1) splice; delete is O(1) via a back-pointer on each bracket.
//  * Self loops cannot bracket anything (the cycle they form contains only
//    themselves), so each gets a fresh singleton class and is excluded from
//    the undirected DFS.
//  * Nodes are processed in reverse DFS preorder, which visits every child
//    before its parent.
//
//===----------------------------------------------------------------------===//

#include "pst/cycleequiv/CycleEquiv.h"

#include <algorithm>
#include <limits>

using namespace pst;

namespace {

constexpr uint32_t None = ~uint32_t(0);

/// One undirected edge record: a real CFG edge, the artificial return edge,
/// or a capping backedge created by the algorithm.
struct ERec {
  uint32_t Class = UndefinedClass;
  /// Bracket-list size when this edge was most recently the topmost bracket
  /// (0 = never; real sizes are >= 1).
  uint32_t RecentSize = 0;
  /// Class handed out when this edge was most recently the topmost bracket.
  uint32_t RecentClass = UndefinedClass;
  /// Arena cell currently holding this edge in some bracket list.
  uint32_t Cell = None;
};

/// Doubly-linked list cell in the bracket arena.
struct Cell {
  uint32_t Rec = None;
  uint32_t Prev = None;
  uint32_t Next = None;
};

/// Head/tail/size view of one node's bracket list.
struct BList {
  uint32_t Head = None;
  uint32_t Tail = None;
  uint32_t Size = 0;
};

class CycleEquivSolver {
public:
  explicit CycleEquivSolver(const UndirectedGraphView &View)
      : View(View),
        NumRealEdges(static_cast<uint32_t>(View.Endpoints.size())) {}

  CycleEquivResult run();

private:
  // -- Bracket list primitives (all O(1)) --------------------------------
  uint32_t newCell(uint32_t RecId) {
    Cells.push_back(Cell{RecId, None, None});
    return static_cast<uint32_t>(Cells.size() - 1);
  }

  void push(BList &L, uint32_t RecId) {
    uint32_t C = newCell(RecId);
    Cells[C].Next = L.Head;
    if (L.Head != None)
      Cells[L.Head].Prev = C;
    L.Head = C;
    if (L.Tail == None)
      L.Tail = C;
    ++L.Size;
    Recs[RecId].Cell = C;
  }

  void erase(BList &L, uint32_t RecId) {
    uint32_t C = Recs[RecId].Cell;
    assert(C != None && "bracket not on any list");
    uint32_t P = Cells[C].Prev, N = Cells[C].Next;
    if (P != None)
      Cells[P].Next = N;
    else
      L.Head = N;
    if (N != None)
      Cells[N].Prev = P;
    else
      L.Tail = P;
    --L.Size;
    Recs[RecId].Cell = None;
  }

  /// Splices \p Src in front of \p Dst, emptying \p Src.
  void concatInto(BList &Dst, BList &Src) {
    if (Src.Head == None)
      return;
    if (Dst.Head == None) {
      Dst = Src;
    } else {
      Cells[Src.Tail].Next = Dst.Head;
      Cells[Dst.Head].Prev = Src.Tail;
      Dst.Head = Src.Head;
      Dst.Size += Src.Size;
    }
    Src = BList{};
  }

  uint32_t newClass() { return NextClass++; }

  // -- Phases -------------------------------------------------------------
  void buildAdjacency();
  void undirectedDfs(NodeId Root);
  void classifyEdges();
  void processNodes();

  NodeId endpointA(uint32_t E) const { return View.Endpoints[E].first; }
  NodeId endpointB(uint32_t E) const { return View.Endpoints[E].second; }
  uint32_t numNodes() const { return View.NumNodes; }

  const UndirectedGraphView &View;
  uint32_t NumRealEdges;

  // Undirected adjacency: per node, (edge id, other endpoint).
  std::vector<std::vector<std::pair<uint32_t, NodeId>>> Adj;
  std::vector<uint32_t> SelfLoops; // Edge ids excluded from the DFS.

  // DFS results.
  std::vector<uint32_t> DfsNum;      // Preorder number per node.
  std::vector<NodeId> Order;         // Order[i] = node with preorder i.
  std::vector<uint32_t> ParentEdge;  // Undirected tree edge into node.
  std::vector<std::vector<NodeId>> Children;

  // Backedge incidence: by descendant endpoint (push site) and by ancestor
  // endpoint (delete site).
  std::vector<std::vector<uint32_t>> BackFrom, BackTo;
  // Capping backedges registered for deletion at their ancestor endpoint.
  std::vector<std::vector<uint32_t>> CappingTo;

  std::vector<ERec> Recs;
  std::vector<Cell> Cells;
  std::vector<BList> Lists; // One bracket list per node.
  std::vector<uint32_t> Hi; // Min dfsnum reachable from the node's subtree.

  uint32_t NextClass = 0;
};

void CycleEquivSolver::buildAdjacency() {
  Adj.assign(numNodes(), {});
  for (uint32_t E = 0; E < NumRealEdges; ++E) {
    NodeId A = endpointA(E), B = endpointB(E);
    if (A == B) {
      SelfLoops.push_back(E);
      continue;
    }
    Adj[A].emplace_back(E, B);
    Adj[B].emplace_back(E, A);
  }
}

void CycleEquivSolver::undirectedDfs(NodeId Root) {
  uint32_t N = numNodes();
  DfsNum.assign(N, None);
  ParentEdge.assign(N, None);
  Order.clear();
  Order.reserve(N);

  std::vector<std::pair<NodeId, uint32_t>> Stack;
  std::vector<bool> EdgeUsed(NumRealEdges, false);

  DfsNum[Root] = 0;
  Order.push_back(Root);
  Stack.emplace_back(Root, 0);
  while (!Stack.empty()) {
    auto &[V, Next] = Stack.back();
    if (Next == Adj[V].size()) {
      Stack.pop_back();
      continue;
    }
    auto [E, W] = Adj[V][Next++];
    if (EdgeUsed[E])
      continue;
    if (DfsNum[W] != None)
      continue; // Non-tree edge; classified later.
    EdgeUsed[E] = true;
    DfsNum[W] = static_cast<uint32_t>(Order.size());
    Order.push_back(W);
    ParentEdge[W] = E;
    Stack.emplace_back(W, 0);
  }

  Children.assign(N, {});
  for (NodeId V : Order) {
    if (ParentEdge[V] == None)
      continue;
    uint32_t E = ParentEdge[V];
    NodeId P = endpointA(E) == V ? endpointB(E) : endpointA(E);
    Children[P].push_back(V);
  }
}

void CycleEquivSolver::classifyEdges() {
  uint32_t N = numNodes();
  BackFrom.assign(N, {});
  BackTo.assign(N, {});
  CappingTo.assign(N, {});
  for (uint32_t E = 0; E < NumRealEdges; ++E) {
    NodeId A = endpointA(E), B = endpointB(E);
    if (A == B)
      continue; // Self loop.
    if (DfsNum[A] == None || DfsNum[B] == None)
      continue; // Disconnected input (documented precondition violation).
    if (ParentEdge[A] == E || ParentEdge[B] == E)
      continue; // Tree edge.
    // In an undirected DFS every non-tree edge joins a node to an ancestor.
    NodeId Desc = DfsNum[A] > DfsNum[B] ? A : B;
    NodeId Anc = Desc == A ? B : A;
    BackFrom[Desc].push_back(E);
    BackTo[Anc].push_back(E);
  }
}

void CycleEquivSolver::processNodes() {
  uint32_t N = numNodes();
  constexpr uint32_t Inf = std::numeric_limits<uint32_t>::max();
  Hi.assign(N, Inf);
  Lists.assign(N, BList{});
  Recs.assign(NumRealEdges, ERec{});
  Cells.reserve(NumRealEdges + N);

  // Reverse preorder visits children before parents.
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    NodeId V = *It;

    // hi0: highest (smallest dfsnum) destination of a backedge from V.
    uint32_t Hi0 = Inf;
    for (uint32_t E : BackFrom[V]) {
      NodeId Anc = DfsNum[endpointA(E)] < DfsNum[endpointB(E)]
                       ? endpointA(E)
                       : endpointB(E);
      Hi0 = std::min(Hi0, DfsNum[Anc]);
    }
    // hi1/hi2: highest and second-highest reach among the children.
    uint32_t Hi1 = Inf, Hi2 = Inf;
    for (NodeId C : Children[V]) {
      uint32_t H = Hi[C];
      if (H < Hi1) {
        Hi2 = Hi1;
        Hi1 = H;
      } else if (H < Hi2) {
        Hi2 = H;
      }
    }
    Hi[V] = std::min(Hi0, Hi1);

    // Assemble V's bracket list from the children's lists.
    BList &L = Lists[V];
    for (NodeId C : Children[V])
      concatInto(L, Lists[C]);

    // Delete capping backedges ending here.
    for (uint32_t D : CappingTo[V])
      erase(L, D);
    // Delete ordinary backedges ending here; a backedge that was never a
    // topmost bracket still needs a class of its own.
    for (uint32_t B : BackTo[V]) {
      erase(L, B);
      if (Recs[B].Class == UndefinedClass)
        Recs[B].Class = newClass();
    }
    // Push backedges leaving V toward ancestors.
    for (uint32_t E : BackFrom[V])
      push(L, E);

    // Insert a capping backedge when brackets from two subtrees both out-
    // live V: it masks the mixed prefix up to the second-highest reach.
    // The guard Hi2 < DfsNum[V] is a necessary correction to the paper's
    // Figure 4 (which only tests hi2 < hi0): when the second-highest child
    // reach is V itself or deeper, those brackets die at or below V, no
    // masking is needed, and a capping edge could never be deleted.
    if (Hi2 < Hi0 && Hi2 < DfsNum[V]) {
      uint32_t D = static_cast<uint32_t>(Recs.size());
      Recs.push_back(ERec{});
      push(L, D);
      NodeId AncNode = Order[Hi2]; // A proper ancestor, by the guard above.
      CappingTo[AncNode].push_back(D);
    }

    // Name the equivalence class of the tree edge into V.
    uint32_t PE = ParentEdge[V];
    if (PE == None)
      continue; // DFS root.
    if (L.Size == 0) {
      // Bridge edge: only possible if the input was not strongly
      // connected. Give it a class so callers still get a partition.
      Recs[PE].Class = newClass();
      continue;
    }
    ERec &Top = Recs[Cells[L.Head].Rec];
    if (Top.RecentSize != L.Size) {
      Top.RecentSize = L.Size;
      Top.RecentClass = newClass();
    }
    Recs[PE].Class = Top.RecentClass;
    // A tree edge with exactly one bracket is cycle equivalent to it
    // (Theorem 4).
    if (Top.RecentSize == 1)
      Top.Class = Recs[PE].Class;
  }
}

CycleEquivResult CycleEquivSolver::run() {
  CycleEquivResult R;
  if (numNodes() == 0) {
    R.EdgeClass.assign(NumRealEdges, UndefinedClass);
    return R;
  }

  buildAdjacency();
  undirectedDfs(View.Root < numNodes() ? View.Root : 0);
  classifyEdges();
  processNodes();

  R.EdgeClass.assign(NumRealEdges, UndefinedClass);
  for (uint32_t E = 0; E < NumRealEdges; ++E)
    R.EdgeClass[E] = Recs[E].Class;
  for (uint32_t E : SelfLoops)
    R.EdgeClass[E] = NextClass++;
  // Defensive: edges of a disconnected component never got processed.
  for (uint32_t E = 0; E < NumRealEdges; ++E)
    if (R.EdgeClass[E] == UndefinedClass)
      R.EdgeClass[E] = NextClass++;
  R.NumClasses = NextClass;
  return R;
}

} // namespace

CycleEquivResult pst::computeCycleEquivalenceRaw(
    const UndirectedGraphView &View) {
  return CycleEquivSolver(View).run();
}

namespace {

CycleEquivResult runOnView(const Cfg &G, bool AddReturnEdge,
                           UndirectedGraphView &View) {
  View.NumNodes = G.numNodes();
  View.Root = G.entry() != InvalidNode ? G.entry() : 0;
  View.Endpoints.clear();
  View.Endpoints.reserve(G.numEdges() + (AddReturnEdge ? 1 : 0));
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    View.Endpoints.emplace_back(G.source(E), G.target(E));
  if (AddReturnEdge)
    View.Endpoints.emplace_back(G.exit(), G.entry());
  CycleEquivResult R = computeCycleEquivalenceRaw(View);
  R.HasReturnEdge = AddReturnEdge;
  return R;
}

} // namespace

CycleEquivResult pst::computeCycleEquivalence(const Cfg &G,
                                              bool AddReturnEdge) {
  UndirectedGraphView View;
  return runOnView(G, AddReturnEdge, View);
}

CycleEquivResult CycleEquivEngine::run(const Cfg &G, bool AddReturnEdge) {
  return runOnView(G, AddReturnEdge, Scratch);
}
