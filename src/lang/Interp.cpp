//===- Interp.cpp - MiniLang interpreters ---------------------------------------===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/lang/Interp.h"

#include "pst/lang/Ast.h"

#include <cassert>
#include <map>

using namespace pst;

int64_t pst::evalBuiltinCall(const std::string &Callee,
                             const std::vector<int64_t> &Args) {
  // A deterministic pure mix so both interpreters agree exactly.
  uint64_t H = 0x9e3779b97f4a7c15ULL;
  for (char C : Callee)
    H = (H ^ static_cast<uint64_t>(C)) * 0x100000001b3ULL;
  for (int64_t A : Args)
    H = (H ^ static_cast<uint64_t>(A)) * 0x100000001b3ULL;
  return static_cast<int64_t>(H >> 8) % 1000;
}

namespace {

/// Wrapping arithmetic with total division.
int64_t applyBinary(OpKind Op, int64_t L, int64_t R) {
  auto U = [](int64_t X) { return static_cast<uint64_t>(X); };
  switch (Op) {
  case OpKind::Add:
    return static_cast<int64_t>(U(L) + U(R));
  case OpKind::Sub:
    return static_cast<int64_t>(U(L) - U(R));
  case OpKind::Mul:
    return static_cast<int64_t>(U(L) * U(R));
  case OpKind::Div:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return L; // Wraps; avoids UB.
    return L / R;
  case OpKind::Rem:
    if (R == 0)
      return 0;
    if (L == INT64_MIN && R == -1)
      return 0;
    return L % R;
  case OpKind::Eq:
    return L == R;
  case OpKind::Ne:
    return L != R;
  case OpKind::Lt:
    return L < R;
  case OpKind::Le:
    return L <= R;
  case OpKind::Gt:
    return L > R;
  case OpKind::Ge:
    return L >= R;
  case OpKind::And:
    return (L != 0 && R != 0) ? 1 : 0;
  case OpKind::Or:
    return (L != 0 || R != 0) ? 1 : 0;
  case OpKind::Neg:
  case OpKind::Not:
    break;
  }
  assert(false && "unary operator in binary evaluation");
  return 0;
}

/// Evaluates \p E against an environment lookup callback.
template <typename LookupT>
int64_t evalExpr(const Expr &E, const LookupT &Lookup) {
  switch (E.Kind) {
  case ExprKind::Number:
    return E.Value;
  case ExprKind::VarRef:
    return Lookup(E.Name);
  case ExprKind::Unary: {
    int64_t V = evalExpr(*E.Lhs, Lookup);
    return E.Op == OpKind::Neg
               ? static_cast<int64_t>(-static_cast<uint64_t>(V))
               : (V == 0 ? 1 : 0);
  }
  case ExprKind::Binary:
    return applyBinary(E.Op, evalExpr(*E.Lhs, Lookup),
                       evalExpr(*E.Rhs, Lookup));
  case ExprKind::Call: {
    std::vector<int64_t> Args;
    Args.reserve(E.Args.size());
    for (const auto &A : E.Args)
      Args.push_back(evalExpr(*A, Lookup));
    return evalBuiltinCall(E.Name, Args);
  }
  }
  return 0;
}

/// AST walker state.
struct AstInterp {
  std::map<std::string, int64_t> Env;
  uint64_t Steps = 0, MaxSteps;
  bool OutOfBudget = false, Unsupported = false;
  int64_t ReturnValue = 0;

  enum class Signal { None, Break, Continue, Return };

  explicit AstInterp(uint64_t MaxSteps) : MaxSteps(MaxSteps) {}

  int64_t eval(const Expr &E) {
    return evalExpr(E, [this](const std::string &N) {
      auto It = Env.find(N);
      return It == Env.end() ? int64_t(0) : It->second;
    });
  }

  bool tick() {
    if (++Steps > MaxSteps) {
      OutOfBudget = true;
      return false;
    }
    return true;
  }

  Signal exec(const Stmt &S) {
    if (OutOfBudget || Unsupported)
      return Signal::Return;
    switch (S.Kind) {
    case StmtKind::Block:
      for (const auto &C : S.Body) {
        Signal Sig = exec(*C);
        if (Sig != Signal::None)
          return Sig;
      }
      return Signal::None;
    case StmtKind::VarDecl:
      if (!tick())
        return Signal::Return;
      Env[S.Name] = S.Value ? eval(*S.Value) : 0;
      return Signal::None;
    case StmtKind::Assign:
      if (!tick())
        return Signal::Return;
      Env[S.Name] = eval(*S.Value);
      return Signal::None;
    case StmtKind::ExprStmt:
      if (!tick())
        return Signal::Return;
      eval(*S.Value);
      return Signal::None;
    case StmtKind::If:
      if (!tick())
        return Signal::Return;
      if (eval(*S.Value) != 0)
        return exec(*S.Then);
      if (S.Else)
        return exec(*S.Else);
      return Signal::None;
    case StmtKind::While:
      while (true) {
        if (!tick())
          return Signal::Return;
        if (eval(*S.Value) == 0)
          return Signal::None;
        Signal Sig = exec(*S.Then);
        if (Sig == Signal::Break)
          return Signal::None;
        if (Sig == Signal::Return)
          return Sig;
      }
    case StmtKind::DoWhile:
      while (true) {
        Signal Sig = exec(*S.Then);
        if (Sig == Signal::Break)
          return Signal::None;
        if (Sig == Signal::Return)
          return Sig;
        if (!tick())
          return Signal::Return;
        if (eval(*S.Value) == 0)
          return Signal::None;
      }
    case StmtKind::For: {
      if (S.Init) {
        if (!tick())
          return Signal::Return;
        Env[S.Init->Name] = eval(*S.Init->Value);
      }
      while (true) {
        if (!tick())
          return Signal::Return;
        if (S.Value && eval(*S.Value) == 0)
          return Signal::None;
        Signal Sig = exec(*S.Then);
        if (Sig == Signal::Break)
          return Signal::None;
        if (Sig == Signal::Return)
          return Sig;
        if (S.Step) {
          if (!tick())
            return Signal::Return;
          Env[S.Step->Name] = eval(*S.Step->Value);
        }
      }
    }
    case StmtKind::Switch: {
      if (!tick())
        return Signal::Return;
      int64_t Sel = eval(*S.Value);
      const SwitchArm *Chosen = nullptr;
      const SwitchArm *Default = nullptr;
      for (const auto &Arm : S.Arms) {
        if (!Arm.HasValue)
          Default = &Arm;
        else if (Arm.Value == Sel && !Chosen)
          Chosen = &Arm;
      }
      if (!Chosen)
        Chosen = Default;
      if (Chosen)
        for (const auto &C : Chosen->Body) {
          Signal Sig = exec(*C);
          if (Sig != Signal::None)
            return Sig;
        }
      return Signal::None;
    }
    case StmtKind::Break:
      return Signal::Break;
    case StmtKind::Continue:
      return Signal::Continue;
    case StmtKind::Return:
      if (!tick())
        return Signal::Return;
      ReturnValue = S.Value ? eval(*S.Value) : 0;
      return Signal::Return;
    case StmtKind::Goto:
    case StmtKind::Label:
      Unsupported = true;
      return Signal::Return;
    }
    return Signal::None;
  }
};

} // namespace

ExecResult pst::runAst(const Function &F, const std::vector<int64_t> &Args,
                       uint64_t MaxSteps) {
  AstInterp I(MaxSteps);
  for (size_t K = 0; K < F.Params.size(); ++K)
    I.Env[F.Params[K]] = K < Args.size() ? Args[K] : 0;
  AstInterp::Signal Sig = I.exec(*F.Body);
  ExecResult R;
  R.Steps = I.Steps;
  R.Finished = !I.OutOfBudget && !I.Unsupported;
  // Implicit `return 0` when control falls off the end.
  R.ReturnValue = (R.Finished && Sig == AstInterp::Signal::Return)
                      ? I.ReturnValue
                      : 0;
  return R;
}

CfgExecResult pst::runLowered(const LoweredFunction &F,
                              const std::vector<int64_t> &Args,
                              uint64_t MaxSteps, bool CountEdges) {
  const Cfg &G = F.Graph;
  CfgExecResult R;
  R.BlockCounts.assign(G.numNodes(), 0);
  if (CountEdges)
    R.EdgeCounts.assign(G.numEdges(), 0);

  std::vector<int64_t> Env(F.numVars(), 0);
  std::map<std::string, VarId> ByName;
  for (VarId V = 0; V < F.numVars(); ++V)
    ByName[F.VarNames[V]] = V;
  auto Lookup = [&](const std::string &N) -> int64_t {
    auto It = ByName.find(N);
    return It == ByName.end() ? 0 : Env[It->second];
  };

  NodeId Cur = G.entry();
  int64_t ReturnValue = 0;
  uint64_t ParamIdx = 0;
  while (true) {
    ++R.BlockCounts[Cur];
    if (Cur == G.exit()) {
      R.Finished = true;
      R.ReturnValue = ReturnValue;
      return R;
    }

    // Execute the block and decide the outgoing edge.
    uint32_t TakenSucc = 0;
    for (const Instruction &I : F.Code[Cur]) {
      if (++R.Steps > MaxSteps)
        return R; // Finished stays false.
      switch (I.K) {
      case Instruction::Kind::Param:
        Env[I.Def] = ParamIdx < Args.size()
                         ? Args[ParamIdx]
                         : 0;
        ++ParamIdx;
        break;
      case Instruction::Kind::Assign:
        Env[I.Def] = evalExpr(*I.Rhs, Lookup);
        break;
      case Instruction::Kind::Call:
        evalExpr(*I.Rhs, Lookup);
        break;
      case Instruction::Kind::CondBranch:
        TakenSucc = evalExpr(*I.Rhs, Lookup) != 0 ? 0 : 1;
        break;
      case Instruction::Kind::SwitchTerm: {
        int64_t Sel = evalExpr(*I.Rhs, Lookup);
        uint32_t DefaultIdx = UINT32_MAX;
        uint32_t Match = UINT32_MAX;
        for (uint32_t A = 0; A < I.Arms.size(); ++A) {
          if (I.Arms[A].IsDefault)
            DefaultIdx = A;
          else if (I.Arms[A].Value == Sel && Match == UINT32_MAX)
            Match = A;
        }
        if (Match != UINT32_MAX)
          TakenSucc = Match;
        else if (DefaultIdx != UINT32_MAX)
          TakenSucc = DefaultIdx;
        else
          TakenSucc = static_cast<uint32_t>(I.Arms.size()); // Fall past.
        break;
      }
      case Instruction::Kind::Return:
        ReturnValue = I.Rhs ? evalExpr(*I.Rhs, Lookup) : 0;
        TakenSucc = 0; // The edge to exit.
        break;
      }
    }
    const auto &Succs = G.succEdges(Cur);
    assert(!Succs.empty() && "non-exit block without successors");
    if (TakenSucc >= Succs.size())
      TakenSucc = static_cast<uint32_t>(Succs.size()) - 1;
    EdgeId Taken = Succs[TakenSucc];
    if (CountEdges)
      ++R.EdgeCounts[Taken];
    Cur = G.target(Taken);
  }
}
