//===- Parser.cpp - MiniLang parser --------------------------------------------===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/lang/Parser.h"

#include "pst/lang/Lexer.h"

#include <cassert>

using namespace pst;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Toks, std::vector<Diagnostic> *Diags)
      : Toks(std::move(Toks)), Diags(Diags) {}

  std::optional<Program> run() {
    Program P;
    while (!at(TokKind::Eof)) {
      auto F = parseFunction();
      if (!F)
        return std::nullopt;
      P.Functions.push_back(std::move(*F));
    }
    if (P.Functions.empty()) {
      error("input contains no functions");
      return std::nullopt;
    }
    return P;
  }

private:
  // -- Token plumbing ------------------------------------------------------
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Off = 1) const {
    return Toks[std::min(Pos + Off, Toks.size() - 1)];
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  Token advance() { return Toks[Pos++]; }

  bool expect(TokKind K, const char *Context) {
    if (at(K)) {
      advance();
      return true;
    }
    error(std::string("expected ") + tokKindName(K) + " " + Context +
          ", found " + tokKindName(cur().Kind));
    return false;
  }

  void error(std::string Msg) {
    if (Diags)
      Diags->push_back(Diagnostic{cur().Line, cur().Col, std::move(Msg)});
  }

  // -- Grammar -------------------------------------------------------------
  std::optional<Function> parseFunction() {
    Function F;
    F.Line = cur().Line;
    if (!expect(TokKind::KwFunc, "at start of function"))
      return std::nullopt;
    if (!at(TokKind::Ident)) {
      error("expected function name after 'func'");
      return std::nullopt;
    }
    F.Name = advance().Text;
    if (!expect(TokKind::LParen, "after function name"))
      return std::nullopt;
    if (!at(TokKind::RParen)) {
      while (true) {
        if (!at(TokKind::Ident)) {
          error("expected parameter name");
          return std::nullopt;
        }
        F.Params.push_back(advance().Text);
        if (!at(TokKind::Comma))
          break;
        advance();
      }
    }
    if (!expect(TokKind::RParen, "after parameter list"))
      return std::nullopt;
    auto Body = parseBlock();
    if (!Body)
      return std::nullopt;
    F.Body = std::move(*Body);
    return F;
  }

  std::optional<StmtPtr> parseBlock() {
    uint32_t Line = cur().Line;
    if (!expect(TokKind::LBrace, "to open block"))
      return std::nullopt;
    auto B = std::make_unique<Stmt>(StmtKind::Block);
    B->Line = Line;
    while (!at(TokKind::RBrace)) {
      if (at(TokKind::Eof)) {
        error("unterminated block; missing '}'");
        return std::nullopt;
      }
      auto S = parseStmt();
      if (!S)
        return std::nullopt;
      B->Body.push_back(std::move(*S));
    }
    advance(); // '}'.
    return B;
  }

  std::optional<StmtPtr> parseStmt() {
    uint32_t Line = cur().Line;
    switch (cur().Kind) {
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwVar: {
      advance();
      if (!at(TokKind::Ident)) {
        error("expected variable name after 'var'");
        return std::nullopt;
      }
      auto S = std::make_unique<Stmt>(StmtKind::VarDecl);
      S->Line = Line;
      S->Name = advance().Text;
      if (at(TokKind::Assign)) {
        advance();
        auto E = parseExpr();
        if (!E)
          return std::nullopt;
        S->Value = std::move(*E);
      }
      if (!expect(TokKind::Semi, "after variable declaration"))
        return std::nullopt;
      return S;
    }
    case TokKind::KwIf: {
      advance();
      if (!expect(TokKind::LParen, "after 'if'"))
        return std::nullopt;
      auto C = parseExpr();
      if (!C)
        return std::nullopt;
      if (!expect(TokKind::RParen, "after if condition"))
        return std::nullopt;
      auto Then = parseStmt();
      if (!Then)
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::If);
      S->Line = Line;
      S->Value = std::move(*C);
      S->Then = std::move(*Then);
      if (at(TokKind::KwElse)) {
        advance();
        auto Else = parseStmt();
        if (!Else)
          return std::nullopt;
        S->Else = std::move(*Else);
      }
      return S;
    }
    case TokKind::KwWhile: {
      advance();
      if (!expect(TokKind::LParen, "after 'while'"))
        return std::nullopt;
      auto C = parseExpr();
      if (!C)
        return std::nullopt;
      if (!expect(TokKind::RParen, "after while condition"))
        return std::nullopt;
      auto Body = parseStmt();
      if (!Body)
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::While);
      S->Line = Line;
      S->Value = std::move(*C);
      S->Then = std::move(*Body);
      return S;
    }
    case TokKind::KwDo: {
      advance();
      auto Body = parseStmt();
      if (!Body)
        return std::nullopt;
      if (!expect(TokKind::KwWhile, "after do body"))
        return std::nullopt;
      if (!expect(TokKind::LParen, "after 'while'"))
        return std::nullopt;
      auto C = parseExpr();
      if (!C)
        return std::nullopt;
      if (!expect(TokKind::RParen, "after do-while condition"))
        return std::nullopt;
      if (!expect(TokKind::Semi, "after do-while"))
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::DoWhile);
      S->Line = Line;
      S->Value = std::move(*C);
      S->Then = std::move(*Body);
      return S;
    }
    case TokKind::KwFor: {
      advance();
      if (!expect(TokKind::LParen, "after 'for'"))
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::For);
      S->Line = Line;
      if (!at(TokKind::Semi)) {
        auto Init = parsePlainAssign();
        if (!Init)
          return std::nullopt;
        S->Init = std::move(*Init);
      }
      if (!expect(TokKind::Semi, "after for initializer"))
        return std::nullopt;
      if (!at(TokKind::Semi)) {
        auto C = parseExpr();
        if (!C)
          return std::nullopt;
        S->Value = std::move(*C);
      }
      if (!expect(TokKind::Semi, "after for condition"))
        return std::nullopt;
      if (!at(TokKind::RParen)) {
        auto Step = parsePlainAssign();
        if (!Step)
          return std::nullopt;
        S->Step = std::move(*Step);
      }
      if (!expect(TokKind::RParen, "after for clauses"))
        return std::nullopt;
      auto Body = parseStmt();
      if (!Body)
        return std::nullopt;
      S->Then = std::move(*Body);
      return S;
    }
    case TokKind::KwSwitch: {
      advance();
      if (!expect(TokKind::LParen, "after 'switch'"))
        return std::nullopt;
      auto C = parseExpr();
      if (!C)
        return std::nullopt;
      if (!expect(TokKind::RParen, "after switch value"))
        return std::nullopt;
      if (!expect(TokKind::LBrace, "to open switch body"))
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::Switch);
      S->Line = Line;
      S->Value = std::move(*C);
      bool SawDefault = false;
      while (!at(TokKind::RBrace)) {
        SwitchArm Arm;
        if (at(TokKind::KwCase)) {
          advance();
          if (!at(TokKind::Number)) {
            error("expected number after 'case'");
            return std::nullopt;
          }
          Arm.HasValue = true;
          Arm.Value = advance().Value;
        } else if (at(TokKind::KwDefault)) {
          if (SawDefault) {
            error("duplicate 'default' arm");
            return std::nullopt;
          }
          SawDefault = true;
          advance();
        } else {
          error("expected 'case', 'default' or '}' in switch body");
          return std::nullopt;
        }
        if (!expect(TokKind::Colon, "after switch arm label"))
          return std::nullopt;
        while (!at(TokKind::KwCase) && !at(TokKind::KwDefault) &&
               !at(TokKind::RBrace)) {
          if (at(TokKind::Eof)) {
            error("unterminated switch body");
            return std::nullopt;
          }
          auto Inner = parseStmt();
          if (!Inner)
            return std::nullopt;
          Arm.Body.push_back(std::move(*Inner));
        }
        S->Arms.push_back(std::move(Arm));
      }
      advance(); // '}'.
      return S;
    }
    case TokKind::KwBreak: {
      advance();
      if (!expect(TokKind::Semi, "after 'break'"))
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::Break);
      S->Line = Line;
      return S;
    }
    case TokKind::KwContinue: {
      advance();
      if (!expect(TokKind::Semi, "after 'continue'"))
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::Continue);
      S->Line = Line;
      return S;
    }
    case TokKind::KwReturn: {
      advance();
      auto S = std::make_unique<Stmt>(StmtKind::Return);
      S->Line = Line;
      if (!at(TokKind::Semi)) {
        auto E = parseExpr();
        if (!E)
          return std::nullopt;
        S->Value = std::move(*E);
      }
      if (!expect(TokKind::Semi, "after 'return'"))
        return std::nullopt;
      return S;
    }
    case TokKind::KwGoto: {
      advance();
      if (!at(TokKind::Ident)) {
        error("expected label name after 'goto'");
        return std::nullopt;
      }
      auto S = std::make_unique<Stmt>(StmtKind::Goto);
      S->Line = Line;
      S->Name = advance().Text;
      if (!expect(TokKind::Semi, "after goto"))
        return std::nullopt;
      return S;
    }
    case TokKind::Ident: {
      // Label, assignment, or call-expression statement.
      if (peek().Kind == TokKind::Colon) {
        auto S = std::make_unique<Stmt>(StmtKind::Label);
        S->Line = Line;
        S->Name = advance().Text;
        advance(); // ':'.
        return S;
      }
      if (peek().Kind == TokKind::Assign) {
        auto S = parsePlainAssign();
        if (!S)
          return std::nullopt;
        if (!expect(TokKind::Semi, "after assignment"))
          return std::nullopt;
        return S;
      }
      [[fallthrough]];
    }
    default: {
      auto E = parseExpr();
      if (!E)
        return std::nullopt;
      if (!expect(TokKind::Semi, "after expression statement"))
        return std::nullopt;
      auto S = std::make_unique<Stmt>(StmtKind::ExprStmt);
      S->Line = Line;
      S->Value = std::move(*E);
      return S;
    }
    }
  }

  /// IDENT '=' expr (no trailing ';'); used by for-clauses and statements.
  std::optional<StmtPtr> parsePlainAssign() {
    if (!at(TokKind::Ident)) {
      error("expected assignment");
      return std::nullopt;
    }
    auto S = std::make_unique<Stmt>(StmtKind::Assign);
    S->Line = cur().Line;
    S->Name = advance().Text;
    if (!expect(TokKind::Assign, "in assignment"))
      return std::nullopt;
    auto E = parseExpr();
    if (!E)
      return std::nullopt;
    S->Value = std::move(*E);
    return S;
  }

  // -- Expressions (precedence climbing) -----------------------------------
  static int precedenceOf(TokKind K) {
    switch (K) {
    case TokKind::OrOr:
      return 1;
    case TokKind::AndAnd:
      return 2;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 3;
    case TokKind::Less:
    case TokKind::LessEq:
    case TokKind::Greater:
    case TokKind::GreaterEq:
      return 4;
    case TokKind::Plus:
    case TokKind::Minus:
      return 5;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 6;
    default:
      return 0;
    }
  }

  static OpKind binOpOf(TokKind K) {
    switch (K) {
    case TokKind::OrOr:
      return OpKind::Or;
    case TokKind::AndAnd:
      return OpKind::And;
    case TokKind::EqEq:
      return OpKind::Eq;
    case TokKind::NotEq:
      return OpKind::Ne;
    case TokKind::Less:
      return OpKind::Lt;
    case TokKind::LessEq:
      return OpKind::Le;
    case TokKind::Greater:
      return OpKind::Gt;
    case TokKind::GreaterEq:
      return OpKind::Ge;
    case TokKind::Plus:
      return OpKind::Add;
    case TokKind::Minus:
      return OpKind::Sub;
    case TokKind::Star:
      return OpKind::Mul;
    case TokKind::Slash:
      return OpKind::Div;
    case TokKind::Percent:
      return OpKind::Rem;
    default:
      assert(false && "not a binary operator token");
      return OpKind::Add;
    }
  }

  std::optional<ExprPtr> parseExpr(int MinPrec = 1) {
    auto Lhs = parseUnary();
    if (!Lhs)
      return std::nullopt;
    while (true) {
      int Prec = precedenceOf(cur().Kind);
      if (Prec < MinPrec)
        return Lhs;
      Token Op = advance();
      auto Rhs = parseExpr(Prec + 1); // All operators left-associative.
      if (!Rhs)
        return std::nullopt;
      Lhs = makeBinary(binOpOf(Op.Kind), std::move(*Lhs), std::move(*Rhs),
                       Op.Line);
    }
  }

  std::optional<ExprPtr> parseUnary() {
    if (at(TokKind::Minus) || at(TokKind::Not)) {
      Token Op = advance();
      auto Operand = parseUnary();
      if (!Operand)
        return std::nullopt;
      return makeUnary(Op.Kind == TokKind::Minus ? OpKind::Neg : OpKind::Not,
                       std::move(*Operand), Op.Line);
    }
    return parsePrimary();
  }

  std::optional<ExprPtr> parsePrimary() {
    switch (cur().Kind) {
    case TokKind::Number: {
      Token T = advance();
      return makeNumber(T.Value, T.Line);
    }
    case TokKind::Ident: {
      Token T = advance();
      if (!at(TokKind::LParen))
        return makeVarRef(T.Text, T.Line);
      advance(); // '('.
      std::vector<ExprPtr> Args;
      if (!at(TokKind::RParen)) {
        while (true) {
          auto A = parseExpr();
          if (!A)
            return std::nullopt;
          Args.push_back(std::move(*A));
          if (!at(TokKind::Comma))
            break;
          advance();
        }
      }
      if (!expect(TokKind::RParen, "after call arguments"))
        return std::nullopt;
      return makeCall(T.Text, std::move(Args), T.Line);
    }
    case TokKind::LParen: {
      advance();
      auto E = parseExpr();
      if (!E)
        return std::nullopt;
      if (!expect(TokKind::RParen, "to close parenthesized expression"))
        return std::nullopt;
      return E;
    }
    default:
      error(std::string("expected expression, found ") +
            tokKindName(cur().Kind));
      return std::nullopt;
    }
  }

  std::vector<Token> Toks;
  std::vector<Diagnostic> *Diags;
  size_t Pos = 0;
};

} // namespace

std::optional<Program> pst::parseProgram(const std::string &Source,
                                         std::vector<Diagnostic> *Diags) {
  return Parser(lex(Source), Diags).run();
}
