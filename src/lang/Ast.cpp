//===- Ast.cpp - MiniLang abstract syntax --------------------------------------===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/lang/Ast.h"

#include <sstream>

using namespace pst;

const char *pst::opSpelling(OpKind K) {
  switch (K) {
  case OpKind::Add:
    return "+";
  case OpKind::Sub:
    return "-";
  case OpKind::Mul:
    return "*";
  case OpKind::Div:
    return "/";
  case OpKind::Rem:
    return "%";
  case OpKind::Eq:
    return "==";
  case OpKind::Ne:
    return "!=";
  case OpKind::Lt:
    return "<";
  case OpKind::Le:
    return "<=";
  case OpKind::Gt:
    return ">";
  case OpKind::Ge:
    return ">=";
  case OpKind::And:
    return "&&";
  case OpKind::Or:
    return "||";
  case OpKind::Neg:
    return "-";
  case OpKind::Not:
    return "!";
  }
  return "?";
}

ExprPtr pst::makeNumber(int64_t V, uint32_t Line) {
  auto E = std::make_unique<Expr>(ExprKind::Number);
  E->Value = V;
  E->Line = Line;
  return E;
}

ExprPtr pst::makeVarRef(std::string Name, uint32_t Line) {
  auto E = std::make_unique<Expr>(ExprKind::VarRef);
  E->Name = std::move(Name);
  E->Line = Line;
  return E;
}

ExprPtr pst::makeUnary(OpKind Op, ExprPtr Operand, uint32_t Line) {
  auto E = std::make_unique<Expr>(ExprKind::Unary);
  E->Op = Op;
  E->Lhs = std::move(Operand);
  E->Line = Line;
  return E;
}

ExprPtr pst::makeBinary(OpKind Op, ExprPtr L, ExprPtr R, uint32_t Line) {
  auto E = std::make_unique<Expr>(ExprKind::Binary);
  E->Op = Op;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  E->Line = Line;
  return E;
}

ExprPtr pst::makeCall(std::string Callee, std::vector<ExprPtr> Args,
                      uint32_t Line) {
  auto E = std::make_unique<Expr>(ExprKind::Call);
  E->Name = std::move(Callee);
  E->Args = std::move(Args);
  E->Line = Line;
  return E;
}

std::string pst::formatExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Number:
    return std::to_string(E.Value);
  case ExprKind::VarRef:
    return E.Name;
  case ExprKind::Unary:
    return std::string(opSpelling(E.Op)) + formatExpr(*E.Lhs);
  case ExprKind::Binary:
    return "(" + formatExpr(*E.Lhs) + " " + opSpelling(E.Op) + " " +
           formatExpr(*E.Rhs) + ")";
  case ExprKind::Call: {
    std::string S = E.Name + "(";
    for (size_t I = 0; I < E.Args.size(); ++I) {
      if (I)
        S += ", ";
      S += formatExpr(*E.Args[I]);
    }
    return S + ")";
  }
  }
  return "?";
}

ExprPtr pst::cloneExpr(const Expr &E) {
  auto C = std::make_unique<Expr>(E.Kind);
  C->Line = E.Line;
  C->Value = E.Value;
  C->Name = E.Name;
  C->Op = E.Op;
  if (E.Lhs)
    C->Lhs = cloneExpr(*E.Lhs);
  if (E.Rhs)
    C->Rhs = cloneExpr(*E.Rhs);
  for (const auto &A : E.Args)
    C->Args.push_back(cloneExpr(*A));
  return C;
}

void pst::collectUses(const Expr &E, std::vector<std::string> &Out) {
  switch (E.Kind) {
  case ExprKind::Number:
    return;
  case ExprKind::VarRef:
    Out.push_back(E.Name);
    return;
  case ExprKind::Unary:
    collectUses(*E.Lhs, Out);
    return;
  case ExprKind::Binary:
    collectUses(*E.Lhs, Out);
    collectUses(*E.Rhs, Out);
    return;
  case ExprKind::Call:
    for (const auto &A : E.Args)
      collectUses(*A, Out);
    return;
  }
}

static void formatStmtInto(const Stmt &S, unsigned Indent,
                           std::ostringstream &OS) {
  std::string Pad(Indent * 2, ' ');
  auto Sub = [&](const Stmt &Child, unsigned Extra = 1) {
    formatStmtInto(Child, Indent + Extra, OS);
  };
  switch (S.Kind) {
  case StmtKind::Block:
    OS << Pad << "{\n";
    for (const auto &C : S.Body)
      formatStmtInto(*C, Indent + 1, OS);
    OS << Pad << "}\n";
    return;
  case StmtKind::VarDecl:
    OS << Pad << "var " << S.Name;
    if (S.Value)
      OS << " = " << formatExpr(*S.Value);
    OS << ";\n";
    return;
  case StmtKind::Assign:
    OS << Pad << S.Name << " = " << formatExpr(*S.Value) << ";\n";
    return;
  case StmtKind::ExprStmt:
    OS << Pad << formatExpr(*S.Value) << ";\n";
    return;
  case StmtKind::If:
    OS << Pad << "if (" << formatExpr(*S.Value) << ")\n";
    Sub(*S.Then);
    if (S.Else) {
      OS << Pad << "else\n";
      Sub(*S.Else);
    }
    return;
  case StmtKind::While:
    OS << Pad << "while (" << formatExpr(*S.Value) << ")\n";
    Sub(*S.Then);
    return;
  case StmtKind::DoWhile:
    OS << Pad << "do\n";
    Sub(*S.Then);
    OS << Pad << "while (" << formatExpr(*S.Value) << ");\n";
    return;
  case StmtKind::For:
    OS << Pad << "for (";
    if (S.Init)
      OS << S.Init->Name << " = " << formatExpr(*S.Init->Value);
    OS << "; ";
    if (S.Value)
      OS << formatExpr(*S.Value);
    OS << "; ";
    if (S.Step)
      OS << S.Step->Name << " = " << formatExpr(*S.Step->Value);
    OS << ")\n";
    Sub(*S.Then);
    return;
  case StmtKind::Switch:
    OS << Pad << "switch (" << formatExpr(*S.Value) << ") {\n";
    for (const auto &Arm : S.Arms) {
      if (Arm.HasValue)
        OS << Pad << "case " << Arm.Value << ":\n";
      else
        OS << Pad << "default:\n";
      for (const auto &C : Arm.Body)
        formatStmtInto(*C, Indent + 1, OS);
    }
    OS << Pad << "}\n";
    return;
  case StmtKind::Break:
    OS << Pad << "break;\n";
    return;
  case StmtKind::Continue:
    OS << Pad << "continue;\n";
    return;
  case StmtKind::Return:
    OS << Pad << "return";
    if (S.Value)
      OS << " " << formatExpr(*S.Value);
    OS << ";\n";
    return;
  case StmtKind::Goto:
    OS << Pad << "goto " << S.Name << ";\n";
    return;
  case StmtKind::Label:
    OS << Pad << S.Name << ":\n";
    return;
  }
}

std::string pst::formatStmt(const Stmt &S, unsigned Indent) {
  std::ostringstream OS;
  formatStmtInto(S, Indent, OS);
  return OS.str();
}

std::string pst::formatFunction(const Function &F) {
  std::ostringstream OS;
  OS << "func " << F.Name << "(";
  for (size_t I = 0; I < F.Params.size(); ++I) {
    if (I)
      OS << ", ";
    OS << F.Params[I];
  }
  OS << ")\n" << formatStmt(*F.Body);
  return OS.str();
}

uint32_t pst::countStatements(const Stmt &S) {
  uint32_t N = S.Kind == StmtKind::Block ? 0 : 1;
  auto Add = [&](const StmtPtr &P) {
    if (P)
      N += countStatements(*P);
  };
  for (const auto &C : S.Body)
    N += countStatements(*C);
  Add(S.Then);
  Add(S.Else);
  Add(S.Init);
  Add(S.Step);
  for (const auto &Arm : S.Arms)
    for (const auto &C : Arm.Body)
      N += countStatements(*C);
  return N;
}
