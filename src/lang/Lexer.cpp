//===- Lexer.cpp - MiniLang lexer --------------------------------------------===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace pst;

const char *pst::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::KwFunc:
    return "'func'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwSwitch:
    return "'switch'";
  case TokKind::KwCase:
    return "'case'";
  case TokKind::KwDefault:
    return "'default'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwGoto:
    return "'goto'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Not:
    return "'!'";
  case TokKind::Unknown:
    return "unknown character";
  }
  return "?";
}

std::vector<Token> pst::lex(const std::string &Source) {
  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"func", TokKind::KwFunc},       {"var", TokKind::KwVar},
      {"if", TokKind::KwIf},           {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},     {"do", TokKind::KwDo},
      {"for", TokKind::KwFor},         {"switch", TokKind::KwSwitch},
      {"case", TokKind::KwCase},       {"default", TokKind::KwDefault},
      {"break", TokKind::KwBreak},     {"continue", TokKind::KwContinue},
      {"return", TokKind::KwReturn},   {"goto", TokKind::KwGoto},
  };

  std::vector<Token> Toks;
  uint32_t Line = 1, Col = 1;
  size_t I = 0, N = Source.size();

  auto Peek = [&](size_t Off = 0) -> char {
    return I + Off < N ? Source[I + Off] : '\0';
  };
  auto Advance = [&]() {
    if (Source[I] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++I;
  };
  auto Emit = [&](TokKind K, std::string Text, uint32_t L, uint32_t C,
                  int64_t V = 0) {
    Toks.push_back(Token{K, std::move(Text), V, L, C});
  };

  while (I < N) {
    char C = Peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      Advance();
      continue;
    }
    if (C == '#') { // Line comment.
      while (I < N && Peek() != '\n')
        Advance();
      continue;
    }
    uint32_t TL = Line, TC = Col;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Word;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                       Peek() == '_')) {
        Word += Peek();
        Advance();
      }
      auto It = Keywords.find(Word);
      Emit(It != Keywords.end() ? It->second : TokKind::Ident, Word, TL, TC);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Digits;
      while (I < N && std::isdigit(static_cast<unsigned char>(Peek()))) {
        Digits += Peek();
        Advance();
      }
      Emit(TokKind::Number, Digits, TL, TC, std::stoll(Digits));
      continue;
    }
    auto Two = [&](char Next, TokKind Pair, TokKind Single) {
      Advance();
      if (Peek() == Next) {
        Advance();
        return Pair;
      }
      return Single;
    };
    TokKind K;
    std::string Text(1, C);
    switch (C) {
    case '(':
      K = TokKind::LParen;
      Advance();
      break;
    case ')':
      K = TokKind::RParen;
      Advance();
      break;
    case '{':
      K = TokKind::LBrace;
      Advance();
      break;
    case '}':
      K = TokKind::RBrace;
      Advance();
      break;
    case ',':
      K = TokKind::Comma;
      Advance();
      break;
    case ';':
      K = TokKind::Semi;
      Advance();
      break;
    case ':':
      K = TokKind::Colon;
      Advance();
      break;
    case '+':
      K = TokKind::Plus;
      Advance();
      break;
    case '-':
      K = TokKind::Minus;
      Advance();
      break;
    case '*':
      K = TokKind::Star;
      Advance();
      break;
    case '/':
      K = TokKind::Slash;
      Advance();
      break;
    case '%':
      K = TokKind::Percent;
      Advance();
      break;
    case '=':
      K = Two('=', TokKind::EqEq, TokKind::Assign);
      break;
    case '!':
      K = Two('=', TokKind::NotEq, TokKind::Not);
      break;
    case '<':
      K = Two('=', TokKind::LessEq, TokKind::Less);
      break;
    case '>':
      K = Two('=', TokKind::GreaterEq, TokKind::Greater);
      break;
    case '&':
      K = Two('&', TokKind::AndAnd, TokKind::Unknown);
      break;
    case '|':
      K = Two('|', TokKind::OrOr, TokKind::Unknown);
      break;
    default:
      K = TokKind::Unknown;
      Advance();
      break;
    }
    Emit(K, Text, TL, TC);
  }
  Emit(TokKind::Eof, "", Line, Col);
  return Toks;
}
