//===- Lower.cpp - AST to block-level CFG --------------------------------------===//
//
// Part of the PST library (see Lexer.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/lang/Lower.h"

#include "pst/graph/CfgAlgorithms.h"
#include "pst/lang/Ast.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

using namespace pst;

namespace {

/// Builder state while walking one function's AST.
class Lowering {
public:
  Lowering(const Function &F, std::vector<Diagnostic> *Diags)
      : F(F), Diags(Diags) {}

  std::optional<LoweredFunction> run();

private:
  // -- Diagnostics ---------------------------------------------------------
  void error(uint32_t Line, std::string Msg) {
    if (Diags)
      Diags->push_back(Diagnostic{Line, 0, std::move(Msg)});
    Failed = true;
  }

  // -- Variables -----------------------------------------------------------
  VarId declare(const std::string &Name, uint32_t Line) {
    auto [It, Inserted] = Vars.try_emplace(Name, VarId(VarNames.size()));
    if (!Inserted) {
      error(Line, "redeclaration of variable '" + Name + "'");
      return It->second;
    }
    VarNames.push_back(Name);
    return It->second;
  }

  VarId lookup(const std::string &Name, uint32_t Line) {
    auto It = Vars.find(Name);
    if (It == Vars.end()) {
      error(Line, "use of undeclared variable '" + Name + "'");
      return InvalidVar;
    }
    return It->second;
  }

  std::vector<VarId> usesOf(const Expr &E) {
    std::vector<std::string> Names;
    collectUses(E, Names);
    std::vector<VarId> Ids;
    for (const std::string &N : Names) {
      VarId V = lookup(N, E.Line);
      if (V != InvalidVar)
        Ids.push_back(V);
    }
    return Ids;
  }

  // -- Blocks --------------------------------------------------------------
  NodeId newBlock(const std::string &Hint) {
    NodeId N = Graph.addNode(Hint + std::to_string(Graph.numNodes()));
    Code.emplace_back();
    return N;
  }

  void emit(Instruction I) {
    if (Cur != InvalidNode)
      Code[Cur].push_back(std::move(I));
  }

  /// Builds an instruction, attaching an evaluable clone of \p Src for the
  /// interpreters.
  Instruction makeInstr(Instruction::Kind K, VarId Def,
                        std::vector<VarId> Uses, std::string Text,
                        const Expr *Src) {
    Instruction I;
    I.K = K;
    I.Def = Def;
    I.Uses = std::move(Uses);
    I.Text = std::move(Text);
    if (Src)
      I.Rhs = std::shared_ptr<const Expr>(cloneExpr(*Src).release());
    return I;
  }

  /// Ends the current block with an edge to \p To (if a block is open).
  void branchTo(NodeId To) {
    if (Cur != InvalidNode)
      Graph.addEdge(Cur, To);
    Cur = InvalidNode;
  }

  /// Opens \p B as the current block.
  void startBlock(NodeId B) { Cur = B; }

  /// Statements that branch out of the current block need one to exist;
  /// after a return/goto/break there is none, so open a dead block (it is
  /// pruned later unless a label makes it reachable).
  void ensureBlock() {
    if (Cur == InvalidNode)
      startBlock(newBlock("dead"));
  }

  NodeId labelBlock(const std::string &Name) {
    auto [It, Inserted] = Labels.try_emplace(Name, InvalidNode);
    if (Inserted)
      It->second = newBlock("L_" + Name + "_");
    return It->second;
  }

  // -- Statement lowering ---------------------------------------------------
  void lowerStmt(const Stmt &S);
  void lowerBody(const Stmt &S) { lowerStmt(S); }

  const Function &F;
  std::vector<Diagnostic> *Diags;
  bool Failed = false;

  Cfg Graph;
  std::vector<std::vector<Instruction>> Code;
  NodeId Cur = InvalidNode;
  NodeId Exit = InvalidNode;

  std::map<std::string, VarId> Vars;
  std::vector<std::string> VarNames;
  std::map<std::string, NodeId> Labels;
  std::set<std::string> DefinedLabels;
  std::vector<std::string> UsedLabels; // For unknown-label diagnostics.
  std::vector<uint32_t> UsedLabelLines;

  struct LoopCtx {
    NodeId ContinueTarget;
    NodeId BreakTarget;
  };
  std::vector<LoopCtx> LoopStack;
};

void Lowering::lowerStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block:
    for (const auto &C : S.Body)
      lowerStmt(*C);
    return;

  case StmtKind::VarDecl: {
    VarId V = declare(S.Name, S.Line);
    if (S.Value) {
      emit(makeInstr(Instruction::Kind::Assign, V, usesOf(*S.Value),
                     S.Name + " = " + formatExpr(*S.Value),
                     S.Value.get()));
    }
    return;
  }

  case StmtKind::Assign: {
    VarId V = lookup(S.Name, S.Line);
    emit(makeInstr(Instruction::Kind::Assign, V, usesOf(*S.Value),
                   S.Name + " = " + formatExpr(*S.Value), S.Value.get()));
    return;
  }

  case StmtKind::ExprStmt:
    emit(makeInstr(Instruction::Kind::Call, InvalidVar, usesOf(*S.Value),
                   formatExpr(*S.Value), S.Value.get()));
    return;

  case StmtKind::If: {
    ensureBlock();
    emit(makeInstr(Instruction::Kind::CondBranch, InvalidVar,
                   usesOf(*S.Value), "if " + formatExpr(*S.Value),
                   S.Value.get()));
    NodeId CondBlock = Cur;
    NodeId Join = newBlock("join");
    NodeId ThenB = newBlock("then");
    Graph.addEdge(CondBlock, ThenB);
    startBlock(ThenB);
    lowerBody(*S.Then);
    branchTo(Join);
    if (S.Else) {
      NodeId ElseB = newBlock("else");
      Graph.addEdge(CondBlock, ElseB);
      startBlock(ElseB);
      lowerBody(*S.Else);
      branchTo(Join);
    } else {
      Graph.addEdge(CondBlock, Join);
    }
    // Keep the join a pure merge operator (the paper's block-level CFG has
    // dedicated switch/merge nodes): code after the conditional starts in
    // a fresh block, so adjacent constructs never share a block and each
    // conditional is its own SESE region.
    NodeId Cont = newBlock("b");
    Graph.addEdge(Join, Cont);
    startBlock(Cont);
    return;
  }

  case StmtKind::While: {
    NodeId Header = newBlock("while");
    branchTo(Header);
    startBlock(Header);
    emit(makeInstr(Instruction::Kind::CondBranch, InvalidVar,
                   usesOf(*S.Value), "while " + formatExpr(*S.Value),
                   S.Value.get()));
    NodeId After = newBlock("after");
    NodeId Body = newBlock("body");
    Graph.addEdge(Header, Body);
    Graph.addEdge(Header, After);
    LoopStack.push_back(LoopCtx{Header, After});
    startBlock(Body);
    lowerBody(*S.Then);
    branchTo(Header);
    LoopStack.pop_back();
    startBlock(After);
    return;
  }

  case StmtKind::DoWhile: {
    NodeId Body = newBlock("do");
    NodeId Latch = newBlock("until");
    NodeId After = newBlock("after");
    branchTo(Body);
    LoopStack.push_back(LoopCtx{Latch, After});
    startBlock(Body);
    lowerBody(*S.Then);
    branchTo(Latch);
    LoopStack.pop_back();
    startBlock(Latch);
    emit(makeInstr(Instruction::Kind::CondBranch, InvalidVar,
                   usesOf(*S.Value), "until " + formatExpr(*S.Value),
                   S.Value.get()));
    Graph.addEdge(Latch, Body);
    branchTo(After);
    // branchTo added Latch->After and closed Latch; reopen After.
    startBlock(After);
    return;
  }

  case StmtKind::For: {
    if (S.Init) {
      VarId V = lookup(S.Init->Name, S.Init->Line);
      emit(makeInstr(Instruction::Kind::Assign, V,
                     usesOf(*S.Init->Value),
                     S.Init->Name + " = " + formatExpr(*S.Init->Value),
                     S.Init->Value.get()));
    }
    NodeId Header = newBlock("for");
    branchTo(Header);
    startBlock(Header);
    if (S.Value)
      emit(makeInstr(Instruction::Kind::CondBranch, InvalidVar,
                     usesOf(*S.Value), "for " + formatExpr(*S.Value),
                     S.Value.get()));
    NodeId After = newBlock("after");
    NodeId Body = newBlock("body");
    NodeId Step = newBlock("step");
    Graph.addEdge(Header, Body);
    if (S.Value)
      Graph.addEdge(Header, After);
    LoopStack.push_back(LoopCtx{Step, After});
    startBlock(Body);
    lowerBody(*S.Then);
    branchTo(Step);
    LoopStack.pop_back();
    startBlock(Step);
    if (S.Step) {
      VarId V = lookup(S.Step->Name, S.Step->Line);
      emit(makeInstr(Instruction::Kind::Assign, V,
                     usesOf(*S.Step->Value),
                     S.Step->Name + " = " + formatExpr(*S.Step->Value),
                     S.Step->Value.get()));
    }
    branchTo(Header);
    startBlock(After);
    return;
  }

  case StmtKind::Switch: {
    ensureBlock();
    emit(makeInstr(Instruction::Kind::SwitchTerm, InvalidVar,
                   usesOf(*S.Value), "switch " + formatExpr(*S.Value),
                   S.Value.get()));
    NodeId Sel = Cur;
    size_t SelInstr = Code[Sel].size() - 1;
    NodeId Join = newBlock("endsw");
    bool HasDefault = false;
    for (const auto &Arm : S.Arms) {
      NodeId ArmB = newBlock(Arm.HasValue
                                 ? "case" + std::to_string(Arm.Value) + "_"
                                 : "default");
      HasDefault |= !Arm.HasValue;
      Code[Sel][SelInstr].Arms.push_back(
          SwitchArmSpec{!Arm.HasValue, Arm.Value});
      Graph.addEdge(Sel, ArmB);
      startBlock(ArmB);
      for (const auto &C : Arm.Body)
        lowerStmt(*C);
      branchTo(Join);
    }
    if (!HasDefault)
      Graph.addEdge(Sel, Join); // Implicit fall-past-all-arms edge.
    // As with if-joins: keep the merge pure, continue in a fresh block.
    NodeId Cont = newBlock("b");
    Graph.addEdge(Join, Cont);
    startBlock(Cont);
    return;
  }

  case StmtKind::Break:
    if (LoopStack.empty()) {
      error(S.Line, "'break' outside of a loop");
      return;
    }
    branchTo(LoopStack.back().BreakTarget);
    return;

  case StmtKind::Continue:
    if (LoopStack.empty()) {
      error(S.Line, "'continue' outside of a loop");
      return;
    }
    branchTo(LoopStack.back().ContinueTarget);
    return;

  case StmtKind::Return:
    emit(makeInstr(Instruction::Kind::Return, InvalidVar,
                   S.Value ? usesOf(*S.Value) : std::vector<VarId>{},
                   S.Value ? "return " + formatExpr(*S.Value) : "return",
                   S.Value.get()));
    branchTo(Exit);
    return;

  case StmtKind::Goto: {
    UsedLabels.push_back(S.Name);
    UsedLabelLines.push_back(S.Line);
    branchTo(labelBlock(S.Name));
    return;
  }

  case StmtKind::Label: {
    NodeId B = labelBlock(S.Name);
    if (DefinedLabels.count(S.Name)) {
      error(S.Line, "duplicate label '" + S.Name + "'");
      return;
    }
    DefinedLabels.insert(S.Name);
    branchTo(B); // Fall through into the label.
    startBlock(B);
    return;
  }
  }
}

std::optional<LoweredFunction> Lowering::run() {
  // Pre-size the graph from the statement count: every statement opens at
  // most four blocks (an if: then/join/continuation plus an optional else)
  // and five edges, and most open none, so 2x + slack covers real bodies
  // without over-committing memory on small ones.
  uint32_t Stmts = countStatements(*F.Body);
  Graph.reserveNodes(2 * Stmts + 8);
  Graph.reserveEdges(2 * Stmts + 8);
  Code.reserve(2 * Stmts + 8);

  NodeId Entry = Graph.addNode("entry");
  Code.emplace_back();
  Exit = newBlock("exit");
  Graph.setEntry(Entry);
  Graph.setExit(Exit);

  startBlock(Entry);
  for (const std::string &P : F.Params) {
    VarId V = declare(P, F.Line);
    emit(makeInstr(Instruction::Kind::Param, V, {}, "param " + P,
                   nullptr));
  }
  // Give the body its own first block so entry stays clean.
  NodeId First = newBlock("b");
  branchTo(First);
  startBlock(First);

  lowerStmt(*F.Body);
  branchTo(Exit); // Implicit return at the end.

  // Unknown labels.
  for (size_t I = 0; I < UsedLabels.size(); ++I)
    if (!DefinedLabels.count(UsedLabels[I]))
      error(UsedLabelLines[I], "goto to unknown label '" + UsedLabels[I] +
                                   "'");
  if (Failed)
    return std::nullopt;

  // -- Cleanup: prune unreachable blocks; tie off exit-less cycles. --------
  // First make every entry-reachable node reach exit (while(1) bodies).
  while (true) {
    std::vector<bool> FromEntry = reachableFrom(Graph, Entry);
    std::vector<bool> ToExit = reachesTo(Graph, Exit);
    NodeId Bad = InvalidNode;
    for (NodeId N = 0; N < Graph.numNodes() && Bad == InvalidNode; ++N)
      if (FromEntry[N] && !ToExit[N])
        Bad = N;
    if (Bad == InvalidNode)
      break;
    Graph.addEdge(Bad, Exit); // Synthetic "infinite loop" escape edge.
  }

  // Then drop unreachable nodes by rebuilding a compact graph (sized
  // exactly: survivor counts are known before the copy).
  std::vector<bool> Keep = reachableFrom(Graph, Entry);
  Cfg Compact;
  size_t KeptNodes =
      static_cast<size_t>(std::count(Keep.begin(), Keep.end(), true));
  uint32_t KeptEdges = 0;
  for (EdgeId E = 0; E < Graph.numEdges(); ++E)
    KeptEdges += Keep[Graph.source(E)] && Keep[Graph.target(E)];
  Compact.reserveNodes(KeptNodes);
  Compact.reserveEdges(KeptEdges);
  std::vector<NodeId> NewId(Graph.numNodes(), InvalidNode);
  std::vector<std::vector<Instruction>> NewCode;
  NewCode.reserve(KeptNodes);
  for (NodeId N = 0; N < Graph.numNodes(); ++N) {
    if (!Keep[N])
      continue;
    NewId[N] = Compact.addNode(Graph.node(N).Label);
    NewCode.push_back(std::move(Code[N]));
  }
  for (EdgeId E = 0; E < Graph.numEdges(); ++E) {
    NodeId S = Graph.source(E), D = Graph.target(E);
    if (Keep[S] && Keep[D])
      Compact.addEdge(NewId[S], NewId[D]);
  }
  Compact.setEntry(NewId[Entry]);
  Compact.setExit(NewId[Exit]);

  LoweredFunction Out;
  Out.Name = F.Name;
  Out.Graph = std::move(Compact);
  Out.Code = std::move(NewCode);
  Out.VarNames = std::move(VarNames);
  Out.NumStatements = countStatements(*F.Body);
  return Out;
}

} // namespace

std::vector<NodeId> LoweredFunction::defBlocks(VarId V) const {
  std::vector<NodeId> Out;
  for (NodeId N = 0; N < Graph.numNodes(); ++N)
    for (const Instruction &I : Code[N])
      if (I.Def == V) {
        Out.push_back(N);
        break;
      }
  return Out;
}

std::vector<NodeId> LoweredFunction::useBlocks(VarId V) const {
  std::vector<NodeId> Out;
  for (NodeId N = 0; N < Graph.numNodes(); ++N)
    for (const Instruction &I : Code[N])
      if (std::find(I.Uses.begin(), I.Uses.end(), V) != I.Uses.end()) {
        Out.push_back(N);
        break;
      }
  return Out;
}

std::optional<LoweredFunction>
pst::lowerFunction(const Function &F, std::vector<Diagnostic> *Diags) {
  return Lowering(F, Diags).run();
}

LoweredFunction pst::expandToStatementLevel(const LoweredFunction &F,
                                            std::vector<NodeId> *FirstOf) {
  LoweredFunction Out;
  Out.Name = F.Name;
  Out.VarNames = F.VarNames;
  Out.NumStatements = F.NumStatements;

  const Cfg &G = F.Graph;
  size_t TotalBlocks = 0;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    TotalBlocks += std::max<size_t>(1, F.Code[N].size());
  Out.Graph.reserveNodes(TotalBlocks);
  Out.Graph.reserveEdges(TotalBlocks - G.numNodes() + G.numEdges());
  Out.Code.reserve(TotalBlocks);
  std::vector<NodeId> First(G.numNodes()), Last(G.numNodes());
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    size_t K = std::max<size_t>(1, F.Code[N].size());
    First[N] = Out.Graph.addNode(G.node(N).Label);
    Out.Code.emplace_back();
    if (!F.Code[N].empty())
      Out.Code.back().push_back(F.Code[N][0]);
    NodeId Prev = First[N];
    for (size_t I = 1; I < K; ++I) {
      NodeId B = Out.Graph.addNode(G.node(N).Label + "." +
                                   std::to_string(I));
      Out.Code.emplace_back();
      Out.Code.back().push_back(F.Code[N][I]);
      Out.Graph.addEdge(Prev, B);
      Prev = B;
    }
    Last[N] = Prev;
  }
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    Out.Graph.addEdge(Last[G.source(E)], First[G.target(E)]);
  Out.Graph.setEntry(First[G.entry()]);
  Out.Graph.setExit(Last[G.exit()]);
  if (FirstOf)
    *FirstOf = std::move(First);
  return Out;
}

std::optional<std::vector<LoweredFunction>>
pst::lowerProgram(const Program &P, std::vector<Diagnostic> *Diags) {
  std::vector<LoweredFunction> Out;
  for (const Function &F : P.Functions) {
    auto L = lowerFunction(F, Diags);
    if (!L)
      return std::nullopt;
    Out.push_back(std::move(*L));
  }
  return Out;
}

std::optional<std::vector<LoweredFunction>>
pst::compile(const std::string &Source, std::vector<Diagnostic> *Diags) {
  auto P = parseProgram(Source, Diags);
  if (!P)
    return std::nullopt;
  return lowerProgram(*P, Diags);
}

std::string pst::formatLowered(const LoweredFunction &F) {
  std::ostringstream OS;
  OS << "function " << F.Name << " (" << F.Graph.numNodes() << " blocks, "
     << F.numVars() << " vars)\n";
  for (NodeId N = 0; N < F.Graph.numNodes(); ++N) {
    OS << "  " << F.Graph.nodeName(N);
    if (N == F.Graph.entry())
      OS << " [entry]";
    if (N == F.Graph.exit())
      OS << " [exit]";
    OS << ":\n";
    for (const Instruction &I : F.Code[N])
      OS << "    " << I.Text << "\n";
    OS << "    -> ";
    bool FirstSucc = true;
    for (EdgeId E : F.Graph.succEdges(N)) {
      if (!FirstSucc)
        OS << ", ";
      FirstSucc = false;
      OS << F.Graph.nodeName(F.Graph.target(E));
    }
    OS << "\n";
  }
  return OS.str();
}
