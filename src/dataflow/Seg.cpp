//===- Seg.cpp - Sparse evaluation graphs -----------------------------------===//
//
// Part of the PST library (see Dataflow.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/dataflow/Seg.h"

#include "pst/graph/CfgAlgorithms.h"
#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <cassert>

using namespace pst;

namespace {

template <class GraphT>
Seg buildSegImpl(const GraphT &G, const DomTree &DT,
                 const DominanceFrontiers &DF, const BitVectorProblem &P) {
  PST_SPAN("dataflow.seg_build");
  (void)DT; // The tree is only needed to build DF; kept for symmetry.
  uint32_t N = G.numNodes();

  // Interesting nodes: entry plus non-identity transfer functions.
  std::vector<NodeId> Interesting{G.entry()};
  for (NodeId V = 0; V < N; ++V)
    if (V != G.entry() && !P.isIdentity(V))
      Interesting.push_back(V);

  // SEG membership: interesting nodes plus their iterated dominance
  // frontier (where sparse values must meet).
  std::vector<bool> InSeg(N, false);
  for (NodeId V : Interesting)
    InSeg[V] = true;
  for (NodeId M : DF.iterated(Interesting))
    InSeg[M] = true;

  Seg S;
  S.NodeIndex.assign(N, UINT32_MAX);
  auto Add = [&](NodeId V) {
    S.NodeIndex[V] = static_cast<uint32_t>(S.Nodes.size());
    S.Nodes.push_back(V);
  };
  Add(G.entry());
  for (NodeId V = 0; V < N; ++V)
    if (InSeg[V] && V != G.entry())
      Add(V);
  S.Preds.resize(S.Nodes.size());

  // Governing SEG node per CFG node, in reverse postorder: a SEG member
  // governs itself; any other node inherits from a predecessor (all of a
  // non-member's predecessors agree, else it would be in the IDF and thus
  // a member). SEG edges connect governors of predecessors to members.
  S.GovernedBy.assign(N, UINT32_MAX);
  S.GovernedBy[G.entry()] = 0;
  std::vector<std::pair<uint32_t, uint32_t>> RawEdges;
  for (NodeId V : reversePostOrder(G)) {
    if (V == G.entry())
      continue;
    if (InSeg[V]) {
      uint32_t Me = S.NodeIndex[V];
      for (EdgeId E : G.predEdges(V)) {
        uint32_t From = S.GovernedBy[G.source(E)];
        if (From != UINT32_MAX)
          RawEdges.emplace_back(From, Me);
      }
      S.GovernedBy[V] = Me;
      continue;
    }
    for (EdgeId E : G.predEdges(V)) {
      uint32_t From = S.GovernedBy[G.source(E)];
      if (From != UINT32_MAX) {
        S.GovernedBy[V] = From;
        break;
      }
    }
  }
  // Backedge sources are visited after their targets in RPO; run a second
  // pass so SEG edges from them are not missed (governors are final after
  // one RPO pass for reducible flow; a fixpoint loop covers irreducible
  // graphs).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId V : reversePostOrder(G)) {
      if (InSeg[V] || V == G.entry())
        continue;
      for (EdgeId E : G.predEdges(V)) {
        uint32_t From = S.GovernedBy[G.source(E)];
        if (From != UINT32_MAX && S.GovernedBy[V] == UINT32_MAX) {
          S.GovernedBy[V] = From;
          Changed = true;
        }
      }
    }
  }
  // Collect edges into SEG members now that all governors are known.
  RawEdges.clear();
  for (NodeId V : S.Nodes) {
    if (V == G.entry())
      continue;
    uint32_t Me = S.NodeIndex[V];
    for (EdgeId E : G.predEdges(V)) {
      uint32_t From = S.GovernedBy[G.source(E)];
      assert(From != UINT32_MAX && "predecessor has no governing value");
      RawEdges.emplace_back(From, Me);
    }
  }
  std::sort(RawEdges.begin(), RawEdges.end());
  RawEdges.erase(std::unique(RawEdges.begin(), RawEdges.end()),
                 RawEdges.end());
  for (auto [From, To] : RawEdges) {
    uint32_t Id = static_cast<uint32_t>(S.Edges.size());
    S.Edges.push_back(Seg::Edge{From, To});
    S.Preds[To].push_back(Id);
  }
  PST_COUNTER("dataflow.seg_builds", 1);
  PST_COUNTER("dataflow.seg_nodes", S.Nodes.size());
  PST_COUNTER("dataflow.seg_edges", S.Edges.size());
  return S;
}

template <class GraphT>
DataflowSolution solveOnSegImpl(const GraphT &G, const DomTree &DT,
                                const DominanceFrontiers &DF,
                                const BitVectorProblem &P, Seg *OutSeg) {
  PST_SPAN("dataflow.seg_solve");
  Seg S = buildSegImpl(G, DT, DF, P);
  uint32_t M = S.numNodes();
  std::vector<BitVector> In(M, P.top()), Out(M, P.top());
  In[0] = P.Boundary;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t V = 0; V < M; ++V) {
      if (V != 0) {
        BitVector X = P.top();
        bool First = true;
        for (uint32_t EI : S.Preds[V]) {
          const BitVector &Y = Out[S.Edges[EI].Src];
          if (First) {
            X = Y;
            First = false;
          } else if (P.Meet == BitVectorProblem::MeetKind::Union) {
            X.unionWith(Y);
          } else {
            X.intersectWith(Y);
          }
        }
        In[V] = std::move(X);
      }
      BitVector O = P.apply(S.Nodes[V], In[V]);
      if (O != Out[V]) {
        Out[V] = std::move(O);
        Changed = true;
      }
    }
  }

  // Projection: a SEG member keeps its own values; anything else has the
  // IN of its governing SEG node's OUT and (being transparent) the same
  // OUT.
  DataflowSolution R;
  R.In.assign(G.numNodes(), P.top());
  R.Out.assign(G.numNodes(), P.top());
  for (NodeId V = 0; V < G.numNodes(); ++V) {
    uint32_t Idx = S.NodeIndex[V];
    if (Idx != UINT32_MAX) {
      R.In[V] = In[Idx];
      R.Out[V] = Out[Idx];
    } else {
      uint32_t Gov = S.GovernedBy[V];
      assert(Gov != UINT32_MAX && "CFG node without governing SEG value");
      R.In[V] = Out[Gov];
      R.Out[V] = Out[Gov]; // Identity transfer by construction.
    }
  }
  if (OutSeg)
    *OutSeg = std::move(S);
  return R;
}

} // namespace

Seg pst::buildSeg(const Cfg &G, const DomTree &DT,
                  const DominanceFrontiers &DF, const BitVectorProblem &P) {
  return buildSegImpl(G, DT, DF, P);
}

Seg pst::buildSeg(const CfgView &V, const DomTree &DT,
                  const DominanceFrontiers &DF, const BitVectorProblem &P) {
  return buildSegImpl(V, DT, DF, P);
}

DataflowSolution pst::solveOnSeg(const Cfg &G, const DomTree &DT,
                                 const DominanceFrontiers &DF,
                                 const BitVectorProblem &P, Seg *OutSeg) {
  return solveOnSegImpl(G, DT, DF, P, OutSeg);
}

DataflowSolution pst::solveOnSeg(const CfgView &V, const DomTree &DT,
                                 const DominanceFrontiers &DF,
                                 const BitVectorProblem &P, Seg *OutSeg) {
  return solveOnSegImpl(V, DT, DF, P, OutSeg);
}
