//===- Problems.cpp - Classic bitvector problems --------------------------------===//
//
// Part of the PST library (see Dataflow.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/dataflow/Problems.h"

#include <algorithm>
#include <map>

using namespace pst;

BitVectorProblem pst::makeReachingDefs(const LoweredFunction &F,
                                       std::vector<VarId> *DefVarOut) {
  const Cfg &G = F.Graph;
  // Enumerate definition bits.
  std::vector<VarId> DefVar;
  std::vector<std::vector<uint32_t>> BitsOfVar(F.numVars());
  std::vector<std::vector<uint32_t>> BlockDefBits(G.numNodes());
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    for (const Instruction &I : F.Code[N]) {
      if (I.Def == InvalidVar)
        continue;
      uint32_t Bit = static_cast<uint32_t>(DefVar.size());
      DefVar.push_back(I.Def);
      BitsOfVar[I.Def].push_back(Bit);
      BlockDefBits[N].push_back(Bit);
    }
  }

  BitVectorProblem P;
  P.NumBits = static_cast<uint32_t>(DefVar.size());
  P.Meet = BitVectorProblem::MeetKind::Union;
  P.Boundary = BitVector(P.NumBits);
  P.Transfer.assign(G.numNodes(), GenKill{BitVector(P.NumBits),
                                          BitVector(P.NumBits)});

  for (NodeId N = 0; N < G.numNodes(); ++N) {
    GenKill &T = P.Transfer[N];
    for (uint32_t Bit : BlockDefBits[N]) {
      VarId V = DefVar[Bit];
      for (uint32_t Other : BitsOfVar[V]) {
        T.Gen.reset(Other);
        T.Kill.set(Other);
      }
      T.Gen.set(Bit);
    }
    T.Kill.subtract(T.Gen);
  }
  if (DefVarOut)
    *DefVarOut = std::move(DefVar);
  return P;
}

BitVectorProblem pst::makeLiveVariables(const LoweredFunction &F) {
  const Cfg &G = F.Graph;
  BitVectorProblem P;
  P.NumBits = F.numVars();
  P.Meet = BitVectorProblem::MeetKind::Union;
  P.Boundary = BitVector(P.NumBits); // Nothing live past the exit.
  P.Transfer.assign(G.numNodes(), GenKill{BitVector(P.NumBits),
                                          BitVector(P.NumBits)});
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    BitVector Use(P.NumBits), Def(P.NumBits);
    for (const Instruction &I : F.Code[N]) {
      for (VarId U : I.Uses)
        if (!Def.test(U))
          Use.set(U);
      if (I.Def != InvalidVar)
        Def.set(I.Def);
    }
    P.Transfer[N].Gen = std::move(Use);
    P.Transfer[N].Kill = std::move(Def);
    P.Transfer[N].Kill.subtract(P.Transfer[N].Gen);
  }
  return P;
}

/// Extracts the printed RHS of an assignment ("x = a + b" -> "a + b").
static std::string rhsKeyOf(const Instruction &I) {
  if ((I.K != Instruction::Kind::Assign) || I.Uses.empty())
    return "";
  size_t Pos = I.Text.find(" = ");
  if (Pos == std::string::npos)
    return "";
  return I.Text.substr(Pos + 3);
}

std::vector<std::string> pst::expressionKeys(const LoweredFunction &F) {
  std::vector<std::string> Keys;
  for (NodeId N = 0; N < F.Graph.numNodes(); ++N)
    for (const Instruction &I : F.Code[N]) {
      std::string K = rhsKeyOf(I);
      if (!K.empty())
        Keys.push_back(std::move(K));
    }
  std::sort(Keys.begin(), Keys.end());
  Keys.erase(std::unique(Keys.begin(), Keys.end()), Keys.end());
  return Keys;
}

namespace {

/// Shared construction for (multi- or single-bit) available expressions.
BitVectorProblem makeAvailability(const LoweredFunction &F,
                                  const std::vector<std::string> &Keys) {
  const Cfg &G = F.Graph;
  std::map<std::string, uint32_t> BitOf;
  for (uint32_t I = 0; I < Keys.size(); ++I)
    BitOf[Keys[I]] = I;

  // Which expression bits use each variable (for kill sets).
  std::vector<std::vector<uint32_t>> ExprsUsing(F.numVars());
  {
    std::vector<bool> Seen(Keys.size(), false);
    for (NodeId N = 0; N < G.numNodes(); ++N)
      for (const Instruction &I : F.Code[N]) {
        auto It = BitOf.find(rhsKeyOf(I));
        if (It == BitOf.end() || Seen[It->second])
          continue;
        Seen[It->second] = true;
        for (VarId U : I.Uses)
          ExprsUsing[U].push_back(It->second);
      }
  }

  BitVectorProblem P;
  P.NumBits = static_cast<uint32_t>(Keys.size());
  P.Meet = BitVectorProblem::MeetKind::Intersect;
  P.Boundary = BitVector(P.NumBits); // Nothing available on entry.
  P.Transfer.assign(G.numNodes(), GenKill{BitVector(P.NumBits),
                                          BitVector(P.NumBits)});
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    GenKill &T = P.Transfer[N];
    for (const Instruction &I : F.Code[N]) {
      // The RHS is computed first...
      auto It = BitOf.find(rhsKeyOf(I));
      if (It != BitOf.end()) {
        T.Gen.set(It->second);
        T.Kill.reset(It->second);
      }
      // ...then the definition kills everything built from the target.
      if (I.Def != InvalidVar)
        for (uint32_t Bit : ExprsUsing[I.Def]) {
          T.Gen.reset(Bit);
          T.Kill.set(Bit);
        }
    }
  }
  return P;
}

} // namespace

BitVectorProblem
pst::makeAvailableExpressions(const LoweredFunction &F,
                              std::vector<std::string> *KeysOut) {
  std::vector<std::string> Keys = expressionKeys(F);
  BitVectorProblem P = makeAvailability(F, Keys);
  if (KeysOut)
    *KeysOut = std::move(Keys);
  return P;
}

BitVectorProblem
pst::makeSingleExprAvailability(const LoweredFunction &F,
                                const std::string &Key) {
  return makeAvailability(F, {Key});
}
