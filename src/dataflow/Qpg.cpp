//===- Qpg.cpp - Quick propagation graphs ---------------------------------------===//
//
// Part of the PST library (see Dataflow.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/dataflow/Qpg.h"

#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <cassert>

using namespace pst;

namespace {

/// Marks every region whose subtree contains a node with a non-identity
/// transfer function (plus all ancestors). Unmarked regions are
/// transparent and bypassable.
std::vector<bool> markOpaqueRegions(uint32_t NumNodes,
                                    const ProgramStructureTree &T,
                                    const BitVectorProblem &P) {
  std::vector<bool> Marked(T.numRegions(), false);
  Marked[T.root()] = true;
  for (NodeId N = 0; N < NumNodes; ++N) {
    if (P.isIdentity(N))
      continue;
    for (RegionId R = T.regionOfNode(N);
         R != InvalidRegion && !Marked[R]; R = T.region(R).Parent)
      Marked[R] = true;
  }
  return Marked;
}

template <class GraphT>
Qpg buildQpgImpl(const GraphT &G, const ProgramStructureTree &T,
                 const BitVectorProblem &P) {
  PST_SPAN("dataflow.qpg_build");
  std::vector<bool> Opaque = markOpaqueRegions(G.numNodes(), T, P);

  Qpg Q;
  Q.NodeIndex.assign(G.numNodes(), UINT32_MAX);
  auto Keep = [&](NodeId N) {
    if (Q.NodeIndex[N] != UINT32_MAX)
      return Q.NodeIndex[N];
    Q.NodeIndex[N] = static_cast<uint32_t>(Q.Nodes.size());
    Q.Nodes.push_back(N);
    Q.Succ.emplace_back();
    Q.Pred.emplace_back();
    return Q.NodeIndex[N];
  };

  std::vector<NodeId> Work;
  Keep(G.entry());
  Work.push_back(G.entry());
  while (!Work.empty()) {
    NodeId U = Work.back();
    Work.pop_back();
    uint32_t QU = Q.NodeIndex[U];
    for (EdgeId E1 : G.succEdges(U)) {
      // Follow the edge through any chain of transparent regions; each hop
      // lands on the region's exit edge (and possibly enters the next
      // bypassable region).
      EdgeId E = E1;
      while (true) {
        RegionId R = T.regionEnteredBy(E);
        if (R == InvalidRegion || Opaque[R])
          break;
        E = T.region(R).ExitEdge;
      }
      NodeId V = G.target(E);
      bool New = Q.NodeIndex[V] == UINT32_MAX;
      uint32_t QV = Keep(V);
      uint32_t EdgeIdx = static_cast<uint32_t>(Q.Edges.size());
      Q.Edges.push_back(Qpg::Edge{QU, QV, E1, E});
      Q.Succ[QU].push_back(EdgeIdx);
      Q.Pred[QV].push_back(EdgeIdx);
      if (New)
        Work.push_back(V);
    }
  }
  PST_COUNTER("dataflow.qpg_builds", 1);
  PST_COUNTER("dataflow.qpg_nodes", Q.Nodes.size());
  PST_COUNTER("dataflow.qpg_edges", Q.Edges.size());
  return Q;
}

template <class GraphT>
EdgeSolution solveOnQpgImpl(const GraphT &G, const ProgramStructureTree &T,
                            const BitVectorProblem &P, Qpg *OutQpg) {
  PST_SPAN("dataflow.qpg_solve");
  Qpg Q = buildQpgImpl(G, T, P);

  // Iterate on the QPG: In[q] = meet of Out over incoming edges' sources;
  // the value carried by a QPG edge is Out[source].
  uint32_t N = Q.numNodes();
  std::vector<BitVector> In(N, P.top()), Out(N, P.top());
  In[0] = P.Boundary; // Nodes[0] is the entry.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t V = 0; V < N; ++V) {
      if (V != 0) {
        BitVector X = P.top();
        bool First = true;
        for (uint32_t EI : Q.Pred[V]) {
          const BitVector &Y = Out[Q.Edges[EI].Src];
          if (First) {
            X = Y;
            First = false;
          } else if (P.Meet == BitVectorProblem::MeetKind::Union) {
            X.unionWith(Y);
          } else {
            X.intersectWith(Y);
          }
        }
        In[V] = std::move(X);
      }
      BitVector O = P.apply(Q.Nodes[V], In[V]);
      if (O != Out[V]) {
        Out[V] = std::move(O);
        Changed = true;
      }
    }
  }

  // Project back: the value on a QPG edge (Out of its CFG source) is the
  // value on every CFG edge of the transparent chain it bypasses. Edges
  // inside a transparent region inherit the value of that region's entry
  // edge; we propagate region-by-region.
  EdgeSolution S;
  S.EdgeValue.assign(G.numEdges(), P.top());
  std::vector<bool> Known(G.numEdges(), false);

  // Bucket CFG edges by their innermost region for interior fill-in.
  std::vector<std::vector<EdgeId>> RegionEdges(T.numRegions());
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    RegionEdges[T.regionOfEdge(E)].push_back(E);

  // Recursively assigns Value to every edge in R's subtree.
  auto FillRegion = [&](RegionId R, const BitVector &Value) {
    std::vector<RegionId> Stack{R};
    while (!Stack.empty()) {
      RegionId Cur = Stack.back();
      Stack.pop_back();
      for (EdgeId E : RegionEdges[Cur]) {
        S.EdgeValue[E] = Value;
        Known[E] = true;
      }
      for (RegionId C : T.children(Cur))
        Stack.push_back(C);
    }
  };

  std::vector<bool> Opaque = markOpaqueRegions(G.numNodes(), T, P);
  for (const Qpg::Edge &QE : Q.Edges) {
    const BitVector &Value = Out[QE.Src];
    // Walk the same transparent chain the builder walked.
    EdgeId E = QE.First;
    S.EdgeValue[E] = Value;
    Known[E] = true;
    while (true) {
      RegionId R = T.regionEnteredBy(E);
      if (R == InvalidRegion || Opaque[R])
        break;
      FillRegion(R, Value);
      E = T.region(R).ExitEdge;
      S.EdgeValue[E] = Value;
      Known[E] = true;
    }
  }
  // Every CFG edge must have been covered (kept-node out-edges are QPG
  // firsts; interior edges were filled by their bypassed region).
  assert(std::all_of(Known.begin(), Known.end(), [](bool B) { return B; }) &&
         "QPG projection missed an edge");

  if (OutQpg)
    *OutQpg = std::move(Q);
  return S;
}

} // namespace

Qpg pst::buildQpg(const Cfg &G, const ProgramStructureTree &T,
                  const BitVectorProblem &P) {
  return buildQpgImpl(G, T, P);
}

Qpg pst::buildQpg(const CfgView &V, const ProgramStructureTree &T,
                  const BitVectorProblem &P) {
  return buildQpgImpl(V, T, P);
}

EdgeSolution pst::solveOnQpg(const Cfg &G, const ProgramStructureTree &T,
                             const BitVectorProblem &P, Qpg *OutQpg) {
  return solveOnQpgImpl(G, T, P, OutQpg);
}

EdgeSolution pst::solveOnQpg(const CfgView &V, const ProgramStructureTree &T,
                             const BitVectorProblem &P, Qpg *OutQpg) {
  return solveOnQpgImpl(V, T, P, OutQpg);
}

EdgeSolution pst::edgeView(const Cfg &G, const DataflowSolution &S) {
  EdgeSolution E;
  E.EdgeValue.reserve(G.numEdges());
  for (EdgeId Ed = 0; Ed < G.numEdges(); ++Ed)
    E.EdgeValue.push_back(S.Out[G.source(Ed)]);
  return E;
}
