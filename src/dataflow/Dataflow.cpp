//===- Dataflow.cpp - Bitvector dataflow framework ------------------------------===//
//
// Part of the PST library (see Dataflow.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/dataflow/Dataflow.h"

#include "pst/core/RegionAnalysis.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <cassert>

using namespace pst;

namespace {

template <class GraphT>
DataflowSolution solveIterativeImpl(const GraphT &G,
                                    const BitVectorProblem &P) {
  PST_SPAN("dataflow.solve_iterative");
  uint32_t N = G.numNodes();
  DataflowSolution S;
  S.In.assign(N, P.top());
  S.Out.assign(N, P.top());
  S.In[G.entry()] = P.Boundary;
  S.Out[G.entry()] = P.apply(G.entry(), S.In[G.entry()]);

  std::vector<NodeId> RPO = reversePostOrder(G);
  bool Changed = true;
  uint64_t Passes = 0;
  while (Changed) {
    Changed = false;
    ++Passes;
    for (NodeId V : RPO) {
      if (V != G.entry()) {
        BitVector In = P.top();
        bool First = true;
        for (EdgeId E : G.predEdges(V)) {
          const BitVector &PredOut = S.Out[G.source(E)];
          if (First) {
            In = PredOut;
            First = false;
          } else if (P.Meet == BitVectorProblem::MeetKind::Union) {
            In.unionWith(PredOut);
          } else {
            In.intersectWith(PredOut);
          }
        }
        S.In[V] = std::move(In);
      }
      BitVector Out = P.apply(V, S.In[V]);
      if (Out != S.Out[V]) {
        S.Out[V] = std::move(Out);
        Changed = true;
      }
    }
  }
  PST_COUNTER("dataflow.iterative_solves", 1);
  PST_COUNTER("dataflow.iterative_passes", Passes);
  PST_VALUE("dataflow.passes_per_solve", Passes);
  return S;
}

} // namespace

DataflowSolution pst::solveIterative(const Cfg &G,
                                     const BitVectorProblem &P) {
  return solveIterativeImpl(G, P);
}

DataflowSolution pst::solveIterative(const CfgView &V,
                                     const BitVectorProblem &P) {
  return solveIterativeImpl(V, P);
}

BitVectorProblem pst::reverseProblem(const BitVectorProblem &P) {
  // Node ids are preserved by reverseCfg, so the transfer table is reused
  // verbatim; only the interpretation (In<->Out) flips at the caller.
  return P;
}

namespace {

/// Iteratively solves one collapsed region body given the value on the
/// region's entry edge. ChildSummary supplies gen/kill summaries for
/// collapsed children. Returns IN/OUT per quotient node.
struct BodySolution {
  std::vector<BitVector> In, Out;
};

BodySolution solveBody(const CollapsedBody &B, const BitVectorProblem &P,
                       const std::vector<GenKill> &ChildSummary,
                       const BitVector &EntryValue) {
  uint32_t N = B.numNodes();
  std::vector<std::vector<uint32_t>> PredEdges(N);
  for (uint32_t I = 0; I < B.Edges.size(); ++I)
    PredEdges[B.Edges[I].Dst].push_back(B.Edges[I].Src);

  auto ApplyQ = [&](uint32_t Q, const BitVector &In) {
    const auto &Node = B.Nodes[Q];
    BitVector Out = In;
    const GenKill &T = Node.IsRegion
                           ? ChildSummary[Node.Region]
                           : P.Transfer[Node.Node];
    Out.subtract(T.Kill);
    Out.unionWith(T.Gen);
    return Out;
  };

  BodySolution S;
  S.In.assign(N, P.top());
  S.Out.assign(N, P.top());

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Q = 0; Q < N; ++Q) {
      BitVector In = P.top();
      bool First = true;
      auto Meet = [&](const BitVector &X) {
        if (First) {
          In = X;
          First = false;
        } else if (P.Meet == BitVectorProblem::MeetKind::Union) {
          In.unionWith(X);
        } else {
          In.intersectWith(X);
        }
      };
      if (Q == B.EntryQ)
        Meet(EntryValue); // The region's entry edge contribution.
      for (uint32_t PredQ : PredEdges[Q])
        Meet(S.Out[PredQ]);
      S.In[Q] = std::move(In);
      BitVector Out = ApplyQ(Q, S.In[Q]);
      if (Out != S.Out[Q]) {
        S.Out[Q] = std::move(Out);
        Changed = true;
      }
    }
  }
  return S;
}

} // namespace

namespace {

template <class GraphT>
DataflowSolution solveEliminationImpl(const GraphT &G,
                                      const ProgramStructureTree &T,
                                      const BitVectorProblem &P) {
  PST_SPAN("dataflow.solve_elimination");
  PST_COUNTER("dataflow.elimination_solves", 1);
  uint32_t NumRegions = T.numRegions();

  // Collapsed bodies, built once per region.
  std::vector<CollapsedBody> Bodies(NumRegions);
  for (RegionId R = 0; R < NumRegions; ++R)
    Bodies[R] = collapseRegion(G, T, R);

  // Regions in bottom-up (children before parents) order: depths descend.
  std::vector<RegionId> Order(NumRegions);
  for (RegionId R = 0; R < NumRegions; ++R)
    Order[R] = R;
  std::sort(Order.begin(), Order.end(), [&](RegionId A, RegionId B) {
    return T.region(A).Depth > T.region(B).Depth;
  });

  // Phase 1 (bottom-up): summarize each region's entry->exit behaviour as
  // gen/kill, probing the body with the empty and the full set. Per bit
  // the body function is const0, const1 or identity, so two probes pin it
  // down: f(x) = f(empty) | (x & f(full)).
  std::vector<GenKill> Summary(NumRegions);
  BitVector Empty(P.NumBits, false), Full(P.NumBits, true);
  for (RegionId R : Order) {
    if (R == T.root())
      continue;
    const CollapsedBody &B = Bodies[R];
    BitVector F0 = solveBody(B, P, Summary, Empty).Out[B.ExitQ];
    BitVector F1 = solveBody(B, P, Summary, Full).Out[B.ExitQ];
    Summary[R].Gen = F0;
    // Kill = ~f(full): bits that do not survive even when everything
    // enters. (x - Kill) == (x & f(full)).
    Summary[R].Kill = Full;
    Summary[R].Kill.subtract(F1);
  }

  // Phase 2 (top-down): concrete values. A child's entry value is its
  // quotient node's IN in the parent's concrete solve (a child has exactly
  // one external incoming edge: its entry edge).
  DataflowSolution S;
  S.In.assign(G.numNodes(), P.top());
  S.Out.assign(G.numNodes(), P.top());

  std::vector<BitVector> EntryValue(NumRegions, P.top());
  EntryValue[T.root()] = P.Boundary;
  // Top-down = reverse of bottom-up order.
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    RegionId R = *It;
    const CollapsedBody &B = Bodies[R];
    BodySolution BS = solveBody(B, P, Summary, EntryValue[R]);
    for (uint32_t Q = 0; Q < B.numNodes(); ++Q) {
      const auto &Node = B.Nodes[Q];
      if (Node.IsRegion) {
        EntryValue[Node.Region] = BS.In[Q];
      } else {
        S.In[Node.Node] = BS.In[Q];
        S.Out[Node.Node] = BS.Out[Q];
      }
    }
  }
  return S;
}

} // namespace

DataflowSolution pst::solveElimination(const Cfg &G,
                                       const ProgramStructureTree &T,
                                       const BitVectorProblem &P) {
  return solveEliminationImpl(G, T, P);
}

DataflowSolution pst::solveElimination(const CfgView &V,
                                       const ProgramStructureTree &T,
                                       const BitVectorProblem &P) {
  return solveEliminationImpl(V, T, P);
}
