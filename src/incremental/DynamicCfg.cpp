//===- DynamicCfg.cpp - Editable CFG with a journal --------------------------===//
//
// Part of the PST library (see DynamicCfg.h for the contract).
//
//===----------------------------------------------------------------------===//

#include "pst/incremental/DynamicCfg.h"

#include "pst/graph/CfgAlgorithms.h"

#include <cassert>
#include <utility>

using namespace pst;

DynamicCfg::DynamicCfg(Cfg Initial) : G(std::move(Initial)) {
  assert(validateCfg(G) && "DynamicCfg requires a valid CFG");
  Dead.assign(G.numEdges(), false);
  LiveEdges = G.numEdges();
}

EdgeId DynamicCfg::addEdgeRaw(NodeId Src, NodeId Dst) {
  EdgeId E = G.addEdge(Src, Dst);
  Dead.push_back(false);
  ++LiveEdges;
  return E;
}

EdgeId DynamicCfg::insertEdge(NodeId Src, NodeId Dst) {
  assert(Src < G.numNodes() && Dst < G.numNodes() && "node out of range");
  if (Dst == G.entry() || Src == G.exit())
    return InvalidEdge; // Would violate Definition 1.
  EdgeId E = addEdgeRaw(Src, Dst);
  Journal.push_back(
      CfgEdit{CfgEdit::Kind::InsertEdge, E, Src, Dst, InvalidNode, {}});
  return E;
}

bool DynamicCfg::deleteEdge(EdgeId E) {
  assert(E < G.numEdges() && !Dead[E] && "edge not live");
  if (!validWithoutEdge(E))
    return false;
  deleteEdgeUnchecked(E);
  return true;
}

void DynamicCfg::deleteEdgeUnchecked(EdgeId E) {
  assert(E < G.numEdges() && !Dead[E] && "edge not live");
  Dead[E] = true;
  --LiveEdges;
  Journal.push_back(CfgEdit{CfgEdit::Kind::DeleteEdge, E, G.source(E),
                            G.target(E), InvalidNode, {}});
}

NodeId DynamicCfg::splitBlock(EdgeId E, std::string Label) {
  assert(E < G.numEdges() && !Dead[E] && "edge not live");
  NodeId Src = G.source(E), Dst = G.target(E);
  NodeId M = G.addNode(std::move(Label));
  Dead[E] = true;
  --LiveEdges;
  EdgeId E1 = addEdgeRaw(Src, M);
  EdgeId E2 = addEdgeRaw(M, Dst);
  Journal.push_back(
      CfgEdit{CfgEdit::Kind::SplitBlock, E, Src, Dst, M, {E1, E2}});
  return M;
}

NodeId DynamicCfg::addBlock(NodeId Src, NodeId Dst, std::string Label) {
  assert(Src < G.numNodes() && Dst < G.numNodes() && "node out of range");
  if (Dst == G.entry() || Src == G.exit())
    return InvalidNode;
  NodeId M = G.addNode(std::move(Label));
  EdgeId E1 = addEdgeRaw(Src, M);
  EdgeId E2 = addEdgeRaw(M, Dst);
  Journal.push_back(
      CfgEdit{CfgEdit::Kind::AddBlock, InvalidEdge, Src, Dst, M, {E1, E2}});
  return M;
}

bool DynamicCfg::validWithoutEdge(EdgeId Skip) const {
  uint32_t N = G.numNodes();
  // Forward sweep from entry, then backward sweep from exit, over live
  // edges minus Skip. Every node must be hit by both.
  auto Sweep = [&](NodeId Root, bool Forward) {
    std::vector<bool> Seen(N, false);
    std::vector<NodeId> Work{Root};
    Seen[Root] = true;
    uint32_t Count = 1;
    while (!Work.empty()) {
      NodeId V = Work.back();
      Work.pop_back();
      const auto &Edges = Forward ? G.succEdges(V) : G.predEdges(V);
      for (EdgeId E : Edges) {
        if (Dead[E] || E == Skip)
          continue;
        NodeId W = Forward ? G.target(E) : G.source(E);
        if (!Seen[W]) {
          Seen[W] = true;
          ++Count;
          Work.push_back(W);
        }
      }
    }
    return Count;
  };
  return Sweep(G.entry(), true) == N && Sweep(G.exit(), false) == N;
}

Cfg DynamicCfg::materialize(std::vector<EdgeId> *GlobalOfCompact,
                            std::vector<EdgeId> *CompactOfGlobal) const {
  Cfg M;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    M.addNode(G.node(N).Label);
  if (GlobalOfCompact)
    GlobalOfCompact->clear();
  if (CompactOfGlobal)
    CompactOfGlobal->assign(G.numEdges(), InvalidEdge);
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    if (Dead[E])
      continue;
    EdgeId C = M.addEdge(G.source(E), G.target(E));
    if (GlobalOfCompact)
      GlobalOfCompact->push_back(E);
    if (CompactOfGlobal)
      (*CompactOfGlobal)[E] = C;
  }
  M.setEntry(G.entry());
  M.setExit(G.exit());
  return M;
}
