//===- IncrementalPst.cpp - PST over CFG edits -------------------------------===//
//
// Part of the PST library (see IncrementalPst.h for the algorithm sketch).
//
// The load-bearing facts, all downstream of Theorem 1:
//
//  * The exterior of a canonical region D observes it only through D's
//    entry and exit edges. An edit whose endpoints both lie in D's body
//    cannot change cycle equivalence (hence regions, hence the PST) outside
//    D's subtree.
//  * On the sub-CFG <D's body + synthetic start/end>, an interior edge is
//    cycle equivalent to the synthetic boundary edges exactly when it is
//    globally cycle equivalent to D's entry edge. So the sub-build's
//    boundary class tells us whether D survives (class = {start, end}: the
//    sub-root's single child spans the body and maps to D) or dissolves
//    (interior edges joined the class: the sub-root's children form the
//    chain of regions that replaces D under its parent).
//  * Within a class, dominance order equals first-traversal order of any
//    DFS from the entry, and the extraction preserves successor order, so
//    the sub-build's region pairs land exactly on the global ones.
//
//===----------------------------------------------------------------------===//

#include "pst/incremental/IncrementalPst.h"

#include "pst/graph/CfgAlgorithms.h"
#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

using namespace pst;

IncrementalPst::IncrementalPst(DynamicCfg &DG) : DG(DG) {
  fullRebuild();
  // The initial build is the price of attaching, not of maintenance.
  Stats = IncrementalPstStats{};
}

//===----------------------------------------------------------------------===//
// Slot management and tree walks
//===----------------------------------------------------------------------===//

RegionId IncrementalPst::allocSlot() {
  RegionId R;
  if (!FreeSlots.empty()) {
    R = FreeSlots.back();
    FreeSlots.pop_back();
  } else {
    R = static_cast<RegionId>(Regions.size());
    Regions.push_back(Slot{});
  }
  Slot &S = Regions[R];
  S.Children.clear();
  S.Nodes.clear();
  S.Live = true;
  ++NumLive;
  return R;
}

void IncrementalPst::freeSubtreeSlots(RegionId R) {
  std::vector<RegionId> Work{R};
  while (!Work.empty()) {
    RegionId Cur = Work.back();
    Work.pop_back();
    Slot &S = Regions[Cur];
    assert(S.Live && "double free of region slot");
    Work.insert(Work.end(), S.Children.begin(), S.Children.end());
    S.Live = false;
    S.Children.clear();
    S.Nodes.clear();
    FreeSlots.push_back(Cur);
    --NumLive;
  }
}

RegionId IncrementalPst::lca(RegionId A, RegionId B) const {
  while (Regions[A].Depth > Regions[B].Depth)
    A = Regions[A].Parent;
  while (Regions[B].Depth > Regions[A].Depth)
    B = Regions[B].Parent;
  while (A != B) {
    A = Regions[A].Parent;
    B = Regions[B].Parent;
  }
  return A;
}

bool IncrementalPst::liveContains(RegionId Outer, RegionId Inner) const {
  while (Inner != InvalidRegion) {
    if (Inner == Outer)
      return true;
    Inner = Regions[Inner].Parent;
  }
  return false;
}

RegionId IncrementalPst::currentRegionOfNode(NodeId N) const {
  auto It = PendingNodeRegion.find(N);
  if (It != PendingNodeRegion.end())
    return It->second;
  assert(N < NodeRegion.size() && NodeRegion[N] != InvalidRegion &&
         "node unknown to the tree");
  return NodeRegion[N];
}

std::vector<RegionId> IncrementalPst::liveRegions() const {
  std::vector<RegionId> Out;
  Out.reserve(NumLive);
  for (RegionId R = 0; R < Regions.size(); ++R)
    if (Regions[R].Live)
      Out.push_back(R);
  return Out;
}

uint32_t IncrementalPst::pendingEdits() const {
  return static_cast<uint32_t>(DG.journal().size() - JournalPos);
}

//===----------------------------------------------------------------------===//
// Dirty tracking
//===----------------------------------------------------------------------===//

void IncrementalPst::markDirty(RegionId D) {
  if (RootDirty)
    return;
  if (D == root()) {
    RootDirty = true;
    DirtySet.clear();
    return;
  }
  for (RegionId X : DirtySet)
    if (liveContains(X, D))
      return; // Already covered.
  DirtySet.erase(std::remove_if(DirtySet.begin(), DirtySet.end(),
                                [&](RegionId X) {
                                  return liveContains(D, X);
                                }),
                 DirtySet.end());
  DirtySet.push_back(D);
}

RegionId IncrementalPst::dirtyScope(RegionId D) const {
  if (RootDirty || D == root())
    return root();
  for (RegionId X : DirtySet)
    if (X != D && liveContains(X, D))
      return X; // DirtySet is an antichain: at most one covers D.
  return D;
}

void IncrementalPst::ensureTablesSized() {
  NodeRegion.resize(DG.numNodes(), InvalidRegion);
  uint32_t NumE = DG.graph().numEdges();
  EdgeRegion.resize(NumE, InvalidRegion);
  EntryOf.resize(NumE, InvalidRegion);
  ExitOf.resize(NumE, InvalidRegion);
}

void IncrementalPst::absorbJournal() {
  const auto &J = DG.journal();
  for (; JournalPos < J.size(); ++JournalPos) {
    const CfgEdit &E = J[JournalPos];
    RegionId D = lca(currentRegionOfNode(E.Src), currentRegionOfNode(E.Dst));
    markDirty(D);
    ++Stats.EditsApplied;
    switch (E.K) {
    case CfgEdit::Kind::InsertEdge:
      break;
    case CfgEdit::Kind::DeleteEdge:
    case CfgEdit::Kind::SplitBlock:
      // The tombstoned edge no longer has a region; its slot must not leak
      // a stale (soon possibly freed) region id.
      ensureTablesSized();
      EdgeRegion[E.E] = EntryOf[E.E] = ExitOf[E.E] = InvalidRegion;
      break;
    case CfgEdit::Kind::AddBlock:
      break;
    }
    if (E.NewNode != InvalidNode)
      PendingNodeRegion.emplace(E.NewNode, D);
  }
  ensureTablesSized();
}

//===----------------------------------------------------------------------===//
// Edits
//===----------------------------------------------------------------------===//

EdgeId IncrementalPst::insertEdge(NodeId Src, NodeId Dst) {
  EdgeId E = DG.insertEdge(Src, Dst);
  if (E == InvalidEdge) {
    ++Stats.EditsRejected;
    return InvalidEdge;
  }
  absorbJournal();
  return E;
}

NodeId IncrementalPst::splitBlock(EdgeId E, std::string Label) {
  NodeId M = DG.splitBlock(E, std::move(Label));
  absorbJournal();
  return M;
}

NodeId IncrementalPst::addBlock(NodeId Src, NodeId Dst, std::string Label) {
  NodeId M = DG.addBlock(Src, Dst, std::move(Label));
  if (M == InvalidNode) {
    ++Stats.EditsRejected;
    return InvalidNode;
  }
  absorbJournal();
  return M;
}

std::vector<NodeId> IncrementalPst::collectBodyNodes(RegionId D) const {
  std::vector<NodeId> Body;
  std::vector<RegionId> Work{D};
  while (!Work.empty()) {
    RegionId R = Work.back();
    Work.pop_back();
    const Slot &S = Regions[R];
    Body.insert(Body.end(), S.Nodes.begin(), S.Nodes.end());
    Work.insert(Work.end(), S.Children.begin(), S.Children.end());
  }
  for (const auto &[N, Prov] : PendingNodeRegion)
    if (liveContains(D, Prov))
      Body.push_back(N);
  return Body;
}

bool IncrementalPst::deletePreservesValidity(RegionId S, EdgeId Skip) const {
  if (S == root())
    return DG.validWithoutEdge(Skip);

  std::vector<NodeId> Body = collectBodyNodes(S);
  std::unordered_map<NodeId, uint32_t> Index;
  Index.reserve(Body.size() * 2);
  for (uint32_t I = 0; I < Body.size(); ++I)
    Index.emplace(Body[I], I);

  EdgeId EntryE = Regions[S].EntryEdge, ExitE = Regions[S].ExitEdge;
  const Cfg &G = DG.graph();
  auto Sweep = [&](NodeId From, bool Forward) {
    auto It = Index.find(From);
    if (It == Index.end())
      return false;
    std::vector<bool> Seen(Body.size(), false);
    std::vector<uint32_t> Work{It->second};
    Seen[It->second] = true;
    uint32_t Count = 1;
    while (!Work.empty()) {
      NodeId V = Body[Work.back()];
      Work.pop_back();
      const auto &Edges = Forward ? G.succEdges(V) : G.predEdges(V);
      for (EdgeId E : Edges) {
        if (DG.edgeDead(E) || E == Skip || E == EntryE || E == ExitE)
          continue;
        NodeId W = Forward ? G.target(E) : G.source(E);
        auto WIt = Index.find(W);
        if (WIt == Index.end())
          continue; // Crosses the boundary; unreachable given SESE-ness.
        if (!Seen[WIt->second]) {
          Seen[WIt->second] = true;
          ++Count;
          Work.push_back(WIt->second);
        }
      }
    }
    return Count == Body.size();
  };
  // The exterior is untouched, so local reachability from the region's
  // entry (and co-reachability from its exit) is exactly what global
  // Definition-1 validity requires of the body.
  return Sweep(G.target(EntryE), true) && Sweep(G.source(ExitE), false);
}

bool IncrementalPst::deleteEdge(EdgeId E) {
  absorbJournal(); // Direct DynamicCfg edits must be folded in first.
  assert(DG.edgeLive(E) && "edge not live");
  const Cfg &G = DG.graph();
  RegionId D =
      lca(currentRegionOfNode(G.source(E)), currentRegionOfNode(G.target(E)));
  if (!deletePreservesValidity(dirtyScope(D), E)) {
    ++Stats.EditsRejected;
    return false;
  }
  DG.deleteEdgeUnchecked(E);
  absorbJournal();
  return true;
}

//===----------------------------------------------------------------------===//
// Commit: rebuild dirty subtrees
//===----------------------------------------------------------------------===//

uint32_t IncrementalPst::commit() {
  // Tag the span with the commit's 1-based sequence number so trace spans
  // can be correlated with specific edit batches (the nested rebuild spans
  // carry the same id).
  PST_SPAN_ARG("incremental.commit", "batch", Stats.Commits + 1);
  absorbJournal();
  if (!RootDirty && DirtySet.empty())
    return 0;
  ++Stats.Commits;
  Stats.FullRecomputeNodes += DG.numNodes();
  PST_COUNTER("incremental.commits", 1);

  if (RootDirty) {
    PST_COUNTER("incremental.full_rebuild_fallbacks", 1);
    fullRebuild();
    return 0;
  }

  // Snapshot the per-region body node sets before any rebuild mutates the
  // tree (the dirty regions are an antichain, so their subtrees are
  // disjoint, but collectBodyNodes also walks the shared PendingNodeRegion
  // map through parent chains that a rebuild recycles).
  std::vector<RegionId> Dirty = DirtySet;
  std::vector<std::vector<NodeId>> Bodies;
  Bodies.reserve(Dirty.size());
  for (RegionId D : Dirty)
    Bodies.push_back(collectBodyNodes(D));

  uint32_t Rebuilt = 0;
  for (size_t I = 0; I < Dirty.size(); ++I) {
    if (!rebuildSubtree(Dirty[I], Bodies[I])) {
      // The node set was not a SESE body (an invariant breach, not an
      // expected path). Recover by paying for a full rebuild.
      assert(false && "dirty region body violated the SESE boundary");
      fullRebuild();
      return Rebuilt;
    }
    ++Rebuilt;
  }

  DirtySet.clear();
  RootDirty = false;
  PendingNodeRegion.clear();
  PST_COUNTER("incremental.subtrees_rebuilt", Rebuilt);
  return Rebuilt;
}

bool IncrementalPst::rebuildSubtree(RegionId D,
                                    const std::vector<NodeId> &Body) {
  PST_SPAN_ARG("incremental.subtree_rebuild", "batch", Stats.Commits);
  assert(D != root() && Regions[D].Live && "dirty region must be real");
  assert(DG.edgeLive(Regions[D].EntryEdge) &&
         DG.edgeLive(Regions[D].ExitEdge) &&
         "dirty region boundary must be intact");

  SubCfg Sub = extractRegionSubCfg(DG.graph(), Body, Regions[D].EntryEdge,
                                   Regions[D].ExitEdge, &DG.deadEdges());
  if (Sub.BoundaryViolation)
    return false;
  ProgramStructureTree SubT =
      ProgramStructureTree::buildWithCycleEquiv(Sub.Graph,
                                                CeEngine.run(Sub.Graph));

  ++Stats.SubtreesRebuilt;
  Stats.NodesReprocessed += Body.size();
  Stats.EdgesReprocessed += Sub.Graph.numEdges();
  PST_COUNTER("incremental.nodes_reprocessed", Body.size());
  PST_VALUE("incremental.rebuild_body_nodes", Body.size());

  RegionId P = Regions[D].Parent;
  uint32_t BaseDepth = Regions[P].Depth;

  // The synthetic boundary edges are always cycle equivalent in the
  // sub-CFG, so the entry edge opens at least one region.
  RegionId R0 = SubT.regionEnteredBy(Sub.LocalEntryEdge);
  assert(R0 != InvalidRegion && "boundary edges must open a region");
  // D survives iff the boundary class stayed {start, end}: the region the
  // start edge opens then spans the whole body.
  bool Survive = SubT.region(R0).ExitEdge == Sub.LocalExitEdge;

  // Recycle the old subtree's slots (keeping D's own when it survives).
  for (RegionId C : Regions[D].Children)
    freeSubtreeSlots(C);
  Regions[D].Children.clear();
  Regions[D].Nodes.clear();
  size_t SlotInParent = 0;
  if (!Survive) {
    const auto &Sib = Regions[P].Children;
    SlotInParent = std::find(Sib.begin(), Sib.end(), D) - Sib.begin();
    assert(SlotInParent < Sib.size() && "region missing from its parent");
    Regions[D].Live = false;
    FreeSlots.push_back(D);
    --NumLive;
  }

  // Allocate global slots for the rebuilt regions. The sub-root stands for
  // the exterior context, i.e. D's parent.
  std::vector<RegionId> Map(SubT.numRegions(), InvalidRegion);
  Map[SubT.root()] = P;
  if (Survive)
    Map[R0] = D;
  for (RegionId R = 1; R < SubT.numRegions(); ++R)
    if (Map[R] == InvalidRegion)
      Map[R] = allocSlot();

  for (RegionId R = 1; R < SubT.numRegions(); ++R) {
    const SeseRegion &Src = SubT.region(R);
    Slot &S = Regions[Map[R]];
    S.EntryEdge = Sub.GlobalEdge[Src.EntryEdge];
    S.ExitEdge = Sub.GlobalEdge[Src.ExitEdge];
    S.Parent = Map[Src.Parent];
    S.Depth = BaseDepth + Src.Depth;
    S.Children.clear();
    for (RegionId C : SubT.children(R))
      S.Children.push_back(Map[C]);
    S.Nodes.clear();
    for (NodeId L : SubT.immediateNodes(R)) {
      assert(Sub.GlobalNode[L] != InvalidNode &&
             "synthetic nodes live in the sub-root only");
      S.Nodes.push_back(Sub.GlobalNode[L]);
    }
    S.Live = true;
  }

  if (!Survive) {
    // D dissolved: interior edges joined the boundary class, and the chain
    // of regions the sub-build found at top level takes D's place. Their
    // entry edges are traversed contiguously where D's was (the body's
    // only entry is D's entry edge), so an in-place splice preserves the
    // parent's child order.
    std::vector<RegionId> NewKids;
    for (RegionId C : SubT.children(SubT.root()))
      NewKids.push_back(Map[C]);
    auto &Sib = Regions[P].Children;
    Sib.erase(Sib.begin() + SlotInParent);
    Sib.insert(Sib.begin() + SlotInParent, NewKids.begin(), NewKids.end());
  }

  // Node and edge assignments. Real body node L is local id L by
  // construction of the extraction.
  for (uint32_t L = 0; L < Body.size(); ++L) {
    RegionId SubR = SubT.regionOfNode(L);
    if (SubR == SubT.root())
      return false; // Breached invariant: no body node sits outside.
    NodeRegion[Body[L]] = Map[SubR];
  }
  auto MapOr = [&](RegionId R) {
    return R == InvalidRegion ? InvalidRegion : Map[R];
  };
  for (EdgeId L = 0; L < Sub.Graph.numEdges(); ++L) {
    EdgeId E = Sub.GlobalEdge[L];
    if (L == Sub.LocalEntryEdge) {
      // D's entry edge: interior-facing slots update (it now opens D's
      // replacement when D dissolved); what it closes belongs to the
      // untouched exterior.
      EntryOf[E] = MapOr(SubT.regionEnteredBy(L));
      EdgeRegion[E] = Map[SubT.regionOfEdge(L)];
    } else if (L == Sub.LocalExitEdge) {
      // D's exit edge: symmetric — only what it closes is interior.
      ExitOf[E] = MapOr(SubT.regionExitedBy(L));
    } else {
      EdgeRegion[E] = Map[SubT.regionOfEdge(L)];
      EntryOf[E] = MapOr(SubT.regionEnteredBy(L));
      ExitOf[E] = MapOr(SubT.regionExitedBy(L));
    }
  }
  return true;
}

void IncrementalPst::fullRebuild() {
  // Batch 0 is the constructor's initial build; commits re-increment first.
  PST_SPAN_ARG("incremental.full_rebuild", "batch", Stats.Commits);
  std::vector<EdgeId> GlobalOf;
  Cfg M = DG.materialize(&GlobalOf);
  ProgramStructureTree T =
      ProgramStructureTree::buildWithCycleEquiv(M, CeEngine.run(M));

  Regions.assign(T.numRegions(), Slot{});
  FreeSlots.clear();
  NumLive = T.numRegions();
  for (RegionId R = 0; R < T.numRegions(); ++R) {
    const SeseRegion &Src = T.region(R);
    Slot &S = Regions[R];
    S.EntryEdge = Src.EntryEdge == InvalidEdge ? InvalidEdge
                                               : GlobalOf[Src.EntryEdge];
    S.ExitEdge =
        Src.ExitEdge == InvalidEdge ? InvalidEdge : GlobalOf[Src.ExitEdge];
    S.Parent = Src.Parent;
    auto Kids = T.children(R);
    S.Children.assign(Kids.begin(), Kids.end());
    S.Depth = Src.Depth;
    auto Imm = T.immediateNodes(R);
    S.Nodes.assign(Imm.begin(), Imm.end());
    S.Live = true;
  }

  NodeRegion.assign(DG.numNodes(), InvalidRegion);
  for (NodeId N = 0; N < DG.numNodes(); ++N)
    NodeRegion[N] = T.regionOfNode(N);
  uint32_t NumE = DG.graph().numEdges();
  EdgeRegion.assign(NumE, InvalidRegion);
  EntryOf.assign(NumE, InvalidRegion);
  ExitOf.assign(NumE, InvalidRegion);
  for (EdgeId C = 0; C < M.numEdges(); ++C) {
    EdgeId E = GlobalOf[C];
    EdgeRegion[E] = T.regionOfEdge(C);
    EntryOf[E] = T.regionEnteredBy(C);
    ExitOf[E] = T.regionExitedBy(C);
  }

  DirtySet.clear();
  RootDirty = false;
  PendingNodeRegion.clear();
  JournalPos = DG.journal().size();

  ++Stats.FullRebuilds;
  Stats.NodesReprocessed += DG.numNodes();
  Stats.EdgesReprocessed += M.numEdges();
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

std::string IncrementalPst::format() const {
  const Cfg &G = DG.graph();
  std::ostringstream OS;
  auto EdgeName = [&](EdgeId E) {
    return G.nodeName(G.source(E)) + "->" + G.nodeName(G.target(E));
  };
  // Recursive outline, iteratively: (region, depth) work items in reverse
  // child order so children print in order.
  std::vector<RegionId> Work{root()};
  while (!Work.empty()) {
    RegionId R = Work.back();
    Work.pop_back();
    const Slot &S = Regions[R];
    std::string Indent(S.Depth * 2, ' ');
    if (R == root())
      OS << "procedure";
    else
      OS << Indent << "region " << EdgeName(S.EntryEdge) << " .. "
         << EdgeName(S.ExitEdge);
    if (!S.Nodes.empty()) {
      OS << " [";
      for (size_t I = 0; I < S.Nodes.size(); ++I)
        OS << (I ? " " : "") << G.nodeName(S.Nodes[I]);
      OS << "]";
    }
    OS << "\n";
    for (auto It = S.Children.rbegin(); It != S.Children.rend(); ++It)
      Work.push_back(*It);
  }
  return OS.str();
}

bool IncrementalPst::equalsFromScratch(std::string *Why) const {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (pendingEdits() > 0)
    return Fail("uncommitted edits pending");

  std::vector<EdgeId> GlobalOf;
  Cfg M = DG.materialize(&GlobalOf);
  ProgramStructureTree T = ProgramStructureTree::build(M);

  if (T.numRegions() != NumLive)
    return Fail("region count: from-scratch " +
                std::to_string(T.numRegions()) + " vs incremental " +
                std::to_string(NumLive));

  // Map each from-scratch region to the incremental region opened by the
  // same (global) entry edge, then compare all structure through the map.
  std::vector<RegionId> IncOf(T.numRegions(), InvalidRegion);
  IncOf[T.root()] = root();
  for (RegionId R = 1; R < T.numRegions(); ++R) {
    EdgeId GE = GlobalOf[T.region(R).EntryEdge];
    RegionId I = EntryOf[GE];
    if (I == InvalidRegion || !Regions[I].Live)
      return Fail("no incremental region entered by edge " +
                  std::to_string(GE));
    if (Regions[I].ExitEdge != GlobalOf[T.region(R).ExitEdge])
      return Fail("exit edge mismatch for region entered by edge " +
                  std::to_string(GE));
    IncOf[R] = I;
  }
  for (RegionId R = 1; R < T.numRegions(); ++R) {
    RegionId I = IncOf[R];
    if (Regions[I].Parent != IncOf[T.region(R).Parent])
      return Fail("parent mismatch at region " + std::to_string(R));
    if (Regions[I].Depth != T.region(R).Depth)
      return Fail("depth mismatch at region " + std::to_string(R));
  }
  for (NodeId N = 0; N < M.numNodes(); ++N)
    if (NodeRegion[N] != IncOf[T.regionOfNode(N)])
      return Fail("node region mismatch at node " + std::to_string(N));
  for (EdgeId C = 0; C < M.numEdges(); ++C) {
    EdgeId E = GlobalOf[C];
    if (EdgeRegion[E] != IncOf[T.regionOfEdge(C)])
      return Fail("edge region mismatch at edge " + std::to_string(E));
    RegionId TE = T.regionEnteredBy(C), TX = T.regionExitedBy(C);
    if (EntryOf[E] != (TE == InvalidRegion ? InvalidRegion : IncOf[TE]))
      return Fail("entered-by mismatch at edge " + std::to_string(E));
    if (ExitOf[E] != (TX == InvalidRegion ? InvalidRegion : IncOf[TX]))
      return Fail("exited-by mismatch at edge " + std::to_string(E));
  }
  // Immediate node sets per region (order-insensitive).
  for (RegionId R = 0; R < T.numRegions(); ++R) {
    auto ImmA = T.immediateNodes(R);
    std::vector<NodeId> A(ImmA.begin(), ImmA.end());
    std::vector<NodeId> B = Regions[IncOf[R]].Nodes;
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    if (A != B)
      return Fail("immediate node set mismatch at region " +
                  std::to_string(R));
  }
  return true;
}
