//===- ProgramGenerator.cpp - Random MiniLang ---------------------------------===//
//
// Part of the PST library (see CfgGenerators.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/workload/ProgramGenerator.h"

#include <string>
#include <vector>

using namespace pst;

namespace {

/// Statement-stream generator for one function.
class FuncGen {
public:
  FuncGen(Rng &R, const ProgramGenOptions &Opts) : R(R), Opts(Opts) {}

  Function run(std::string Name) {
    Function F;
    F.Name = std::move(Name);
    F.Params.reserve(Opts.NumParams);
    Vars.reserve(Opts.NumParams + Opts.NumVars);
    for (uint32_t I = 0; I < Opts.NumParams; ++I)
      F.Params.push_back("p" + std::to_string(I));
    for (uint32_t I = 0; I < Opts.NumParams; ++I)
      Vars.push_back("p" + std::to_string(I));

    auto Body = std::make_unique<Stmt>(StmtKind::Block);
    // Declarations plus the top-level statement stream land here; the
    // stream gets roughly one top-level entry per budgeted statement plus
    // the glue assignment after each composite.
    Body->Body.reserve(Opts.NumVars + 2 * Opts.TargetStatements + 2);
    // Declare the locals up front. Most are bare declarations (defined
    // later, near their uses); an initializer here would count as an
    // extra definition site for every variable and wash out the def
    // locality that Figure 10 and the QPG experiment depend on.
    for (uint32_t I = 0; I < Opts.NumVars; ++I) {
      std::string V = "v" + std::to_string(I);
      auto D = std::make_unique<Stmt>(StmtKind::VarDecl);
      D->Name = V;
      if (R.nextBool(0.25))
        D->Value = makeNumber(R.nextInRange(0, 9), 0);
      Body->Body.push_back(std::move(D));
      Vars.push_back(V);
    }
    UsesGoto = Opts.GotoProb > 0.0;

    Budget = Opts.TargetStatements;
    genStmts(Body->Body, /*Depth=*/0, /*InLoop=*/false,
             /*GotoAllowed=*/true);

    // A procedure that is supposed to use gotos gets at least one
    // genuinely unstructured jump (the random cascade alone fires too
    // rarely on small bodies to match the corpus's unstructured share).
    if (UsesGoto)
      Body->Body.push_back(makeJumpIntoLoop());

    // Emit any labels gotos still owe, as trailing no-op anchor points.
    for (const std::string &L : PendingLabels) {
      auto Lab = std::make_unique<Stmt>(StmtKind::Label);
      Lab->Name = L;
      Body->Body.push_back(std::move(Lab));
      auto A = genAssign();
      Body->Body.push_back(std::move(A));
    }
    F.Body = std::move(Body);
    return F;
  }

private:
  // -- Variable locality ----------------------------------------------------
  // Real procedures use each variable within a small window of the code;
  // this is what makes the paper's sparsity results (Figure 10, the QPG
  // sizes) possible. We model it by sweeping a window over the variable
  // array as generation progresses.
  size_t localVarIndex(double Spread) {
    if (Vars.size() <= 1)
      return 0;
    double Progress =
        1.0 - static_cast<double>(Budget) /
                  std::max<double>(1.0, Opts.TargetStatements);
    double Center = Progress * static_cast<double>(Vars.size() - 1);
    double Offset = (R.nextDouble() + R.nextDouble() - 1.0) *
                    static_cast<double>(Vars.size()) * Spread;
    double Idx = Center + Offset;
    if (Idx < 0)
      Idx = 0;
    if (Idx > static_cast<double>(Vars.size() - 1))
      Idx = static_cast<double>(Vars.size() - 1);
    return static_cast<size_t>(Idx);
  }

  const std::string &pickDefVar() {
    // Consecutive assignments often hit the same variable (accumulators,
    // induction updates); this keeps each variable's definitions inside
    // few regions, as in real code.
    if (LastDefVar != SIZE_MAX && R.nextBool(0.65))
      return Vars[LastDefVar];
    LastDefVar = localVarIndex(0.04);
    return Vars[LastDefVar];
  }
  size_t LastDefVar = SIZE_MAX;
  const std::string &pickUseVar() {
    // Uses roam a little wider than defs (reads of parameters and of
    // earlier results), with an occasional global reach.
    if (R.nextBool(0.08))
      return Vars[R.nextBelow(Vars.size())];
    return Vars[localVarIndex(0.18)];
  }

  // -- Expressions ---------------------------------------------------------
  ExprPtr genLeaf() {
    if (R.nextBool(0.4) || Vars.empty())
      return makeNumber(R.nextInRange(0, 99), 0);
    return makeVarRef(pickUseVar(), 0);
  }

  ExprPtr genExpr(uint32_t Depth) {
    if (Depth == 0 || R.nextBool(0.35))
      return genLeaf();
    static const OpKind Arith[] = {OpKind::Add, OpKind::Sub, OpKind::Mul,
                                   OpKind::Div, OpKind::Rem};
    return makeBinary(Arith[R.nextBelow(5)], genExpr(Depth - 1),
                      genExpr(Depth - 1), 0);
  }

  ExprPtr genCond() {
    static const OpKind Rel[] = {OpKind::Lt, OpKind::Le,  OpKind::Gt,
                                 OpKind::Ge, OpKind::Eq, OpKind::Ne};
    ExprPtr C = makeBinary(Rel[R.nextBelow(6)], genExpr(1), genExpr(1), 0);
    if (R.nextBool(0.2))
      C = makeBinary(R.nextBool(0.5) ? OpKind::And : OpKind::Or,
                     std::move(C),
                     makeBinary(Rel[R.nextBelow(6)], genLeaf(), genLeaf(), 0),
                     0);
    return C;
  }

  StmtPtr genAssign() {
    auto S = std::make_unique<Stmt>(StmtKind::Assign);
    S->Name = pickDefVar();
    S->Value = genExpr(2);
    return S;
  }

  StmtPtr wrapBlock(std::vector<StmtPtr> Stmts) {
    auto B = std::make_unique<Stmt>(StmtKind::Block);
    B->Body = std::move(Stmts);
    return B;
  }

  /// `if (c) goto L; while (c2) { ...; L: ...; }` — a two-entry loop, the
  /// canonical irreducible shape.
  StmtPtr makeJumpIntoLoop() {
    std::string L = "l" + std::to_string(NextLabel++);
    auto Blk = std::make_unique<Stmt>(StmtKind::Block);
    auto Guard = std::make_unique<Stmt>(StmtKind::If);
    Guard->Value = genCond();
    Guard->Then = wrapBlock({});
    auto Gt = std::make_unique<Stmt>(StmtKind::Goto);
    Gt->Name = L;
    Guard->Then->Body.push_back(std::move(Gt));
    Blk->Body.push_back(std::move(Guard));
    auto Loop = std::make_unique<Stmt>(StmtKind::While);
    Loop->Value = genCond();
    Loop->Then = wrapBlock({});
    Loop->Then->Body.push_back(genAssign());
    auto Lab = std::make_unique<Stmt>(StmtKind::Label);
    Lab->Name = L;
    Loop->Then->Body.push_back(std::move(Lab));
    Loop->Then->Body.push_back(genAssign());
    Blk->Body.push_back(std::move(Loop));
    return Blk;
  }

  /// A sub-block of roughly \p Share of the remaining budget.
  StmtPtr genSubBlock(uint32_t Depth, bool InLoop) {
    std::vector<StmtPtr> Stmts;
    genStmts(Stmts, Depth, InLoop, /*GotoAllowed=*/false);
    if (Stmts.empty())
      Stmts.push_back(genAssign());
    return wrapBlock(std::move(Stmts));
  }

  // -- Statements ----------------------------------------------------------
  void genStmts(std::vector<StmtPtr> &Out, uint32_t Depth, bool InLoop,
                bool GotoAllowed) {
    // Each recursion level takes a slice of the budget so nesting depth
    // follows the paper's broad-and-shallow shape.
    uint32_t Slice =
        Depth == 0 ? Budget : 1 + static_cast<uint32_t>(R.nextBelow(
                                      std::max<uint32_t>(Budget / 2, 1)));
    while (Slice > 0 && Budget > 0) {
      --Slice;
      --Budget;
      StmtPtr S = genOneStmt(Depth, InLoop, GotoAllowed);
      bool Composite = S->Kind == StmtKind::If ||
                       S->Kind == StmtKind::While ||
                       S->Kind == StmtKind::DoWhile ||
                       S->Kind == StmtKind::For ||
                       S->Kind == StmtKind::Switch;
      Out.push_back(std::move(S));
      // Separate adjacent constructs with straight-line glue, as real code
      // does; without it two conditionals share a join/cond block, fuse
      // into one SESE region and classify as a dag.
      if (Composite && Budget > 0) {
        --Budget;
        Out.push_back(genAssign());
      }
    }
  }

  StmtPtr genOneStmt(uint32_t Depth, bool InLoop, bool GotoAllowed) {
    double P = R.nextDouble();
    bool DeepOk = Depth < Opts.MaxDepth;
    // Nesting gets rarer with depth, matching the paper's broad-and-
    // shallow PSTs (average region depth 2.68, 97% at depth <= 6).
    double Damp = 1.0;
    for (uint32_t D = 0; D < Depth; ++D)
      Damp *= 0.55;
    auto Within = [&](double &Acc, double Prob) {
      Acc += Prob * Damp;
      return P < Acc;
    };
    double Acc = 0;

    if (DeepOk && Within(Acc, Opts.IfProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::If);
      S->Value = genCond();
      S->Then = genSubBlock(Depth + 1, InLoop);
      return S;
    }
    if (DeepOk && Within(Acc, Opts.IfElseProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::If);
      S->Value = genCond();
      S->Then = genSubBlock(Depth + 1, InLoop);
      S->Else = genSubBlock(Depth + 1, InLoop);
      return S;
    }
    if (DeepOk && Within(Acc, Opts.WhileProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::While);
      S->Value = genCond();
      // FORTRAN-style perfect loop nests are common in the paper's
      // corpus: sometimes the body is directly another loop.
      if (Depth + 1 < Opts.MaxDepth && R.nextBool(0.3)) {
        auto Inner = std::make_unique<Stmt>(StmtKind::While);
        Inner->Value = genCond();
        Inner->Then = genSubBlock(Depth + 2, /*InLoop=*/true);
        S->Then = wrapBlock({});
        S->Then->Body.push_back(std::move(Inner));
        S->Then->Body.push_back(genAssign());
      } else {
        S->Then = genSubBlock(Depth + 1, /*InLoop=*/true);
      }
      return S;
    }
    if (DeepOk && Within(Acc, Opts.DoWhileProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::DoWhile);
      S->Value = genCond();
      S->Then = genSubBlock(Depth + 1, /*InLoop=*/true);
      return S;
    }
    if (DeepOk && Within(Acc, Opts.ForProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::For);
      std::string IV = pickDefVar();
      S->Init = std::make_unique<Stmt>(StmtKind::Assign);
      S->Init->Name = IV;
      S->Init->Value = makeNumber(0, 0);
      S->Value = makeBinary(OpKind::Lt, makeVarRef(IV, 0),
                            makeNumber(R.nextInRange(2, 64), 0), 0);
      S->Step = std::make_unique<Stmt>(StmtKind::Assign);
      S->Step->Name = IV;
      S->Step->Value =
          makeBinary(OpKind::Add, makeVarRef(IV, 0), makeNumber(1, 0), 0);
      S->Then = genSubBlock(Depth + 1, /*InLoop=*/true);
      return S;
    }
    if (DeepOk && Within(Acc, Opts.SwitchProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::Switch);
      S->Value = genExpr(1);
      uint32_t Arms = 3 + static_cast<uint32_t>(R.nextBelow(4));
      for (uint32_t I = 0; I < Arms; ++I) {
        SwitchArm Arm;
        Arm.HasValue = I + 1 < Arms || R.nextBool(0.5);
        Arm.Value = I;
        std::vector<StmtPtr> Body;
        uint32_t K = 1 + static_cast<uint32_t>(R.nextBelow(3));
        for (uint32_t J = 0; J < K && Budget > 0; ++J, --Budget)
          Body.push_back(genAssign());
        if (Body.empty())
          Body.push_back(genAssign());
        Arm.Body = std::move(Body);
        S->Arms.push_back(std::move(Arm));
      }
      return S;
    }
    if (InLoop && Within(Acc, Opts.BreakProb)) {
      // Guard the break so the rest of the loop body stays reachable.
      auto S = std::make_unique<Stmt>(StmtKind::If);
      S->Value = genCond();
      S->Then = wrapBlock({});
      S->Then->Body.push_back(std::make_unique<Stmt>(StmtKind::Break));
      return S;
    }
    if (InLoop && Within(Acc, Opts.ContinueProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::If);
      S->Value = genCond();
      S->Then = wrapBlock({});
      S->Then->Body.push_back(std::make_unique<Stmt>(StmtKind::Continue));
      return S;
    }
    // Non-structural statement kinds are not depth-damped.
    Damp = 1.0;
    if (Within(Acc, Opts.ReturnProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::If);
      S->Value = genCond();
      S->Then = wrapBlock({});
      auto Ret = std::make_unique<Stmt>(StmtKind::Return);
      Ret->Value = genExpr(1);
      S->Then->Body.push_back(std::move(Ret));
      return S;
    }
    if (Within(Acc, Opts.CallProb)) {
      auto S = std::make_unique<Stmt>(StmtKind::ExprStmt);
      std::vector<ExprPtr> Args;
      uint32_t K = static_cast<uint32_t>(R.nextBelow(3));
      for (uint32_t I = 0; I < K; ++I)
        Args.push_back(genExpr(1));
      S->Value = makeCall("work" + std::to_string(R.nextBelow(4)),
                          std::move(Args), 0);
      return S;
    }
    if (UsesGoto && GotoAllowed && Within(Acc, Opts.GotoProb)) {
      std::string L = "l" + std::to_string(NextLabel++);
      if (R.nextBool(0.5)) {
        // Flavor 1: guarded forward goto to a label owed at the end of
        // the function (an exit-style jump; often still region-
        // decomposable, like real FORTRAN error exits).
        PendingLabels.push_back(L);
        auto S = std::make_unique<Stmt>(StmtKind::If);
        S->Value = genCond();
        S->Then = wrapBlock({});
        auto Gt = std::make_unique<Stmt>(StmtKind::Goto);
        Gt->Name = L;
        S->Then->Body.push_back(std::move(Gt));
        return S;
      }
      // Flavor 2: guarded jump *into* a loop body — the genuinely
      // unstructured (irreducible) shape that makes a procedure count as
      // not fully structured.
      return makeJumpIntoLoop();
    }
    return genAssign();
  }

  Rng &R;
  const ProgramGenOptions &Opts;
  std::vector<std::string> Vars;
  std::vector<std::string> PendingLabels;
  uint32_t NextLabel = 0;
  uint32_t Budget = 0;
  bool UsesGoto = false;
};

} // namespace

Function pst::generateFunction(Rng &R, const ProgramGenOptions &Opts,
                               std::string Name) {
  return FuncGen(R, Opts).run(std::move(Name));
}
