//===- Corpus.cpp - The paper's benchmark corpus -------------------------------===//
//
// Part of the PST library (see CfgGenerators.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/workload/Corpus.h"

#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/ProgramGenerator.h"

#include <cstdlib>
#include <string_view>

using namespace pst;

/// FNV-1a over the strings, finalized SplitMix-style. Seeding each
/// procedure from (Seed, Suite, Name) rather than from sequential draws
/// off one generator means a procedure's content does not depend on how
/// many draws earlier procedures consumed — so the corpus is stable under
/// reordering, subsetting, parallel generation, or chunked streaming.
uint64_t pst::deriveProcedureSeed(uint64_t Seed, std::string_view Suite,
                                  std::string_view Name) {
  uint64_t H = 0xcbf29ce484222325ULL ^ Seed;
  auto Mix = [&H](std::string_view S) {
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001b3ULL; // FNV prime.
    }
    H ^= 0xff; // Separator, so ("ab","c") != ("a","bc").
    H *= 0x100000001b3ULL;
  };
  Mix(Suite);
  Mix(Name);
  // SplitMix64 finalizer: spreads the FNV state over all 64 bits.
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ULL;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebULL;
  H ^= H >> 31;
  return H;
}

const std::vector<CorpusProgramSpec> &pst::paperCorpusSpec() {
  static const std::vector<CorpusProgramSpec> Spec = {
      {"Perfect", "APS", 6105, 97},    {"Perfect", "LGS", 2389, 34},
      {"Perfect", "TFS", 1986, 27},    {"Perfect", "TIS", 485, 7},
      {"SPEC89", "dnasa7", 1105, 17},  {"SPEC89", "doduc", 5334, 41},
      {"SPEC89", "fpppp", 2718, 14},   {"SPEC89", "matrix300", 439, 5},
      {"SPEC89", "tomcatv", 195, 1},   {"linpack", "linpack", 793, 11},
  };
  return Spec;
}

std::vector<CorpusFunction> pst::generatePaperCorpus(uint64_t Seed) {
  std::vector<CorpusFunction> Out;
  size_t TotalProcs = 0;
  for (const CorpusProgramSpec &P : paperCorpusSpec())
    TotalProcs += P.Procedures;
  Out.reserve(TotalProcs);

  for (const CorpusProgramSpec &P : paperCorpusSpec()) {
    // Split the program's lines across its procedures: random weights
    // around the mean, matching the paper's spread of procedure sizes
    // (most procedures small, a few hundreds of statements). The weights
    // use a program-identity generator so every program's split is fixed
    // no matter which programs are generated around it.
    Rng ProgramR(deriveProcedureSeed(Seed, P.Suite, P.Name));
    std::vector<double> W(P.Procedures);
    double Total = 0;
    for (double &X : W) {
      X = 0.25 + ProgramR.nextDouble() * (ProgramR.nextBool(0.15) ? 6.0 : 1.5);
      Total += X;
    }

    for (uint32_t I = 0; I < P.Procedures; ++I) {
      uint32_t Target = std::max<uint32_t>(
          4, static_cast<uint32_t>(P.Lines * (W[I] / Total)));

      // Each procedure draws from its own (Seed, Suite, Name)-derived
      // stream — never from a shared sequential one — so procedure
      // content is independent of generation order.
      std::string FnName = std::string(P.Name) + "_p" + std::to_string(I);
      Rng R(deriveProcedureSeed(Seed, P.Suite, FnName));

      ProgramGenOptions Opts;
      Opts.TargetStatements = Target;
      // Variable count scales with procedure size (the paper's corpus has
      // ~20 variables per procedure on average, 5072 total).
      Opts.NumVars = std::min<uint32_t>(
          60, 4 + Target / 5 + static_cast<uint32_t>(R.nextBelow(4)));
      Opts.NumParams = static_cast<uint32_t>(R.nextBelow(5));
      Opts.MaxDepth = 5 + static_cast<uint32_t>(R.nextBelow(3));
      // The paper found 182 of 254 procedures completely structured;
      // giving ~22% of procedures gotos (plus the occasional dag from
      // guarded exits) reproduces that mix.
      Opts.GotoProb = R.nextBool(0.26) ? 0.06 : 0.0;

      Function F = generateFunction(R, Opts, std::move(FnName));
      auto L = lowerFunction(F);
      if (!L || !validateCfg(L->Graph)) {
        // A generator bug, not an input error: fail loudly.
        std::abort();
      }
      Out.push_back(CorpusFunction{P.Suite, P.Name, std::move(*L)});
    }
  }
  return Out;
}
