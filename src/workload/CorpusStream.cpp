//===- CorpusStream.cpp - Streaming corpus producer ----------------------------===//
//
// Part of the PST library (see CfgGenerators.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/workload/CorpusStream.h"

#include "pst/obs/ScopedTimer.h"
#include "pst/obs/Telemetry.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/Corpus.h"

using namespace pst;

void pst::generateStreamFunction(const StreamCorpusOptions &Opts,
                                 uint64_t Index, Cfg &G, std::string &Name) {
  Name.clear();
  Name += "gen_p";
  Name += std::to_string(Index);
  // The function's whole RNG stream hangs off (Seed, "stream", Name):
  // regeneration at any position in any chunk replays it exactly.
  Rng R(deriveProcedureSeed(Opts.Seed, "stream", Name));

  // The benches' generated-corpus mix: mostly small random graphs (the
  // realistic size profile), salted with the structured families.
  switch (Index % 8) {
  case 0:
    G = diamondLadderCfg(2 + static_cast<uint32_t>(R.nextBelow(12)));
    break;
  case 1:
    G = nestedWhileCfg(1 + static_cast<uint32_t>(R.nextBelow(5)),
                       1 + static_cast<uint32_t>(R.nextBelow(3)));
    break;
  case 2:
    G = nestedRepeatUntilCfg(2 + static_cast<uint32_t>(R.nextBelow(10)));
    break;
  case 3:
    G = irreducibleCfg(1 + static_cast<uint32_t>(R.nextBelow(4)));
    break;
  default: {
    RandomCfgOptions O;
    O.NumNodes = 8 + static_cast<uint32_t>(R.nextBelow(56));
    O.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(O.NumNodes));
    G = randomBackboneCfg(R, O);
    break;
  }
  }
}

bool CorpusStream::next(CorpusChunk &C) {
  C.Begin = Next;
  C.Graphs.clear();
  C.Names.clear();
  if (Next >= Opts.Count)
    return false;
  PST_SPAN("workload.gen");
  const uint64_t End = std::min(Next + ChunkFns, Opts.Count);
  C.Graphs.resize(End - Next);
  C.Names.resize(End - Next);
  for (uint64_t I = Next; I < End; ++I)
    generateStreamFunction(Opts, I, C.Graphs[I - Next], C.Names[I - Next]);
  PST_COUNTER("workload.gen.chunks", 1);
  PST_COUNTER("workload.gen.functions", End - Next);
  Next = End;
  return true;
}
