//===- CfgGenerators.cpp - Synthetic CFGs ------------------------------------===//
//
// Part of the PST library (see CfgGenerators.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/workload/CfgGenerators.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <string>
#include <vector>

using namespace pst;

Cfg pst::randomBackboneCfg(Rng &R, const RandomCfgOptions &Opts) {
  assert(Opts.NumNodes >= 2 && "need at least entry and exit");
  Cfg G;
  uint32_t N = Opts.NumNodes;
  G.reserveNodes(N);
  G.reserveEdges(static_cast<size_t>(N) - 1 + Opts.NumExtraEdges);
  for (uint32_t I = 0; I < N; ++I)
    G.addNode();
  G.setEntry(0);
  G.setExit(N - 1);

  // Permute the interior nodes onto a backbone path; this alone satisfies
  // Definition 1 (everything lies on an entry->exit path).
  std::vector<NodeId> Interior(N >= 2 ? N - 2 : 0);
  std::iota(Interior.begin(), Interior.end(), 1);
  for (size_t I = Interior.size(); I > 1; --I)
    std::swap(Interior[I - 1], Interior[R.nextBelow(I)]);

  NodeId Prev = G.entry();
  for (NodeId M : Interior) {
    G.addEdge(Prev, M);
    Prev = M;
  }
  G.addEdge(Prev, G.exit());

  // Positions along the backbone, for forward/backward extra edges.
  std::vector<uint32_t> Pos(N, 0);
  for (uint32_t I = 0; I < Interior.size(); ++I)
    Pos[Interior[I]] = I + 1;
  Pos[G.exit()] = N - 1;

  for (uint32_t K = 0; K < Opts.NumExtraEdges; ++K) {
    if (R.nextBool(Opts.ParallelProb) && G.numEdges() > 0) {
      EdgeId E = static_cast<EdgeId>(R.nextBelow(G.numEdges()));
      G.addEdge(G.source(E), G.target(E));
      continue;
    }
    if (R.nextBool(Opts.SelfLoopProb) && N > 2) {
      NodeId V = Interior[R.nextBelow(Interior.size())];
      G.addEdge(V, V);
      continue;
    }
    // Any edge not into entry and not out of exit keeps the CFG valid.
    NodeId Src, Dst;
    do {
      Src = static_cast<NodeId>(R.nextBelow(N));
    } while (Src == G.exit());
    do {
      Dst = static_cast<NodeId>(R.nextBelow(N));
    } while (Dst == G.entry());
    if (!Opts.AllowBackEdges && Pos[Dst] <= Pos[Src])
      std::swap(Src, Dst); // Make it forward along the backbone.
    if (Src == G.exit() || Dst == G.entry())
      continue; // The swap may have hit a terminal; just drop this edge.
    G.addEdge(Src, Dst);
  }
  return G;
}

Cfg pst::chainCfg(uint32_t InnerNodes) {
  Cfg G;
  G.reserveNodes(InnerNodes + 2);
  G.reserveEdges(InnerNodes + 1);
  NodeId Entry = G.addNode("entry");
  NodeId Prev = Entry;
  for (uint32_t I = 0; I < InnerNodes; ++I) {
    NodeId B = G.addNode("b" + std::to_string(I));
    G.addEdge(Prev, B);
    Prev = B;
  }
  NodeId Exit = G.addNode("exit");
  G.addEdge(Prev, Exit);
  G.setEntry(Entry);
  G.setExit(Exit);
  return G;
}

Cfg pst::diamondLadderCfg(uint32_t Count) {
  Cfg G;
  G.reserveNodes(4 * static_cast<size_t>(Count) + 2);
  G.reserveEdges(5 * static_cast<size_t>(Count) + 1);
  NodeId Entry = G.addNode("entry");
  NodeId Prev = Entry;
  for (uint32_t I = 0; I < Count; ++I) {
    std::string S = std::to_string(I);
    NodeId C = G.addNode("cond" + S);
    NodeId T = G.addNode("then" + S);
    NodeId F = G.addNode("else" + S);
    NodeId J = G.addNode("join" + S);
    G.addEdge(Prev, C);
    G.addEdge(C, T);
    G.addEdge(C, F);
    G.addEdge(T, J);
    G.addEdge(F, J);
    Prev = J;
  }
  NodeId Exit = G.addNode("exit");
  G.addEdge(Prev, Exit);
  G.setEntry(Entry);
  G.setExit(Exit);
  return G;
}

Cfg pst::nestedWhileCfg(uint32_t Depth, uint32_t BodyBlocks) {
  Cfg G;
  G.reserveNodes(2 * static_cast<size_t>(Depth) + BodyBlocks + 2);
  G.reserveEdges(3 * static_cast<size_t>(Depth) + BodyBlocks + 1);
  NodeId Entry = G.addNode("entry");
  NodeId Exit = G.addNode("exit");
  G.setEntry(Entry);
  G.setExit(Exit);

  // Build outside-in: each level adds header -> (body...) -> header and
  // header -> next-after-loop.
  std::vector<NodeId> Headers;
  NodeId Prev = Entry;
  for (uint32_t D = 0; D < Depth; ++D) {
    NodeId H = G.addNode("head" + std::to_string(D));
    G.addEdge(Prev, H);
    Headers.push_back(H);
    Prev = H;
  }
  // Innermost body chain.
  NodeId BodyPrev = Prev;
  for (uint32_t I = 0; I < BodyBlocks; ++I) {
    NodeId B = G.addNode("body" + std::to_string(I));
    G.addEdge(BodyPrev, B);
    BodyPrev = B;
  }
  // Close the loops inside-out: innermost body ends at innermost header.
  NodeId Inner = BodyPrev;
  for (uint32_t D = Depth; D-- > 0;) {
    G.addEdge(Inner, Headers[D]); // Backedge.
    // The loop exit continues to the next outer "after" point; build a
    // latch block per level for a clean block-level CFG.
    NodeId After = G.addNode("after" + std::to_string(D));
    G.addEdge(Headers[D], After);
    Inner = After;
  }
  G.addEdge(Inner, Exit);
  return G;
}

Cfg pst::nestedRepeatUntilCfg(uint32_t Depth) {
  // repeat { repeat { ... } until c } until c' lowers to a chain of entry
  // blocks h1..hD (h1 outermost) with a tail block t_i per level testing
  // the until condition: t_i -> h_i (backedge) and t_i -> t_{i-1}.
  Cfg G;
  G.reserveNodes(2 * static_cast<size_t>(Depth) + 2);
  G.reserveEdges(3 * static_cast<size_t>(Depth) + 1);
  NodeId Entry = G.addNode("entry");
  NodeId Exit = G.addNode("exit");
  G.setEntry(Entry);
  G.setExit(Exit);

  std::vector<NodeId> Head(Depth), Tail(Depth);
  for (uint32_t I = 0; I < Depth; ++I)
    Head[I] = G.addNode("h" + std::to_string(I));
  for (uint32_t I = 0; I < Depth; ++I)
    Tail[I] = G.addNode("t" + std::to_string(I));

  G.addEdge(Entry, Head[0]);
  for (uint32_t I = 0; I + 1 < Depth; ++I)
    G.addEdge(Head[I], Head[I + 1]);
  G.addEdge(Head[Depth - 1], Tail[Depth - 1]);
  for (uint32_t I = Depth; I-- > 0;) {
    G.addEdge(Tail[I], Head[I]); // until fails: repeat level I.
    if (I > 0)
      G.addEdge(Tail[I], Tail[I - 1]); // until succeeds: leave level I.
  }
  G.addEdge(Tail[0], Exit);
  return G;
}

Cfg pst::irreducibleCfg(uint32_t Copies) {
  Cfg G;
  G.reserveNodes(4 * static_cast<size_t>(Copies) + 2);
  G.reserveEdges(7 * static_cast<size_t>(Copies) + 1);
  NodeId Entry = G.addNode("entry");
  NodeId Prev = Entry;
  for (uint32_t I = 0; I < Copies; ++I) {
    std::string S = std::to_string(I);
    NodeId C = G.addNode("split" + S);
    NodeId A = G.addNode("a" + S);
    NodeId B = G.addNode("b" + S);
    NodeId J = G.addNode("out" + S);
    G.addEdge(Prev, C);
    G.addEdge(C, A);
    G.addEdge(C, B);
    G.addEdge(A, B); // The two-entry loop a <-> b.
    G.addEdge(B, A);
    G.addEdge(B, J);
    Prev = J;
  }
  NodeId Exit = G.addNode("exit");
  G.addEdge(Prev, Exit);
  G.setEntry(Entry);
  G.setExit(Exit);
  return G;
}

Cfg pst::paperFigure1Cfg() {
  // The scanned figure is not machine-recoverable, so this is a faithful
  // reconstruction exhibiting every relationship the text describes:
  // nested regions (the arm regions inside the conditional), disjoint
  // regions (the two arms), and sequentially composed regions (the
  // conditional, the loop and the tail block share boundary edges).
  Cfg G;
  G.reserveNodes(9);
  G.reserveEdges(10);
  NodeId Start = G.addNode("start");
  NodeId Cond = G.addNode("cond");
  NodeId Then = G.addNode("then");
  NodeId Else = G.addNode("else");
  NodeId Join = G.addNode("join");
  NodeId Head = G.addNode("head");
  NodeId Body = G.addNode("body");
  NodeId Tail = G.addNode("tail");
  NodeId End = G.addNode("end");
  G.addEdge(Start, Cond); // e0: opens the conditional region.
  G.addEdge(Cond, Then);  // e1: opens the then-arm region.
  G.addEdge(Cond, Else);  // e2: opens the else-arm region.
  G.addEdge(Then, Join);  // e3: closes the then-arm region.
  G.addEdge(Else, Join);  // e4: closes the else-arm region.
  G.addEdge(Join, Head);  // e5: closes conditional, opens loop region.
  G.addEdge(Head, Body);  // e6.
  G.addEdge(Body, Head);  // e7: loop backedge.
  G.addEdge(Head, Tail);  // e8: closes loop, opens tail region.
  G.addEdge(Tail, End);   // e9: closes tail region.
  G.setEntry(Start);
  G.setExit(End);
  return G;
}
