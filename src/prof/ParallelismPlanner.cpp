//===- ParallelismPlanner.cpp - Work/span region planner ------------------------===//
//
// Part of the PST library (see ParallelismPlanner.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/prof/ParallelismPlanner.h"

#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <cassert>

using namespace pst;

ParallelismPlan pst::planParallelism(const RegionProfile &P,
                                     const PlannerOptions &Opts) {
  assert(P.finalized() && "finalize() the profile before planning");
  PST_SPAN("prof.plan");

  const ProgramStructureTree &T = P.pst();
  ParallelismPlan Plan;
  Plan.TotalWork = P.totalWork();

  std::vector<PlanEntry> Candidates;
  for (RegionId R = 1; R < T.numRegions(); ++R) {
    const RegionDynamics &D = P.dynamics(R);
    if (!D.Entries || !Plan.TotalWork)
      continue;
    PlanEntry E;
    E.Region = R;
    E.Kind = D.Kind;
    E.Work = D.InclusiveCost;
    E.Entries = D.Entries;
    E.Coverage = static_cast<double>(D.InclusiveCost) /
                 static_cast<double>(Plan.TotalWork);
    E.SelfParallelism = D.selfParallelism();
    E.MeanIterations = D.meanIterations();
    E.Benefit = E.Coverage * (1.0 - 1.0 / E.SelfParallelism);
    if (E.Coverage < Opts.MinCoverage ||
        E.SelfParallelism < Opts.MinSelfParallelism)
      continue;
    Candidates.push_back(E);
  }
  Plan.CandidatesConsidered = static_cast<uint32_t>(Candidates.size());
  PST_COUNTER("prof.plan.candidates", Candidates.size());

  std::stable_sort(Candidates.begin(), Candidates.end(),
                   [](const PlanEntry &A, const PlanEntry &B) {
                     if (A.Benefit != B.Benefit)
                       return A.Benefit > B.Benefit;
                     return A.Region < B.Region;
                   });

  // Greedy admission: a region may not nest inside (or around) any region
  // already in the plan, so the plan's inclusive costs are disjoint.
  for (const PlanEntry &E : Candidates) {
    if (Plan.Entries.size() >= Opts.MaxPlanEntries)
      break;
    bool Overlaps = false;
    for (const PlanEntry &Sel : Plan.Entries)
      if (T.contains(Sel.Region, E.Region) || T.contains(E.Region, Sel.Region)) {
        Overlaps = true;
        break;
      }
    if (!Overlaps)
      Plan.Entries.push_back(E);
  }
  PST_COUNTER("prof.plan.selected", Plan.Entries.size());
  return Plan;
}
