//===- RegionProfile.cpp - Dynamic region cost profile --------------------------===//
//
// Part of the PST library (see RegionProfile.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/prof/RegionProfile.h"

#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace pst;

RegionProfile::RegionProfile(const LoweredFunction &Fn,
                             const ProgramStructureTree &Tree)
    : F(&Fn), T(&Tree) {
  const Cfg &G = F->Graph;
  BlockCost.resize(G.numNodes());
  for (NodeId N = 0; N < G.numNodes(); ++N)
    BlockCost[N] = F->Code[N].size();
  BlockTotal.assign(G.numNodes(), 0);
  EdgeTotal.assign(G.numEdges(), 0);
  Dyn.assign(T->numRegions(), RegionDynamics{});
  computeShapes();
}

void RegionProfile::computeShapes() {
  const Cfg &G = F->Graph;
  Shapes.resize(T->numRegions());
  for (RegionId R = 0; R < T->numRegions(); ++R) {
    RegionShape &S = Shapes[R];
    S.Body = collapseRegion(G, *T, R);
    S.Kind = classifyRegion(G, *T, R);

    // Classify the quotient edges by an iterative three-color DFS from the
    // entry node (unvisited quotient nodes, if any, seed follow-up walks in
    // index order so the classification is total). An edge into a grey
    // node is a back edge — removing exactly those leaves the acyclic
    // skeleton, and the reverse finish order is a topological order of it.
    uint32_t NQ = S.Body.numNodes();
    if (NQ == 0)
      continue;
    std::vector<std::vector<uint32_t>> Out(NQ); // indices into Body.Edges
    for (uint32_t EI = 0; EI < S.Body.Edges.size(); ++EI)
      Out[S.Body.Edges[EI].Src].push_back(EI);

    enum : uint8_t { White, Grey, Black };
    std::vector<uint8_t> Color(NQ, White);
    std::vector<uint8_t> IsBack(S.Body.Edges.size(), 0);
    std::vector<uint32_t> Finish; // quotient nodes in finish order
    Finish.reserve(NQ);
    // Stack frames: (node, next out-edge index to look at).
    std::vector<std::pair<uint32_t, uint32_t>> Stack;
    auto RunFrom = [&](uint32_t Root) {
      Color[Root] = Grey;
      Stack.emplace_back(Root, 0);
      while (!Stack.empty()) {
        auto &[Q, Next] = Stack.back();
        if (Next < Out[Q].size()) {
          uint32_t EI = Out[Q][Next++];
          uint32_t Dst = S.Body.Edges[EI].Dst;
          if (Color[Dst] == Grey) {
            IsBack[EI] = 1;
          } else if (Color[Dst] == White) {
            Color[Dst] = Grey;
            Stack.emplace_back(Dst, 0);
          }
        } else {
          Color[Q] = Black;
          Finish.push_back(Q);
          Stack.pop_back();
        }
      }
    };
    RunFrom(S.Body.EntryQ);
    for (uint32_t Q = 0; Q < NQ; ++Q)
      if (Color[Q] == White)
        RunFrom(Q);

    for (uint32_t EI = 0; EI < S.Body.Edges.size(); ++EI) {
      if (IsBack[EI])
        S.BackCfgEdges.push_back(S.Body.Edges[EI].CfgEdge);
      else
        S.DagEdges.emplace_back(S.Body.Edges[EI].Src, S.Body.Edges[EI].Dst);
    }
    S.Cyclic = !S.BackCfgEdges.empty();
    S.Topo.assign(Finish.rbegin(), Finish.rend());
  }
}

bool RegionProfile::addRun(const CfgExecResult &Run) {
  const Cfg &G = F->Graph;
  if (!Run.Finished || Run.BlockCounts.size() != G.numNodes() ||
      Run.EdgeCounts.size() != G.numEdges())
    return false;

  PST_SPAN("prof.attribute");
  ++NumRuns;
  TotalSteps += Run.Steps;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    BlockTotal[N] += Run.BlockCounts[N];
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    EdgeTotal[E] += Run.EdgeCounts[E];

  // Per-run loop trip samples: one ValueStats sample per cyclic region the
  // run entered, of that run's iteration total.
  for (RegionId R = 0; R < T->numRegions(); ++R) {
    const RegionShape &S = Shapes[R];
    if (!S.Cyclic)
      continue;
    uint64_t RunEntries =
        R == T->root() ? 1 : Run.EdgeCounts[T->region(R).EntryEdge];
    if (!RunEntries)
      continue;
    uint64_t Iters = RunEntries;
    for (EdgeId E : S.BackCfgEdges)
      Iters += Run.EdgeCounts[E];
    Dyn[R].RunIterations.record(Iters);
  }
  PST_COUNTER("prof.attribute.runs", 1);
  Finalized = false;
  return true;
}

CfgExecResult RegionProfile::runAndAdd(const std::vector<int64_t> &Args,
                                       uint64_t MaxSteps) {
  CfgExecResult Run = runLowered(*F, Args, MaxSteps, /*CountEdges=*/true);
  addRun(Run);
  return Run;
}

void RegionProfile::finalize() {
  PST_SPAN("prof.attribute");
  uint32_t NR = T->numRegions();

  // Pass 1: per-region counts that need no child information.
  for (RegionId R = 0; R < NR; ++R) {
    RegionDynamics &D = Dyn[R];
    const RegionShape &S = Shapes[R];
    D.Cyclic = S.Cyclic;
    D.Kind = S.Kind;
    if (R == T->root()) {
      D.Entries = D.Exits = NumRuns;
    } else {
      D.Entries = EdgeTotal[T->region(R).EntryEdge];
      D.Exits = EdgeTotal[T->region(R).ExitEdge];
    }
    D.SelfCost = 0;
    for (NodeId N : T->immediateNodes(R))
      D.SelfCost += BlockTotal[N] * BlockCost[N];
    D.Iterations = 0;
    if (S.Cyclic) {
      D.Iterations = D.Entries;
      for (EdgeId E : S.BackCfgEdges)
        D.Iterations += EdgeTotal[E];
    }
  }

  // Pass 2, innermost regions first (depth descending, id ascending within
  // a depth): inclusive costs and the weighted-DAG span. When a region is
  // processed every deeper region already carries its InclusiveCost, so a
  // collapsed child can be priced as one serial unit.
  std::vector<RegionId> ByDepth(NR);
  std::iota(ByDepth.begin(), ByDepth.end(), 0);
  std::stable_sort(ByDepth.begin(), ByDepth.end(), [&](RegionId A, RegionId B) {
    return T->region(A).Depth > T->region(B).Depth;
  });

  for (RegionId R : ByDepth) {
    RegionDynamics &D = Dyn[R];
    const RegionShape &S = Shapes[R];
    D.InclusiveCost = D.SelfCost;
    for (RegionId C : T->children(R))
      D.InclusiveCost += Dyn[C].InclusiveCost;

    D.SpanPerEntry = 0;
    if (!D.Entries)
      continue;

    // Total weight of one quotient node across the whole workload: a block
    // contributes its dynamic instructions; a collapsed child contributes
    // its inclusive cost (serial — its own parallelism is *its* score).
    uint32_t NQ = S.Body.numNodes();
    std::vector<double> Weight(NQ, 0.0), Depth(NQ, 0.0);
    for (uint32_t Q = 0; Q < NQ; ++Q) {
      const CollapsedBody::QNode &QN = S.Body.Nodes[Q];
      Weight[Q] = QN.IsRegion
                      ? static_cast<double>(Dyn[QN.Region].InclusiveCost)
                      : static_cast<double>(BlockTotal[QN.Node] *
                                            BlockCost[QN.Node]);
    }
    // Longest path over the acyclic skeleton in topological order. The
    // per-node weights are workload totals, so the result is the total
    // critical-path length summed over all entries (for cyclic regions:
    // over all iterations) — normalizing by the corresponding count gives
    // the per-entry / per-iteration span.
    std::vector<std::vector<uint32_t>> DagPreds(NQ);
    for (auto [Src, Dst] : S.DagEdges)
      DagPreds[Dst].push_back(Src);
    double Longest = 0.0;
    for (uint32_t Q : S.Topo) {
      double Best = 0.0;
      for (uint32_t P : DagPreds[Q])
        Best = std::max(Best, Depth[P]);
      Depth[Q] = Best + Weight[Q];
      Longest = std::max(Longest, Depth[Q]);
    }
    uint64_t Normalizer = S.Cyclic ? D.Iterations : D.Entries;
    if (Normalizer)
      D.SpanPerEntry = Longest / static_cast<double>(Normalizer);
  }

  PST_COUNTER("prof.attribute.regions", NR);
  PST_VALUE("prof.attribute.work", TotalSteps);
  Finalized = true;
}

const RegionDynamics &RegionProfile::dynamics(RegionId R) const {
  assert(Finalized && "finalize() the profile before reading dynamics");
  return Dyn[R];
}
