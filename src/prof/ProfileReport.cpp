//===- ProfileReport.cpp - Profile & plan reporting -----------------------------===//
//
// Part of the PST library (see ProfileReport.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/prof/ProfileReport.h"

#include <cassert>
#include <cstdio>
#include <sstream>

using namespace pst;

namespace {

/// Fixed-format double rendering: the one code path every derived ratio
/// goes through, so equal profiles serialize to equal bytes.
std::string fmtDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

std::string escapeJson(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

/// "entry->exit" label of a region's boundary, e.g. "b1->b2, b7->b8".
std::string regionLabel(const Cfg &G, const ProgramStructureTree &T,
                        RegionId R) {
  if (R == T.root())
    return "procedure";
  const SeseRegion &Reg = T.region(R);
  std::ostringstream OS;
  OS << "region " << R << " (" << G.nodeName(G.source(Reg.EntryEdge)) << "->"
     << G.nodeName(G.target(Reg.EntryEdge)) << ", "
     << G.nodeName(G.source(Reg.ExitEdge)) << "->"
     << G.nodeName(G.target(Reg.ExitEdge)) << ")";
  return OS.str();
}

} // namespace

std::string pst::formatRegionProfile(const RegionProfile &P) {
  assert(P.finalized());
  const ProgramStructureTree &T = P.pst();
  const Cfg &G = P.function().Graph;
  std::ostringstream OS;
  OS << "profile of " << P.function().Name << ": runs=" << P.numRuns()
     << " work=" << P.totalWork() << "\n";
  std::vector<std::pair<RegionId, uint32_t>> Stack{{T.root(), 0}};
  while (!Stack.empty()) {
    auto [R, Indent] = Stack.back();
    Stack.pop_back();
    const RegionDynamics &D = P.dynamics(R);
    OS << std::string(Indent * 2, ' ') << regionLabel(G, T, R) << " "
       << regionKindName(D.Kind) << ": entries=" << D.Entries
       << " self=" << D.SelfCost << " inclusive=" << D.InclusiveCost;
    if (P.totalWork())
      OS << " coverage=" << fmtDouble(static_cast<double>(D.InclusiveCost) /
                                      static_cast<double>(P.totalWork()));
    if (D.Cyclic)
      OS << " iterations=" << D.Iterations
         << " iters/entry=" << fmtDouble(D.meanIterations());
    OS << " span/entry=" << fmtDouble(D.SpanPerEntry)
       << " selfpar=" << fmtDouble(D.selfParallelism()) << "\n";
    const auto Kids = T.children(R);
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.emplace_back(*It, Indent + 1);
  }
  return OS.str();
}

std::string pst::formatParallelismPlan(const RegionProfile &P,
                                       const ParallelismPlan &Plan) {
  const ProgramStructureTree &T = P.pst();
  const Cfg &G = P.function().Graph;
  std::ostringstream OS;
  OS << "parallelism plan for " << P.function().Name
     << ": candidates=" << Plan.CandidatesConsidered
     << " selected=" << Plan.Entries.size() << " work=" << Plan.TotalWork
     << "\n";
  if (Plan.Entries.empty()) {
    OS << "  (no profitable regions)\n";
    return OS.str();
  }
  uint32_t Rank = 1;
  for (const PlanEntry &E : Plan.Entries) {
    OS << "  #" << Rank++ << " " << regionLabel(G, T, E.Region) << " "
       << regionKindName(E.Kind) << ": coverage=" << fmtDouble(E.Coverage)
       << " selfpar=" << fmtDouble(E.SelfParallelism);
    if (E.MeanIterations > 0)
      OS << " iters/entry=" << fmtDouble(E.MeanIterations);
    OS << " benefit=" << fmtDouble(E.Benefit) << "\n";
  }
  return OS.str();
}

std::string pst::profileToJson(const RegionProfile &P,
                               const ParallelismPlan &Plan) {
  assert(P.finalized());
  const ProgramStructureTree &T = P.pst();
  const Cfg &G = P.function().Graph;
  std::ostringstream OS;
  OS << "{\"function\":\"" << escapeJson(P.function().Name) << "\""
     << ",\"runs\":" << P.numRuns() << ",\"total_work\":" << P.totalWork()
     << ",\"regions\":[";
  for (RegionId R = 0; R < T.numRegions(); ++R) {
    const RegionDynamics &D = P.dynamics(R);
    if (R)
      OS << ",";
    OS << "{\"id\":" << R << ",\"label\":\"" << escapeJson(regionLabel(G, T, R))
       << "\",\"kind\":\"" << regionKindName(D.Kind) << "\",\"parent\":";
    if (R == T.root())
      OS << -1;
    else
      OS << T.region(R).Parent;
    OS << ",\"depth\":" << T.region(R).Depth << ",\"entries\":" << D.Entries
       << ",\"exits\":" << D.Exits << ",\"self_cost\":" << D.SelfCost
       << ",\"inclusive_cost\":" << D.InclusiveCost << ",\"coverage\":"
       << fmtDouble(P.totalWork()
                        ? static_cast<double>(D.InclusiveCost) /
                              static_cast<double>(P.totalWork())
                        : 0.0)
       << ",\"cyclic\":" << (D.Cyclic ? "true" : "false")
       << ",\"iterations\":" << D.Iterations
       << ",\"iters_per_entry\":" << fmtDouble(D.meanIterations())
       << ",\"span_per_entry\":" << fmtDouble(D.SpanPerEntry)
       << ",\"self_parallelism\":" << fmtDouble(D.selfParallelism());
    if (D.RunIterations.Count)
      OS << ",\"trip_stats\":{\"runs\":" << D.RunIterations.Count
         << ",\"min\":" << D.RunIterations.Min
         << ",\"max\":" << D.RunIterations.Max
         << ",\"mean\":" << fmtDouble(D.RunIterations.mean()) << "}";
    OS << "}";
  }
  OS << "],\"plan\":{\"total_work\":" << Plan.TotalWork
     << ",\"candidates\":" << Plan.CandidatesConsidered << ",\"entries\":[";
  for (size_t I = 0; I < Plan.Entries.size(); ++I) {
    const PlanEntry &E = Plan.Entries[I];
    if (I)
      OS << ",";
    OS << "{\"rank\":" << (I + 1) << ",\"region\":" << E.Region
       << ",\"kind\":\"" << regionKindName(E.Kind) << "\",\"work\":" << E.Work
       << ",\"entries\":" << E.Entries
       << ",\"coverage\":" << fmtDouble(E.Coverage)
       << ",\"self_parallelism\":" << fmtDouble(E.SelfParallelism)
       << ",\"iters_per_entry\":" << fmtDouble(E.MeanIterations)
       << ",\"benefit\":" << fmtDouble(E.Benefit) << "}";
  }
  OS << "]}}";
  return OS.str();
}
