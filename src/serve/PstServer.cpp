//===- PstServer.cpp - Sharded snapshot analysis server -----------------------===//
//
// Part of the PST library (see PstServer.h for the reference).
//
// Query execution: every query pins its shard's current epoch, resolves
// the function to zero-copy views, computes against those views only,
// and formats one deterministic response line. Analysis-backed query
// kinds go through the per-epoch DerivedCache by default: first touch of
// a function materializes its dominator/postdominator/frontier/cdep-CSR/
// LCA bundle once, and every later query is a lookup. With the cache
// disabled (ServeOptions::DerivedCache = false) each query derives what
// it needs from the frozen views on the spot; both paths format
// byte-identical responses, which tests and time_serve gate on.
//
//===----------------------------------------------------------------------===//

#include "pst/serve/PstServer.h"

#include "pst/dom/Dominators.h"
#include "pst/obs/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace pst;
using namespace pst::serve;

namespace {

std::vector<const char *> queryProbes(uint32_t NumShards) {
  std::vector<const char *> Probes;
  Probes.reserve(NumShards);
  for (uint32_t I = 0; I < NumShards; ++I)
    Probes.push_back(
        internTelemetryName("serve.shard" + std::to_string(I) + ".query_ns"));
  return Probes;
}

void appendNode(std::string &Out, NodeId N) {
  if (N == InvalidNode)
    Out += '-';
  else
    Out += std::to_string(N);
}

/// Walks both regions to their least common ancestor: the innermost
/// region containing both nodes.
RegionId regionLca(const ProgramStructureTree &T, RegionId A, RegionId B) {
  while (T.region(A).Depth > T.region(B).Depth)
    A = T.region(A).Parent;
  while (T.region(B).Depth > T.region(A).Depth)
    B = T.region(B).Parent;
  while (A != B) {
    A = T.region(A).Parent;
    B = T.region(B).Parent;
  }
  return A;
}

void runRegion(const ResolvedFunction &F, const Request &R, QueryScratch &Sc,
               const DerivedBundle *B) {
  const ProgramStructureTree &T = F.Pst;
  RegionId RA = T.regionOfNode(R.A), RB = T.regionOfNode(R.B);
  // The O(1) Euler-tour index answers exactly what the walk answers.
  RegionId L = B ? B->Lca.lca(RA, RB) : regionLca(T, RA, RB);
  const SeseRegion &Reg = T.region(L);
  Sc.Out += "ok region fn=" + std::to_string(R.Fn) +
            " a=" + std::to_string(R.A) + " b=" + std::to_string(R.B) +
            " region=" + std::to_string(L) +
            " depth=" + std::to_string(Reg.Depth) + " entry=";
  if (Reg.EntryEdge == InvalidEdge)
    Sc.Out += '-';
  else
    Sc.Out += std::to_string(Reg.EntryEdge);
  Sc.Out += " exit=";
  if (Reg.ExitEdge == InvalidEdge)
    Sc.Out += '-';
  else
    Sc.Out += std::to_string(Reg.ExitEdge);
}

void runRegions(const ResolvedFunction &F, const Request &R, QueryScratch &Sc,
                const DerivedBundle *B) {
  const ProgramStructureTree &T = F.Pst;
  // Max depth (and the counts) are properties of the snapshot, not the
  // query; the bundle memoizes them instead of rescanning the region
  // table per request.
  uint32_t MaxDepth = 0;
  if (B) {
    MaxDepth = B->MaxDepth;
  } else {
    for (RegionId I = 0; I < T.numRegions(); ++I)
      MaxDepth = std::max(MaxDepth, T.region(I).Depth);
  }
  uint32_t Count = B ? B->NumRegions : T.numRegions();
  uint32_t Canonical = B ? B->NumCanonicalRegions : T.numCanonicalRegions();
  Sc.Out += "ok regions fn=" + std::to_string(R.Fn) +
            " count=" + std::to_string(Count) +
            " canonical=" + std::to_string(Canonical) +
            " maxdepth=" + std::to_string(MaxDepth);
}

void runCdep(const ResolvedFunction &F, const Request &R, QueryScratch &Sc,
             const DerivedBundle *B) {
  // Classic control dependence via postdominators (Ferrante/Ottenstein/
  // Warren): node N is control dependent on edge (C, M) iff N
  // postdominates M and does not strictly postdominate C. The bundle's
  // CSR holds the whole relation with each slice ascending by edge id —
  // the same set, in the same order, as this scan (ControlDependenceCsr.h
  // spells out the equivalence).
  Sc.Edges.clear();
  if (B) {
    std::span<const EdgeId> Slice = B->Cdep.controllingEdges(R.A);
    Sc.Edges.assign(Slice.begin(), Slice.end());
  } else {
    DomTree Pdt = DomTree::buildPostDom(F.View);
    for (EdgeId E = 0; E < F.View.numEdges(); ++E) {
      NodeId C = F.View.source(E), M = F.View.target(E);
      if (Pdt.dominates(R.A, M) && !(R.A != C && Pdt.dominates(R.A, C)))
        Sc.Edges.push_back(E);
    }
  }
  Sc.Out += "ok cdep fn=" + std::to_string(R.Fn) +
            " node=" + std::to_string(R.A) + " edges=[";
  for (size_t I = 0; I < Sc.Edges.size(); ++I) {
    if (I)
      Sc.Out += ',';
    EdgeId E = Sc.Edges[I];
    Sc.Out += std::to_string(E) + ":" + std::to_string(F.View.source(E)) +
              "->" + std::to_string(F.View.target(E));
  }
  Sc.Out += ']';
}

void runDom(const ResolvedFunction &F, const Request &R, QueryScratch &Sc,
            const DerivedBundle *B) {
  NodeId Idom;
  if (B) {
    Idom = B->Dom.idom(R.A);
  } else {
    DomTree Dt = DomTree::buildIterative(F.View);
    Idom = Dt.idom(R.A);
  }
  Sc.Out += "ok dom fn=" + std::to_string(R.Fn) +
            " node=" + std::to_string(R.A) + " idom=";
  appendNode(Sc.Out, Idom);
}

void runPhi(const ResolvedFunction &F, const Request &R, QueryScratch &Sc,
            const DerivedBundle *B) {
  Sc.Defs.assign(R.Defs.begin(), R.Defs.end());
  std::vector<NodeId> Blocks;
  if (B) {
    Blocks = B->Df.iterated(Sc.Defs);
  } else {
    DomTree Dt = DomTree::buildIterative(F.View);
    DominanceFrontiers Df(F.View, Dt);
    Blocks = Df.iterated(Sc.Defs);
  }
  std::sort(Blocks.begin(), Blocks.end());
  Sc.Out += "ok phi fn=" + std::to_string(R.Fn) + " defs=[";
  for (size_t I = 0; I < R.Defs.size(); ++I) {
    if (I)
      Sc.Out += ',';
    Sc.Out += std::to_string(R.Defs[I]);
  }
  Sc.Out += "] blocks=[";
  for (size_t I = 0; I < Blocks.size(); ++I) {
    if (I)
      Sc.Out += ',';
    Sc.Out += std::to_string(Blocks[I]);
  }
  Sc.Out += ']';
}

} // namespace

PstServer::PstServer(CorpusImage Image, ServeOptions Options)
    : Img(std::move(Image)), Opts(Options),
      Pool(Options.NumThreads) {
  assert(Img.valid() && "serving an invalid image");
  if (Opts.NumShards == 0)
    Opts.NumShards = 1;
  Shards.reserve(Opts.NumShards);
  for (uint32_t I = 0; I < Opts.NumShards; ++I)
    Shards.push_back(
        std::make_unique<Shard>(Img, I, Opts.NumShards, Opts.EpochCapacity));
  Scratches.resize(Pool.numWorkers());
  ShardQueryProbes = queryProbes(Opts.NumShards);
  if (Opts.DerivedCache)
    Cache = std::make_unique<class DerivedCache>(Img.numFunctions());
}

std::unique_ptr<PstServer> PstServer::open(const std::string &Path,
                                           ServeOptions Opts,
                                           std::string *Error) {
  CorpusImage Img = CorpusImage::map(Path, Error);
  if (!Img.valid())
    return nullptr;
  return std::make_unique<PstServer>(std::move(Img), Opts);
}

namespace {

std::string runQuery(const PstServer &S, const Request &R, QueryScratch &Sc,
                     const std::vector<const char *> &ShardQueryProbes) {
  Sc.Out.clear();
  if (R.Kind == RequestKind::Invalid) {
    Sc.Out = "err " + (R.Error.empty() ? "invalid request" : R.Error);
    return Sc.Out;
  }
  if (R.Fn >= S.numFunctions()) {
    Sc.Out = "err fn " + std::to_string(R.Fn) + " out of range (corpus has " +
             std::to_string(S.numFunctions()) + " functions)";
    return Sc.Out;
  }
  auto Start = std::chrono::steady_clock::now();
  const Shard &Sh = S.shardOf(R.Fn);
  auto Pin = Sh.pin();
  uint64_t Lag = Sh.currentVersion() - Pin.version();
  ResolvedFunction F = Sh.resolve(*Pin, R.Fn);

  // Node-argument validation against the *resolved* graph (edits may
  // have grown it past the base image's node count).
  auto NodeOk = [&](NodeId N) { return N < F.View.numNodes(); };

  // Analysis-backed kinds share the function's derived bundle: overlay
  // functions carry their slot in the snapshot (so it retires with the
  // epoch), base-image functions use the server-lifetime cache. Name
  // lookups and error paths never touch (or build) a bundle.
  auto Bundle = [&]() -> const DerivedBundle * {
    if (!S.derivedCache())
      return nullptr;
    const DerivedSlot &Slot =
        F.Snap ? F.Snap->derivedSlot() : S.derivedCache()->slot(R.Fn);
    return &Slot.get(F.View, F.Pst, S.cacheCounters());
  };

  switch (R.Kind) {
  case RequestKind::Region:
    if (!NodeOk(R.A) || !NodeOk(R.B)) {
      Sc.Out = "err node out of range";
      return Sc.Out;
    }
    runRegion(F, R, Sc, Bundle());
    break;
  case RequestKind::Regions:
    runRegions(F, R, Sc, Bundle());
    break;
  case RequestKind::Cdep:
    if (!NodeOk(R.A)) {
      Sc.Out = "err node out of range";
      return Sc.Out;
    }
    runCdep(F, R, Sc, Bundle());
    break;
  case RequestKind::Dom:
    if (!NodeOk(R.A)) {
      Sc.Out = "err node out of range";
      return Sc.Out;
    }
    runDom(F, R, Sc, Bundle());
    break;
  case RequestKind::Phi:
    for (NodeId D : R.Defs)
      if (!NodeOk(D)) {
        Sc.Out = "err node out of range";
        return Sc.Out;
      }
    runPhi(F, R, Sc, Bundle());
    break;
  case RequestKind::Name:
    Sc.Out = "ok name fn=" + std::to_string(R.Fn) + " " + std::string(F.Name);
    break;
  case RequestKind::Invalid:
    break; // Handled above.
  }

  uint64_t DurNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  PST_COUNTER("serve.queries", 1);
  PST_VALUE("serve.query_ns", DurNs);
  PST_VALUE(ShardQueryProbes[Sh.index()], DurNs);
  PST_VALUE("serve.epoch_lag", Lag);
  return Sc.Out;
}

} // namespace

std::string PstServer::execute(const Request &R) {
  return runQuery(*this, R, Scratches[0], ShardQueryProbes);
}

std::string PstServer::execute(const Request &R, QueryScratch &Sc) const {
  return runQuery(*this, R, Sc, ShardQueryProbes);
}

void PstServer::executeBatch(std::span<const Request> Batch,
                             std::vector<std::string> &Responses) {
  Responses.clear();
  Responses.resize(Batch.size());
  // Small chunks: queries are independent and latency-heterogeneous
  // (cdep builds a postdominator tree, name is a table lookup).
  Pool.run(Batch.size(), /*ChunkSize=*/4,
           [&](size_t Begin, size_t End, unsigned Worker) {
             for (size_t I = Begin; I < End; ++I)
               Responses[I] = runQuery(*this, Batch[I], Scratches[Worker],
                                       ShardQueryProbes);
           });
}
