//===- Snapshot.cpp - Frozen per-function snapshots ---------------------------===//
//
// Part of the PST library (see Snapshot.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/serve/Snapshot.h"

#include <cstring>

using namespace pst;
using namespace pst::serve;

std::shared_ptr<const FunctionSnapshot>
FunctionSnapshot::freeze(const Cfg &G, std::string_view Name) {
  const Cfg *Fns[1] = {&G};
  std::string Names[1] = {std::string(Name)};
  std::vector<uint8_t> Bytes = buildCorpusImage(Fns, Names);

  // Private constructor: build in place, then hand out as shared const.
  auto S = std::shared_ptr<FunctionSnapshot>(new FunctionSnapshot());
  std::string Error;
  S->Img = CorpusImage::fromBytes(std::move(Bytes), &Error);
  // The bytes came straight from the builder; a mapping failure here is a
  // builder/format bug, not an input condition.
  if (!S->Img.valid())
    return nullptr;
  // The adopted view and tree alias Img's (heap-owned, stable) bytes;
  // both live exactly as long as this snapshot.
  S->View = S->Img.cfg(0);
  S->Tree = S->Img.pst(0);
  return S;
}

bool pst::serve::snapshotMatchesFromScratch(const FunctionSnapshot &S,
                                            const Cfg &Current,
                                            std::string *Why) {
  const Cfg *Fns[1] = {&Current};
  std::string Names[1] = {std::string(S.name())};
  std::vector<uint8_t> Fresh = buildCorpusImage(Fns, Names);
  std::span<const uint8_t> Have = S.imageBytes();
  if (Fresh.size() != Have.size()) {
    if (Why)
      *Why = "snapshot image size " + std::to_string(Have.size()) +
             " != from-scratch size " + std::to_string(Fresh.size());
    return false;
  }
  if (std::memcmp(Fresh.data(), Have.data(), Fresh.size()) != 0) {
    size_t At = 0;
    while (At < Fresh.size() && Fresh[At] == Have[At])
      ++At;
    if (Why)
      *Why = "snapshot image bytes diverge from from-scratch rebuild at "
             "offset " +
             std::to_string(At);
    return false;
  }
  return true;
}
