//===- Protocol.cpp - Line-oriented serving protocol --------------------------===//
//
// Part of the PST library (see Protocol.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/serve/Protocol.h"

#include <istream>
#include <ostream>
#include <sstream>

using namespace pst;
using namespace pst::serve;

namespace {

/// Splits on runs of spaces/tabs.
std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Toks;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Start)
      Toks.push_back(Line.substr(Start, I - Start));
  }
  return Toks;
}

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  Out = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    Out = Out * 10 + static_cast<uint64_t>(C - '0');
  }
  return true;
}

bool parseNode(std::string_view S, NodeId &Out) {
  uint64_t V = 0;
  if (!parseU64(S, V) || V >= InvalidNode)
    return false;
  Out = static_cast<NodeId>(V);
  return true;
}

ParsedLine invalid(std::string Msg) {
  ParsedLine L;
  L.Kind = ParsedLine::Type::Query;
  L.Q.Kind = RequestKind::Invalid;
  L.Q.Error = std::move(Msg);
  return L;
}

} // namespace

ParsedLine pst::serve::parseLine(std::string_view Line) {
  ParsedLine L;
  std::vector<std::string_view> T = tokenize(Line);
  if (T.empty() || T[0].front() == '#') {
    L.Kind = ParsedLine::Type::Empty;
    return L;
  }
  std::string_view Cmd = T[0];

  auto NeedArgs = [&](size_t N) { return T.size() == N + 1; };

  if (Cmd == "region" || Cmd == "regions" || Cmd == "cdep" || Cmd == "dom" ||
      Cmd == "phi" || Cmd == "name") {
    L.Kind = ParsedLine::Type::Query;
    if (T.size() < 2 || !parseU64(T[1], L.Q.Fn))
      return invalid("usage: " + std::string(Cmd) + " <fn> ...");
    if (Cmd == "region") {
      if (!NeedArgs(3) || !parseNode(T[2], L.Q.A) || !parseNode(T[3], L.Q.B))
        return invalid("usage: region <fn> <a> <b>");
      L.Q.Kind = RequestKind::Region;
    } else if (Cmd == "regions") {
      if (!NeedArgs(1))
        return invalid("usage: regions <fn>");
      L.Q.Kind = RequestKind::Regions;
    } else if (Cmd == "cdep") {
      if (!NeedArgs(2) || !parseNode(T[2], L.Q.A))
        return invalid("usage: cdep <fn> <node>");
      L.Q.Kind = RequestKind::Cdep;
    } else if (Cmd == "dom") {
      if (!NeedArgs(2) || !parseNode(T[2], L.Q.A))
        return invalid("usage: dom <fn> <node>");
      L.Q.Kind = RequestKind::Dom;
    } else if (Cmd == "phi") {
      if (!NeedArgs(2))
        return invalid("usage: phi <fn> <n1,n2,...>");
      std::string_view Defs = T[2];
      while (!Defs.empty()) {
        size_t Comma = Defs.find(',');
        std::string_view Tok = Defs.substr(0, Comma);
        NodeId N = InvalidNode;
        if (!parseNode(Tok, N))
          return invalid("phi: bad def list");
        L.Q.Defs.push_back(N);
        if (Comma == std::string_view::npos)
          break;
        Defs.remove_prefix(Comma + 1);
      }
      if (L.Q.Defs.empty())
        return invalid("phi: bad def list");
      L.Q.Kind = RequestKind::Phi;
    } else { // name
      if (!NeedArgs(1))
        return invalid("usage: name <fn>");
      L.Q.Kind = RequestKind::Name;
    }
    return L;
  }

  if (Cmd == "edit") {
    if (T.size() != 5 || !parseU64(T[1], L.Fn) || !parseNode(T[3], L.Src) ||
        !parseNode(T[4], L.Dst))
      return invalid("usage: edit <fn> insert|delete|split|addblock <src> "
                     "<dst>");
    std::string_view Op = T[2];
    if (Op == "insert")
      L.Op = ParsedLine::EditOp::Insert;
    else if (Op == "delete")
      L.Op = ParsedLine::EditOp::Delete;
    else if (Op == "split")
      L.Op = ParsedLine::EditOp::Split;
    else if (Op == "addblock")
      L.Op = ParsedLine::EditOp::AddBlock;
    else
      return invalid("edit: unknown op \"" + std::string(Op) + "\"");
    L.Kind = ParsedLine::Type::Edit;
    return L;
  }

  if (T.size() == 1) {
    if (Cmd == "commit") {
      L.Kind = ParsedLine::Type::Commit;
      return L;
    }
    if (Cmd == "verify") {
      L.Kind = ParsedLine::Type::Verify;
      return L;
    }
    if (Cmd == "epoch") {
      L.Kind = ParsedLine::Type::Epoch;
      return L;
    }
    if (Cmd == "stats") {
      L.Kind = ParsedLine::Type::Stats;
      return L;
    }
    if (Cmd == "quit") {
      L.Kind = ParsedLine::Type::Quit;
      return L;
    }
  }
  return invalid("unknown command \"" + std::string(Cmd) + "\"");
}

void ServerSession::flush(std::ostream &Out) {
  if (Pending.empty())
    return;
  std::vector<std::string> Responses;
  Server.executeBatch(Pending, Responses);
  for (const std::string &R : Responses)
    Out << R << '\n';
  Pending.clear();
}

std::string ServerSession::runBarrier(const ParsedLine &L) {
  switch (L.Kind) {
  case ParsedLine::Type::Edit: {
    if (L.Fn >= Server.numFunctions())
      return "err fn " + std::to_string(L.Fn) + " out of range (corpus has " +
             std::to_string(Server.numFunctions()) + " functions)";
    Shard &Sh = Server.shardOf(L.Fn);
    std::string Arrow =
        std::to_string(L.Src) + "->" + std::to_string(L.Dst);
    switch (L.Op) {
    case ParsedLine::EditOp::Insert: {
      EdgeId E = Sh.insertEdge(L.Fn, L.Src, L.Dst);
      if (E == InvalidEdge)
        return "err edit fn=" + std::to_string(L.Fn) + " insert " + Arrow +
               " rejected";
      return "ok edit fn=" + std::to_string(L.Fn) + " insert " + Arrow +
             " edge=" + std::to_string(E);
    }
    case ParsedLine::EditOp::Delete:
      if (!Sh.deleteEdge(L.Fn, L.Src, L.Dst))
        return "err edit fn=" + std::to_string(L.Fn) + " delete " + Arrow +
               " rejected";
      return "ok edit fn=" + std::to_string(L.Fn) + " delete " + Arrow;
    case ParsedLine::EditOp::Split: {
      NodeId N = Sh.splitBlock(L.Fn, L.Src, L.Dst);
      if (N == InvalidNode)
        return "err edit fn=" + std::to_string(L.Fn) + " split " + Arrow +
               " rejected";
      return "ok edit fn=" + std::to_string(L.Fn) + " split " + Arrow +
             " node=" + std::to_string(N);
    }
    case ParsedLine::EditOp::AddBlock: {
      NodeId N = Sh.addBlock(L.Fn, L.Src, L.Dst);
      if (N == InvalidNode)
        return "err edit fn=" + std::to_string(L.Fn) + " addblock " + Arrow +
               " rejected";
      return "ok edit fn=" + std::to_string(L.Fn) + " addblock " + Arrow +
             " node=" + std::to_string(N);
    }
    }
    return "err edit: unreachable";
  }
  case ParsedLine::Type::Commit: {
    std::string Versions;
    for (uint32_t I = 0; I < Server.numShards(); ++I) {
      uint64_t V = Server.shard(I).commit();
      if (I)
        Versions += ',';
      Versions += std::to_string(V);
    }
    return "ok commit versions=[" + Versions + "]";
  }
  case ParsedLine::Type::Verify: {
    for (uint32_t I = 0; I < Server.numShards(); ++I) {
      std::string Why;
      if (!Server.shard(I).verifyPublished(&Why))
        return "err verify shard " + std::to_string(I) + ": " + Why;
    }
    return "ok verify shards=" + std::to_string(Server.numShards()) +
           " identical";
  }
  case ParsedLine::Type::Epoch: {
    std::string Versions, Pending;
    for (uint32_t I = 0; I < Server.numShards(); ++I) {
      if (I) {
        Versions += ',';
        Pending += ',';
      }
      Versions += std::to_string(Server.shard(I).currentVersion());
      Pending += std::to_string(Server.shard(I).pendingFunctions());
    }
    return "ok epoch versions=[" + Versions + "] pending=[" + Pending + "]";
  }
  case ParsedLine::Type::Stats: {
    ShardStats Total;
    for (uint32_t I = 0; I < Server.numShards(); ++I) {
      ShardStats S = Server.shard(I).stats();
      Total.Edits += S.Edits;
      Total.EditsRejected += S.EditsRejected;
      Total.Commits += S.Commits;
      Total.Refrozen += S.Refrozen;
      Total.Published += S.Published;
      Total.Reclaimed += S.Reclaimed;
    }
    return "ok stats edits=" + std::to_string(Total.Edits) +
           " rejected=" + std::to_string(Total.EditsRejected) +
           " commits=" + std::to_string(Total.Commits) +
           " refrozen=" + std::to_string(Total.Refrozen) +
           " published=" + std::to_string(Total.Published) +
           " reclaimed=" + std::to_string(Total.Reclaimed);
  }
  case ParsedLine::Type::Quit:
    return "ok bye";
  case ParsedLine::Type::Query:
  case ParsedLine::Type::Empty:
    break;
  }
  return "err internal: not a barrier command";
}

void ServerSession::run(std::istream &In, std::ostream &Out) {
  std::string Line;
  while (std::getline(In, Line)) {
    ParsedLine L = parseLine(Line);
    switch (L.Kind) {
    case ParsedLine::Type::Empty:
      continue;
    case ParsedLine::Type::Query:
      Pending.push_back(std::move(L.Q));
      if (Pending.size() >= MaxBatch)
        flush(Out);
      break;
    case ParsedLine::Type::Quit:
      flush(Out);
      Out << runBarrier(L) << '\n';
      Out.flush();
      return;
    default:
      flush(Out);
      Out << runBarrier(L) << '\n';
      break;
    }
    // Interactive clients expect responses promptly; flushing the stream
    // (not the batch) after barriers keeps pipes usable. Batched reads
    // flush at barriers/EOF/cap only, keeping transcripts deterministic.
    if (L.Kind != ParsedLine::Type::Query)
      Out.flush();
  }
  flush(Out);
  Out.flush();
}
