//===- Shard.cpp - One shard's writer + epoch table ---------------------------===//
//
// Part of the PST library (see Shard.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/serve/Shard.h"

#include "pst/obs/ScopedTimer.h"
#include "pst/obs/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>

using namespace pst;
using namespace pst::serve;

const FunctionSnapshot *ShardEpoch::find(uint64_t Fn) const {
  auto It = std::lower_bound(
      Overlay.begin(), Overlay.end(), Fn,
      [](const auto &Entry, uint64_t Key) { return Entry.first < Key; });
  if (It == Overlay.end() || It->first != Fn)
    return nullptr;
  return It->second.get();
}

Shard::Shard(const CorpusImage &Base, uint32_t Index, uint32_t NumShards,
             uint32_t EpochCapacity)
    : Base(Base), Index(Index), NumShards(NumShards), Epochs(EpochCapacity),
      ProbeCommitNs(internTelemetryName("serve.shard" + std::to_string(Index) +
                                        ".commit_ns")),
      ProbeRefrozen(internTelemetryName("serve.shard" + std::to_string(Index) +
                                        ".refrozen")) {
  assert(NumShards > 0 && Index < NumShards && "bad shard routing");
  // Epoch 0: the pristine base image. Published before any reader can
  // exist, so pin() never spins on an empty table.
  auto E = std::make_unique<ShardEpoch>();
  E->Version = 0;
  Epochs.publish(std::move(E), 0);
  NextVersion = 1;
}

ResolvedFunction Shard::resolve(const ShardEpoch &E, uint64_t Fn) const {
  assert(owns(Fn) && "function routed to the wrong shard");
  ResolvedFunction Out;
  if (const FunctionSnapshot *S = E.find(Fn)) {
    Out.View = S->cfg();
    Out.Pst = S->pst();
    Out.Name = S->name();
    Out.FromOverlay = true;
    Out.Snap = S;
  } else {
    Out.View = Base.cfg(Fn);
    Out.Pst = Base.pst(Fn);
    Out.Name = Base.functionName(Fn);
  }
  return Out;
}

Shard::FunctionWriter &Shard::writer(uint64_t Fn) {
  assert(owns(Fn) && Fn < Base.numFunctions());
  auto It = Writers.find(Fn);
  if (It != Writers.end())
    return It->second;
  // First edit on this function: materialize the base image's graph
  // (node/edge ids carry over exactly) and run the initial full build.
  FunctionWriter W;
  W.Name = std::string(Base.functionName(Fn));
  W.Graph = std::make_unique<DynamicCfg>(Base.materializeCfg(Fn));
  W.Inc = std::make_unique<IncrementalPst>(*W.Graph);
  return Writers.emplace(Fn, std::move(W)).first->second;
}

EdgeId Shard::findLiveEdge(const FunctionWriter &W, NodeId Src,
                           NodeId Dst) const {
  const Cfg &G = W.Graph->graph();
  if (Src >= G.numNodes() || Dst >= G.numNodes())
    return InvalidEdge;
  for (EdgeId E : G.node(Src).Succs)
    if (W.Graph->edgeLive(E) && G.target(E) == Dst)
      return E;
  return InvalidEdge;
}

EdgeId Shard::insertEdge(uint64_t Fn, NodeId Src, NodeId Dst) {
  FunctionWriter &W = writer(Fn);
  if (Src >= W.Graph->numNodes() || Dst >= W.Graph->numNodes()) {
    ++EditsRejected;
    return InvalidEdge;
  }
  EdgeId E = W.Inc->insertEdge(Src, Dst);
  if (E == InvalidEdge) {
    ++EditsRejected;
    return InvalidEdge;
  }
  W.Dirty = true;
  ++Edits;
  PST_COUNTER("serve.edits", 1);
  return E;
}

bool Shard::deleteEdge(uint64_t Fn, NodeId Src, NodeId Dst) {
  FunctionWriter &W = writer(Fn);
  EdgeId E = findLiveEdge(W, Src, Dst);
  if (E == InvalidEdge || !W.Inc->deleteEdge(E)) {
    ++EditsRejected;
    return false;
  }
  W.Dirty = true;
  ++Edits;
  PST_COUNTER("serve.edits", 1);
  return true;
}

NodeId Shard::splitBlock(uint64_t Fn, NodeId Src, NodeId Dst) {
  FunctionWriter &W = writer(Fn);
  EdgeId E = findLiveEdge(W, Src, Dst);
  if (E == InvalidEdge) {
    ++EditsRejected;
    return InvalidNode;
  }
  NodeId N = W.Inc->splitBlock(E);
  if (N == InvalidNode) {
    ++EditsRejected;
    return InvalidNode;
  }
  W.Dirty = true;
  ++Edits;
  PST_COUNTER("serve.edits", 1);
  return N;
}

NodeId Shard::addBlock(uint64_t Fn, NodeId Src, NodeId Dst) {
  FunctionWriter &W = writer(Fn);
  if (Src >= W.Graph->numNodes() || Dst >= W.Graph->numNodes()) {
    ++EditsRejected;
    return InvalidNode;
  }
  NodeId N = W.Inc->addBlock(Src, Dst);
  if (N == InvalidNode) {
    ++EditsRejected;
    return InvalidNode;
  }
  W.Dirty = true;
  ++Edits;
  PST_COUNTER("serve.edits", 1);
  return N;
}

uint32_t Shard::pendingFunctions() const {
  uint32_t N = 0;
  for (const auto &[Fn, W] : Writers)
    if (W.Dirty)
      ++N;
  return N;
}

uint64_t Shard::commit() {
  PST_SPAN("serve.commit");
  auto Start = std::chrono::steady_clock::now();
  bool Any = false;
  for (auto &[Fn, W] : Writers) {
    if (!W.Dirty)
      continue;
    // Fold the journal into the incremental tree (dirty-region rebuild;
    // this is where edit-time validation and reprocess stats live), then
    // refreeze the function from its materialized graph so the published
    // snapshot is bit-equal to a from-scratch freeze (see Shard.h).
    W.Inc->commit();
    auto Snap = FunctionSnapshot::freeze(W.Graph->materialize(), W.Name);
    assert(Snap && "refreeze of a validated graph cannot fail");
    auto It = std::lower_bound(
        WorkingOverlay.begin(), WorkingOverlay.end(), Fn,
        [](const auto &Entry, uint64_t Key) { return Entry.first < Key; });
    if (It != WorkingOverlay.end() && It->first == Fn)
      It->second = std::move(Snap);
    else
      WorkingOverlay.insert(It, {Fn, std::move(Snap)});
    W.Dirty = false;
    ++Refrozen;
    PST_COUNTER("serve.functions_refrozen", 1);
    PST_COUNTER(ProbeRefrozen, 1);
    Any = true;
  }
  if (!Any)
    return Epochs.currentVersion();
  auto E = std::make_unique<ShardEpoch>();
  E->Version = NextVersion;
  E->Overlay = WorkingOverlay;
  uint64_t V = NextVersion++;
  Epochs.publish(std::move(E), V);
  ++Commits;
  PST_COUNTER("serve.commits", 1);
  uint64_t DurNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  PST_VALUE("serve.commit_ns", DurNs);
  PST_VALUE(ProbeCommitNs, DurNs);
  return V;
}

bool Shard::verifyPublished(std::string *Why) const {
  auto Pinned = Epochs.pin();
  for (const auto &[Fn, Snap] : Pinned->Overlay) {
    auto It = Writers.find(Fn);
    if (It == Writers.end()) {
      if (Why)
        *Why = "overlaid function " + std::to_string(Fn) +
               " has no writer state";
      return false;
    }
    if (It->second.Dirty) {
      if (Why)
        *Why = "function " + std::to_string(Fn) +
               " has journaled edits not yet committed; the invariant is "
               "defined at commit points";
      return false;
    }
    std::string Inner;
    if (!snapshotMatchesFromScratch(*Snap, It->second.Graph->materialize(),
                                    &Inner)) {
      if (Why)
        *Why = "function " + std::to_string(Fn) + ": " + Inner;
      return false;
    }
    // Belt and braces: the incremental tree must also agree structurally
    // with a from-scratch build of its own graph.
    if (!It->second.Inc->equalsFromScratch(&Inner)) {
      if (Why)
        *Why = "function " + std::to_string(Fn) +
               ": incremental tree diverged: " + Inner;
      return false;
    }
  }
  return true;
}

Cfg Shard::writerGraph(uint64_t Fn) const {
  auto It = Writers.find(Fn);
  if (It == Writers.end())
    return Base.materializeCfg(Fn);
  return It->second.Graph->materialize();
}

const IncrementalPstStats *Shard::writerStats(uint64_t Fn) const {
  auto It = Writers.find(Fn);
  return It == Writers.end() ? nullptr : &It->second.Inc->stats();
}

ShardStats Shard::stats() const {
  ShardStats S;
  S.Edits = Edits;
  S.EditsRejected = EditsRejected;
  S.Commits = Commits;
  S.Refrozen = Refrozen;
  S.Published = Epochs.publishCount();
  S.Reclaimed = Epochs.reclaimCount();
  return S;
}
