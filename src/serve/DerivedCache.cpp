//===- DerivedCache.cpp - Per-epoch derived analyses ----------------------===//
//
// Part of the PST library (see DerivedCache.h for the reference).
//
// The once-init protocol (DESIGN.md §15):
//
//   load(acquire)
//     ready   -> use it (hit)
//     null    -> CAS(null -> sentinel, acq_rel); winner builds, publishes
//                with store(release) + notify_all
//     sentinel-> atomic wait on the sentinel value, then reload
//
// The release store publishing the bundle pairs with every acquire load
// that observes it, so readers see a fully constructed bundle. The CAS
// claims exclusively, so at most one build runs per slot ever; the
// sentinel wait is per-slot, so nobody waits for a different function.
//
//===----------------------------------------------------------------------===//

#include "pst/serve/DerivedCache.h"

#include "pst/obs/Telemetry.h"

#include <chrono>

using namespace pst;
using namespace pst::serve;

const DerivedBundle *DerivedSlot::buildingSentinel() {
  // Any non-null pointer that can never be a real bundle address works;
  // the static's address is stable and never dereferenced as a bundle.
  static const char Tag = 0;
  return reinterpret_cast<const DerivedBundle *>(&Tag);
}

DerivedSlot::~DerivedSlot() {
  const DerivedBundle *P = Ptr.load(std::memory_order_acquire);
  // No build can be in flight at destruction (slots die with their
  // snapshot at quiescence, or with the server), so sentinel here would
  // be a lifetime bug upstream.
  if (P && P != buildingSentinel())
    delete P;
}

const DerivedBundle *DerivedSlot::ready() const {
  const DerivedBundle *P = Ptr.load(std::memory_order_acquire);
  return (P && P != buildingSentinel()) ? P : nullptr;
}

const DerivedBundle &DerivedSlot::get(const CfgView &V,
                                      const ProgramStructureTree &T,
                                      DerivedCacheCounters &C) const {
  const DerivedBundle *Sentinel = buildingSentinel();
  const DerivedBundle *P = Ptr.load(std::memory_order_acquire);
  if (P && P != Sentinel) {
    C.recordHit();
    PST_COUNTER("serve.cache.hits", 1);
    return *P;
  }
  for (;;) {
    if (P == nullptr) {
      if (Ptr.compare_exchange_strong(P, Sentinel, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        auto Start = std::chrono::steady_clock::now();
        const DerivedBundle *B = new DerivedBundle(V, T);
        uint64_t Ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - Start)
                .count());
        Ptr.store(B, std::memory_order_release);
        Ptr.notify_all();
        C.recordBuild(Ns, B->Bytes);
        PST_COUNTER("serve.cache.builds", 1);
        PST_VALUE("serve.cache.build_ns", Ns);
        PST_VALUE("serve.cache.bundle_bytes", B->Bytes);
        return *B;
      }
      // CAS failure reloaded P; fall through and reexamine.
      continue;
    }
    if (P == Sentinel) {
      C.recordWait();
      PST_COUNTER("serve.cache.waits", 1);
      Ptr.wait(Sentinel, std::memory_order_acquire);
      P = Ptr.load(std::memory_order_acquire);
      continue;
    }
    C.recordHit();
    PST_COUNTER("serve.cache.hits", 1);
    return *P;
  }
}

size_t DerivedCache::bytesReady() const {
  size_t B = 0;
  for (uint64_t I = 0; I < NumSlots; ++I)
    if (const DerivedBundle *P = Slots[I].ready())
      B += P->Bytes;
  return B;
}
