//===- graph/CfgView.cpp - Frozen CSR adjacency snapshot ------------------===//
//
// Part of the PST library (see Cfg.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/graph/CfgView.h"

namespace pst {

CfgView CfgView::build(const Cfg &G, CfgViewScratch &S) {
  const uint32_t N = G.numNodes();
  const uint32_t E = G.numEdges();

  // Offset arrays carry one extra leading slot (size N+2) so the scatter
  // pass can bump Off[v+1] as a cursor: after counting into Off[v+2] and
  // prefix-summing, Off[v+1] is the start of v's segment; after scattering
  // with Off[v+1]++ it has advanced to the start of v+1's segment, leaving
  // Off[0..N] exactly the final offsets. No separate cursor array.
  S.SuccOff.assign(N + 2, 0);
  S.PredOff.assign(N + 2, 0);
  S.SuccEdge.resize(E);
  S.SuccTo.resize(E);
  S.PredEdge.resize(E);
  S.PredFrom.resize(E);
  S.EdgeSrc.resize(E);
  S.EdgeDst.resize(E);

  for (EdgeId Id = 0; Id < E; ++Id) {
    const Cfg::Edge &Ed = G.edge(Id);
    S.EdgeSrc[Id] = Ed.Src;
    S.EdgeDst[Id] = Ed.Dst;
    ++S.SuccOff[Ed.Src + 2];
    ++S.PredOff[Ed.Dst + 2];
  }
  for (uint32_t V = 0; V + 1 <= N; ++V) {
    S.SuccOff[V + 2] += S.SuccOff[V + 1];
    S.PredOff[V + 2] += S.PredOff[V + 1];
  }
  for (EdgeId Id = 0; Id < E; ++Id) {
    uint32_t P = S.SuccOff[S.EdgeSrc[Id] + 1]++;
    S.SuccEdge[P] = Id;
    S.SuccTo[P] = S.EdgeDst[Id];
    uint32_t Q = S.PredOff[S.EdgeDst[Id] + 1]++;
    S.PredEdge[Q] = Id;
    S.PredFrom[Q] = S.EdgeSrc[Id];
  }

  CfgView V;
  V.N = N;
  V.E = E;
  V.EntryNode = G.entry();
  V.ExitNode = G.exit();
  V.SuccOffP = S.SuccOff.data();
  V.PredOffP = S.PredOff.data();
  V.SuccEdgeP = S.SuccEdge.data();
  V.SuccToP = S.SuccTo.data();
  V.PredEdgeP = S.PredEdge.data();
  V.PredFromP = S.PredFrom.data();
  V.EdgeSrcP = S.EdgeSrc.data();
  V.EdgeDstP = S.EdgeDst.data();
  return V;
}

CfgView CfgView::adopt(uint32_t N, uint32_t E, NodeId Entry, NodeId Exit,
                       const uint32_t *SuccOff, const uint32_t *PredOff,
                       const EdgeId *SuccEdge, const NodeId *SuccTo,
                       const EdgeId *PredEdge, const NodeId *PredFrom,
                       const NodeId *EdgeSrc, const NodeId *EdgeDst) {
  CfgView V;
  V.N = N;
  V.E = E;
  V.EntryNode = Entry;
  V.ExitNode = Exit;
  V.SuccOffP = SuccOff;
  V.PredOffP = PredOff;
  V.SuccEdgeP = SuccEdge;
  V.SuccToP = SuccTo;
  V.PredEdgeP = PredEdge;
  V.PredFromP = PredFrom;
  V.EdgeSrcP = EdgeSrc;
  V.EdgeDstP = EdgeDst;
  return V;
}

} // namespace pst
