//===- CfgIO.cpp - CFG (de)serialization -----------------------------------===//
//
// Part of the PST library (see Cfg.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/graph/CfgIO.h"

#include <map>
#include <ostream>
#include <sstream>

using namespace pst;

void pst::printDot(const Cfg &G, std::ostream &OS, const std::string &Name) {
  OS << "digraph " << Name << " {\n";
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    OS << "  n" << N << " [label=\"" << G.nodeName(N) << "\"";
    if (N == G.entry())
      OS << ", shape=house";
    else if (N == G.exit())
      OS << ", shape=invhouse";
    OS << "];\n";
  }
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    OS << "  n" << G.source(E) << " -> n" << G.target(E) << " [label=\"e" << E
       << "\"];\n";
  OS << "}\n";
}

void pst::printCfgText(const Cfg &G, std::ostream &OS,
                       const std::string &Name) {
  OS << "cfg " << Name << "\n";
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    OS << "node " << G.nodeName(N);
    if (N == G.entry())
      OS << " entry";
    else if (N == G.exit())
      OS << " exit";
    OS << "\n";
  }
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    OS << "edge " << G.nodeName(G.source(E)) << " " << G.nodeName(G.target(E))
       << "\n";
  OS << "end\n";
}

std::optional<Cfg> pst::parseCfgText(std::istream &IS, std::string *Error) {
  auto Fail = [&](const std::string &Msg) -> std::optional<Cfg> {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };

  std::string Line;
  Cfg G;
  std::map<std::string, NodeId> ByLabel;
  bool SawHeader = false, SawEnd = false;
  size_t LineNo = 0;

  while (std::getline(IS, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Kw;
    if (!(LS >> Kw) || Kw[0] == '#')
      continue;
    std::string Where = "line " + std::to_string(LineNo) + ": ";
    if (Kw == "cfg") {
      SawHeader = true;
      continue;
    }
    if (!SawHeader)
      return Fail(Where + "expected 'cfg <name>' header first");
    if (Kw == "node") {
      std::string Label, Role;
      if (!(LS >> Label))
        return Fail(Where + "node line missing label");
      if (ByLabel.count(Label))
        return Fail(Where + "duplicate node label '" + Label + "'");
      NodeId N = G.addNode(Label);
      ByLabel[Label] = N;
      if (LS >> Role) {
        if (Role == "entry")
          G.setEntry(N);
        else if (Role == "exit")
          G.setExit(N);
        else
          return Fail(Where + "unknown node role '" + Role + "'");
      }
      continue;
    }
    if (Kw == "edge") {
      std::string A, B;
      if (!(LS >> A >> B))
        return Fail(Where + "edge line needs two labels");
      auto IA = ByLabel.find(A), IB = ByLabel.find(B);
      if (IA == ByLabel.end())
        return Fail(Where + "unknown node '" + A + "'");
      if (IB == ByLabel.end())
        return Fail(Where + "unknown node '" + B + "'");
      G.addEdge(IA->second, IB->second);
      continue;
    }
    if (Kw == "end") {
      SawEnd = true;
      break;
    }
    return Fail(Where + "unknown keyword '" + Kw + "'");
  }
  if (!SawHeader)
    return Fail("empty input: no 'cfg' header");
  if (!SawEnd)
    return Fail("missing 'end' line");
  if (G.entry() == InvalidNode)
    return Fail("no node marked 'entry'");
  if (G.exit() == InvalidNode)
    return Fail("no node marked 'exit'");
  return G;
}

std::optional<Cfg> pst::parseCfgText(const std::string &Text,
                                     std::string *Error) {
  std::istringstream IS(Text);
  return parseCfgText(IS, Error);
}
