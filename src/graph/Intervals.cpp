//===- Intervals.cpp - Allen-Cocke intervals -----------------------------------===//
//
// Part of the PST library (see Cfg.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/graph/Intervals.h"

#include <algorithm>
#include <deque>

using namespace pst;

namespace {

/// Shared kernel of the Cfg and CfgView overloads; both traverse the same
/// edge lists in the same order, so the partitions come out identical.
template <class GraphT> IntervalPartition computeIntervalsImpl(const GraphT &G) {
  IntervalPartition P;
  uint32_t N = G.numNodes();
  P.IntervalOf.assign(N, UINT32_MAX);
  if (N == 0 || G.entry() == InvalidNode)
    return P;

  std::vector<bool> IsHeader(N, false);
  std::deque<NodeId> HeaderQueue{G.entry()};
  IsHeader[G.entry()] = true;

  while (!HeaderQueue.empty()) {
    NodeId H = HeaderQueue.front();
    HeaderQueue.pop_front();
    if (P.IntervalOf[H] != UINT32_MAX)
      continue;
    uint32_t Idx = static_cast<uint32_t>(P.Intervals.size());
    P.Intervals.push_back(IntervalPartition::Interval{H, {H}});
    P.IntervalOf[H] = Idx;

    // Grow: repeatedly absorb nodes whose every predecessor is inside.
    bool Grew = true;
    while (Grew) {
      Grew = false;
      // Scan the frontier (successors of current members).
      for (size_t I = 0; I < P.Intervals[Idx].Nodes.size(); ++I) {
        NodeId V = P.Intervals[Idx].Nodes[I];
        for (EdgeId E : G.succEdges(V)) {
          NodeId W = G.target(E);
          if (P.IntervalOf[W] != UINT32_MAX || IsHeader[W])
            continue;
          bool AllInside = true;
          for (EdgeId PE : G.predEdges(W)) {
            NodeId Pred = G.source(PE);
            if (Pred == W)
              continue; // A self loop becomes interval-internal (T1).
            if (P.IntervalOf[Pred] != Idx) {
              AllInside = false;
              break;
            }
          }
          if (AllInside) {
            P.IntervalOf[W] = Idx;
            P.Intervals[Idx].Nodes.push_back(W);
            Grew = true;
          }
        }
      }
    }
    // New headers: nodes entered from this interval but not absorbed.
    for (NodeId V : P.Intervals[Idx].Nodes)
      for (EdgeId E : G.succEdges(V)) {
        NodeId W = G.target(E);
        if (P.IntervalOf[W] == UINT32_MAX && !IsHeader[W]) {
          IsHeader[W] = true;
          HeaderQueue.push_back(W);
        }
      }
  }
  return P;
}

} // namespace

IntervalPartition pst::computeIntervals(const Cfg &G) {
  return computeIntervalsImpl(G);
}

IntervalPartition pst::computeIntervals(const CfgView &V) {
  return computeIntervalsImpl(V);
}

Cfg pst::derivedGraph(const Cfg &G, const IntervalPartition &P) {
  Cfg D;
  for (const auto &I : P.Intervals)
    D.addNode(G.nodeName(I.Header));
  // Deduplicate inter-interval edges so the derived sequence shrinks.
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    uint32_t A = P.IntervalOf[G.source(E)];
    uint32_t B = P.IntervalOf[G.target(E)];
    if (A != B && A != UINT32_MAX && B != UINT32_MAX)
      Edges.emplace_back(A, B);
  }
  std::sort(Edges.begin(), Edges.end());
  Edges.erase(std::unique(Edges.begin(), Edges.end()), Edges.end());
  for (auto [A, B] : Edges)
    D.addEdge(A, B);
  if (G.entry() != InvalidNode)
    D.setEntry(P.IntervalOf[G.entry()]);
  if (G.exit() != InvalidNode && P.IntervalOf[G.exit()] != UINT32_MAX)
    D.setExit(P.IntervalOf[G.exit()]);
  return D;
}

Cfg pst::limitGraph(const Cfg &G, uint32_t *Steps) {
  Cfg Cur = G;
  uint32_t Count = 0;
  while (true) {
    IntervalPartition P = computeIntervals(Cur);
    if (P.Intervals.size() == Cur.numNodes())
      break; // Fixed point: no interval absorbed anything.
    Cur = derivedGraph(Cur, P);
    ++Count;
  }
  if (Steps)
    *Steps = Count;
  return Cur;
}

bool pst::isReducibleByIntervals(const Cfg &G) {
  return limitGraph(G).numNodes() <= 1;
}
