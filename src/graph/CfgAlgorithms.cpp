//===- CfgAlgorithms.cpp - CFG traversals & checks -------------------------===//
//
// Part of the PST library (see Cfg.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/graph/CfgAlgorithms.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

using namespace pst;

namespace {

// Shared by the Cfg and CfgView overloads: both graph types expose the same
// read API, and the template guarantees the traversal orders cannot diverge.
template <class GraphT> DfsResult dfsImpl(const GraphT &G, NodeId Root) {
  DfsResult R;
  uint32_t N = G.numNodes();
  R.PreNum.assign(N, UINT32_MAX);
  R.ParentEdge.assign(N, InvalidEdge);
  if (N == 0)
    return R;

  // Explicit stack of (node, next successor index) frames so deep graphs
  // (the benches use 100k-node chains) do not overflow the call stack.
  std::vector<std::pair<NodeId, uint32_t>> Stack;
  R.PreNum[Root] = static_cast<uint32_t>(R.Preorder.size());
  R.Preorder.push_back(Root);
  Stack.emplace_back(Root, 0);

  while (!Stack.empty()) {
    auto &[Node, NextIdx] = Stack.back();
    const auto &Succs = G.succEdges(Node);
    if (NextIdx == Succs.size()) {
      R.Postorder.push_back(Node);
      Stack.pop_back();
      continue;
    }
    EdgeId E = Succs[NextIdx++];
    NodeId To = G.target(E);
    if (R.PreNum[To] != UINT32_MAX)
      continue;
    R.PreNum[To] = static_cast<uint32_t>(R.Preorder.size());
    R.Preorder.push_back(To);
    R.ParentEdge[To] = E;
    Stack.emplace_back(To, 0);
  }
  return R;
}

} // namespace

DfsResult pst::depthFirstSearch(const Cfg &G, NodeId Root) {
  return dfsImpl(G, Root);
}

DfsResult pst::depthFirstSearch(const CfgView &G, NodeId Root) {
  return dfsImpl(G, Root);
}

DfsResult pst::depthFirstSearch(const ReversedCfgView &G, NodeId Root) {
  return dfsImpl(G, Root);
}

std::vector<bool> pst::reachableFrom(const Cfg &G, NodeId Root) {
  std::vector<bool> Seen(G.numNodes(), false);
  if (Root >= G.numNodes())
    return Seen;
  std::vector<NodeId> Work{Root};
  Seen[Root] = true;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    for (EdgeId E : G.succEdges(N)) {
      NodeId To = G.target(E);
      if (!Seen[To]) {
        Seen[To] = true;
        Work.push_back(To);
      }
    }
  }
  return Seen;
}

std::vector<bool> pst::reachesTo(const Cfg &G, NodeId Target) {
  std::vector<bool> Seen(G.numNodes(), false);
  if (Target >= G.numNodes())
    return Seen;
  std::vector<NodeId> Work{Target};
  Seen[Target] = true;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    for (EdgeId E : G.predEdges(N)) {
      NodeId From = G.source(E);
      if (!Seen[From]) {
        Seen[From] = true;
        Work.push_back(From);
      }
    }
  }
  return Seen;
}

bool pst::existsPathBetween(const Cfg &G, NodeId From, NodeId To) {
  return reachableFrom(G, From)[To];
}

std::vector<NodeId> pst::reversePostOrder(const Cfg &G) {
  DfsResult R = depthFirstSearch(G, G.entry());
  std::vector<NodeId> RPO(R.Postorder.rbegin(), R.Postorder.rend());
  return RPO;
}

std::vector<NodeId> pst::reversePostOrder(const CfgView &G) {
  DfsResult R = depthFirstSearch(G, G.entry());
  return std::vector<NodeId>(R.Postorder.rbegin(), R.Postorder.rend());
}

std::vector<NodeId> pst::reversePostOrder(const ReversedCfgView &G) {
  DfsResult R = depthFirstSearch(G, G.entry());
  return std::vector<NodeId>(R.Postorder.rbegin(), R.Postorder.rend());
}

bool pst::validateCfg(const Cfg &G, std::string *Why) {
  auto Fail = [&](std::string Msg) {
    if (Why)
      *Why = std::move(Msg);
    return false;
  };
  if (G.numNodes() == 0)
    return Fail("graph has no nodes");
  if (G.entry() == InvalidNode || G.exit() == InvalidNode)
    return Fail("entry or exit node not set");
  if (G.entry() == G.exit())
    return Fail("entry and exit must be distinct");
  if (!G.predEdges(G.entry()).empty())
    return Fail("entry node has a predecessor");
  if (!G.succEdges(G.exit()).empty())
    return Fail("exit node has a successor");

  std::vector<bool> FromEntry = reachableFrom(G, G.entry());
  std::vector<bool> ToExit = reachesTo(G, G.exit());
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (!FromEntry[N])
      return Fail("node " + G.nodeName(N) + " is unreachable from entry");
    if (!ToExit[N])
      return Fail("node " + G.nodeName(N) + " cannot reach exit");
  }
  return true;
}

Cfg pst::reverseCfg(const Cfg &G) {
  Cfg R;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    R.addNode(G.node(N).Label);
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    R.addEdge(G.target(E), G.source(E));
  R.setEntry(G.exit());
  R.setExit(G.entry());
  return R;
}

Cfg pst::simplifyCfg(const Cfg &G) {
  uint32_t N = G.numNodes();
  // Map each node to the head of its straight-line chain.
  // A node J (not entry/exit) is fused into its unique predecessor I when
  // I's unique successor is J and the connecting edge is not a self loop.
  std::vector<NodeId> Head(N);
  for (NodeId I = 0; I < N; ++I)
    Head[I] = I;

  auto findHead = [&](NodeId I) {
    while (Head[I] != I)
      I = Head[I] = Head[Head[I]];
    return I;
  };

  for (NodeId J = 0; J < N; ++J) {
    if (J == G.entry() || J == G.exit())
      continue;
    if (G.predEdges(J).size() != 1)
      continue;
    EdgeId InE = G.predEdges(J)[0];
    NodeId I = G.source(InE);
    if (I == J || I == G.entry())
      continue; // Self loop, or would fold a block into the entry node.
    if (G.succEdges(I).size() != 1)
      continue;
    Head[findHead(J)] = findHead(I);
  }

  // Build the new graph: one node per chain head, in original id order.
  Cfg Out;
  std::vector<NodeId> NewId(N, InvalidNode);
  for (NodeId I = 0; I < N; ++I) {
    if (findHead(I) != I)
      continue;
    NewId[I] = Out.addNode(G.node(I).Label);
  }
  // Join labels of fused nodes for readability.
  for (NodeId I = 0; I < N; ++I) {
    NodeId H = findHead(I);
    if (H == I)
      continue;
    NodeId NH = NewId[H];
    std::string L = Out.node(NH).Label;
    if (!G.node(I).Label.empty()) {
      if (!L.empty())
        L += "+";
      L += G.node(I).Label;
      Out.setNodeLabel(NH, std::move(L));
    }
  }
  // Keep only edges that cross chains (intra-chain edges are the fused
  // straight-line links).
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    NodeId S = findHead(G.source(E));
    NodeId D = findHead(G.target(E));
    NodeId TgtNode = G.target(E);
    bool IsChainLink = S == D && G.source(E) != G.target(E) &&
                       G.predEdges(TgtNode).size() == 1 &&
                       G.succEdges(G.source(E)).size() == 1 &&
                       G.source(E) != G.entry() && TgtNode != G.entry() &&
                       TgtNode != G.exit();
    if (IsChainLink)
      continue;
    Out.addEdge(NewId[S], NewId[D]);
  }
  Out.setEntry(NewId[findHead(G.entry())]);
  Out.setExit(NewId[findHead(G.exit())]);
  return Out;
}

namespace {

// Shared by the Cfg and CfgView overloads: the test only reads
// numNodes/numEdges/source/target/entry, which both graph types expose.
template <class GraphT> bool isReducibleImpl(const GraphT &G) {
  // Work on an adjacency-set representation we can mutate. Parallel edges
  // collapse (they do not affect reducibility).
  uint32_t N = G.numNodes();
  if (N == 0)
    return true;
  std::vector<std::vector<NodeId>> Succ(N), Pred(N);
  auto AddEdge = [&](NodeId A, NodeId B) {
    if (std::find(Succ[A].begin(), Succ[A].end(), B) == Succ[A].end()) {
      Succ[A].push_back(B);
      Pred[B].push_back(A);
    }
  };
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    AddEdge(G.source(E), G.target(E));

  std::vector<bool> Alive(N, true);
  uint32_t AliveCount = N;

  // Iterate to a fixed point: T1 removes self loops (free whenever we touch
  // a node), T2 merges a node with a unique predecessor into it.
  bool Changed = true;
  auto RemoveFrom = [](std::vector<NodeId> &V, NodeId X) {
    V.erase(std::remove(V.begin(), V.end(), X), V.end());
  };
  while (Changed && AliveCount > 1) {
    Changed = false;
    for (NodeId B = 0; B < N; ++B) {
      if (!Alive[B])
        continue;
      // T1: drop self loop.
      if (std::find(Succ[B].begin(), Succ[B].end(), B) != Succ[B].end()) {
        RemoveFrom(Succ[B], B);
        RemoveFrom(Pred[B], B);
        Changed = true;
      }
      // T2: unique predecessor A != B -> merge B into A.
      if (Pred[B].size() == 1 && B != G.entry()) {
        NodeId A = Pred[B][0];
        if (A == B)
          continue;
        RemoveFrom(Succ[A], B);
        RemoveFrom(Pred[B], A);
        for (NodeId C : Succ[B]) {
          RemoveFrom(Pred[C], B);
          AddEdge(A, C);
        }
        Succ[B].clear();
        Alive[B] = false;
        --AliveCount;
        Changed = true;
      }
    }
  }
  return AliveCount == 1;
}

} // namespace

bool pst::isReducible(const Cfg &G) { return isReducibleImpl(G); }

bool pst::isReducible(const CfgView &G) { return isReducibleImpl(G); }

SubCfg pst::extractRegionSubCfg(const Cfg &G,
                                const std::vector<NodeId> &BodyNodes,
                                EdgeId EntryE, EdgeId ExitE,
                                const std::vector<bool> *EdgeDead) {
  SubCfg S;
  auto IsDead = [&](EdgeId E) { return EdgeDead && (*EdgeDead)[E]; };
  assert(!IsDead(EntryE) && !IsDead(ExitE) && "boundary edge is dead");

  // Local node ids 0..K-1 mirror BodyNodes; Start/End are appended last so
  // local body indices match positions in BodyNodes.
  std::unordered_map<NodeId, NodeId> Local;
  Local.reserve(BodyNodes.size() * 2);
  for (NodeId N : BodyNodes) {
    NodeId L = S.Graph.addNode(G.node(N).Label);
    S.GlobalNode.push_back(N);
    Local.emplace(N, L);
  }
  S.Start = S.Graph.addNode("start*");
  S.End = S.Graph.addNode("end*");
  S.GlobalNode.push_back(InvalidNode);
  S.GlobalNode.push_back(InvalidNode);
  S.Graph.setEntry(S.Start);
  S.Graph.setExit(S.End);

  NodeId EntryTarget = G.target(EntryE);
  auto ItT = Local.find(EntryTarget);
  if (ItT == Local.end() || Local.count(G.source(EntryE)) ||
      !Local.count(G.source(ExitE)) || Local.count(G.target(ExitE))) {
    S.BoundaryViolation = true;
    return S;
  }

  // The synthetic entry edge goes first so the sub-DFS starts exactly where
  // the enclosing DFS entered the region.
  S.LocalEntryEdge = S.Graph.addEdge(S.Start, ItT->second);
  S.GlobalEdge.push_back(EntryE);

  for (size_t I = 0; I < BodyNodes.size(); ++I) {
    NodeId N = BodyNodes[I];
    NodeId L = static_cast<NodeId>(I);
    for (EdgeId E : G.succEdges(N)) {
      if (IsDead(E))
        continue;
      if (E == ExitE) {
        S.LocalExitEdge = S.Graph.addEdge(L, S.End);
        S.GlobalEdge.push_back(ExitE);
        continue;
      }
      auto It = Local.find(G.target(E));
      if (It == Local.end()) {
        S.BoundaryViolation = true; // A second exit crossing: not SESE.
        return S;
      }
      S.Graph.addEdge(L, It->second);
      S.GlobalEdge.push_back(E);
    }
    // A second entry crossing (a live pred from outside that is not the
    // entry edge) also breaks the SESE precondition.
    for (EdgeId E : G.predEdges(N)) {
      if (IsDead(E) || E == EntryE)
        continue;
      if (!Local.count(G.source(E))) {
        S.BoundaryViolation = true;
        return S;
      }
    }
  }
  if (S.LocalExitEdge == InvalidEdge)
    S.BoundaryViolation = true;
  return S;
}
