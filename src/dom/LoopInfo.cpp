//===- LoopInfo.cpp - Natural loop nesting forest -------------------------------===//
//
// Part of the PST library (see Dominators.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/dom/LoopInfo.h"

#include "pst/graph/CfgAlgorithms.h"

#include <algorithm>
#include <map>

using namespace pst;

template <class GraphT> void LoopInfo::init(const GraphT &G, const DomTree &DT) {
  uint32_t N = G.numNodes();
  NodeLoop.assign(N, InvalidLoop);

  // Find backedges (target dominates source) grouped by header.
  // Retreating edges (target an ancestor of the source in the DFS tree)
  // that are not backedges in the dominance sense witness irreducibility.
  DfsResult Dfs = depthFirstSearch(G, G.entry());
  std::vector<uint32_t> PostNum(N, UINT32_MAX);
  for (uint32_t I = 0; I < Dfs.Postorder.size(); ++I)
    PostNum[Dfs.Postorder[I]] = I;
  auto IsTreeAncestor = [&](NodeId A, NodeId D) {
    return Dfs.PreNum[A] <= Dfs.PreNum[D] && PostNum[A] >= PostNum[D];
  };

  std::map<NodeId, std::vector<EdgeId>> ByHeader;
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    NodeId Src = G.source(E), Dst = G.target(E);
    if (DT.dominates(Dst, Src)) {
      ByHeader[Dst].push_back(E);
      continue;
    }
    if (IsTreeAncestor(Dst, Src))
      IrrEdges.push_back(E);
  }

  // One loop per header: members found by backward walk from the backedge
  // sources, stopping at the header.
  for (auto &[Header, Edges] : ByHeader) {
    Loop L;
    L.Header = Header;
    L.Backedges = Edges;
    std::vector<bool> InLoop(N, false);
    InLoop[Header] = true;
    std::vector<NodeId> Work;
    for (EdgeId E : Edges) {
      NodeId S = G.source(E);
      if (!InLoop[S]) {
        InLoop[S] = true;
        Work.push_back(S);
      }
    }
    while (!Work.empty()) {
      NodeId V = Work.back();
      Work.pop_back();
      for (EdgeId E : G.predEdges(V)) {
        NodeId P = G.source(E);
        if (!InLoop[P]) {
          InLoop[P] = true;
          Work.push_back(P);
        }
      }
    }
    for (NodeId V = 0; V < N; ++V)
      if (InLoop[V])
        L.Nodes.push_back(V);
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A contains loop B iff A's member set contains B's
  // header (and they differ). Sort loops by size ascending so the
  // innermost containing loop is found first.
  std::vector<LoopId> BySize(Loops.size());
  for (LoopId I = 0; I < Loops.size(); ++I)
    BySize[I] = I;
  std::sort(BySize.begin(), BySize.end(), [&](LoopId A, LoopId B) {
    return Loops[A].Nodes.size() < Loops[B].Nodes.size();
  });

  auto Contains = [&](LoopId A, NodeId V) {
    const auto &Ns = Loops[A].Nodes;
    return std::binary_search(Ns.begin(), Ns.end(), V);
  };
  for (size_t I = 0; I < BySize.size(); ++I) {
    LoopId Inner = BySize[I];
    for (size_t J = I + 1; J < BySize.size(); ++J) {
      LoopId Outer = BySize[J];
      if (Contains(Outer, Loops[Inner].Header)) {
        Loops[Inner].Parent = Outer;
        Loops[Outer].Children.push_back(Inner);
        break;
      }
    }
  }
  // Depths, outermost-in: process in descending size order.
  for (auto It = BySize.rbegin(); It != BySize.rend(); ++It) {
    LoopId L = *It;
    Loops[L].Depth =
        Loops[L].Parent == InvalidLoop ? 1 : Loops[Loops[L].Parent].Depth + 1;
  }
  // Innermost loop per node: smallest containing loop wins.
  for (LoopId L : BySize) {
    for (NodeId V : Loops[L].Nodes)
      if (NodeLoop[V] == InvalidLoop)
        NodeLoop[V] = L;
  }
}

LoopInfo::LoopInfo(const Cfg &G, const DomTree &DT) { init(G, DT); }

LoopInfo::LoopInfo(const CfgView &V, const DomTree &DT) { init(V, DT); }
