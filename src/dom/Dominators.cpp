//===- Dominators.cpp - (Post)dominator trees ------------------------------===//
//
// Part of the PST library (see Dominators.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/dom/Dominators.h"

#include "pst/graph/CfgAlgorithms.h"

#include <algorithm>
#include <cassert>

using namespace pst;

void DomTree::finalize() {
  uint32_t N = numNodes();
  Kids.assign(N, {});
  In.assign(N, 0);
  Out.assign(N, 0);
  Depth.assign(N, 0);
  for (NodeId V = 0; V < N; ++V)
    if (V != Root && Idom[V] != InvalidNode)
      Kids[Idom[V]].push_back(V);

  // Interval numbering by an explicit-stack DFS over the tree.
  uint32_t Clock = 0;
  std::vector<std::pair<NodeId, uint32_t>> Stack;
  if (Root != InvalidNode) {
    In[Root] = Clock++;
    Stack.emplace_back(Root, 0);
  }
  while (!Stack.empty()) {
    auto &[V, Next] = Stack.back();
    if (Next == Kids[V].size()) {
      Out[V] = Clock++;
      Stack.pop_back();
      continue;
    }
    NodeId C = Kids[V][Next++];
    Depth[C] = Depth[V] + 1;
    In[C] = Clock++;
    Stack.emplace_back(C, 0);
  }
}

template <class GraphT> DomTree DomTree::buildIterativeImpl(const GraphT &G) {
  DomTree T;
  T.Root = G.entry();
  uint32_t N = G.numNodes();
  T.Idom.assign(N, InvalidNode);
  if (N == 0 || T.Root == InvalidNode)
    return T;

  std::vector<NodeId> RPO = reversePostOrder(G);
  std::vector<uint32_t> RpoNum(N, UINT32_MAX);
  for (uint32_t I = 0; I < RPO.size(); ++I)
    RpoNum[RPO[I]] = I;

  // Two-finger intersection in RPO numbering (Cooper/Harvey/Kennedy).
  auto Intersect = [&](NodeId A, NodeId B) {
    while (A != B) {
      while (RpoNum[A] > RpoNum[B])
        A = T.Idom[A];
      while (RpoNum[B] > RpoNum[A])
        B = T.Idom[B];
    }
    return A;
  };

  T.Idom[T.Root] = T.Root; // Temporarily self, for Intersect's termination.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId V : RPO) {
      if (V == T.Root)
        continue;
      NodeId NewIdom = InvalidNode;
      for (EdgeId E : G.predEdges(V)) {
        NodeId P = G.source(E);
        if (RpoNum[P] == UINT32_MAX || T.Idom[P] == InvalidNode)
          continue; // Unreachable or not yet processed.
        NewIdom = NewIdom == InvalidNode ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != InvalidNode && T.Idom[V] != NewIdom) {
        T.Idom[V] = NewIdom;
        Changed = true;
      }
    }
  }
  T.Idom[T.Root] = InvalidNode;
  T.finalize();
  return T;
}

DomTree DomTree::buildIterative(const Cfg &G) { return buildIterativeImpl(G); }

DomTree DomTree::buildIterative(const CfgView &V) {
  return buildIterativeImpl(V);
}

namespace {

/// State for the Lengauer-Tarjan "simple" eval/link machinery, all in
/// DFS-number space (1-based; 0 means "none").
struct LtState {
  std::vector<uint32_t> Semi;     // Semidominator dfnum.
  std::vector<uint32_t> Ancestor; // Forest parent (0 = root of its tree).
  std::vector<uint32_t> Label;    // Node with min semi on the path up.

  explicit LtState(uint32_t N)
      : Semi(N + 1), Ancestor(N + 1, 0), Label(N + 1) {
    for (uint32_t I = 0; I <= N; ++I) {
      Semi[I] = I;
      Label[I] = I;
    }
  }

  /// Path compression, iterative (benches run 100k-node chains).
  void compress(uint32_t V) {
    // Collect the ancestor path, then fold it top-down.
    Scratch.clear();
    while (Ancestor[Ancestor[V]] != 0) {
      Scratch.push_back(V);
      V = Ancestor[V];
    }
    for (auto It = Scratch.rbegin(); It != Scratch.rend(); ++It) {
      uint32_t U = *It;
      if (Semi[Label[Ancestor[U]]] < Semi[Label[U]])
        Label[U] = Label[Ancestor[U]];
      Ancestor[U] = Ancestor[Ancestor[U]];
    }
  }

  uint32_t eval(uint32_t V) {
    if (Ancestor[V] == 0)
      return Label[V];
    compress(V);
    return Label[V];
  }

  void link(uint32_t Parent, uint32_t W) { Ancestor[W] = Parent; }

private:
  std::vector<uint32_t> Scratch;
};

} // namespace

template <class GraphT> DomTree DomTree::buildLengauerTarjanImpl(const GraphT &G) {
  DomTree T;
  T.Root = G.entry();
  uint32_t N = G.numNodes();
  T.Idom.assign(N, InvalidNode);
  if (N == 0 || T.Root == InvalidNode)
    return T;

  DfsResult Dfs = depthFirstSearch(G, T.Root);
  uint32_t R = static_cast<uint32_t>(Dfs.Preorder.size()); // Reached count.

  // Dfnum is 1-based: Vertex[i] is the node with dfnum i.
  std::vector<NodeId> Vertex(R + 1, InvalidNode);
  std::vector<uint32_t> Dfnum(N, 0);
  std::vector<uint32_t> Parent(R + 1, 0);
  for (uint32_t I = 0; I < R; ++I) {
    NodeId V = Dfs.Preorder[I];
    Dfnum[V] = I + 1;
    Vertex[I + 1] = V;
  }
  for (uint32_t I = 2; I <= R; ++I) {
    NodeId V = Vertex[I];
    Parent[I] = Dfnum[G.source(Dfs.ParentEdge[V])];
  }

  LtState S(R);
  std::vector<std::vector<uint32_t>> Bucket(R + 1);
  std::vector<uint32_t> IdomNum(R + 1, 0);

  for (uint32_t W = R; W >= 2; --W) {
    // Step 2: semidominators.
    for (EdgeId E : G.predEdges(Vertex[W])) {
      NodeId PredNode = G.source(E);
      uint32_t V = Dfnum[PredNode];
      if (V == 0)
        continue; // Predecessor unreachable from entry.
      uint32_t U = S.eval(V);
      if (S.Semi[U] < S.Semi[W])
        S.Semi[W] = S.Semi[U];
    }
    Bucket[S.Semi[W]].push_back(W);
    S.link(Parent[W], W);
    // Step 3: implicitly define idoms for Parent[W]'s bucket.
    for (uint32_t V : Bucket[Parent[W]]) {
      uint32_t U = S.eval(V);
      IdomNum[V] = S.Semi[U] < S.Semi[V] ? U : Parent[W];
    }
    Bucket[Parent[W]].clear();
  }
  // Step 4: explicit idoms in dfnum order.
  for (uint32_t W = 2; W <= R; ++W) {
    if (IdomNum[W] != S.Semi[W])
      IdomNum[W] = IdomNum[IdomNum[W]];
    T.Idom[Vertex[W]] = Vertex[IdomNum[W]];
  }
  T.Idom[T.Root] = InvalidNode;
  T.finalize();
  return T;
}

DomTree DomTree::buildLengauerTarjan(const Cfg &G) {
  return buildLengauerTarjanImpl(G);
}

DomTree DomTree::buildLengauerTarjan(const CfgView &V) {
  return buildLengauerTarjanImpl(V);
}

DomTree DomTree::buildPostDom(const Cfg &G) {
  return buildIterative(reverseCfg(G));
}

DomTree DomTree::buildPostDom(const CfgView &V) {
  return buildIterativeImpl(ReversedCfgView(V));
}

DomTree DomTree::fromIdom(NodeId Root, std::vector<NodeId> Idom) {
  DomTree T;
  T.Root = Root;
  T.Idom = std::move(Idom);
  assert(Root < T.Idom.size() && T.Idom[Root] == InvalidNode &&
         "root must have no immediate dominator");
  T.finalize();
  return T;
}

template <class GraphT>
void DominanceFrontiers::init(const GraphT &G, const DomTree &DT) {
  uint32_t N = G.numNodes();
  DF.assign(N, {});
  for (NodeId M = 0; M < N; ++M) {
    if (G.predEdges(M).size() < 2 || !DT.isReachable(M))
      continue;
    NodeId IdomM = DT.idom(M);
    for (EdgeId E : G.predEdges(M)) {
      NodeId Runner = G.source(E);
      if (!DT.isReachable(Runner))
        continue;
      while (Runner != IdomM && Runner != InvalidNode) {
        DF[Runner].push_back(M);
        Runner = DT.idom(Runner);
      }
    }
  }
  for (auto &F : DF) {
    std::sort(F.begin(), F.end());
    F.erase(std::unique(F.begin(), F.end()), F.end());
  }
}

DominanceFrontiers::DominanceFrontiers(const Cfg &G, const DomTree &DT) {
  init(G, DT);
}

DominanceFrontiers::DominanceFrontiers(const CfgView &V, const DomTree &DT) {
  init(V, DT);
}

std::vector<NodeId>
DominanceFrontiers::iterated(const std::vector<NodeId> &Defs) const {
  std::vector<bool> InResult(DF.size(), false), InWork(DF.size(), false);
  std::vector<NodeId> Work;
  for (NodeId D : Defs) {
    if (!InWork[D]) {
      InWork[D] = true;
      Work.push_back(D);
    }
  }
  std::vector<NodeId> Result;
  while (!Work.empty()) {
    NodeId V = Work.back();
    Work.pop_back();
    for (NodeId M : DF[V]) {
      if (InResult[M])
        continue;
      InResult[M] = true;
      Result.push_back(M);
      if (!InWork[M]) {
        InWork[M] = true;
        Work.push_back(M);
      }
    }
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}
