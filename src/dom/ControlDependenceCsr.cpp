//===- ControlDependenceCsr.cpp - cdep as a CSR relation ------------------===//
//
// Part of the PST library (see ControlDependenceCsr.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/dom/ControlDependenceCsr.h"

#include <cassert>

using namespace pst;

template <class GraphT>
void ControlDependenceCsr::init(const GraphT &G, const DomTree &Pdt) {
  const uint32_t N = G.numNodes();
  Off.assign(N + 1, 0);

  // For edge (C, M): the dependent nodes are M's pdt ancestors up to —
  // exclusive — ipdom(C). When C is the pdt root (or unreachable in the
  // reverse graph) nothing is excluded and the walk runs to the root
  // inclusive; when M is unreachable the edge contributes nothing.
  auto WalkStop = [&](NodeId C) -> NodeId {
    return Pdt.isReachable(C) ? Pdt.idom(C) : InvalidNode;
  };

  // Counting pass.
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    NodeId C = G.source(E), M = G.target(E);
    if (!Pdt.isReachable(M))
      continue;
    NodeId Stop = WalkStop(C);
    for (NodeId R = M; R != Stop && R != InvalidNode; R = Pdt.idom(R))
      ++Off[R + 1];
  }
  for (uint32_t I = 0; I < N; ++I)
    Off[I + 1] += Off[I];

  // Fill pass: ascending edge ids land ascending within each slice.
  Edges.resize(Off[N]);
  std::vector<uint32_t> Cursor(Off.begin(), Off.end() - 1);
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    NodeId C = G.source(E), M = G.target(E);
    if (!Pdt.isReachable(M))
      continue;
    NodeId Stop = WalkStop(C);
    for (NodeId R = M; R != Stop && R != InvalidNode; R = Pdt.idom(R))
      Edges[Cursor[R]++] = E;
  }
}

ControlDependenceCsr::ControlDependenceCsr(const Cfg &G, const DomTree &Pdt) {
  assert(G.numNodes() == Pdt.numNodes() && "postdom tree of a different graph");
  init(G, Pdt);
}

ControlDependenceCsr::ControlDependenceCsr(const CfgView &V,
                                           const DomTree &Pdt) {
  assert(V.numNodes() == Pdt.numNodes() && "postdom tree of a different graph");
  init(V, Pdt);
}
