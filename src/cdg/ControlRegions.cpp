//===- ControlRegions.cpp - Control regions in O(E) ---------------------------===//
//
// Part of the PST library (see ControlDependence.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlRegions.h"

#include "pst/cdg/ControlDependence.h"
#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/cycleequiv/CycleEquivBrute.h"
#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <map>
#include <unordered_map>

using namespace pst;

Cfg pst::nodeExpand(const Cfg &G) {
  Cfg H;
  uint32_t N = G.numNodes();
  for (NodeId V = 0; V < N; ++V) {
    H.addNode(G.nodeName(V) + "_i");
    H.addNode(G.nodeName(V) + "_o");
  }
  // Representative edges first so that node V's representative edge has
  // EdgeId V.
  for (NodeId V = 0; V < N; ++V)
    H.addEdge(2 * V, 2 * V + 1);
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    H.addEdge(2 * G.source(E) + 1, 2 * G.target(E));
  H.setEntry(2 * G.entry());
  H.setExit(2 * G.exit() + 1);
  return H;
}

/// Renumbers a raw class vector densely in first-occurrence order.
static ControlRegionsResult densify(std::vector<uint32_t> Raw) {
  ControlRegionsResult R;
  R.NodeClass = canonicalizePartition(Raw);
  uint32_t Max = 0;
  for (uint32_t C : R.NodeClass)
    Max = std::max(Max, C + 1);
  R.NumClasses = Max;
  return R;
}

ControlRegionsResult pst::computeControlRegionsLinear(const Cfg &G) {
  PST_SPAN("cdg.control_regions");
  // T(S): expand nodes, then close with the return edge end_o -> start_i.
  Cfg H = nodeExpand(G);
  H.addEdge(2 * G.exit() + 1, 2 * G.entry());
  CycleEquivResult CE = computeCycleEquivalence(H, /*AddReturnEdge=*/false);

  std::vector<uint32_t> Raw(G.numNodes());
  for (NodeId V = 0; V < G.numNodes(); ++V)
    Raw[V] = CE.classOf(V); // Representative edge of V has EdgeId V.
  ControlRegionsResult R = densify(std::move(Raw));
  PST_COUNTER("cdg.runs", 1);
  PST_COUNTER("cdg.classes", R.NumClasses);
  return R;
}

ControlRegionsResult pst::computeControlRegionsLinearImplicit(const Cfg &G) {
  ControlRegionsScratch Scratch;
  return computeControlRegionsLinearImplicit(G, Scratch);
}

ControlRegionsResult pst::computeControlRegionsLinearImplicit(
    const Cfg &G, ControlRegionsScratch &S) {
  PST_SPAN("cdg.control_regions");
  // Endpoints of T(S) synthesized in place: node V splits into V_i = 2V
  // and V_o = 2V+1; representative edge V gets index V; original edge E
  // becomes (src_o, dst_i); the return edge closes the cycle.
  uint32_t N = G.numNodes();
  S.View.NumNodes = 2 * N;
  S.View.Root = 2 * G.entry();
  S.View.Endpoints.clear();
  S.View.Endpoints.reserve(N + G.numEdges() + 1);
  for (NodeId V = 0; V < N; ++V)
    S.View.Endpoints.emplace_back(2 * V, 2 * V + 1);
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    S.View.Endpoints.emplace_back(2 * G.source(E) + 1, 2 * G.target(E));
  S.View.Endpoints.emplace_back(2 * G.exit() + 1, 2 * G.entry());

  CycleEquivResult CE = computeCycleEquivalenceRaw(S.View, S.Solver);

  // Densify in first-occurrence order (canonicalizePartition's semantics)
  // straight into the result, using the scratch remap table.
  ControlRegionsResult R;
  R.NodeClass.resize(N);
  S.Remap.assign(CE.NumClasses, UINT32_MAX);
  uint32_t Next = 0;
  for (NodeId V = 0; V < N; ++V) {
    uint32_t C = CE.classOf(V); // Representative edge of V has EdgeId V.
    if (S.Remap[C] == UINT32_MAX)
      S.Remap[C] = Next++;
    R.NodeClass[V] = S.Remap[C];
  }
  R.NumClasses = Next;
  PST_COUNTER("cdg.runs", 1);
  PST_COUNTER("cdg.classes", R.NumClasses);
  return R;
}

ControlRegionsResult pst::computeControlRegionsLinearImplicit(
    const CfgView &V, ControlRegionsScratch &S) {
  PST_SPAN("cdg.control_regions");
  // Same implicit T(S) run, but over the frozen CSR view: no endpoint
  // buffer is filled — the solver reads adjacency straight from the
  // view's succ/pred segments and synthesizes endpoints arithmetically.
  uint32_t N = V.numNodes();
  CycleEquivResult CE = computeCycleEquivalenceTs(V, S.Solver);

  ControlRegionsResult R;
  R.NodeClass.resize(N);
  S.Remap.assign(CE.NumClasses, UINT32_MAX);
  uint32_t Next = 0;
  for (NodeId W = 0; W < N; ++W) {
    uint32_t C = CE.classOf(W); // Representative edge of W has EdgeId W.
    if (S.Remap[C] == UINT32_MAX)
      S.Remap[C] = Next++;
    R.NodeClass[W] = S.Remap[C];
  }
  R.NumClasses = Next;
  PST_COUNTER("cdg.runs", 1);
  PST_COUNTER("cdg.classes", R.NumClasses);
  return R;
}

ControlRegionsResult pst::computeControlRegionsFOW(const Cfg &G) {
  ControlDependence CD(G);
  // Group nodes by their full dependence set. A std::map keyed by the
  // sorted vector stands in for FOW's hashing; the cost that matters (and
  // that the bench shows) is materializing the O(N*E) relation.
  std::map<std::vector<EdgeId>, uint32_t> Classes;
  std::vector<uint32_t> Raw(G.numNodes());
  for (NodeId V = 0; V < G.numNodes(); ++V) {
    auto It = Classes.try_emplace(CD.dependences(V),
                                  static_cast<uint32_t>(Classes.size()))
                  .first;
    Raw[V] = It->second;
  }
  return densify(std::move(Raw));
}

ControlRegionsResult pst::computeControlRegionsRefinement(const Cfg &G) {
  uint32_t N = G.numNodes();
  ControlDependence CD(G);

  // CFS90: all nodes start in one class; each control dependence direction
  // (edge) splits every class into dependent / non-dependent halves.
  std::vector<uint32_t> Class(N, 0);
  uint32_t NumClasses = 1;
  std::vector<uint32_t> SplitOf; // Per original class, its new half.
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    const std::vector<NodeId> &S = CD.dependents(E);
    if (S.empty())
      continue;
    SplitOf.assign(NumClasses, UINT32_MAX);
    for (NodeId V : S) {
      uint32_t C = Class[V];
      if (SplitOf[C] == UINT32_MAX)
        SplitOf[C] = NumClasses++;
      Class[V] = SplitOf[C];
    }
    // Classes whose every member moved should collapse back; detecting
    // that lazily costs another pass, so we simply renumber at the end
    // (empty originals disappear in densify).
  }
  return densify(std::move(Class));
}

ControlRegionsResult pst::computeNodeCycleEquivalenceBrute(const Cfg &G) {
  Cfg S = withReturnEdge(G);
  uint32_t N = S.numNodes();

  // existsCycleThroughNodeAvoidingNode(a, b): a non-empty closed walk
  // through a that never visits b.
  auto ExistsCycleAvoiding = [&](NodeId A, NodeId B) {
    if (A == B)
      return false;
    std::vector<bool> Seen(N, false);
    std::vector<NodeId> Work;
    for (EdgeId E : S.succEdges(A)) {
      NodeId W = S.target(E);
      if (W == A)
        return true; // Self loop.
      if (W != B && !Seen[W]) {
        Seen[W] = true;
        Work.push_back(W);
      }
    }
    while (!Work.empty()) {
      NodeId V = Work.back();
      Work.pop_back();
      for (EdgeId E : S.succEdges(V)) {
        NodeId W = S.target(E);
        if (W == A)
          return true;
        if (W != B && !Seen[W]) {
          Seen[W] = true;
          Work.push_back(W);
        }
      }
    }
    return false;
  };

  auto NodeEquiv = [&](NodeId A, NodeId B) {
    return !ExistsCycleAvoiding(A, B) && !ExistsCycleAvoiding(B, A);
  };

  std::vector<uint32_t> Raw(G.numNodes(), UINT32_MAX);
  uint32_t Next = 0;
  for (NodeId A = 0; A < G.numNodes(); ++A) {
    if (Raw[A] != UINT32_MAX)
      continue;
    uint32_t C = Next++;
    Raw[A] = C;
    for (NodeId B = A + 1; B < G.numNodes(); ++B)
      if (Raw[B] == UINT32_MAX && NodeEquiv(A, B))
        Raw[B] = C;
  }
  ControlRegionsResult R;
  R.NodeClass = std::move(Raw);
  R.NumClasses = Next;
  return R;
}
