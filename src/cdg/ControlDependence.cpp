//===- ControlDependence.cpp - Control dependence ----------------------------===//
//
// Part of the PST library (see ControlDependence.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlDependence.h"

#include <algorithm>

using namespace pst;

ControlDependence::ControlDependence(const Cfg &G)
    : PDT(DomTree::buildPostDom(G)) {
  uint32_t N = G.numNodes();
  Deps.assign(N, {});
  Dependents.assign(G.numEdges(), {});

  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    NodeId C = G.source(E), M = G.target(E);
    if (!PDT.isReachable(M) || !PDT.isReachable(C))
      continue;
    // Walk the postdominator tree from M up to (excluding) ipostdom(C).
    // Every node on the walk postdominates M but not strictly C.
    NodeId Stop = PDT.idom(C);
    for (NodeId Runner = M; Runner != Stop && Runner != InvalidNode;
         Runner = PDT.idom(Runner)) {
      Deps[Runner].push_back(E);
      Dependents[E].push_back(Runner);
      ++Size;
    }
  }
  for (auto &D : Deps)
    std::sort(D.begin(), D.end());
  for (auto &D : Dependents)
    std::sort(D.begin(), D.end());
}
