//===- TableWriter.cpp - Aligned text tables ------------------------------===//
//
// Part of the PST library (see BitVector.h for the project reference).
//
//===----------------------------------------------------------------------===//

#include "pst/support/TableWriter.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

using namespace pst;

void TableWriter::setHeader(std::vector<std::string> Columns) {
  Header = std::move(Columns);
}

void TableWriter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TableWriter::fmt(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

/// Returns true if \p S looks like a number (so it should right-align).
static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' &&
        C != '-' && C != '+' && C != '%' && C != 'e' && C != 'x')
      return false;
  return true;
}

void TableWriter::print(std::ostream &OS) const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Width(NumCols, 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Width[I] = std::max(Width[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < NumCols; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : "";
      size_t Pad = Width[I] - Cell.size();
      if (looksNumeric(Cell)) {
        OS << std::string(Pad, ' ') << Cell;
      } else {
        OS << Cell << std::string(Pad, ' ');
      }
      OS << (I + 1 == NumCols ? "" : "  ");
    }
    OS << '\n';
  };

  if (!Header.empty()) {
    PrintRow(Header);
    size_t Line = 0;
    for (size_t I = 0; I < NumCols; ++I)
      Line += Width[I] + (I + 1 == NumCols ? 0 : 2);
    OS << std::string(Line, '-') << '\n';
  }
  for (const auto &Row : Rows)
    PrintRow(Row);
}
