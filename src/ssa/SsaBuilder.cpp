//===- SsaBuilder.cpp - Full SSA construction -----------------------------------===//
//
// Part of the PST library (see PhiPlacement.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/ssa/SsaBuilder.h"

#include "pst/dom/Dominators.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace pst;

SsaForm pst::buildSsa(const LoweredFunction &F, const PhiPlacement &P) {
  const Cfg &G = F.Graph;
  uint32_t N = G.numNodes();
  DomTree DT = DomTree::buildIterative(G);

  SsaForm S;
  S.Phis.resize(N);
  S.Versions.resize(N);
  S.NumVersions.assign(F.numVars(), 1); // Version 0 = undef.

  // Materialize empty phis at the placed blocks.
  for (VarId V = 0; V < F.numVars(); ++V) {
    for (NodeId B : P.PhiBlocks[V]) {
      SsaPhi Phi;
      Phi.Var = V;
      Phi.Incoming.reserve(G.predEdges(B).size());
      for (EdgeId E : G.predEdges(B))
        Phi.Incoming.emplace_back(E, 0);
      S.Phis[B].push_back(std::move(Phi));
    }
  }
  for (NodeId B = 0; B < N; ++B)
    S.Versions[B].resize(F.Code[B].size());

  // Standard renaming: preorder walk of the dominator tree with per-var
  // version stacks; explicit stack with an "unwind count" per frame.
  std::vector<std::vector<uint32_t>> Stacks(F.numVars(),
                                            std::vector<uint32_t>{0});
  struct Frame {
    NodeId Block;
    uint32_t ChildIdx;
    std::vector<VarId> Pushed; // To pop on unwind.
    bool Expanded = false;
  };
  std::vector<Frame> Walk;
  Walk.push_back(Frame{G.entry(), 0, {}, false});

  while (!Walk.empty()) {
    Frame &Fr = Walk.back();
    NodeId B = Fr.Block;
    if (!Fr.Expanded) {
      Fr.Expanded = true;
      // Phi definitions first.
      for (SsaPhi &Phi : S.Phis[B]) {
        Phi.DefVersion = S.NumVersions[Phi.Var]++;
        Stacks[Phi.Var].push_back(Phi.DefVersion);
        Fr.Pushed.push_back(Phi.Var);
      }
      // Then straight-line code: uses read the stack, defs push.
      for (size_t I = 0; I < F.Code[B].size(); ++I) {
        const Instruction &Ins = F.Code[B][I];
        SsaInstrVersions &Ver = S.Versions[B][I];
        Ver.UseVersions.reserve(Ins.Uses.size());
        for (VarId U : Ins.Uses)
          Ver.UseVersions.push_back(Stacks[U].back());
        if (Ins.Def != InvalidVar) {
          Ver.DefVersion = S.NumVersions[Ins.Def]++;
          Stacks[Ins.Def].push_back(Ver.DefVersion);
          Fr.Pushed.push_back(Ins.Def);
        }
      }
      // Fill phi operands of successors.
      for (EdgeId E : G.succEdges(B)) {
        NodeId Succ = G.target(E);
        for (SsaPhi &Phi : S.Phis[Succ]) {
          for (auto &[InEdge, Version] : Phi.Incoming)
            if (InEdge == E)
              Version = Stacks[Phi.Var].back();
        }
      }
    }
    const auto &Kids = DT.children(B);
    if (Fr.ChildIdx < Kids.size()) {
      NodeId C = Kids[Fr.ChildIdx++];
      Walk.push_back(Frame{C, 0, {}, false});
      continue;
    }
    for (auto It = Fr.Pushed.rbegin(); It != Fr.Pushed.rend(); ++It)
      Stacks[*It].pop_back();
    Walk.pop_back();
  }
  return S;
}

bool pst::verifySsa(const LoweredFunction &F, const SsaForm &S,
                    std::string *Why) {
  const Cfg &G = F.Graph;
  auto Fail = [&](std::string Msg) {
    if (Why)
      *Why = std::move(Msg);
    return false;
  };
  DomTree DT = DomTree::buildIterative(G);

  // Collect each version's defining block; detect double definitions.
  // DefBlock[v][k] = block defining version k (entry for version 0).
  std::vector<std::vector<NodeId>> DefBlock(F.numVars());
  for (VarId V = 0; V < F.numVars(); ++V)
    DefBlock[V].assign(S.NumVersions[V], InvalidNode);
  for (VarId V = 0; V < F.numVars(); ++V)
    DefBlock[V][0] = G.entry();

  auto Define = [&](VarId V, uint32_t Ver, NodeId B) {
    if (Ver == 0 || Ver >= S.NumVersions[V])
      return false;
    if (DefBlock[V][Ver] != InvalidNode)
      return false;
    DefBlock[V][Ver] = B;
    return true;
  };

  for (NodeId B = 0; B < G.numNodes(); ++B) {
    for (const SsaPhi &Phi : S.Phis[B]) {
      if (!Define(Phi.Var, Phi.DefVersion, B))
        return Fail("phi defines version twice or out of range in block " +
                    G.nodeName(B));
      if (Phi.Incoming.size() != G.predEdges(B).size())
        return Fail("phi operand count mismatch in block " + G.nodeName(B));
    }
    for (size_t I = 0; I < F.Code[B].size(); ++I) {
      const Instruction &Ins = F.Code[B][I];
      if (Ins.Def != InvalidVar &&
          !Define(Ins.Def, S.Versions[B][I].DefVersion, B))
        return Fail("instruction defines version twice in block " +
                    G.nodeName(B));
      if (S.Versions[B][I].UseVersions.size() != Ins.Uses.size())
        return Fail("use version count mismatch in block " + G.nodeName(B));
    }
  }
  for (VarId V = 0; V < F.numVars(); ++V)
    for (uint32_t K = 0; K < S.NumVersions[V]; ++K)
      if (DefBlock[V][K] == InvalidNode)
        return Fail("version never defined: " + F.VarNames[V] + "." +
                    std::to_string(K));

  // Dominance: straight-line uses must be dominated by their defs; phi
  // operands by the end of the corresponding predecessor. (Same-block
  // ordering is guaranteed by the renaming walk; we check block-level
  // dominance here.)
  for (NodeId B = 0; B < G.numNodes(); ++B) {
    for (size_t I = 0; I < F.Code[B].size(); ++I) {
      const Instruction &Ins = F.Code[B][I];
      for (size_t U = 0; U < Ins.Uses.size(); ++U) {
        NodeId DB = DefBlock[Ins.Uses[U]][S.Versions[B][I].UseVersions[U]];
        if (!DT.dominates(DB, B))
          return Fail("use of " + F.VarNames[Ins.Uses[U]] +
                      " not dominated by its definition in block " +
                      G.nodeName(B));
      }
    }
    for (const SsaPhi &Phi : S.Phis[B]) {
      for (const auto &[E, Ver] : Phi.Incoming) {
        NodeId Pred = G.source(E);
        NodeId DB = DefBlock[Phi.Var][Ver];
        if (!DT.dominates(DB, Pred))
          return Fail("phi operand not dominated by its definition at " +
                      G.nodeName(B));
      }
    }
  }
  if (Why)
    Why->clear();
  return true;
}

std::string pst::formatSsa(const LoweredFunction &F, const SsaForm &S) {
  const Cfg &G = F.Graph;
  std::ostringstream OS;
  for (NodeId B = 0; B < G.numNodes(); ++B) {
    OS << G.nodeName(B) << ":\n";
    for (const SsaPhi &Phi : S.Phis[B]) {
      OS << "  " << F.VarNames[Phi.Var] << "." << Phi.DefVersion
         << " = phi(";
      for (size_t I = 0; I < Phi.Incoming.size(); ++I) {
        if (I)
          OS << ", ";
        OS << F.VarNames[Phi.Var] << "." << Phi.Incoming[I].second;
      }
      OS << ")\n";
    }
    for (size_t I = 0; I < F.Code[B].size(); ++I) {
      const Instruction &Ins = F.Code[B][I];
      OS << "  " << Ins.Text;
      if (Ins.Def != InvalidVar)
        OS << "  [defines " << F.VarNames[Ins.Def] << "."
           << S.Versions[B][I].DefVersion << "]";
      OS << "\n";
    }
  }
  return OS.str();
}
