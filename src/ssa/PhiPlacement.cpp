//===- PhiPlacement.cpp - Phi placement (classic & PST) -----------------------===//
//
// Part of the PST library (see PhiPlacement.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/ssa/PhiPlacement.h"

#include "pst/core/RegionAnalysis.h"
#include "pst/dom/Dominators.h"
#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <optional>

using namespace pst;

namespace {

template <class GraphT>
PhiPlacement placePhisClassicImpl(const LoweredFunction &F, const GraphT &G) {
  PST_SPAN("ssa.phi_classic");
  PST_COUNTER("ssa.classic_placements", 1);
  DomTree DT = DomTree::buildIterative(G);
  DominanceFrontiers DF(G, DT);

  PhiPlacement P;
  P.PhiBlocks.resize(F.numVars());
  P.RegionsExamined.resize(F.numVars());
  // The classic algorithm has no region notion; both Figure-10 counters
  // are filled in by the caller when comparing against the PST variant.
  for (VarId V = 0; V < F.numVars(); ++V) {
    // Convention: every variable has an implicit definition at entry (the
    // "undefined" initial value), as in Cytron et al.
    std::vector<NodeId> Defs = F.defBlocks(V);
    Defs.push_back(G.entry());
    std::sort(Defs.begin(), Defs.end());
    Defs.erase(std::unique(Defs.begin(), Defs.end()), Defs.end());
    P.PhiBlocks[V] = DF.iterated(Defs);
    P.RegionsExamined[V] = 0;
  }
  return P;
}

/// Per-region quotient machinery cached across variables: the collapsed
/// body as a CFG with a virtual entry (so dominators are rooted), its
/// dominance frontiers, and the quotient-node meanings.
struct RegionSolver {
  Cfg Q;
  uint32_t VirtualEntry = 0;
  CollapsedBody Body;
  std::optional<DomTree> DT;
  std::optional<DominanceFrontiers> DF;

  template <class GraphT>
  void build(const GraphT &G, const ProgramStructureTree &T, RegionId R) {
    Body = collapseRegion(G, T, R);
    for (uint32_t I = 0; I < Body.numNodes(); ++I)
      Q.addNode();
    VirtualEntry = Q.addNode("ventry");
    uint32_t VirtualExit = Q.addNode("vexit");
    for (const auto &E : Body.Edges)
      Q.addEdge(E.Src, E.Dst);
    Q.addEdge(VirtualEntry, Body.EntryQ);
    Q.addEdge(Body.ExitQ, VirtualExit);
    Q.setEntry(VirtualEntry);
    Q.setExit(VirtualExit);
    DT.emplace(DomTree::buildIterative(Q));
    DF.emplace(Q, *DT);
  }
};

template <class GraphT>
PhiPlacement placePhisPstImpl(const LoweredFunction &F, const GraphT &G,
                              const ProgramStructureTree &T) {
  PST_SPAN("ssa.phi_pst");
  PST_COUNTER("ssa.pst_placements", 1);
  uint32_t NumRegions = T.numRegions();

  PhiPlacement P;
  P.PhiBlocks.resize(F.numVars());
  P.RegionsExamined.resize(F.numVars());
  P.RegionsTotal = NumRegions;

  // Lazily built per-region solvers, shared across variables.
  std::vector<std::optional<RegionSolver>> Solvers(NumRegions);
  auto SolverFor = [&](RegionId R) -> RegionSolver & {
    if (!Solvers[R]) {
      Solvers[R].emplace();
      Solvers[R]->build(G, T, R);
    }
    return *Solvers[R];
  };

  // Epoch-stamped mark array, reused per variable.
  std::vector<uint32_t> MarkEpoch(NumRegions, 0);
  std::vector<uint32_t> DefEpoch(G.numNodes(), 0);
  uint32_t Epoch = 0;

  for (VarId V = 0; V < F.numVars(); ++V) {
    ++Epoch;
    std::vector<NodeId> Defs = F.defBlocks(V);
    for (NodeId D : Defs)
      DefEpoch[D] = Epoch;

    // Step 1: mark every region whose subtree contains a definition by
    // walking ancestors from each def block's innermost region.
    std::vector<RegionId> Marked;
    for (NodeId D : Defs) {
      for (RegionId R = T.regionOfNode(D);
           R != InvalidRegion && MarkEpoch[R] != Epoch;
           R = T.region(R).Parent) {
        MarkEpoch[R] = Epoch;
        Marked.push_back(R);
      }
    }
    // Figure 10's measure: regions the variable's own assignments force
    // us to examine.
    P.RegionsExamined[V] = static_cast<uint32_t>(Marked.size());
    PST_COUNTER("ssa.regions_examined", Marked.size());

    // The implicit entry definition (same convention as the classic side)
    // additionally marks the root.
    DefEpoch[G.entry()] = Epoch;
    if (MarkEpoch[T.root()] != Epoch) {
      MarkEpoch[T.root()] = Epoch;
      Marked.push_back(T.root());
    }

    // Steps 2+3: solve each marked region on its collapsed body.
    std::vector<NodeId> Phis;
    for (RegionId R : Marked) {
      RegionSolver &S = SolverFor(R);
      // Definition sites in the quotient: the virtual entry (region entry
      // acts as a definition), immediate def blocks, and marked children
      // (a collapsed child containing a def is one definition).
      std::vector<NodeId> QDefs{S.VirtualEntry};
      for (uint32_t I = 0; I < S.Body.numNodes(); ++I) {
        const auto &N = S.Body.Nodes[I];
        if (N.IsRegion ? MarkEpoch[N.Region] == Epoch
                       : DefEpoch[N.Node] == Epoch)
          QDefs.push_back(I);
      }
      for (NodeId M : S.DF->iterated(QDefs)) {
        // Phis land on immediate CFG nodes only (a collapsed child has a
        // single external predecessor, its entry edge).
        if (M < S.Body.numNodes() && !S.Body.Nodes[M].IsRegion)
          Phis.push_back(S.Body.Nodes[M].Node);
      }
    }
    std::sort(Phis.begin(), Phis.end());
    Phis.erase(std::unique(Phis.begin(), Phis.end()), Phis.end());
    P.PhiBlocks[V] = std::move(Phis);
  }
  return P;
}

} // namespace

PhiPlacement pst::placePhisClassic(const LoweredFunction &F) {
  return placePhisClassicImpl(F, F.Graph);
}

PhiPlacement pst::placePhisClassic(const LoweredFunction &F,
                                   const CfgView &V) {
  return placePhisClassicImpl(F, V);
}

PhiPlacement pst::placePhisPst(const LoweredFunction &F,
                               const ProgramStructureTree &T) {
  return placePhisPstImpl(F, F.Graph, T);
}

PhiPlacement pst::placePhisPst(const LoweredFunction &F, const CfgView &V,
                               const ProgramStructureTree &T) {
  return placePhisPstImpl(F, V, T);
}
