//===- PstDominators.cpp - D&C dominators via the PST --------------------------===//
//
// Part of the PST library (see PstDominators.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/core/PstDominators.h"

#include "pst/core/RegionAnalysis.h"

#include <cassert>

using namespace pst;

namespace {

template <class GraphT>
DomTree buildDominatorsViaPstImpl(const GraphT &G,
                                  const ProgramStructureTree &T) {
  std::vector<NodeId> Idom(G.numNodes(), InvalidNode);

  for (RegionId R = 0; R < T.numRegions(); ++R) {
    CollapsedBody B = collapseRegion(G, T, R);

    // Local dominators of the collapsed body, rooted at the region's
    // entry-side node (the body's only entrance).
    Cfg Q;
    for (uint32_t I = 0; I < B.numNodes(); ++I)
      Q.addNode();
    for (const auto &E : B.Edges)
      Q.addEdge(E.Src, E.Dst);
    Q.setEntry(B.EntryQ);
    Q.setExit(B.ExitQ); // Unused by the builder; kept for completeness.
    DomTree Local = DomTree::buildIterative(Q);

    // Maps a quotient node to the CFG node that dominates everything
    // "after" it: itself for immediate nodes, the exit-edge source for a
    // collapsed child (the last node on every path through the child).
    auto MapDominator = [&](uint32_t QN) -> NodeId {
      const auto &Node = B.Nodes[QN];
      if (!Node.IsRegion)
        return Node.Node;
      return G.source(T.region(Node.Region).ExitEdge);
    };

    for (uint32_t QN = 0; QN < B.numNodes(); ++QN) {
      const auto &Node = B.Nodes[QN];
      if (Node.IsRegion)
        continue; // The child's own solve handles its interior.
      NodeId N = Node.Node;
      if (QN == B.EntryQ) {
        // The region's entry node: dominated directly by the entry edge's
        // source (in the parent's body). The procedure entry is the global
        // root and keeps InvalidNode.
        if (R != T.root())
          Idom[N] = G.source(T.region(R).EntryEdge);
        continue;
      }
      uint32_t LocalIdom = Local.idom(QN);
      assert(LocalIdom != InvalidNode && "body node unreachable from entry");
      Idom[N] = MapDominator(LocalIdom);
    }
  }

  return DomTree::fromIdom(G.entry(), std::move(Idom));
}

} // namespace

DomTree pst::buildDominatorsViaPst(const Cfg &G,
                                   const ProgramStructureTree &T) {
  return buildDominatorsViaPstImpl(G, T);
}

DomTree pst::buildDominatorsViaPst(const CfgView &V,
                                   const ProgramStructureTree &T) {
  return buildDominatorsViaPstImpl(V, T);
}
