//===- SeseOracle.cpp - Definition-level SESE oracle -------------------------===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/core/SeseOracle.h"

#include "pst/cycleequiv/CycleEquivBrute.h"

#include <algorithm>

using namespace pst;

bool pst::existsPathAvoidingEdge(const Cfg &G, NodeId From, NodeId To,
                                 EdgeId Avoid) {
  if (From == To)
    return true;
  std::vector<bool> Seen(G.numNodes(), false);
  std::vector<NodeId> Work{From};
  Seen[From] = true;
  while (!Work.empty()) {
    NodeId N = Work.back();
    Work.pop_back();
    for (EdgeId E : G.succEdges(N)) {
      if (E == Avoid)
        continue;
      NodeId W = G.target(E);
      if (W == To)
        return true;
      if (!Seen[W]) {
        Seen[W] = true;
        Work.push_back(W);
      }
    }
  }
  return false;
}

bool pst::edgeDominatesBrute(const Cfg &G, EdgeId A, EdgeId B) {
  if (A == B)
    return true;
  // A path "reaching B" is a path from entry to source(B) followed by B;
  // A fails to dominate iff such a path can avoid A.
  return !existsPathAvoidingEdge(G, G.entry(), G.source(B), A);
}

bool pst::edgePostDominatesBrute(const Cfg &G, EdgeId B, EdgeId A) {
  if (A == B)
    return true;
  return !existsPathAvoidingEdge(G, G.target(A), G.exit(), B);
}

bool pst::isSeseRegionBrute(const Cfg &G, EdgeId A, EdgeId B) {
  if (A == B)
    return false;
  if (!edgeDominatesBrute(G, A, B))
    return false;
  if (!edgePostDominatesBrute(G, B, A))
    return false;
  // Condition 3: cycle equivalence *in G* (not in G + return edge).
  return cycleEquivalentBrute(G, A, B);
}

bool pst::nodeInRegionBrute(const Cfg &G, EdgeId A, EdgeId B, NodeId N) {
  return !existsPathAvoidingEdge(G, G.entry(), N, A) &&
         !existsPathAvoidingEdge(G, N, G.exit(), B);
}

std::vector<std::pair<EdgeId, EdgeId>>
pst::canonicalRegionsBrute(const Cfg &G) {
  uint32_t E = G.numEdges();
  // All SESE pairs, indexed by entry and by exit.
  std::vector<std::vector<EdgeId>> ExitsOf(E), EntriesOf(E);
  for (EdgeId A = 0; A < E; ++A)
    for (EdgeId B = 0; B < E; ++B)
      if (A != B && isSeseRegionBrute(G, A, B)) {
        ExitsOf[A].push_back(B);
        EntriesOf[B].push_back(A);
      }

  std::vector<std::pair<EdgeId, EdgeId>> Result;
  for (EdgeId A = 0; A < E; ++A) {
    for (EdgeId B : ExitsOf[A]) {
      // Canonical: B dominates every other exit of A, and A postdominates
      // every other entry of B (Definition 5).
      bool Canon = true;
      for (EdgeId B2 : ExitsOf[A])
        if (!edgeDominatesBrute(G, B, B2)) {
          Canon = false;
          break;
        }
      if (Canon)
        for (EdgeId A2 : EntriesOf[B])
          if (!edgePostDominatesBrute(G, A, A2)) {
            Canon = false;
            break;
          }
      if (Canon)
        Result.emplace_back(A, B);
    }
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}
