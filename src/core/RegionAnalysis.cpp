//===- RegionAnalysis.cpp - Collapse & classify regions ---------------------===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/core/RegionAnalysis.h"

#include "pst/graph/CfgAlgorithms.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace pst;

/// Maps CFG node \p N to the child-of-\p R (or \p R itself) that contains
/// it, or InvalidRegion if N is outside R's subtree.
static RegionId liftToChild(const ProgramStructureTree &T, RegionId R,
                            NodeId N) {
  RegionId Cur = T.regionOfNode(N);
  RegionId Prev = InvalidRegion;
  while (Cur != InvalidRegion) {
    if (Cur == R)
      return Prev == InvalidRegion ? R : Prev;
    Prev = Cur;
    Cur = T.region(Cur).Parent;
  }
  return InvalidRegion;
}

namespace {

/// Shared kernel of the Cfg and CfgView collapseRegion overloads; both
/// traverse the same edge lists in the same order, so the quotient bodies
/// come out identical.
template <class GraphT>
CollapsedBody collapseRegionImpl(const GraphT &G,
                                 const ProgramStructureTree &T, RegionId R) {
  CollapsedBody B;
  std::unordered_map<uint64_t, uint32_t> QIndex; // Keyed below.
  auto NodeKey = [](NodeId N) { return uint64_t(N); };
  auto RegionKey = [](RegionId Rg) { return (uint64_t(1) << 40) | Rg; };

  auto GetQ = [&](uint64_t Key, bool IsRegion, NodeId N,
                  RegionId Rg) -> uint32_t {
    auto It = QIndex.find(Key);
    if (It != QIndex.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(B.Nodes.size());
    B.Nodes.push_back(CollapsedBody::QNode{IsRegion, N, Rg});
    QIndex.emplace(Key, Idx);
    return Idx;
  };

  // Immediate nodes first (stable order), then child regions.
  for (NodeId N : T.immediateNodes(R))
    GetQ(NodeKey(N), false, N, InvalidRegion);
  for (RegionId C : T.children(R))
    GetQ(RegionKey(C), true, InvalidNode, C);

  auto MapNode = [&](NodeId N) -> uint32_t {
    RegionId Child = liftToChild(T, R, N);
    if (Child == InvalidRegion)
      return UINT32_MAX;
    if (Child == R)
      return QIndex.at(NodeKey(N));
    return QIndex.at(RegionKey(Child));
  };

  // Collect edges whose both endpoints live in R's subtree, skipping edges
  // internal to one collapsed child. The region's own entry/exit edges have
  // an endpoint outside R and drop out naturally.
  auto CollectEdgesOf = [&](NodeId N) {
    for (EdgeId E : G.succEdges(N)) {
      uint32_t QS = MapNode(G.source(E));
      uint32_t QD = MapNode(G.target(E));
      if (QS == UINT32_MAX || QD == UINT32_MAX)
        continue;
      if (QS == QD && B.Nodes[QS].IsRegion)
        continue; // Internal to the child region.
      B.Edges.push_back(CollapsedBody::QEdge{QS, QD, E});
    }
  };
  for (NodeId N : T.immediateNodes(R))
    CollectEdgesOf(N);
  for (RegionId C : T.children(R)) {
    // Only the child's exit-side boundary node can start edges that leave
    // the collapsed child: its exit edge. Other internal edges were
    // skipped above; we must still scan the child's nodes for edges that
    // leave the child subtree (exactly its exit edge, by the SESE
    // property).
    EdgeId Exit = T.region(C).ExitEdge;
    uint32_t QS = MapNode(G.source(Exit));
    uint32_t QD = MapNode(G.target(Exit));
    if (QS != UINT32_MAX && QD != UINT32_MAX &&
        !(QS == QD && B.Nodes[QS].IsRegion))
      B.Edges.push_back(CollapsedBody::QEdge{QS, QD, Exit});
  }

  // Entry/exit quotient nodes.
  if (R == T.root()) {
    B.EntryQ = MapNode(G.entry());
    B.ExitQ = MapNode(G.exit());
  } else {
    B.EntryQ = MapNode(G.target(T.region(R).EntryEdge));
    B.ExitQ = MapNode(G.source(T.region(R).ExitEdge));
  }
  return B;
}

} // namespace

CollapsedBody pst::collapseRegion(const Cfg &G, const ProgramStructureTree &T,
                                  RegionId R) {
  return collapseRegionImpl(G, T, R);
}

CollapsedBody pst::collapseRegion(const CfgView &V,
                                  const ProgramStructureTree &T, RegionId R) {
  return collapseRegionImpl(V, T, R);
}

const char *pst::regionKindName(RegionKind K) {
  switch (K) {
  case RegionKind::Block:
    return "block";
  case RegionKind::IfThen:
    return "if-then";
  case RegionKind::IfThenElse:
    return "if-then-else";
  case RegionKind::Case:
    return "case";
  case RegionKind::Loop:
    return "loop";
  case RegionKind::Dag:
    return "dag";
  case RegionKind::CyclicUnstructured:
    return "cyclic";
  }
  return "unknown";
}

/// Cycle check on the quotient body via iterative coloring.
static bool bodyHasCycle(const CollapsedBody &B) {
  uint32_t N = B.numNodes();
  std::vector<std::vector<uint32_t>> Succ(N);
  for (const auto &E : B.Edges) {
    if (E.Src == E.Dst)
      return true; // Self loop.
    Succ[E.Src].push_back(E.Dst);
  }
  std::vector<uint8_t> Color(N, 0); // 0 white, 1 grey, 2 black.
  for (uint32_t S = 0; S < N; ++S) {
    if (Color[S])
      continue;
    std::vector<std::pair<uint32_t, uint32_t>> Stack{{S, 0}};
    Color[S] = 1;
    while (!Stack.empty()) {
      auto &[V, Next] = Stack.back();
      if (Next == Succ[V].size()) {
        Color[V] = 2;
        Stack.pop_back();
        continue;
      }
      uint32_t W = Succ[V][Next++];
      if (Color[W] == 1)
        return true;
      if (Color[W] == 0) {
        Color[W] = 1;
        Stack.emplace_back(W, 0);
      }
    }
  }
  return false;
}

RegionKind pst::classifyRegion(const Cfg &G, const ProgramStructureTree &T,
                               RegionId R) {
  CollapsedBody B = collapseRegion(G, T, R);
  uint32_t N = B.numNodes();

  if (N == 1 && B.Edges.empty())
    return RegionKind::Block;

  if (bodyHasCycle(B)) {
    // Reducible cyclic bodies count as loops; irreducible ones as cyclic
    // unstructured (the paper's last bucket).
    Cfg Q;
    for (uint32_t I = 0; I < N; ++I)
      Q.addNode();
    for (const auto &E : B.Edges)
      Q.addEdge(E.Src, E.Dst);
    // Reducibility only needs the entry; the quotient may not be a valid
    // two-terminal CFG so validate is never called on it.
    Q.setEntry(B.EntryQ);
    Q.setExit(B.ExitQ);
    return isReducible(Q) ? RegionKind::Loop
                          : RegionKind::CyclicUnstructured;
  }

  // Acyclic shapes: one branch node whose arms are disjoint linear chains
  // (possibly empty, possibly several sequential regions long) that all
  // converge on one join node, covering the whole body.
  if (B.EntryQ < N && B.ExitQ < N && B.EntryQ != B.ExitQ) {
    std::vector<std::vector<uint32_t>> Succ(N);
    std::vector<uint32_t> Indeg(N, 0);
    for (const auto &E : B.Edges) {
      Succ[E.Src].push_back(E.Dst);
      ++Indeg[E.Dst];
    }
    const auto &EntrySuccs = Succ[B.EntryQ];
    uint32_t Join = B.ExitQ;
    if (EntrySuccs.size() >= 2 && Succ[Join].empty()) {
      bool AllArmsSimple = true;
      uint32_t DirectToJoin = 0, Covered = 2; // Entry and join.
      for (uint32_t Arm : EntrySuccs) {
        if (Arm == Join) {
          ++DirectToJoin;
          continue;
        }
        // Walk the chain: every hop must be a straight link.
        uint32_t Cur = Arm;
        while (Cur != Join) {
          if (Indeg[Cur] != 1 || Succ[Cur].size() != 1) {
            AllArmsSimple = false;
            break;
          }
          ++Covered;
          Cur = Succ[Cur][0];
        }
        if (!AllArmsSimple)
          break;
      }
      if (AllArmsSimple && Covered == N) {
        if (EntrySuccs.size() == 2 && DirectToJoin == 1)
          return RegionKind::IfThen;
        if (EntrySuccs.size() == 2 && DirectToJoin == 0)
          return RegionKind::IfThenElse;
        if (EntrySuccs.size() >= 3)
          return RegionKind::Case;
      }
    }
  }
  return RegionKind::Dag;
}

uint32_t pst::regionWeight(const ProgramStructureTree &T, RegionId R) {
  uint32_t K = static_cast<uint32_t>(T.children(R).size());
  return K == 0 ? 1 : K;
}

std::string pst::formatPst(const Cfg &G, const ProgramStructureTree &T) {
  std::ostringstream OS;
  // Depth-first print of the region tree.
  std::vector<std::pair<RegionId, uint32_t>> Stack{{T.root(), 0}};
  while (!Stack.empty()) {
    auto [R, Indent] = Stack.back();
    Stack.pop_back();
    OS << std::string(Indent * 2, ' ');
    if (R == T.root()) {
      OS << "procedure";
    } else {
      const SeseRegion &Reg = T.region(R);
      OS << "region " << R << " ("
         << G.nodeName(G.source(Reg.EntryEdge)) << "->"
         << G.nodeName(G.target(Reg.EntryEdge)) << ", "
         << G.nodeName(G.source(Reg.ExitEdge)) << "->"
         << G.nodeName(G.target(Reg.ExitEdge)) << ") "
         << regionKindName(classifyRegion(G, T, R));
    }
    OS << " [nodes:";
    for (NodeId N : T.immediateNodes(R))
      OS << ' ' << G.nodeName(N);
    OS << "]\n";
    const auto Kids = T.children(R);
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stack.emplace_back(*It, Indent + 1);
  }
  return OS.str();
}
