//===- StructureMetrics.cpp - Figure 5/6/7/9 metrics -------------------------===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/core/StructureMetrics.h"

#include <algorithm>

using namespace pst;

PstStats pst::computePstStats(const Cfg &G, const ProgramStructureTree &T) {
  PstStats S;
  S.NumRegions = T.numCanonicalRegions();

  double DepthSum = 0;
  for (RegionId R = 0; R < T.numRegions(); ++R) {
    CollapsedBody B = collapseRegion(G, T, R);
    S.MaxRegionSize = std::max(S.MaxRegionSize, B.numNodes());
    if (R == T.root())
      continue;
    uint32_t D = T.region(R).Depth;
    S.DepthHist.add(D);
    S.MaxDepth = std::max(S.MaxDepth, D);
    DepthSum += D;

    RegionKind K = classifyRegion(G, T, R);
    S.WeightedKind[static_cast<size_t>(K)] += regionWeight(T, R);
    if (K == RegionKind::Dag || K == RegionKind::CyclicUnstructured)
      S.FullyStructured = false;
  }
  S.AvgDepth = S.NumRegions ? DepthSum / S.NumRegions : 0.0;
  return S;
}
