//===- ProgramStructureTree.cpp - The PST -----------------------------------===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"

#include "pst/graph/CfgAlgorithms.h"
#include "pst/obs/ScopedTimer.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace pst;

void ProgramStructureTree::bindOwned() {
  RegionsA = Regions;
  NodeRegionA = NodeRegion;
  EdgeRegionA = EdgeRegion;
  EntryOfA = EntryOf;
  ExitOfA = ExitOf;
  ChildOffA = ChildOff;
  ChildValA = ChildVal;
  ImmOffA = ImmOff;
  ImmValA = ImmVal;
  External = false;
}

ProgramStructureTree::ProgramStructureTree(const ProgramStructureTree &O)
    : Regions(O.Regions), NodeRegion(O.NodeRegion), EdgeRegion(O.EdgeRegion),
      EntryOf(O.EntryOf), ExitOf(O.ExitOf), ChildOff(O.ChildOff),
      ChildVal(O.ChildVal), ImmOff(O.ImmOff), ImmVal(O.ImmVal), CE(O.CE) {
  if (O.External) {
    // Adopted tree: the copy aliases the same external storage.
    RegionsA = O.RegionsA;
    NodeRegionA = O.NodeRegionA;
    EdgeRegionA = O.EdgeRegionA;
    EntryOfA = O.EntryOfA;
    ExitOfA = O.ExitOfA;
    ChildOffA = O.ChildOffA;
    ChildValA = O.ChildValA;
    ImmOffA = O.ImmOffA;
    ImmValA = O.ImmValA;
    External = true;
  } else {
    bindOwned();
  }
}

ProgramStructureTree &
ProgramStructureTree::operator=(const ProgramStructureTree &O) {
  if (this != &O) {
    ProgramStructureTree Tmp(O);
    *this = std::move(Tmp);
  }
  return *this;
}

ProgramStructureTree ProgramStructureTree::adoptExternal(
    std::span<const SeseRegion> Regions, std::span<const RegionId> NodeRegion,
    std::span<const RegionId> EdgeRegion, std::span<const RegionId> EntryOf,
    std::span<const RegionId> ExitOf, std::span<const uint32_t> ChildOff,
    std::span<const RegionId> ChildVal, std::span<const uint32_t> ImmOff,
    std::span<const NodeId> ImmVal) {
  ProgramStructureTree T;
  T.RegionsA = Regions;
  T.NodeRegionA = NodeRegion;
  T.EdgeRegionA = EdgeRegion;
  T.EntryOfA = EntryOf;
  T.ExitOfA = ExitOf;
  T.ChildOffA = ChildOff;
  T.ChildValA = ChildVal;
  T.ImmOffA = ImmOff;
  T.ImmValA = ImmVal;
  T.External = true;
  return T;
}

ProgramStructureTree ProgramStructureTree::build(const Cfg &G) {
  PstBuildScratch Scratch;
  return build(G, Scratch);
}

ProgramStructureTree ProgramStructureTree::build(const Cfg &G,
                                                 PstBuildScratch &Scratch) {
  PST_SPAN("pst.build");
  return buildWithCycleEquiv(G, Scratch.CE.run(G, /*AddReturnEdge=*/true),
                             Scratch);
}

ProgramStructureTree ProgramStructureTree::build(const CfgView &V,
                                                 PstBuildScratch &Scratch) {
  PST_SPAN("pst.build");
  return buildWithCycleEquiv(V, Scratch.CE.run(V, /*AddReturnEdge=*/true),
                             Scratch);
}

ProgramStructureTree
ProgramStructureTree::buildWithCycleEquiv(const Cfg &G, CycleEquivResult CE) {
  PstBuildScratch Scratch;
  return buildWithCycleEquiv(G, std::move(CE), Scratch);
}

// The construction proper, shared between the Cfg and CfgView overloads:
// both expose numNodes/numEdges/entry/succEdges/target, and the template
// guarantees the two paths traverse edges in the same order, which is what
// makes their trees bit-identical.
template <class GraphT>
ProgramStructureTree ProgramStructureTree::buildImpl(const GraphT &G,
                                                     CycleEquivResult CE,
                                                     PstBuildScratch &S) {
  // Region pairing + nesting only; the cycle-equivalence span nests under
  // pst.build when the caller came through build().
  PST_SPAN("pst.construct");
  assert(CE.HasReturnEdge && CE.EdgeClass.size() == G.numEdges() + 1 &&
         "CE must be a return-edge run over G");
  ProgramStructureTree T;
  T.CE = std::move(CE);
  uint32_t NumE = G.numEdges();

  // -- Pass 1: one directed DFS from entry recording the first-traversal
  // time of every edge. Within a cycle equivalence class this order is the
  // dominance order (a dominator is traversed before anything it
  // dominates on every walk from entry).
  S.EdgeTime.assign(NumE, UINT32_MAX);
  {
    uint32_t Clock = 0;
    S.Visited.assign(G.numNodes(), 0);
    S.Stack.clear();
    S.Visited[G.entry()] = 1;
    S.Stack.emplace_back(G.entry(), 0);
    while (!S.Stack.empty()) {
      auto &[V, Next] = S.Stack.back();
      const auto &Succs = G.succEdges(V);
      if (Next == Succs.size()) {
        S.Stack.pop_back();
        continue;
      }
      EdgeId E = Succs[Next++];
      S.EdgeTime[E] = Clock++;
      NodeId W = G.target(E);
      if (!S.Visited[W]) {
        S.Visited[W] = 1;
        S.Stack.emplace_back(W, 0);
      }
    }
  }

  // -- Pass 2: group real edges by class (a CSR offset/value array built
  // in two counting passes; per-class std::vector buckets would dominate
  // the allocation profile on the tiny procedures real corpora are made
  // of) and pair consecutive edges (in traversal-time order) into
  // canonical regions.
  uint32_t NumClasses = T.CE.NumClasses;
  S.ClassOff.assign(NumClasses + 1, 0);
  for (EdgeId E = 0; E < NumE; ++E) {
    assert(S.EdgeTime[E] != UINT32_MAX && "edge unreachable; CFG is invalid");
    ++S.ClassOff[T.CE.classOf(E) + 1];
  }
  // The class sizes fix the region count exactly (one region per
  // consecutive same-class pair, plus the synthetic root), so the region
  // table can be reserved to size: no doubling-growth reallocations.
  uint32_t NumRegions = 1;
  for (uint32_t C = 0; C < NumClasses; ++C)
    if (uint32_t Size = S.ClassOff[C + 1]; Size >= 2)
      NumRegions += Size - 1;
  T.Regions.reserve(NumRegions);
  for (uint32_t C = 0; C < NumClasses; ++C)
    S.ClassOff[C + 1] += S.ClassOff[C];
  S.ClassCursor.assign(S.ClassOff.begin(), S.ClassOff.end() - 1);
  S.ClassEdges.resize(NumE);
  for (EdgeId E = 0; E < NumE; ++E)
    S.ClassEdges[S.ClassCursor[T.CE.classOf(E)]++] = E;

  T.Regions.push_back(SeseRegion{}); // Synthetic root, id 0.
  T.EntryOf.assign(NumE, InvalidRegion);
  T.ExitOf.assign(NumE, InvalidRegion);
  for (uint32_t C = 0; C < NumClasses; ++C) {
    EdgeId *Begin = S.ClassEdges.data() + S.ClassOff[C];
    EdgeId *End = S.ClassEdges.data() + S.ClassOff[C + 1];
    if (End - Begin < 2)
      continue;
    std::sort(Begin, End, [&](EdgeId A, EdgeId B) {
      return S.EdgeTime[A] < S.EdgeTime[B];
    });
    for (EdgeId *I = Begin; I + 1 != End; ++I) {
      RegionId R = static_cast<RegionId>(T.Regions.size());
      SeseRegion Reg;
      Reg.EntryEdge = I[0];
      Reg.ExitEdge = I[1];
      T.Regions.push_back(Reg);
      // Only the first region opened by an edge is canonical for it; a
      // chain a,b,c yields (a,b) and (b,c) -- never (a,c).
      T.EntryOf[I[0]] = R;
      T.ExitOf[I[1]] = R;
    }
  }
  assert(T.Regions.size() == NumRegions && "region count mismatch");

  // -- Pass 3: replay the same DFS, assigning every traversed edge and
  // every discovered node its innermost region, and wiring up parents.
  // Exiting a region pops to that region's parent (already known: the
  // entry edge dominates the exit edge, so it was traversed first);
  // entering a region records the current region as its parent. The
  // sequence of entered regions is kept: its per-parent subsequences are
  // chronological, which is exactly the child order the tree exposes.
  T.NodeRegion.assign(G.numNodes(), T.root());
  T.EdgeRegion.assign(NumE, T.root());
  S.EntrySeq.clear();
  S.EntrySeq.reserve(NumRegions - 1);
  {
    S.Visited.assign(G.numNodes(), 0);
    S.Stack.clear();
    S.Visited[G.entry()] = 1;
    T.NodeRegion[G.entry()] = T.root();
    S.Stack.emplace_back(G.entry(), 0);
    while (!S.Stack.empty()) {
      auto &[V, Next] = S.Stack.back();
      const auto &Succs = G.succEdges(V);
      if (Next == Succs.size()) {
        S.Stack.pop_back();
        continue;
      }
      EdgeId E = Succs[Next++];
      RegionId Cur = T.NodeRegion[V];
      if (RegionId Exited = T.ExitOf[E]; Exited != InvalidRegion)
        Cur = T.Regions[Exited].Parent;
      if (RegionId Entered = T.EntryOf[E]; Entered != InvalidRegion) {
        T.Regions[Entered].Parent = Cur;
        T.Regions[Entered].Depth = T.Regions[Cur].Depth + 1;
        S.EntrySeq.push_back(Entered);
        Cur = Entered;
      }
      T.EdgeRegion[E] = Cur;
      NodeId W = G.target(E);
      if (!S.Visited[W]) {
        S.Visited[W] = 1;
        T.NodeRegion[W] = Cur;
        S.Stack.emplace_back(W, 0);
      }
    }
  }

  // Children CSR: counting pass over the entry sequence, scatter in entry
  // order (preserves per-parent chronological order).
  T.ChildOff.assign(NumRegions + 1, 0);
  for (RegionId R : S.EntrySeq)
    ++T.ChildOff[T.Regions[R].Parent + 1];
  for (size_t I = 1; I < T.ChildOff.size(); ++I)
    T.ChildOff[I] += T.ChildOff[I - 1];
  S.RegionCursor.assign(T.ChildOff.begin(), T.ChildOff.end() - 1);
  T.ChildVal.resize(S.EntrySeq.size());
  for (RegionId R : S.EntrySeq)
    T.ChildVal[S.RegionCursor[T.Regions[R].Parent]++] = R;

  // Immediate-node CSR: counting pass over NodeRegion, scatter in node-id
  // order (the discovery order the per-region vectors used to get).
  T.ImmOff.assign(NumRegions + 1, 0);
  for (NodeId N = 0; N < G.numNodes(); ++N)
    ++T.ImmOff[T.NodeRegion[N] + 1];
  for (size_t I = 1; I < T.ImmOff.size(); ++I)
    T.ImmOff[I] += T.ImmOff[I - 1];
  S.RegionCursor.assign(T.ImmOff.begin(), T.ImmOff.end() - 1);
  T.ImmVal.resize(G.numNodes());
  for (NodeId N = 0; N < G.numNodes(); ++N)
    T.ImmVal[S.RegionCursor[T.NodeRegion[N]]++] = N;

  T.bindOwned();
  PST_COUNTER("pst.builds", 1);
  PST_COUNTER("pst.canonical_regions", T.numCanonicalRegions());
  PST_VALUE("pst.regions_per_build", T.numCanonicalRegions());
  return T;
}

ProgramStructureTree
ProgramStructureTree::buildWithCycleEquiv(const Cfg &G, CycleEquivResult CE,
                                          PstBuildScratch &S) {
  return buildImpl(G, std::move(CE), S);
}

ProgramStructureTree
ProgramStructureTree::buildWithCycleEquiv(const CfgView &V, CycleEquivResult CE,
                                          PstBuildScratch &S) {
  return buildImpl(V, std::move(CE), S);
}

std::vector<NodeId> ProgramStructureTree::allNodes(RegionId R) const {
  std::vector<NodeId> Out;
  std::vector<RegionId> Work{R};
  while (!Work.empty()) {
    RegionId Cur = Work.back();
    Work.pop_back();
    auto Imm = immediateNodes(Cur);
    Out.insert(Out.end(), Imm.begin(), Imm.end());
    for (RegionId C : children(Cur))
      Work.push_back(C);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool ProgramStructureTree::contains(RegionId Outer, RegionId Inner) const {
  while (Inner != InvalidRegion) {
    if (Inner == Outer)
      return true;
    Inner = RegionsA[Inner].Parent;
  }
  return false;
}
