//===- ProgramStructureTree.cpp - The PST -----------------------------------===//
//
// Part of the PST library (see ProgramStructureTree.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"

#include "pst/graph/CfgAlgorithms.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace pst;

ProgramStructureTree ProgramStructureTree::build(const Cfg &G) {
  return buildWithCycleEquiv(G, computeCycleEquivalence(G,
                                                        /*AddReturnEdge=*/true));
}

ProgramStructureTree
ProgramStructureTree::buildWithCycleEquiv(const Cfg &G, CycleEquivResult CE) {
  assert(CE.HasReturnEdge && CE.EdgeClass.size() == G.numEdges() + 1 &&
         "CE must be a return-edge run over G");
  ProgramStructureTree T;
  T.CE = std::move(CE);
  uint32_t NumE = G.numEdges();

  // -- Pass 1: one directed DFS from entry recording the first-traversal
  // time of every edge. Within a cycle equivalence class this order is the
  // dominance order (a dominator is traversed before anything it
  // dominates on every walk from entry).
  std::vector<uint32_t> EdgeTime(NumE, UINT32_MAX);
  {
    uint32_t Clock = 0;
    std::vector<bool> Visited(G.numNodes(), false);
    std::vector<std::pair<NodeId, uint32_t>> Stack;
    Visited[G.entry()] = true;
    Stack.emplace_back(G.entry(), 0);
    while (!Stack.empty()) {
      auto &[V, Next] = Stack.back();
      const auto &Succs = G.succEdges(V);
      if (Next == Succs.size()) {
        Stack.pop_back();
        continue;
      }
      EdgeId E = Succs[Next++];
      EdgeTime[E] = Clock++;
      NodeId W = G.target(E);
      if (!Visited[W]) {
        Visited[W] = true;
        Stack.emplace_back(W, 0);
      }
    }
  }

  // -- Pass 2: group real edges by class and pair consecutive edges (in
  // traversal-time order) into canonical regions.
  uint32_t NumClasses = T.CE.NumClasses;
  std::vector<std::vector<EdgeId>> ClassEdges(NumClasses);
  for (EdgeId E = 0; E < NumE; ++E) {
    assert(EdgeTime[E] != UINT32_MAX && "edge unreachable; CFG is invalid");
    ClassEdges[T.CE.classOf(E)].push_back(E);
  }

  T.Regions.push_back(SeseRegion{}); // Synthetic root, id 0.
  T.EntryOf.assign(NumE, InvalidRegion);
  T.ExitOf.assign(NumE, InvalidRegion);
  for (auto &Edges : ClassEdges) {
    if (Edges.size() < 2)
      continue;
    std::sort(Edges.begin(), Edges.end(), [&](EdgeId A, EdgeId B) {
      return EdgeTime[A] < EdgeTime[B];
    });
    for (size_t I = 0; I + 1 < Edges.size(); ++I) {
      RegionId R = static_cast<RegionId>(T.Regions.size());
      SeseRegion Reg;
      Reg.EntryEdge = Edges[I];
      Reg.ExitEdge = Edges[I + 1];
      T.Regions.push_back(Reg);
      // Only the first region opened by an edge is canonical for it; a
      // chain a,b,c yields (a,b) and (b,c) -- never (a,c).
      T.EntryOf[Edges[I]] = R;
      T.ExitOf[Edges[I + 1]] = R;
    }
  }

  // -- Pass 3: replay the same DFS, assigning every traversed edge and
  // every discovered node its innermost region, and wiring up parents.
  // Exiting a region pops to that region's parent (already known: the
  // entry edge dominates the exit edge, so it was traversed first);
  // entering a region records the current region as its parent.
  T.NodeRegion.assign(G.numNodes(), T.root());
  T.EdgeRegion.assign(NumE, T.root());
  {
    std::vector<bool> Visited(G.numNodes(), false);
    std::vector<std::pair<NodeId, uint32_t>> Stack;
    Visited[G.entry()] = true;
    T.NodeRegion[G.entry()] = T.root();
    Stack.emplace_back(G.entry(), 0);
    while (!Stack.empty()) {
      auto &[V, Next] = Stack.back();
      const auto &Succs = G.succEdges(V);
      if (Next == Succs.size()) {
        Stack.pop_back();
        continue;
      }
      EdgeId E = Succs[Next++];
      RegionId Cur = T.NodeRegion[V];
      if (RegionId Exited = T.ExitOf[E]; Exited != InvalidRegion)
        Cur = T.Regions[Exited].Parent;
      if (RegionId Entered = T.EntryOf[E]; Entered != InvalidRegion) {
        T.Regions[Entered].Parent = Cur;
        T.Regions[Cur].Children.push_back(Entered);
        T.Regions[Entered].Depth = T.Regions[Cur].Depth + 1;
        Cur = Entered;
      }
      T.EdgeRegion[E] = Cur;
      NodeId W = G.target(E);
      if (!Visited[W]) {
        Visited[W] = true;
        T.NodeRegion[W] = Cur;
        Stack.emplace_back(W, 0);
      }
    }
  }

  T.ImmediateNodes.assign(T.Regions.size(), {});
  for (NodeId N = 0; N < G.numNodes(); ++N)
    T.ImmediateNodes[T.NodeRegion[N]].push_back(N);
  return T;
}

std::vector<NodeId> ProgramStructureTree::allNodes(RegionId R) const {
  std::vector<NodeId> Out;
  std::vector<RegionId> Work{R};
  while (!Work.empty()) {
    RegionId Cur = Work.back();
    Work.pop_back();
    const auto &Imm = ImmediateNodes[Cur];
    Out.insert(Out.end(), Imm.begin(), Imm.end());
    for (RegionId C : Regions[Cur].Children)
      Work.push_back(C);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool ProgramStructureTree::contains(RegionId Outer, RegionId Inner) const {
  while (Inner != InvalidRegion) {
    if (Inner == Outer)
      return true;
    Inner = Regions[Inner].Parent;
  }
  return false;
}
