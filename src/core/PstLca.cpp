//===- PstLca.cpp - O(1) region LCA over the PST --------------------------===//
//
// Part of the PST library (see PstLca.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/core/PstLca.h"

#include <algorithm>
#include <cassert>
#include <utility>

using namespace pst;

PstLca::PstLca(const ProgramStructureTree &T) {
  const uint32_t R = T.numRegions();
  if (R == 0)
    return;

  const uint32_t TourLen = 2 * R - 1;
  Euler.reserve(TourLen);
  Depth.reserve(TourLen);
  First.assign(R, UINT32_MAX);

  // Iterative Euler tour from the synthetic root: push each region on
  // entry and again after each child's subtree returns.
  std::vector<std::pair<RegionId, uint32_t>> Stack;
  auto Visit = [&](RegionId Reg) {
    uint32_t D = T.region(Reg).Depth;
    if (First[Reg] == UINT32_MAX)
      First[Reg] = static_cast<uint32_t>(Euler.size());
    Euler.push_back(Reg);
    Depth.push_back(D);
    MaxDepth = std::max(MaxDepth, D);
  };
  Stack.emplace_back(T.root(), 0);
  Visit(T.root());
  while (!Stack.empty()) {
    auto &[Reg, ChildIdx] = Stack.back();
    std::span<const RegionId> Kids = T.children(Reg);
    if (ChildIdx < Kids.size()) {
      RegionId C = Kids[ChildIdx++];
      Visit(C);
      Stack.emplace_back(C, 0);
    } else {
      Stack.pop_back();
      if (!Stack.empty())
        Visit(Stack.back().first);
    }
  }
  assert(Euler.size() == TourLen && "malformed PST child structure");

  // floor(log2) lookup for range lengths 1..TourLen.
  Log2.assign(TourLen + 1, 0);
  for (uint32_t I = 2; I <= TourLen; ++I)
    Log2[I] = Log2[I / 2] + 1;

  // Sparse table of argmin tour indices over power-of-two windows.
  Width = TourLen;
  const uint32_t Levels = Log2[TourLen] + 1;
  Table.resize(static_cast<size_t>(Levels) * Width);
  for (uint32_t I = 0; I < Width; ++I)
    Table[I] = I;
  for (uint32_t L = 1; L < Levels; ++L) {
    uint32_t Half = 1u << (L - 1);
    uint32_t *Prev = Table.data() + static_cast<size_t>(L - 1) * Width;
    uint32_t *Cur = Table.data() + static_cast<size_t>(L) * Width;
    for (uint32_t I = 0; I + (1u << L) <= Width; ++I) {
      uint32_t A = Prev[I], B = Prev[I + Half];
      Cur[I] = Depth[A] <= Depth[B] ? A : B;
    }
  }
}

RegionId PstLca::lca(RegionId A, RegionId B) const {
  assert(!empty() && "querying an empty LCA index");
  uint32_t I = First[A], J = First[B];
  if (I > J)
    std::swap(I, J);
  uint32_t Len = J - I + 1;
  uint32_t L = Log2[Len];
  const uint32_t *Level = Table.data() + static_cast<size_t>(L) * Width;
  uint32_t X = Level[I], Y = Level[J - (1u << L) + 1];
  return Euler[Depth[X] <= Depth[Y] ? X : Y];
}

size_t PstLca::bytes() const {
  return Euler.capacity() * sizeof(RegionId) +
         Depth.capacity() * sizeof(uint32_t) +
         First.capacity() * sizeof(uint32_t) + Log2.capacity() +
         Table.capacity() * sizeof(uint32_t);
}
