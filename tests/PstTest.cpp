//===- PstTest.cpp - program structure tree tests ------------------------------===//
//
// Part of the PST library test suite: golden tests for canonical regions,
// nesting, containment and classification, plus property sweeps comparing
// the full PST pipeline against the Definition-3/5/6 oracle.
//
//===----------------------------------------------------------------------===//

#include "pst/core/ProgramStructureTree.h"

#include "pst/core/RegionAnalysis.h"
#include "pst/core/SeseOracle.h"
#include "pst/core/StructureMetrics.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace pst;

namespace {

std::set<std::pair<EdgeId, EdgeId>> regionPairs(const ProgramStructureTree &T) {
  std::set<std::pair<EdgeId, EdgeId>> Out;
  for (RegionId R = 1; R < T.numRegions(); ++R)
    Out.insert({T.region(R).EntryEdge, T.region(R).ExitEdge});
  return Out;
}

void expectRegionsMatchOracle(const Cfg &G, uint64_t Seed) {
  ProgramStructureTree T = ProgramStructureTree::build(G);
  auto Oracle = canonicalRegionsBrute(G);
  std::set<std::pair<EdgeId, EdgeId>> Fast = regionPairs(T);
  std::set<std::pair<EdgeId, EdgeId>> Slow(Oracle.begin(), Oracle.end());
  EXPECT_EQ(Fast, Slow) << "seed " << Seed;
}

void expectNestingMatchesOracle(const Cfg &G, uint64_t Seed) {
  ProgramStructureTree T = ProgramStructureTree::build(G);
  // For every node, the innermost region per Definition 6 over all
  // canonical regions must be what the PST reports.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    RegionId Best = T.root();
    uint32_t BestDepth = 0;
    for (RegionId R = 1; R < T.numRegions(); ++R) {
      const SeseRegion &Reg = T.region(R);
      if (nodeInRegionBrute(G, Reg.EntryEdge, Reg.ExitEdge, N) &&
          Reg.Depth > BestDepth) {
        Best = R;
        BestDepth = Reg.Depth;
      }
    }
    EXPECT_EQ(T.regionOfNode(N), Best)
        << "seed " << Seed << " node " << N << " (" << G.nodeName(N) << ")";
  }
  // Parent must be the innermost containing region of the entry node's
  // region among ancestors: check parent containment directly.
  for (RegionId R = 1; R < T.numRegions(); ++R) {
    RegionId P = T.region(R).Parent;
    if (P == T.root())
      continue;
    const SeseRegion &Outer = T.region(P);
    const SeseRegion &Inner = T.region(R);
    // All nodes of Inner must lie in Outer per the oracle.
    for (NodeId N : T.allNodes(R)) {
      EXPECT_TRUE(
          nodeInRegionBrute(G, Outer.EntryEdge, Outer.ExitEdge, N))
          << "seed " << Seed << " region " << R << " node " << N;
      (void)Inner;
    }
  }
}

} // namespace

TEST(Pst, ChainRegions) {
  Cfg G = chainCfg(3); // 4 edges, one class -> 3 sequential regions.
  ProgramStructureTree T = ProgramStructureTree::build(G);
  EXPECT_EQ(T.numCanonicalRegions(), 3u);
  for (RegionId R = 1; R < T.numRegions(); ++R) {
    EXPECT_EQ(T.region(R).Parent, T.root());
    EXPECT_EQ(T.region(R).Depth, 1u);
  }
}

TEST(Pst, PaperFigure1Structure) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  // Spine class {e0,e5,e8,e9} -> regions (e0,e5) conditional, (e5,e8)
  // loop, (e8,e9) tail. Arms (e1,e3), (e2,e4) nested in the conditional;
  // loop body (e6,e7) nested in the loop.
  auto Pairs = regionPairs(T);
  EXPECT_TRUE(Pairs.count({0, 5}));
  EXPECT_TRUE(Pairs.count({5, 8}));
  EXPECT_TRUE(Pairs.count({8, 9}));
  EXPECT_TRUE(Pairs.count({1, 3}));
  EXPECT_TRUE(Pairs.count({2, 4}));
  EXPECT_TRUE(Pairs.count({6, 7}));
  EXPECT_EQ(T.numCanonicalRegions(), 6u);

  // Nesting: arms under the conditional; body under the loop.
  RegionId Cond = T.regionEnteredBy(0);
  RegionId Loop = T.regionEnteredBy(5);
  RegionId Tail = T.regionEnteredBy(8);
  RegionId ThenArm = T.regionEnteredBy(1);
  RegionId ElseArm = T.regionEnteredBy(2);
  RegionId Body = T.regionEnteredBy(6);
  EXPECT_EQ(T.region(Cond).Parent, T.root());
  EXPECT_EQ(T.region(Loop).Parent, T.root());
  EXPECT_EQ(T.region(Tail).Parent, T.root());
  EXPECT_EQ(T.region(ThenArm).Parent, Cond);
  EXPECT_EQ(T.region(ElseArm).Parent, Cond);
  EXPECT_EQ(T.region(Body).Parent, Loop);
  EXPECT_EQ(T.region(Body).Depth, 2u);
}

TEST(Pst, PaperFigure1Kinds) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  EXPECT_EQ(classifyRegion(G, T, T.regionEnteredBy(0)),
            RegionKind::IfThenElse);
  EXPECT_EQ(classifyRegion(G, T, T.regionEnteredBy(5)), RegionKind::Loop);
  EXPECT_EQ(classifyRegion(G, T, T.regionEnteredBy(8)), RegionKind::Block);
  EXPECT_EQ(classifyRegion(G, T, T.regionEnteredBy(1)), RegionKind::Block);
}

TEST(Pst, RegionOfNodeFigure1) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  // start(0) and end(8) sit in the root region; then(2) in the then-arm;
  // head(5)/body(6) in the loop subtree.
  EXPECT_EQ(T.regionOfNode(0), T.root());
  EXPECT_EQ(T.regionOfNode(8), T.root());
  EXPECT_EQ(T.regionOfNode(2), T.regionEnteredBy(1));
  EXPECT_EQ(T.regionOfNode(6), T.regionEnteredBy(6));
  EXPECT_EQ(T.regionOfNode(5), T.regionEnteredBy(5));
}

TEST(Pst, ContainsIsTransitive) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  RegionId Loop = T.regionEnteredBy(5);
  RegionId Body = T.regionEnteredBy(6);
  EXPECT_TRUE(T.contains(T.root(), Body));
  EXPECT_TRUE(T.contains(Loop, Body));
  EXPECT_FALSE(T.contains(Body, Loop));
}

TEST(Pst, DiamondLadderDepths) {
  Cfg G = diamondLadderCfg(3);
  ProgramStructureTree T = ProgramStructureTree::build(G);
  PstStats S = computePstStats(G, T);
  // 3 diamond regions + 2 arms each + the pre/post chain regions; nesting
  // depth never exceeds 2.
  EXPECT_EQ(S.MaxDepth, 2u);
  EXPECT_TRUE(S.FullyStructured);
}

TEST(Pst, NestedWhileDepthGrows) {
  Cfg G = nestedWhileCfg(4);
  ProgramStructureTree T = ProgramStructureTree::build(G);
  PstStats S = computePstStats(G, T);
  EXPECT_GE(S.MaxDepth, 4u);
  EXPECT_TRUE(S.FullyStructured);
}

TEST(Pst, IrreducibleRegionClassified) {
  Cfg G = irreducibleCfg(1);
  ProgramStructureTree T = ProgramStructureTree::build(G);
  PstStats S = computePstStats(G, T);
  EXPECT_FALSE(S.FullyStructured);
  EXPECT_GT(S.WeightedKind[static_cast<size_t>(
                RegionKind::CyclicUnstructured)],
            0u);
}

TEST(Pst, CollapsedBodyOfRootDiamond) {
  Cfg G = diamondLadderCfg(1);
  ProgramStructureTree T = ProgramStructureTree::build(G);
  CollapsedBody B = collapseRegion(G, T, T.root());
  // Root body: entry, exit, plus collapsed top-level regions.
  EXPECT_GE(B.numNodes(), 3u);
  EXPECT_TRUE(B.Nodes[B.EntryQ].Node == G.entry() ||
              B.Nodes[B.EntryQ].IsRegion);
}

TEST(Pst, FormatPstMentionsRegions) {
  Cfg G = paperFigure1Cfg();
  ProgramStructureTree T = ProgramStructureTree::build(G);
  std::string S = formatPst(G, T);
  EXPECT_NE(S.find("procedure"), std::string::npos);
  EXPECT_NE(S.find("if-then-else"), std::string::npos);
  EXPECT_NE(S.find("loop"), std::string::npos);
}

TEST(Pst, MatchesOracleOnClassics) {
  int I = 0;
  for (const Cfg &G :
       {chainCfg(3), diamondLadderCfg(2), nestedWhileCfg(2),
        nestedRepeatUntilCfg(3), irreducibleCfg(1), paperFigure1Cfg()}) {
    expectRegionsMatchOracle(G, 9000 + I);
    expectNestingMatchesOracle(G, 9000 + I);
    ++I;
  }
}

// Property sweep: canonical regions and nesting match the brute-force
// Definition-5/6 oracle on random CFGs.
class PstRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PstRandomTest, RegionsAndNestingMatchOracle) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 31 + 5);
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(12));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(12));
  Opts.SelfLoopProb = 0.08;
  Opts.ParallelProb = 0.08;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  expectRegionsMatchOracle(G, Seed);
  expectNestingMatchesOracle(G, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PstRandomTest,
                         ::testing::Range<uint64_t>(0, 150));

// Structured-program shaped sweep (diamonds/loops composed at random) to
// exercise deep nesting paths.
class PstStructuredTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PstStructuredTest, TheoremOneNoPartialOverlap) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 97 + 11);
  RandomCfgOptions Opts;
  Opts.NumNodes = 4 + static_cast<uint32_t>(R.nextBelow(20));
  Opts.NumExtraEdges = 2 + static_cast<uint32_t>(R.nextBelow(10));
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  ProgramStructureTree T = ProgramStructureTree::build(G);
  // Theorem 1: the node sets of two canonical regions are disjoint or
  // nested. Verify over the PST's own reported containment.
  for (RegionId A = 1; A < T.numRegions(); ++A) {
    auto NodesA = T.allNodes(A);
    for (RegionId B = A + 1; B < T.numRegions(); ++B) {
      auto NodesB = T.allNodes(B);
      std::vector<NodeId> Inter;
      std::set_intersection(NodesA.begin(), NodesA.end(), NodesB.begin(),
                            NodesB.end(), std::back_inserter(Inter));
      if (Inter.empty())
        continue;
      EXPECT_TRUE(T.contains(A, B) || T.contains(B, A))
          << "seed " << Seed << " regions " << A << "," << B;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PstStructuredTest,
                         ::testing::Range<uint64_t>(0, 80));

//===----------------------------------------------------------------------===//
// Divide-and-conquer dominators (Section 6.3)
//===----------------------------------------------------------------------===//

#include "pst/core/PstDominators.h"
#include "pst/cycleequiv/CycleEquivBrute.h"

namespace {

void expectPstDomMatches(const Cfg &G, uint64_t Seed) {
  ProgramStructureTree T = ProgramStructureTree::build(G);
  DomTree Ref = DomTree::buildIterative(G);
  DomTree Dc = buildDominatorsViaPst(G, T);
  for (NodeId N = 0; N < G.numNodes(); ++N)
    ASSERT_EQ(Dc.idom(N), Ref.idom(N))
        << "seed " << Seed << " node " << N << " (" << G.nodeName(N) << ")";
}

} // namespace

TEST(PstDominators, MatchesIterativeOnClassics) {
  int I = 0;
  for (const Cfg &G :
       {chainCfg(3), diamondLadderCfg(3), nestedWhileCfg(3, 2),
        nestedRepeatUntilCfg(4), irreducibleCfg(2), paperFigure1Cfg()}) {
    expectPstDomMatches(G, 7000 + I);
    ++I;
  }
}

class PstDomRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PstDomRandomTest, MatchesIterativeOnRandomCfgs) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 53 + 29);
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(25));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(25));
  Opts.SelfLoopProb = 0.08;
  Opts.ParallelProb = 0.08;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  expectPstDomMatches(G, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PstDomRandomTest,
                         ::testing::Range<uint64_t>(0, 120));

//===----------------------------------------------------------------------===//
// Theorem 10: SESE regions of a reducible graph are reducible
//===----------------------------------------------------------------------===//

class Theorem10Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem10Test, RegionBodiesOfReducibleGraphsAreReducible) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 67 + 41);
  RandomCfgOptions Opts;
  Opts.NumNodes = 4 + static_cast<uint32_t>(R.nextBelow(20));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(20));
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  if (!isReducible(G))
    GTEST_SKIP() << "sample is irreducible";
  ProgramStructureTree T = ProgramStructureTree::build(G);
  for (RegionId Rg = 1; Rg < T.numRegions(); ++Rg) {
    CollapsedBody B = collapseRegion(G, T, Rg);
    Cfg Q;
    for (uint32_t I = 0; I < B.numNodes(); ++I)
      Q.addNode();
    for (const auto &E : B.Edges)
      Q.addEdge(E.Src, E.Dst);
    Q.setEntry(B.EntryQ);
    Q.setExit(B.ExitQ);
    EXPECT_TRUE(isReducible(Q)) << "seed " << Seed << " region " << Rg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem10Test,
                         ::testing::Range<uint64_t>(0, 120));

//===----------------------------------------------------------------------===//
// DFS-order invariance: the partition must not depend on edge insertion
// order (Theorem 6 promises canonical names regardless of traversal).
//===----------------------------------------------------------------------===//

namespace {

/// Rebuilds G with each node's successor lists permuted by \p R. Edge ids
/// change; PermOut[newEdge] = oldEdge.
Cfg shuffleEdges(const Cfg &G, Rng &R, std::vector<EdgeId> &PermOut) {
  Cfg H;
  for (NodeId N = 0; N < G.numNodes(); ++N)
    H.addNode(G.node(N).Label);
  std::vector<EdgeId> AllEdges(G.numEdges());
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    AllEdges[E] = E;
  for (size_t I = AllEdges.size(); I > 1; --I)
    std::swap(AllEdges[I - 1], AllEdges[R.nextBelow(I)]);
  PermOut.clear();
  for (EdgeId E : AllEdges) {
    H.addEdge(G.source(E), G.target(E));
    PermOut.push_back(E);
  }
  H.setEntry(G.entry());
  H.setExit(G.exit());
  return H;
}

} // namespace

class CycleEquivOrderInvariance : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CycleEquivOrderInvariance, PartitionIndependentOfEdgeOrder) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 401 + 3);
  RandomCfgOptions Opts;
  Opts.NumNodes = 4 + static_cast<uint32_t>(R.nextBelow(16));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(16));
  Opts.SelfLoopProb = 0.05;
  Opts.ParallelProb = 0.05;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));

  CycleEquivResult A = G.numEdges() ? computeCycleEquivalence(G)
                                    : CycleEquivResult{};
  std::vector<EdgeId> Perm;
  Cfg H = shuffleEdges(G, R, Perm);
  CycleEquivResult B = computeCycleEquivalence(H);

  // Map H's classes back onto G's edge order and compare partitions.
  std::vector<uint32_t> Mapped(G.numEdges() + 1);
  for (EdgeId HE = 0; HE < H.numEdges(); ++HE)
    Mapped[Perm[HE]] = B.classOf(HE);
  Mapped[G.numEdges()] = B.returnEdgeClass();
  EXPECT_EQ(canonicalizePartition(A.EdgeClass),
            canonicalizePartition(Mapped))
      << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleEquivOrderInvariance,
                         ::testing::Range<uint64_t>(0, 100));
