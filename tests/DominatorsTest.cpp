//===- DominatorsTest.cpp - dominator tree tests ------------------------------===//
//
// Part of the PST library test suite: unit tests on hand-built graphs plus
// property tests cross-checking Lengauer-Tarjan against the iterative
// builder and against a bitvector-dataflow oracle on random CFGs.
//
//===----------------------------------------------------------------------===//

#include "pst/dom/Dominators.h"

#include "pst/graph/CfgAlgorithms.h"
#include "pst/support/BitVector.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

/// Dominators straight from the definition, as a dataflow fixed point:
/// Dom(entry) = {entry}; Dom(n) = {n} + intersect over preds.
std::vector<BitVector> dominatorSetsOracle(const Cfg &G) {
  uint32_t N = G.numNodes();
  std::vector<BitVector> Dom(N, BitVector(N, true));
  Dom[G.entry()] = BitVector(N);
  Dom[G.entry()].set(G.entry());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId V = 0; V < N; ++V) {
      if (V == G.entry())
        continue;
      BitVector New(N, true);
      for (EdgeId E : G.predEdges(V))
        New.intersectWith(Dom[G.source(E)]);
      New.set(V);
      if (New != Dom[V]) {
        Dom[V] = New;
        Changed = true;
      }
    }
  }
  return Dom;
}

void expectTreeMatchesOracle(const Cfg &G, const DomTree &T) {
  auto Dom = dominatorSetsOracle(G);
  for (NodeId A = 0; A < G.numNodes(); ++A)
    for (NodeId B = 0; B < G.numNodes(); ++B)
      EXPECT_EQ(T.dominates(A, B), Dom[B].test(A))
          << "dominates(" << A << ", " << B << ") mismatch";
}

Cfg loopWithIf() {
  // entry -> h; h -> c -> {t, f} -> m -> h (back); h -> exit.
  Cfg G;
  NodeId Entry = G.addNode("entry");
  NodeId H = G.addNode("h");
  NodeId C = G.addNode("c");
  NodeId Tn = G.addNode("t");
  NodeId F = G.addNode("f");
  NodeId M = G.addNode("m");
  NodeId Exit = G.addNode("exit");
  G.addEdge(Entry, H);
  G.addEdge(H, C);
  G.addEdge(C, Tn);
  G.addEdge(C, F);
  G.addEdge(Tn, M);
  G.addEdge(F, M);
  G.addEdge(M, H);
  G.addEdge(H, Exit);
  G.setEntry(Entry);
  G.setExit(Exit);
  return G;
}

} // namespace

TEST(DomTree, DiamondIdoms) {
  Cfg G = diamondLadderCfg(1);
  // entry=0, cond0=1, then0=2, else0=3, join0=4, exit=5.
  DomTree T = DomTree::buildIterative(G);
  EXPECT_EQ(T.idom(1), 0u);
  EXPECT_EQ(T.idom(2), 1u);
  EXPECT_EQ(T.idom(3), 1u);
  EXPECT_EQ(T.idom(4), 1u); // Join dominated by the cond, not an arm.
  EXPECT_EQ(T.idom(5), 4u);
  EXPECT_EQ(T.idom(T.root()), InvalidNode);
}

TEST(DomTree, DominatesQueries) {
  Cfg G = loopWithIf();
  DomTree T = DomTree::buildIterative(G);
  EXPECT_TRUE(T.dominates(1, 5));        // h dominates m.
  EXPECT_TRUE(T.dominates(2, 5));        // c dominates m.
  EXPECT_FALSE(T.dominates(3, 5));       // t does not dominate m.
  EXPECT_TRUE(T.dominates(4, 4));        // Reflexive.
  EXPECT_FALSE(T.strictlyDominates(4, 4));
  EXPECT_TRUE(T.strictlyDominates(0, 6));
}

TEST(DomTree, DepthsAreTreeDepths) {
  Cfg G = chainCfg(3); // entry -> b0 -> b1 -> b2 -> exit.
  DomTree T = DomTree::buildIterative(G);
  EXPECT_EQ(T.depth(G.entry()), 0u);
  EXPECT_EQ(T.depth(G.exit()), 4u);
}

TEST(DomTree, LengauerTarjanMatchesIterativeOnClassics) {
  for (const Cfg &G : {diamondLadderCfg(3), nestedWhileCfg(3),
                       nestedRepeatUntilCfg(4), irreducibleCfg(2)}) {
    DomTree A = DomTree::buildIterative(G);
    DomTree B = DomTree::buildLengauerTarjan(G);
    for (NodeId N = 0; N < G.numNodes(); ++N)
      EXPECT_EQ(A.idom(N), B.idom(N)) << "node " << N;
  }
}

TEST(DomTree, MatchesOracleOnClassics) {
  for (const Cfg &G : {diamondLadderCfg(2), nestedWhileCfg(2),
                       irreducibleCfg(1), loopWithIf()}) {
    expectTreeMatchesOracle(G, DomTree::buildIterative(G));
    expectTreeMatchesOracle(G, DomTree::buildLengauerTarjan(G));
  }
}

TEST(PostDom, LoopWithIf) {
  Cfg G = loopWithIf();
  DomTree P = DomTree::buildPostDom(G);
  EXPECT_EQ(P.root(), G.exit());
  // h postdominates everything except exit... including entry.
  EXPECT_TRUE(P.dominates(1, 0));
  EXPECT_TRUE(P.dominates(5, 2)); // m postdominates c.
  EXPECT_FALSE(P.dominates(3, 2)); // t does not postdominate c.
}

TEST(DominanceFrontiers, Diamond) {
  Cfg G = diamondLadderCfg(1);
  DomTree T = DomTree::buildIterative(G);
  DominanceFrontiers DF(G, T);
  // Arms' frontier is the join; the cond's is empty (it dominates join).
  EXPECT_EQ(DF.frontier(2), (std::vector<NodeId>{4}));
  EXPECT_EQ(DF.frontier(3), (std::vector<NodeId>{4}));
  EXPECT_TRUE(DF.frontier(1).empty());
}

TEST(DominanceFrontiers, LoopHeaderInOwnFrontier) {
  Cfg G = nestedWhileCfg(1);
  DomTree T = DomTree::buildIterative(G);
  DominanceFrontiers DF(G, T);
  // The loop header (node 2, "head0") is a merge reached around the back-
  // edge, so it appears in its own frontier.
  NodeId Head = 2;
  const auto &F = DF.frontier(Head);
  EXPECT_NE(std::find(F.begin(), F.end(), Head), F.end());
}

TEST(DominanceFrontiers, IteratedReachesFixpoint) {
  Cfg G = nestedRepeatUntilCfg(3);
  DomTree T = DomTree::buildIterative(G);
  DominanceFrontiers DF(G, T);
  // Iterating from a def in the innermost body must be a superset of the
  // plain frontier.
  std::vector<NodeId> Defs{4}; // h2 (inner head).
  auto IDF = DF.iterated(Defs);
  for (NodeId M : DF.frontier(4))
    EXPECT_NE(std::find(IDF.begin(), IDF.end(), M), IDF.end());
}

// Property sweep: iterative == Lengauer-Tarjan == oracle on random CFGs.
class DomRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DomRandomTest, AllThreeAgree) {
  Rng R(GetParam());
  RandomCfgOptions Opts;
  Opts.NumNodes = 3 + static_cast<uint32_t>(R.nextBelow(15));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(20));
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));

  DomTree A = DomTree::buildIterative(G);
  DomTree B = DomTree::buildLengauerTarjan(G);
  for (NodeId N = 0; N < G.numNodes(); ++N)
    ASSERT_EQ(A.idom(N), B.idom(N)) << "seed " << GetParam() << " node " << N;
  auto Dom = dominatorSetsOracle(G);
  for (NodeId X = 0; X < G.numNodes(); ++X)
    for (NodeId Y = 0; Y < G.numNodes(); ++Y)
      ASSERT_EQ(A.dominates(X, Y), Dom[Y].test(X))
          << "seed " << GetParam() << " pair " << X << "," << Y;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomRandomTest,
                         ::testing::Range<uint64_t>(0, 60));

// Property sweep: postdominators match the oracle on the reversed graph.
class PostDomRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PostDomRandomTest, MatchesReversedOracle) {
  Rng R(GetParam() * 7919 + 13);
  RandomCfgOptions Opts;
  Opts.NumNodes = 3 + static_cast<uint32_t>(R.nextBelow(12));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(15));
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  DomTree P = DomTree::buildPostDom(G);
  auto Dom = dominatorSetsOracle(reverseCfg(G));
  for (NodeId X = 0; X < G.numNodes(); ++X)
    for (NodeId Y = 0; Y < G.numNodes(); ++Y)
      ASSERT_EQ(P.dominates(X, Y), Dom[Y].test(X))
          << "seed " << GetParam() << " pair " << X << "," << Y;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostDomRandomTest,
                         ::testing::Range<uint64_t>(0, 40));
