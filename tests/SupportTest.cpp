//===- SupportTest.cpp - support library unit tests --------------------------===//
//
// Part of the PST library test suite.
//
//===----------------------------------------------------------------------===//

#include "pst/support/BitVector.h"
#include "pst/support/Histogram.h"
#include "pst/support/Rng.h"
#include "pst/support/TableWriter.h"
#include "pst/support/UnionFind.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

using namespace pst;

TEST(BitVector, StartsEmpty) {
  BitVector V(100);
  EXPECT_EQ(V.size(), 100u);
  EXPECT_TRUE(V.none());
  EXPECT_EQ(V.count(), 0u);
}

TEST(BitVector, SetTestReset) {
  BitVector V(130);
  V.set(0);
  V.set(63);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(63));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 4u);
  V.reset(63);
  EXPECT_FALSE(V.test(63));
  EXPECT_EQ(V.count(), 3u);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector V(70, true);
  EXPECT_EQ(V.count(), 70u);
  V.resetAll();
  EXPECT_TRUE(V.none());
  V.setAll();
  EXPECT_EQ(V.count(), 70u);
}

TEST(BitVector, UnionIntersectSubtract) {
  BitVector A(10), B(10);
  A.set(1);
  A.set(3);
  B.set(3);
  B.set(5);
  BitVector U = A;
  EXPECT_TRUE(U.unionWith(B));
  EXPECT_TRUE(U.test(1) && U.test(3) && U.test(5));
  EXPECT_FALSE(U.unionWith(B)); // No change the second time.

  BitVector I = A;
  EXPECT_TRUE(I.intersectWith(B));
  EXPECT_FALSE(I.test(1));
  EXPECT_TRUE(I.test(3));

  BitVector D = A;
  EXPECT_TRUE(D.subtract(B));
  EXPECT_TRUE(D.test(1));
  EXPECT_FALSE(D.test(3));
}

TEST(BitVector, FindNextAndForEach) {
  BitVector V(200);
  V.set(5);
  V.set(64);
  V.set(199);
  EXPECT_EQ(V.findNext(0), 5u);
  EXPECT_EQ(V.findNext(6), 64u);
  EXPECT_EQ(V.findNext(65), 199u);
  EXPECT_EQ(V.findNext(200), 200u);
  std::set<size_t> Bits;
  V.forEachSetBit([&](size_t I) { Bits.insert(I); });
  EXPECT_EQ(Bits, (std::set<size_t>{5, 64, 199}));
}

TEST(BitVector, EqualityIgnoresNothing) {
  BitVector A(65), B(65);
  EXPECT_EQ(A, B);
  A.set(64);
  EXPECT_NE(A, B);
  B.set(64);
  EXPECT_EQ(A, B);
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, RangesRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t X = R.nextInRange(-5, 5);
    EXPECT_GE(X, -5);
    EXPECT_LE(X, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Rng, BoolProbabilityExtremes) {
  Rng R(3);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(UnionFind, BasicMerges) {
  UnionFind U(6);
  EXPECT_FALSE(U.connected(0, 1));
  EXPECT_TRUE(U.merge(0, 1));
  EXPECT_TRUE(U.connected(0, 1));
  EXPECT_FALSE(U.merge(0, 1));
  U.merge(2, 3);
  U.merge(1, 2);
  EXPECT_TRUE(U.connected(0, 3));
  EXPECT_FALSE(U.connected(0, 4));
}

TEST(Histogram, CountsAndCumulative) {
  Histogram H;
  H.add(1);
  H.add(1);
  H.add(3);
  EXPECT_EQ(H.total(), 3u);
  EXPECT_EQ(H.count(1), 2u);
  EXPECT_EQ(H.count(2), 0u);
  EXPECT_EQ(H.count(3), 1u);
  EXPECT_EQ(H.cumulative(1), 2u);
  EXPECT_EQ(H.cumulative(3), 3u);
  EXPECT_EQ(H.maxValue(), 3u);
  EXPECT_NEAR(H.mean(), (1 + 1 + 3) / 3.0, 1e-9);
}

TEST(Histogram, EmptyIsSane) {
  Histogram H;
  EXPECT_EQ(H.total(), 0u);
  EXPECT_EQ(H.mean(), 0.0);
  EXPECT_EQ(H.maxValue(), 0u);
}

TEST(TableWriter, AlignsColumns) {
  TableWriter T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string S = OS.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("alpha"), std::string::npos);
  // Numeric cells right-align: "22" ends at the same column as header.
  EXPECT_NE(S.find("   22"), std::string::npos);
}

TEST(TableWriter, FmtDigits) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt(2.0, 0), "2");
}
