//===- GraphTest.cpp - CFG substrate unit tests -------------------------------===//
//
// Part of the PST library test suite.
//
//===----------------------------------------------------------------------===//

#include "pst/graph/Cfg.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/graph/CfgIO.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace pst;

namespace {

Cfg makeDiamond() {
  Cfg G;
  NodeId S = G.addNode("s");
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  NodeId C = G.addNode("c");
  NodeId E = G.addNode("e");
  G.addEdge(S, A);
  G.addEdge(A, B);
  G.addEdge(A, C);
  G.addEdge(B, E);
  G.addEdge(C, E);
  G.setEntry(S);
  G.setExit(E);
  return G;
}

} // namespace

TEST(Cfg, BasicAccessors) {
  Cfg G = makeDiamond();
  EXPECT_EQ(G.numNodes(), 5u);
  EXPECT_EQ(G.numEdges(), 5u);
  EXPECT_EQ(G.source(1), 1u);
  EXPECT_EQ(G.target(1), 2u);
  EXPECT_EQ(G.successors(1), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(G.predecessors(4), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(G.nodeName(0), "s");
}

TEST(Cfg, UnlabeledNodeNames) {
  Cfg G;
  NodeId N = G.addNode();
  EXPECT_EQ(G.nodeName(N), "n0");
  G.setNodeLabel(N, "renamed");
  EXPECT_EQ(G.nodeName(N), "renamed");
}

TEST(Cfg, MultigraphAllowed) {
  Cfg G;
  NodeId A = G.addNode();
  NodeId B = G.addNode();
  G.addEdge(A, B);
  G.addEdge(A, B); // Parallel.
  G.addEdge(B, B); // Self loop.
  EXPECT_EQ(G.numEdges(), 3u);
  EXPECT_EQ(G.succEdges(A).size(), 2u);
  EXPECT_EQ(G.succEdges(B).size(), 1u);
  EXPECT_EQ(G.predEdges(B).size(), 3u);
}

TEST(Dfs, VisitsEverythingOnce) {
  Cfg G = makeDiamond();
  DfsResult R = depthFirstSearch(G, G.entry());
  EXPECT_EQ(R.Preorder.size(), 5u);
  EXPECT_EQ(R.Postorder.size(), 5u);
  EXPECT_EQ(R.Preorder[0], G.entry());
  EXPECT_EQ(R.Postorder.back(), G.entry());
  for (NodeId N = 0; N < G.numNodes(); ++N)
    EXPECT_NE(R.PreNum[N], UINT32_MAX);
}

TEST(Dfs, ParentEdgesFormTree) {
  Cfg G = makeDiamond();
  DfsResult R = depthFirstSearch(G, G.entry());
  EXPECT_EQ(R.ParentEdge[G.entry()], InvalidEdge);
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (N == G.entry())
      continue;
    ASSERT_NE(R.ParentEdge[N], InvalidEdge);
    EXPECT_EQ(G.target(R.ParentEdge[N]), N);
  }
}

TEST(Rpo, EntryFirstExitLast) {
  Cfg G = makeDiamond();
  std::vector<NodeId> RPO = reversePostOrder(G);
  ASSERT_EQ(RPO.size(), 5u);
  EXPECT_EQ(RPO.front(), G.entry());
  EXPECT_EQ(RPO.back(), G.exit());
}

TEST(Validate, AcceptsDiamond) {
  std::string Why;
  EXPECT_TRUE(validateCfg(makeDiamond(), &Why)) << Why;
}

TEST(Validate, RejectsMissingEntry) {
  Cfg G;
  G.addNode();
  std::string Why;
  EXPECT_FALSE(validateCfg(G, &Why));
  EXPECT_NE(Why.find("entry"), std::string::npos);
}

TEST(Validate, RejectsUnreachableNode) {
  Cfg G = makeDiamond();
  G.addNode("stranded");
  std::string Why;
  EXPECT_FALSE(validateCfg(G, &Why));
  EXPECT_NE(Why.find("stranded"), std::string::npos);
}

TEST(Validate, RejectsNodeNotReachingExit) {
  Cfg G = makeDiamond();
  NodeId Dead = G.addNode("dead");
  G.addEdge(1, Dead); // Reachable but cannot reach exit.
  std::string Why;
  EXPECT_FALSE(validateCfg(G, &Why));
  EXPECT_NE(Why.find("dead"), std::string::npos);
}

TEST(Validate, RejectsEdgeIntoEntry) {
  Cfg G = makeDiamond();
  G.addEdge(1, G.entry());
  EXPECT_FALSE(validateCfg(G));
}

TEST(Reverse, SwapsEverything) {
  Cfg G = makeDiamond();
  Cfg R = reverseCfg(G);
  EXPECT_EQ(R.entry(), G.exit());
  EXPECT_EQ(R.exit(), G.entry());
  ASSERT_EQ(R.numEdges(), G.numEdges());
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    EXPECT_EQ(R.source(E), G.target(E));
    EXPECT_EQ(R.target(E), G.source(E));
  }
  EXPECT_TRUE(validateCfg(R));
}

TEST(Simplify, MergesChains) {
  Cfg G = chainCfg(5); // entry -> b0..b4 -> exit.
  Cfg S = simplifyCfg(G);
  // Entry and exit stay separate; the five inner blocks fuse into one.
  EXPECT_EQ(S.numNodes(), 3u);
  EXPECT_TRUE(validateCfg(S));
}

TEST(Simplify, KeepsDiamond) {
  Cfg G = makeDiamond();
  Cfg S = simplifyCfg(G);
  EXPECT_EQ(S.numNodes(), G.numNodes());
  EXPECT_EQ(S.numEdges(), G.numEdges());
}

TEST(Simplify, KeepsSelfLoopAndStaysValid) {
  Cfg G;
  NodeId S = G.addNode("s");
  NodeId A = G.addNode("a");
  NodeId B = G.addNode("b");
  NodeId E = G.addNode("e");
  G.addEdge(S, A);
  G.addEdge(A, A); // Self loop.
  G.addEdge(A, B);
  G.addEdge(B, E);
  G.setEntry(S);
  G.setExit(E);
  Cfg Out = simplifyCfg(G);
  EXPECT_TRUE(validateCfg(Out));
  // The self loop must survive.
  bool HasSelf = false;
  for (EdgeId Ed = 0; Ed < Out.numEdges(); ++Ed)
    HasSelf |= Out.source(Ed) == Out.target(Ed);
  EXPECT_TRUE(HasSelf);
}

TEST(Reducible, StructuredGraphsAre) {
  EXPECT_TRUE(isReducible(makeDiamond()));
  EXPECT_TRUE(isReducible(chainCfg(4)));
  EXPECT_TRUE(isReducible(nestedWhileCfg(3)));
  EXPECT_TRUE(isReducible(nestedRepeatUntilCfg(4)));
}

TEST(Reducible, IrreducibleTriangleIsNot) {
  EXPECT_FALSE(isReducible(irreducibleCfg(1)));
  EXPECT_FALSE(isReducible(irreducibleCfg(3)));
}

TEST(CfgIO, DotContainsAllEdges) {
  Cfg G = makeDiamond();
  std::ostringstream OS;
  printDot(G, OS, "d");
  std::string S = OS.str();
  EXPECT_NE(S.find("digraph d"), std::string::npos);
  EXPECT_NE(S.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(S.find("n3 -> n4"), std::string::npos);
}

TEST(CfgIO, RoundTrip) {
  Cfg G = makeDiamond();
  std::ostringstream OS;
  printCfgText(G, OS);
  std::string Error;
  auto Parsed = parseCfgText(OS.str(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->numNodes(), G.numNodes());
  EXPECT_EQ(Parsed->numEdges(), G.numEdges());
  EXPECT_EQ(Parsed->entry(), G.entry());
  EXPECT_EQ(Parsed->exit(), G.exit());
  EXPECT_TRUE(validateCfg(*Parsed));
}

TEST(CfgIO, ParseRejectsUnknownNode) {
  std::string Error;
  auto R = parseCfgText("cfg x\nnode a entry\nedge a b\nend\n", &Error);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Error.find("unknown node 'b'"), std::string::npos);
}

TEST(CfgIO, ParseRejectsDuplicateLabel) {
  std::string Error;
  auto R = parseCfgText("cfg x\nnode a entry\nnode a exit\nend\n", &Error);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Error.find("duplicate"), std::string::npos);
}

TEST(CfgIO, ParseRejectsMissingEnd) {
  std::string Error;
  auto R = parseCfgText("cfg x\nnode a entry\n", &Error);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Error.find("end"), std::string::npos);
}

TEST(CfgIO, ParseSkipsComments) {
  std::string Error;
  auto R = parseCfgText(
      "cfg x\n# comment\nnode a entry\nnode b exit\nedge a b\nend\n", &Error);
  ASSERT_TRUE(R.has_value()) << Error;
  EXPECT_EQ(R->numNodes(), 2u);
}
