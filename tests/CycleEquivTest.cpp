//===- CycleEquivTest.cpp - cycle equivalence tests ----------------------------===//
//
// Part of the PST library test suite: golden tests on hand-built graphs and
// the main property sweep cross-checking the linear-time algorithm of the
// paper's Figure 4 against the Definition-4 brute-force oracle on hundreds
// of random CFGs (with loops, parallel edges, self loops, irreducibility).
//
//===----------------------------------------------------------------------===//

#include "pst/cycleequiv/CycleEquiv.h"

#include "pst/cycleequiv/CycleEquivBrute.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

void expectMatchesOracle(const Cfg &G, uint64_t Seed) {
  CycleEquivResult Fast = computeCycleEquivalence(G);
  CycleEquivResult Slow = computeCycleEquivalenceBrute(G);
  ASSERT_EQ(Fast.EdgeClass.size(), Slow.EdgeClass.size());
  EXPECT_EQ(canonicalizePartition(Fast.EdgeClass),
            canonicalizePartition(Slow.EdgeClass))
      << "seed " << Seed;
}

} // namespace

TEST(CycleEquiv, ChainIsOneClass) {
  Cfg G = chainCfg(4);
  CycleEquivResult R = computeCycleEquivalence(G);
  // Every edge of a straight chain lies on exactly the one big cycle
  // through the return edge: a single class.
  for (EdgeId E = 0; E < G.numEdges(); ++E)
    EXPECT_EQ(R.classOf(E), R.classOf(0));
  EXPECT_EQ(R.classOf(0), R.returnEdgeClass());
}

TEST(CycleEquiv, DiamondArms) {
  Cfg G = diamondLadderCfg(1);
  // Edges: 0:entry->cond, 1:cond->then, 2:cond->else, 3:then->join,
  // 4:else->join, 5:join->exit.
  CycleEquivResult R = computeCycleEquivalence(G);
  EXPECT_EQ(R.classOf(1), R.classOf(3)); // Then-arm pair.
  EXPECT_EQ(R.classOf(2), R.classOf(4)); // Else-arm pair.
  EXPECT_NE(R.classOf(1), R.classOf(2)); // Arms differ.
  EXPECT_EQ(R.classOf(0), R.classOf(5)); // Spine.
  EXPECT_NE(R.classOf(0), R.classOf(1));
}

TEST(CycleEquiv, SelfLoopIsSingleton) {
  Cfg G;
  NodeId S = G.addNode(), A = G.addNode(), E = G.addNode();
  G.addEdge(S, A);
  EdgeId Loop = G.addEdge(A, A);
  G.addEdge(A, E);
  G.setEntry(S);
  G.setExit(E);
  CycleEquivResult R = computeCycleEquivalence(G);
  for (EdgeId Ed = 0; Ed < R.EdgeClass.size(); ++Ed) {
    if (Ed != Loop) {
      EXPECT_NE(R.classOf(Ed), R.classOf(Loop));
    }
  }
}

TEST(CycleEquiv, ParallelEdgesShareNoClassWithSpine) {
  Cfg G;
  NodeId S = G.addNode(), A = G.addNode(), B = G.addNode(), E = G.addNode();
  G.addEdge(S, A);
  EdgeId P1 = G.addEdge(A, B);
  EdgeId P2 = G.addEdge(A, B);
  G.addEdge(B, E);
  G.setEntry(S);
  G.setExit(E);
  CycleEquivResult R = computeCycleEquivalence(G);
  // The two parallel edges form a cycle containing neither spine edge, so
  // each parallel edge is alone (a cycle can take either copy).
  EXPECT_NE(R.classOf(P1), R.classOf(P2));
  EXPECT_NE(R.classOf(P1), R.classOf(0));
  // And the spine stays equivalent.
  EXPECT_EQ(R.classOf(0), R.classOf(3));
}

TEST(CycleEquiv, WhileLoopStructure) {
  Cfg G = nestedWhileCfg(1); // entry,exit,head0,body0,after0.
  // Edges: 0: entry->head, 1: head->body, 2: body->head, 3: head->after,
  // 4: after->exit.
  CycleEquivResult R = computeCycleEquivalence(G);
  EXPECT_EQ(R.classOf(1), R.classOf(2)); // Body edge pair cycles together.
  EXPECT_EQ(R.classOf(0), R.classOf(3)); // In/out of the loop region.
  EXPECT_EQ(R.classOf(3), R.classOf(4));
  EXPECT_NE(R.classOf(0), R.classOf(1));
}

TEST(CycleEquiv, MatchesOracleOnClassics) {
  for (const Cfg &G :
       {chainCfg(3), diamondLadderCfg(2), nestedWhileCfg(2, 2),
        nestedRepeatUntilCfg(3), irreducibleCfg(2), paperFigure1Cfg()}) {
    expectMatchesOracle(G, 0);
  }
}

TEST(CycleEquiv, PaperFigure1Regions) {
  Cfg G = paperFigure1Cfg();
  CycleEquivResult R = computeCycleEquivalence(G);
  // Sequential spine: e0 (start->cond), e5 (join->head), e8 (head->tail),
  // e9 (tail->end) are all equivalent.
  EXPECT_EQ(R.classOf(0), R.classOf(5));
  EXPECT_EQ(R.classOf(5), R.classOf(8));
  EXPECT_EQ(R.classOf(8), R.classOf(9));
  // The two conditional arms are separate classes.
  EXPECT_EQ(R.classOf(1), R.classOf(3));
  EXPECT_EQ(R.classOf(2), R.classOf(4));
  EXPECT_NE(R.classOf(1), R.classOf(2));
  // The loop body pair.
  EXPECT_EQ(R.classOf(6), R.classOf(7));
}

TEST(CycleEquiv, WithoutReturnEdgeOnStronglyConnected) {
  // A simple directed cycle: all edges equivalent.
  Cfg G;
  NodeId A = G.addNode(), B = G.addNode(), C = G.addNode();
  G.addEdge(A, B);
  G.addEdge(B, C);
  G.addEdge(C, A);
  G.setEntry(A);
  G.setExit(C);
  CycleEquivResult R = computeCycleEquivalence(G, /*AddReturnEdge=*/false);
  EXPECT_FALSE(R.HasReturnEdge);
  EXPECT_EQ(R.EdgeClass.size(), 3u);
  EXPECT_EQ(R.classOf(0), R.classOf(1));
  EXPECT_EQ(R.classOf(1), R.classOf(2));
}

TEST(CycleEquiv, TwoNestedLoopsSeparate) {
  // entry -> a; a -> b -> a (inner); outer backedge around both:
  // entry -> a, a -> b, b -> a, b -> c, c -> a? Use distinct structure:
  Cfg G;
  NodeId S = G.addNode("s"), A = G.addNode("a"), B = G.addNode("b"),
         C = G.addNode("c"), E = G.addNode("e");
  G.addEdge(S, A);   // 0
  G.addEdge(A, B);   // 1
  G.addEdge(B, A);   // 2 inner backedge.
  G.addEdge(B, C);   // 3
  G.addEdge(C, A);   // 4 outer backedge.
  G.addEdge(C, E);   // 5
  G.setEntry(S);
  G.setExit(E);
  expectMatchesOracle(G, 0);
}

// The main property sweep. Each seed builds a random CFG (up to ~18 nodes
// and ~30 edges, with self loops, parallel edges and arbitrary backedges)
// and compares the full partition against the brute-force oracle.
class CycleEquivRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CycleEquivRandomTest, MatchesBruteForce) {
  uint64_t Seed = GetParam();
  Rng R(Seed);
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(17));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(16));
  Opts.SelfLoopProb = 0.1;
  Opts.ParallelProb = 0.1;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  expectMatchesOracle(G, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleEquivRandomTest,
                         ::testing::Range<uint64_t>(0, 300));

// Same sweep on forward-only (acyclic-leaning) graphs, which stress the
// sequential-composition chains rather than the loop brackets.
class CycleEquivDagTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CycleEquivDagTest, MatchesBruteForce) {
  uint64_t Seed = GetParam() + 1000;
  Rng R(Seed);
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(17));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(16));
  Opts.SelfLoopProb = 0.0;
  Opts.ParallelProb = 0.05;
  Opts.AllowBackEdges = false;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  expectMatchesOracle(G, Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CycleEquivDagTest,
                         ::testing::Range<uint64_t>(0, 150));
