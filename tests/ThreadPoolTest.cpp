//===- ThreadPoolTest.cpp - Pool scheduling and error propagation --------------===//
//
// Part of the PST library (see ThreadPool.h for the reference).
//
//===----------------------------------------------------------------------===//

#include "pst/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace pst;

namespace {

TEST(ThreadPoolTest, EmptyInputRunsNothing) {
  ThreadPool Pool(4);
  std::atomic<int> Calls{0};
  Pool.run(0, 8, [&](size_t, size_t, unsigned) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPoolTest, DefaultWorkerCountIsPositive) {
  ThreadPool Pool;
  EXPECT_GE(Pool.numWorkers(), 1u);
}

class ThreadPoolCoverageTest
    : public ::testing::TestWithParam<std::tuple<unsigned, size_t>> {};

TEST_P(ThreadPoolCoverageTest, EveryItemExactlyOnce) {
  auto [Workers, Chunk] = GetParam();
  ThreadPool Pool(Workers);
  constexpr size_t N = 1000;
  std::vector<std::atomic<uint32_t>> Hits(N);
  Pool.run(N, Chunk, [&](size_t Begin, size_t End, unsigned Worker) {
    ASSERT_LT(Worker, Pool.numWorkers());
    ASSERT_LE(End, N);
    ASSERT_LT(Begin, End);
    for (size_t I = Begin; I < End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "item " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ThreadPoolCoverageTest,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(size_t(1), size_t(7),
                                         size_t(64), size_t(5000))));

TEST(ThreadPoolTest, SingleWorkerRunsOnCallingThread) {
  ThreadPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  Pool.run(10, 3, [&](size_t, size_t, unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), Caller);
  });
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (unsigned Workers : {1u, 4u}) {
    ThreadPool Pool(Workers);
    auto Throwing = [](size_t Begin, size_t End, unsigned) {
      for (size_t I = Begin; I < End; ++I)
        if (I == 37)
          throw std::runtime_error("item 37 is bad");
    };
    EXPECT_THROW(Pool.run(100, 4, Throwing), std::runtime_error)
        << Workers << " workers";
  }
}

TEST(ThreadPoolTest, ExceptionMessageSurvives) {
  ThreadPool Pool(4);
  try {
    Pool.run(64, 1, [](size_t Begin, size_t, unsigned) {
      throw std::runtime_error("chunk " + std::to_string(Begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error &E) {
    EXPECT_EQ(std::string(E.what()).rfind("chunk ", 0), 0u);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.run(50, 4,
                        [](size_t, size_t, unsigned) {
                          throw std::logic_error("boom");
                        }),
               std::logic_error);

  // The pool must be fully quiesced and functional after the rethrow.
  std::vector<std::atomic<uint32_t>> Hits(200);
  Pool.run(200, 8, [&](size_t Begin, size_t End, unsigned) {
    for (size_t I = Begin; I < End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1u);
}

TEST(ThreadPoolTest, ManySmallRunsBackToBack) {
  ThreadPool Pool(4);
  std::atomic<size_t> Total{0};
  for (int Round = 0; Round < 200; ++Round)
    Pool.run(17, 3, [&](size_t Begin, size_t End, unsigned) {
      Total.fetch_add(End - Begin, std::memory_order_relaxed);
    });
  EXPECT_EQ(Total.load(), 200u * 17u);
}

TEST(ThreadPoolTest, MoreWorkersThanItems) {
  ThreadPool Pool(8);
  std::vector<std::atomic<uint32_t>> Hits(3);
  Pool.run(3, 1, [&](size_t Begin, size_t End, unsigned) {
    for (size_t I = Begin; I < End; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < 3; ++I)
    EXPECT_EQ(Hits[I].load(), 1u);
}

} // namespace
