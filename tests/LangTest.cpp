//===- LangTest.cpp - MiniLang front-end tests ---------------------------------===//
//
// Part of the PST library test suite: lexer, parser, AST printing and CFG
// lowering, plus generator/corpus integration (every generated procedure
// must lower to a valid CFG whose PST builds).
//
//===----------------------------------------------------------------------===//

#include "pst/lang/Lower.h"

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/StructureMetrics.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/lang/Lexer.h"
#include "pst/lang/Parser.h"
#include "pst/workload/Corpus.h"
#include "pst/workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

LoweredFunction compileOne(const std::string &Src) {
  std::vector<Diagnostic> Diags;
  auto Fns = compile(Src, &Diags);
  EXPECT_TRUE(Fns.has_value())
      << (Diags.empty() ? "no diagnostics" : Diags[0].str());
  EXPECT_EQ(Fns->size(), 1u);
  return std::move((*Fns)[0]);
}

std::vector<Diagnostic> expectCompileError(const std::string &Src) {
  std::vector<Diagnostic> Diags;
  auto Fns = compile(Src, &Diags);
  EXPECT_FALSE(Fns.has_value());
  EXPECT_FALSE(Diags.empty());
  return Diags;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, KeywordsAndIdents) {
  auto T = lex("func while whilex _x1");
  ASSERT_EQ(T.size(), 5u); // 4 tokens + eof.
  EXPECT_EQ(T[0].Kind, TokKind::KwFunc);
  EXPECT_EQ(T[1].Kind, TokKind::KwWhile);
  EXPECT_EQ(T[2].Kind, TokKind::Ident);
  EXPECT_EQ(T[2].Text, "whilex");
  EXPECT_EQ(T[3].Text, "_x1");
}

TEST(Lexer, NumbersAndOperators) {
  auto T = lex("x = 42 <= 7 != 0 && 1 || 2");
  EXPECT_EQ(T[0].Kind, TokKind::Ident);
  EXPECT_EQ(T[1].Kind, TokKind::Assign);
  EXPECT_EQ(T[2].Kind, TokKind::Number);
  EXPECT_EQ(T[2].Value, 42);
  EXPECT_EQ(T[3].Kind, TokKind::LessEq);
  EXPECT_EQ(T[5].Kind, TokKind::NotEq);
  EXPECT_EQ(T[7].Kind, TokKind::AndAnd);
  EXPECT_EQ(T[9].Kind, TokKind::OrOr);
}

TEST(Lexer, CommentsAndLocations) {
  auto T = lex("a # comment with words\nb");
  ASSERT_GE(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[0].Line, 1u);
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[1].Line, 2u);
}

TEST(Lexer, UnknownCharacter) {
  auto T = lex("@");
  EXPECT_EQ(T[0].Kind, TokKind::Unknown);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, SimpleFunction) {
  std::vector<Diagnostic> Diags;
  auto P = parseProgram("func f(a, b) { var x = a + b; return x; }", &Diags);
  ASSERT_TRUE(P.has_value());
  ASSERT_EQ(P->Functions.size(), 1u);
  const Function &F = P->Functions[0];
  EXPECT_EQ(F.Name, "f");
  EXPECT_EQ(F.Params, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(F.Body->Body.size(), 2u);
}

TEST(Parser, PrecedenceInFormat) {
  auto P = parseProgram("func f() { var x = 1 + 2 * 3 < 4 && 5 == 6; }");
  ASSERT_TRUE(P.has_value());
  const Stmt &D = *P->Functions[0].Body->Body[0];
  // * binds tighter than +, which binds tighter than <, then ==, then &&.
  EXPECT_EQ(formatExpr(*D.Value), "(((1 + (2 * 3)) < 4) && (5 == 6))");
}

TEST(Parser, DanglingElseBindsInner) {
  auto P = parseProgram(
      "func f(a) { if (a < 1) if (a < 2) a = 1; else a = 2; }");
  ASSERT_TRUE(P.has_value());
  const Stmt &Outer = *P->Functions[0].Body->Body[0];
  ASSERT_EQ(Outer.Kind, StmtKind::If);
  EXPECT_EQ(Outer.Else, nullptr);
  ASSERT_EQ(Outer.Then->Kind, StmtKind::If);
  EXPECT_NE(Outer.Then->Else, nullptr);
}

TEST(Parser, AllStatementForms) {
  const char *Src = R"(
    func f(n) {
      var i = 0;
      var s = 0;
      while (i < n) { s = s + i; i = i + 1; }
      do { s = s - 1; } while (s > 10);
      for (i = 0; i < 4; i = i + 1) { s = s + 2; }
      switch (s % 3) {
        case 0: s = 1;
        case 1: s = 2;
        default: s = 3;
      }
      if (s > 0) { work(s); } else { work(0); }
      top:
      s = s - 1;
      if (s > 0) { goto top; }
      return s;
    }
  )";
  std::vector<Diagnostic> Diags;
  auto P = parseProgram(Src, &Diags);
  ASSERT_TRUE(P.has_value()) << (Diags.empty() ? "" : Diags[0].str());
}

TEST(Parser, ReportsExpectedToken) {
  std::vector<Diagnostic> Diags;
  auto P = parseProgram("func f( { }", &Diags);
  EXPECT_FALSE(P.has_value());
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("parameter"), std::string::npos);
}

TEST(Parser, ReportsMissingSemi) {
  std::vector<Diagnostic> Diags;
  auto P = parseProgram("func f() { var x = 1 }", &Diags);
  EXPECT_FALSE(P.has_value());
  ASSERT_FALSE(Diags.empty());
  EXPECT_NE(Diags[0].Message.find("';'"), std::string::npos);
}

TEST(Parser, DuplicateDefaultRejected) {
  std::vector<Diagnostic> Diags;
  auto P = parseProgram(
      "func f(x) { switch (x) { default: x = 1; default: x = 2; } }",
      &Diags);
  EXPECT_FALSE(P.has_value());
}

TEST(Parser, FormatRoundTrips) {
  const char *Src =
      "func f(a) { var x = 1; while (x < a) { x = x + 1; } return x; }";
  auto P1 = parseProgram(Src);
  ASSERT_TRUE(P1.has_value());
  std::string Printed = formatFunction(P1->Functions[0]);
  auto P2 = parseProgram(Printed);
  ASSERT_TRUE(P2.has_value()) << Printed;
  EXPECT_EQ(Printed, formatFunction(P2->Functions[0]));
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

TEST(Lower, StraightLine) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = a; var y = x + 1; return y; }");
  EXPECT_TRUE(validateCfg(F.Graph));
  // entry, body, exit.
  EXPECT_EQ(F.Graph.numNodes(), 3u);
  EXPECT_EQ(F.numVars(), 3u); // a, x, y.
}

TEST(Lower, IfElseShape) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = 0; if (a > 0) { x = 1; } else { x = 2; } "
      "return x; }");
  EXPECT_TRUE(validateCfg(F.Graph));
  // entry, body(cond), then, else, join (a pure merge), continuation
  // (with the return), exit.
  EXPECT_EQ(F.Graph.numNodes(), 7u);
  EXPECT_TRUE(isReducible(F.Graph));
}

TEST(Lower, WhileLoopShape) {
  LoweredFunction F = compileOne(
      "func f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }");
  EXPECT_TRUE(validateCfg(F.Graph));
  EXPECT_TRUE(isReducible(F.Graph));
  // The header must have two successors and an incoming backedge.
  bool FoundBackedge = false;
  for (EdgeId E = 0; E < F.Graph.numEdges(); ++E) {
    DfsResult D = depthFirstSearch(F.Graph, F.Graph.entry());
    if (D.PreNum[F.Graph.target(E)] < D.PreNum[F.Graph.source(E)])
      FoundBackedge = true;
  }
  EXPECT_TRUE(FoundBackedge);
}

TEST(Lower, DefUseTracking) {
  LoweredFunction F = compileOne(
      "func f(a) { var x = a + a; var y = x * 2; x = y; return x; }");
  VarId A = 0, X = 1, Y = 2;
  EXPECT_EQ(F.VarNames[A], "a");
  EXPECT_EQ(F.VarNames[X], "x");
  // a defined in entry (param), x defined in body twice, y once.
  EXPECT_EQ(F.defBlocks(A).size(), 1u);
  EXPECT_EQ(F.defBlocks(X).size(), 1u); // Both defs in the same block.
  EXPECT_FALSE(F.useBlocks(Y).empty());
}

TEST(Lower, ReturnCutsFlow) {
  LoweredFunction F = compileOne(
      "func f(a) { if (a > 0) { return 1; } return 2; }");
  EXPECT_TRUE(validateCfg(F.Graph));
  // Dead join after both-return if is pruned: no node without a path to
  // exit, no unreachable node (validate checks both).
}

TEST(Lower, GotoMakesIrreducible) {
  // Jump into the middle of a loop from outside: the classic irreducible
  // shape.
  const char *Src = R"(
    func f(a) {
      var x = 0;
      if (a > 0) { goto inside; }
      while (x < 10) {
        x = x + 1;
        inside:
        x = x + 2;
      }
      return x;
    }
  )";
  LoweredFunction F = compileOne(Src);
  EXPECT_TRUE(validateCfg(F.Graph));
  EXPECT_FALSE(isReducible(F.Graph));
}

TEST(Lower, InfiniteLoopGetsEscapeEdge) {
  LoweredFunction F = compileOne(
      "func f() { var x = 0; while (1 > 0) { x = x + 1; } return x; }");
  // while(1>0) still lowers with a header exit edge because the condition
  // is structural; force a truly exitless loop with goto instead.
  EXPECT_TRUE(validateCfg(F.Graph));

  LoweredFunction G = compileOne(
      "func g() { var x = 0; spin: x = x + 1; goto spin; }");
  EXPECT_TRUE(validateCfg(G.Graph));
}

TEST(Lower, BreakAndContinue) {
  LoweredFunction F = compileOne(R"(
    func f(n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        i = i + 1;
        if (i % 2 == 0) { continue; }
        if (i > 50) { break; }
        s = s + i;
      }
      return s;
    }
  )");
  EXPECT_TRUE(validateCfg(F.Graph));
  EXPECT_TRUE(isReducible(F.Graph));
}

TEST(Lower, SwitchShape) {
  LoweredFunction F = compileOne(R"(
    func f(x) {
      var r = 0;
      switch (x) {
        case 0: r = 1;
        case 1: r = 2;
        case 2: r = 3;
      }
      return r;
    }
  )");
  EXPECT_TRUE(validateCfg(F.Graph));
  // Selector block must have 4 successors (3 arms + no-default edge).
  bool Found4 = false;
  for (NodeId N = 0; N < F.Graph.numNodes(); ++N)
    Found4 |= F.Graph.succEdges(N).size() == 4;
  EXPECT_TRUE(Found4);
}

TEST(Lower, UndeclaredVariableDiagnosed) {
  auto Diags = expectCompileError("func f() { x = 1; }");
  EXPECT_NE(Diags[0].Message.find("undeclared"), std::string::npos);
}

TEST(Lower, UnknownLabelDiagnosed) {
  auto Diags = expectCompileError("func f() { goto nowhere; }");
  EXPECT_NE(Diags[0].Message.find("unknown label"), std::string::npos);
}

TEST(Lower, BreakOutsideLoopDiagnosed) {
  auto Diags = expectCompileError("func f() { break; }");
  EXPECT_NE(Diags[0].Message.find("break"), std::string::npos);
}

TEST(Lower, DuplicateLabelDiagnosed) {
  auto Diags =
      expectCompileError("func f() { l: var x = 1; l: x = 2; goto l; }");
  EXPECT_NE(Diags[0].Message.find("duplicate label"), std::string::npos);
}

TEST(Lower, RedeclarationDiagnosed) {
  auto Diags = expectCompileError("func f() { var x = 1; var x = 2; }");
  EXPECT_NE(Diags[0].Message.find("redeclaration"), std::string::npos);
}

TEST(Lower, FormatLoweredShowsBlocks) {
  LoweredFunction F = compileOne("func f(a) { return a; }");
  std::string S = formatLowered(F);
  EXPECT_NE(S.find("function f"), std::string::npos);
  EXPECT_NE(S.find("[entry]"), std::string::npos);
  EXPECT_NE(S.find("param a"), std::string::npos);
}

TEST(Lower, PstBuildsOnLoweredCode) {
  LoweredFunction F = compileOne(R"(
    func f(n) {
      var i = 0;
      var s = 0;
      while (i < n) {
        if (s % 2 == 0) { s = s + i; } else { s = s - i; }
        i = i + 1;
      }
      return s;
    }
  )");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  PstStats St = computePstStats(F.Graph, T);
  EXPECT_GE(St.NumRegions, 3u);
  EXPECT_GE(St.MaxDepth, 2u);
  EXPECT_TRUE(St.FullyStructured);
}

//===----------------------------------------------------------------------===//
// Generator and corpus
//===----------------------------------------------------------------------===//

class GeneratedProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedProgramTest, LowersValidAndPrintsParseably) {
  Rng R(GetParam() * 977 + 3);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 10 + static_cast<uint32_t>(R.nextBelow(120));
  Opts.GotoProb = GetParam() % 3 == 0 ? 0.08 : 0.0;
  Function F = generateFunction(R, Opts, "gen");

  // Printed source must re-parse (the generator emits real MiniLang).
  std::string Src = formatFunction(F);
  std::vector<Diagnostic> Diags;
  auto P = parseProgram(Src, &Diags);
  ASSERT_TRUE(P.has_value()) << Src;

  auto L = lowerFunction(F, &Diags);
  ASSERT_TRUE(L.has_value()) << (Diags.empty() ? "" : Diags[0].str());
  std::string Why;
  EXPECT_TRUE(validateCfg(L->Graph, &Why)) << Why;

  // And the whole analysis pipeline must run on it.
  ProgramStructureTree T = ProgramStructureTree::build(L->Graph);
  EXPECT_GE(T.numRegions(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedProgramTest,
                         ::testing::Range<uint64_t>(0, 60));

TEST(Corpus, MatchesPaperTotals) {
  uint32_t Lines = 0, Procs = 0;
  for (const auto &P : paperCorpusSpec()) {
    Lines += P.Lines;
    Procs += P.Procedures;
  }
  EXPECT_EQ(Lines, 21549u);
  EXPECT_EQ(Procs, 254u);
}

TEST(Corpus, GeneratesAllProcedures) {
  auto Corpus = generatePaperCorpus(42);
  EXPECT_EQ(Corpus.size(), 254u);
  for (const auto &C : Corpus) {
    ASSERT_TRUE(validateCfg(C.Fn.Graph)) << C.Fn.Name;
    ASSERT_GT(C.Fn.Graph.numNodes(), 2u) << C.Fn.Name;
  }
}

TEST(Corpus, DeterministicAcrossRuns) {
  auto A = generatePaperCorpus(7);
  auto B = generatePaperCorpus(7);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Fn.Graph.numNodes(), B[I].Fn.Graph.numNodes());
    EXPECT_EQ(A[I].Fn.Graph.numEdges(), B[I].Fn.Graph.numEdges());
  }
}
