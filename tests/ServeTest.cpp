//===- ServeTest.cpp - pst/serve epoch tables, shards, server, protocol --------===//
//
// Part of the PST library (see pst/serve/PstServer.h for the reference).
//
// Covers the serving layer bottom-up: the EpochTable pin/publish/reclaim
// protocol (including the TSan-facing concurrent suite), per-function
// snapshot freezing and the byte-identity invariant, shard edit/commit/
// publish cycles with pinned-reader isolation, server query semantics and
// batch position-stability, and the line protocol's determinism contract
// (same script -> byte-identical transcript at any batch size or worker
// count).
//
// The concurrency tests here run in CI's thread-sanitizer job; keep new
// shared-state tests in the *Concurrent* naming pattern so the ctest
// regex picks them up.
//
//===----------------------------------------------------------------------===//

#include "pst/serve/EpochTable.h"
#include "pst/serve/Protocol.h"
#include "pst/serve/PstServer.h"
#include "pst/serve/Snapshot.h"

#include "pst/dom/Dominators.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace pst;
using namespace pst::serve;

namespace {

//===----------------------------------------------------------------------===//
// EpochTable
//===----------------------------------------------------------------------===//

/// Snapshot stand-in that counts live instances, so reclaim/leak behavior
/// is observable.
struct Counted {
  static std::atomic<int> Live;
  uint64_t Value;
  explicit Counted(uint64_t V) : Value(V) { Live.fetch_add(1); }
  ~Counted() { Live.fetch_sub(1); }
};
std::atomic<int> Counted::Live{0};

TEST(EpochTableTest, PublishPinReadReclaim) {
  ASSERT_EQ(Counted::Live.load(), 0);
  {
    EpochTable<Counted> T(4);
    EXPECT_EQ(T.currentVersion(), 0u);
    T.publish(std::make_unique<Counted>(10), 1);
    EXPECT_EQ(T.currentVersion(), 1u);

    auto P1 = T.pin();
    ASSERT_TRUE(P1);
    EXPECT_EQ(P1->Value, 10u);
    EXPECT_EQ(P1.version(), 1u);

    // A new publish does not disturb the held pin.
    T.publish(std::make_unique<Counted>(20), 2);
    EXPECT_EQ(P1->Value, 10u);
    EXPECT_EQ(T.currentVersion(), 2u);
    EXPECT_EQ(T.liveSnapshots(), 2u); // v1 pinned + v2 current.

    // New pins see the new epoch; the reader's lag is observable.
    auto P2 = T.pin();
    EXPECT_EQ(P2->Value, 20u);
    EXPECT_EQ(T.currentVersion() - P1.version(), 1u);
    EXPECT_EQ(T.currentVersion() - P2.version(), 0u);

    // The pinned retired epoch survives reclaim attempts...
    EXPECT_EQ(T.reclaimQuiescent(), 0u);
    EXPECT_EQ(T.liveSnapshots(), 2u);

    // ...and drains once the pin drops.
    P1.release();
    EXPECT_FALSE(P1);
    EXPECT_EQ(T.reclaimQuiescent(), 1u);
    EXPECT_EQ(T.liveSnapshots(), 1u);
    EXPECT_EQ(Counted::Live.load(), 1);
  }
  // Table destruction frees the current snapshot too.
  EXPECT_EQ(Counted::Live.load(), 0);
}

TEST(EpochTableTest, SteadyStatePublishingStaysBounded) {
  EpochTable<Counted> T(4);
  for (uint64_t V = 1; V <= 100; ++V)
    T.publish(std::make_unique<Counted>(V), V);
  // With no pins outstanding, every publish reclaims the previous epoch.
  EXPECT_EQ(T.liveSnapshots(), 1u);
  EXPECT_EQ(T.publishCount(), 100u);
  EXPECT_EQ(T.reclaimCount(), 99u);
  EXPECT_EQ(T.pin()->Value, 100u);
}

TEST(EpochTableTest, MovedPinTransfersOwnership) {
  EpochTable<Counted> T(4);
  T.publish(std::make_unique<Counted>(7), 1);
  auto P = T.pin();
  auto Q = std::move(P);
  EXPECT_FALSE(P);
  ASSERT_TRUE(Q);
  EXPECT_EQ(Q->Value, 7u);
  EXPECT_EQ((*Q).Value, 7u);
  Q.release();
  Q.release(); // Idempotent.
  EXPECT_EQ(T.reclaimQuiescent(), 0u); // Slot is current, never reclaimed.
}

/// The TSan-facing suite: hammer the pin/publish/reclaim handshake from
/// several reader threads while the writer publishes as fast as it can.
/// Each snapshot embeds its version, so a reader observing a torn or
/// reclaimed snapshot would trip the consistency assertion (and TSan
/// would flag the racing free).
TEST(EpochTableTest, ConcurrentPinsDuringPublishes) {
  ASSERT_EQ(Counted::Live.load(), 0);
  constexpr int NumReaders = 3;
  constexpr uint64_t NumEpochs = 1000;
  {
    EpochTable<Counted> T(8);
    T.publish(std::make_unique<Counted>(1), 1);

    std::atomic<bool> Stop{false};
    std::atomic<uint64_t> Reads{0};
    std::vector<std::thread> Readers;
    Readers.reserve(NumReaders);
    for (int R = 0; R < NumReaders; ++R) {
      Readers.emplace_back([&T, &Stop, &Reads] {
        uint64_t LastSeen = 0;
        while (!Stop.load(std::memory_order_relaxed)) {
          auto P = T.pin();
          // The pinned snapshot is internally consistent...
          ASSERT_EQ(P->Value, P.version());
          // ...and epochs never run backwards for a single reader.
          ASSERT_GE(P.version(), LastSeen);
          LastSeen = P.version();
          Reads.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    for (uint64_t V = 2; V <= NumEpochs; ++V)
      T.publish(std::make_unique<Counted>(V), V);
    // On a single-core host the writer can finish before any reader is
    // ever scheduled; insist on overlap-or-after reads before stopping.
    while (Reads.load(std::memory_order_relaxed) == 0)
      std::this_thread::yield();
    Stop.store(true);
    for (std::thread &R : Readers)
      R.join();

    EXPECT_GT(Reads.load(), 0u);
    EXPECT_EQ(T.currentVersion(), NumEpochs);
    // Quiescent now: everything but the current epoch drains.
    T.reclaimQuiescent();
    EXPECT_EQ(T.liveSnapshots(), 1u);
    EXPECT_EQ(Counted::Live.load(), 1);
  }
  EXPECT_EQ(Counted::Live.load(), 0);
}

//===----------------------------------------------------------------------===//
// Snapshots and shards
//===----------------------------------------------------------------------===//

/// 0 -> {1,2} -> 3: the smallest CFG with a branch, a join, and known
/// dominance structure.
Cfg diamondCfg() {
  Cfg G;
  NodeId N0 = G.addNode("entry");
  NodeId N1 = G.addNode("then");
  NodeId N2 = G.addNode("else");
  NodeId N3 = G.addNode("join");
  G.addEdge(N0, N1);
  G.addEdge(N0, N2);
  G.addEdge(N1, N3);
  G.addEdge(N2, N3);
  G.setEntry(N0);
  G.setExit(N3);
  return G;
}

/// A small mixed-shape corpus image, memory-backed.
CorpusImage makeTestImage(uint32_t NumFns = 6) {
  std::vector<Cfg> Graphs;
  std::vector<std::string> Names;
  for (uint32_t I = 0; I < NumFns; ++I) {
    switch (I % 4) {
    case 0:
      Graphs.push_back(diamondCfg());
      break;
    case 1:
      Graphs.push_back(diamondLadderCfg(2 + I % 3));
      break;
    case 2:
      Graphs.push_back(nestedWhileCfg(2));
      break;
    default:
      Graphs.push_back(chainCfg(4));
      break;
    }
    Names.push_back("fn" + std::to_string(I));
  }
  std::vector<const Cfg *> Ptrs;
  for (const Cfg &G : Graphs)
    Ptrs.push_back(&G);
  std::string Error;
  CorpusImage Img = CorpusImage::fromBytes(buildCorpusImage(Ptrs, Names),
                                           &Error);
  EXPECT_TRUE(Img.valid()) << Error;
  return Img;
}

TEST(SnapshotTest, FreezeMatchesFromScratchByConstruction) {
  Cfg G = diamondCfg();
  auto S = FunctionSnapshot::freeze(G, "diamond");
  ASSERT_TRUE(S);
  EXPECT_EQ(S->name(), "diamond");
  EXPECT_EQ(S->cfg().numNodes(), 4u);
  EXPECT_TRUE(snapshotMatchesFromScratch(*S, G));

  // A structurally different graph is detected with a diagnostic.
  Cfg H = diamondCfg();
  H.addEdge(H.entry(), H.exit());
  std::string Why;
  EXPECT_FALSE(snapshotMatchesFromScratch(*S, H, &Why));
  EXPECT_FALSE(Why.empty());
}

TEST(ShardTest, ResolvesBaseFunctionsThroughEpochZero) {
  CorpusImage Img = makeTestImage();
  Shard S0(Img, /*Index=*/0, /*NumShards=*/2);
  EXPECT_TRUE(S0.owns(0));
  EXPECT_FALSE(S0.owns(1));
  EXPECT_TRUE(S0.owns(4));
  EXPECT_EQ(S0.currentVersion(), 0u);

  auto P = S0.pin();
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Overlay.size(), 0u);
  ResolvedFunction F = S0.resolve(*P, 0);
  EXPECT_FALSE(F.FromOverlay);
  EXPECT_EQ(F.Name, "fn0");
  EXPECT_EQ(F.View.numNodes(), Img.cfg(0).numNodes());
  EXPECT_EQ(F.Pst.numRegions(), Img.pst(0).numRegions());
}

TEST(ShardTest, CommitPublishesOverlayWithoutDisturbingPinnedReaders) {
  CorpusImage Img = makeTestImage();
  Shard S0(Img, 0, 2);
  uint32_t BaseNodes = Img.cfg(0).numNodes();

  // A reader pins epoch 0 before any writes land.
  auto Old = S0.pin();

  // addblock splices a node into the 0->1 edge of the diamond.
  NodeId NewNode = S0.addBlock(0, 0, 1);
  EXPECT_NE(NewNode, InvalidNode);
  EXPECT_EQ(S0.pendingFunctions(), 1u);
  std::string Why;
  EXPECT_EQ(S0.commit(), 1u);
  EXPECT_EQ(S0.pendingFunctions(), 0u);
  EXPECT_TRUE(S0.verifyPublished(&Why)) << Why;

  // Once fn 0 is overlaid, journaled-but-uncommitted edits make verify
  // refuse: the byte-identity invariant is defined at commit points.
  EXPECT_NE(S0.addBlock(0, 0, 2), InvalidNode);
  EXPECT_FALSE(S0.verifyPublished(&Why));
  EXPECT_NE(Why.find("journaled"), std::string::npos);
  EXPECT_EQ(S0.commit(), 2u);
  EXPECT_TRUE(S0.verifyPublished(&Why)) << Why;

  // The old pin still resolves to the base image.
  ResolvedFunction OldF = S0.resolve(*Old, 0);
  EXPECT_FALSE(OldF.FromOverlay);
  EXPECT_EQ(OldF.View.numNodes(), BaseNodes);

  // A fresh pin sees the overlay snapshot with both spliced nodes.
  auto New = S0.pin();
  EXPECT_EQ(New.version(), 2u);
  ResolvedFunction NewF = S0.resolve(*New, 0);
  EXPECT_TRUE(NewF.FromOverlay);
  EXPECT_EQ(NewF.View.numNodes(), BaseNodes + 2);

  ShardStats St = S0.stats();
  EXPECT_EQ(St.Edits, 2u);
  EXPECT_EQ(St.Commits, 2u);
  EXPECT_EQ(St.Refrozen, 2u);
}

TEST(ShardTest, RejectsInvalidEdits) {
  CorpusImage Img = makeTestImage();
  Shard S0(Img, 0, 2);
  // No such live edge in the diamond.
  EXPECT_FALSE(S0.deleteEdge(0, 1, 2));
  EXPECT_EQ(S0.splitBlock(0, 3, 0), InvalidNode);
  // Out-of-range nodes.
  EXPECT_EQ(S0.insertEdge(0, 0, 999), InvalidEdge);
  // Nothing was journaled; the epoch did not move.
  EXPECT_EQ(S0.pendingFunctions(), 0u);
  EXPECT_EQ(S0.commit(), 0u);
  EXPECT_EQ(S0.stats().Edits, 0u);
  EXPECT_EQ(S0.stats().EditsRejected, 3u);
}

/// The acceptance invariant, exercised hard: a deterministic pseudo-random
/// edit stream across the shard's functions with periodic commits, and
/// after every commit each published overlay snapshot must be
/// byte-identical to a from-scratch freeze of the writer's graph.
TEST(ShardTest, RandomizedEditsKeepPublishedSnapshotsByteIdentical) {
  CorpusImage Img = makeTestImage(8);
  Shard S0(Img, 0, 2);
  uint64_t Owned[] = {0, 2, 4, 6};

  uint64_t Rng = 0x9e3779b97f4a7c15ull;
  auto Next = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };

  for (int Round = 0; Round < 12; ++Round) {
    for (int E = 0; E < 4; ++E) {
      uint64_t Fn = Owned[Next() % 4];
      Cfg G = S0.writerGraph(Fn);
      if (!G.numEdges())
        continue;
      EdgeId Edge = static_cast<EdgeId>(Next() % G.numEdges());
      NodeId Src = G.source(Edge), Dst = G.target(Edge);
      switch (Next() % 4) {
      case 0:
        S0.addBlock(Fn, Src, Dst);
        break;
      case 1:
        S0.splitBlock(Fn, Src, Dst);
        break;
      case 2:
        // Parallel edge between existing endpoints; may be rejected.
        S0.insertEdge(Fn, Src, Dst);
        break;
      default:
        // May disconnect the graph; then it is rejected, which is fine.
        S0.deleteEdge(Fn, Src, Dst);
        break;
      }
    }
    S0.commit();
    std::string Why;
    ASSERT_TRUE(S0.verifyPublished(&Why)) << "round " << Round << ": " << Why;

    // Belt and braces: check the snapshots directly too.
    auto P = S0.pin();
    for (const auto &[Fn, Snap] : P->Overlay) {
      Cfg Current = S0.writerGraph(Fn);
      ASSERT_TRUE(snapshotMatchesFromScratch(*Snap, Current, &Why))
          << "fn " << Fn << ": " << Why;
    }
  }
  EXPECT_GT(S0.stats().Edits, 0u);
  EXPECT_GT(S0.stats().Commits, 0u);
}

/// TSan-facing: readers resolve functions under pinned epochs while the
/// writer edits and commits. Readers must only ever observe fully
/// published snapshots (base node count or a count from some committed
/// epoch — never a half-applied journal).
TEST(ShardTest, ConcurrentReadersDuringCommits) {
  CorpusImage Img = makeTestImage();
  Shard S0(Img, 0, 2);
  uint32_t BaseNodes = Img.cfg(0).numNodes();
  constexpr int NumReaders = 3;
  constexpr int NumCommits = 60;

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (int R = 0; R < NumReaders; ++R) {
    Readers.emplace_back([&] {
      uint64_t LastVersion = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        auto P = S0.pin();
        ASSERT_GE(P->Version, LastVersion);
        LastVersion = P->Version;
        ResolvedFunction F = S0.resolve(*P, 0);
        // Every commit adds exactly one block to fn 0, so a consistent
        // snapshot's node count is Base + its number of commits; the
        // epoch version *is* that commit count here.
        ASSERT_EQ(F.View.numNodes(), BaseNodes + P->Version);
        ASSERT_EQ(F.Name, "fn0");
      }
    });
  }

  for (int C = 0; C < NumCommits; ++C) {
    ASSERT_NE(S0.addBlock(0, 0, 1), InvalidNode);
    S0.commit();
  }
  Stop.store(true);
  for (std::thread &R : Readers)
    R.join();

  std::string Why;
  EXPECT_TRUE(S0.verifyPublished(&Why)) << Why;
  EXPECT_EQ(S0.currentVersion(), static_cast<uint64_t>(NumCommits));
}

//===----------------------------------------------------------------------===//
// PstServer queries
//===----------------------------------------------------------------------===//

Request makeRequest(RequestKind K, uint64_t Fn, NodeId A = InvalidNode,
                    NodeId B = InvalidNode) {
  Request R;
  R.Kind = K;
  R.Fn = Fn;
  R.A = A;
  R.B = B;
  return R;
}

TEST(PstServerTest, AnswersQueriesAgainstTheBaseImage) {
  ServeOptions Opts;
  Opts.NumShards = 2;
  Opts.NumThreads = 2;
  PstServer Server(makeTestImage(), Opts);
  EXPECT_EQ(Server.numFunctions(), 6u);
  EXPECT_EQ(Server.numShards(), 2u);

  // fn0 is the diamond: 0 -> {1,2} -> 3.
  EXPECT_EQ(Server.execute(makeRequest(RequestKind::Name, 0)),
            "ok name fn=0 fn0");
  EXPECT_EQ(Server.execute(makeRequest(RequestKind::Dom, 0, 3)),
            "ok dom fn=0 node=3 idom=0");
  // Node 1 is control dependent on taking the branch edge 0->1.
  EXPECT_EQ(Server.execute(makeRequest(RequestKind::Cdep, 0, 1)),
            "ok cdep fn=0 node=1 edges=[0:0->1]");
  // Defs in both arms force a phi at the join.
  Request Phi = makeRequest(RequestKind::Phi, 0);
  Phi.Defs = {1, 2};
  EXPECT_EQ(Server.execute(Phi),
            "ok phi fn=0 defs=[1,2] blocks=[3]");

  // Oracle cross-check on a generated function: idom answers must match
  // a directly built dominator tree.
  CfgView V = Server.image().cfg(1);
  DomTree D = DomTree::buildIterative(V);
  for (NodeId N = 0; N < V.numNodes(); ++N) {
    std::string Resp = Server.execute(makeRequest(RequestKind::Dom, 1, N));
    std::string Expect =
        "ok dom fn=1 node=" + std::to_string(N) + " idom=" +
        (D.idom(N) == InvalidNode ? "-" : std::to_string(D.idom(N)));
    EXPECT_EQ(Resp, Expect);
  }
}

TEST(PstServerTest, RejectsOutOfRangeRequests) {
  PstServer Server(makeTestImage());
  std::string R = Server.execute(makeRequest(RequestKind::Name, 999));
  EXPECT_EQ(R.rfind("err", 0), 0u) << R;
  R = Server.execute(makeRequest(RequestKind::Dom, 0, 999));
  EXPECT_EQ(R.rfind("err", 0), 0u) << R;
  Request Bad;
  Bad.Kind = RequestKind::Invalid;
  Bad.Error = "boom";
  EXPECT_EQ(Server.execute(Bad), "err boom");
}

TEST(PstServerTest, BatchResponsesArePositionStable) {
  ServeOptions Opts;
  Opts.NumThreads = 4;
  PstServer Server(makeTestImage(), Opts);

  std::vector<Request> Batch;
  for (uint64_t Fn = 0; Fn < Server.numFunctions(); ++Fn) {
    Batch.push_back(makeRequest(RequestKind::Name, Fn));
    Batch.push_back(makeRequest(RequestKind::Regions, Fn));
    Batch.push_back(makeRequest(RequestKind::Dom, Fn, 1));
  }

  std::vector<std::string> Serial;
  for (const Request &R : Batch)
    Serial.push_back(Server.execute(R));

  std::vector<std::string> Parallel;
  Server.executeBatch(Batch, Parallel);
  EXPECT_EQ(Parallel, Serial);
}

/// TSan-facing: parallel query batches while per-shard writers commit.
/// Queries on untouched functions must be bit-stable across the whole
/// run; queries on the edited function must always reflect a committed
/// epoch.
TEST(PstServerTest, ConcurrentBatchesDuringCommits) {
  ServeOptions Opts;
  Opts.NumShards = 2;
  Opts.NumThreads = 2;
  PstServer Server(makeTestImage(), Opts);

  // Baseline answers for functions the writer never touches.
  std::vector<Request> Batch;
  for (uint64_t Fn = 1; Fn < Server.numFunctions(); ++Fn) {
    Batch.push_back(makeRequest(RequestKind::Regions, Fn));
    Batch.push_back(makeRequest(RequestKind::Name, Fn));
  }
  std::vector<std::string> Baseline;
  Server.executeBatch(Batch, Baseline);

  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    Shard &S0 = Server.shardOf(0);
    for (int C = 0; C < 40 && !Stop.load(std::memory_order_relaxed); ++C) {
      S0.addBlock(0, 0, 1);
      S0.commit();
    }
    Stop.store(true);
  });

  uint32_t BaseNodes = Server.image().cfg(0).numNodes();
  while (!Stop.load(std::memory_order_relaxed)) {
    std::vector<std::string> Got;
    Server.executeBatch(Batch, Got);
    ASSERT_EQ(Got, Baseline);
    // The edited diamond keeps its shape: one added block per commit
    // turns region summaries over, but the idom of the join stays the
    // entry node in every committed epoch.
    ASSERT_EQ(Server.execute(makeRequest(RequestKind::Dom, 0, 3)),
              "ok dom fn=0 node=3 idom=0");
    (void)BaseNodes;
  }
  Writer.join();

  std::string Why;
  EXPECT_TRUE(Server.shardOf(0).verifyPublished(&Why)) << Why;
}

//===----------------------------------------------------------------------===//
// Line protocol
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, ParsesQueriesEditsAndBarriers) {
  ParsedLine L = parseLine("region 3 1 2");
  EXPECT_EQ(L.Kind, ParsedLine::Type::Query);
  EXPECT_EQ(L.Q.Kind, RequestKind::Region);
  EXPECT_EQ(L.Q.Fn, 3u);
  EXPECT_EQ(L.Q.A, 1u);
  EXPECT_EQ(L.Q.B, 2u);

  L = parseLine("phi 0 4,7,9");
  EXPECT_EQ(L.Q.Kind, RequestKind::Phi);
  EXPECT_EQ(L.Q.Defs, (std::vector<NodeId>{4, 7, 9}));

  L = parseLine("edit 5 addblock 0 1");
  EXPECT_EQ(L.Kind, ParsedLine::Type::Edit);
  EXPECT_EQ(L.Op, ParsedLine::EditOp::AddBlock);
  EXPECT_EQ(L.Fn, 5u);
  EXPECT_EQ(L.Src, 0u);
  EXPECT_EQ(L.Dst, 1u);

  EXPECT_EQ(parseLine("commit").Kind, ParsedLine::Type::Commit);
  EXPECT_EQ(parseLine("verify").Kind, ParsedLine::Type::Verify);
  EXPECT_EQ(parseLine("epoch").Kind, ParsedLine::Type::Epoch);
  EXPECT_EQ(parseLine("stats").Kind, ParsedLine::Type::Stats);
  EXPECT_EQ(parseLine("quit").Kind, ParsedLine::Type::Quit);
  EXPECT_EQ(parseLine("").Kind, ParsedLine::Type::Empty);
  EXPECT_EQ(parseLine("# a comment").Kind, ParsedLine::Type::Empty);

  // Malformed input becomes an err-producing Invalid query.
  L = parseLine("frobnicate 1 2");
  EXPECT_EQ(L.Kind, ParsedLine::Type::Query);
  EXPECT_EQ(L.Q.Kind, RequestKind::Invalid);
  EXPECT_FALSE(L.Q.Error.empty());
  EXPECT_EQ(parseLine("dom notanumber 3").Q.Kind, RequestKind::Invalid);
  EXPECT_EQ(parseLine("edit 1 teleport 0 1").Q.Kind, RequestKind::Invalid);
}

std::string runScript(PstServer &Server, const std::string &Script,
                      size_t MaxBatch) {
  std::istringstream In(Script);
  std::ostringstream Out;
  ServerSession Session(Server, MaxBatch);
  Session.run(In, Out);
  return Out.str();
}

const char *sessionScript() {
  return "# scripted session\n"
         "name 0\n"
         "regions 0\n"
         "dom 0 3\n"
         "cdep 0 1\n"
         "phi 0 1,2\n"
         "epoch\n"
         "edit 0 addblock 0 1\n"
         "edit 4 split 0 1\n"
         "commit\n"
         "regions 0\n"
         "dom 0 3\n"
         "verify\n"
         "stats\n"
         "quit\n";
}

TEST(ProtocolTest, SessionRespondsOncePerRequestLine) {
  PstServer Server(makeTestImage());
  std::string Out = runScript(Server, sessionScript(), 256);

  // One response line per non-comment, non-empty input line.
  size_t Lines = 0;
  for (char C : Out)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 14u);
  EXPECT_EQ(Out.rfind("ok name fn=0 fn0\n", 0), 0u) << Out;
  EXPECT_NE(Out.find("ok verify shards="), std::string::npos) << Out;
  EXPECT_NE(Out.find("ok bye\n"), std::string::npos) << Out;
  // Both edits hit shard 0 (fn 0 and fn 4 under 4 shards), so one commit
  // batch refroze two functions.
  EXPECT_NE(Out.find("ok stats edits=2 rejected=0 commits=1 refrozen=2"),
            std::string::npos)
      << Out;
}

TEST(ProtocolTest, TranscriptsAreBatchSizeAndWorkerCountInvariant) {
  // The determinism contract: same script, byte-identical transcript,
  // whatever the batching or parallelism. Each configuration gets a
  // fresh server so the edit history is replayed identically.
  std::string Golden;
  for (size_t MaxBatch : {size_t(1), size_t(3), size_t(256)}) {
    for (unsigned Threads : {1u, 4u}) {
      ServeOptions Opts;
      Opts.NumShards = 3;
      Opts.NumThreads = Threads;
      PstServer Server(makeTestImage(), Opts);
      std::string Out = runScript(Server, sessionScript(), MaxBatch);
      if (Golden.empty())
        Golden = Out;
      else
        EXPECT_EQ(Out, Golden) << "batch=" << MaxBatch
                               << " threads=" << Threads;
    }
  }
}

TEST(ProtocolTest, SessionSurfacesErrorsWithoutDying) {
  PstServer Server(makeTestImage());
  std::string Out = runScript(Server,
                              "bogus command\n"
                              "dom 999 0\n"
                              "name 1\n",
                              256);
  std::istringstream Lines(Out);
  std::string L1, L2, L3;
  std::getline(Lines, L1);
  std::getline(Lines, L2);
  std::getline(Lines, L3);
  EXPECT_EQ(L1.rfind("err", 0), 0u) << L1;
  EXPECT_EQ(L2.rfind("err", 0), 0u) << L2;
  EXPECT_EQ(L3, "ok name fn=1 fn1");
}

} // namespace
