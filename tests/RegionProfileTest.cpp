//===- RegionProfileTest.cpp - dynamic region profiler tests ---------------------===//
//
// Part of the PST library test suite:
//  * flow conservation of the interpreter's edge profile (per-block entry
//    counts vs traversed in/out-edge counts) on randomized programs,
//  * region-level differential invariants: entries == exits, inclusive ==
//    self + children, inclusive independently recomputed via allNodes,
//  * the planner: hot-loop top-ranking, nesting disjointness, golden plan
//    reports on hand-written loop nests,
//  * byte-determinism of the JSON report.
//
//===----------------------------------------------------------------------===//

#include "pst/prof/ParallelismPlanner.h"
#include "pst/prof/ProfileReport.h"
#include "pst/prof/RegionProfile.h"

#include "pst/dom/Dominators.h"
#include "pst/dom/LoopInfo.h"
#include "pst/lang/Parser.h"
#include "pst/workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

LoweredFunction compileOne(const std::string &Src) {
  std::vector<Diagnostic> Diags;
  auto Fns = compile(Src, &Diags);
  EXPECT_TRUE(Fns.has_value())
      << (Diags.empty() ? "no diagnostics" : Diags[0].str());
  EXPECT_EQ(Fns->size(), 1u);
  return std::move((*Fns)[0]);
}

const char *HotLoopSource = R"(
func hotloop(n, m) {
  var i = 0;
  var j = 0;
  var acc = 0;
  if (n < 0) { n = 0; }
  if (m < 0) { m = 0; }
  while (i < n) {
    j = 0;
    while (j < m) {
      acc = acc + (i * m + j) % 7;
      j = j + 1;
    }
    i = i + 1;
  }
  if (acc % 2 == 1) { acc = acc + 1; }
  return acc;
}
)";

const char *MixSource = R"(
func mix(n, bias) {
  var k = 0;
  var s = bias;
  while (k < n) {
    s = s + k * k % 11;
    k = k + 1;
  }
  if (s > 100) {
    s = s - 100;
  } else {
    if (s < 0) { s = 0 - s; } else { s = s + 1; }
  }
  return s;
}
)";

/// Per-run flow conservation over the raw counts: every block's entry
/// count balances its traversed in-edges (plus one for the start block)
/// and its traversed out-edges (plus one for the block the run stopped
/// in).
void expectFlowConserved(const LoweredFunction &F, const CfgExecResult &R) {
  const Cfg &G = F.Graph;
  ASSERT_EQ(R.BlockCounts.size(), G.numNodes());
  ASSERT_EQ(R.EdgeCounts.size(), G.numEdges());
  uint64_t StepSum = 0;
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    uint64_t In = N == G.entry() ? 1 : 0;
    for (EdgeId E : G.predEdges(N))
      In += R.EdgeCounts[E];
    EXPECT_EQ(R.BlockCounts[N], In) << "in-flow at node " << G.nodeName(N);
    if (R.Finished) {
      uint64_t Out = N == G.exit() ? 1 : 0;
      for (EdgeId E : G.succEdges(N))
        Out += R.EdgeCounts[E];
      EXPECT_EQ(R.BlockCounts[N], Out) << "out-flow at node " << G.nodeName(N);
    }
    StepSum += R.BlockCounts[N] * F.Code[N].size();
  }
  if (R.Finished) {
    EXPECT_EQ(StepSum, R.Steps);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Interpreter edge profile
//===----------------------------------------------------------------------===//

TEST(EdgeCounts, OffByDefaultAndSemanticsUnchanged) {
  LoweredFunction F = compileOne(HotLoopSource);
  CfgExecResult Plain = runLowered(F, {5, 6});
  EXPECT_TRUE(Plain.Finished);
  EXPECT_TRUE(Plain.EdgeCounts.empty());

  CfgExecResult Counted = runLowered(F, {5, 6}, 1 << 20, /*CountEdges=*/true);
  EXPECT_EQ(Counted.EdgeCounts.size(), F.Graph.numEdges());
  EXPECT_EQ(Plain.Finished, Counted.Finished);
  EXPECT_EQ(Plain.ReturnValue, Counted.ReturnValue);
  EXPECT_EQ(Plain.Steps, Counted.Steps);
  EXPECT_EQ(Plain.BlockCounts, Counted.BlockCounts);
}

TEST(EdgeCounts, FlowConservationOnRandomPrograms) {
  Rng R(0x5e51015);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 50;
  Opts.GotoProb = 0.3; // Unstructured flow must balance too.
  size_t Finished = 0;
  for (int I = 0; I < 40; ++I) {
    Function Fn = generateFunction(R, Opts, "gen");
    auto L = lowerFunction(Fn);
    ASSERT_TRUE(L.has_value());
    for (int64_t A = -2; A <= 2; ++A) {
      CfgExecResult Run =
          runLowered(*L, {A, A + 7, 3 - A}, 200000, /*CountEdges=*/true);
      expectFlowConserved(*L, Run);
      Finished += Run.Finished;
    }
  }
  // Goto-heavy generated programs frequently spin past the budget; make
  // sure the out-flow half of the invariant was still exercised on a
  // healthy number of complete traces.
  EXPECT_GT(Finished, 40u);
}

//===----------------------------------------------------------------------===//
// Region attribution
//===----------------------------------------------------------------------===//

TEST(RegionProfile, RejectsUnfinishedAndUncountedRuns) {
  LoweredFunction F = compileOne(
      "func f(x) { var i = 0; while (x > 0) { i = i + 1; } return i; }");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  RegionProfile P(F, T);
  // No edge counts.
  EXPECT_FALSE(P.addRun(runLowered(F, {0})));
  // Budget exhausted (x > 0 never flips).
  CfgExecResult Spin = runLowered(F, {1}, 1000, /*CountEdges=*/true);
  EXPECT_FALSE(Spin.Finished);
  EXPECT_FALSE(P.addRun(Spin));
  EXPECT_EQ(P.numRuns(), 0u);
}

TEST(RegionProfile, InvariantsOnRandomPrograms) {
  Rng R(0xa77b1b);
  ProgramGenOptions Opts;
  Opts.TargetStatements = 60;
  Opts.GotoProb = 0.25;
  size_t ProfiledRuns = 0;
  for (int I = 0; I < 25; ++I) {
    Function Fn = generateFunction(R, Opts, "gen");
    auto L = lowerFunction(Fn);
    ASSERT_TRUE(L.has_value());
    ProgramStructureTree T = ProgramStructureTree::build(L->Graph);
    RegionProfile P(*L, T);
    for (int64_t A = 0; A < 4; ++A)
      if (P.runAndAdd({A * 3 + 1, 5 - A, A}, 200000).Finished)
        ++ProfiledRuns;
    P.finalize();

    // The root accounts for everything.
    EXPECT_EQ(P.dynamics(T.root()).InclusiveCost, P.totalWork());
    EXPECT_EQ(P.dynamics(T.root()).Entries, P.numRuns());

    std::vector<uint64_t> Cost(L->Graph.numNodes());
    for (NodeId N = 0; N < L->Graph.numNodes(); ++N)
      Cost[N] = L->Code[N].size();

    for (RegionId Reg = 0; Reg < T.numRegions(); ++Reg) {
      const RegionDynamics &D = P.dynamics(Reg);
      // SESE soundness: complete runs enter exactly as often as they exit.
      EXPECT_EQ(D.Entries, D.Exits) << "region " << Reg;
      // Inclusive = self + children (the tree recurrence)...
      uint64_t FromChildren = D.SelfCost;
      for (RegionId C : T.children(Reg))
        FromChildren += P.dynamics(C).InclusiveCost;
      EXPECT_EQ(D.InclusiveCost, FromChildren) << "region " << Reg;
      // ...and independently, the flat sum over every contained block.
      uint64_t Flat = 0;
      for (NodeId N : T.allNodes(Reg))
        Flat += P.blockTotals()[N] * Cost[N];
      EXPECT_EQ(D.InclusiveCost, Flat) << "region " << Reg;
      if (Reg != T.root()) {
        EXPECT_EQ(D.Entries, P.edgeTotals()[T.region(Reg).EntryEdge]);
      }
    }
  }
  EXPECT_GT(ProfiledRuns, 15u);
}

TEST(RegionProfile, WhileLoopTripCounts) {
  LoweredFunction F = compileOne(
      "func f(n) { var i = 0; var s = 0; while (i < n) { s = s + i; "
      "i = i + 1; } return s; }");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  RegionProfile P(F, T);
  EXPECT_TRUE(P.runAndAdd({5}).Finished);
  EXPECT_TRUE(P.runAndAdd({0}).Finished);
  EXPECT_TRUE(P.runAndAdd({9}).Finished);
  P.finalize();

  // Locate the loop region: the cyclic one.
  RegionId LoopReg = InvalidRegion;
  for (RegionId Reg = 1; Reg < T.numRegions(); ++Reg)
    if (P.dynamics(Reg).Cyclic) {
      ASSERT_EQ(LoopReg, InvalidRegion) << "expected exactly one cyclic region";
      LoopReg = Reg;
    }
  ASSERT_NE(LoopReg, InvalidRegion);

  const RegionDynamics &D = P.dynamics(LoopReg);
  EXPECT_EQ(D.Kind, RegionKind::Loop);
  EXPECT_EQ(D.Entries, 3u);
  // Iterations = header executions: (5+1) + (0+1) + (9+1).
  EXPECT_EQ(D.Iterations, 17u);
  // Per-run trip samples: 6, 1, 10.
  EXPECT_EQ(D.RunIterations.Count, 3u);
  EXPECT_EQ(D.RunIterations.Min, 1u);
  EXPECT_EQ(D.RunIterations.Max, 10u);
  EXPECT_EQ(D.RunIterations.Sum, 17u);
}

//===----------------------------------------------------------------------===//
// Planner
//===----------------------------------------------------------------------===//

TEST(Planner, HotLoopIsTopRanked) {
  LoweredFunction F = compileOne(HotLoopSource);
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  RegionProfile P(F, T);
  for (uint64_t Run = 0; Run < 8; ++Run)
    EXPECT_TRUE(P.runAndAdd({static_cast<int64_t>((7 * Run + 5) % 23),
                             static_cast<int64_t>((7 * Run + 8) % 23)})
                    .Finished);
  P.finalize();
  ParallelismPlan Plan = planParallelism(P);

  ASSERT_FALSE(Plan.Entries.empty());
  const PlanEntry &Top = Plan.Entries[0];
  EXPECT_NE(Top.Region, T.root());
  EXPECT_EQ(Top.Kind, RegionKind::Loop);
  EXPECT_GT(Top.Coverage, 0.9);

  // The top region is the canonical SESE region of the hot (outermost)
  // natural loop: it contains every node of that loop and is itself
  // contained in no planned region.
  DomTree DT = DomTree::buildIterative(F.Graph);
  LoopInfo LI(F.Graph, DT);
  LoopId Outer = InvalidLoop;
  for (LoopId L = 0; L < LI.numLoops(); ++L)
    if (LI.loop(L).Depth == 1) {
      ASSERT_EQ(Outer, InvalidLoop) << "expected one outermost loop";
      Outer = L;
    }
  ASSERT_NE(Outer, InvalidLoop);
  for (NodeId N : LI.loop(Outer).Nodes)
    EXPECT_TRUE(T.contains(Top.Region, T.regionOfNode(N)))
        << "loop node " << F.Graph.nodeName(N) << " outside the top region";
}

TEST(Planner, PlanIsNestingDisjointAndRanked) {
  // Two sequential hot loops: both must be planned (they do not nest),
  // and descendants of a planned region must not appear.
  LoweredFunction F = compileOne(R"(
func twoloops(n, m) {
  var i = 0;
  var a = 0;
  while (i < n) { a = a + i * 3 % 5; i = i + 1; }
  var j = 0;
  while (j < m) { a = a + j * j % 7; j = j + 1; }
  return a;
}
)");
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  RegionProfile P(F, T);
  for (int64_t A = 4; A <= 24; A += 5)
    EXPECT_TRUE(P.runAndAdd({A, 29 - A}).Finished);
  P.finalize();
  ParallelismPlan Plan = planParallelism(P);

  ASSERT_EQ(Plan.Entries.size(), 2u);
  for (const PlanEntry &E : Plan.Entries)
    EXPECT_EQ(E.Kind, RegionKind::Loop);
  for (size_t I = 0; I < Plan.Entries.size(); ++I)
    for (size_t J = I + 1; J < Plan.Entries.size(); ++J) {
      EXPECT_GE(Plan.Entries[I].Benefit, Plan.Entries[J].Benefit);
      EXPECT_FALSE(
          T.contains(Plan.Entries[I].Region, Plan.Entries[J].Region));
      EXPECT_FALSE(
          T.contains(Plan.Entries[J].Region, Plan.Entries[I].Region));
    }
}

TEST(Planner, GoldenPlanOnHotLoopNest) {
  LoweredFunction F = compileOne(HotLoopSource);
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  RegionProfile P(F, T);
  const int64_t Workload[][2] = {{6, 7}, {3, 11}, {0, 5}, {12, 2}};
  for (auto [N, M] : Workload)
    EXPECT_TRUE(P.runAndAdd({N, M}).Finished);
  P.finalize();
  EXPECT_EQ(formatParallelismPlan(P, planParallelism(P)),
            "parallelism plan for hotloop: candidates=2 selected=1 work=421\n"
            "  #1 region 4 (b8->while9, while9->after10) loop: "
            "coverage=0.914489 selfpar=6.250000 iters/entry=6.250000 "
            "benefit=0.768171\n");
}

TEST(Planner, GoldenPlanOnMixedShape) {
  LoweredFunction F = compileOne(MixSource);
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  RegionProfile P(F, T);
  const int64_t Workload[][2] = {{9, 3}, {14, -20}, {2, 150}};
  for (auto [N, Bias] : Workload)
    EXPECT_TRUE(P.runAndAdd({N, Bias}).Finished);
  P.finalize();
  EXPECT_EQ(formatParallelismPlan(P, planParallelism(P)),
            "parallelism plan for mix: candidates=2 selected=2 work=101\n"
            "  #1 region 2 (b2->while3, while3->after4) loop: "
            "coverage=0.772277 selfpar=9.333333 iters/entry=9.333333 "
            "benefit=0.689533\n"
            "  #2 region 3 (while3->after4, join6->b13) if-then-else: "
            "coverage=0.079208 selfpar=1.142857 benefit=0.009901\n");
}

//===----------------------------------------------------------------------===//
// Report determinism
//===----------------------------------------------------------------------===//

TEST(ProfileReport, JsonByteDeterministic) {
  LoweredFunction F = compileOne(HotLoopSource);
  ProgramStructureTree T = ProgramStructureTree::build(F.Graph);
  auto MakeJson = [&] {
    RegionProfile P(F, T);
    for (uint64_t Run = 0; Run < 6; ++Run)
      P.runAndAdd({static_cast<int64_t>((5 * Run + 2) % 17),
                   static_cast<int64_t>((3 * Run + 4) % 13)});
    P.finalize();
    ParallelismPlan Plan = planParallelism(P);
    return profileToJson(P, Plan);
  };
  std::string A = MakeJson();
  std::string B = MakeJson();
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.empty());
  // Spot-check shape: one region array, one plan object.
  EXPECT_NE(A.find("\"regions\":["), std::string::npos);
  EXPECT_NE(A.find("\"plan\":{"), std::string::npos);
  EXPECT_NE(A.find("\"trip_stats\":{"), std::string::npos);
}
