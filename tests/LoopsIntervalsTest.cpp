//===- LoopsIntervalsTest.cpp - loop forest & interval tests -------------------===//
//
// Part of the PST library test suite: natural loop nesting forests and
// Allen-Cocke interval analysis, cross-checked against the T1/T2
// reducibility test and against the PST's loop-region classification.
//
//===----------------------------------------------------------------------===//

#include "pst/dom/LoopInfo.h"
#include "pst/graph/Intervals.h"

#include "pst/core/ProgramStructureTree.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace pst;

//===----------------------------------------------------------------------===//
// LoopInfo
//===----------------------------------------------------------------------===//

TEST(LoopInfo, SingleWhileLoop) {
  Cfg G = nestedWhileCfg(1); // entry 0, exit 1, head 2, body 3, after 4.
  DomTree DT = DomTree::buildIterative(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.numLoops(), 1u);
  const auto &L = LI.loop(0);
  EXPECT_EQ(L.Header, 2u);
  EXPECT_EQ(L.Nodes, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(L.Depth, 1u);
  EXPECT_EQ(LI.loopOf(3), 0u);
  EXPECT_EQ(LI.loopOf(0), InvalidLoop);
  EXPECT_EQ(LI.depthOf(3), 1u);
  EXPECT_EQ(LI.depthOf(4), 0u);
  EXPECT_TRUE(LI.irreducibleEdges().empty());
}

TEST(LoopInfo, NestingDepths) {
  Cfg G = nestedWhileCfg(3);
  DomTree DT = DomTree::buildIterative(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.numLoops(), 3u);
  uint32_t MaxDepth = 0;
  for (LoopId L = 0; L < LI.numLoops(); ++L)
    MaxDepth = std::max(MaxDepth, LI.loop(L).Depth);
  EXPECT_EQ(MaxDepth, 3u);
  // Every loop except the outermost has a parent.
  uint32_t Roots = 0;
  for (LoopId L = 0; L < LI.numLoops(); ++L)
    Roots += LI.loop(L).Parent == InvalidLoop;
  EXPECT_EQ(Roots, 1u);
}

TEST(LoopInfo, RepeatUntilSharedBody) {
  Cfg G = nestedRepeatUntilCfg(3);
  DomTree DT = DomTree::buildIterative(G);
  LoopInfo LI(G, DT);
  EXPECT_EQ(LI.numLoops(), 3u);
  EXPECT_TRUE(LI.irreducibleEdges().empty());
}

TEST(LoopInfo, SelfLoop) {
  Cfg G;
  NodeId S = G.addNode(), A = G.addNode(), E = G.addNode();
  G.addEdge(S, A);
  EdgeId Self = G.addEdge(A, A);
  G.addEdge(A, E);
  G.setEntry(S);
  G.setExit(E);
  DomTree DT = DomTree::buildIterative(G);
  LoopInfo LI(G, DT);
  ASSERT_EQ(LI.numLoops(), 1u);
  EXPECT_EQ(LI.loop(0).Header, A);
  EXPECT_EQ(LI.loop(0).Backedges, (std::vector<EdgeId>{Self}));
  EXPECT_EQ(LI.loop(0).Nodes, (std::vector<NodeId>{A}));
}

TEST(LoopInfo, IrreducibleEdgesDetected) {
  Cfg G = irreducibleCfg(1);
  DomTree DT = DomTree::buildIterative(G);
  LoopInfo LI(G, DT);
  EXPECT_FALSE(LI.irreducibleEdges().empty());
}

TEST(LoopInfo, AgreesWithPstLoopRegions) {
  // Every region the PST classifies as a loop must contain a natural loop
  // header (for reducible graphs).
  for (const Cfg &G : {nestedWhileCfg(2, 2), nestedRepeatUntilCfg(3)}) {
    DomTree DT = DomTree::buildIterative(G);
    LoopInfo LI(G, DT);
    ProgramStructureTree T = ProgramStructureTree::build(G);
    for (RegionId R = 1; R < T.numRegions(); ++R) {
      if (classifyRegion(G, T, R) != RegionKind::Loop)
        continue;
      bool HasHeader = false;
      for (NodeId N : T.allNodes(R))
        for (LoopId L = 0; L < LI.numLoops(); ++L)
          HasHeader |= LI.loop(L).Header == N;
      EXPECT_TRUE(HasHeader) << "region " << R;
    }
  }
}

//===----------------------------------------------------------------------===//
// Intervals
//===----------------------------------------------------------------------===//

TEST(Intervals, ChainIsOneInterval) {
  Cfg G = chainCfg(4);
  IntervalPartition P = computeIntervals(G);
  ASSERT_EQ(P.Intervals.size(), 1u);
  EXPECT_EQ(P.Intervals[0].Header, G.entry());
  EXPECT_EQ(P.Intervals[0].Nodes.size(), G.numNodes());
}

TEST(Intervals, LoopHeaderStartsNewInterval) {
  Cfg G = nestedWhileCfg(1);
  IntervalPartition P = computeIntervals(G);
  // entry | head-led interval: the backedge keeps head out of entry's
  // interval.
  EXPECT_GE(P.Intervals.size(), 2u);
  bool HeadIsHeader = false;
  for (const auto &I : P.Intervals)
    HeadIsHeader |= I.Header == 2;
  EXPECT_TRUE(HeadIsHeader);
}

TEST(Intervals, SingleEntryProperty) {
  Rng R(99);
  RandomCfgOptions Opts;
  Opts.NumNodes = 20;
  Opts.NumExtraEdges = 18;
  Cfg G = randomBackboneCfg(R, Opts);
  IntervalPartition P = computeIntervals(G);
  // Every node belongs to exactly one interval, and every non-header
  // member has all non-self preds inside its interval.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    ASSERT_NE(P.IntervalOf[N], UINT32_MAX) << "node " << N;
    const auto &I = P.Intervals[P.IntervalOf[N]];
    if (I.Header == N)
      continue;
    for (EdgeId E : G.predEdges(N)) {
      if (G.source(E) == N)
        continue;
      EXPECT_EQ(P.IntervalOf[G.source(E)], P.IntervalOf[N])
          << "node " << N << " pred " << G.source(E);
    }
  }
}

TEST(Intervals, DerivedGraphShrinksStructured) {
  Cfg G = nestedWhileCfg(2);
  uint32_t Steps = 0;
  Cfg Limit = limitGraph(G, &Steps);
  EXPECT_EQ(Limit.numNodes(), 1u);
  EXPECT_GE(Steps, 1u);
}

TEST(Intervals, ReducibilityAgreesWithT1T2OnClassics) {
  for (const Cfg &G :
       {chainCfg(3), diamondLadderCfg(2), nestedWhileCfg(3),
        nestedRepeatUntilCfg(4), irreducibleCfg(1), irreducibleCfg(3),
        paperFigure1Cfg()}) {
    EXPECT_EQ(isReducibleByIntervals(G), isReducible(G));
  }
}

class IntervalsRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalsRandomTest, ReducibilityAgreesWithT1T2) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 37 + 101);
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(22));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(22));
  Opts.SelfLoopProb = 0.1;
  Opts.ParallelProb = 0.1;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  EXPECT_EQ(isReducibleByIntervals(G), isReducible(G)) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalsRandomTest,
                         ::testing::Range<uint64_t>(0, 150));

// Theorem 10 via intervals: interval analysis applies inside every SESE
// region of a reducible graph (the paper's point about mixing structural
// and interval solvers under the PST).
class IntervalsTheorem10 : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalsTheorem10, RegionBodiesReduceToOneInterval) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 11 + 7);
  RandomCfgOptions Opts;
  Opts.NumNodes = 4 + static_cast<uint32_t>(R.nextBelow(16));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(16));
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  if (!isReducible(G))
    GTEST_SKIP() << "sample is irreducible";
  ProgramStructureTree T = ProgramStructureTree::build(G);
  for (RegionId Rg = 1; Rg < T.numRegions(); ++Rg) {
    CollapsedBody B = collapseRegion(G, T, Rg);
    Cfg Q;
    for (uint32_t I = 0; I < B.numNodes(); ++I)
      Q.addNode();
    for (const auto &E : B.Edges)
      Q.addEdge(E.Src, E.Dst);
    Q.setEntry(B.EntryQ);
    Q.setExit(B.ExitQ);
    EXPECT_TRUE(isReducibleByIntervals(Q))
        << "seed " << Seed << " region " << Rg;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalsTheorem10,
                         ::testing::Range<uint64_t>(0, 60));
