//===- PipelineTest.cpp - whole-pipeline integration tests ----------------------===//
//
// Part of the PST library test suite: runs every analysis end-to-end over a
// slice of the paper-calibrated corpus — the same inputs the benches use —
// checking the cross-algorithm invariants hold on realistic procedures,
// not just on synthetic property-test graphs.
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/core/PstDominators.h"
#include "pst/core/StructureMetrics.h"
#include "pst/cycleequiv/CycleEquivBrute.h"
#include "pst/dataflow/Problems.h"
#include "pst/dataflow/Qpg.h"
#include "pst/dataflow/Seg.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/ssa/SsaBuilder.h"
#include "pst/workload/Corpus.h"

#include <gtest/gtest.h>

using namespace pst;

namespace {

/// A deterministic slice of the corpus, small enough for CI.
std::vector<CorpusFunction> corpusSlice(size_t MaxFns, uint32_t MaxBlocks) {
  static std::vector<CorpusFunction> Full = generatePaperCorpus(20260705);
  std::vector<CorpusFunction> Out;
  for (size_t I = 0; I < Full.size() && Out.size() < MaxFns; I += 7) {
    if (Full[I].Fn.Graph.numNodes() <= MaxBlocks) {
      CorpusFunction C;
      C.Suite = Full[I].Suite;
      C.Program = Full[I].Program;
      C.Fn = Full[I].Fn; // Copy; the static corpus stays intact.
      Out.push_back(std::move(C));
    }
  }
  return Out;
}

} // namespace

TEST(Pipeline, CorpusFunctionsAreValidAndAnalyzable) {
  for (const auto &C : corpusSlice(25, 400)) {
    std::string Why;
    ASSERT_TRUE(validateCfg(C.Fn.Graph, &Why)) << C.Fn.Name << ": " << Why;
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    PstStats S = computePstStats(C.Fn.Graph, T);
    EXPECT_GE(S.NumRegions, 1u) << C.Fn.Name;
  }
}

TEST(Pipeline, PhiPlacementsAgreeOnCorpus) {
  for (const auto &C : corpusSlice(20, 250)) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    PhiPlacement A = placePhisClassic(C.Fn);
    PhiPlacement B = placePhisPst(C.Fn, T);
    for (VarId V = 0; V < C.Fn.numVars(); ++V)
      ASSERT_EQ(A.PhiBlocks[V], B.PhiBlocks[V])
          << C.Fn.Name << " var " << C.Fn.VarNames[V];
  }
}

TEST(Pipeline, SsaVerifiesOnCorpus) {
  for (const auto &C : corpusSlice(15, 250)) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    SsaForm S = buildSsa(C.Fn, placePhisPst(C.Fn, T));
    std::string Why;
    ASSERT_TRUE(verifySsa(C.Fn, S, &Why)) << C.Fn.Name << ": " << Why;
  }
}

TEST(Pipeline, ControlRegionVariantsAgreeOnCorpus) {
  for (const auto &C : corpusSlice(20, 300)) {
    auto L = canonicalizePartition(
        computeControlRegionsLinear(C.Fn.Graph).NodeClass);
    auto LI = canonicalizePartition(
        computeControlRegionsLinearImplicit(C.Fn.Graph).NodeClass);
    ASSERT_EQ(L, LI) << C.Fn.Name;
  }
}

TEST(Pipeline, DataflowSolversAgreeOnCorpus) {
  for (const auto &C : corpusSlice(12, 200)) {
    const Cfg &G = C.Fn.Graph;
    ProgramStructureTree T = ProgramStructureTree::build(G);
    BitVectorProblem P = makeReachingDefs(C.Fn);
    DataflowSolution It = solveIterative(G, P);
    DataflowSolution El = solveElimination(G, T, P);
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      ASSERT_EQ(It.In[N], El.In[N]) << C.Fn.Name;
      ASSERT_EQ(It.Out[N], El.Out[N]) << C.Fn.Name;
    }
    DomTree DT = DomTree::buildIterative(G);
    DominanceFrontiers DF(G, DT);
    DataflowSolution Sg = solveOnSeg(G, DT, DF, P);
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      ASSERT_EQ(It.In[N], Sg.In[N]) << C.Fn.Name;
      ASSERT_EQ(It.Out[N], Sg.Out[N]) << C.Fn.Name;
    }
  }
}

TEST(Pipeline, QpgProjectionAgreesOnCorpus) {
  for (const auto &C : corpusSlice(12, 200)) {
    const Cfg &G = C.Fn.Graph;
    ProgramStructureTree T = ProgramStructureTree::build(G);
    auto Keys = expressionKeys(C.Fn);
    if (Keys.empty())
      continue;
    BitVectorProblem P = makeSingleExprAvailability(C.Fn, Keys.front());
    EdgeSolution Sparse = solveOnQpg(G, T, P);
    EdgeSolution Dense = edgeView(G, solveIterative(G, P));
    for (EdgeId E = 0; E < G.numEdges(); ++E)
      ASSERT_EQ(Sparse.EdgeValue[E], Dense.EdgeValue[E])
          << C.Fn.Name << " edge " << E;
  }
}

TEST(Pipeline, PstDominatorsAgreeOnCorpus) {
  for (const auto &C : corpusSlice(20, 300)) {
    ProgramStructureTree T = ProgramStructureTree::build(C.Fn.Graph);
    DomTree Ref = DomTree::buildIterative(C.Fn.Graph);
    DomTree Dc = buildDominatorsViaPst(C.Fn.Graph, T);
    for (NodeId N = 0; N < C.Fn.Graph.numNodes(); ++N)
      ASSERT_EQ(Dc.idom(N), Ref.idom(N)) << C.Fn.Name << " node " << N;
  }
}

TEST(Pipeline, StatementLevelExpansionStaysConsistent) {
  for (const auto &C : corpusSlice(8, 120)) {
    LoweredFunction S = expandToStatementLevel(C.Fn);
    std::string Why;
    ASSERT_TRUE(validateCfg(S.Graph, &Why)) << C.Fn.Name << ": " << Why;
    // Block-level and statement-level reaching-def solutions agree at
    // block boundaries: the IN of a block equals the IN of its first
    // statement node.
    std::vector<NodeId> FirstOf;
    LoweredFunction S2 = expandToStatementLevel(C.Fn, &FirstOf);
    BitVectorProblem PB = makeReachingDefs(C.Fn);
    BitVectorProblem PS = makeReachingDefs(S2);
    DataflowSolution A = solveIterative(C.Fn.Graph, PB);
    DataflowSolution B = solveIterative(S2.Graph, PS);
    // Bit universes match: defs are enumerated in the same order.
    ASSERT_EQ(PB.NumBits, PS.NumBits);
    for (NodeId N = 0; N < C.Fn.Graph.numNodes(); ++N)
      ASSERT_EQ(A.In[N], B.In[FirstOf[N]]) << C.Fn.Name << " block " << N;
  }
}
