//===- ControlRegionsTest.cpp - control region tests ---------------------------===//
//
// Part of the PST library test suite: golden control-dependence facts, the
// node-expansion transform, and the central property sweep validating
// Theorem 7/8 — the FOW materialized-sets partition, the CFS90 refinement
// partition, the linear-time cycle-equivalence partition, and brute-force
// node cycle equivalence must all coincide.
//
//===----------------------------------------------------------------------===//

#include "pst/cdg/ControlRegions.h"

#include "pst/cdg/ControlDependence.h"
#include "pst/cycleequiv/CycleEquivBrute.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/workload/CfgGenerators.h"

#include <gtest/gtest.h>

using namespace pst;

TEST(ControlDependence, DiamondArms) {
  Cfg G = diamondLadderCfg(1);
  // Nodes: entry 0, cond 1, then 2, else 3, join 4, exit 5.
  // Edges: 0: entry->cond, 1: cond->then, 2: cond->else, 3: then->join,
  //        4: else->join, 5: join->exit.
  ControlDependence CD(G);
  EXPECT_EQ(CD.dependences(2), (std::vector<EdgeId>{1}));
  EXPECT_EQ(CD.dependences(3), (std::vector<EdgeId>{2}));
  EXPECT_TRUE(CD.dependences(0).empty());
  EXPECT_TRUE(CD.dependences(1).empty());
  EXPECT_TRUE(CD.dependences(4).empty());
  EXPECT_TRUE(CD.dependences(5).empty());
  EXPECT_EQ(CD.dependents(1), (std::vector<NodeId>{2}));
  EXPECT_EQ(CD.relationSize(), 2u);
}

TEST(ControlDependence, LoopSelfDependence) {
  Cfg G = nestedWhileCfg(1);
  // Nodes: entry 0, exit 1, head 2, body 3, after 4.
  // Edges: 0: entry->head, 1: head->body, 2: body->head, 3: head->after,
  //        4: after->exit.
  ControlDependence CD(G);
  // The loop header controls itself and its body through head->body.
  EXPECT_EQ(CD.dependences(2), (std::vector<EdgeId>{1}));
  EXPECT_EQ(CD.dependences(3), (std::vector<EdgeId>{1}));
  EXPECT_TRUE(CD.dependences(0).empty());
  EXPECT_TRUE(CD.dependences(4).empty());
}

TEST(NodeExpand, ShapeAndIds) {
  Cfg G = diamondLadderCfg(1);
  Cfg H = nodeExpand(G);
  EXPECT_EQ(H.numNodes(), 2 * G.numNodes());
  EXPECT_EQ(H.numEdges(), G.numNodes() + G.numEdges());
  // Representative edge of node V is EdgeId V: V_i -> V_o.
  for (NodeId V = 0; V < G.numNodes(); ++V) {
    EXPECT_EQ(H.source(V), 2 * V);
    EXPECT_EQ(H.target(V), 2 * V + 1);
  }
  // Original edge E becomes u_o -> v_i.
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    EXPECT_EQ(H.source(G.numNodes() + E), 2 * G.source(E) + 1);
    EXPECT_EQ(H.target(G.numNodes() + E), 2 * G.target(E));
  }
  EXPECT_EQ(H.entry(), 2 * G.entry());
  EXPECT_EQ(H.exit(), 2 * G.exit() + 1);
  EXPECT_TRUE(validateCfg(H));
}

TEST(NodeExpand, SelfLoopBecomesTwoCycle) {
  Cfg G;
  NodeId S = G.addNode(), A = G.addNode(), E = G.addNode();
  G.addEdge(S, A);
  G.addEdge(A, A);
  G.addEdge(A, E);
  G.setEntry(S);
  G.setExit(E);
  Cfg H = nodeExpand(G);
  // No self loops survive expansion.
  for (EdgeId Ed = 0; Ed < H.numEdges(); ++Ed)
    EXPECT_NE(H.source(Ed), H.target(Ed));
}

TEST(ControlRegions, DiamondPartition) {
  Cfg G = diamondLadderCfg(1);
  ControlRegionsResult R = computeControlRegionsLinear(G);
  // {entry, cond, join, exit} / {then} / {else}.
  EXPECT_EQ(R.NumClasses, 3u);
  EXPECT_EQ(R.NodeClass[0], R.NodeClass[1]);
  EXPECT_EQ(R.NodeClass[0], R.NodeClass[4]);
  EXPECT_EQ(R.NodeClass[0], R.NodeClass[5]);
  EXPECT_NE(R.NodeClass[2], R.NodeClass[3]);
  EXPECT_NE(R.NodeClass[2], R.NodeClass[0]);
}

namespace {

/// True if partition \p Fine refines \p Coarse (equal Fine classes imply
/// equal Coarse classes).
bool refines(const std::vector<uint32_t> &Fine,
             const std::vector<uint32_t> &Coarse) {
  std::vector<uint32_t> Image(Fine.size(), UINT32_MAX);
  for (size_t I = 0; I < Fine.size(); ++I) {
    uint32_t &Slot = Image[Fine[I]];
    if (Slot == UINT32_MAX)
      Slot = Coarse[I];
    else if (Slot != Coarse[I])
      return false;
  }
  return true;
}

} // namespace

TEST(ControlRegions, WhileLoopStrongPartition) {
  Cfg G = nestedWhileCfg(1);
  ControlRegionsResult R = computeControlRegionsLinear(G);
  // Strong (execution-count) regions: {entry, after, exit} / {head} /
  // {body}: the header runs once more than the body, and the cycle
  // entry->head->after->exit->entry contains head but not body.
  EXPECT_EQ(R.NodeClass[0], R.NodeClass[4]);
  EXPECT_EQ(R.NodeClass[0], R.NodeClass[1]);
  EXPECT_NE(R.NodeClass[2], R.NodeClass[3]);
  EXPECT_NE(R.NodeClass[0], R.NodeClass[2]);
}

TEST(ControlRegions, WhileLoopWeakVsStrongErratum) {
  // The documented erratum in Theorem 7 as literally stated: CD-set
  // equality (weak regions) merges the loop header with its unconditional
  // body, while cycle equivalence (what the paper's algorithm computes)
  // separates them.
  Cfg G = nestedWhileCfg(1);
  ControlRegionsResult Weak = computeControlRegionsFOW(G);
  ControlRegionsResult Strong = computeControlRegionsLinear(G);
  EXPECT_EQ(Weak.NodeClass[2], Weak.NodeClass[3]);   // head ~ body weakly.
  EXPECT_NE(Strong.NodeClass[2], Strong.NodeClass[3]);
  EXPECT_TRUE(refines(Strong.NodeClass, Weak.NodeClass));
}

TEST(ControlRegions, BaselinesAgreeAndStrongRefinesWeakOnClassics) {
  for (const Cfg &G :
       {chainCfg(4), diamondLadderCfg(3), nestedWhileCfg(3),
        nestedRepeatUntilCfg(3), irreducibleCfg(2), paperFigure1Cfg()}) {
    ControlRegionsResult L = computeControlRegionsLinear(G);
    ControlRegionsResult F = computeControlRegionsFOW(G);
    ControlRegionsResult P = computeControlRegionsRefinement(G);
    // The two Definition-8 baselines must agree exactly...
    EXPECT_EQ(canonicalizePartition(F.NodeClass),
              canonicalizePartition(P.NodeClass));
    // ...and cycle equivalence must be a refinement of them.
    EXPECT_TRUE(refines(L.NodeClass, F.NodeClass));
  }
}

// The linear algorithm must equal brute-force node cycle equivalence
// (its ground truth); the two Definition-8 baselines must equal each
// other; and cycle equivalence must refine CD-set equality (the corrected
// reading of Theorem 7).
class ControlRegionsRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControlRegionsRandomTest, LinearMatchesBruteAndRefinesWeak) {
  uint64_t Seed = GetParam();
  Rng R(Seed * 131 + 7);
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(14));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(14));
  Opts.SelfLoopProb = 0.08;
  Opts.ParallelProb = 0.08;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));

  auto L = canonicalizePartition(computeControlRegionsLinear(G).NodeClass);
  auto LI = canonicalizePartition(
      computeControlRegionsLinearImplicit(G).NodeClass);
  auto F = canonicalizePartition(computeControlRegionsFOW(G).NodeClass);
  auto P =
      canonicalizePartition(computeControlRegionsRefinement(G).NodeClass);
  auto B =
      canonicalizePartition(computeNodeCycleEquivalenceBrute(G).NodeClass);
  EXPECT_EQ(L, B) << "seed " << Seed;
  EXPECT_EQ(L, LI) << "seed " << Seed; // Implicit == explicit expansion.
  EXPECT_EQ(F, P) << "seed " << Seed;
  EXPECT_TRUE(refines(L, F)) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlRegionsRandomTest,
                         ::testing::Range<uint64_t>(0, 200));

// On *acyclic* CFGs every cycle of S runs through the return edge, and
// Theorem 7 holds exactly: CD-set equality equals cycle equivalence. This
// sweep checks that stronger claim on branch-heavy DAGs.
class ControlRegionsDagTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControlRegionsDagTest, AgreesForwardOnly) {
  uint64_t Seed = GetParam() + 5000;
  Rng R(Seed);
  RandomCfgOptions Opts;
  Opts.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(16));
  Opts.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(18));
  Opts.AllowBackEdges = false;
  Opts.SelfLoopProb = 0.0;
  Cfg G = randomBackboneCfg(R, Opts);
  ASSERT_TRUE(validateCfg(G));
  auto L = canonicalizePartition(computeControlRegionsLinear(G).NodeClass);
  auto F = canonicalizePartition(computeControlRegionsFOW(G).NodeClass);
  auto B =
      canonicalizePartition(computeNodeCycleEquivalenceBrute(G).NodeClass);
  EXPECT_EQ(L, F) << "seed " << Seed;
  EXPECT_EQ(L, B) << "seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlRegionsDagTest,
                         ::testing::Range<uint64_t>(0, 100));
