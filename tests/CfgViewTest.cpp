//===- CfgViewTest.cpp - frozen CSR adjacency snapshot -------------------------===//
//
// Part of the PST library (see CfgView.h for the reference).
//
// Three layers of coverage for the shared CSR view:
//  1. Construction goldens: a hand-built graph (with a self loop and a
//     parallel edge) pins the exact contents of all eight flat arrays.
//  2. Iteration equivalence: on randomized CFGs every view accessor must
//     reproduce the Cfg accessors element-for-element, and ReversedCfgView
//     must reproduce a materialized reverseCfg.
//  3. Byte identity: over the full 254-procedure paper corpus, every
//     pipeline stage's CfgView overload must produce output identical to
//     the legacy Cfg path — same cycle-equivalence class ids, same PST
//     print, same control-region numbering, same idoms/frontiers, same
//     dataflow fixpoints, same phi placements. Not "equivalent modulo
//     renaming": identical, which is what lets analyzeFunction switch
//     paths without perturbing any downstream consumer.
//
//===----------------------------------------------------------------------===//

#include "pst/graph/CfgView.h"

#include "pst/cdg/ControlRegions.h"
#include "pst/core/ProgramStructureTree.h"
#include "pst/core/PstDominators.h"
#include "pst/core/RegionAnalysis.h"
#include "pst/cycleequiv/CycleEquiv.h"
#include "pst/dataflow/Dataflow.h"
#include "pst/dataflow/Problems.h"
#include "pst/dataflow/Qpg.h"
#include "pst/dataflow/Seg.h"
#include "pst/dom/Dominators.h"
#include "pst/dom/LoopInfo.h"
#include "pst/graph/CfgAlgorithms.h"
#include "pst/graph/Intervals.h"
#include "pst/ssa/PhiPlacement.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/Corpus.h"

#include <gtest/gtest.h>

#include <vector>

using namespace pst;

namespace {

template <class T>
std::vector<T> collect(std::span<const T> S) {
  return std::vector<T>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// CSR construction goldens
//===----------------------------------------------------------------------===//

TEST(CfgView, CsrGoldenWithSelfLoopAndParallelEdge) {
  Cfg G;
  for (int I = 0; I < 4; ++I)
    G.addNode();
  G.setEntry(0);
  G.setExit(3);
  G.addEdge(0, 1); // e0
  G.addEdge(0, 2); // e1
  G.addEdge(1, 3); // e2
  G.addEdge(2, 3); // e3
  G.addEdge(1, 1); // e4: self loop
  G.addEdge(0, 2); // e5: parallel to e1

  CfgViewScratch S;
  CfgView V = CfgView::build(G, S);

  EXPECT_EQ(V.numNodes(), 4u);
  EXPECT_EQ(V.numEdges(), 6u);
  EXPECT_EQ(V.entry(), 0u);
  EXPECT_EQ(V.exit(), 3u);

  const std::vector<uint32_t> SuccOff(V.succOff(), V.succOff() + 5);
  const std::vector<uint32_t> PredOff(V.predOff(), V.predOff() + 5);
  EXPECT_EQ(SuccOff, (std::vector<uint32_t>{0, 3, 5, 6, 6}));
  EXPECT_EQ(PredOff, (std::vector<uint32_t>{0, 0, 2, 4, 6}));

  const std::vector<EdgeId> SuccEdge(V.succEdge(), V.succEdge() + 6);
  const std::vector<NodeId> SuccTo(V.succTo(), V.succTo() + 6);
  EXPECT_EQ(SuccEdge, (std::vector<EdgeId>{0, 1, 5, 2, 4, 3}));
  EXPECT_EQ(SuccTo, (std::vector<NodeId>{1, 2, 2, 3, 1, 3}));

  const std::vector<EdgeId> PredEdge(V.predEdge(), V.predEdge() + 6);
  const std::vector<NodeId> PredFrom(V.predFrom(), V.predFrom() + 6);
  EXPECT_EQ(PredEdge, (std::vector<EdgeId>{0, 4, 1, 5, 2, 3}));
  EXPECT_EQ(PredFrom, (std::vector<NodeId>{0, 1, 0, 0, 1, 2}));

  const std::vector<NodeId> Src(V.edgeSrc(), V.edgeSrc() + 6);
  const std::vector<NodeId> Dst(V.edgeDst(), V.edgeDst() + 6);
  EXPECT_EQ(Src, (std::vector<NodeId>{0, 0, 1, 2, 1, 0}));
  EXPECT_EQ(Dst, (std::vector<NodeId>{1, 2, 3, 3, 1, 2}));

  EXPECT_EQ(V.outDegree(0), 3u);
  EXPECT_EQ(V.inDegree(0), 0u);
  EXPECT_EQ(V.outDegree(3), 0u);
  EXPECT_EQ(V.inDegree(3), 2u);
}

TEST(CfgView, ScratchReuseAcrossGraphsOfDifferentSize) {
  CfgViewScratch S;
  Cfg Big = diamondLadderCfg(40);
  CfgView VBig = CfgView::build(Big, S);
  EXPECT_EQ(VBig.numNodes(), Big.numNodes());

  // Rebuilding into the same scratch from a smaller graph must not leak
  // stale rows from the larger one.
  Cfg Small;
  Small.addNode();
  Small.addNode();
  Small.setEntry(0);
  Small.setExit(1);
  Small.addEdge(0, 1);
  CfgView VSmall = CfgView::build(Small, S);
  EXPECT_EQ(VSmall.numNodes(), 2u);
  EXPECT_EQ(VSmall.numEdges(), 1u);
  EXPECT_EQ(collect(VSmall.succEdges(0)), (std::vector<EdgeId>{0}));
  EXPECT_EQ(collect(VSmall.succNodes(0)), (std::vector<NodeId>{1}));
  EXPECT_TRUE(VSmall.succEdges(1).empty());
  EXPECT_EQ(collect(VSmall.predEdges(1)), (std::vector<EdgeId>{0}));
}

//===----------------------------------------------------------------------===//
// Iteration equivalence on randomized CFGs
//===----------------------------------------------------------------------===//

void expectViewMatchesCfg(const Cfg &G) {
  CfgViewScratch S;
  CfgView V = CfgView::build(G, S);

  ASSERT_EQ(V.numNodes(), G.numNodes());
  ASSERT_EQ(V.numEdges(), G.numEdges());
  ASSERT_EQ(V.entry(), G.entry());
  ASSERT_EQ(V.exit(), G.exit());

  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    ASSERT_EQ(V.source(E), G.source(E)) << "edge " << E;
    ASSERT_EQ(V.target(E), G.target(E)) << "edge " << E;
  }

  for (NodeId N = 0; N < G.numNodes(); ++N) {
    ASSERT_EQ(collect(V.succEdges(N)), G.succEdges(N)) << "node " << N;
    ASSERT_EQ(collect(V.predEdges(N)), G.predEdges(N)) << "node " << N;
    ASSERT_EQ(V.outDegree(N), G.succEdges(N).size()) << "node " << N;
    ASSERT_EQ(V.inDegree(N), G.predEdges(N).size()) << "node " << N;
    // The node arrays are parallel to the edge arrays.
    std::span<const EdgeId> SE = V.succEdges(N);
    std::span<const NodeId> SN = V.succNodes(N);
    for (size_t I = 0; I < SE.size(); ++I)
      ASSERT_EQ(SN[I], G.target(SE[I])) << "node " << N;
    std::span<const EdgeId> PE = V.predEdges(N);
    std::span<const NodeId> PN = V.predNodes(N);
    for (size_t I = 0; I < PE.size(); ++I)
      ASSERT_EQ(PN[I], G.source(PE[I])) << "node " << N;
  }

  // ReversedCfgView against a materialized reverseCfg: reverseCfg keeps
  // edge ids, so succ/pred sides must swap exactly.
  Cfg RG = reverseCfg(G);
  ReversedCfgView RV(V);
  ASSERT_EQ(RV.entry(), RG.entry());
  ASSERT_EQ(RV.exit(), RG.exit());
  for (EdgeId E = 0; E < G.numEdges(); ++E) {
    ASSERT_EQ(RV.source(E), RG.source(E));
    ASSERT_EQ(RV.target(E), RG.target(E));
  }
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    ASSERT_EQ(collect(RV.succEdges(N)), RG.succEdges(N)) << "node " << N;
    ASSERT_EQ(collect(RV.predEdges(N)), RG.predEdges(N)) << "node " << N;
  }
}

TEST(CfgView, IterationEquivalenceOnRandomizedCfgs) {
  Rng R(20260807);
  for (int Trial = 0; Trial < 50; ++Trial) {
    RandomCfgOptions O;
    O.NumNodes = 2 + static_cast<uint32_t>(R.nextBelow(120));
    O.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(2 * O.NumNodes));
    Cfg G = randomBackboneCfg(R, O);
    expectViewMatchesCfg(G);
  }
}

TEST(CfgView, IterationEquivalenceOnStructuredFamilies) {
  expectViewMatchesCfg(paperFigure1Cfg());
  expectViewMatchesCfg(diamondLadderCfg(17));
  expectViewMatchesCfg(nestedWhileCfg(5, 3));
  expectViewMatchesCfg(nestedRepeatUntilCfg(9));
  expectViewMatchesCfg(irreducibleCfg(3));
}

//===----------------------------------------------------------------------===//
// Full-corpus byte identity: CfgView path == legacy path, stage by stage
//===----------------------------------------------------------------------===//

TEST(CfgViewByteIdentity, StructureStagesMatchLegacyOnFullCorpus) {
  std::vector<CorpusFunction> Corpus = generatePaperCorpus(/*Seed=*/1994);
  CfgViewScratch VS;
  CycleEquivScratch CES;
  PstBuildScratch PB;
  ControlRegionsScratch CRS;

  for (const CorpusFunction &C : Corpus) {
    const Cfg &G = C.Fn.Graph;
    CfgView V = CfgView::build(G, VS);

    // Cycle equivalence: the same class id for every edge, not merely the
    // same partition up to renaming.
    CycleEquivResult CeL = computeCycleEquivalence(G);
    CycleEquivResult CeV =
        computeCycleEquivalence(V, /*AddReturnEdge=*/true, CES);
    ASSERT_EQ(CeL.EdgeClass, CeV.EdgeClass) << C.Fn.Name;
    ASSERT_EQ(CeL.NumClasses, CeV.NumClasses) << C.Fn.Name;

    // PST: identical shape and node assignment, pinned through the printer.
    ProgramStructureTree TL = ProgramStructureTree::build(G);
    ProgramStructureTree TV = ProgramStructureTree::build(V, PB);
    ASSERT_EQ(formatPst(G, TL), formatPst(G, TV)) << C.Fn.Name;

    // Control regions: identical class numbering.
    ControlRegionsResult CrL = computeControlRegionsLinearImplicit(G);
    ControlRegionsResult CrV = computeControlRegionsLinearImplicit(V, CRS);
    ASSERT_EQ(CrL.NodeClass, CrV.NodeClass) << C.Fn.Name;
    ASSERT_EQ(CrL.NumClasses, CrV.NumClasses) << C.Fn.Name;

    // Dominators, postdominators, frontiers, and the PST-derived variant.
    DomTree DL = DomTree::buildIterative(G);
    DomTree DV = DomTree::buildIterative(V);
    DomTree PL = DomTree::buildPostDom(G);
    DomTree PV = DomTree::buildPostDom(V);
    DomTree QL = buildDominatorsViaPst(G, TL);
    DomTree QV = buildDominatorsViaPst(V, TV);
    DominanceFrontiers FL(G, DL);
    DominanceFrontiers FV(V, DV);
    for (NodeId N = 0; N < G.numNodes(); ++N) {
      ASSERT_EQ(DL.idom(N), DV.idom(N)) << C.Fn.Name << " node " << N;
      ASSERT_EQ(PL.idom(N), PV.idom(N)) << C.Fn.Name << " node " << N;
      ASSERT_EQ(QL.idom(N), QV.idom(N)) << C.Fn.Name << " node " << N;
      ASSERT_EQ(FL.frontier(N), FV.frontier(N)) << C.Fn.Name << " node " << N;
    }
  }
}

TEST(CfgViewByteIdentity, DataflowAndSsaStagesMatchLegacyOnFullCorpus) {
  std::vector<CorpusFunction> Corpus = generatePaperCorpus(/*Seed=*/1994);
  CfgViewScratch VS;

  for (const CorpusFunction &C : Corpus) {
    const Cfg &G = C.Fn.Graph;
    CfgView V = CfgView::build(G, VS);
    ProgramStructureTree T = ProgramStructureTree::build(G);
    BitVectorProblem P = makeReachingDefs(C.Fn);

    DataflowSolution ItL = solveIterative(G, P);
    DataflowSolution ItV = solveIterative(V, P);
    ASSERT_EQ(ItL, ItV) << C.Fn.Name << " iterative";

    DataflowSolution ElL = solveElimination(G, T, P);
    DataflowSolution ElV = solveElimination(V, T, P);
    ASSERT_EQ(ElL, ElV) << C.Fn.Name << " elimination";

    DomTree DT = DomTree::buildIterative(G);
    DominanceFrontiers DF(G, DT);
    DataflowSolution SgL = solveOnSeg(G, DT, DF, P);
    DataflowSolution SgV = solveOnSeg(V, DT, DF, P);
    ASSERT_EQ(SgL, SgV) << C.Fn.Name << " seg";

    auto Keys = expressionKeys(C.Fn);
    if (!Keys.empty()) {
      BitVectorProblem Q = makeSingleExprAvailability(C.Fn, Keys.front());
      EdgeSolution QpL = solveOnQpg(G, T, Q);
      EdgeSolution QpV = solveOnQpg(V, T, Q);
      ASSERT_EQ(QpL.EdgeValue, QpV.EdgeValue) << C.Fn.Name << " qpg";
    }

    PhiPlacement PcL = placePhisClassic(C.Fn);
    PhiPlacement PcV = placePhisClassic(C.Fn, V);
    ASSERT_EQ(PcL.PhiBlocks, PcV.PhiBlocks) << C.Fn.Name << " classic phis";
    PhiPlacement PpL = placePhisPst(C.Fn, T);
    PhiPlacement PpV = placePhisPst(C.Fn, V, T);
    ASSERT_EQ(PpL.PhiBlocks, PpV.PhiBlocks) << C.Fn.Name << " pst phis";
  }
}

TEST(CfgViewByteIdentity, DomLoopsIntervalsMatchLegacyOnFullCorpus) {
  std::vector<CorpusFunction> Corpus = generatePaperCorpus(/*Seed=*/1994);
  CfgViewScratch VS;

  for (const CorpusFunction &C : Corpus) {
    const Cfg &G = C.Fn.Graph;
    CfgView V = CfgView::build(G, VS);

    // Lengauer-Tarjan: bit-identical idom arrays, not just the same
    // dominance relation.
    DomTree LtL = DomTree::buildLengauerTarjan(G);
    DomTree LtV = DomTree::buildLengauerTarjan(V);
    for (NodeId N = 0; N < G.numNodes(); ++N)
      ASSERT_EQ(LtL.idom(N), LtV.idom(N)) << C.Fn.Name << " node " << N;

    // Natural loops: same loop ids, headers, backedges, members, nesting
    // and per-node innermost-loop assignment.
    LoopInfo LiL(G, LtL);
    LoopInfo LiV(V, LtV);
    ASSERT_EQ(LiL.numLoops(), LiV.numLoops()) << C.Fn.Name;
    for (LoopId L = 0; L < LiL.numLoops(); ++L) {
      ASSERT_EQ(LiL.loop(L).Header, LiV.loop(L).Header) << C.Fn.Name;
      ASSERT_EQ(LiL.loop(L).Backedges, LiV.loop(L).Backedges) << C.Fn.Name;
      ASSERT_EQ(LiL.loop(L).Nodes, LiV.loop(L).Nodes) << C.Fn.Name;
      ASSERT_EQ(LiL.loop(L).Parent, LiV.loop(L).Parent) << C.Fn.Name;
      ASSERT_EQ(LiL.loop(L).Children, LiV.loop(L).Children) << C.Fn.Name;
      ASSERT_EQ(LiL.loop(L).Depth, LiV.loop(L).Depth) << C.Fn.Name;
    }
    for (NodeId N = 0; N < G.numNodes(); ++N)
      ASSERT_EQ(LiL.loopOf(N), LiV.loopOf(N)) << C.Fn.Name << " node " << N;
    ASSERT_EQ(LiL.irreducibleEdges(), LiV.irreducibleEdges()) << C.Fn.Name;

    // T1/T2 reducibility: same verdict from the Cfg and view overloads.
    ASSERT_EQ(isReducible(G), isReducible(V)) << C.Fn.Name;

    // Intervals: same partition in the same discovery order.
    IntervalPartition IpL = computeIntervals(G);
    IntervalPartition IpV = computeIntervals(V);
    ASSERT_EQ(IpL.IntervalOf, IpV.IntervalOf) << C.Fn.Name;
    ASSERT_EQ(IpL.Intervals.size(), IpV.Intervals.size()) << C.Fn.Name;
    for (size_t I = 0; I < IpL.Intervals.size(); ++I) {
      ASSERT_EQ(IpL.Intervals[I].Header, IpV.Intervals[I].Header) << C.Fn.Name;
      ASSERT_EQ(IpL.Intervals[I].Nodes, IpV.Intervals[I].Nodes) << C.Fn.Name;
    }
  }
}

} // namespace
