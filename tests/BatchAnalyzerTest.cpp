//===- BatchAnalyzerTest.cpp - Determinism of the batch engine -----------------===//
//
// Part of the PST library (see BatchAnalyzer.h for the reference).
//
// The batch engine's contract is byte-identical output regardless of
// thread count, chunk size, and whatever a worker's scratch held before.
// These tests pin that contract by fingerprinting every analysis (full
// PST print + control-region partition) and comparing across schedules,
// against the scratch-less reference path, and across scratch reuse with
// deliberately interleaved CFG sizes (the stale-scratch trap).
//
//===----------------------------------------------------------------------===//

#include "pst/runtime/BatchAnalyzer.h"

#include "pst/core/RegionAnalysis.h"
#include "pst/workload/CfgGenerators.h"
#include "pst/workload/Corpus.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace pst;

namespace {

std::string fingerprint(const Cfg &G, const FunctionAnalysis &A) {
  std::ostringstream OS;
  OS << formatPst(G, A.Pst);
  OS << "cr " << A.ControlRegions.NumClasses << ':';
  for (uint32_t C : A.ControlRegions.NodeClass)
    OS << ' ' << C;
  OS << '\n';
  return OS.str();
}

std::vector<std::string> fingerprintAll(std::span<const Cfg> Fns,
                                        const std::vector<FunctionAnalysis> &As) {
  EXPECT_EQ(Fns.size(), As.size());
  std::vector<std::string> Out;
  Out.reserve(As.size());
  for (size_t I = 0; I < As.size(); ++I)
    Out.push_back(fingerprint(Fns[I], As[I]));
  return Out;
}

/// A corpus that deliberately alternates large and tiny CFGs so a scratch
/// that is not fully re-initialized between runs produces wrong answers.
std::vector<Cfg> mixedCorpus() {
  std::vector<Cfg> Out;
  Out.push_back(nestedRepeatUntilCfg(40));
  Out.push_back(chainCfg(1));
  Out.push_back(diamondLadderCfg(60));
  Out.push_back(paperFigure1Cfg());
  Out.push_back(nestedWhileCfg(8, 4));
  Out.push_back(irreducibleCfg(1));
  Out.push_back(irreducibleCfg(25));
  Out.push_back(chainCfg(0));

  Rng R(0x5eed);
  for (int I = 0; I < 60; ++I) {
    RandomCfgOptions O;
    // Alternate big and small random graphs.
    O.NumNodes = (I % 2) ? 3 + static_cast<uint32_t>(R.nextBelow(6))
                         : 40 + static_cast<uint32_t>(R.nextBelow(80));
    O.NumExtraEdges = static_cast<uint32_t>(R.nextBelow(O.NumNodes));
    Out.push_back(randomBackboneCfg(R, O));
  }
  return Out;
}

/// The scratch-less reference pipeline the batch engine must reproduce.
FunctionAnalysis referenceAnalysis(const Cfg &G) {
  FunctionAnalysis A;
  A.Pst = ProgramStructureTree::build(G);
  A.ControlRegions = computeControlRegionsLinearImplicit(G);
  return A;
}

TEST(BatchAnalyzerTest, MatchesScratchlessReference) {
  std::vector<Cfg> Corpus = mixedCorpus();
  BatchOptions Opts;
  Opts.NumThreads = 2;
  Opts.ChunkSize = 3;
  BatchAnalyzer Engine(Opts);
  std::vector<FunctionAnalysis> Got = Engine.analyzeCorpus(Corpus);
  ASSERT_EQ(Got.size(), Corpus.size());
  for (size_t I = 0; I < Corpus.size(); ++I)
    EXPECT_EQ(fingerprint(Corpus[I], Got[I]),
              fingerprint(Corpus[I], referenceAnalysis(Corpus[I])))
        << "function " << I;
}

TEST(BatchAnalyzerTest, ByteIdenticalAcrossThreadCounts) {
  std::vector<Cfg> Corpus = mixedCorpus();

  std::vector<std::vector<std::string>> PerThreadCount;
  for (unsigned Threads : {1u, 2u, 8u}) {
    BatchOptions Opts;
    Opts.NumThreads = Threads;
    Opts.ChunkSize = 2; // Force many scheduling decisions.
    BatchAnalyzer Engine(Opts);
    EXPECT_EQ(Engine.numWorkers(), Threads);
    PerThreadCount.push_back(
        fingerprintAll(Corpus, Engine.analyzeCorpus(Corpus)));
  }
  for (size_t I = 0; I < Corpus.size(); ++I) {
    EXPECT_EQ(PerThreadCount[0][I], PerThreadCount[1][I])
        << "1 vs 2 threads, function " << I;
    EXPECT_EQ(PerThreadCount[0][I], PerThreadCount[2][I])
        << "1 vs 8 threads, function " << I;
  }
}

TEST(BatchAnalyzerTest, RepeatedRunsWithScratchReuseAreIdentical) {
  std::vector<Cfg> Corpus = mixedCorpus();
  BatchOptions Opts;
  Opts.NumThreads = 4;
  Opts.ChunkSize = 1; // Each worker's scratch sees many different CFGs.
  BatchAnalyzer Engine(Opts);

  std::vector<std::string> First =
      fingerprintAll(Corpus, Engine.analyzeCorpus(Corpus));

  // Pollute the scratches with a differently-shaped corpus, then re-run.
  std::vector<Cfg> Other;
  Other.push_back(nestedRepeatUntilCfg(100));
  Other.push_back(diamondLadderCfg(200));
  (void)Engine.analyzeCorpus(Other);

  for (int Round = 0; Round < 3; ++Round) {
    std::vector<std::string> Again =
        fingerprintAll(Corpus, Engine.analyzeCorpus(Corpus));
    for (size_t I = 0; I < Corpus.size(); ++I)
      EXPECT_EQ(First[I], Again[I]) << "round " << Round << ", function " << I;
  }
}

TEST(BatchAnalyzerTest, AnalyzeFunctionScratchReuseMatchesFresh) {
  std::vector<Cfg> Corpus = mixedCorpus();
  PstScratch Reused;
  for (const Cfg &G : Corpus) {
    FunctionAnalysis WithReuse = analyzeFunction(G, Reused);
    PstScratch Fresh;
    FunctionAnalysis WithFresh = analyzeFunction(G, Fresh);
    EXPECT_EQ(fingerprint(G, WithReuse), fingerprint(G, WithFresh));
  }
}

TEST(BatchAnalyzerTest, PointerSpanOverloadAgrees) {
  std::vector<Cfg> Corpus = mixedCorpus();
  std::vector<const Cfg *> Ptrs;
  for (const Cfg &G : Corpus)
    Ptrs.push_back(&G);

  BatchAnalyzer Engine(BatchOptions{2, 4, true});
  std::vector<std::string> ByValue =
      fingerprintAll(Corpus, Engine.analyzeCorpus(Corpus));
  std::vector<std::string> ByPointer = fingerprintAll(
      Corpus, Engine.analyzeCorpus(std::span<const Cfg *const>(Ptrs)));
  EXPECT_EQ(ByValue, ByPointer);
}

TEST(BatchAnalyzerTest, EmptyCorpus) {
  BatchAnalyzer Engine(BatchOptions{4, 16, true});
  EXPECT_TRUE(Engine.analyzeCorpus(std::span<const Cfg>{}).empty());
}

TEST(BatchAnalyzerTest, SingleFunction) {
  Cfg G = paperFigure1Cfg();
  BatchAnalyzer Engine(BatchOptions{8, 16, true});
  std::vector<FunctionAnalysis> Got =
      Engine.analyzeCorpus(std::span<const Cfg>(&G, 1));
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(fingerprint(G, Got[0]), fingerprint(G, referenceAnalysis(G)));
}

TEST(BatchAnalyzerTest, ControlRegionsCanBeDisabled) {
  std::vector<Cfg> Corpus = mixedCorpus();
  BatchOptions Opts;
  Opts.NumThreads = 2;
  Opts.ComputeControlRegions = false;
  BatchAnalyzer Engine(Opts);
  std::vector<FunctionAnalysis> Got = Engine.analyzeCorpus(Corpus);
  ASSERT_EQ(Got.size(), Corpus.size());
  for (size_t I = 0; I < Corpus.size(); ++I) {
    EXPECT_EQ(Got[I].ControlRegions.NumClasses, 0u);
    EXPECT_TRUE(Got[I].ControlRegions.NodeClass.empty());
    EXPECT_EQ(formatPst(Corpus[I], Got[I].Pst),
              formatPst(Corpus[I], ProgramStructureTree::build(Corpus[I])));
  }
}

TEST(BatchAnalyzerTest, PaperCorpusIdenticalAcrossThreadCounts) {
  std::vector<CorpusFunction> Corpus = generatePaperCorpus(1994);
  std::vector<const Cfg *> Ptrs;
  Ptrs.reserve(Corpus.size());
  for (const CorpusFunction &F : Corpus)
    Ptrs.push_back(&F.Fn.Graph);
  std::span<const Cfg *const> Span(Ptrs);

  BatchAnalyzer Serial(BatchOptions{1, 16, true});
  BatchAnalyzer Wide(BatchOptions{8, 4, true});
  std::vector<FunctionAnalysis> A = Serial.analyzeCorpus(Span);
  std::vector<FunctionAnalysis> B = Wide.analyzeCorpus(Span);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(fingerprint(*Ptrs[I], A[I]), fingerprint(*Ptrs[I], B[I]))
        << Corpus[I].Fn.Name;
}

} // namespace
